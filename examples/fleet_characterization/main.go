// Fleet characterization: embedding-access analysis (Fig 6/7 and the
// §III-A2 caching opportunity) on a generated workload, plus the Fig 5
// utilization study on the discrete-event pipeline.
package main

import (
	"fmt"

	"repro"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/trace"
)

func main() {
	// Access-pattern characterization on a production-shaped model.
	cfg := recsim.ModelConfig{
		Name:          "fleet-example",
		DenseFeatures: 32,
		Sparse: []recsim.SparseFeature{
			{Name: "small-hot", HashSize: 1000, MeanPooled: 20, MaxPooled: 32},
			{Name: "mid", HashSize: 100000, MeanPooled: 6, MaxPooled: 32},
			{Name: "big-cold", HashSize: 2000000, MeanPooled: 1, MaxPooled: 4},
		},
		EmbeddingDim: 16,
		BottomMLP:    []int{32},
		TopMLP:       []int{32},
		Interaction:  recsim.InteractionConcat,
	}
	gen := recsim.NewGenerator(cfg, 5)
	col := trace.NewCollector(cfg)
	var batches []*recsim.MiniBatch
	examples := 0
	for i := 0; i < 30; i++ {
		b := gen.NextBatch(128)
		col.RecordBatch(b)
		batches = append(batches, b)
		examples += 128
	}
	fmt.Println("Per-table access profiles (Fig 6/7 style):")
	for _, p := range col.Profiles(examples) {
		fmt.Printf("  %-9s rows=%-8d accesses=%-7d mean/example=%5.1f top-1%%-share=%.2f\n",
			p.Name, p.HashSize, p.Accesses, p.MeanPerExample, p.Top1PctShare)
	}
	fmt.Printf("size-frequency correlation: %+.2f (paper: weak/none)\n\n",
		col.SizeFrequencyCorrelation())

	fmt.Println("LRU caching opportunity (§III-A2):")
	caps := []int{256, 1024, 4096, 16384}
	for i, hr := range trace.CacheOpportunity(batches, caps) {
		fmt.Printf("  %6d cached rows -> hit rate %.2f\n", caps[i], hr)
	}
	fmt.Println()

	// Fig 5: utilization distributions across simulated runs.
	study := fleet.DefaultUtilizationStudy(30, 9)
	dist, err := study.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("Fig 5 study (%d runs at %d trainers / %d PS):\n", 30, study.Trainers, study.SparsePS)
	fmt.Println(metrics.Table(dist.Summaries()))
}

// Hybrid-parallel training walkthrough: run the same workload through the
// single-process trainer and the synchronous hybrid-parallel engine
// (data-parallel MLPs via ring all-reduce, model-parallel embedding
// shards via all-to-all), show that the loss curves agree, and read the
// paper-style operator breakdown plus the collective byte meters against
// their analytic volumes.
package main

import (
	"fmt"
	"math"

	"repro"
)

func main() {
	cfg := recsim.ModelConfig{
		Name:          "hybrid-demo",
		DenseFeatures: 32,
		Sparse:        recsim.UniformSparse(8, 5000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   recsim.InteractionDot,
	}
	fmt.Println(recsim.Describe(cfg))

	const iters, batch = 60, 128

	// 1. Single-process reference run.
	single := recsim.NewTrainer(recsim.NewModel(cfg, 1), recsim.TrainerConfig{LR: 0.05})
	gen := recsim.NewGenerator(cfg, 7)
	refLoss := make([]float64, iters)
	for i := range refLoss {
		refLoss[i] = single.Step(gen.NextBatch(batch))
	}

	// 2. The same seed and batch stream on 4 synchronous ranks, with the
	// collectives priced by Big Basin's NVLink fabric.
	link, err := recsim.HybridLink("BigBasin")
	if err != nil {
		panic(err)
	}
	ht, err := recsim.NewHybridTrainer(cfg, recsim.HybridConfig{
		Ranks: 4, LR: 0.05, Seed: 1, Overlap: true, Link: link,
	})
	if err != nil {
		panic(err)
	}
	defer ht.Close()

	gen = recsim.NewGenerator(cfg, 7)
	var last recsim.HybridStepBreakdown
	var worst float64
	for i := 0; i < iters; i++ {
		loss, bd, _ := ht.Step(gen.NextBatch(batch))
		if d := math.Abs(loss - refLoss[i]); d > worst {
			worst = d
		}
		last = bd
	}
	fmt.Printf("\nloss parity vs single process over %d iters: max |delta| = %.2e\n", iters, worst)

	// 3. The paper-style operator breakdown of the last step.
	fmt.Printf("\nlast step: %.2fms total\n", 1e3*last.Step)
	fmt.Printf("  compute      %.2fms\n", 1e3*last.Compute)
	fmt.Printf("  all-to-all   %.2fms (pooled embedding exchange)\n", 1e3*last.AllToAll)
	fmt.Printf("  all-reduce   %.2fms (dense grads, bucketed + overlapped)\n", 1e3*last.AllReduce)
	fmt.Printf("  exposed comm %.2fms\n", 1e3*last.Exposed)

	// 4. Observed collective traffic vs the analytic volumes.
	fmt.Printf("\nper-iteration collective traffic (observed vs analytic):\n")
	fmt.Printf("  all-to-all %d B vs %.0f B\n",
		last.AllToAllBytes, recsim.HybridAllToAllBytes(cfg, batch, ht.Ranks()))
	fmt.Printf("  all-reduce %d B vs %.0f B\n",
		last.AllReduceBytes, recsim.HybridAllReduceBytes(cfg, ht.Ranks()))
	fmt.Printf("  modeled wire time on %s: a2a %.3fms, all-reduce %.3fms\n",
		link.Name, 1e3*last.ModelAllToAllSec, 1e3*last.ModelAllReduceSec)

	// 5. Held-out quality from the assembled eval view (a Fork shares the
	// training stream's hidden teacher, so the task is the same).
	eval := recsim.Evaluate(ht.EvalModel(), gen.Fork(999).EvalSet(4, 256))
	fmt.Printf("\nheld-out: NE %.4f, accuracy %.4f over %d examples\n",
		eval.NE, eval.Accuracy, eval.Examples)
}

// Example ingest_pipeline materializes a sharded on-disk dataset, then
// trains both the single-process and the hybrid-parallel trainer from it
// through the staged ingestion pipeline — parallel shard decode, bounded
// shuffle, RecD-style within-batch dedup, and a recycled prefetch ring —
// printing the per-stage meters the ingest_scaling experiment sweeps.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	cfg := recsim.ModelConfig{
		Name:          "ingest-example",
		DenseFeatures: 16,
		Sparse:        recsim.UniformSparse(4, 5000, 4),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   recsim.InteractionDot,
	}

	// 1. Materialize: the deterministic generator writes shard files plus
	// a manifest (equal seeds write bit-identical datasets).
	dir, err := os.MkdirTemp("", "ingest_example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	gen := recsim.NewGenerator(cfg, 42)
	if err := gen.WriteShards(dir, 4, 1024); err != nil {
		log.Fatal(err)
	}

	ds, err := recsim.OpenDataset(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ds.Close()
	fmt.Printf("dataset: %d examples in %d shards (%d bytes)\n\n",
		ds.Examples(), len(ds.Manifest.Shards), ds.Bytes())

	// 2. Single-process trainer from disk, dedup on.
	pipe, err := recsim.OpenIngestPipeline(ds, cfg, recsim.IngestOptions{
		BatchSize: 128, Readers: 2, Dedup: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := recsim.NewTrainer(recsim.NewModel(cfg, 1), recsim.TrainerConfig{LR: 0.05})
	loss, steps, err := tr.TrainFrom(pipe, 50)
	if err != nil {
		log.Fatal(err)
	}
	m := pipe.Meters()
	pipe.Close()
	fmt.Printf("single trainer: %d steps from disk, mean loss %.4f\n", steps, loss)
	fmt.Printf("  meters: read %.1f MB/s, dedup ratio %.2f, starved %.1f%%, ring occupancy %.2f\n\n",
		m.ReadMBps(), m.DedupRatio(), 100*m.StarvationFrac(), m.Occupancy())

	// 3. The same interface feeds the hybrid-parallel engine.
	pipe2, err := recsim.OpenIngestPipeline(ds, cfg, recsim.IngestOptions{
		BatchSize: 128, Readers: 2, Dedup: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe2.Close()
	ht, err := recsim.NewHybridTrainer(cfg, recsim.HybridConfig{Ranks: 2, LR: 0.05, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer ht.Close()
	hLoss, _, hSteps, err := ht.TrainFrom(pipe2, 25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid trainer: %d ranks, %d steps from disk, mean loss %.4f\n",
		ht.Ranks(), hSteps, hLoss)
}

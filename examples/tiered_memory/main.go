// Tiered memory walkthrough: take M3prod — the production model whose
// 224 GB of embedding tables overflow Big Basin's GPU memory (§VI-A) —
// and show how the memtier subsystem stages it across the platform's
// memory hierarchy, what the hot-row cache buys, and how the tiered plan
// compares with the paper's remote-parameter-server fallback.
package main

import (
	"fmt"

	"repro"
)

func main() {
	m3 := recsim.ProductionModels()[2]
	fmt.Println(recsim.Describe(m3))

	// 1. The platform's memory hierarchy, fastest to slowest.
	tiers, err := recsim.MemoryTiers("BigBasin", 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nBig Basin memory hierarchy:")
	for _, t := range tiers {
		fmt.Printf("  %s\n", t)
	}

	// 2. The flat strategies hit the capacity wall.
	if _, err := recsim.FitPlacement(m3, "BigBasin", recsim.PlaceGPUMemory, 0); err != nil {
		fmt.Printf("\nGPUMemory: %v\n", err)
	}
	if _, err := recsim.FitPlacement(m3, "BigBasin", recsim.PlaceSystemMemory, 0); err != nil {
		fmt.Printf("SystemMemory: %v\n", err)
	}

	// 3. The tiered strategy stages tables hottest-first and carves a
	//    hot-row cache out of leftover HBM.
	plan, err := recsim.FitPlacement(m3, "BigBasin", recsim.PlaceTiered, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ntiered assignment:\n%s", plan.Tiered)
	fmt.Printf("HBM serves %.1f%% of lookups (resident hot tables + cache hits)\n",
		100*plan.HotFraction)

	// 4. Price it: the tiered plan vs the paper's remote-PS placement.
	const batch = 800
	tiered, err := recsim.EstimateGPU(m3, "BigBasin", batch, recsim.PlaceTiered)
	if err != nil {
		panic(err)
	}
	remote, err := recsim.EstimateGPU(m3, "BigBasin", batch, recsim.PlaceRemoteCPU)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nremote-PS placement: %7.0f examples/s (bottleneck: %s)\n",
		remote.Throughput, remote.Bottleneck)
	fmt.Printf("tiered placement:    %7.0f examples/s (bottleneck: %s) — %.1fx\n",
		tiered.Throughput, tiered.Bottleneck, tiered.Throughput/remote.Throughput)

	// 5. BestPlacement is tier-aware: it now discovers this by itself.
	best, bd, err := recsim.BestPlacement(m3, "BigBasin", batch)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nBestPlacement picks %v at %.0f examples/s\n", best.Strategy, bd.Throughput)

	// 6. Sweep the cache: more HBM given to the hot-row cache means a
	//    higher hit rate, until the resident hot tables start to spill.
	fmt.Println("\ncache-fraction sweep:")
	for _, frac := range []float64{-1, 0.05, 0.10, 0.20} {
		p, err := recsim.PlaceTieredWith(m3, "BigBasin", recsim.TieredOptions{
			Assign: recsim.TierAssignOptions{CacheFraction: frac},
		})
		if err != nil {
			panic(err)
		}
		label := fmt.Sprintf("%4.0f%%", 100*frac)
		if frac < 0 {
			label = "  off"
		}
		fmt.Printf("  cache %s: %9d rows, hit rate %.2f, HBM share %.2f\n",
			label, p.Tiered.CacheRows, p.Tiered.CacheHitRate, p.HotFraction)
	}
}

// Batch-size accuracy: a miniature Fig 15 — train the same model with
// growing batch sizes under a fixed sample budget and linear LR scaling,
// and watch the residual accuracy gap grow.
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := recsim.ModelConfig{
		Name:          "batchsweep",
		DenseFeatures: 16,
		Sparse: []recsim.SparseFeature{
			{Name: "a", HashSize: 2000, MeanPooled: 4, MaxPooled: 16},
			{Name: "b", HashSize: 2000, MeanPooled: 4, MaxPooled: 16},
		},
		EmbeddingDim: 16,
		BottomMLP:    []int{32},
		TopMLP:       []int{32},
		Interaction:  recsim.InteractionDot,
	}
	base := recsim.NewGenerator(cfg, 7)
	const budget = 60000
	const refBatch, refLR = 200, 0.05

	train := func(batch int, lr float64) recsim.EvalResult {
		m := recsim.NewModel(cfg, 11)
		tr := recsim.NewTrainer(m, recsim.TrainerConfig{Optimizer: "sgd", LR: lr, WarmupIters: 20})
		gen := base.Fork(int64(batch))
		for i := 0; i < budget/batch; i++ {
			tr.Step(gen.NextBatch(batch))
		}
		return recsim.Evaluate(m, base.Fork(999).EvalSet(8, 256))
	}

	ref := train(refBatch, refLR)
	fmt.Printf("reference batch %d: accuracy %.4f (NE %.4f)\n\n", refBatch, ref.Accuracy, ref.NE)
	fmt.Println("batch  scaled-lr  accuracy  loss-vs-ref(%)")
	for _, b := range []int{400, 800, 1600, 2400} {
		lr := refLR * float64(b) / refBatch // linear scaling rule
		r := train(b, lr)
		fmt.Printf("%5d   %7.3f   %.4f   %+.3f\n", b, lr, r.Accuracy, (ref.Accuracy-r.Accuracy)*100)
	}
	fmt.Println("\nPaper Fig 15: even after manual LR re-tuning, the accuracy gap")
	fmt.Println("grows with batch size (~0.2% at batch 2400) — often intolerable")
	fmt.Println("for well-calibrated recommendation models.")
}

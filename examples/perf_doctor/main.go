// Performance-doctor walkthrough: run the hybrid trainer twice — once
// clean, once with one rank slowed by an injected per-step delay fault —
// and let the doctor classify both runs. The clean run is diagnosed by
// its dominant cost bucket; the faulted run flips to straggler-bound,
// with the slow rank attributed from the collective rendezvous-wait
// meters (the straggler reaches every barrier last and waits the
// least). Finishes with a quantile readout from the zero-allocation
// phase histograms and a bench-report diff under the CI gate's
// tolerance policy.
package main

import (
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/collective"
)

func main() {
	if err := demo(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func demo() error {
	cfg := recsim.ModelConfig{
		Name:          "doctor-demo",
		DenseFeatures: 16,
		Sparse:        recsim.UniformSparse(4, 2000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   recsim.InteractionDot,
	}
	fmt.Println(recsim.Describe(cfg))
	const iters, batch, ranks = 30, 64, 2

	for _, faulted := range []bool{false, true} {
		title := "clean run"
		if faulted {
			title = "rank 0 delayed 2ms per step"
		}
		fmt.Printf("\n=== %s ===\n", title)

		// One tracer + registry per run: rank spans land on shards
		// [0, ShardCount), every meter (including the per-rank
		// collective wait counters the straggler analysis joins) lands
		// in the registry.
		hc := recsim.HybridConfig{Ranks: ranks, LR: 0.05, Seed: 1, Overlap: true}
		reg := recsim.NewTelemetryRegistry()
		tracer := recsim.NewTracer(hc.ShardCount(), 4096)
		hc.Registry, hc.Trace, hc.TraceShard = reg, tracer, 0
		// Publishing the phase histograms makes /metrics and
		// Snapshot.Render carry p50/p95/p99/p999 per phase.
		recsim.RegisterPhaseHists(reg, tracer)

		ht, err := recsim.NewHybridTrainer(cfg, hc)
		if err != nil {
			return err
		}
		if faulted {
			var faults []collective.Fault
			for s := 0; s <= iters; s++ {
				faults = append(faults, collective.Fault{
					Kind: collective.FaultDelay, Rank: 0, Step: s, Delay: 2 * time.Millisecond,
				})
			}
			ht.SetFaults(collective.NewFaultSchedule(faults...))
		}
		gen := recsim.NewGenerator(cfg, 2)
		if _, _, _, err := ht.TrainFrom(gen.NewSource(batch), iters); err != nil {
			ht.Close()
			return err
		}
		ht.Close()

		// The doctor fuses the span trace with the metrics snapshot.
		rep := recsim.Diagnose(recsim.DoctorInput{
			Snap:    tracer.Snapshot(),
			Metrics: reg.Snapshot(),
		})
		fmt.Print(rep.Render())

		if !faulted {
			// Quantiles from the zero-allocation phase histograms.
			h := tracer.PhaseHist(recsim.TracePhase(0)) // step
			q := h.Summary()
			fmt.Printf("\nstep latency: n=%d mean %.3fms p50 %.3fms p99 %.3fms max %.3fms\n",
				q.Count, q.Mean/1e6, float64(q.P50)/1e6, float64(q.P99)/1e6, float64(q.Max)/1e6)
		}
	}

	// The same tolerance policy gates CI: diff the two most recent
	// committed bench reports.
	old, new := "BENCH_20260808T110216Z.json", "BENCH_20260808T115935Z.json"
	if _, err := os.Stat(old); err == nil {
		d, err := recsim.CompareBenchReports(old, new, recsim.DefaultBenchTolerance())
		if err != nil {
			return err
		}
		fmt.Printf("\n=== bench trajectory gate ===\n%s", d.Render())
	}
	return nil
}

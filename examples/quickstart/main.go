// Quickstart: build a small DLRM, train it on synthetic click data, and
// evaluate normalized entropy — the five-minute tour of the public API.
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := recsim.ModelConfig{
		Name:          "quickstart",
		DenseFeatures: 16,
		Sparse: []recsim.SparseFeature{
			{Name: "user_id", HashSize: 5000, MeanPooled: 1, MaxPooled: 1},
			{Name: "item_history", HashSize: 20000, MeanPooled: 8, MaxPooled: 32},
			{Name: "page_category", HashSize: 300, MeanPooled: 2, MaxPooled: 8},
		},
		EmbeddingDim: 16,
		BottomMLP:    []int{64},
		TopMLP:       []int{64, 32},
		Interaction:  recsim.InteractionDot,
	}
	fmt.Println(recsim.Describe(cfg))

	model := recsim.NewModel(cfg, 42)
	trainer := recsim.NewTrainer(model, recsim.TrainerConfig{LR: 0.05})
	gen := recsim.NewGenerator(cfg, 43)

	for i := 0; i < 300; i++ {
		loss := trainer.Step(gen.NextBatch(128))
		if (i+1)%100 == 0 {
			fmt.Printf("iter %3d  training loss %.4f\n", i+1, loss)
		}
	}

	eval := recsim.Evaluate(model, gen.EvalSet(8, 256))
	fmt.Printf("held-out: logloss %.4f  NE %.4f  accuracy %.4f\n",
		eval.LogLoss, eval.NE, eval.Accuracy)
	if eval.NE < 1 {
		fmt.Println("NE < 1: the model beats the base-rate predictor.")
	}
}

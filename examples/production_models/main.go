// Production models: the Table II / Table III case study — port M1prod,
// M2prod, and M3prod from their production CPU clusters to a Big Basin
// GPU server and compare throughput and power efficiency.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// CPU setups from Table III (trainers + parameter servers).
	setups := map[string]struct{ trainers, sparsePS, densePS, gpuBatch int }{
		"M1prod": {6, 7, 1, 1600},
		"M2prod": {20, 15, 1, 3200},
		"M3prod": {8, 7, 1, 800},
	}
	for _, cfg := range recsim.ProductionModels() {
		fmt.Println(recsim.Describe(cfg))
		s := setups[cfg.Name]
		cpu, err := recsim.EstimateCPUCluster(cfg, 200, s.trainers, s.sparsePS, s.densePS)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  CPU cluster (%d trainers, %d PS): %8.0f ex/s, %5.1f power units, bottleneck=%s\n",
			s.trainers, s.sparsePS+s.densePS, cpu.Throughput, cpu.PowerUnits, cpu.Bottleneck)
		for _, platform := range []string{"BigBasin", "Zion"} {
			plan, bd, err := recsim.BestPlacement(cfg, platform, s.gpuBatch)
			if err != nil {
				fmt.Printf("  %s: %v\n", platform, err)
				continue
			}
			fmt.Printf("  %-9s best placement %-12s: %8.0f ex/s (%.2fx CPU), power eff %.2fx\n",
				platform, plan.Strategy, bd.Throughput, bd.Throughput/cpu.Throughput,
				bd.PowerEfficiency()/cpu.PowerEfficiency())
		}
		fmt.Println()
	}
	fmt.Println("Paper Table III: M1 2.25x / M2 0.85x / M3 0.67x GPU-vs-CPU throughput;")
	fmt.Println("the GPU wins for M1, breaks even for M2, and loses for M3, whose")
	fmt.Println("embedding tables exceed Big Basin's GPU memory.")
}

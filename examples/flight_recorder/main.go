// Flight-recorder walkthrough: train a small DLRM with the recorder
// attached, corrupt one mini-batch mid-run so the EWMA loss-spike
// detector fires, and inspect what the trigger left behind — the
// structured finding, the ASCII dashboard of the per-step time-series,
// and the atomically-dumped blackbox-<step>/ bundle (trace window,
// metrics snapshot, series tail, doctor verdict).
//
// With -validate the demo runs headless and checks the bundle against
// the "recsim-blackbox/1" schema — manifest fields, member files, JSON
// parseability, non-empty doctor report — exiting non-zero on any
// mismatch. CI runs this as the bundle-format smoke test.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	validate := flag.Bool("validate", false, "headless run: assert the dumped bundle matches the recsim-blackbox/1 schema")
	flag.Parse()
	if err := demo(*validate); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func demo(validate bool) error {
	dir, err := os.MkdirTemp("", "flightrec-demo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := recsim.ModelConfig{
		Name:          "flightrec-demo",
		DenseFeatures: 16,
		Sparse:        recsim.UniformSparse(4, 2000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   recsim.InteractionDot,
	}
	const iters, batch, spikeAt = 40, 64, 30
	if !validate {
		fmt.Println(recsim.Describe(cfg))
		fmt.Printf("training %d steps, corrupting the batch at step %d\n\n", iters, spikeAt)
	}

	// Tracer + registry feed the recorder its per-phase and meter
	// deltas; the bundle directory arms trigger dumps.
	tracer := recsim.NewTracer(1, 4096)
	reg := recsim.NewTelemetryRegistry()
	fr, err := recsim.OpenFlightRecorder(recsim.FlightRecorderConfig{
		Dir: dir, Tracer: tracer, Registry: reg,
	})
	if err != nil {
		return err
	}

	tr := recsim.NewTrainer(recsim.NewModel(cfg, 1), recsim.TrainerConfig{LR: 0.05})
	tr.SetTrace(tracer, 0)
	tr.SetRecorder(fr)
	gen := recsim.NewGenerator(cfg, 2)
	for step := 0; step < iters; step++ {
		mb := gen.NextBatch(batch)
		if step == spikeAt {
			// Labels far outside {0,1}: the BCE loss jumps an order of
			// magnitude for exactly one step.
			for i := range mb.Labels {
				mb.Labels[i] = 8
			}
		}
		tr.Step(mb)
	}

	findings := fr.Findings()
	bundles := fr.Bundles()
	if !validate {
		fmt.Printf("dashboard:\n%s\n", fr.Timeseries().Dashboard(64))
		for _, f := range findings {
			fmt.Printf("finding: %s\n", f)
		}
		for _, b := range bundles {
			fmt.Printf("bundle:  %s\n", b)
		}
	}

	// The checks below are the -validate contract; the interactive demo
	// runs them too so it never prints a success story about a broken
	// bundle.
	if len(findings) == 0 || findings[0].Kind != recsim.AnomalyLossSpike {
		return fmt.Errorf("flight_recorder: expected a loss_spike finding, got %+v", findings)
	}
	if got := findings[0].Step; got != spikeAt {
		return fmt.Errorf("flight_recorder: spike localized to step %d, injected at %d", got, spikeAt)
	}
	if len(bundles) != 1 {
		return fmt.Errorf("flight_recorder: expected one bundle, got %v", bundles)
	}
	if err := validateBundle(bundles[0], spikeAt); err != nil {
		return err
	}
	if validate {
		fmt.Printf("flight_recorder: bundle %s validates against recsim-blackbox/1\n", filepath.Base(bundles[0]))
	} else {
		fmt.Println("\nbundle validates against recsim-blackbox/1")
	}
	return nil
}

// validateBundle asserts the on-disk layout and schema of one
// blackbox-<step>/ bundle.
func validateBundle(dir string, step int64) error {
	raw, err := os.ReadFile(filepath.Join(dir, "bundle.json"))
	if err != nil {
		return fmt.Errorf("flight_recorder: manifest: %w", err)
	}
	var man recsim.BundleManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return fmt.Errorf("flight_recorder: manifest parse: %w", err)
	}
	if man.Schema != "recsim-blackbox/1" {
		return fmt.Errorf("flight_recorder: schema %q, want recsim-blackbox/1", man.Schema)
	}
	if man.Step != step {
		return fmt.Errorf("flight_recorder: manifest step %d, want %d", man.Step, step)
	}
	if man.Trigger.Detail == "" {
		return fmt.Errorf("flight_recorder: manifest trigger has no detail")
	}
	for _, name := range []string{"timeseries.json", "metrics.json", "trace.json", "doctor.txt"} {
		listed := false
		for _, f := range man.Files {
			if f == name {
				listed = true
				break
			}
		}
		if !listed {
			return fmt.Errorf("flight_recorder: manifest does not list %s (files: %v)", name, man.Files)
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("flight_recorder: %w", err)
		}
		if len(raw) == 0 {
			return fmt.Errorf("flight_recorder: %s is empty", name)
		}
		if filepath.Ext(name) == ".json" && !json.Valid(raw) {
			return fmt.Errorf("flight_recorder: %s is not valid JSON", name)
		}
	}

	// The series tail must end at the triggering step, with the spike
	// sample carrying the anomalous loss the detector saw.
	raw, err = os.ReadFile(filepath.Join(dir, "timeseries.json"))
	if err != nil {
		return err
	}
	var doc struct {
		Samples []recsim.StepSample     `json:"samples"`
		Marks   []recsim.TimeseriesMark `json:"marks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("flight_recorder: timeseries parse: %w", err)
	}
	if n := len(doc.Samples); n == 0 || doc.Samples[n-1].Step != step {
		return fmt.Errorf("flight_recorder: series tail does not end at step %d (%d samples)", step, len(doc.Samples))
	}
	if len(doc.Marks) == 0 || doc.Marks[0].Kind != "loss_spike" {
		return fmt.Errorf("flight_recorder: finding not mirrored as a series mark: %+v", doc.Marks)
	}
	return nil
}

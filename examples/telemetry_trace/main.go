// Telemetry walkthrough: trace a short hybrid-parallel training run with
// the unified span tracer, print the observed-vs-predicted attribution
// report and ASCII timeline, snapshot the unified metrics registry, and
// export the trace as Chrome trace_event JSON (load trace.json in
// chrome://tracing or https://ui.perfetto.dev).
//
// With -validate <file> it instead checks an existing trace file against
// the Chrome trace_event golden schema and exits non-zero on mismatch —
// the CI smoke mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	validate := flag.String("validate", "", "validate an existing Chrome trace JSON file instead of running the demo")
	flag.Parse()
	if *validate != "" {
		if err := validateTrace(*validate); err != nil {
			fmt.Fprintln(os.Stderr, "invalid trace:", err)
			os.Exit(1)
		}
		fmt.Println(*validate, "matches the Chrome trace_event schema")
		return
	}
	if err := demo(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func demo() error {
	cfg := recsim.ModelConfig{
		Name:          "telemetry-demo",
		DenseFeatures: 32,
		Sparse:        recsim.UniformSparse(8, 5000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   recsim.InteractionDot,
	}
	fmt.Println(recsim.Describe(cfg))
	const iters, batch, ranks = 40, 128, 2

	// 1. One tracer and one registry for the whole run. The hybrid
	// trainer writes rank spans onto shards [0, ShardCount) and its step
	// counters into the registry.
	hc := recsim.HybridConfig{Ranks: ranks, LR: 0.05, Seed: 1, Overlap: true}
	reg := recsim.NewTelemetryRegistry()
	tracer := recsim.NewTracer(hc.ShardCount(), 4096)
	hc.Registry, hc.Trace, hc.TraceShard = reg, tracer, 0

	ht, err := recsim.NewHybridTrainer(cfg, hc)
	if err != nil {
		return err
	}
	defer ht.Close()
	gen := recsim.NewGenerator(cfg, 7)
	for i := 0; i < iters; i++ {
		ht.Step(gen.NextBatch(batch))
	}

	// 2. Attribution: observed per-phase step time, joined against the
	// analytic perfmodel prediction for the same model and batch.
	snap := tracer.Snapshot()
	attr := recsim.Attribute(snap)
	predicted := map[recsim.TracePhase]float64(nil)
	if bd, err := recsim.EstimateGPU(cfg, "BigBasin", batch, recsim.PlaceGPUMemory); err == nil {
		predicted = recsim.PredictedPhases(bd)
	}
	fmt.Println("\nattribution (observed vs analytic perfmodel):")
	fmt.Print(attr.Render(predicted))
	fmt.Println("\ntimeline:")
	fmt.Print(snap.Timeline(72))

	// 3. The unified registry: every subsystem meter in one snapshot.
	fmt.Println("\nregistry snapshot:")
	fmt.Print(reg.Snapshot().Render())

	// 4. Chrome trace export.
	f, err := os.Create("trace.json")
	if err != nil {
		return err
	}
	if err := recsim.WriteChromeTrace(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("\nwrote trace.json (%d spans) — load it in chrome://tracing\n", len(snap.Spans))
	return validateTrace("trace.json")
}

// validateTrace checks a file against the Chrome trace_event golden
// schema: a traceEvents array of "M" thread_name metadata and "X"
// complete events carrying name/cat/ts/dur/pid/tid.
func validateTrace(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var trace struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		return fmt.Errorf("not JSON: %w", err)
	}
	if len(trace.TraceEvents) == 0 {
		return fmt.Errorf("no traceEvents")
	}
	var meta, complete int
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			for _, key := range []string{"name", "cat", "ts", "dur", "pid", "tid"} {
				if _, ok := ev[key]; !ok {
					return fmt.Errorf("complete event missing %q: %v", key, ev)
				}
			}
		default:
			return fmt.Errorf("unexpected event type %v", ev["ph"])
		}
	}
	if meta == 0 || complete == 0 {
		return fmt.Errorf("want both metadata and complete events, got %d/%d", meta, complete)
	}
	return nil
}

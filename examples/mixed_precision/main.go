// Mixed-precision walkthrough: train the same workload at fp32 and with
// bf16 embedding tables + compressed collective wires, then compare the
// loss trajectories, the lookup-path memory footprint, and the metered
// collective bytes against the dtype-aware analytic volumes.
//
// The recipe is the production standard for comm- and capacity-bound
// DLRMs: optimizer math stays fp32 (master weights, split-SGD row
// re-quantization), only the lookup replicas and the wire payloads
// narrow — so quality holds while capacity halves and collective
// traffic drops 2–3.8x.
package main

import (
	"fmt"
	"math"

	"repro"
)

func main() {
	base := recsim.ModelConfig{
		Name:          "mixed-precision-demo",
		DenseFeatures: 32,
		Sparse:        recsim.UniformSparse(8, 5000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   recsim.InteractionDot,
	}
	const iters, batch, ranks = 60, 128, 2

	run := func(dt recsim.EmbeddingDType, wire recsim.WireFormat) (mean float64, a2a, ar int64) {
		cfg := base
		cfg.TableDType = dt
		ht, err := recsim.NewHybridTrainer(cfg, recsim.HybridConfig{
			Ranks: ranks, LR: 0.05, Seed: 1,
			WireA2A: wire, WireAllReduce: wire,
		})
		if err != nil {
			panic(err)
		}
		defer ht.Close()
		gen := recsim.NewGenerator(cfg, 7)
		for i := 0; i < iters; i++ {
			loss, _, err := ht.Step(gen.NextBatch(batch))
			if err != nil {
				panic(err)
			}
			mean += loss / iters
		}
		st := ht.CollectiveStats()
		return mean, st.AllToAll.Bytes / iters, st.AllReduce.Bytes / iters
	}

	// 1. fp32 baseline vs bf16 tables + fp16 all-to-all / int8 all-reduce.
	fp32Loss, fp32A2A, fp32AR := run(recsim.DTypeFP32, recsim.WireFP32)
	mixLoss, mixA2A, mixAR := run(recsim.DTypeBF16, recsim.WireFP16)

	fmt.Printf("fp32      : mean loss %.4f  a2a %6d B/iter  allreduce %6d B/iter\n",
		fp32Loss, fp32A2A, fp32AR)
	fmt.Printf("bf16/fp16 : mean loss %.4f  a2a %6d B/iter  allreduce %6d B/iter\n",
		mixLoss, mixA2A, mixAR)
	fmt.Printf("quality drift %.3f%% of baseline, wire compression %.2fx\n",
		100*math.Abs(mixLoss-fp32Loss)/fp32Loss,
		float64(fp32A2A+fp32AR)/float64(mixA2A+mixAR))

	// 2. The meters match the dtype-aware analytic volumes.
	bpe := recsim.WireFP16.BytesPerElem()
	wantA2A := recsim.HybridAllToAllBytesWire(base, batch, ranks, bpe)
	wantAR := recsim.HybridAllReduceBytesWire(base, ranks, bpe)
	fmt.Printf("analytic  : a2a %.0f B/iter (meter/analytic %.3f), allreduce %.0f B/iter (%.3f)\n",
		wantA2A, float64(mixA2A)/wantA2A, wantAR, float64(mixAR)/wantAR)

	// 3. Capacity: the lookup path halves; masters live in optimizer state.
	bf16 := base
	bf16.TableDType = recsim.DTypeBF16
	fmt.Printf("embedding lookup bytes: fp32 %d, bf16 %d\n",
		base.EmbeddingBytes(), bf16.EmbeddingBytes())
}

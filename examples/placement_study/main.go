// Placement study: evaluate every embedding placement strategy (Fig 8)
// for M2prod on Big Basin and Zion, reproducing the Fig 14 comparison.
package main

import (
	"fmt"

	"repro"
)

func main() {
	m2 := recsim.ProductionModels()[1]
	fmt.Println(recsim.Describe(m2))
	fmt.Println()

	strategies := []recsim.PlacementStrategy{
		recsim.PlaceGPUMemory, recsim.PlaceSystemMemory, recsim.PlaceRemoteCPU, recsim.PlaceHybrid,
	}
	for _, platform := range []string{"BigBasin", "Zion"} {
		fmt.Printf("%s:\n", platform)
		for _, strat := range strategies {
			plan, err := recsim.FitPlacement(m2, platform, strat, 8)
			if err != nil {
				fmt.Printf("  %-12s infeasible: %v\n", strat, err)
				continue
			}
			bd, err := recsim.EstimateGPU(m2, platform, 3200, strat)
			if err != nil {
				// RemoteCPU needs the explicit plan with PS count.
				bd2, err2 := estimateWithPlan(m2, platform, plan)
				if err2 != nil {
					fmt.Printf("  %-12s error: %v\n", strat, err2)
					continue
				}
				bd = bd2
			}
			where := describePlan(plan)
			fmt.Printf("  %-12s %9.0f ex/s  bottleneck=%-9s %s\n",
				strat, bd.Throughput, bd.Bottleneck, where)
		}
		fmt.Println()
	}
	fmt.Println("Paper Fig 14: Big Basin is fastest with tables in GPU memory;")
	fmt.Println("Zion (no GPU-GPU fabric in the prototype) is fastest with tables")
	fmt.Println("in its 2TB / 1TB/s system memory.")
}

func estimateWithPlan(cfg recsim.ModelConfig, platform string, plan recsim.PlacementPlan) (recsim.Breakdown, error) {
	return recsim.EstimateGPU(cfg, platform, 3200, plan.Strategy)
}

func describePlan(p recsim.PlacementPlan) string {
	switch {
	case p.RemotePS > 0:
		return fmt.Sprintf("(%d remote PS)", p.RemotePS)
	case p.EmbGPUs > 0 && p.HostBytes > 0:
		return fmt.Sprintf("(%d GPUs + host spill)", p.EmbGPUs)
	case p.EmbGPUs > 0:
		return fmt.Sprintf("(%d GPUs hold tables)", p.EmbGPUs)
	default:
		return "(host memory)"
	}
}

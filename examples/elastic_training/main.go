// Elastic fault-tolerant training walkthrough: train the hybrid-parallel
// engine with durable checkpoints, kill a rank mid-run with the fault
// injection seam, watch recovery roll back to the last checkpoint and
// replay the deterministic batch stream, and verify the recovered loss
// curve is bit-identical to an uninterrupted run. Finishes by rejoining
// the checkpointed world with a different rank count — shards are keyed
// by table, not rank, so restore re-shards deterministically.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	cfg := recsim.ModelConfig{
		Name:          "elastic-demo",
		DenseFeatures: 16,
		Sparse:        recsim.UniformSparse(8, 2000, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   recsim.InteractionDot,
	}
	fmt.Println(recsim.Describe(cfg))

	const steps, batch, ranks = 40, 64, 4

	// The replayable stream: recovery calls this with the rolled-back
	// step count and expects the exact same batches a fresh run would
	// see — seek, not re-sample.
	source := func(skip int) (recsim.BatchSource, func(), error) {
		gen := recsim.NewGenerator(cfg, 7)
		for i := 0; i < skip; i++ {
			gen.NextBatch(batch)
		}
		return gen.NewSource(batch), func() {}, nil
	}

	run := func(store *recsim.CheckpointStore, faults *recsim.FaultSchedule) *recsim.ElasticResult {
		res, err := recsim.RunElastic(recsim.ElasticConfig{
			Cfg:       cfg,
			HC:        recsim.HybridConfig{Ranks: ranks, LR: 0.05, Seed: 1},
			Store:     store,
			CkptEvery: 8,
			FullEvery: 2, // every 2nd save is a full compaction
			Steps:     steps,
			Source:    source,
			Faults:    faults,
			Logf: func(format string, args ...any) {
				fmt.Printf("  "+format+"\n", args...)
			},
		})
		if err != nil {
			panic(err)
		}
		return res
	}

	// 1. Uninterrupted reference run.
	cleanDir, faultDir := tempStore("clean"), tempStore("faulted")
	defer os.RemoveAll(cleanDir)
	defer os.RemoveAll(faultDir)
	cleanStore, err := recsim.OpenCheckpointStore(cleanDir)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nclean run (%d steps, %d ranks):\n", steps, ranks)
	clean := run(cleanStore, nil)

	// 2. The same workload with rank 3 killed at step 21: the abort
	// poisons the world, recovery restores the step-16 checkpoint,
	// rebuilds all ranks, and replays from there.
	faults, err := recsim.ParseFaultSchedule(fmt.Sprintf("kill:%d@21", ranks-1))
	if err != nil {
		panic(err)
	}
	faultStore, err := recsim.OpenCheckpointStore(faultDir)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfaulted run (kill rank %d at step 21):\n", ranks-1)
	faulted := run(faultStore, faults)
	fmt.Printf("  %d recoveries, %v rebuild+restore, %d checkpoint bytes re-read\n",
		faulted.Recoveries, faulted.RecoveryWall, faulted.BytesRestored)

	// 3. Bit-identity: every loss of the recovered curve must equal the
	// uninterrupted run exactly (float equality, not a tolerance).
	diverged := -1
	for i := range clean.Losses {
		if clean.Losses[i] != faulted.Losses[i] {
			diverged = i
			break
		}
	}
	if diverged >= 0 {
		fmt.Printf("\nFAIL: loss curves diverge at step %d\n", diverged)
		os.Exit(1)
	}
	fmt.Printf("\nloss curves bit-identical across all %d steps (final loss %.6f)\n",
		clean.Steps, faulted.Losses[steps-1])
	fmt.Printf("manifest Merkle roots: clean %s, faulted %s\n",
		short(clean.LastRoot), short(faulted.LastRoot))

	// 4. Rank-elastic rejoin: the same store restores into a 2-rank
	// world; the per-table shards re-shard onto the smaller world and
	// training continues from the checkpointed step.
	ht, info, err := recsim.RestoreHybridTrainer(cfg,
		recsim.HybridConfig{Ranks: 2, LR: 0.05, Seed: 1}, faultStore, nil)
	if err != nil {
		panic(err)
	}
	defer ht.Close()
	fmt.Printf("\nrejoined with 2 ranks: restored %v\n", info)
	src, release, err := source(ht.Iter())
	if err != nil {
		panic(err)
	}
	defer release()
	b, err := src.NextBatch()
	if err != nil {
		panic(err)
	}
	loss, _, err := ht.Step(b)
	if err != nil {
		panic(err)
	}
	fmt.Printf("step %d on the 2-rank world: loss %.6f\n", ht.Iter(), loss)
}

func tempStore(kind string) string {
	dir, err := os.MkdirTemp("", "elastic-training-"+kind+"-*")
	if err != nil {
		panic(err)
	}
	return dir
}

// short abbreviates a Merkle root for display.
func short(root string) string {
	if len(root) > 12 {
		return root[:12]
	}
	return root
}

package recsim_test

import (
	"fmt"

	"repro"
)

// ExampleEstimateGPU estimates a training iteration of the §V test-suite
// model on Big Basin with embeddings in GPU memory.
func ExampleEstimateGPU() {
	cfg := recsim.TestSuiteModel(1024, 16)
	bd, err := recsim.EstimateGPU(cfg, "BigBasin", 1600, recsim.PlaceGPUMemory)
	if err != nil {
		panic(err)
	}
	fmt.Println(bd.Throughput > 0, bd.PowerUnits)
	// Output: true 7.3
}

// ExampleDescribe prints the Table II summary of M3prod — the model
// whose embedding tables exceed a Big Basin's GPU memory.
func ExampleDescribe() {
	m3 := recsim.ProductionModels()[2]
	fmt.Println(recsim.Describe(m3))
	// Output: M3prod: 809 dense, 127 sparse, 224.1 GB embeddings, 6223 lookups/example
}

// ExampleFitPlacement shows the capacity wall of §VI-A: M3prod cannot be
// placed in Big Basin GPU memory.
func ExampleFitPlacement() {
	m3 := recsim.ProductionModels()[2]
	_, err := recsim.FitPlacement(m3, "BigBasin", recsim.PlaceGPUMemory, 0)
	fmt.Println(err != nil)
	plan, err := recsim.FitPlacement(m3, "Zion", recsim.PlaceSystemMemory, 0)
	fmt.Println(err == nil, plan.Strategy)
	// Output:
	// true
	// true SystemMemory
}

package recsim

import (
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// pipelineRun drives the DES pipeline for the overlap ablation.
func pipelineRun(flows int) (float64, error) {
	res, err := pipeline.Run(pipeline.Config{
		Model:        workload.DefaultTestSuite(256, 16),
		Batch:        200,
		Trainers:     4,
		SparsePS:     2,
		HogwildFlows: flows,
		Iterations:   60,
		Seed:         7,
	})
	if err != nil {
		return 0, err
	}
	return res.Throughput, nil
}

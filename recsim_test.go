package recsim

import (
	"bytes"
	"strings"
	"testing"
)

// TestPublicAPITelemetry drives the v1.5 observability surface: trace a
// few traced single-process steps, attribute them, export Chrome JSON,
// and read a metric back out of a registry snapshot.
func TestPublicAPITelemetry(t *testing.T) {
	cfg := ModelConfig{
		Name:          "telemetry-api",
		DenseFeatures: 8,
		Sparse:        UniformSparse(2, 100, 3),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   InteractionDot,
	}
	tr := NewTrainer(NewModel(cfg, 1), TrainerConfig{LR: 0.05})
	tracer := NewTracer(1, 256)
	tr.SetTrace(tracer, 0)
	gen := NewGenerator(cfg, 2)
	for i := 0; i < 5; i++ {
		tr.Step(gen.NextBatch(32))
	}

	attr := Attribute(tracer.Snapshot())
	if attr.TotalSteps != 5 {
		t.Errorf("attributed %d steps, want 5", attr.TotalSteps)
	}
	// Loose bound: these toy steps are microseconds long, so the fixed
	// clock-read slack between spans is proportionally large. The 1%
	// acceptance check runs at realistic scale in telemetry_attribution.
	if c := attr.Coverage(); c < 0.9 || c > 1.1 {
		t.Errorf("phase coverage %.4f, want ~1.0", c)
	}
	if out := attr.Render(nil); !strings.Contains(out, "dense_fwd") {
		t.Errorf("report missing dense_fwd:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tracer.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Error("chrome trace missing traceEvents")
	}

	reg := NewTelemetryRegistry()
	reg.Counter("api/steps").Add(5)
	if got := reg.Snapshot().Get("api/steps"); got != 5 {
		t.Errorf("registry snapshot api/steps = %d, want 5", got)
	}
}

func TestPublicAPITrainingFlow(t *testing.T) {
	cfg := ModelConfig{
		Name:          "api-test",
		DenseFeatures: 8,
		Sparse:        []SparseFeature{{Name: "f0", HashSize: 100, MeanPooled: 3, MaxPooled: 8}},
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   InteractionDot,
	}
	m := NewModel(cfg, 1)
	tr := NewTrainer(m, TrainerConfig{LR: 0.05})
	gen := NewGenerator(cfg, 2)
	var first, last float64
	for i := 0; i < 100; i++ {
		loss := tr.Step(gen.NextBatch(32))
		if i < 10 {
			first += loss
		}
		if i >= 90 {
			last += loss
		}
	}
	if last >= first {
		t.Errorf("loss did not improve: %v -> %v", first/10, last/10)
	}
	res := Evaluate(m, gen.EvalSet(4, 64))
	if res.Examples != 256 {
		t.Errorf("Evaluate examples = %d", res.Examples)
	}
}

func TestPublicAPIHybridTraining(t *testing.T) {
	cfg := ModelConfig{
		Name:          "api-hybrid",
		DenseFeatures: 8,
		Sparse:        UniformSparse(4, 200, 3),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   InteractionDot,
	}
	link, err := HybridLink("BigBasin")
	if err != nil {
		t.Fatal(err)
	}
	ht, err := NewHybridTrainer(cfg, HybridConfig{Ranks: 2, LR: 0.05, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := NewGenerator(cfg, 2)
	var first, last float64
	var bd HybridStepBreakdown
	for i := 0; i < 100; i++ {
		var loss float64
		loss, bd, _ = ht.Step(gen.NextBatch(32))
		if i < 10 {
			first += loss
		}
		if i >= 90 {
			last += loss
		}
	}
	if last >= first {
		t.Errorf("hybrid loss did not improve: %v -> %v", first/10, last/10)
	}
	if got, want := float64(bd.AllToAllBytes), HybridAllToAllBytes(cfg, 32, 2); got != want {
		t.Errorf("metered all-to-all %v bytes, analytic %v", got, want)
	}
	if got, want := float64(bd.AllReduceBytes), HybridAllReduceBytes(cfg, 2); got != want {
		t.Errorf("metered all-reduce %v bytes, analytic %v", got, want)
	}
	if bd.ModelAllToAllSec <= 0 {
		t.Error("throttled link charged no modeled all-to-all time")
	}
	if st := ht.CollectiveStats(); st.AllToAll.Calls == 0 {
		t.Error("collective meters empty")
	}
}

// TestPublicAPIElasticCheckpoint drives the v1.6 durability surface: an
// elastic run that survives a rank kill by rolling back to the last
// checkpoint, then a rank-elastic restore of the same store into a
// smaller world.
func TestPublicAPIElasticCheckpoint(t *testing.T) {
	cfg := ModelConfig{
		Name:          "api-elastic",
		DenseFeatures: 8,
		Sparse:        UniformSparse(4, 200, 3),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   InteractionDot,
	}
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	faults, err := ParseFaultSchedule("kill:1@10")
	if err != nil {
		t.Fatal(err)
	}
	const steps, batch = 16, 32
	res, err := RunElastic(ElasticConfig{
		Cfg:       cfg,
		HC:        HybridConfig{Ranks: 2, LR: 0.05, Seed: 1},
		Store:     store,
		CkptEvery: 4,
		FullEvery: 2,
		Steps:     steps,
		Source: func(skip int) (BatchSource, func(), error) {
			gen := NewGenerator(cfg, 7)
			for i := 0; i < skip; i++ {
				gen.NextBatch(batch)
			}
			return gen.NewSource(batch), func() {}, nil
		},
		Faults: faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != steps || res.Recoveries != 1 {
		t.Errorf("elastic run: %d steps, %d recoveries; want %d steps, 1 recovery", res.Steps, res.Recoveries, steps)
	}
	if res.BytesRestored == 0 || res.LastRoot == "" {
		t.Errorf("recovery restored %d bytes, last root %q; want both non-empty", res.BytesRestored, res.LastRoot)
	}

	ht, info, err := RestoreHybridTrainer(cfg, HybridConfig{Ranks: 1, LR: 0.05, Seed: 1}, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	if info.Step != steps || ht.Iter() != steps {
		t.Errorf("single-rank rejoin at step %d (info %d), want %d", ht.Iter(), info.Step, steps)
	}
}

func TestPublicAPIEstimation(t *testing.T) {
	cfg := TestSuiteModel(1024, 16)
	g, err := EstimateGPU(cfg, "BigBasin", 1600, PlaceGPUMemory)
	if err != nil {
		t.Fatal(err)
	}
	c, err := EstimateCPUCluster(cfg, 200, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Throughput <= c.Throughput {
		t.Errorf("GPU (%v) should beat single-trainer CPU (%v) here", g.Throughput, c.Throughput)
	}
	if _, err := EstimateGPU(cfg, "TPUv4", 1600, PlaceGPUMemory); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestPublicAPIPlacement(t *testing.T) {
	models := ProductionModels()
	if len(models) != 3 {
		t.Fatalf("ProductionModels = %d", len(models))
	}
	// M3 does not fit Big Basin GPU memory.
	if _, err := FitPlacement(models[2], "BigBasin", PlaceGPUMemory, 0); err == nil {
		t.Error("M3prod must not fit on Big Basin GPUs")
	}
	plan, bd, err := BestPlacement(models[1], "Zion", 3200)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != PlaceSystemMemory {
		t.Errorf("M2prod on Zion best placement = %v, want SystemMemory", plan.Strategy)
	}
	if bd.Throughput <= 0 {
		t.Error("zero throughput")
	}
}

func TestPublicAPITieredPlacement(t *testing.T) {
	// M3prod overflows Big Basin HBM: the tiered hierarchy must hold it
	// and beat the remote-PS estimate.
	m3 := ProductionModels()[2]
	plan, err := FitPlacement(m3, "BigBasin", PlaceTiered, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Tiered == nil || plan.HotFraction <= 0 || plan.HotFraction >= 1 {
		t.Errorf("tiered plan %+v", plan)
	}
	tiered, err := EstimateGPU(m3, "BigBasin", 800, PlaceTiered)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := EstimateGPU(m3, "BigBasin", 800, PlaceRemoteCPU)
	if err != nil {
		t.Fatal(err)
	}
	if tiered.Throughput <= remote.Throughput {
		t.Errorf("tiered %v must beat remote %v for M3prod", tiered.Throughput, remote.Throughput)
	}
	tiers, err := MemoryTiers("BigBasin", 0)
	if err != nil || len(tiers) != 4 || tiers[0].Kind != TierHBM {
		t.Errorf("MemoryTiers: %v %v", tiers, err)
	}
	p, err := NewCachePolicy("clock", 16)
	if err != nil || p.Name() != "clock" {
		t.Errorf("NewCachePolicy: %v %v", p, err)
	}
	if _, err := PlaceTieredWith(m3, "BigBasin", TieredOptions{}); err != nil {
		t.Errorf("PlaceTieredWith: %v", err)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := Experiments()
	if len(ids) != 24 {
		t.Fatalf("Experiments() = %d ids", len(ids))
	}
	res, err := RunExperiment("table1", ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "Zion") {
		t.Error("table1 output missing Zion")
	}
}

func TestPlatformsAndDescribe(t *testing.T) {
	if len(Platforms()) != 3 {
		t.Error("three platforms expected")
	}
	if _, err := PlatformByName("BigBasin"); err != nil {
		t.Error(err)
	}
	d := Describe(ProductionModels()[0])
	if !strings.Contains(d, "M1prod") || !strings.Contains(d, "dense") {
		t.Errorf("Describe = %q", d)
	}
}

// TestPublicAPIMixedPrecision exercises the mixed-precision surface:
// dtype/wire parsing, a bf16-table hybrid trainer with compressed wires,
// and the dtype-aware analytic volume helpers.
func TestPublicAPIMixedPrecision(t *testing.T) {
	dt, err := ParseDType("bf16")
	if err != nil || dt != DTypeBF16 {
		t.Fatalf("ParseDType(bf16) = %v, %v", dt, err)
	}
	w, err := ParseWireFormat("int8")
	if err != nil || w != WireINT8 {
		t.Fatalf("ParseWireFormat(int8) = %v, %v", w, err)
	}
	if _, err := ParseWireFormat("fp8"); err == nil {
		t.Error("ParseWireFormat accepted fp8")
	}

	cfg := TestSuiteModel(500, 8)
	cfg.TableDType = DTypeBF16
	fp32 := cfg
	fp32.TableDType = DTypeFP32
	if b, f := cfg.EmbeddingBytes(), fp32.EmbeddingBytes(); 2*b != f {
		t.Errorf("bf16 embedding bytes %d, want half of %d", b, f)
	}

	ht, err := NewHybridTrainer(cfg, HybridConfig{
		Ranks: 2, LR: 0.05, Seed: 1,
		WireA2A: WireFP16, WireAllReduce: WireINT8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := NewGenerator(cfg, 2)
	const batch, steps = 64, 3
	for i := 0; i < steps; i++ {
		if _, _, err := ht.Step(gen.NextBatch(batch)); err != nil {
			t.Fatal(err)
		}
	}
	st := ht.CollectiveStats()
	wantA2A := HybridAllToAllBytesWire(cfg, batch, 2, WireFP16.BytesPerElem()) * steps
	if rel := float64(st.AllToAll.Bytes)/wantA2A - 1; rel > 0.02 || rel < -0.02 {
		t.Errorf("fp16 all-to-all meter %d bytes, analytic %.0f", st.AllToAll.Bytes, wantA2A)
	}
	if full := HybridAllToAllBytesWire(cfg, batch, 2, 4) * steps; float64(st.AllToAll.Bytes) > full/1.9 {
		t.Errorf("fp16 wire moved %d bytes, want ~half of fp32's %.0f", st.AllToAll.Bytes, full)
	}
}

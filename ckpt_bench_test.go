package recsim

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/benchreport"
	"repro/internal/ckpt"
)

// ckptBenchFixture trains one step of the shared bench model so the
// dirty trackers hold a realistic touched-row set, and returns the state
// view plus the per-table row ids for re-marking between delta saves.
func ckptBenchFixture() (*ckpt.ModelState, []*ckpt.Dirty, [][]int32) {
	cfg := benchreport.BenchStepConfig()
	tr := NewTrainer(NewModel(cfg, 1), TrainerConfig{LR: 0.05})
	gen := NewGenerator(cfg, 2)
	tr.Step(gen.NextBatch(128))
	dirty := tr.DirtyRows()
	touched := make([][]int32, len(dirty))
	for i, d := range dirty {
		ids := make([]int32, 0, d.Count())
		d.ForEach(func(r int32) { ids = append(ids, r) })
		touched[i] = ids
	}
	return tr.CkptState(), dirty, touched
}

// BenchmarkCkptSnapshot measures the checkpoint stall a training loop
// pays at a save point: a full snapshot of the bench model vs the
// incremental delta carrying only one step's touched rows (cmd/benchrun's
// ckpt_snapshot/{full,delta} entries record the same pair; their ratio is
// the ckpt_delta_vs_full speedup). Each iteration deletes the previous
// checkpoint after the new one lands, so the store directory stays small.
func BenchmarkCkptSnapshot(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		st, _, _ := ckptBenchFixture()
		dir := b.TempDir()
		store, err := ckpt.OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		var prev string
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Step++
			info, err := store.SaveFull(st, nil)
			if err != nil {
				b.Fatal(err)
			}
			if prev != "" {
				if err := os.RemoveAll(filepath.Join(dir, prev)); err != nil {
					b.Fatal(err)
				}
			}
			prev = info.Name
		}
		b.StopTimer()
		b.SetBytes(latestBytes(b, store))
	})
	b.Run("delta", func(b *testing.B) {
		st, dirty, touched := ckptBenchFixture()
		dir := b.TempDir()
		store, err := ckpt.OpenStore(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.SaveFull(st, dirty); err != nil {
			b.Fatal(err)
		}
		var prev string
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for ti, ids := range touched {
				dirty[ti].Mark(ids)
			}
			st.Step++
			info, err := store.SaveDelta(st, dirty)
			if err != nil {
				b.Fatal(err)
			}
			if prev != "" {
				if err := os.RemoveAll(filepath.Join(dir, prev)); err != nil {
					b.Fatal(err)
				}
			}
			prev = info.Name
		}
		b.StopTimer()
		b.SetBytes(latestBytes(b, store))
	})
}

// latestBytes reports the byte size of the newest checkpoint so the
// benchmark prints MB/s of checkpoint data written per save.
func latestBytes(b *testing.B, store *ckpt.Store) int64 {
	b.Helper()
	_, m, err := store.Latest()
	if err != nil {
		b.Fatal(err)
	}
	if m == nil {
		return 0
	}
	var bytes int64
	for _, e := range m.Entries {
		bytes += e.Bytes
	}
	return bytes
}

// TestCkptSteadyStateAllocs is the dirty-tracking allocation budget: the
// per-step Mark of one batch's touched rows, the ascending ForEach walk a
// delta encode performs, and the post-save Reset must not touch the heap.
// (TestTrainStepZeroAlloc separately proves the full training step stays
// zero-alloc with tracking enabled.)
func TestCkptSteadyStateAllocs(t *testing.T) {
	_, dirty, touched := ckptBenchFixture()
	var sink int32
	walk := func(r int32) { sink = r }
	if avg := testing.AllocsPerRun(10, func() {
		for ti, ids := range touched {
			dirty[ti].Mark(ids)
		}
		for _, d := range dirty {
			d.ForEach(walk)
		}
		for _, d := range dirty {
			d.Reset()
		}
	}); avg != 0 {
		t.Fatalf("dirty mark/walk/reset cycle allocates %.1f objects, want 0", avg)
	}
	_ = sink
}

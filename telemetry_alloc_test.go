package recsim

import (
	"testing"

	"repro/internal/benchreport"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/telemetry"
)

// TestStepTraceZeroAlloc is the observability half of the hot-path
// allocation budget: turning span tracing ON must not add a single heap
// allocation to any steady-state step. The budgets mirror the untraced
// guards — 0 for the single-process step (zeroalloc_test.go), ~0 with a
// small runtime allowance for the hybrid and ingestion-fed steps (their
// untraced guards in internal/hybrid and internal/ingest allow the same).
// TestTimeseriesZeroAlloc extends the budget to the flight recorder:
// with tracing AND per-step recording on, the recorder's sample (meter
// deltas, phase-histogram deltas, ring append, detector update) must
// add zero heap allocations to the single-process step and stay inside
// the hybrid step's existing ~0 (≤2 runtime) allowance.
func TestTimeseriesZeroAlloc(t *testing.T) {
	cfg := benchreport.BenchStepConfig()

	t.Run("single", func(t *testing.T) {
		trace := telemetry.NewTracer(1, 2048)
		reg := telemetry.NewRegistry()
		fr, err := telemetry.OpenFlightRecorder(telemetry.FlightRecorderConfig{
			Tracer: trace, Registry: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTrainer(NewModel(cfg, 1), TrainerConfig{LR: 0.05})
		tr.SetTrace(trace, 0)
		tr.SetRecorder(fr)
		batch := NewGenerator(cfg, 2).NextBatch(128)
		for i := 0; i < 12; i++ {
			tr.Step(batch)
		}
		if avg := testing.AllocsPerRun(10, func() { tr.Step(batch) }); avg != 0 {
			t.Fatalf("recorded Trainer.Step allocates %.1f objects per step, want 0", avg)
		}
		if fr.Timeseries().Len() == 0 {
			t.Fatal("recorder saw no samples")
		}
	})

	t.Run("hybrid", func(t *testing.T) {
		hc := hybrid.Config{Ranks: 2, LR: 0.05, Seed: 1, Overlap: true}
		hc.Trace = telemetry.NewTracer(hc.ShardCount(), 2048)
		hc.Registry = telemetry.NewRegistry()
		fr, err := telemetry.OpenFlightRecorder(telemetry.FlightRecorderConfig{
			Tracer: hc.Trace, Registry: hc.Registry, Ranks: hc.Ranks,
		})
		if err != nil {
			t.Fatal(err)
		}
		hc.Recorder = fr
		ht, err := hybrid.New(cfg, hc)
		if err != nil {
			t.Fatal(err)
		}
		defer ht.Close()
		batch := NewGenerator(cfg, 2).NextBatch(128)
		for i := 0; i < 12; i++ {
			ht.Step(batch)
		}
		if avg := testing.AllocsPerRun(20, func() { ht.Step(batch) }); avg > 2 {
			t.Fatalf("recorded hybrid step allocates %.1f objects per step, want ~0", avg)
		}
		last, ok := fr.Timeseries().Last()
		if !ok || last.WaitNS < 0 || last.StragglerIndex <= 0 {
			t.Fatalf("recorded hybrid sample malformed: %+v (ok=%v)", last, ok)
		}
	})
}

func TestStepTraceZeroAlloc(t *testing.T) {
	cfg := benchreport.BenchStepConfig()

	t.Run("single", func(t *testing.T) {
		trace := telemetry.NewTracer(1, 2048)
		tr := NewTrainer(NewModel(cfg, 1), TrainerConfig{LR: 0.05})
		tr.SetTrace(trace, 0)
		batch := NewGenerator(cfg, 2).NextBatch(128)
		for i := 0; i < 3; i++ {
			tr.Step(batch)
		}
		if avg := testing.AllocsPerRun(10, func() { tr.Step(batch) }); avg != 0 {
			t.Fatalf("traced Trainer.Step allocates %.1f objects per step, want 0", avg)
		}
		// The same budget covers the quantile histograms the spans feed.
		if h := trace.PhaseHist(telemetry.PhaseStep); h.Count() == 0 || h.Quantile(0.99) <= 0 {
			t.Fatalf("step histogram empty after traced steps (count %d)", h.Count())
		}
	})

	t.Run("hybrid", func(t *testing.T) {
		hc := hybrid.Config{Ranks: 2, LR: 0.05, Seed: 1, Overlap: true}
		hc.Trace = telemetry.NewTracer(hc.ShardCount(), 2048)
		ht, err := hybrid.New(cfg, hc)
		if err != nil {
			t.Fatal(err)
		}
		defer ht.Close()
		batch := NewGenerator(cfg, 2).NextBatch(128)
		for i := 0; i < 5; i++ {
			ht.Step(batch)
		}
		if avg := testing.AllocsPerRun(20, func() { ht.Step(batch) }); avg > 2 {
			t.Fatalf("traced hybrid step allocates %.1f objects per step, want ~0", avg)
		}
		for _, p := range []telemetry.Phase{telemetry.PhaseStep, telemetry.PhaseAllToAll, telemetry.PhaseAllReduce} {
			if h := hc.Trace.PhaseHist(p); h.Count() == 0 {
				t.Fatalf("%s histogram empty after traced hybrid steps", p)
			}
		}
	})

	t.Run("ingest", func(t *testing.T) {
		dir := t.TempDir()
		if err := NewGenerator(cfg, 9).WriteShards(dir, 4, 4*128); err != nil {
			t.Fatal(err)
		}
		ds, err := ingest.OpenDataset(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer ds.Close()
		iOpt := ingest.Options{BatchSize: 128, Readers: 2, Dedup: true, Seed: 1}
		iOpt.Trace = telemetry.NewTracer(1+iOpt.ShardCount(), 2048)
		iOpt.TraceShard = 1
		pipe, err := ingest.Open(ds, cfg, iOpt)
		if err != nil {
			t.Fatal(err)
		}
		defer pipe.Close()
		tr := NewTrainer(NewModel(cfg, 1), TrainerConfig{LR: 0.05})
		tr.SetTrace(iOpt.Trace, 0)
		// Many epochs of warmup: every slab, ring slot, and dedup map must
		// reach its high-water mark before counting.
		for i := 0; i < 800; i++ {
			mb, err := pipe.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			tr.Step(mb)
			pipe.Recycle(mb)
		}
		avg := testing.AllocsPerRun(20, func() {
			mb, err := pipe.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			tr.Step(mb)
			pipe.Recycle(mb)
		})
		if avg > 2 {
			t.Fatalf("traced ingest-fed step allocates %.1f objects per step, want ~0", avg)
		}
	})
}

package memtier

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
)

func TestPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name || p.Capacity() != 4 || p.Len() != 0 {
			t.Errorf("%s: fresh policy state %v/%d/%d", name, p.Name(), p.Capacity(), p.Len())
		}
	}
	if _, err := NewPolicy("belady", 4); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPoliciesSharedSemantics(t *testing.T) {
	for _, name := range PolicyNames() {
		p, _ := NewPolicy(name, 2)
		if p.Access(Key(0, 1)) {
			t.Errorf("%s: first access must miss", name)
		}
		if !p.Access(Key(0, 1)) {
			t.Errorf("%s: repeat access must hit", name)
		}
		if p.Access(Key(1, 1)) {
			t.Errorf("%s: same row in another table must be a distinct key", name)
		}
		if p.Len() != 2 {
			t.Errorf("%s: Len = %d, want 2", name, p.Len())
		}
		p.Access(Key(0, 2)) // forces one eviction
		if p.Len() != 2 {
			t.Errorf("%s: Len after eviction = %d, want capacity 2", name, p.Len())
		}
		h, m := p.Stats()
		if h != 1 || m != 3 {
			t.Errorf("%s: stats %d/%d, want 1 hit / 3 misses", name, h, m)
		}
		if got := HitRate(p); math.Abs(got-0.25) > 1e-12 {
			t.Errorf("%s: hit rate %v, want 0.25", name, got)
		}
		p.Reset()
		if p.Len() != 0 || HitRate(p) != 0 {
			t.Errorf("%s: reset did not clear state", name)
		}
	}
}

func TestPoliciesPanicOnZeroCapacity(t *testing.T) {
	for _, ctor := range []func(){
		func() { NewLRU(0) }, func() { NewLFU(0) }, func() { NewCLOCK(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on zero capacity")
				}
			}()
			ctor()
		}()
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	p := NewLRU(2)
	p.Access(1)
	p.Access(2)
	p.Access(1) // 2 is now least recent
	p.Access(3) // evicts 2
	if !p.Access(1) {
		t.Error("LRU must have kept key 1")
	}
	if p.Access(2) {
		t.Error("LRU must have evicted key 2")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	p := NewLFU(2)
	p.Access(1)
	p.Access(1)
	p.Access(1)
	p.Access(2)
	p.Access(3) // evicts 2 (freq 1) despite 2 being more recent than 1
	if !p.Access(1) {
		t.Error("LFU must keep the frequent key")
	}
	if p.Access(2) {
		t.Error("LFU must evict the infrequent key")
	}
}

func TestCLOCKSecondChance(t *testing.T) {
	p := NewCLOCK(2)
	p.Access(1)
	p.Access(2)
	p.Access(1) // re-reference 1
	p.Access(3) // sweep clears both refs; victim preference follows hand
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
	if !p.Access(3) {
		t.Error("CLOCK must retain the just-inserted key")
	}
}

func TestHitRateZipfShape(t *testing.T) {
	// Monotone in capacity, 1 at full capacity, higher skew -> higher
	// hit rate at equal capacity.
	prev := 0.0
	for _, c := range []int{10, 100, 1000, 10000} {
		h := HitRateZipf(1.2, 100000, c)
		if h < prev {
			t.Errorf("hit rate fell with capacity: %v -> %v", prev, h)
		}
		prev = h
	}
	if HitRateZipf(1.2, 1000, 1000) != 1 {
		t.Error("full-capacity hit rate must be 1")
	}
	if HitRateZipf(1.2, 1000, 0) != 0 {
		t.Error("zero-capacity hit rate must be 0")
	}
	if lo, hi := HitRateZipf(1.05, 100000, 100), HitRateZipf(1.6, 100000, 100); lo >= hi {
		t.Errorf("higher skew must cache better: s=1.05 %.3f vs s=1.6 %.3f", lo, hi)
	}
	// The §III-A2 claim: a cache holding 1% of rows absorbs far more
	// than 1% of accesses under production-like skew.
	if h := HitRateZipf(1.2, 100000, 1000); h < 0.3 {
		t.Errorf("1%% cache hit rate %v; expected strong locality", h)
	}
}

func TestHitRateFromCountsMatchesPrefixMass(t *testing.T) {
	counts := []uint64{50, 30, 10, 5, 3, 2}
	if h := HitRateFromCounts(counts, 2); math.Abs(h-0.8) > 1e-12 {
		t.Errorf("top-2 mass = %v, want 0.80", h)
	}
	// Unsorted input is tolerated.
	if h := HitRateFromCounts([]uint64{5, 50, 3, 30, 2, 10}, 2); math.Abs(h-0.8) > 1e-12 {
		t.Errorf("unsorted top-2 mass = %v", h)
	}
	if HitRateFromCounts(nil, 10) != 0 {
		t.Error("empty counts must give 0")
	}
}

func TestEstimateHitRateStacksTables(t *testing.T) {
	// One hot table and one cold table: a small shared cache must favor
	// the hot table, so the stacked estimate exceeds the cold table's
	// own hit rate and roughly tracks the hot table's.
	hot := TableDemand{Rows: 10000, Accesses: 100, Skew: 1.2}
	cold := TableDemand{Rows: 1000000, Accesses: 1, Skew: 1.2}
	both := EstimateHitRate([]TableDemand{hot, cold}, 5000)
	hotOnly := EstimateHitRate([]TableDemand{hot}, 5000)
	coldOnly := EstimateHitRate([]TableDemand{cold}, 5000)
	if !(both > coldOnly && both <= hotOnly+1e-9) {
		t.Errorf("stacked %v not between cold %v and hot %v", both, coldOnly, hotOnly)
	}
	// Capacity covering every row: hit rate 1.
	if h := EstimateHitRate([]TableDemand{{Rows: 100, Accesses: 1}}, 100); h != 1 {
		t.Errorf("full coverage = %v", h)
	}
	if EstimateHitRate(nil, 100) != 0 || EstimateHitRate([]TableDemand{hot}, 0) != 0 {
		t.Error("degenerate inputs must give 0")
	}
}

func TestEstimateHitRateMonotoneInCapacity(t *testing.T) {
	tables := []TableDemand{
		{Rows: 50000, Accesses: 30, Skew: 1.2},
		{Rows: 2000000, Accesses: 5, Skew: 1.2},
		{Rows: 300, Accesses: 2, Skew: 1.2},
	}
	prev := -1.0
	for _, c := range []int{100, 1000, 10000, 100000, 1000000} {
		h := EstimateHitRate(tables, c)
		if h < prev-1e-9 {
			t.Errorf("capacity %d: hit rate %v fell below %v", c, h, prev)
		}
		if h < 0 || h > 1 {
			t.Errorf("capacity %d: hit rate %v out of range", c, h)
		}
		prev = h
	}
}

func TestEstimateTracksReplayOnTracedData(t *testing.T) {
	// The analytic estimator (fed the measured counts) must land near
	// the replayed LFU hit rate — it models exactly that cache.
	cfg := core.Config{
		Name:          "memtier-test",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(4, 20000, 6),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.Concat,
	}
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	var batches []*core.MiniBatch
	counts := make([]map[int32]uint64, cfg.NumSparse())
	for f := range counts {
		counts[f] = make(map[int32]uint64)
	}
	for i := 0; i < 30; i++ {
		b := gen.NextBatch(64)
		batches = append(batches, b)
		for f, bag := range b.Bags {
			for _, ix := range bag.Indices {
				counts[f][ix]++
			}
		}
	}
	var demand []TableDemand
	for f, m := range counts {
		cs := make([]uint64, 0, len(m))
		var total uint64
		for _, c := range m {
			cs = append(cs, c)
			total += c
		}
		sortDesc(cs)
		demand = append(demand, TableDemand{Rows: cfg.Sparse[f].HashSize, Accesses: float64(total), Counts: cs})
	}
	const capRows = 2000
	est := EstimateHitRate(demand, capRows)
	lfu, _ := NewPolicy("lfu", capRows)
	measured := Replay(lfu, batches)
	if math.Abs(est-measured) > 0.15 {
		t.Errorf("analytic %v vs replayed LFU %v: divergence > 0.15", est, measured)
	}
}

func sortDesc(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] > s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestOpportunityCurveMonotoneAcrossPolicies(t *testing.T) {
	cfg := core.Config{
		Name:          "curve-test",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(3, 5000, 5),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.Concat,
	}
	gen := data.NewGenerator(cfg, 11, data.DefaultOptions())
	var batches []*core.MiniBatch
	for i := 0; i < 10; i++ {
		batches = append(batches, gen.NextBatch(64))
	}
	caps := []int{10, 100, 1000, 5000}
	for _, name := range PolicyNames() {
		rates, err := OpportunityCurve(name, batches, caps)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(rates); i++ {
			if rates[i]+1e-9 < rates[i-1] {
				t.Errorf("%s: hit rate fell with capacity: %v", name, rates)
			}
		}
		if rates[len(rates)-1] < 0.3 {
			t.Errorf("%s: large-cache hit rate %v; expected Zipf locality", name, rates)
		}
	}
	if _, err := OpportunityCurve("belady", batches, caps); err == nil {
		t.Error("unknown policy accepted")
	}
}

// tieredStats builds a model whose tables overflow Big Basin's HBM: one
// hot small table and one cold table far larger than 8-GPU HBM.
func overflowStats() []core.TableStatView {
	cfg := core.Config{
		Name:          "overflow",
		DenseFeatures: 64,
		EmbeddingDim:  64,
		BottomMLP:     []int{64},
		TopMLP:        []int{64},
		Interaction:   core.Concat,
		Sparse: []core.SparseFeature{
			{Name: "hot", HashSize: 1000, MeanPooled: 30, MaxPooled: 32},
			{Name: "cold", HashSize: 960_000_000, MeanPooled: 1, MaxPooled: 32}, // ~229 GB
		},
	}
	return cfg.TableStats()
}

func TestAssignSpillsColdTablesAndCaches(t *testing.T) {
	tiers := hw.BigBasin().MemoryTiers(0)
	asg, err := Assign(overflowStats(), tiers, AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if asg.TableTier[0] != 0 {
		t.Errorf("hot table assigned to tier %d, want HBM", asg.TableTier[0])
	}
	if asg.TableTier[1] == 0 {
		t.Error("cold 229GB table cannot live in 256GB-raw HBM")
	}
	if asg.CacheRows <= 0 || asg.CacheHitRate <= 0 || asg.CacheHitRate >= 1 {
		t.Errorf("cache rows %d hit rate %v; want an active cache", asg.CacheRows, asg.CacheHitRate)
	}
	// Top-tier fraction: resident hot share plus cached cold hits.
	if asg.TopTierFraction() <= asg.Tiers[0].ResidentShare {
		t.Error("cache hits must raise the top-tier lookup fraction")
	}
	var frac float64
	for _, tl := range asg.Tiers {
		frac += tl.LookupFraction
	}
	if math.Abs(frac-1) > 1e-9 {
		t.Errorf("lookup fractions sum to %v, want 1", frac)
	}
	if asg.String() == "" {
		t.Error("empty render")
	}
}

func TestAssignAllFitsTopTierDegeneratesToFlat(t *testing.T) {
	stats := []core.TableStatView{
		{Index: 0, Name: "small", HashSize: 1000, Bytes: 1000 * 64 * 4, MeanPooled: 5},
	}
	asg, err := Assign(stats, hw.BigBasin().MemoryTiers(0), AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if asg.CacheRows != 0 || asg.CacheHitRate != 0 {
		t.Errorf("no spill must mean no cache: %+v", asg)
	}
	if asg.TopTierFraction() != 1 {
		t.Errorf("all lookups must be served by HBM, got %v", asg.TopTierFraction())
	}
}

func TestAssignUsesProfileOrdering(t *testing.T) {
	// Two same-sized tables; the config says table 0 is hotter, but the
	// trace says table 1 is. The profile must win.
	stats := []core.TableStatView{
		{Index: 0, Name: "a", HashSize: 1 << 20, Bytes: 40 << 30, MeanPooled: 10},
		{Index: 1, Name: "b", HashSize: 1 << 20, Bytes: 40 << 30, MeanPooled: 1},
		{Index: 2, Name: "c", HashSize: 1 << 20, Bytes: 170 << 30, MeanPooled: 1},
	}
	profile := [][]uint64{{10, 5}, {1000, 800, 600}, {1, 1}}
	tiers := hw.BigBasin().MemoryTiers(0) // HBM usable = 192 GB
	asg, err := Assign(stats, tiers, AssignOptions{Profile: profile})
	if err != nil {
		t.Fatal(err)
	}
	if asg.TableTier[1] != 0 {
		t.Errorf("traced-hot table must win HBM, got tier %d", asg.TableTier[1])
	}
	if asg.TableTier[2] == 0 {
		t.Error("traced-cold large table must spill")
	}
}

func TestAssignErrorsWhenHierarchyTooSmall(t *testing.T) {
	stats := []core.TableStatView{
		{Index: 0, Name: "huge", HashSize: 1 << 30, Bytes: 64 << 40, MeanPooled: 1}, // 64 TB
	}
	if _, err := Assign(stats, hw.BigBasin().MemoryTiers(0), AssignOptions{}); err == nil {
		t.Error("64TB table must not fit the hierarchy")
	}
	if _, err := Assign(nil, hw.BigBasin().MemoryTiers(0), AssignOptions{}); err == nil {
		t.Error("empty stats accepted")
	}
	if _, err := Assign(stats, nil, AssignOptions{}); err == nil {
		t.Error("empty hierarchy accepted")
	}
}

func TestReserveAndUsable(t *testing.T) {
	for _, k := range []hw.MemTierKind{hw.TierHBM, hw.TierLocalDRAM, hw.TierRemoteDRAM, hw.TierNVM} {
		r := TierReserve(k)
		if r <= 0 || r >= 1 {
			t.Errorf("%v reserve %v", k, r)
		}
	}
	tier := hw.MemTier{Kind: hw.TierHBM, CapacityBytes: 100}
	if UsableBytes(tier) != 75 {
		t.Errorf("usable = %d, want 75", UsableBytes(tier))
	}
}

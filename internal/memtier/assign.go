package memtier

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
)

// TierReserve returns the fraction of a tier's raw capacity withheld from
// embedding packing: HBM keeps room for activations/workspace, DRAM for
// the OS and input pipeline, NVM for filesystem slack. The HBM/DRAM
// values match the placement package's packing reserves so a
// single-tier assignment degenerates to the flat strategies exactly.
func TierReserve(k hw.MemTierKind) float64 {
	switch k {
	case hw.TierHBM:
		return 0.25
	case hw.TierLocalDRAM, hw.TierRemoteDRAM:
		return 0.25
	default:
		return 0.10
	}
}

// UsableBytes returns the packable capacity of a tier after its reserve.
func UsableBytes(t hw.MemTier) int64 {
	return int64(float64(t.CapacityBytes) * (1 - TierReserve(t.Kind)))
}

// AssignOptions tune trace-driven tier assignment.
type AssignOptions struct {
	// Profile optionally carries per-feature row access counts sorted
	// descending (trace.Collector.RowFrequencies output, index-aligned
	// with the config's sparse features). When present it drives both
	// table ordering and cache hit-rate estimation; when nil both fall
	// back to configured mean pooled lengths and a Zipf(Skew) row law.
	Profile [][]uint64
	// Skew is the power-law exponent assumed for untraced rows;
	// <= 0 selects DefaultSkew.
	Skew float64
	// CacheFraction is the fraction of the top tier's usable capacity
	// reserved as a hot-row cache for tables resident in lower tiers.
	// It is only spent when tables actually spill; < 0 disables the
	// cache, 0 selects DefaultCacheFraction.
	CacheFraction float64
	// Policy names the eviction policy the cache is modeled with
	// (advisory; recorded on the assignment). Empty selects "lru".
	Policy string
}

// DefaultCacheFraction is the share of top-tier capacity dedicated to the
// hot-row cache when tables spill to lower tiers.
const DefaultCacheFraction = 0.10

// TierLoad is one tier's share of an assignment.
type TierLoad struct {
	Tier hw.MemTier
	// Tables lists resident table indices (ascending).
	Tables []int
	// Bytes is the resident embedding storage.
	Bytes int64
	// ResidentShare is the fraction of all lookups targeting resident
	// tables, before hot-row caching redirects traffic.
	ResidentShare float64
	// LookupFraction is the fraction of all lookups this tier actually
	// serves after the top-tier cache absorbs hits for lower tiers.
	LookupFraction float64
}

// Assignment is a feasibility-checked mapping of embedding tables onto a
// memory hierarchy plus the hot-row cache carved out of the top tier.
type Assignment struct {
	// Tiers holds per-tier loads, fastest first, index-aligned with the
	// hierarchy it was built from. Unused trailing tiers are included
	// with zero load so callers can render the full hierarchy.
	Tiers []TierLoad
	// TableTier maps each table index to its tier index.
	TableTier []int
	// CacheBytes / CacheRows describe the top-tier hot-row cache
	// (0 when nothing spilled or caching is disabled).
	CacheBytes int64
	CacheRows  int
	// CacheHitRate is the estimated stationary hit rate of that cache
	// over the lookup stream of spilled tables.
	CacheHitRate float64
	// Policy is the eviction policy the cache is modeled with.
	Policy string
}

// TopTierFraction returns the fraction of all lookups served by the
// fastest tier (resident tables plus cache hits).
func (a Assignment) TopTierFraction() float64 {
	if len(a.Tiers) == 0 {
		return 0
	}
	return a.Tiers[0].LookupFraction
}

// SpilledShare returns the fraction of lookups targeting tables resident
// below the top tier (before caching).
func (a Assignment) SpilledShare() float64 {
	var s float64
	for _, t := range a.Tiers[1:] {
		s += t.ResidentShare
	}
	return s
}

// String renders the assignment as a compact per-tier table.
func (a Assignment) String() string {
	var b strings.Builder
	for _, t := range a.Tiers {
		fmt.Fprintf(&b, "%-14s %2d tables  %9s  serves %5.1f%% of lookups\n",
			t.Tier.Kind.String(), len(t.Tables), core.HumanBytes(t.Bytes), 100*t.LookupFraction)
	}
	if a.CacheRows > 0 {
		fmt.Fprintf(&b, "hot-row cache  %s (%d rows, %s): est. hit rate %.1f%%\n",
			a.Policy, a.CacheRows, core.HumanBytes(a.CacheBytes), 100*a.CacheHitRate)
	}
	return b.String()
}

// Assign packs the tables onto the hierarchy hottest-first and carves a
// hot-row cache out of the top tier when tables spill. stats comes from
// core.Config.TableStats; tiers from hw.Platform.MemoryTiers (ordered
// fastest to slowest). It fails when the hierarchy's total usable
// capacity cannot hold the model.
func Assign(stats []core.TableStatView, tiers []hw.MemTier, opts AssignOptions) (Assignment, error) {
	if len(stats) == 0 {
		return Assignment{}, fmt.Errorf("memtier: no tables to assign")
	}
	if len(tiers) == 0 {
		return Assignment{}, fmt.Errorf("memtier: empty hierarchy")
	}
	if opts.Policy == "" {
		opts.Policy = "lru"
	}
	if opts.CacheFraction == 0 {
		opts.CacheFraction = DefaultCacheFraction
	}

	// Per-table access rates: traced totals when profiled, configured
	// mean pooled lengths otherwise.
	access := make([]float64, len(stats))
	var totalAccess float64
	for i, s := range stats {
		access[i] = s.MeanPooled
		if i < len(opts.Profile) && len(opts.Profile[i]) > 0 {
			var sum uint64
			for _, c := range opts.Profile[i] {
				sum += c
			}
			if sum > 0 {
				access[i] = float64(sum)
			}
		}
		totalAccess += access[i]
	}

	// Hottest-density-first: accesses per byte, the order that maximizes
	// the lookup share served by the fast tiers per byte spent.
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := access[order[a]] / float64(stats[order[a]].Bytes)
		db := access[order[b]] / float64(stats[order[b]].Bytes)
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})

	pack := func(topTierBudget int64) (Assignment, bool) {
		asg := Assignment{
			Tiers:     make([]TierLoad, len(tiers)),
			TableTier: make([]int, len(stats)),
			Policy:    opts.Policy,
		}
		free := make([]int64, len(tiers))
		for t, tier := range tiers {
			asg.Tiers[t].Tier = tier
			free[t] = UsableBytes(tier)
		}
		free[0] = topTierBudget
		for _, i := range order {
			placed := false
			for t := range tiers {
				if stats[i].Bytes <= free[t] {
					free[t] -= stats[i].Bytes
					asg.TableTier[i] = t
					asg.Tiers[t].Tables = append(asg.Tiers[t].Tables, i)
					asg.Tiers[t].Bytes += stats[i].Bytes
					asg.Tiers[t].ResidentShare += access[i] / totalAccess
					placed = true
					break
				}
			}
			if !placed {
				return Assignment{}, false
			}
		}
		for t := range asg.Tiers {
			sort.Ints(asg.Tiers[t].Tables)
		}
		return asg, true
	}

	// First try without a cache: if everything fits in the top tier the
	// assignment degenerates to the flat fast-tier placement.
	topUsable := UsableBytes(tiers[0])
	asg, ok := pack(topUsable)
	if !ok {
		return Assignment{}, fmt.Errorf(
			"memtier: %s of embeddings exceed the hierarchy's usable capacity",
			core.HumanBytes(totalBytes(stats)))
	}
	if asg.SpilledShare() == 0 || opts.CacheFraction < 0 {
		for t := range asg.Tiers {
			asg.Tiers[t].LookupFraction = asg.Tiers[t].ResidentShare
		}
		return asg, nil
	}

	// Tables spill: re-pack with part of the top tier held back as a
	// hot-row cache, then estimate its stationary hit rate over the
	// spilled tables' access stream.
	cacheBytes := int64(float64(topUsable) * opts.CacheFraction)
	cached, ok := pack(topUsable - cacheBytes)
	if ok {
		asg = cached
	} else {
		// The hierarchy is too tight to give up cache space; keep the
		// uncached packing.
		cacheBytes = 0
	}
	// Size cache rows by the access-weighted row footprint of the
	// spilled tables — the rows the cache will actually hold.
	var demand []TableDemand
	var rowBytesW, accessW float64
	for i, t := range asg.TableTier {
		if t == 0 {
			continue
		}
		rowBytesW += access[i] * float64(stats[i].Bytes) / float64(stats[i].HashSize)
		accessW += access[i]
		d := TableDemand{Rows: stats[i].HashSize, Accesses: access[i], Skew: opts.Skew}
		if i < len(opts.Profile) {
			d.Counts = opts.Profile[i]
		}
		demand = append(demand, d)
	}
	rowBytes := int64(4)
	if accessW > 0 && rowBytesW > 0 {
		rowBytes = int64(rowBytesW / accessW)
	}
	if rowBytes <= 0 {
		rowBytes = 4
	}
	asg.CacheBytes = cacheBytes
	asg.CacheRows = int(cacheBytes / rowBytes)
	if asg.CacheRows > 0 {
		asg.CacheHitRate = EstimateHitRate(demand, asg.CacheRows)
	}
	spilled := asg.SpilledShare()
	asg.Tiers[0].LookupFraction = asg.Tiers[0].ResidentShare + asg.CacheHitRate*spilled
	for t := 1; t < len(asg.Tiers); t++ {
		asg.Tiers[t].LookupFraction = asg.Tiers[t].ResidentShare * (1 - asg.CacheHitRate)
	}
	return asg, nil
}

func totalBytes(stats []core.TableStatView) int64 {
	var b int64
	for _, s := range stats {
		b += s.Bytes
	}
	return b
}

package memtier

import (
	"repro/internal/core"
)

// Replay streams every embedding lookup of the batches through the policy
// in arrival order and returns the resulting hit rate — the measured
// counterpart of EstimateHitRate.
func Replay(p Policy, batches []*core.MiniBatch) float64 {
	for _, b := range batches {
		for f, bag := range b.Bags {
			for _, ix := range bag.Indices {
				p.Access(Key(f, ix))
			}
		}
	}
	return HitRate(p)
}

// DemandFromProfile converts table stats plus a recorded access profile
// (per-feature row counts sorted descending, index-aligned with the
// stats — trace.Collector.RowFrequencies output) into the TableDemand
// slice the analytic hit-rate estimators consume. Tables absent from the
// profile fall back to their configured mean pooled length and a Zipf
// popularity with the given skew (<= 0 selects DefaultSkew).
func DemandFromProfile(stats []core.TableStatView, profile [][]uint64, skew float64) []TableDemand {
	demand := make([]TableDemand, len(stats))
	for i, s := range stats {
		demand[i] = TableDemand{Rows: s.HashSize, Accesses: s.MeanPooled, Skew: skew}
		if i < len(profile) && len(profile[i]) > 0 {
			var total uint64
			for _, c := range profile[i] {
				total += c
			}
			demand[i].Counts = profile[i]
			demand[i].Accesses = float64(total)
		}
	}
	return demand
}

// OpportunityCurve replays the batches through fresh caches of the given
// row capacities and returns the hit rate per capacity — the §III-A2
// caching-opportunity curve, generalized over eviction policies.
func OpportunityCurve(policy string, batches []*core.MiniBatch, capacities []int) ([]float64, error) {
	out := make([]float64, len(capacities))
	for i, cap := range capacities {
		p, err := NewPolicy(policy, cap)
		if err != nil {
			return nil, err
		}
		out[i] = Replay(p, batches)
	}
	return out, nil
}

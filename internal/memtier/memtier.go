// Package memtier models a tiered embedding-memory subsystem: a memory
// hierarchy (accelerator HBM, host DRAM, remote DRAM, NVM block storage —
// the MTrainS staging levels), hot-row caching on top of it with pluggable
// eviction policies (LRU, LFU, CLOCK), and trace-driven tier assignment
// that exploits the power-law access skew the paper characterizes in
// §III-A2 (Fig 6/7: "the skew creates caching opportunities").
//
// The trace package measures that skew; this package turns it into an
// optimization: given per-table (optionally per-row) access frequencies it
// pins hot tables high in the hierarchy, reserves leftover HBM as a
// hot-row cache for spilled tables, and estimates per-tier hit rates
// either from recorded traces or from a fitted power law when no trace
// exists. The placement package exposes the result as the Tiered strategy
// and perfmodel prices lookups by per-tier hit rate × bandwidth/latency.
package memtier

import (
	"container/heap"
	"container/list"
	"fmt"
	"sort"
)

// Key packs a (table, row) pair into the cache key space shared by all
// eviction policies.
func Key(feature int, row int32) uint64 {
	return uint64(feature)<<32 | uint64(uint32(row))
}

// Policy is a fixed-capacity cache eviction policy over (table, row) keys.
// Access touches a key and reports whether it was resident; a miss inserts
// the key, evicting per policy when full.
type Policy interface {
	// Name identifies the policy ("lru", "lfu", "clock").
	Name() string
	// Capacity is the maximum number of resident rows.
	Capacity() int
	// Len is the current number of resident rows.
	Len() int
	// Access touches key and reports whether it hit.
	Access(key uint64) bool
	// Stats returns accumulated hits and misses.
	Stats() (hits, misses uint64)
	// Reset empties the cache and clears the counters.
	Reset()
}

// HitRate returns hits/(hits+misses) for a policy, 0 when untouched.
func HitRate(p Policy) float64 {
	h, m := p.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// PolicyNames lists the available eviction policies.
func PolicyNames() []string { return []string{"lru", "lfu", "clock"} }

// NewPolicy constructs a policy by name.
func NewPolicy(name string, capacity int) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(capacity), nil
	case "lfu":
		return NewLFU(capacity), nil
	case "clock":
		return NewCLOCK(capacity), nil
	default:
		return nil, fmt.Errorf("memtier: unknown policy %q (have lru, lfu, clock)", name)
	}
}

func checkCapacity(capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("memtier: cache capacity %d", capacity))
	}
}

// ---- LRU ----

// LRU evicts the least-recently-used row. This is the canonical row-cache
// simulator the trace package's §III-A2 caching-opportunity analysis uses.
type LRU struct {
	capacity int
	ll       *list.List
	items    map[uint64]*list.Element
	hits     uint64
	misses   uint64
}

// NewLRU creates an LRU cache holding capacity rows.
func NewLRU(capacity int) *LRU {
	checkCapacity(capacity)
	return &LRU{capacity: capacity, ll: list.New(), items: make(map[uint64]*list.Element)}
}

// Name implements Policy.
func (c *LRU) Name() string { return "lru" }

// Capacity implements Policy.
func (c *LRU) Capacity() int { return c.capacity }

// Len implements Policy.
func (c *LRU) Len() int { return c.ll.Len() }

// Stats implements Policy.
func (c *LRU) Stats() (uint64, uint64) { return c.hits, c.misses }

// Reset implements Policy.
func (c *LRU) Reset() {
	c.ll = list.New()
	c.items = make(map[uint64]*list.Element)
	c.hits, c.misses = 0, 0
}

// Access implements Policy.
func (c *LRU) Access(key uint64) bool {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	c.items[key] = c.ll.PushFront(key)
	if c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(uint64))
	}
	return false
}

// ---- LFU ----

type lfuEntry struct {
	key   uint64
	count uint64
	seq   uint64 // insertion/last-touch order breaks frequency ties (older first)
	index int
}

type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].seq < h[j].seq
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *lfuHeap) Push(x any) {
	e := x.(*lfuEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// LFU evicts the least-frequently-used row (ties broken oldest-first).
// Under the stationary Zipf popularity of embedding rows it approaches the
// frequency-optimal cache the analytic estimators assume.
type LFU struct {
	capacity int
	heap     lfuHeap
	items    map[uint64]*lfuEntry
	seq      uint64
	hits     uint64
	misses   uint64
}

// NewLFU creates an LFU cache holding capacity rows.
func NewLFU(capacity int) *LFU {
	checkCapacity(capacity)
	return &LFU{capacity: capacity, items: make(map[uint64]*lfuEntry)}
}

// Name implements Policy.
func (c *LFU) Name() string { return "lfu" }

// Capacity implements Policy.
func (c *LFU) Capacity() int { return c.capacity }

// Len implements Policy.
func (c *LFU) Len() int { return len(c.items) }

// Stats implements Policy.
func (c *LFU) Stats() (uint64, uint64) { return c.hits, c.misses }

// Reset implements Policy.
func (c *LFU) Reset() {
	c.heap = nil
	c.items = make(map[uint64]*lfuEntry)
	c.seq, c.hits, c.misses = 0, 0, 0
}

// Access implements Policy.
func (c *LFU) Access(key uint64) bool {
	c.seq++
	if e, ok := c.items[key]; ok {
		e.count++
		heap.Fix(&c.heap, e.index)
		c.hits++
		return true
	}
	c.misses++
	if len(c.items) >= c.capacity {
		evicted := heap.Pop(&c.heap).(*lfuEntry)
		delete(c.items, evicted.key)
	}
	e := &lfuEntry{key: key, count: 1, seq: c.seq}
	heap.Push(&c.heap, e)
	c.items[key] = e
	return false
}

// ---- CLOCK ----

type clockSlot struct {
	key uint64
	ref bool
}

// CLOCK is the second-chance approximation of LRU: a circular buffer of
// slots with reference bits and a sweeping hand. It trades a little hit
// rate for O(1) state per row and no list maintenance — the shape a real
// HBM row cache would use.
type CLOCK struct {
	capacity int
	slots    []clockSlot
	index    map[uint64]int
	hand     int
	hits     uint64
	misses   uint64
}

// NewCLOCK creates a CLOCK cache holding capacity rows.
func NewCLOCK(capacity int) *CLOCK {
	checkCapacity(capacity)
	return &CLOCK{capacity: capacity, index: make(map[uint64]int)}
}

// Name implements Policy.
func (c *CLOCK) Name() string { return "clock" }

// Capacity implements Policy.
func (c *CLOCK) Capacity() int { return c.capacity }

// Len implements Policy.
func (c *CLOCK) Len() int { return len(c.slots) }

// Stats implements Policy.
func (c *CLOCK) Stats() (uint64, uint64) { return c.hits, c.misses }

// Reset implements Policy.
func (c *CLOCK) Reset() {
	c.slots = nil
	c.index = make(map[uint64]int)
	c.hand, c.hits, c.misses = 0, 0, 0
}

// Access implements Policy.
func (c *CLOCK) Access(key uint64) bool {
	if i, ok := c.index[key]; ok {
		c.slots[i].ref = true
		c.hits++
		return true
	}
	c.misses++
	if len(c.slots) < c.capacity {
		c.index[key] = len(c.slots)
		c.slots = append(c.slots, clockSlot{key: key, ref: true})
		return false
	}
	// Sweep: clear reference bits until an unreferenced victim appears.
	for c.slots[c.hand].ref {
		c.slots[c.hand].ref = false
		c.hand = (c.hand + 1) % c.capacity
	}
	victim := c.hand
	delete(c.index, c.slots[victim].key)
	c.slots[victim] = clockSlot{key: key, ref: true}
	c.index[key] = victim
	c.hand = (victim + 1) % c.capacity
	return false
}

// sortedDesc reports whether counts are sorted descending, the invariant
// trace-derived profiles must satisfy.
func sortedDesc(counts []uint64) bool {
	return sort.SliceIsSorted(counts, func(i, j int) bool { return counts[i] > counts[j] })
}

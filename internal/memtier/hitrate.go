package memtier

import (
	"math"
	"sort"
)

// DefaultSkew is the Zipf exponent assumed for embedding-row popularity
// when no trace exists. It matches the synthetic data generator's
// IndexSkew, which in turn encodes the paper's §III-A2 power-law
// characterization.
const DefaultSkew = 1.2

// TableDemand describes one table's access demand for analytic hit-rate
// estimation: how big it is, how often it is looked up, and how its
// per-row popularity is distributed (a recorded trace, or a fitted power
// law when none exists).
type TableDemand struct {
	// Rows is the table's hash size.
	Rows int
	// Accesses is the table's relative access rate — traced totals, or
	// the configured mean pooled length. Only ratios between tables
	// matter.
	Accesses float64
	// Counts optionally carries traced per-row access counts sorted
	// descending (trace.Collector row frequencies). When nil the
	// popularity is modeled as Zipf(Skew) over Rows rows.
	Counts []uint64
	// Skew is the Zipf exponent used when Counts is nil; <= 0 selects
	// DefaultSkew.
	Skew float64
}

// demandDist is the per-table popularity abstraction the stacked
// estimator works over: rank(q) counts rows whose per-access share is at
// least q, cdf(k) is the access mass of the hottest k rows.
type demandDist interface {
	rows() float64
	rank(share float64) float64
	cdf(rows float64) float64
	maxShare() float64
}

// ---- Zipf popularity ----

// zipfExactPrefix bounds the exact harmonic prefix; tails use the
// integral approximation, which is accurate to <0.1% past this rank.
const zipfExactPrefix = 1024

type zipfDist struct {
	s      float64
	n      float64
	prefix []float64 // prefix[k] = sum_{i=1..k} i^-s for k <= zipfExactPrefix
	total  float64   // H(n, s)
}

func newZipfDist(s float64, n int) *zipfDist {
	if s <= 0 {
		s = DefaultSkew
	}
	z := &zipfDist{s: s, n: float64(n)}
	m := n
	if m > zipfExactPrefix {
		m = zipfExactPrefix
	}
	z.prefix = make([]float64, m+1)
	for k := 1; k <= m; k++ {
		z.prefix[k] = z.prefix[k-1] + math.Pow(float64(k), -s)
	}
	z.total = z.mass(z.n)
	return z
}

// mass returns H(k, s) = sum_{i=1..k} i^-s, k clamped to [0, n].
func (z *zipfDist) mass(k float64) float64 {
	if k <= 0 {
		return 0
	}
	if k > z.n {
		k = z.n
	}
	if k <= float64(len(z.prefix)-1) {
		return z.prefix[int(k)]
	}
	// Exact prefix plus midpoint-rule integral tail.
	m := float64(len(z.prefix) - 1)
	a, b := m+0.5, k+0.5
	if z.s == 1 {
		return z.prefix[len(z.prefix)-1] + math.Log(b/a)
	}
	return z.prefix[len(z.prefix)-1] + (math.Pow(b, 1-z.s)-math.Pow(a, 1-z.s))/(1-z.s)
}

func (z *zipfDist) rows() float64 { return z.n }

func (z *zipfDist) maxShare() float64 { return 1 / z.total }

// rank inverts the popularity: rows with share k^-s/H(n,s) >= q.
func (z *zipfDist) rank(share float64) float64 {
	if share <= 0 {
		return z.n
	}
	k := math.Pow(share*z.total, -1/z.s)
	if k > z.n {
		return z.n
	}
	return math.Floor(k)
}

func (z *zipfDist) cdf(rows float64) float64 {
	if z.total == 0 {
		return 0
	}
	return z.mass(rows) / z.total
}

// ---- traced popularity ----

type countsDist struct {
	counts []uint64
	pre    []float64 // prefix sums
	n      float64   // total rows including never-touched ones
	total  float64
}

func newCountsDist(counts []uint64, rows int) *countsDist {
	d := &countsDist{counts: counts, n: float64(rows)}
	if float64(len(counts)) > d.n {
		d.n = float64(len(counts))
	}
	d.pre = make([]float64, len(counts)+1)
	for i, c := range counts {
		d.pre[i+1] = d.pre[i] + float64(c)
	}
	d.total = d.pre[len(counts)]
	return d
}

func (d *countsDist) rows() float64 { return d.n }

func (d *countsDist) maxShare() float64 {
	if d.total == 0 || len(d.counts) == 0 {
		return 0
	}
	return float64(d.counts[0]) / d.total
}

func (d *countsDist) rank(share float64) float64 {
	if d.total == 0 {
		return 0
	}
	threshold := share * d.total
	// counts sorted descending: first index with count < threshold.
	i := sort.Search(len(d.counts), func(i int) bool { return float64(d.counts[i]) < threshold })
	return float64(i)
}

func (d *countsDist) cdf(rows float64) float64 {
	if d.total == 0 {
		return 0
	}
	k := int(rows)
	if k > len(d.counts) {
		k = len(d.counts)
	}
	if k < 0 {
		k = 0
	}
	return d.pre[k] / d.total
}

func (t TableDemand) dist() demandDist {
	if len(t.Counts) > 0 {
		return newCountsDist(t.Counts, t.Rows)
	}
	return newZipfDist(t.Skew, t.Rows)
}

// HitRateZipf returns the stationary hit rate a frequency-ordered cache of
// capacityRows achieves over one table of rows Zipf(skew)-popular rows:
// the access mass of the hottest capacityRows rows, H(C,s)/H(N,s).
func HitRateZipf(skew float64, rows, capacityRows int) float64 {
	if rows <= 0 || capacityRows <= 0 {
		return 0
	}
	if capacityRows >= rows {
		return 1
	}
	return newZipfDist(skew, rows).cdf(float64(capacityRows))
}

// HitRateFromCounts returns the stationary hit rate for one table from
// traced per-row access counts sorted descending: the share of accesses
// absorbed by the capacityRows most popular rows.
func HitRateFromCounts(counts []uint64, capacityRows int) float64 {
	if capacityRows <= 0 || len(counts) == 0 {
		return 0
	}
	if !sortedDesc(counts) {
		sorted := append([]uint64(nil), counts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
		counts = sorted
	}
	return newCountsDist(counts, len(counts)).cdf(float64(capacityRows))
}

// EstimateHitRate returns the stationary hit rate a shared cache of
// capacityRows rows achieves over the combined access stream of the given
// tables. It assumes the cache converges to holding the globally hottest
// rows (true for LFU, a close upper bound for LRU/CLOCK under stationary
// Zipf traffic): a per-row access-rate threshold is found by bisection
// such that exactly capacityRows rows exceed it, and the hit rate is the
// access mass above the threshold.
func EstimateHitRate(tables []TableDemand, capacityRows int) float64 {
	if capacityRows <= 0 || len(tables) == 0 {
		return 0
	}
	dists := make([]demandDist, 0, len(tables))
	weights := make([]float64, 0, len(tables))
	var totalRows, totalAccess, maxRate float64
	for _, t := range tables {
		if t.Rows <= 0 || t.Accesses <= 0 {
			continue
		}
		d := t.dist()
		dists = append(dists, d)
		weights = append(weights, t.Accesses)
		totalRows += d.rows()
		totalAccess += t.Accesses
		if r := t.Accesses * d.maxShare(); r > maxRate {
			maxRate = r
		}
	}
	if len(dists) == 0 || totalAccess == 0 {
		return 0
	}
	if float64(capacityRows) >= totalRows {
		return 1
	}
	// Rows cached at absolute-rate threshold λ: rows whose table-local
	// share exceeds λ/accesses_i. Decreasing in λ; bisect in log space.
	cached := func(lambda float64) float64 {
		var n float64
		for i, d := range dists {
			n += d.rank(lambda / weights[i])
		}
		return n
	}
	lo, hi := maxRate*1e-18, maxRate
	for i := 0; i < 64; i++ {
		mid := math.Sqrt(lo * hi)
		if cached(mid) > float64(capacityRows) {
			lo = mid
		} else {
			hi = mid
		}
	}
	lambda := math.Sqrt(lo * hi)
	var hit float64
	for i, d := range dists {
		hit += weights[i] * d.cdf(d.rank(lambda/weights[i]))
	}
	return hit / totalAccess
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.Quantile(0.5)) {
		t.Errorf("empty summary %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if q := s.Quantile(0.5); q != 5 {
		t.Errorf("median of {0,10} = %v", q)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 10 {
		t.Errorf("q1 = %v", q)
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.NormMS(0, 10)
		}
		s := Summarize(xs)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	if h.Total() != 12 {
		t.Errorf("Total = %d", h.Total())
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count %d", i, c)
		}
	}
	fr := h.Fractions()
	if math.Abs(fr[0]-1.0/12) > 1e-12 {
		t.Errorf("fraction = %v", fr[0])
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Errorf("BinCenter(0) = %v", c)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0)        // first bin
	h.Add(0.999999) // last bin
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("edge handling: %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 4)
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := xrand.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormMS(5, 2)
	}
	grid := Linspace(-5, 15, 400)
	dens := KDE(xs, grid, 0)
	var integral float64
	step := grid[1] - grid[0]
	for _, d := range dens {
		integral += d * step
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
	// Peak should be near the true mean.
	best := 0
	for i, d := range dens {
		if d > dens[best] {
			best = i
		}
	}
	if math.Abs(grid[best]-5) > 1 {
		t.Errorf("KDE mode at %v, want ~5", grid[best])
	}
}

func TestKDEEmpty(t *testing.T) {
	dens := KDE(nil, Linspace(0, 1, 5), 0)
	for _, d := range dens {
		if d != 0 {
			t.Error("empty KDE should be zero")
		}
	}
}

func TestLinspace(t *testing.T) {
	g := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v", i, g[i])
		}
	}
	if g := Linspace(3, 9, 1); len(g) != 1 || g[0] != 3 {
		t.Errorf("Linspace n=1: %v", g)
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	// freq(rank) = 1000 * rank^-1.5
	freq := make([]float64, 100)
	for i := range freq {
		freq[i] = 1000 * math.Pow(float64(i+1), -1.5)
	}
	alpha, ok := FitPowerLaw(freq)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(alpha-1.5) > 0.01 {
		t.Errorf("alpha = %v, want 1.5", alpha)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if _, ok := FitPowerLaw([]float64{1, 0}); ok {
		t.Error("fit should fail with < 3 positive points")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("GeoMean = %v, want 10", g)
	}
	if g := GeoMean([]float64{-1, 0}); !math.IsNaN(g) {
		t.Errorf("GeoMean of non-positive = %v, want NaN", g)
	}
}

package metrics

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	s := BarChart([]string{"a", "bb"}, []float64{2, 4}, 8)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Max value gets the full width, half value gets half.
	if !strings.Contains(lines[1], strings.Repeat("#", 8)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[0], "#### ") || strings.Contains(lines[0], "#####") {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	// Labels pad to equal width.
	if !strings.HasPrefix(lines[0], "a  |") {
		t.Errorf("label padding wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "4") || !strings.Contains(lines[0], "2") {
		t.Error("values missing from chart")
	}
}

func TestBarChartZeroWidthAndZeroMax(t *testing.T) {
	// width <= 0 falls back to the default; all-zero values draw no bars.
	s := BarChart([]string{"x"}, []float64{0}, 0)
	if strings.Contains(s, "#") {
		t.Errorf("zero values should render no bar: %q", s)
	}
}

func TestBarChartPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BarChart([]string{"a"}, []float64{1, 2}, 10)
}

func TestHeatmap(t *testing.T) {
	s := Heatmap([]string{"r1", "row2"}, []string{"c1", "c2"},
		[][]float64{{1, 2}, {3, 4.5}}, "%.1f")
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "c1") || !strings.Contains(lines[0], "c2") {
		t.Errorf("header missing columns: %q", lines[0])
	}
	if !strings.Contains(lines[2], "row2") || !strings.Contains(lines[2], "4.5") {
		t.Errorf("row2 wrong: %q", lines[2])
	}
	// Default format applies when empty.
	s2 := Heatmap([]string{"r"}, []string{"c"}, [][]float64{{1.234}}, "")
	if !strings.Contains(s2, "1.23") {
		t.Errorf("default %%'.2f' format not applied: %q", s2)
	}
}

func TestHeatmapPanicsOnRaggedRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Heatmap([]string{"r"}, []string{"c1", "c2"}, [][]float64{{1}}, "")
}

func TestTable(t *testing.T) {
	s := Table([][]string{{"name", "val"}, {"throughput", "12"}, {"x", "3"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") || strings.ContainsAny(lines[1], "abc") {
		t.Errorf("underline wrong: %q", lines[1])
	}
	// Columns align: "val" starts at the same offset in every row.
	off := strings.Index(lines[0], "val")
	if got := strings.Index(lines[2], "12"); got != off {
		t.Errorf("column misaligned: header at %d, cell at %d", off, got)
	}
	if Table(nil) != "" {
		t.Error("empty table should render empty string")
	}
	// Short rows pad with empty cells instead of panicking.
	if s := Table([][]string{{"a", "b"}, {"only"}}); !strings.Contains(s, "only") {
		t.Errorf("short row dropped: %q", s)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty string")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	runes := []rune(s)
	if len(runes) != 4 {
		t.Fatalf("got %d runes: %q", len(runes), s)
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
	// Constant series renders the lowest tick everywhere.
	flat := []rune(Sparkline([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("constant series should be flat: %q", string(flat))
		}
	}
}

func TestGantt(t *testing.T) {
	rows := []GanttRow{
		{Label: "rank 0", Intervals: [][2]float64{{0, 5}, {8, 10}}},
		{Label: "ingest", Intervals: [][2]float64{{5, 8}}},
	}
	out := Gantt(rows, 0, 10, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "rank 0 |#####...##|") {
		t.Errorf("row 0 = %q", lines[0])
	}
	if !strings.Contains(lines[1], "ingest |.....###..|") {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Sub-column intervals still paint at least one cell.
	tiny := Gantt([]GanttRow{{Label: "x", Intervals: [][2]float64{{0.1, 0.11}}}}, 0, 100, 10)
	if !strings.Contains(tiny, "#") {
		t.Errorf("tiny interval invisible: %q", tiny)
	}
	// Degenerate range must not divide by zero.
	if s := Gantt(rows, 5, 5, 10); s == "" {
		t.Error("degenerate range rendered nothing")
	}
}

func TestCSV(t *testing.T) {
	s := CSV([][]string{{"a", "b"}, {"1", "2"}})
	if s != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", s)
	}
}

func TestFormatters(t *testing.T) {
	if F(1234.5678) != "1235" {
		t.Errorf("F = %q", F(1234.5678))
	}
	if F2(1.236) != "1.24" {
		t.Errorf("F2 = %q", F2(1.236))
	}
}

package metrics

import (
	"fmt"
	"math"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart. Labels and values must
// align; width is the maximum bar length in characters.
func BarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("metrics: labels/values length mismatch")
	}
	if width <= 0 {
		width = 40
	}
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, l := range labels {
		n := 0
		if max > 0 {
			n = int(values[i] / max * float64(width))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", labelW, l, strings.Repeat("#", n), values[i])
	}
	return b.String()
}

// Heatmap renders a value grid with row/column headers; the cell text is
// the value itself, so the output doubles as the numeric table.
func Heatmap(rowLabels, colLabels []string, values [][]float64, format string) string {
	if format == "" {
		format = "%.2f"
	}
	if len(values) != len(rowLabels) {
		panic("metrics: heatmap rows mismatch")
	}
	cells := make([][]string, len(values))
	colW := make([]int, len(colLabels))
	for j, c := range colLabels {
		colW[j] = len(c)
	}
	for i, row := range values {
		if len(row) != len(colLabels) {
			panic("metrics: heatmap cols mismatch")
		}
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = fmt.Sprintf(format, v)
			if len(cells[i][j]) > colW[j] {
				colW[j] = len(cells[i][j])
			}
		}
	}
	rowW := 0
	for _, r := range rowLabels {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", rowW, "")
	for j, c := range colLabels {
		fmt.Fprintf(&b, "  %*s", colW[j], c)
	}
	b.WriteByte('\n')
	for i, r := range rowLabels {
		fmt.Fprintf(&b, "%-*s", rowW, r)
		for j := range colLabels {
			fmt.Fprintf(&b, "  %*s", colW[j], cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows of cells with aligned columns; the first row is
// treated as the header and underlined.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := len(rows[0])
	w := make([]int, cols)
	for _, r := range rows {
		for j, c := range r {
			if j < cols && len(c) > w[j] {
				w[j] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for j := 0; j < cols; j++ {
			c := ""
			if j < len(r) {
				c = r[j]
			}
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[j], c)
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	total := cols - 1
	for _, x := range w {
		total += x + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}

// Sparkline compresses a series into a one-line unicode profile.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if max > min {
			i = int((v - min) / (max - min) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[i])
	}
	return b.String()
}

// GanttRow is one labeled interval set for Gantt: a track name plus
// [start, end) pairs in arbitrary (but shared) time units.
type GanttRow struct {
	Label     string
	Intervals [][2]float64
}

// Gantt renders labeled interval tracks as an ASCII timeline. The time
// axis spans [t0, t1] over width characters; each row paints '#' where
// any of its intervals cover the column. Used for per-step span
// timelines ("which phase ran when, on which shard").
func Gantt(rows []GanttRow, t0, t1 float64, width int) string {
	if width <= 0 {
		width = 80
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	labelW := 0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	scale := float64(width) / (t1 - t0)
	var b strings.Builder
	for _, r := range rows {
		cells := make([]byte, width)
		for i := range cells {
			cells[i] = '.'
		}
		for _, iv := range r.Intervals {
			lo := int(math.Floor((iv[0] - t0) * scale))
			hi := int(math.Ceil((iv[1] - t0) * scale))
			if hi <= lo {
				hi = lo + 1
			}
			for c := lo; c < hi; c++ {
				if c >= 0 && c < width {
					cells[c] = '#'
				}
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, r.Label, cells)
	}
	return b.String()
}

// CSV renders rows as comma-separated text (no quoting; intended for
// numeric experiment dumps).
func CSV(rows [][]string) string {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// F formats a float with %.4g, the default numeric cell format.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Package metrics provides the statistical tooling the characterization
// experiments need: summary statistics, histograms, kernel density
// estimates (the KDE curves of Fig 7), power-law fits for access
// distributions, and plain-text renderers (bar charts, heatmaps, aligned
// tables) so every figure of the paper can be regenerated on a terminal.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual moments and order statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	P25, P50  float64
	p         []float64
}

// Summarize computes summary statistics of xs. It copies and sorts the
// input.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		s.Mean, s.Std = math.NaN(), math.NaN()
		s.Min, s.Max = math.NaN(), math.NaN()
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.p = sorted
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	var sq float64
	for _, v := range sorted {
		d := v - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(sorted)))
	s.P25 = s.Quantile(0.25)
	s.P50 = s.Quantile(0.50)
	return s
}

// Quantile returns the q-quantile (0..1) by linear interpolation.
func (s Summary) Quantile(q float64) float64 {
	if len(s.p) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.p[0]
	}
	if q >= 1 {
		return s.p[len(s.p)-1]
	}
	pos := q * float64(len(s.p)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.p) {
		return s.p[lo]
	}
	return s.p[lo]*(1-frac) + s.p[lo+1]*frac
}

// String renders a one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g p50=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.Max)
}

// Histogram is a fixed-width binned counter over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if hi <= lo || n <= 0 {
		panic(fmt.Sprintf("metrics: bad histogram [%v,%v) x%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records a value. Out-of-range values are counted in under/over
// buckets and included in Total.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.Lo:
		h.under++
	case v >= h.Hi:
		h.over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // float edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded values including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fractions returns each bin's share of the total (0 if empty).
func (h *Histogram) Fractions() []float64 {
	f := make([]float64, len(h.Counts))
	if h.total == 0 {
		return f
	}
	for i, c := range h.Counts {
		f[i] = float64(c) / float64(h.total)
	}
	return f
}

// KDE evaluates a Gaussian kernel density estimate of xs at the points
// grid, using Silverman's rule of thumb when bandwidth <= 0.
func KDE(xs []float64, grid []float64, bandwidth float64) []float64 {
	out := make([]float64, len(grid))
	if len(xs) == 0 {
		return out
	}
	if bandwidth <= 0 {
		s := Summarize(xs)
		iqr := s.Quantile(0.75) - s.Quantile(0.25)
		sigma := s.Std
		a := sigma
		if iqr > 0 && iqr/1.34 < a {
			a = iqr / 1.34
		}
		if a <= 0 {
			a = 1e-3
		}
		bandwidth = 0.9 * a * math.Pow(float64(len(xs)), -0.2)
	}
	norm := 1 / (float64(len(xs)) * bandwidth * math.Sqrt(2*math.Pi))
	for i, g := range grid {
		var sum float64
		for _, x := range xs {
			u := (g - x) / bandwidth
			sum += math.Exp(-0.5 * u * u)
		}
		out[i] = sum * norm
	}
	return out
}

// Linspace returns n evenly spaced points covering [lo, hi].
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// FitPowerLaw fits frequency ~ C · rank^(-alpha) to the positive counts in
// freq (unsorted) via least squares in log-log space, returning alpha.
// The paper observes that per-table access frequencies resemble a power
// law (§III-A2); this fit quantifies the skew of generated workloads.
func FitPowerLaw(freq []float64) (alpha float64, ok bool) {
	vals := make([]float64, 0, len(freq))
	for _, v := range freq {
		if v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) < 3 {
		return 0, false
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	// Regress log f on log rank.
	var sx, sy, sxx, sxy float64
	n := float64(len(vals))
	for i, v := range vals {
		x := math.Log(float64(i + 1))
		y := math.Log(v)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	slope := (n*sxy - sx*sy) / den
	return -slope, true
}

// GeoMean returns the geometric mean of positive values (NaN if none).
func GeoMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, v := range xs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}

package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func TestTestSuiteConfigDefaults(t *testing.T) {
	cfg := DefaultTestSuite(1024, 16)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if cfg.DenseFeatures != 1024 || cfg.NumSparse() != 16 {
		t.Errorf("dims: %d dense, %d sparse", cfg.DenseFeatures, cfg.NumSparse())
	}
	if len(cfg.BottomMLP) != 3 || cfg.BottomMLP[0] != 512 {
		t.Errorf("bottom MLP %v, want 512^3", cfg.BottomMLP)
	}
	for _, s := range cfg.Sparse {
		if s.HashSize != TestSuiteHashSize || s.MaxPooled != 32 {
			t.Errorf("sparse feature %+v", s)
		}
	}
}

func TestTestSuiteConfigOverrides(t *testing.T) {
	cfg := TestSuiteConfig(64, 4, 1024, 4, 400000)
	if len(cfg.BottomMLP) != 4 || cfg.BottomMLP[0] != 1024 {
		t.Errorf("MLP override failed: %v", cfg.BottomMLP)
	}
	if cfg.Sparse[0].HashSize != 400000 {
		t.Errorf("hash override failed: %d", cfg.Sparse[0].HashSize)
	}
	// Zero args fall back to defaults.
	cfg = TestSuiteConfig(64, 4, 0, 0, 0)
	if cfg.BottomMLP[0] != 512 || len(cfg.BottomMLP) != 3 || cfg.Sparse[0].HashSize != TestSuiteHashSize {
		t.Error("zero overrides must use defaults")
	}
}

// TestTableIIFidelity checks the production model zoo against Table II.
func TestTableIIFidelity(t *testing.T) {
	cases := []struct {
		cfg       core.Config
		sparse    int
		dense     int
		meanLen   float64
		meanHash  float64
		minGB     float64
		maxGB     float64
		bottomMLP []int
		topMLPLen int
	}{
		{M1Prod(), 30, 800, 28, 5.7e6, 10, 100, []int{512}, 3},
		{M2Prod(), 13, 504, 17, 7.3e6, 10, 100, []int{1024}, 3},
		{M3Prod(), 127, 809, 49, 3.7e6, 100, 400, []int{512}, 5},
	}
	for _, c := range cases {
		if c.cfg.NumSparse() != c.sparse {
			t.Errorf("%s: %d sparse features, want %d", c.cfg.Name, c.cfg.NumSparse(), c.sparse)
		}
		if c.cfg.DenseFeatures != c.dense {
			t.Errorf("%s: %d dense features, want %d", c.cfg.Name, c.cfg.DenseFeatures, c.dense)
		}
		var sumL, sumH float64
		for _, s := range c.cfg.Sparse {
			sumL += s.MeanPooled
			sumH += float64(s.HashSize)
			if s.HashSize < 30 || s.HashSize > 20_000_000 {
				t.Errorf("%s: hash size %d outside Fig 6 range [30, 20M]", c.cfg.Name, s.HashSize)
			}
		}
		n := float64(c.cfg.NumSparse())
		if math.Abs(sumL/n-c.meanLen)/c.meanLen > 0.02 {
			t.Errorf("%s: mean feature length %v, want %v", c.cfg.Name, sumL/n, c.meanLen)
		}
		if math.Abs(sumH/n-c.meanHash)/c.meanHash > 0.05 {
			t.Errorf("%s: mean hash size %v, want %v", c.cfg.Name, sumH/n, c.meanHash)
		}
		gb := core.GB(c.cfg.EmbeddingBytes())
		if gb < c.minGB || gb > c.maxGB {
			t.Errorf("%s: embedding size %.1f GB outside [%v, %v]", c.cfg.Name, gb, c.minGB, c.maxGB)
		}
		for i, w := range c.bottomMLP {
			if c.cfg.BottomMLP[i] != w {
				t.Errorf("%s: bottom MLP %v", c.cfg.Name, c.cfg.BottomMLP)
			}
		}
		if len(c.cfg.TopMLP) != c.topMLPLen {
			t.Errorf("%s: top MLP depth %d, want %d", c.cfg.Name, len(c.cfg.TopMLP), c.topMLPLen)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
		}
	}
}

func TestProdModelsDeterministic(t *testing.T) {
	a, b := M1Prod(), M1Prod()
	for i := range a.Sparse {
		if a.Sparse[i].HashSize != b.Sparse[i].HashSize {
			t.Fatal("M1Prod must be deterministic")
		}
	}
}

func TestHashSizesAreHeavyTailed(t *testing.T) {
	// Fig 6: hash sizes span orders of magnitude.
	cfg := M3Prod()
	min, max := math.MaxInt64, 0
	for _, s := range cfg.Sparse {
		if s.HashSize < min {
			min = s.HashSize
		}
		if s.HashSize > max {
			max = s.HashSize
		}
	}
	if float64(max)/float64(min) < 100 {
		t.Errorf("hash sizes should span >2 orders of magnitude: [%d, %d]", min, max)
	}
}

func TestFeatureLengthsArePowerLawish(t *testing.T) {
	// Fig 7: mean feature lengths follow a skewed distribution.
	cfg := M3Prod()
	lens := make([]float64, 0, cfg.NumSparse())
	for _, s := range cfg.Sparse {
		lens = append(lens, s.MeanPooled)
	}
	sum := metrics.Summarize(lens)
	if sum.P50 >= sum.Mean {
		t.Errorf("skewed lengths expected: median %v should sit below mean %v", sum.P50, sum.Mean)
	}
	if _, ok := metrics.FitPowerLaw(lens); !ok {
		t.Error("power-law fit should succeed on feature lengths")
	}
}

func TestProdSetup(t *testing.T) {
	s1, err := ProdSetup("M1prod")
	if err != nil || s1.Trainers != 6 || s1.Nodes() != 14 {
		t.Errorf("M1 setup %+v err %v", s1, err)
	}
	s2, _ := ProdSetup("M2prod")
	if s2.Trainers != 20 || s2.Nodes() != 36 || s2.OptimalGPUBatch != 3200 {
		t.Errorf("M2 setup %+v", s2)
	}
	s3, _ := ProdSetup("M3prod")
	if s3.Trainers != 8 || s3.HogwildThreads != 4 || s3.OptimalGPUBatch != 800 {
		t.Errorf("M3 setup %+v", s3)
	}
	if _, err := ProdSetup("M4prod"); err == nil {
		t.Error("unknown model must error")
	}
}

func TestFig2Catalog(t *testing.T) {
	cat := Fig2Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog size %d", len(cat))
	}
	// News Feed trains most frequently (smallest gap).
	for _, c := range cat[1:] {
		if c.FreqEveryHrs <= cat[0].FreqEveryHrs {
			t.Errorf("%s should train less frequently than News Feed", c.Name)
		}
	}
	// Recommendation models dominate training cycles (paper: >50%
	// across all recommendation workloads).
	recShare := 0.0
	for _, c := range cat {
		if c.ModelFamily == "recommendation (DLRM)" {
			recShare += c.ShareOfCycles
		}
	}
	if recShare < 0.5 {
		t.Errorf("recommendation share %v, paper reports >50%%", recShare)
	}
}

func TestFleetSamplerDistributions(t *testing.T) {
	f := NewFleetSampler(1)
	runs := f.SampleN(4000)
	counts := map[int]int{}
	psAbove := 0
	for _, r := range runs {
		if r.Trainers < 1 || r.Trainers > 50 || r.ParamSrv < 1 || r.ParamSrv > 50 {
			t.Fatalf("run out of range: %+v", r)
		}
		counts[r.Trainers]++
		if r.ParamSrv > 20 {
			psAbove++
		}
	}
	// >40% of runs share the modal trainer count (Fig 9 narrative).
	mode, modeCount := 0, 0
	for k, v := range counts {
		if v > modeCount {
			mode, modeCount = k, v
		}
	}
	if frac := float64(modeCount) / float64(len(runs)); frac < 0.40 {
		t.Errorf("modal trainer count %d covers %v of runs, want >= 0.40", mode, frac)
	}
	// PS counts vary widely: a visible tail above 20 servers.
	if frac := float64(psAbove) / float64(len(runs)); frac < 0.05 {
		t.Errorf("PS tail too thin: %v above 20", frac)
	}
}

func TestRunSampleConfig(t *testing.T) {
	f := NewFleetSampler(2)
	r := f.Sample()
	cfg := r.Config()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("sampled config invalid: %v", err)
	}
	if cfg.DenseFeatures != r.DenseFeatures || cfg.NumSparse() != r.SparseCount {
		t.Error("config does not reflect sample")
	}
}

func TestFleetSamplerDeterminism(t *testing.T) {
	a := NewFleetSampler(3).SampleN(100)
	b := NewFleetSampler(3).SampleN(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampler must be deterministic per seed")
		}
	}
}

// Package workload encodes the models and run populations the paper
// studies: the three production recommendation models of Table II
// (M1prod, M2prod, M3prod) with per-table hash-size and feature-length
// distributions matching Fig 6/7, the parameterized test suite of §V,
// the production cluster setups of Table III, the workload catalog of
// Fig 2, and the fleet samplers behind Fig 5 and Fig 9.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/xrand"
)

// Test-suite constants (§V): fixed embedding dimension, truncation at 32
// lookups, hash size 100000 unless swept.
const (
	TestSuiteEmbeddingDim = 32
	TestSuiteHashSize     = 100000
	TestSuiteMeanPooled   = 10.0
	TestSuiteMaxPooled    = 32
)

// TestSuiteConfig builds the §V design-space-exploration model: the given
// number of dense and sparse features, uniform sparse features, and MLP
// stacks of the given width/depth on both bottom and top (the paper's
// default is 512³).
func TestSuiteConfig(dense, sparse, mlpWidth, mlpLayers, hashSize int) core.Config {
	if mlpWidth <= 0 {
		mlpWidth = 512
	}
	if mlpLayers <= 0 {
		mlpLayers = 3
	}
	if hashSize <= 0 {
		hashSize = TestSuiteHashSize
	}
	mlp := make([]int, mlpLayers)
	for i := range mlp {
		mlp[i] = mlpWidth
	}
	return core.Config{
		Name:          fmt.Sprintf("test-d%d-s%d-mlp%d^%d-h%d", dense, sparse, mlpWidth, mlpLayers, hashSize),
		DenseFeatures: dense,
		Sparse:        core.UniformSparse(sparse, hashSize, TestSuiteMeanPooled),
		EmbeddingDim:  TestSuiteEmbeddingDim,
		BottomMLP:     mlp,
		TopMLP:        mlp,
		Interaction:   core.Concat,
	}
}

// DefaultTestSuite returns the §V defaults for a dense/sparse pair:
// MLP 512³ and hash size 100000.
func DefaultTestSuite(dense, sparse int) core.Config {
	return TestSuiteConfig(dense, sparse, 512, 3, TestSuiteHashSize)
}

// SweepDense and SweepSparse are the §V grid axes.
var (
	SweepDense  = []int{64, 256, 1024, 4096}
	SweepSparse = []int{4, 16, 64, 128}
	// SweepCPUBatch / SweepGPUBatch are the Fig 11 batch axes.
	SweepCPUBatch = []int{100, 200, 400}
	SweepGPUBatch = []int{400, 800, 1600, 3200}
	// SweepHash is the Fig 12 hash-size axis.
	SweepHash = []int{100000, 400000, 3200000, 25600000}
	// SweepMLP is the Fig 13 width/depth grid.
	SweepMLPWidths = []int{64, 256, 1024}
	SweepMLPDepths = []int{2, 3, 4}
)

// prodTableSpec synthesizes per-table hash sizes and mean feature lengths
// with the distributional shape of Fig 6/7: log-normal hash sizes clipped
// to [30, 20M] and power-law mean lengths, both rescaled to hit the
// Table II model means.
func prodTableSpec(n int, meanHash float64, meanLen float64, seed int64) []core.SparseFeature {
	rng := xrand.New(seed)
	// Hash sizes: log-normal with heavy spread, clipped to the paper's
	// observed [30, 20M] range (Fig 6). Because clipping shrinks the
	// mean, the scale is found by bisection so the post-clip mean hits
	// the Table II value.
	const sigma = 1.6
	hashes := make([]float64, n)
	for i := range hashes {
		hashes[i] = rng.LogNormal(0, sigma)
	}
	clipMean := func(scale float64) float64 {
		var sum float64
		for _, h := range hashes {
			v := h * scale
			if v < 30 {
				v = 30
			}
			if v > 20_000_000 {
				v = 20_000_000
			}
			sum += v
		}
		return sum / float64(n)
	}
	loS, hiS := 1.0, 4e7
	for i := 0; i < 60; i++ {
		mid := (loS + hiS) / 2
		if clipMean(mid) < meanHash {
			loS = mid
		} else {
			hiS = mid
		}
	}
	scaleH := (loS + hiS) / 2
	// Mean lengths: bounded power law, then rescale to the target mean.
	lz := xrand.NewBoundedZipf(rng.Split(), 1.05, 64)
	lens := make([]float64, n)
	var sumL float64
	for i := range lens {
		lens[i] = float64(lz.Sample())
		sumL += lens[i]
	}
	scaleL := meanLen * float64(n) / sumL

	feats := make([]core.SparseFeature, n)
	for i := range feats {
		h := int(hashes[i] * scaleH)
		if h < 30 {
			h = 30
		}
		if h > 20_000_000 {
			h = 20_000_000
		}
		l := lens[i] * scaleL
		if l < 1 {
			l = 1
		}
		maxP := int(l * 3)
		if maxP < 8 {
			maxP = 8
		}
		feats[i] = core.SparseFeature{
			Name:       fmt.Sprintf("f%03d", i),
			HashSize:   h,
			MeanPooled: l,
			MaxPooled:  maxP,
		}
	}
	return feats
}

// M1Prod returns the Table II M1prod model: 30 sparse features averaging
// 5.7M hash rows and 28 lookups, 800 dense features, 512-wide bottom MLP,
// 512³ top MLP, embedding dim 64 (tens of GB of tables).
func M1Prod() core.Config {
	return core.Config{
		Name:          "M1prod",
		DenseFeatures: 800,
		Sparse:        prodTableSpec(30, 5.7e6, 28, 101),
		EmbeddingDim:  64,
		BottomMLP:     []int{512},
		TopMLP:        []int{512, 512, 512},
		Interaction:   core.Concat,
	}
}

// M2Prod returns the Table II M2prod model: 13 sparse features averaging
// 7.3M hash rows and 17 lookups, 504 dense features, 1024-wide bottom
// MLP, 1024-1024-512 top MLP, embedding dim 128 (tens of GB).
func M2Prod() core.Config {
	return core.Config{
		Name:          "M2prod",
		DenseFeatures: 504,
		Sparse:        prodTableSpec(13, 7.3e6, 17, 202),
		EmbeddingDim:  128,
		BottomMLP:     []int{1024},
		TopMLP:        []int{1024, 1024, 512},
		Interaction:   core.Concat,
	}
}

// M3Prod returns the Table II M3prod model: 127 sparse features averaging
// 3.7M hash rows and 49 lookups, 809 dense features, 512-wide bottom MLP,
// 512-256-512-256-512 top MLP, embedding dim 128 (hundreds of GB — the
// model that does not fit on a Big Basin's GPU memory).
func M3Prod() core.Config {
	return core.Config{
		Name:          "M3prod",
		DenseFeatures: 809,
		Sparse:        prodTableSpec(127, 3.7e6, 49, 303),
		EmbeddingDim:  128,
		BottomMLP:     []int{512},
		TopMLP:        []int{512, 256, 512, 256, 512},
		Interaction:   core.Concat,
	}
}

// ProdModels returns the three Table II models in order.
func ProdModels() []core.Config {
	return []core.Config{M1Prod(), M2Prod(), M3Prod()}
}

// ClusterSetup is a production CPU training deployment (Table III).
type ClusterSetup struct {
	Trainers int
	// SparsePS and DensePS split the Table III "parameter servers"
	// count; the dense master is one of them.
	SparsePS int
	DensePS  int
	// TrainerBatch is the per-trainer mini-batch.
	TrainerBatch int
	// OptimalGPUBatch is the Table III saturation batch on Big Basin.
	OptimalGPUBatch int
	// HogwildThreads is the intra-trainer async thread count.
	HogwildThreads int
}

// Nodes returns the total server count of the CPU setup.
func (c ClusterSetup) Nodes() int { return c.Trainers + c.SparsePS + c.DensePS }

// ProdSetup returns the Table III CPU cluster setup and GPU porting
// parameters for a production model name.
func ProdSetup(name string) (ClusterSetup, error) {
	switch name {
	case "M1prod":
		return ClusterSetup{Trainers: 6, SparsePS: 7, DensePS: 1,
			TrainerBatch: 200, OptimalGPUBatch: 1600, HogwildThreads: 1}, nil
	case "M2prod":
		return ClusterSetup{Trainers: 20, SparsePS: 15, DensePS: 1,
			TrainerBatch: 200, OptimalGPUBatch: 3200, HogwildThreads: 1}, nil
	case "M3prod":
		return ClusterSetup{Trainers: 8, SparsePS: 7, DensePS: 1,
			TrainerBatch: 200, OptimalGPUBatch: 800, HogwildThreads: 4}, nil
	}
	return ClusterSetup{}, fmt.Errorf("workload: no production setup for %q", name)
}

// TrainingClass describes one Fig 2 workload family by order-of-magnitude
// training frequency and duration (hours).
type TrainingClass struct {
	Name          string
	FreqEveryHrs  float64 // typical gap between training runs
	DurationHrs   float64 // typical run duration
	ModelFamily   string
	ShareOfCycles float64 // rough share of fleet training cycles
}

// Fig2Catalog returns the workload classes of Fig 2. Recommendation
// workloads (News Feed, Search) train the most frequently; the paper
// reports >50% of all AI training cycles go to recommendation models.
func Fig2Catalog() []TrainingClass {
	return []TrainingClass{
		{Name: "News Feed", FreqEveryHrs: 6, DurationHrs: 12, ModelFamily: "recommendation (DLRM)", ShareOfCycles: 0.35},
		{Name: "Search", FreqEveryHrs: 24, DurationHrs: 24, ModelFamily: "recommendation (DLRM)", ShareOfCycles: 0.20},
		{Name: "Translation", FreqEveryHrs: 7 * 24, DurationHrs: 72, ModelFamily: "RNN", ShareOfCycles: 0.10},
		{Name: "Facer", FreqEveryHrs: 30 * 24, DurationHrs: 24 * 7, ModelFamily: "CNN", ShareOfCycles: 0.05},
	}
}

// RunSample is one sampled training-run configuration for the fleet
// distributions (Fig 5 / Fig 9).
type RunSample struct {
	Trainers int
	ParamSrv int
	// Model jitter relative to a base ranking model: ML engineers add
	// and remove features run to run (§III).
	DenseFeatures int
	SparseCount   int
	MeanPooled    float64
}

// FleetSampler draws training-run configurations with the population
// shape the paper reports: >40% of runs reuse the modal trainer count
// while parameter-server counts vary widely with memory requirements.
type FleetSampler struct {
	rng *xrand.RNG
}

// NewFleetSampler returns a deterministic sampler.
func NewFleetSampler(seed int64) *FleetSampler {
	return &FleetSampler{rng: xrand.New(seed)}
}

// Sample draws one run.
func (f *FleetSampler) Sample() RunSample {
	r := f.rng
	// Trainers: 42% at the modal count (10); the rest spread
	// geometrically up to ~50 (Fig 9 left).
	trainers := 10
	if r.Float64() >= 0.42 {
		trainers = 2 + int(r.Exp(0.12))
		if trainers > 50 {
			trainers = 50
		}
	}
	// Parameter servers: wide, memory-driven spread (Fig 9 right).
	ps := 1 + int(r.Exp(0.09))
	if ps > 50 {
		ps = 50
	}
	dense := 400 + r.Intn(800)
	sparse := 20 + r.Intn(60)
	pooled := 5 + 40*r.Float64()
	return RunSample{
		Trainers:      trainers,
		ParamSrv:      ps,
		DenseFeatures: dense,
		SparseCount:   sparse,
		MeanPooled:    pooled,
	}
}

// SampleN draws n runs.
func (f *FleetSampler) SampleN(n int) []RunSample {
	out := make([]RunSample, n)
	for i := range out {
		out[i] = f.Sample()
	}
	return out
}

// Config materializes the sampled run as a model config.
func (s RunSample) Config() core.Config {
	return core.Config{
		Name:          fmt.Sprintf("fleet-d%d-s%d", s.DenseFeatures, s.SparseCount),
		DenseFeatures: s.DenseFeatures,
		Sparse:        core.UniformSparse(s.SparseCount, 1_000_000, s.MeanPooled),
		EmbeddingDim:  64,
		BottomMLP:     []int{512},
		TopMLP:        []int{512, 512},
		Interaction:   core.Concat,
	}
}

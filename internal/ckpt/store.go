package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

const (
	manifestName = "MANIFEST.json"

	magicDense     = uint32('C') | uint32('K')<<8 | uint32('D')<<16 | uint32('N')<<24
	magicTableFull = uint32('C') | uint32('K')<<8 | uint32('T')<<16 | uint32('F')<<24
	magicTableDelt = uint32('C') | uint32('K')<<8 | uint32('T')<<16 | uint32('D')<<24

	// KindFull / KindDelta are the manifest "kind" values.
	KindFull  = "full"
	KindDelta = "delta"
)

// ErrNoCheckpoint reports an empty store on restore.
var ErrNoCheckpoint = errors.New("ckpt: store holds no checkpoint")

// Entry is one content-hashed shard file in a checkpoint manifest.
type Entry struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
	// Table is the embedding-table index the shard carries, or -1 for
	// the dense replica + optimizer shard.
	Table int `json:"table"`
	// Rows is the serialized row count (touched rows for a delta, the
	// full table for a full checkpoint; 0 for the dense shard).
	Rows int `json:"rows,omitempty"`
	// OwnerRank is the rank that owned this shard under the
	// TableWiseGreedy layout at save time.
	OwnerRank int `json:"owner_rank"`
}

// TableDims fingerprints one table's geometry and storage dtype.
// DType is empty for fp32 (keeping pre-dtype manifests readable) and
// "bf16"/"fp16" for reduced-precision tables.
type TableDims struct {
	Rows  int    `json:"rows"`
	Dim   int    `json:"dim"`
	DType string `json:"dtype,omitempty"`
}

// dtypeLabel renders a storage dtype for manifests and shard headers:
// fp32 maps to "" so full-precision checkpoints are byte-stable across
// the dtype introduction.
func dtypeLabel(dt tensor.DType) string {
	if dt == tensor.FP32 {
		return ""
	}
	return dt.String()
}

// orFP32 renders a manifest dtype label for error messages.
func orFP32(s string) string {
	if s == "" {
		return "fp32"
	}
	return s
}

// Fingerprint pins the model geometry a checkpoint belongs to; restore
// refuses a state with a different shape or optimizer.
type Fingerprint struct {
	Optimizer   string      `json:"optimizer"`
	DenseParams []int       `json:"dense_params"`
	Tables      []TableDims `json:"tables"`
}

// Manifest is a checkpoint's integrity record: the shard index with
// per-file SHA-256 hashes, the Merkle root over them, and — for deltas —
// the link to the base checkpoint, pinned by the base's own root.
type Manifest struct {
	Version int    `json:"version"`
	Step    int    `json:"step"`
	Kind    string `json:"kind"`
	// Base names the parent checkpoint directory (delta only), and
	// BaseRoot pins its Merkle root so a swapped-out parent is detected.
	Base     string `json:"base,omitempty"`
	BaseRoot string `json:"base_root,omitempty"`
	// Chain counts delta links back to the nearest full checkpoint
	// (0 for a full checkpoint).
	Chain   int         `json:"chain"`
	Ranks   int         `json:"ranks"`
	Model   Fingerprint `json:"model"`
	Entries []Entry     `json:"entries"`
	// Root is the Merkle root over the entry hashes, in entry order.
	Root string `json:"root"`
}

// SaveInfo summarizes one checkpoint write.
type SaveInfo struct {
	Name  string
	Step  int
	Kind  string
	Files int
	Bytes int64
	// Rows is the number of serialized table rows (the delta size).
	Rows int
	Root string
	Wall time.Duration
}

// RestoreInfo summarizes one restore: the chain that was replayed and
// the verified bytes it moved.
type RestoreInfo struct {
	Name  string
	Step  int
	Chain int // checkpoints applied (1 for a full, 1+deltas otherwise)
	Files int
	Bytes int64
	Root  string
	Wall  time.Duration
}

// Store manages a checkpoint directory: a sequence of
// ck-<step>-<kind>/ checkpoint directories, each holding shard files
// under a MANIFEST.json. All methods are driven from the training
// control thread between steps; a Store performs no background work.
type Store struct {
	dir   string
	trace *telemetry.Tracer
	shard int

	saves, fullSaves, restores    *telemetry.Counter
	bytesWritten, bytesRestored   *telemetry.Counter
	saveNs, restoreNs, deltaRowsC *telemetry.Counter
}

// OpenStore opens (creating if needed) a checkpoint directory with
// private, unexported meters. Use OpenStoreWith to land the "ckpt/…"
// counters in a shared registry.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreWith(dir, nil, nil, 0)
}

// OpenStoreWith opens a checkpoint directory whose meters live in reg
// ("ckpt/saves", "ckpt/bytes_written", …) and whose save/restore spans
// (PhaseCheckpoint, PhaseRestore) record onto the given tracer shard.
// Both may be nil.
func OpenStoreWith(dir string, reg *telemetry.Registry, trace *telemetry.Tracer, shard int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating store dir: %w", err)
	}
	return &Store{
		dir:           dir,
		trace:         trace,
		shard:         shard,
		saves:         reg.Counter("ckpt/saves"),
		fullSaves:     reg.Counter("ckpt/full_saves"),
		restores:      reg.Counter("ckpt/restores"),
		bytesWritten:  reg.Counter("ckpt/bytes_written"),
		bytesRestored: reg.Counter("ckpt/bytes_restored"),
		saveNs:        reg.Counter("ckpt/save_ns"),
		restoreNs:     reg.Counter("ckpt/restore_ns"),
		deltaRowsC:    reg.Counter("ckpt/delta_rows"),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ckName formats a checkpoint directory name. Step-ordered names make
// Latest a directory listing.
func ckName(step int, kind string) string { return fmt.Sprintf("ck-%08d-%s", step, kind) }

// parseCkName extracts (step, kind) from a checkpoint directory name.
func parseCkName(name string) (int, string, bool) {
	var step int
	var kind string
	if _, err := fmt.Sscanf(name, "ck-%08d-%s", &step, &kind); err != nil {
		return 0, "", false
	}
	if kind != KindFull && kind != KindDelta {
		return 0, "", false
	}
	return step, kind, true
}

// List returns the completed checkpoints (those with a manifest) in
// ascending step order.
func (s *Store) List() ([]string, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: listing store: %w", err)
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() {
			continue
		}
		if _, _, ok := parseCkName(de.Name()); !ok {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, de.Name(), manifestName)); err != nil {
			continue // incomplete write, never referenced
		}
		names = append(names, de.Name())
	}
	sort.Slice(names, func(i, j int) bool {
		si, ki, _ := parseCkName(names[i])
		sj, kj, _ := parseCkName(names[j])
		if si != sj {
			return si < sj
		}
		return ki == KindDelta && kj == KindFull // full sorts after, wins ties
	})
	return names, nil
}

// Latest returns the newest completed checkpoint's name and manifest,
// or ("", nil, nil) for an empty store.
func (s *Store) Latest() (string, *Manifest, error) {
	names, err := s.List()
	if err != nil {
		return "", nil, err
	}
	if len(names) == 0 {
		return "", nil, nil
	}
	name := names[len(names)-1]
	man, err := s.readManifest(name)
	if err != nil {
		return "", nil, err
	}
	return name, man, nil
}

func (s *Store) readManifest(name string) (*Manifest, error) {
	js, err := os.ReadFile(filepath.Join(s.dir, name, manifestName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading manifest of %s: %w", name, err)
	}
	man := &Manifest{}
	if err := json.Unmarshal(js, man); err != nil {
		return nil, fmt.Errorf("ckpt: parsing manifest of %s: %w", name, err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("ckpt: manifest of %s has version %d, want 1", name, man.Version)
	}
	if root := merkleRootHex(man.Entries); root != man.Root {
		return nil, fmt.Errorf("ckpt: manifest of %s fails Merkle verification (root %s, entries hash to %s)",
			name, man.Root, root)
	}
	return man, nil
}

// fingerprintOf derives the geometry fingerprint of a live state.
func fingerprintOf(st *ModelState) Fingerprint {
	fp := Fingerprint{Optimizer: st.Optimizer}
	for _, p := range st.Dense {
		fp.DenseParams = append(fp.DenseParams, len(p))
	}
	for _, t := range st.Tables {
		fp.Tables = append(fp.Tables, TableDims{Rows: t.HashSize, Dim: t.Dim, DType: dtypeLabel(t.DType)})
	}
	return fp
}

func checkFingerprint(name string, man *Manifest, st *ModelState) error {
	fp := fingerprintOf(st)
	if man.Model.Optimizer != fp.Optimizer {
		return fmt.Errorf("ckpt: %s was written under optimizer %q, state uses %q",
			name, man.Model.Optimizer, fp.Optimizer)
	}
	if len(man.Model.DenseParams) != len(fp.DenseParams) {
		return fmt.Errorf("ckpt: %s has %d dense params, state has %d",
			name, len(man.Model.DenseParams), len(fp.DenseParams))
	}
	for i, n := range man.Model.DenseParams {
		if n != fp.DenseParams[i] {
			return fmt.Errorf("ckpt: %s dense param %d has %d floats, state has %d",
				name, i, n, fp.DenseParams[i])
		}
	}
	if len(man.Model.Tables) != len(fp.Tables) {
		return fmt.Errorf("ckpt: %s has %d tables, state has %d",
			name, len(man.Model.Tables), len(fp.Tables))
	}
	for i, td := range man.Model.Tables {
		if td != fp.Tables[i] {
			return fmt.Errorf("ckpt: %s table %d is %dx%d %s, state is %dx%d %s",
				name, i, td.Rows, td.Dim, orFP32(td.DType),
				fp.Tables[i].Rows, fp.Tables[i].Dim, orFP32(fp.Tables[i].DType))
		}
	}
	return nil
}

// merkleRootHex computes the Merkle root over the entry hashes in entry
// order: leaves are the decoded SHA-256 file hashes, interior nodes hash
// the concatenation of their children, odd nodes promote.
func merkleRootHex(entries []Entry) string {
	level := make([][sha256.Size]byte, 0, len(entries))
	for _, e := range entries {
		raw, err := hex.DecodeString(e.SHA256)
		if err != nil || len(raw) != sha256.Size {
			// Poison the leaf so a malformed hash can never verify.
			raw = make([]byte, sha256.Size)
		}
		var h [sha256.Size]byte
		copy(h[:], raw)
		level = append(level, h)
	}
	if len(level) == 0 {
		return hex.EncodeToString(make([]byte, sha256.Size))
	}
	for len(level) > 1 {
		var merged [][sha256.Size]byte
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				h := sha256.New()
				h.Write(level[i][:])
				h.Write(level[i+1][:])
				var node [sha256.Size]byte
				h.Sum(node[:0])
				merged = append(merged, node)
			} else {
				merged = append(merged, level[i])
			}
		}
		level = merged
	}
	return hex.EncodeToString(level[0][:])
}

// ---- serialization ----

// enc is a deterministic little-endian byte encoder reused across shard
// files within one save.
type enc struct{ buf []byte }

func (e *enc) reset()       { e.buf = e.buf[:0] }
func (e *enc) u8(v byte)    { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) f32s(vals []float32) {
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, 4*len(vals))...)
	for _, v := range vals {
		binary.LittleEndian.PutUint32(e.buf[off:], math.Float32bits(v))
		off += 4
	}
}

// dec is the matching cursor-based decoder with truncation checks.
type dec struct {
	buf  []byte
	off  int
	file string
}

func (d *dec) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("ckpt: shard %s truncated at offset %d (need %d of %d bytes)",
			d.file, d.off, n, len(d.buf)-d.off)
	}
	return nil
}

func (d *dec) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *dec) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *dec) f32s(dst []float32) error {
	if err := d.need(4 * len(dst)); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.buf[d.off:]))
		d.off += 4
	}
	return nil
}

func (d *dec) done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("ckpt: shard %s has %d trailing bytes", d.file, len(d.buf)-d.off)
	}
	return nil
}

// encodeDense serializes the dense replica + dense optimizer state.
func encodeDense(e *enc, st *ModelState) {
	e.reset()
	e.u32(magicDense)
	e.u32(uint32(len(st.Dense)))
	for _, p := range st.Dense {
		e.u32(uint32(len(p)))
		e.f32s(p)
	}
	if st.DenseAccum != nil {
		e.u8(1)
		for _, acc := range st.DenseAccum {
			e.f32s(acc)
		}
	} else {
		e.u8(0)
	}
}

func decodeDense(d *dec, st *ModelState) error {
	magic, err := d.u32()
	if err != nil {
		return err
	}
	if magic != magicDense {
		return fmt.Errorf("ckpt: shard %s has bad dense magic %#x", d.file, magic)
	}
	nParams, err := d.u32()
	if err != nil {
		return err
	}
	if int(nParams) != len(st.Dense) {
		return fmt.Errorf("ckpt: shard %s carries %d dense params, state has %d", d.file, nParams, len(st.Dense))
	}
	for i, p := range st.Dense {
		n, err := d.u32()
		if err != nil {
			return err
		}
		if int(n) != len(p) {
			return fmt.Errorf("ckpt: shard %s dense param %d has %d floats, state has %d", d.file, i, n, len(p))
		}
		if err := d.f32s(p); err != nil {
			return err
		}
	}
	flag, err := d.u8()
	if err != nil {
		return err
	}
	if (flag == 1) != (st.DenseAccum != nil) {
		return fmt.Errorf("ckpt: shard %s optimizer-state flag %d does not match state", d.file, flag)
	}
	for _, acc := range st.DenseAccum {
		if err := d.f32s(acc); err != nil {
			return err
		}
	}
	return d.done()
}

// encodeTableFull serializes every row of table ti.
func encodeTableFull(e *enc, st *ModelState, ti int) {
	tab := st.Tables[ti]
	e.reset()
	e.u32(magicTableFull)
	e.u32(uint32(ti))
	e.u32(uint32(tab.HashSize))
	e.u32(uint32(tab.Dim))
	e.u8(uint8(tab.DType))
	e.f32s(tab.Weights.Data)
	if acc := st.sparseAccum(ti); acc != nil {
		e.u8(1)
		e.f32s(acc)
	} else {
		e.u8(0)
	}
}

// encodeTableDelta serializes only the dirty rows of table ti, in
// ascending row order (copy-on-snapshot of the touched set).
func encodeTableDelta(e *enc, st *ModelState, ti int, d *Dirty) {
	tab := st.Tables[ti]
	e.reset()
	e.u32(magicTableDelt)
	e.u32(uint32(ti))
	e.u32(uint32(tab.HashSize))
	e.u32(uint32(tab.Dim))
	e.u8(uint8(tab.DType))
	e.u32(uint32(d.Count()))
	d.ForEach(func(row int32) { e.i32(row) })
	d.ForEach(func(row int32) { e.f32s(tab.Weights.Row(int(row))) })
	if acc := st.sparseAccum(ti); acc != nil {
		e.u8(1)
		d.ForEach(func(row int32) { e.f32s(acc[row : row+1]) })
	} else {
		e.u8(0)
	}
}

// decodeTable applies a full or delta table shard to the state.
func decodeTable(d *dec, st *ModelState, wantTable int) error {
	magic, err := d.u32()
	if err != nil {
		return err
	}
	if magic != magicTableFull && magic != magicTableDelt {
		return fmt.Errorf("ckpt: shard %s has bad table magic %#x", d.file, magic)
	}
	ti32, err := d.u32()
	if err != nil {
		return err
	}
	ti := int(ti32)
	if ti != wantTable || ti >= len(st.Tables) {
		return fmt.Errorf("ckpt: shard %s carries table %d, manifest says %d", d.file, ti, wantTable)
	}
	tab := st.Tables[ti]
	rows, err := d.u32()
	if err != nil {
		return err
	}
	dim, err := d.u32()
	if err != nil {
		return err
	}
	if int(rows) != tab.HashSize || int(dim) != tab.Dim {
		return fmt.Errorf("ckpt: shard %s is %dx%d, table %d is %dx%d",
			d.file, rows, dim, ti, tab.HashSize, tab.Dim)
	}
	dtByte, err := d.u8()
	if err != nil {
		return err
	}
	if tensor.DType(dtByte) != tab.DType {
		return fmt.Errorf("ckpt: shard %s stores dtype %s, table %d is %s",
			d.file, tensor.DType(dtByte), ti, tab.DType)
	}
	acc := st.sparseAccum(ti)
	if magic == magicTableFull {
		if err := d.f32s(tab.Weights.Data); err != nil {
			return err
		}
		flag, err := d.u8()
		if err != nil {
			return err
		}
		if (flag == 1) != (acc != nil) {
			return fmt.Errorf("ckpt: shard %s optimizer-state flag %d does not match state", d.file, flag)
		}
		if acc != nil {
			if err := d.f32s(acc); err != nil {
				return err
			}
		}
		tab.SyncAll()
		return d.done()
	}
	count, err := d.u32()
	if err != nil {
		return err
	}
	if int(count) > tab.HashSize {
		return fmt.Errorf("ckpt: shard %s delta carries %d rows for a %d-row table", d.file, count, tab.HashSize)
	}
	if err := d.need(4 * int(count)); err != nil {
		return err
	}
	ids := make([]int32, count)
	for i := range ids {
		v, _ := d.u32()
		ids[i] = int32(v)
		if int(ids[i]) >= tab.HashSize || ids[i] < 0 {
			return fmt.Errorf("ckpt: shard %s delta row id %d out of [0,%d)", d.file, ids[i], tab.HashSize)
		}
	}
	for _, id := range ids {
		if err := d.f32s(tab.Weights.Row(int(id))); err != nil {
			return err
		}
		tab.SyncRow(int(id))
	}
	flag, err := d.u8()
	if err != nil {
		return err
	}
	if (flag == 1) != (acc != nil) {
		return fmt.Errorf("ckpt: shard %s optimizer-state flag %d does not match state", d.file, flag)
	}
	if acc != nil {
		for _, id := range ids {
			if err := d.f32s(acc[id : id+1]); err != nil {
				return err
			}
		}
	}
	return d.done()
}

// ---- save ----

// SaveFull writes a full checkpoint of the state at st.Step and resets
// the given dirty trackers (the checkpoint covers everything).
func (s *Store) SaveFull(st *ModelState, dirty []*Dirty) (SaveInfo, error) {
	return s.save(st, dirty, true)
}

// SaveDelta writes an incremental checkpoint carrying only the rows the
// trackers have seen touched since the last save, chained to the latest
// checkpoint. It fails on an empty store (a delta needs a base).
func (s *Store) SaveDelta(st *ModelState, dirty []*Dirty) (SaveInfo, error) {
	return s.save(st, dirty, false)
}

// AutoSave picks the checkpoint kind: full when the store is empty, no
// trackers exist, or the delta chain has reached fullEvery links (the
// periodic compaction); delta otherwise.
func (s *Store) AutoSave(st *ModelState, dirty []*Dirty, fullEvery int) (SaveInfo, error) {
	_, latest, err := s.Latest()
	if err != nil {
		return SaveInfo{}, err
	}
	full := latest == nil || dirty == nil
	if !full && fullEvery > 0 && latest.Chain+1 >= fullEvery {
		full = true
	}
	return s.save(st, dirty, full)
}

func (s *Store) save(st *ModelState, dirty []*Dirty, full bool) (SaveInfo, error) {
	t0 := telemetry.Now()
	if err := st.validate(); err != nil {
		return SaveInfo{}, err
	}
	kind := KindFull
	if !full {
		kind = KindDelta
	}
	man := Manifest{
		Version: 1, Step: st.Step, Kind: kind,
		Ranks: max(st.Ranks, 1), Model: fingerprintOf(st),
	}
	if !full {
		if len(dirty) != len(st.Tables) {
			return SaveInfo{}, fmt.Errorf("ckpt: %d dirty trackers for %d tables", len(dirty), len(st.Tables))
		}
		baseName, base, err := s.Latest()
		if err != nil {
			return SaveInfo{}, err
		}
		if base == nil {
			return SaveInfo{}, fmt.Errorf("ckpt: delta checkpoint needs a base; store is empty")
		}
		man.Base, man.BaseRoot, man.Chain = baseName, base.Root, base.Chain+1
	}

	name := ckName(st.Step, kind)
	tmp := filepath.Join(s.dir, name+".tmp")
	if err := os.RemoveAll(tmp); err != nil {
		return SaveInfo{}, fmt.Errorf("ckpt: clearing stale temp dir: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return SaveInfo{}, fmt.Errorf("ckpt: creating checkpoint dir: %w", err)
	}

	var info SaveInfo
	var e enc
	writeShard := func(file string, table, ownerRank, rows int) error {
		sum := sha256.Sum256(e.buf)
		if err := os.WriteFile(filepath.Join(tmp, file), e.buf, 0o644); err != nil {
			return fmt.Errorf("ckpt: writing shard %s: %w", file, err)
		}
		man.Entries = append(man.Entries, Entry{
			File: file, Bytes: int64(len(e.buf)), SHA256: hex.EncodeToString(sum[:]),
			Table: table, Rows: rows, OwnerRank: ownerRank,
		})
		info.Files++
		info.Bytes += int64(len(e.buf))
		return nil
	}

	// Dense replica + dense optimizer state travels in every checkpoint
	// (it is dense in time: every step touches all of it).
	encodeDense(&e, st)
	if err := writeShard("dense.bin", -1, 0, 0); err != nil {
		return SaveInfo{}, err
	}
	for ti := range st.Tables {
		if full {
			encodeTableFull(&e, st, ti)
			if err := writeShard(fmt.Sprintf("table-%04d.full", ti), ti, st.ownerOf(ti), st.Tables[ti].HashSize); err != nil {
				return SaveInfo{}, err
			}
			info.Rows += st.Tables[ti].HashSize
		} else {
			if dirty[ti] == nil || dirty[ti].Count() == 0 {
				continue // untouched table: nothing to record
			}
			encodeTableDelta(&e, st, ti, dirty[ti])
			if err := writeShard(fmt.Sprintf("table-%04d.delta", ti), ti, st.ownerOf(ti), dirty[ti].Count()); err != nil {
				return SaveInfo{}, err
			}
			info.Rows += dirty[ti].Count()
		}
	}

	man.Root = merkleRootHex(man.Entries)
	js, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return SaveInfo{}, err
	}
	js = append(js, '\n')
	if err := os.WriteFile(filepath.Join(tmp, manifestName), js, 0o644); err != nil {
		return SaveInfo{}, fmt.Errorf("ckpt: writing manifest: %w", err)
	}
	final := filepath.Join(s.dir, name)
	if err := os.RemoveAll(final); err != nil {
		return SaveInfo{}, fmt.Errorf("ckpt: clearing previous %s: %w", name, err)
	}
	// The rename publishes the checkpoint atomically: List/Latest only
	// ever see directories whose manifest is fully written.
	if err := os.Rename(tmp, final); err != nil {
		return SaveInfo{}, fmt.Errorf("ckpt: publishing checkpoint: %w", err)
	}

	for _, d := range dirty {
		if d != nil {
			d.Reset()
		}
	}
	t1 := telemetry.Now()
	info.Name, info.Step, info.Kind, info.Root = name, st.Step, kind, man.Root
	info.Wall = time.Duration(t1 - t0)
	s.trace.Emit(s.shard, telemetry.PhaseCheckpoint, t0, t1)
	s.saves.Inc()
	if full {
		s.fullSaves.Inc()
	} else {
		s.deltaRowsC.Add(int64(info.Rows))
	}
	s.bytesWritten.Add(info.Bytes)
	s.saveNs.Add(t1 - t0)
	return info, nil
}

// ---- restore ----

// Restore rebuilds the latest checkpoint's state into st: it resolves
// the delta chain back to its full base, verifies every manifest root,
// chain link, and shard hash, and applies base-then-deltas in step
// order. st must be shaped like the state that was saved (same params,
// tables, optimizer); st.Step is set to the restored step.
func (s *Store) Restore(st *ModelState) (RestoreInfo, error) {
	name, man, err := s.Latest()
	if err != nil {
		return RestoreInfo{}, err
	}
	if man == nil {
		return RestoreInfo{}, ErrNoCheckpoint
	}
	return s.RestoreFrom(name, st)
}

// RestoreFrom is Restore anchored at a specific checkpoint name.
func (s *Store) RestoreFrom(name string, st *ModelState) (RestoreInfo, error) {
	t0 := telemetry.Now()
	if err := st.validate(); err != nil {
		return RestoreInfo{}, err
	}
	// Resolve the chain tip → base; verify each link's pinned root.
	var chain []string
	var mans []*Manifest
	cur := name
	for {
		man, err := s.readManifest(cur)
		if err != nil {
			return RestoreInfo{}, err
		}
		if err := checkFingerprint(cur, man, st); err != nil {
			return RestoreInfo{}, err
		}
		chain = append(chain, cur)
		mans = append(mans, man)
		if man.Kind == KindFull {
			break
		}
		if man.Base == "" {
			return RestoreInfo{}, fmt.Errorf("ckpt: delta %s has no base link", cur)
		}
		base, err := s.readManifest(man.Base)
		if err != nil {
			return RestoreInfo{}, err
		}
		if base.Root != man.BaseRoot {
			return RestoreInfo{}, fmt.Errorf("ckpt: %s pins base root %s, but %s has root %s",
				cur, man.BaseRoot, man.Base, base.Root)
		}
		cur = man.Base
	}

	var info RestoreInfo
	for i := len(chain) - 1; i >= 0; i-- { // base first, deltas ascending
		ckDir, man := chain[i], mans[i]
		for _, ent := range man.Entries {
			raw, err := os.ReadFile(filepath.Join(s.dir, ckDir, ent.File))
			if err != nil {
				return RestoreInfo{}, fmt.Errorf("ckpt: reading shard %s/%s: %w", ckDir, ent.File, err)
			}
			if int64(len(raw)) != ent.Bytes {
				return RestoreInfo{}, fmt.Errorf("ckpt: shard %s/%s is %d bytes, manifest says %d",
					ckDir, ent.File, len(raw), ent.Bytes)
			}
			sum := sha256.Sum256(raw)
			if got := hex.EncodeToString(sum[:]); got != ent.SHA256 {
				return RestoreInfo{}, fmt.Errorf("ckpt: shard %s/%s fails content verification (hash %s, manifest pins %s)",
					ckDir, ent.File, got, ent.SHA256)
			}
			d := &dec{buf: raw, file: ckDir + "/" + ent.File}
			if ent.Table < 0 {
				err = decodeDense(d, st)
			} else {
				err = decodeTable(d, st, ent.Table)
			}
			if err != nil {
				return RestoreInfo{}, err
			}
			info.Files++
			info.Bytes += int64(len(raw))
		}
	}

	tip := mans[0]
	st.Step = tip.Step
	t1 := telemetry.Now()
	info.Name, info.Step, info.Chain, info.Root = name, tip.Step, len(chain), tip.Root
	info.Wall = time.Duration(t1 - t0)
	s.trace.Emit(s.shard, telemetry.PhaseRestore, t0, t1)
	s.restores.Inc()
	s.bytesRestored.Add(info.Bytes)
	s.restoreNs.Add(t1 - t0)
	return info, nil
}

// Verify re-checks every completed checkpoint in the store: manifest
// Merkle roots, base links, and each shard's size and content hash.
func (s *Store) Verify() error {
	names, err := s.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		man, err := s.readManifest(name)
		if err != nil {
			return err
		}
		if man.Kind == KindDelta {
			base, err := s.readManifest(man.Base)
			if err != nil {
				return fmt.Errorf("ckpt: %s: base: %w", name, err)
			}
			if base.Root != man.BaseRoot {
				return fmt.Errorf("ckpt: %s pins base root %s, but %s has root %s",
					name, man.BaseRoot, man.Base, base.Root)
			}
		}
		for _, ent := range man.Entries {
			raw, err := os.ReadFile(filepath.Join(s.dir, name, ent.File))
			if err != nil {
				return fmt.Errorf("ckpt: reading shard %s/%s: %w", name, ent.File, err)
			}
			if int64(len(raw)) != ent.Bytes {
				return fmt.Errorf("ckpt: shard %s/%s is %d bytes, manifest says %d",
					name, ent.File, len(raw), ent.Bytes)
			}
			sum := sha256.Sum256(raw)
			if got := hex.EncodeToString(sum[:]); got != ent.SHA256 {
				return fmt.Errorf("ckpt: shard %s/%s fails content verification (hash %s, manifest pins %s)",
					name, ent.File, got, ent.SHA256)
			}
		}
	}
	return nil
}

// String renders a one-line save summary.
func (i SaveInfo) String() string {
	return fmt.Sprintf("%s (%s, %d files, %d rows, %d bytes, root %s)",
		i.Name, i.Kind, i.Files, i.Rows, i.Bytes, shortHash(i.Root))
}

// String renders a one-line restore summary.
func (i RestoreInfo) String() string {
	return fmt.Sprintf("%s (chain %d, %d files, %d bytes, root %s)",
		i.Name, i.Chain, i.Files, i.Bytes, shortHash(i.Root))
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

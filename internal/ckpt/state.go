// Package ckpt implements durable checkpoint/restore for the training
// stack: sharded, content-hashed checkpoints of the embedding tables
// (one shard per table, grouped by the owning rank of the TableWiseGreedy
// layout), the dense MLP replica, and the optimizer state, written under
// a MANIFEST.json whose per-shard SHA-256 hashes roll up into a
// Merkle-style root that is re-verified on restore. A corrupted or
// truncated shard fails the restore loudly, naming the offending file.
//
// Checkpoints come in two kinds. A *full* checkpoint serializes every
// table row. A *delta* checkpoint serializes only the rows touched since
// the previous checkpoint — the touched-row sets fall out of the
// embedding.SparseGrad accumulators the trainers already maintain, fed
// into per-table Dirty bitmaps on the step hot path (allocation-free) —
// so snapshotting a huge, sparsely-touched table costs IO proportional
// to the update traffic, not the table size. Deltas chain back to their
// base through manifest links (each link pinned by the parent's Merkle
// root), and a periodic full checkpoint compacts the chain. Restoring a
// delta chain and writing a full checkpoint from the result is
// bit-identical — same Merkle root — as a full checkpoint written
// directly from the live state, which is the equivalence tests pin.
//
// The package is trainer-agnostic: core.Trainer and hybrid.Trainer
// export their live parameters as a ModelState (slices aliasing live
// memory, so saving streams straight from the arenas and restoring
// writes straight back into them) and attach Dirty trackers to their
// sparse-update paths.
package ckpt

import (
	"fmt"
	"math/bits"

	"repro/internal/embedding"
)

// ModelState is the checkpointable view of a trainer: every slice
// aliases live parameter or optimizer memory, so a Store save reads the
// training state in place (between steps) and a restore writes it back
// in place. Build it once per trainer and reuse it.
type ModelState struct {
	// Step is the iteration count the state belongs to. Trainers set it
	// before saving; Store.Restore overwrites it with the restored step.
	Step int
	// Optimizer is the optimizer kind ("sgd", "adagrad"); restore
	// refuses a checkpoint written under a different optimizer, since
	// the accumulator state would be meaningless.
	Optimizer string
	// Dense aliases the dense parameter values (bottom then top MLP).
	Dense [][]float32
	// DenseAccum aliases the dense Adagrad accumulators, aligned with
	// Dense; nil under SGD.
	DenseAccum [][]float32
	// Tables is the full embedding table set, in config order.
	Tables []*embedding.Table
	// SparseAccum aliases each table's row-wise Adagrad accumulator
	// (length HashSize), aligned with Tables; nil under SGD.
	SparseAccum [][]float32
	// Owner maps each table to the rank that owns (and wrote) its
	// shard — manifest metadata documenting the TableWiseGreedy layout.
	// Nil means single-process (rank 0 owns everything).
	Owner []int
	// Ranks is the world size at save time (informational; restore is
	// rank-elastic because shards are per-table).
	Ranks int
}

// ownerOf returns the rank owning table ti.
func (st *ModelState) ownerOf(ti int) int {
	if ti < len(st.Owner) {
		return st.Owner[ti]
	}
	return 0
}

// sparseAccum returns table ti's optimizer accumulator, or nil.
func (st *ModelState) sparseAccum(ti int) []float32 {
	if ti < len(st.SparseAccum) {
		return st.SparseAccum[ti]
	}
	return nil
}

// validate checks internal shape consistency so save/restore can trust
// the state's own geometry.
func (st *ModelState) validate() error {
	if st.Optimizer == "" {
		return fmt.Errorf("ckpt: state has no optimizer kind")
	}
	if len(st.DenseAccum) != 0 && len(st.DenseAccum) != len(st.Dense) {
		return fmt.Errorf("ckpt: %d dense accumulators for %d params", len(st.DenseAccum), len(st.Dense))
	}
	for i, acc := range st.DenseAccum {
		if len(acc) != len(st.Dense[i]) {
			return fmt.Errorf("ckpt: dense accumulator %d length %d != param %d", i, len(acc), len(st.Dense[i]))
		}
	}
	for ti, tab := range st.Tables {
		if acc := st.sparseAccum(ti); acc != nil && len(acc) != tab.HashSize {
			return fmt.Errorf("ckpt: table %d accumulator length %d != %d rows", ti, len(acc), tab.HashSize)
		}
	}
	return nil
}

// Dirty is a touched-row bitmap for one embedding table, the incremental
// side of delta checkpoints. Trainers Mark the row ids of every applied
// SparseGrad (allocation-free; the ids are already deduplicated per
// step), and a Store save serializes the marked rows and Resets the
// tracker. Rows iterate in ascending order, keeping delta files a
// deterministic function of the state they capture.
type Dirty struct {
	rows  int
	count int
	bits  []uint64
}

// NewDirty returns a tracker for a table with the given row count.
func NewDirty(rows int) *Dirty {
	return &Dirty{rows: rows, bits: make([]uint64, (rows+63)/64)}
}

// Mark records the given rows as touched. Marking an already-marked row
// is a no-op; Mark never allocates.
func (d *Dirty) Mark(ids []int32) {
	for _, id := range ids {
		w, b := id>>6, uint(id&63)
		if d.bits[w]&(1<<b) == 0 {
			d.bits[w] |= 1 << b
			d.count++
		}
	}
}

// MarkAll marks every row (forces the next delta to carry the full
// table).
func (d *Dirty) MarkAll() {
	for i := range d.bits {
		d.bits[i] = ^uint64(0)
	}
	// Clear the padding bits past the last row so ForEach stays in range.
	if tail := d.rows & 63; tail != 0 {
		d.bits[len(d.bits)-1] = (1 << uint(tail)) - 1
	}
	d.count = d.rows
}

// Count returns the number of touched rows.
func (d *Dirty) Count() int { return d.count }

// Rows returns the tracked table's row count.
func (d *Dirty) Rows() int { return d.rows }

// Reset clears the tracker, retaining storage.
func (d *Dirty) Reset() {
	clear(d.bits)
	d.count = 0
}

// ForEach visits the touched rows in ascending order.
func (d *Dirty) ForEach(fn func(row int32)) {
	for w, word := range d.bits {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			fn(int32(w*64 + b))
			word &^= 1 << uint(b)
		}
	}
}

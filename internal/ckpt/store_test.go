package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/embedding"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// testState builds a small synthetic trainer state: 3 tables with
// row-wise accumulators, 2 dense params with Adagrad accumulators.
func testState(seed int64) *ModelState {
	rng := xrand.New(seed)
	st := &ModelState{
		Step:      0,
		Optimizer: "adagrad",
		Ranks:     2,
		Owner:     []int{0, 1, 0},
	}
	for i, rows := range []int{64, 100, 37} {
		tab := embedding.NewTable("t", rows, 4, rng)
		st.Tables = append(st.Tables, tab)
		acc := make([]float32, rows)
		for j := range acc {
			acc[j] = rng.Float32()
		}
		st.SparseAccum = append(st.SparseAccum, acc)
		_ = i
	}
	for _, n := range []int{48, 9} {
		p := make([]float32, n)
		a := make([]float32, n)
		for j := range p {
			p[j] = rng.Float32()
			a[j] = rng.Float32()
		}
		st.Dense = append(st.Dense, p)
		st.DenseAccum = append(st.DenseAccum, a)
	}
	return st
}

// snapshot deep-copies the state's numeric content for later comparison.
func snapshot(st *ModelState) [][]float32 {
	var out [][]float32
	for _, p := range st.Dense {
		out = append(out, append([]float32(nil), p...))
	}
	for _, a := range st.DenseAccum {
		out = append(out, append([]float32(nil), a...))
	}
	for _, t := range st.Tables {
		out = append(out, append([]float32(nil), t.Weights.Data...))
	}
	for _, a := range st.SparseAccum {
		out = append(out, append([]float32(nil), a...))
	}
	return out
}

func assertEqualSnapshot(t *testing.T, want [][]float32, st *ModelState) {
	t.Helper()
	got := snapshot(st)
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d slices, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("slice %d has %d floats, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("slice %d element %d = %v, want %v (bit-exact)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// scramble overwrites all state values so a restore must rewrite them.
func scramble(st *ModelState) {
	for _, p := range st.Dense {
		for i := range p {
			p[i] = -999
		}
	}
	for _, a := range st.DenseAccum {
		for i := range a {
			a[i] = -999
		}
	}
	for _, tab := range st.Tables {
		tab.Weights.Fill(-999)
	}
	for _, a := range st.SparseAccum {
		for i := range a {
			a[i] = -999
		}
	}
	st.Step = -1
}

// mutate perturbs a deterministic subset of rows and marks them dirty.
func mutate(st *ModelState, dirty []*Dirty, salt float32) {
	for ti, tab := range st.Tables {
		ids := []int32{1, int32(ti + 2), int32(tab.HashSize - 1)}
		for _, id := range ids {
			row := tab.Weights.Row(int(id))
			for k := range row {
				row[k] += salt * float32(ti+1)
			}
			st.SparseAccum[ti][id] += salt
		}
		dirty[ti].Mark(ids)
	}
	for pi, p := range st.Dense {
		for i := range p {
			p[i] += salt * float32(pi+1) * 0.01
		}
		for i := range st.DenseAccum[pi] {
			st.DenseAccum[pi][i] += salt * 0.001
		}
	}
}

func newDirtySet(st *ModelState) []*Dirty {
	var ds []*Dirty
	for _, tab := range st.Tables {
		ds = append(ds, NewDirty(tab.HashSize))
	}
	return ds
}

func TestDirtyBitmap(t *testing.T) {
	d := NewDirty(130)
	if d.Count() != 0 || d.Rows() != 130 {
		t.Fatalf("fresh tracker: count=%d rows=%d", d.Count(), d.Rows())
	}
	d.Mark([]int32{5, 64, 129, 5, 0})
	if d.Count() != 4 {
		t.Fatalf("count=%d, want 4 (duplicate must not double-count)", d.Count())
	}
	var seen []int32
	d.ForEach(func(row int32) { seen = append(seen, row) })
	want := []int32{0, 5, 64, 129}
	if len(seen) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("ForEach visited %v, want ascending %v", seen, want)
		}
	}
	d.Reset()
	if d.Count() != 0 {
		t.Fatalf("count=%d after Reset", d.Count())
	}
	d.MarkAll()
	if d.Count() != 130 {
		t.Fatalf("count=%d after MarkAll, want 130", d.Count())
	}
	n := 0
	d.ForEach(func(row int32) {
		if int(row) != n {
			t.Fatalf("MarkAll iteration hit %d at position %d", row, n)
		}
		n++
	})
	if n != 130 {
		t.Fatalf("MarkAll iterated %d rows, want 130", n)
	}
}

func TestDirtyMarkNoAllocs(t *testing.T) {
	d := NewDirty(4096)
	ids := []int32{1, 77, 2048, 4095}
	allocs := testing.AllocsPerRun(100, func() {
		d.Mark(ids)
		d.Reset()
	})
	if allocs != 0 {
		t.Fatalf("Dirty.Mark+Reset allocates %.1f/op, want 0", allocs)
	}
}

func TestFullSaveRestoreRoundTrip(t *testing.T) {
	st := testState(1)
	st.Step = 42
	want := snapshot(st)

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	info, err := store.SaveFull(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != KindFull || info.Step != 42 || info.Files != 4 {
		t.Fatalf("unexpected save info %+v", info)
	}

	scramble(st)
	rinfo, err := store.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Chain != 1 || rinfo.Step != 42 || st.Step != 42 {
		t.Fatalf("unexpected restore info %+v (st.Step=%d)", rinfo, st.Step)
	}
	if rinfo.Bytes != info.Bytes {
		t.Fatalf("restored %d bytes, saved %d", rinfo.Bytes, info.Bytes)
	}
	assertEqualSnapshot(t, want, st)
	if err := store.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaChainRestore(t *testing.T) {
	st := testState(2)
	dirty := newDirtySet(st)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	st.Step = 10
	if _, err := store.SaveFull(st, dirty); err != nil {
		t.Fatal(err)
	}
	mutate(st, dirty, 0.5)
	st.Step = 20
	d1, err := store.SaveDelta(st, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Kind != KindDelta || d1.Rows != 9 {
		t.Fatalf("unexpected delta info %+v (want 9 rows over 3 tables)", d1)
	}
	for _, d := range dirty {
		if d.Count() != 0 {
			t.Fatalf("dirty tracker not reset after save")
		}
	}
	mutate(st, dirty, -0.25)
	st.Step = 30
	if _, err := store.SaveDelta(st, dirty); err != nil {
		t.Fatal(err)
	}
	want := snapshot(st)

	scramble(st)
	rinfo, err := store.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Chain != 3 || st.Step != 30 {
		t.Fatalf("restore chain=%d step=%d, want chain 3 at step 30", rinfo.Chain, st.Step)
	}
	assertEqualSnapshot(t, want, st)
}

// TestDeltaCompactionRootEquivalence pins the acceptance property: a
// full checkpoint written from a state rebuilt off a delta chain has the
// same Merkle root as a full checkpoint written from the live state —
// delta restore is bit-identical, and serialization is deterministic.
func TestDeltaCompactionRootEquivalence(t *testing.T) {
	live := testState(3)
	dirty := newDirtySet(live)
	chainStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	live.Step = 5
	if _, err := chainStore.SaveFull(live, dirty); err != nil {
		t.Fatal(err)
	}
	mutate(live, dirty, 1.25)
	live.Step = 6
	if _, err := chainStore.SaveDelta(live, dirty); err != nil {
		t.Fatal(err)
	}
	mutate(live, dirty, 0.75)
	live.Step = 7
	if _, err := chainStore.SaveDelta(live, dirty); err != nil {
		t.Fatal(err)
	}

	// Full checkpoint from the live state.
	liveStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	liveInfo, err := liveStore.SaveFull(live, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild a second state from the chain, then compact it to a full
	// checkpoint in a third store.
	rebuilt := testState(3)
	scramble(rebuilt)
	if _, err := chainStore.Restore(rebuilt); err != nil {
		t.Fatal(err)
	}
	rebuiltStore, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rebuiltInfo, err := rebuiltStore.SaveFull(rebuilt, nil)
	if err != nil {
		t.Fatal(err)
	}

	if liveInfo.Root != rebuiltInfo.Root {
		t.Fatalf("compacted root %s != live root %s: delta chain is not bit-identical",
			rebuiltInfo.Root, liveInfo.Root)
	}
}

func TestAutoSavePolicy(t *testing.T) {
	st := testState(4)
	dirty := newDirtySet(st)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []string{KindFull, KindDelta, KindDelta, KindFull, KindDelta}
	for i, want := range wantKinds {
		mutate(st, dirty, float32(i)+0.125)
		st.Step = i * 10
		info, err := store.AutoSave(st, dirty, 3)
		if err != nil {
			t.Fatal(err)
		}
		if info.Kind != want {
			t.Fatalf("save %d: kind %s, want %s (fullEvery=3 compaction)", i, info.Kind, want)
		}
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(wantKinds) {
		t.Fatalf("store lists %d checkpoints, want %d", len(names), len(wantKinds))
	}
	if err := store.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestUntouchedTableSkippedInDelta(t *testing.T) {
	st := testState(5)
	dirty := newDirtySet(st)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFull(st, dirty); err != nil {
		t.Fatal(err)
	}
	// Touch only table 1.
	dirty[1].Mark([]int32{3})
	st.Tables[1].Weights.Row(3)[0] += 9
	st.Step = 1
	info, err := store.SaveDelta(st, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if info.Files != 2 { // dense.bin + table-0001.delta
		t.Fatalf("delta wrote %d files, want 2 (untouched tables skipped)", info.Files)
	}
	want := snapshot(st)
	scramble(st)
	if _, err := store.Restore(st); err != nil {
		t.Fatal(err)
	}
	assertEqualSnapshot(t, want, st)
}

func TestCorruptionDetection(t *testing.T) {
	setup := func(t *testing.T) (*Store, string, *ModelState) {
		st := testState(6)
		dirty := newDirtySet(st)
		dir := t.TempDir()
		store, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		st.Step = 3
		if _, err := store.SaveFull(st, dirty); err != nil {
			t.Fatal(err)
		}
		mutate(st, dirty, 0.5)
		st.Step = 4
		if _, err := store.SaveDelta(st, dirty); err != nil {
			t.Fatal(err)
		}
		return store, dir, st
	}

	t.Run("FlippedByteInShard", func(t *testing.T) {
		store, dir, st := setup(t)
		shard := filepath.Join(dir, ckName(3, KindFull), "table-0001.full")
		raw, err := os.ReadFile(shard)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(shard, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = store.Restore(st)
		if err == nil {
			t.Fatal("restore succeeded on a corrupted shard")
		}
		if !strings.Contains(err.Error(), "table-0001.full") {
			t.Fatalf("error does not name the offending shard: %v", err)
		}
		if !strings.Contains(err.Error(), "content verification") {
			t.Fatalf("error does not identify hash mismatch: %v", err)
		}
		if store.Verify() == nil {
			t.Fatal("Verify passed on a corrupted store")
		}
	})

	t.Run("TruncatedShard", func(t *testing.T) {
		store, dir, st := setup(t)
		shard := filepath.Join(dir, ckName(4, KindDelta), "dense.bin")
		raw, err := os.ReadFile(shard)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(shard, raw[:len(raw)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = store.Restore(st)
		if err == nil {
			t.Fatal("restore succeeded on a truncated shard")
		}
		if !strings.Contains(err.Error(), "dense.bin") {
			t.Fatalf("error does not name the offending shard: %v", err)
		}
	})

	t.Run("TamperedManifestEntry", func(t *testing.T) {
		store, dir, st := setup(t)
		manPath := filepath.Join(dir, ckName(4, KindDelta), manifestName)
		js, err := os.ReadFile(manPath)
		if err != nil {
			t.Fatal(err)
		}
		// Change one hex digit of the first entry hash; the manifest
		// root no longer matches, so the tamper is caught before any
		// shard is read.
		tampered := strings.Replace(string(js), `"sha256": "`, `"sha256": "0`, 1)
		tampered = strings.Replace(tampered, `0"`, `"`, 1) // keep length stable-ish
		if tampered == string(js) {
			t.Fatal("tamper did not change the manifest")
		}
		if err := os.WriteFile(manPath, []byte(tampered), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = store.Restore(st)
		if err == nil {
			t.Fatal("restore accepted a tampered manifest")
		}
		if !strings.Contains(err.Error(), "Merkle") {
			t.Fatalf("error does not identify Merkle mismatch: %v", err)
		}
	})

	t.Run("SwappedBase", func(t *testing.T) {
		store, dir, st := setup(t)
		// Rewrite the base (full) checkpoint in place from a different
		// state: its manifest self-verifies, but its root no longer
		// matches the delta's BaseRoot pin.
		other := testState(7)
		other.Step = 3
		if _, err := store.SaveFull(other, nil); err != nil {
			t.Fatal(err)
		}
		_ = dir
		_, err := store.RestoreFrom(ckName(4, KindDelta), st)
		if err == nil {
			t.Fatal("restore accepted a delta whose base was swapped out")
		}
		if !strings.Contains(err.Error(), "pins base root") {
			t.Fatalf("error does not identify the broken chain pin: %v", err)
		}
	})
}

func TestFingerprintMismatch(t *testing.T) {
	st := testState(8)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFull(st, nil); err != nil {
		t.Fatal(err)
	}

	other := testState(8)
	other.Optimizer = "sgd"
	other.DenseAccum = nil
	other.SparseAccum = nil
	if _, err := store.Restore(other); err == nil {
		t.Fatal("restore accepted a checkpoint from a different optimizer")
	}

	shapeChanged := testState(8)
	shapeChanged.Tables = shapeChanged.Tables[:2]
	shapeChanged.SparseAccum = shapeChanged.SparseAccum[:2]
	if _, err := store.Restore(shapeChanged); err == nil {
		t.Fatal("restore accepted a checkpoint with mismatched table count")
	}
}

func TestRestoreEmptyStore(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := testState(9)
	if _, err := store.Restore(st); err != ErrNoCheckpoint {
		t.Fatalf("restore on empty store: %v, want ErrNoCheckpoint", err)
	}
	name, man, err := store.Latest()
	if err != nil || name != "" || man != nil {
		t.Fatalf("Latest on empty store: %q %v %v", name, man, err)
	}
}

func TestIncompleteCheckpointIgnored(t *testing.T) {
	st := testState(10)
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Step = 1
	if _, err := store.SaveFull(st, nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: a later checkpoint directory with
	// shards but no manifest must be invisible.
	crashed := filepath.Join(dir, ckName(2, KindFull))
	if err := os.MkdirAll(crashed, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(crashed, "dense.bin"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, _, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if name != ckName(1, KindFull) {
		t.Fatalf("Latest = %s, want the completed %s", name, ckName(1, KindFull))
	}
}

func TestStoreMeters(t *testing.T) {
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTracer(1, 16)
	st := testState(11)
	dirty := newDirtySet(st)
	store, err := OpenStoreWith(t.TempDir(), reg, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFull(st, dirty); err != nil {
		t.Fatal(err)
	}
	mutate(st, dirty, 0.5)
	st.Step = 1
	if _, err := store.SaveDelta(st, dirty); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ckpt/saves").Load(); got != 2 {
		t.Fatalf("ckpt/saves = %d, want 2", got)
	}
	if got := reg.Counter("ckpt/full_saves").Load(); got != 1 {
		t.Fatalf("ckpt/full_saves = %d, want 1", got)
	}
	if got := reg.Counter("ckpt/restores").Load(); got != 1 {
		t.Fatalf("ckpt/restores = %d, want 1", got)
	}
	if reg.Counter("ckpt/bytes_written").Load() <= 0 || reg.Counter("ckpt/bytes_restored").Load() <= 0 {
		t.Fatal("byte meters did not move")
	}
	snap := trace.Snapshot()
	var ck, rs int
	for _, sp := range snap.Spans {
		switch sp.Phase {
		case telemetry.PhaseCheckpoint:
			ck++
		case telemetry.PhaseRestore:
			rs++
		}
	}
	if ck != 2 || rs != 1 {
		t.Fatalf("trace has %d checkpoint / %d restore spans, want 2 / 1", ck, rs)
	}
}

// typedState is testState with reduced-precision tables: one bf16, one
// fp16, one fp32, all with row-wise accumulators.
func typedState(seed int64) *ModelState {
	rng := xrand.New(seed)
	st := &ModelState{
		Optimizer: "adagrad",
		Ranks:     1,
		Owner:     []int{0, 0, 0},
	}
	for i, dt := range []tensor.DType{tensor.BF16, tensor.FP16, tensor.FP32} {
		tab := embedding.NewTableTyped("t", 40+8*i, 8, dt, rng)
		st.Tables = append(st.Tables, tab)
		acc := make([]float32, tab.HashSize)
		for j := range acc {
			acc[j] = rng.Float32()
		}
		st.SparseAccum = append(st.SparseAccum, acc)
	}
	p := make([]float32, 16)
	a := make([]float32, 16)
	for j := range p {
		p[j] = rng.Float32()
		a[j] = rng.Float32()
	}
	st.Dense = append(st.Dense, p)
	st.DenseAccum = append(st.DenseAccum, a)
	return st
}

// assertReplicaSynced checks that each table's lookup path (which reads
// the reduced-precision replica) returns exactly the re-quantized fp32
// master — i.e. restore re-synced the replica.
func assertReplicaSynced(t *testing.T, st *ModelState) {
	t.Helper()
	for ti, tab := range st.Tables {
		out := tensor.New(1, tab.Dim)
		enc := make([]uint16, tab.Dim)
		dec := make([]float32, tab.Dim)
		for _, row := range []int{0, tab.HashSize / 2, tab.HashSize - 1} {
			bag := embedding.NewBag([][]int32{{int32(row)}})
			tab.Forward(bag, out)
			want := tab.Weights.Row(row)
			if tab.DType != tensor.FP32 {
				tensor.Encode(tab.DType, enc, want)
				tensor.Decode(tab.DType, dec, enc)
				want = dec
			}
			for j := range want {
				if out.Row(0)[j] != want[j] {
					t.Fatalf("table %d (%s) row %d col %d: lookup %v, master implies %v",
						ti, tab.DType, row, j, out.Row(0)[j], want[j])
				}
			}
		}
	}
}

func TestReducedPrecisionSaveRestore(t *testing.T) {
	st := typedState(11)
	st.Step = 7
	want := snapshot(st)

	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFull(st, nil); err != nil {
		t.Fatal(err)
	}

	// Scramble the masters AND re-sync the replicas, so a restore that
	// forgets to re-quantize leaves stale scrambled replicas behind.
	scramble(st)
	for _, tab := range st.Tables {
		tab.SyncAll()
	}
	if _, err := store.Restore(st); err != nil {
		t.Fatal(err)
	}
	assertEqualSnapshot(t, want, st)
	assertReplicaSynced(t, st)

	// Delta shards must carry and re-sync the dtype too.
	dirty := newDirtySet(st)
	rng := xrand.New(13)
	for ti, tab := range st.Tables {
		for _, row := range []int32{1, 5} {
			r := tab.Weights.Row(int(row))
			for j := range r {
				r[j] = rng.Float32()
			}
			tab.SyncRow(int(row))
			dirty[ti].Mark([]int32{row})
		}
	}
	st.Step = 8
	want = snapshot(st)
	if _, err := store.SaveDelta(st, dirty); err != nil {
		t.Fatal(err)
	}
	scramble(st)
	for _, tab := range st.Tables {
		tab.SyncAll()
	}
	if _, err := store.Restore(st); err != nil {
		t.Fatal(err)
	}
	assertEqualSnapshot(t, want, st)
	assertReplicaSynced(t, st)
}

func TestFingerprintDTypeMismatch(t *testing.T) {
	st := typedState(12)
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveFull(st, nil); err != nil {
		t.Fatal(err)
	}
	other := typedState(12)
	rng := xrand.New(12)
	other.Tables[0] = embedding.NewTableTyped("t", other.Tables[0].HashSize, 8, tensor.FP32, rng)
	if _, err := store.Restore(other); err == nil {
		t.Fatal("restore accepted a checkpoint with a different table dtype")
	} else if !strings.Contains(err.Error(), "bf16") {
		t.Fatalf("dtype mismatch error should name the dtype, got: %v", err)
	}
}

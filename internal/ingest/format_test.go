package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

func testCfg() core.Config {
	return core.Config{
		Name:          "ingest-test",
		DenseFeatures: 4,
		Sparse:        core.UniformSparse(2, 100, 3),
		EmbeddingDim:  8,
		BottomMLP:     []int{8},
		TopMLP:        []int{8},
		Interaction:   core.Concat,
	}
}

// handBatch builds a deterministic MiniBatch without the data package
// (which imports ingest).
func handBatch(cfg core.Config, rng *xrand.RNG, b int) *core.MiniBatch {
	mb := &core.MiniBatch{Dense: tensor.New(b, cfg.DenseFeatures)}
	for i := range mb.Dense.Data {
		mb.Dense.Data[i] = float32(rng.Norm())
	}
	mb.Bags = make([]embedding.Bag, cfg.NumSparse())
	for f := range mb.Bags {
		bag := &mb.Bags[f]
		bag.Offsets = append(bag.Offsets, 0)
		for i := 0; i < b; i++ {
			n := 1 + rng.Intn(4)
			for k := 0; k < n; k++ {
				bag.Indices = append(bag.Indices, int32(rng.Intn(cfg.Sparse[f].HashSize)))
			}
			bag.Offsets = append(bag.Offsets, int32(len(bag.Indices)))
		}
	}
	mb.Labels = make([]float32, b)
	for i := range mb.Labels {
		if rng.Float32() < 0.3 {
			mb.Labels[i] = 1
		}
	}
	return mb
}

func writeTestDataset(t *testing.T, cfg core.Config, seed int64, shards, perShard int) string {
	t.Helper()
	dir := t.TempDir()
	w, err := NewShardWriter(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(seed)
	for s := 0; s < shards; s++ {
		if err := w.Append(handBatch(cfg, rng, perShard)); err != nil {
			t.Fatal(err)
		}
		if err := w.EndShard(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestShardRoundTrip pins the wire format: what the writer serializes,
// decodeShard restores bit-exactly.
func TestShardRoundTrip(t *testing.T) {
	cfg := testCfg()
	dir := t.TempDir()
	w, err := NewShardWriter(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	mb := handBatch(cfg, rng, 17)
	if err := w.Append(mb); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Examples() != 17 {
		t.Fatalf("dataset holds %d examples, want 17", ds.Examples())
	}
	raw, err := os.ReadFile(filepath.Join(dir, ds.Manifest.Shards[0].File))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != ds.Manifest.Shards[0].Bytes {
		t.Fatalf("shard file %d bytes, manifest says %d", len(raw), ds.Manifest.Shards[0].Bytes)
	}
	var blk block
	if err := decodeShard(raw, &ds.Manifest, &blk); err != nil {
		t.Fatal(err)
	}
	if blk.n != 17 {
		t.Fatalf("decoded %d examples, want 17", blk.n)
	}
	for i := 0; i < blk.n; i++ {
		for j := 0; j < cfg.DenseFeatures; j++ {
			if got, want := blk.dense[i*cfg.DenseFeatures+j], mb.Dense.At(i, j); got != want {
				t.Fatalf("dense[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
		if got := float32(blk.labels[i]); got != mb.Labels[i] {
			t.Fatalf("label[%d] = %v, want %v", i, got, mb.Labels[i])
		}
		for f := range mb.Bags {
			bag := &mb.Bags[f]
			want := bag.Indices[bag.Offsets[i]:bag.Offsets[i+1]]
			got := blk.featIdx[f][blk.featOff[f][i]:blk.featOff[f][i+1]]
			if len(got) != len(want) {
				t.Fatalf("example %d feature %d: %d indices, want %d", i, f, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("example %d feature %d index %d: %d, want %d", i, f, k, got[k], want[k])
				}
			}
		}
	}
}

func TestManifestAndCompat(t *testing.T) {
	cfg := testCfg()
	dir := writeTestDataset(t, cfg, 2, 3, 8)
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if len(ds.Manifest.Shards) != 3 || ds.Examples() != 24 {
		t.Fatalf("manifest: %d shards / %d examples, want 3 / 24", len(ds.Manifest.Shards), ds.Examples())
	}
	if err := ds.CompatibleWith(cfg); err != nil {
		t.Fatalf("same config rejected: %v", err)
	}
	back := ds.Config()
	back.EmbeddingDim = cfg.EmbeddingDim
	back.BottomMLP = cfg.BottomMLP
	back.TopMLP = cfg.TopMLP
	if err := back.Validate(); err != nil {
		t.Fatalf("reconstructed config invalid: %v", err)
	}
	if err := ds.CompatibleWith(back); err != nil {
		t.Fatalf("reconstructed config rejected: %v", err)
	}

	bad := cfg
	bad.DenseFeatures = 9
	if err := ds.CompatibleWith(bad); err == nil {
		t.Error("dense mismatch accepted")
	}
	bad = cfg
	bad.Sparse = core.UniformSparse(2, 999, 3)
	if err := ds.CompatibleWith(bad); err == nil {
		t.Error("hash-size mismatch accepted")
	}
	bad = cfg
	bad.Sparse = core.UniformSparse(3, 100, 3)
	if err := ds.CompatibleWith(bad); err == nil {
		t.Error("sparse-count mismatch accepted")
	}
}

func TestOpenDatasetErrors(t *testing.T) {
	if _, err := OpenDataset(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	// Corrupt a shard and make sure decode catches it.
	cfg := testCfg()
	dir := writeTestDataset(t, cfg, 3, 1, 4)
	ds, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	raw, err := os.ReadFile(filepath.Join(dir, ds.Manifest.Shards[0].File))
	if err != nil {
		t.Fatal(err)
	}
	var blk block
	if err := decodeShard(raw[:len(raw)-3], &ds.Manifest, &blk); err == nil {
		t.Error("truncated shard decoded without error")
	}
	raw[0] ^= 0xff
	if err := decodeShard(raw, &ds.Manifest, &blk); err == nil {
		t.Error("bad magic decoded without error")
	}
}

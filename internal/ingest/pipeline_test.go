package ingest_test

import (
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ingest"
	"repro/internal/perfmodel"
	"repro/internal/xrand"
)

func pipeCfg() core.Config {
	return core.Config{
		Name:          "pipe-test",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(3, 500, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.DotProduct,
	}
}

func writeDataset(t *testing.T, cfg core.Config, seed int64, shards, perShard int) *ingest.Dataset {
	t.Helper()
	dir := t.TempDir()
	gen := data.NewGenerator(cfg, seed, data.DefaultOptions())
	if err := gen.WriteShards(dir, shards, perShard); err != nil {
		t.Fatal(err)
	}
	ds, err := ingest.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ds.Close() })
	return ds
}

// drain pulls batches until EOF, recycling each, and returns the example
// count and batch count.
func drain(t *testing.T, p *ingest.Pipeline, cfg core.Config) (examples, batches int) {
	t.Helper()
	for {
		mb, err := p.NextBatch()
		if errors.Is(err, io.EOF) {
			return examples, batches
		}
		if err != nil {
			t.Fatal(err)
		}
		if verr := mb.Validate(&cfg); verr != nil {
			t.Fatalf("assembled batch invalid: %v", verr)
		}
		examples += mb.Batch()
		batches++
		p.Recycle(mb)
	}
}

// TestPipelineDeliversEveryExample: one epoch emits exactly the dataset,
// batch by batch, for 1 and for several readers.
func TestPipelineDeliversEveryExample(t *testing.T) {
	cfg := pipeCfg()
	ds := writeDataset(t, cfg, 11, 4, 96)
	for _, readers := range []int{1, 3} {
		p, err := ingest.Open(ds, cfg, ingest.Options{
			BatchSize: 32, Readers: readers, Epochs: 1, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		examples, batches := drain(t, p, cfg)
		p.Close()
		if examples != 4*96 {
			t.Fatalf("readers=%d: delivered %d examples, want %d", readers, examples, 4*96)
		}
		if batches != 12 {
			t.Fatalf("readers=%d: %d batches, want 12", readers, batches)
		}
		m := p.Meters()
		if m.ExamplesDecoded != 4*96 || m.BatchesOut != 12 {
			t.Fatalf("readers=%d: meters decoded=%d batches=%d", readers, m.ExamplesDecoded, m.BatchesOut)
		}
		if m.BytesRead != ds.Bytes() {
			t.Fatalf("readers=%d: read %d bytes, dataset is %d", readers, m.BytesRead, ds.Bytes())
		}
	}
}

// TestPipelinePartialFinalBatch: a dataset that does not divide by the
// batch size ends with one short batch, not dropped examples.
func TestPipelinePartialFinalBatch(t *testing.T) {
	cfg := pipeCfg()
	ds := writeDataset(t, cfg, 12, 1, 50)
	p, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: 32, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	examples, batches := drain(t, p, cfg)
	if examples != 50 || batches != 2 {
		t.Fatalf("delivered %d examples in %d batches, want 50 in 2", examples, batches)
	}
}

// TestPipelineRecyclesBatches pins the backpressure ring: at steady state
// the batches handed out are the same objects handed back.
func TestPipelineRecyclesBatches(t *testing.T) {
	cfg := pipeCfg()
	ds := writeDataset(t, cfg, 13, 2, 256)
	p, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: 64, PrefetchDepth: 2, Epochs: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	seen := map[*core.MiniBatch]bool{}
	for i := 0; i < 40; i++ {
		mb, err := p.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		seen[mb] = true
		p.Recycle(mb)
	}
	// PrefetchDepth+1 is the mint budget; the ring must cycle within it.
	if len(seen) > 3 {
		t.Fatalf("pipeline minted %d distinct batches, budget is 3", len(seen))
	}
}

// TestPipelineDeterministicWithOneReader: fixed seed + single reader =>
// bit-identical batch stream.
func TestPipelineDeterministicWithOneReader(t *testing.T) {
	cfg := pipeCfg()
	ds := writeDataset(t, cfg, 14, 3, 64)
	stream := func() [][]float32 {
		p, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: 48, Readers: 1, Epochs: 1, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		var out [][]float32
		for {
			mb, err := p.NextBatch()
			if errors.Is(err, io.EOF) {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			row := append([]float32(nil), mb.Dense.Data...)
			row = append(row, mb.Labels...)
			out = append(out, row)
			p.Recycle(mb)
		}
	}
	a, b := stream(), stream()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("batch %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("batch %d diverges at %d", i, j)
			}
		}
	}
}

// TestDedupMeters: Zipf-skewed data dedups (ratio > 1); an all-unique
// dataset reports exactly 1.0.
func TestDedupMeters(t *testing.T) {
	cfg := pipeCfg() // Zipf index skew via DefaultOptions
	ds := writeDataset(t, cfg, 15, 2, 128)
	p, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: 64, Epochs: 1, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	for {
		mb, err := p.NextBatch()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(mb.Dedup) != cfg.NumSparse() || !mb.Dedup[0].Built() {
			t.Fatal("dedup view missing from assembled batch")
		}
		p.Recycle(mb)
	}
	p.Close()
	if r := p.Meters().DedupRatio(); r <= 1.0 {
		t.Fatalf("Zipf dataset dedup ratio %v, want > 1", r)
	}

	// All-unique dataset: every index distinct across the whole dataset.
	uniq := cfg
	uniq.Sparse = core.UniformSparse(2, 4096, 2)
	dir := t.TempDir()
	w, err := ingest.NewShardWriter(dir, uniq)
	if err != nil {
		t.Fatal(err)
	}
	gen := data.NewGenerator(uniq, 1, data.DefaultOptions())
	next := int32(0)
	var mb *core.MiniBatch
	for s := 0; s < 2; s++ {
		mb = gen.NextBatchInto(64, mb)
		for f := range mb.Bags {
			for k := range mb.Bags[f].Indices {
				mb.Bags[f].Indices[k] = next % 4096
				next++
			}
		}
		if err := w.Append(mb); err != nil {
			t.Fatal(err)
		}
		if err := w.EndShard(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if next > 4096 {
		t.Fatalf("test wrote %d indices into a 4096 hash space; uniqueness broken", next)
	}
	uds, err := ingest.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer uds.Close()
	up, err := ingest.Open(uds, uniq, ingest.Options{BatchSize: 32, Epochs: 1, Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	drain(t, up, uniq)
	if r := up.Meters().DedupRatio(); r != 1.0 {
		t.Fatalf("all-unique dedup ratio %v, want exactly 1.0", r)
	}
}

// TestStarvationMeter: a throttled single reader must leave the trainer
// starved; an unthrottled prefetching pipeline against a slow consumer
// must not.
func TestStarvationMeter(t *testing.T) {
	cfg := pipeCfg()
	ds := writeDataset(t, cfg, 16, 4, 128)
	bytesPerShard := float64(ds.Bytes()) / 4

	// Throttle so each shard takes ~15ms to "read": the instant consumer
	// is starved nearly 100% of the time.
	p, err := ingest.Open(ds, cfg, ingest.Options{
		BatchSize: 64, Readers: 1, Epochs: 1, ReadBandwidth: bytesPerShard / 0.015,
	})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, p, cfg)
	p.Close()
	m := p.Meters()
	if m.StarvationFrac() <= 0.2 {
		t.Fatalf("throttled reader starvation %.3f, want > 0.2", m.StarvationFrac())
	}
	if mbps := m.ReadMBps(); mbps <= 0 {
		t.Fatalf("read bandwidth meter %v", mbps)
	}

	// Unthrottled, slow consumer: prefetch hides the readers entirely.
	p2, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: 64, Readers: 2, Epochs: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i := 0; i < 10; i++ {
		mb, err := p2.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
		p2.Recycle(mb)
	}
	m2 := p2.Meters()
	if m2.StarvationFrac() > 0.5 {
		t.Fatalf("prefetching pipeline starved a slow consumer %.0f%% of the time", 100*m2.StarvationFrac())
	}
	if m2.Occupancy() <= 0 {
		t.Fatal("occupancy meter stayed at 0 under a slow consumer")
	}
}

// TestTrainFromPipeline: both trainers learn from the on-disk stream, and
// the dedup path trains identically to the plain path on the same stream.
func TestTrainFromPipeline(t *testing.T) {
	cfg := pipeCfg()
	ds := writeDataset(t, cfg, 17, 4, 256)

	losses := func(dedup bool) float64 {
		p, err := ingest.Open(ds, cfg, ingest.Options{
			BatchSize: 64, Readers: 1, Epochs: 0, Seed: 5, Dedup: dedup,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		m := core.NewModel(cfg, xrand.New(21))
		tr := core.NewTrainer(m, core.TrainerConfig{LR: 0.05})
		mean, steps, err := tr.TrainFrom(p, 30)
		if err != nil {
			t.Fatal(err)
		}
		if steps != 30 {
			t.Fatalf("trained %d steps, want 30", steps)
		}
		return mean
	}
	plain := losses(false)
	dedup := losses(true)
	if plain != dedup {
		t.Fatalf("dedup changed training: mean loss %v vs %v", dedup, plain)
	}
	if math.IsNaN(plain) || plain <= 0 {
		t.Fatalf("degenerate mean loss %v", plain)
	}

	// Finite stream: TrainFrom stops at EOF without error.
	p, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: 64, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	m := core.NewModel(cfg, xrand.New(22))
	tr := core.NewTrainer(m, core.TrainerConfig{LR: 0.05})
	_, steps, err := tr.TrainFrom(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 256 / 64; steps != want {
		t.Fatalf("finite stream yielded %d steps, want %d", steps, want)
	}
}

// TestIngestSteadyStateAllocs is the batch-recycling allocation guard:
// once every slab (blocks, shuffle slots, recycled MiniBatches, dedup
// views) has warmed, a NextBatch → Recycle cycle must be (near) zero
// allocation across the whole pipeline. AllocsPerRun counts process-wide
// mallocs, so the background decode/assembly stages are inside the
// budget; a small allowance absorbs runtime noise (timer pages, map
// growth tails on the skewed bag sizes).
func TestIngestSteadyStateAllocs(t *testing.T) {
	cfg := pipeCfg()
	ds := writeDataset(t, cfg, 41, 4, 256)
	p, err := ingest.Open(ds, cfg, ingest.Options{
		BatchSize: 64, Readers: 2, Epochs: 0, Dedup: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 600; i++ { // many epochs: warm every slab, cap, and map
		mb, err := p.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		p.Recycle(mb)
	}
	avg := testing.AllocsPerRun(50, func() {
		mb, err := p.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		p.Recycle(mb)
	})
	if avg > 2 {
		t.Fatalf("steady-state NextBatch/Recycle allocates %.1f objects, want ~0", avg)
	}
}

// TestMetersMatchPerfmodel cross-checks the analytic ingestion terms
// against the observed meters: one epoch reads exactly the dataset, and
// the dataset's size is exactly the per-record formula summed over the
// actual index counts (regenerated from an equal-seed generator).
func TestMetersMatchPerfmodel(t *testing.T) {
	cfg := pipeCfg()
	const shards, perShard = 3, 128
	ds := writeDataset(t, cfg, 23, shards, perShard)

	want := int64(shards * 16) // shard headers
	gen := data.NewGenerator(cfg, 23, data.DefaultOptions())
	counts := make([]int, cfg.NumSparse())
	for s := 0; s < shards; s++ {
		mb := gen.NextBatch(perShard)
		for i := 0; i < perShard; i++ {
			for f := range mb.Bags {
				counts[f] = int(mb.Bags[f].Offsets[i+1] - mb.Bags[f].Offsets[i])
			}
			want += perfmodel.IngestRecordBytes(cfg.DenseFeatures, counts)
		}
	}
	if ds.Bytes() != want {
		t.Fatalf("dataset is %d bytes, IngestRecordBytes sums to %d", ds.Bytes(), want)
	}

	p, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: 64, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	drain(t, p, cfg)
	m := p.Meters()
	if m.BytesRead != want {
		t.Fatalf("meters read %d bytes, formula says %d", m.BytesRead, want)
	}
	// The expectation form (configured MeanPooled) should land within a
	// factor of two of the realized mean record — the generator's
	// rescaled power law is approximate, not exact.
	obs := float64(m.BytesRead) / float64(m.ExamplesDecoded)
	exp := perfmodel.IngestBytesPerExample(cfg)
	if r := obs / exp; r < 0.5 || r > 2 {
		t.Fatalf("observed %.1f bytes/example vs expected %.1f (ratio %.2f)", obs, exp, r)
	}
}

// TestGeneratorSource: the in-memory baseline source recycles and streams
// forever.
func TestGeneratorSource(t *testing.T) {
	cfg := pipeCfg()
	gen := data.NewGenerator(cfg, 31, data.DefaultOptions())
	src := gen.NewSource(32)
	mb, err := src.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if mb.Batch() != 32 {
		t.Fatalf("batch size %d", mb.Batch())
	}
	src.Recycle(mb)
	mb2, err := src.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if mb2 != mb {
		t.Fatal("GeneratorSource did not recycle the batch")
	}
	m := core.NewModel(cfg, xrand.New(1))
	tr := core.NewTrainer(m, core.TrainerConfig{LR: 0.05})
	if _, steps, err := tr.TrainFrom(src, 5); err != nil || steps != 5 {
		t.Fatalf("TrainFrom(GeneratorSource): steps=%d err=%v", steps, err)
	}
}

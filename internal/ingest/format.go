// Package ingest is the real (executing, not simulated) data-ingestion
// subsystem: a compact sharded on-disk record format plus a staged reader
// pipeline that decodes shards in parallel, shuffles through a bounded
// buffer, assembles recycled MiniBatches with RecD-style within-batch
// sparse dedup, and feeds either trainer through core.BatchSource with
// explicit backpressure. It is the in-process analogue of the paper's
// disaggregated reader tier (§IV-B2): ingestion bandwidth can bound
// end-to-end training throughput just like FLOPs or memory, and the
// pipeline's per-stage meters (shard-read MB/s, dedup ratio, prefetch
// occupancy, trainer starvation) make the reader-bound vs trainer-bound
// regimes of the ingest_scaling experiment observable rather than modeled.
//
// On-disk layout of a dataset directory:
//
//	MANIFEST.json    dataset schema + shard index
//	shard-00000.rsd  examples (see shard format below)
//	shard-00001.rsd  ...
//
// Shard format (all integers little-endian):
//
//	magic   uint32  'R','S','D','1'
//	dense   uint32  dense feature count
//	sparse  uint32  sparse feature count
//	count   uint32  examples in this shard
//	records:
//	  label  uint8            0 or 1
//	  dense  float32 × dense  IEEE-754 bits
//	  per sparse feature:
//	    n    uint16           index count
//	    idx  int32 × n        embedding row ids
//
// The format is deliberately flat: a shard decodes with one sequential
// pass and no per-record framing beyond the counts, so the decode stage
// is bandwidth-shaped, and two writers fed identical example streams
// produce bit-identical files (the determinism contract of
// data.Generator.WriteShards).
package ingest

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
)

const (
	shardMagic   = uint32('R') | uint32('S')<<8 | uint32('D')<<16 | uint32('1')<<24
	shardHeader  = 16 // magic + dense + sparse + count
	manifestName = "MANIFEST.json"
)

// ManifestFeature records one sparse feature's schema in the manifest.
type ManifestFeature struct {
	Name       string  `json:"name"`
	HashSize   int     `json:"hash_size"`
	MeanPooled float64 `json:"mean_pooled"`
	MaxPooled  int     `json:"max_pooled"`
}

// ManifestShard indexes one shard file.
type ManifestShard struct {
	File     string `json:"file"`
	Examples int    `json:"examples"`
	Bytes    int64  `json:"bytes"`
}

// Manifest is the dataset's schema and shard index, stored as
// MANIFEST.json in the dataset directory.
type Manifest struct {
	Version       int               `json:"version"`
	DenseFeatures int               `json:"dense_features"`
	Sparse        []ManifestFeature `json:"sparse"`
	Shards        []ManifestShard   `json:"shards"`
}

// ShardWriter materializes a dataset directory shard by shard. Append
// batches with Append, cut shard boundaries with EndShard, and Close to
// write the manifest. The writer buffers one shard in memory (shards are
// meant to be modest — thousands of examples), so the files it emits are
// a pure function of the appended example stream.
type ShardWriter struct {
	dir      string
	cfg      core.Config
	man      Manifest
	buf      []byte
	examples int
	closed   bool
}

// NewShardWriter creates dir (if needed) and returns a writer for
// datasets matching cfg's feature space.
func NewShardWriter(dir string, cfg core.Config) (*ShardWriter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: creating dataset dir: %w", err)
	}
	w := &ShardWriter{dir: dir, cfg: cfg}
	w.man.Version = 1
	w.man.DenseFeatures = cfg.DenseFeatures
	for _, s := range cfg.Sparse {
		w.man.Sparse = append(w.man.Sparse, ManifestFeature{
			Name: s.Name, HashSize: s.HashSize, MeanPooled: s.MeanPooled, MaxPooled: s.MaxPooled,
		})
	}
	return w, nil
}

// Append serializes every example of the batch into the current shard.
func (w *ShardWriter) Append(mb *core.MiniBatch) error {
	if w.closed {
		return fmt.Errorf("ingest: Append after Close")
	}
	if err := mb.Validate(&w.cfg); err != nil {
		return fmt.Errorf("ingest: appending batch: %w", err)
	}
	B := mb.Batch()
	for i := 0; i < B; i++ {
		if mb.Labels[i] > 0.5 {
			w.buf = append(w.buf, 1)
		} else {
			w.buf = append(w.buf, 0)
		}
		for _, v := range mb.Dense.Row(i) {
			w.buf = binary.LittleEndian.AppendUint32(w.buf, math.Float32bits(v))
		}
		for f := range mb.Bags {
			bag := &mb.Bags[f]
			idxs := bag.Indices[bag.Offsets[i]:bag.Offsets[i+1]]
			if len(idxs) > math.MaxUint16 {
				return fmt.Errorf("ingest: example %d feature %d has %d indices (max %d)",
					i, f, len(idxs), math.MaxUint16)
			}
			w.buf = binary.LittleEndian.AppendUint16(w.buf, uint16(len(idxs)))
			for _, ix := range idxs {
				w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(ix))
			}
		}
	}
	w.examples += B
	return nil
}

// EndShard flushes the buffered examples as the next shard file. Ending
// an empty shard is a no-op.
func (w *ShardWriter) EndShard() error {
	if w.closed {
		return fmt.Errorf("ingest: EndShard after Close")
	}
	if w.examples == 0 {
		return nil
	}
	name := fmt.Sprintf("shard-%05d.rsd", len(w.man.Shards))
	hdr := make([]byte, 0, shardHeader)
	hdr = binary.LittleEndian.AppendUint32(hdr, shardMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.cfg.DenseFeatures))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.cfg.NumSparse()))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(w.examples))
	path := filepath.Join(w.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ingest: creating shard: %w", err)
	}
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(w.buf)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("ingest: writing shard %s: %w", name, err)
	}
	w.man.Shards = append(w.man.Shards, ManifestShard{
		File: name, Examples: w.examples, Bytes: int64(shardHeader + len(w.buf)),
	})
	w.buf = w.buf[:0]
	w.examples = 0
	return nil
}

// Close ends the current shard (if non-empty) and writes MANIFEST.json.
func (w *ShardWriter) Close() error {
	if w.closed {
		return nil
	}
	if err := w.EndShard(); err != nil {
		return err
	}
	w.closed = true
	js, err := json.MarshalIndent(w.man, "", "  ")
	if err != nil {
		return err
	}
	js = append(js, '\n')
	if err := os.WriteFile(filepath.Join(w.dir, manifestName), js, 0o644); err != nil {
		return fmt.Errorf("ingest: writing manifest: %w", err)
	}
	return nil
}

// Dataset is an opened sharded dataset: the parsed manifest plus one file
// handle per shard (handles are shared by concurrent pipeline readers via
// ReadAt, so an epoch never re-opens files).
type Dataset struct {
	Dir      string
	Manifest Manifest

	files []*os.File
}

// OpenDataset reads the manifest and opens every shard.
func OpenDataset(dir string) (*Dataset, error) {
	js, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("ingest: reading manifest: %w", err)
	}
	ds := &Dataset{Dir: dir}
	if err := json.Unmarshal(js, &ds.Manifest); err != nil {
		return nil, fmt.Errorf("ingest: parsing manifest: %w", err)
	}
	if ds.Manifest.Version != 1 {
		return nil, fmt.Errorf("ingest: manifest version %d, want 1", ds.Manifest.Version)
	}
	if len(ds.Manifest.Shards) == 0 {
		return nil, fmt.Errorf("ingest: dataset %s has no shards", dir)
	}
	for _, sh := range ds.Manifest.Shards {
		f, err := os.Open(filepath.Join(dir, sh.File))
		if err != nil {
			ds.Close()
			return nil, fmt.Errorf("ingest: opening shard: %w", err)
		}
		ds.files = append(ds.files, f)
	}
	return ds, nil
}

// Close releases the shard file handles.
func (ds *Dataset) Close() error {
	var first error
	for _, f := range ds.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	ds.files = nil
	return first
}

// Examples returns the dataset's total example count.
func (ds *Dataset) Examples() int {
	n := 0
	for _, sh := range ds.Manifest.Shards {
		n += sh.Examples
	}
	return n
}

// Bytes returns the dataset's total on-disk size.
func (ds *Dataset) Bytes() int64 {
	var b int64
	for _, sh := range ds.Manifest.Shards {
		b += sh.Bytes
	}
	return b
}

// Config reconstructs a model-config skeleton (feature space only; MLP
// stacks and interaction are the trainer's choice) from the manifest.
func (ds *Dataset) Config() core.Config {
	cfg := core.Config{Name: filepath.Base(ds.Dir), DenseFeatures: ds.Manifest.DenseFeatures}
	for _, s := range ds.Manifest.Sparse {
		cfg.Sparse = append(cfg.Sparse, core.SparseFeature{
			Name: s.Name, HashSize: s.HashSize, MeanPooled: s.MeanPooled, MaxPooled: s.MaxPooled,
		})
	}
	return cfg
}

// CompatibleWith checks that a model config can train from this dataset:
// same dense width and per-feature hash sizes.
func (ds *Dataset) CompatibleWith(cfg core.Config) error {
	if cfg.DenseFeatures != ds.Manifest.DenseFeatures {
		return fmt.Errorf("ingest: dataset has %d dense features, model wants %d",
			ds.Manifest.DenseFeatures, cfg.DenseFeatures)
	}
	if cfg.NumSparse() != len(ds.Manifest.Sparse) {
		return fmt.Errorf("ingest: dataset has %d sparse features, model wants %d",
			len(ds.Manifest.Sparse), cfg.NumSparse())
	}
	for i, s := range cfg.Sparse {
		if s.HashSize != ds.Manifest.Sparse[i].HashSize {
			return fmt.Errorf("ingest: feature %d hash size %d, model wants %d",
				i, ds.Manifest.Sparse[i].HashSize, s.HashSize)
		}
	}
	return nil
}

// block is one decoded shard resident in slab storage. Blocks recycle
// through the pipeline's free list; the assembler copies examples out at
// admission and returns the block immediately.
type block struct {
	n      int       // examples
	labels []byte    // n
	dense  []float32 // n × denseFeatures
	// Per sparse feature, flat indices plus n+1 offsets.
	featIdx [][]int32
	featOff [][]int32
	raw     []byte // reusable shard read buffer
}

// growI32 grows (without shrinking) an int32 slab.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// decodeShard parses a raw shard image into blk, reusing its slabs. It
// validates the header against the manifest schema and bounds-checks
// index counts against the buffer, not each index against the hash space
// — the assembler builds Bags whose consumers validate at the boundary.
func decodeShard(raw []byte, man *Manifest, blk *block) error {
	if len(raw) < shardHeader {
		return fmt.Errorf("ingest: shard truncated (%d bytes)", len(raw))
	}
	if binary.LittleEndian.Uint32(raw) != shardMagic {
		return fmt.Errorf("ingest: bad shard magic %#x", binary.LittleEndian.Uint32(raw))
	}
	dense := int(binary.LittleEndian.Uint32(raw[4:]))
	sparse := int(binary.LittleEndian.Uint32(raw[8:]))
	count := int(binary.LittleEndian.Uint32(raw[12:]))
	if dense != man.DenseFeatures || sparse != len(man.Sparse) {
		return fmt.Errorf("ingest: shard schema %dd/%ds, manifest %dd/%ds",
			dense, sparse, man.DenseFeatures, len(man.Sparse))
	}

	blk.n = count
	if cap(blk.labels) < count {
		blk.labels = make([]byte, count)
	}
	blk.labels = blk.labels[:count]
	need := count * dense
	if cap(blk.dense) < need {
		blk.dense = make([]float32, need)
	}
	blk.dense = blk.dense[:need]
	if len(blk.featIdx) != sparse {
		blk.featIdx = make([][]int32, sparse)
		blk.featOff = make([][]int32, sparse)
	}
	for f := 0; f < sparse; f++ {
		blk.featIdx[f] = blk.featIdx[f][:0]
		blk.featOff[f] = growI32(blk.featOff[f], count+1)
		blk.featOff[f][0] = 0
	}

	p := shardHeader
	for i := 0; i < count; i++ {
		if p >= len(raw) {
			return fmt.Errorf("ingest: shard truncated at example %d", i)
		}
		blk.labels[i] = raw[p]
		p++
		if p+4*dense > len(raw) {
			return fmt.Errorf("ingest: shard truncated in dense block of example %d", i)
		}
		for j := 0; j < dense; j++ {
			blk.dense[i*dense+j] = math.Float32frombits(binary.LittleEndian.Uint32(raw[p:]))
			p += 4
		}
		for f := 0; f < sparse; f++ {
			if p+2 > len(raw) {
				return fmt.Errorf("ingest: shard truncated in feature %d of example %d", f, i)
			}
			n := int(binary.LittleEndian.Uint16(raw[p:]))
			p += 2
			if p+4*n > len(raw) {
				return fmt.Errorf("ingest: shard truncated in indices of example %d", i)
			}
			for k := 0; k < n; k++ {
				blk.featIdx[f] = append(blk.featIdx[f], int32(binary.LittleEndian.Uint32(raw[p:])))
				p += 4
			}
			blk.featOff[f][i+1] = int32(len(blk.featIdx[f]))
		}
	}
	if p != len(raw) {
		return fmt.Errorf("ingest: %d trailing bytes after %d examples", len(raw)-p, count)
	}
	return nil
}

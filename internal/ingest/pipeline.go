package ingest

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Options tunes the staged reader pipeline.
type Options struct {
	// BatchSize is the assembled mini-batch size (required).
	BatchSize int
	// Readers is the parallel shard-decode stage width (default 1) —
	// the readers-per-trainer knob of the ingest_scaling experiment.
	Readers int
	// PrefetchDepth bounds the assembled-batch ring (default 4). The
	// assembler owns at most PrefetchDepth+1 recycled MiniBatches; once
	// all are lent out it blocks until the trainer recycles one — the
	// explicit backpressure that keeps the hot path allocation-free.
	PrefetchDepth int
	// ShuffleWindow is the bounded shuffle buffer size in examples
	// (default 4×BatchSize; raised to BatchSize if smaller). Batches
	// draw uniformly from the window, decoupling batch composition from
	// shard order.
	ShuffleWindow int
	// Dedup builds the RecD-style within-batch unique-row view on every
	// assembled batch, switching both trainers onto the dedup kernels.
	Dedup bool
	// Epochs bounds dataset passes; 0 streams forever.
	Epochs int
	// Seed drives shard-order and shuffle-buffer randomness. With
	// Readers=1 the emitted batch stream is a deterministic function of
	// (dataset, Options); with more readers shard arrival order races
	// and only the example set per epoch is deterministic.
	Seed int64
	// ReadBandwidth throttles each reader to this many bytes/second
	// (0 = unthrottled), emulating the storage/NIC bandwidth of a
	// disaggregated reader tier so reader-bound regimes are reproducible
	// on any machine.
	ReadBandwidth float64
	// Registry receives the pipeline's stage meters under "ingest/…".
	// Nil gets a private registry, so Meters keeps working standalone.
	Registry *telemetry.Registry
	// Trace, when non-nil, records stage spans (read, decode, shuffle
	// admission, batch assembly, trainer batch-wait) onto ShardCount
	// consecutive tracer shards starting at TraceShard: one per decoder,
	// one for the assembler, one for NextBatch waits.
	Trace      *telemetry.Tracer
	TraceShard int
}

// ShardCount returns how many tracer shards the pipeline records onto
// (after defaults: Readers decoders + assembler + batch-wait).
func (o Options) ShardCount() int {
	r := o.Readers
	if r <= 0 {
		r = 1
	}
	return r + 2
}

func (o *Options) defaults() error {
	if o.BatchSize <= 0 {
		return fmt.Errorf("ingest: BatchSize must be positive")
	}
	if o.Readers <= 0 {
		o.Readers = 1
	}
	if o.PrefetchDepth <= 0 {
		o.PrefetchDepth = 4
	}
	if o.ShuffleWindow <= 0 {
		o.ShuffleWindow = 4 * o.BatchSize
	}
	if o.ShuffleWindow < o.BatchSize {
		o.ShuffleWindow = o.BatchSize
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return nil
}

// MeterSnapshot is a point-in-time copy of the pipeline's per-stage
// meters. Stage seconds are summed across goroutines (Readers>1 can make
// ReadSeconds exceed wall time).
type MeterSnapshot struct {
	BytesRead       int64   // shard bytes read from disk
	ReadSeconds     float64 // time in ReadAt + bandwidth throttle
	DecodeSeconds   float64 // time parsing shard images
	ExamplesDecoded int64
	BatchesOut      int64
	TotalIndices    int64   // sparse indices through assembly
	UniqueIndices   int64   // after within-batch dedup (== Total when off)
	StarvedSeconds  float64 // NextBatch time blocked on an empty ring
	WallSeconds     float64 // first NextBatch call to the latest one
	OccupancySum    int64   // filled-ring depth summed over NextBatch calls
	OccupancyCap    int     // ring capacity (PrefetchDepth)
	NextCalls       int64
}

// ReadMBps returns the decode stage's achieved shard-read bandwidth.
func (m MeterSnapshot) ReadMBps() float64 {
	if m.ReadSeconds == 0 {
		return 0
	}
	return float64(m.BytesRead) / m.ReadSeconds / (1 << 20)
}

// DedupRatio returns total/unique sparse indices through assembly — the
// RecD dedup win. Exactly 1 when every index in every batch is unique
// (or when dedup is off).
func (m MeterSnapshot) DedupRatio() float64 {
	if m.UniqueIndices == 0 {
		return 1
	}
	return float64(m.TotalIndices) / float64(m.UniqueIndices)
}

// StarvationFrac returns the fraction of trainer wall time spent blocked
// waiting for a batch — >0 means the pipeline is reader-bound.
func (m MeterSnapshot) StarvationFrac() float64 {
	if m.WallSeconds == 0 {
		return 0
	}
	return m.StarvedSeconds / m.WallSeconds
}

// Occupancy returns the mean filled-ring depth as a fraction of capacity,
// sampled at every NextBatch: near 1 means the trainer is the bottleneck,
// near 0 means the readers are.
func (m MeterSnapshot) Occupancy() float64 {
	if m.NextCalls == 0 || m.OccupancyCap == 0 {
		return 0
	}
	return float64(m.OccupancySum) / float64(m.NextCalls) / float64(m.OccupancyCap)
}

// exSlot is one shuffle-buffer entry: an example copied out of its
// decoded block into reservoir-owned storage. Copying at admission lets a
// block return to the decode stage the moment it is admitted — no
// pinning, so the bounded reservoir can never starve the block free list
// — and slots recycle through the assembler's free list, so steady-state
// admission is allocation-free.
type exSlot struct {
	dense []float32
	label float32
	idx   [][]int32 // per sparse feature
}

// Pipeline is the staged reader: parallel shard decode → bounded shuffle
// buffer → batch assembly (with optional RecD dedup) into a recycled
// prefetch ring. It implements core.BatchSource; Close releases the
// stage goroutines.
type Pipeline struct {
	ds  *Dataset
	cfg core.Config
	opt Options

	shardCh    chan int
	blockCh    chan *block
	freeBlocks chan *block
	batchCh    chan *core.MiniBatch
	freeBatch  chan *core.MiniBatch
	allocated  int // MiniBatches minted by the assembler

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	err      atomic.Value // first stage error, type error

	// Meters live in a telemetry.Registry ("ingest/…"); the pointers are
	// resolved once at Open so the hot paths stay single atomic adds.
	reg                               *telemetry.Registry
	bytesRead, readNanos, decodeNanos *telemetry.Counter
	examplesDecoded, batchesOut       *telemetry.Counter
	totalIdx, uniqueIdx               *telemetry.Counter
	starvedNanos, occSum, nextCalls   *telemetry.Counter
	// firstNext/lastNext bound the trainer's measurement window, in
	// telemetry-clock nanos — the same monotonic base as starvedNanos and
	// every span, so StarvationFrac and the attribution report agree.
	firstNext, lastNext *telemetry.Gauge
}

// Open validates cfg against the dataset and starts the stage goroutines:
// one shard-order coordinator, opt.Readers decoders, one assembler.
func Open(ds *Dataset, cfg core.Config, opt Options) (*Pipeline, error) {
	if err := opt.defaults(); err != nil {
		return nil, err
	}
	if err := ds.CompatibleWith(cfg); err != nil {
		return nil, err
	}
	for _, sh := range ds.Manifest.Shards {
		if sh.Examples < 1 {
			return nil, fmt.Errorf("ingest: shard %s with zero examples", sh.File)
		}
	}
	nBlocks := opt.Readers + 2
	p := &Pipeline{
		ds:         ds,
		cfg:        cfg,
		opt:        opt,
		shardCh:    make(chan int),
		blockCh:    make(chan *block, nBlocks),
		freeBlocks: make(chan *block, nBlocks),
		batchCh:    make(chan *core.MiniBatch, opt.PrefetchDepth),
		freeBatch:  make(chan *core.MiniBatch, opt.PrefetchDepth+2),
		stop:       make(chan struct{}),
	}
	reg := opt.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	p.reg = reg
	p.bytesRead = reg.Counter("ingest/bytes_read")
	p.readNanos = reg.Counter("ingest/read_ns")
	p.decodeNanos = reg.Counter("ingest/decode_ns")
	p.examplesDecoded = reg.Counter("ingest/examples_decoded")
	p.batchesOut = reg.Counter("ingest/batches_out")
	p.totalIdx = reg.Counter("ingest/indices_total")
	p.uniqueIdx = reg.Counter("ingest/indices_unique")
	p.starvedNanos = reg.Counter("ingest/starved_ns")
	p.occSum = reg.Counter("ingest/occupancy_sum")
	p.nextCalls = reg.Counter("ingest/next_calls")
	p.firstNext = reg.Gauge("ingest/first_next_ns")
	p.lastNext = reg.Gauge("ingest/last_next_ns")
	reg.RegisterFunc("ingest/ring_depth", func() int64 { return int64(len(p.batchCh)) })
	reg.RegisterFunc("ingest/ring_cap", func() int64 { return int64(p.opt.PrefetchDepth) })
	if t := opt.Trace; t != nil {
		for r := 0; r < opt.Readers; r++ {
			t.NameShard(opt.TraceShard+r, fmt.Sprintf("ingest decoder %d", r))
		}
		t.NameShard(opt.TraceShard+opt.Readers, "ingest assembler")
		t.NameShard(opt.TraceShard+opt.Readers+1, "ingest batch-wait")
	}
	for i := 0; i < nBlocks; i++ {
		p.freeBlocks <- &block{}
	}

	p.wg.Add(1)
	go p.coordinate()
	var decoders sync.WaitGroup
	for r := 0; r < opt.Readers; r++ {
		p.wg.Add(1)
		decoders.Add(1)
		go func(r int) {
			defer decoders.Done()
			p.decodeLoop(opt.TraceShard + r)
		}(r)
	}
	go func() { // close the block stream once every decoder drains
		decoders.Wait()
		close(p.blockCh)
	}()
	p.wg.Add(1)
	go p.assemble()
	return p, nil
}

// fail records the first stage error and tears the pipeline down.
func (p *Pipeline) fail(err error) {
	p.err.CompareAndSwap(nil, err)
	p.stopOnce.Do(func() { close(p.stop) })
}

// coordinate feeds shard indices for each epoch in a per-epoch shuffled
// order, then closes the work queue.
func (p *Pipeline) coordinate() {
	defer p.wg.Done()
	defer close(p.shardCh)
	rng := xrand.New(p.opt.Seed)
	n := len(p.ds.Manifest.Shards)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for epoch := 0; p.opt.Epochs == 0 || epoch < p.opt.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, si := range order {
			select {
			case p.shardCh <- si:
			case <-p.stop:
				return
			}
		}
	}
}

// decodeLoop is one reader of the parallel decode stage: claim a shard,
// read it (throttled to the emulated storage bandwidth) into the block's
// reusable buffer, parse, and hand the block downstream. shard is this
// decoder's tracer shard (it is the only goroutine recording onto it).
func (p *Pipeline) decodeLoop(shard int) {
	defer p.wg.Done()
	for {
		var si int
		var ok bool
		select {
		case si, ok = <-p.shardCh:
			if !ok {
				return
			}
		case <-p.stop:
			return
		}
		var blk *block
		select {
		case blk = <-p.freeBlocks:
		case <-p.stop:
			return
		}

		sh := p.ds.Manifest.Shards[si]
		t0 := telemetry.Now()
		if cap(blk.raw) < int(sh.Bytes) {
			blk.raw = make([]byte, sh.Bytes)
		}
		blk.raw = blk.raw[:sh.Bytes]
		if _, err := p.ds.files[si].ReadAt(blk.raw, 0); err != nil {
			p.fail(fmt.Errorf("ingest: reading shard %s: %w", sh.File, err))
			return
		}
		if p.opt.ReadBandwidth > 0 {
			want := time.Duration(float64(sh.Bytes) / p.opt.ReadBandwidth * float64(time.Second))
			if spent := time.Duration(telemetry.Now() - t0); spent < want {
				select {
				case <-time.After(want - spent):
				case <-p.stop:
					return
				}
			}
		}
		t1 := telemetry.Now()
		p.readNanos.Add(t1 - t0)
		p.bytesRead.Add(sh.Bytes)
		p.opt.Trace.Emit(shard, telemetry.PhaseIngestRead, t0, t1)

		if err := decodeShard(blk.raw, &p.ds.Manifest, blk); err != nil {
			p.fail(err)
			return
		}
		t2 := telemetry.Now()
		p.decodeNanos.Add(t2 - t1)
		p.examplesDecoded.Add(int64(blk.n))
		p.opt.Trace.Emit(shard, telemetry.PhaseIngestDecode, t1, t2)

		select {
		case p.blockCh <- blk:
		case <-p.stop:
			return
		}
	}
}

// assemble is the shuffle + batch-assembly stage: it keeps the bounded
// reservoir topped up from decoded blocks, draws uniform examples into a
// recycled MiniBatch, optionally attaches the dedup view, and publishes
// the batch. It closes the batch ring when the dataset is exhausted.
func (p *Pipeline) assemble() {
	defer p.wg.Done()
	rng := xrand.New(p.opt.Seed + 1)
	var res []*exSlot   // shuffle reservoir
	var spare []*exSlot // recycled slots
	sparse := p.cfg.NumSparse()
	dense := p.cfg.DenseFeatures
	asmShard := p.opt.TraceShard + p.opt.Readers // this goroutine's tracer shard
	admit := func(blk *block) {
		t0 := telemetry.Now()
		for i := 0; i < blk.n; i++ {
			var s *exSlot
			if n := len(spare); n > 0 {
				s = spare[n-1]
				spare = spare[:n-1]
			} else {
				s = &exSlot{idx: make([][]int32, sparse)}
			}
			s.dense = append(s.dense[:0], blk.dense[i*dense:(i+1)*dense]...)
			s.label = float32(blk.labels[i])
			for f := 0; f < sparse; f++ {
				off := blk.featOff[f]
				s.idx[f] = append(s.idx[f][:0], blk.featIdx[f][off[i]:off[i+1]]...)
			}
			res = append(res, s)
		}
		p.opt.Trace.Emit(asmShard, telemetry.PhaseIngestShuffle, t0, telemetry.Now())
		select { // block fully copied out; hand it straight back
		case p.freeBlocks <- blk:
		default:
		}
	}
	open := true
	for {
		// Fill the reservoir to the shuffle window before cutting a
		// batch. The fill always blocks for whole blocks, never polls, so
		// batch composition is a pure function of block arrival order —
		// with one reader, of (dataset, Options) alone.
		for open && len(res) < p.opt.ShuffleWindow {
			select {
			case blk, ok := <-p.blockCh:
				if !ok {
					open = false
				} else {
					admit(blk)
				}
			case <-p.stop:
				return
			}
		}
		if len(res) == 0 {
			if !open {
				close(p.batchCh)
				return
			}
			continue
		}
		bs := p.opt.BatchSize
		if bs > len(res) {
			bs = len(res) // final partial batch of a finite stream
		}
		mb := p.claimBatch()
		if mb == nil {
			return // stopped
		}
		tFill := telemetry.Now()
		spare = p.fillBatch(mb, bs, &res, spare, rng)
		p.opt.Trace.Emit(asmShard, telemetry.PhaseIngestAssemble, tFill, telemetry.Now())
		select {
		case p.batchCh <- mb:
			p.batchesOut.Add(1)
		case <-p.stop:
			return
		}
	}
}

// claimBatch takes a recycled MiniBatch from the free ring, minting new
// ones only until the ring's batch budget is reached — after that it
// blocks until the trainer recycles (the backpressure edge).
func (p *Pipeline) claimBatch() *core.MiniBatch {
	select {
	case mb := <-p.freeBatch:
		return mb
	case <-p.stop:
		return nil
	default:
	}
	if p.allocated <= p.opt.PrefetchDepth {
		p.allocated++
		return &core.MiniBatch{}
	}
	select {
	case mb := <-p.freeBatch:
		return mb
	case <-p.stop:
		return nil
	}
}

// fillBatch assembles bs uniformly drawn reservoir examples into mb,
// reusing its buffers, and returns the drawn slots to the spare list.
func (p *Pipeline) fillBatch(mb *core.MiniBatch, bs int, res *[]*exSlot, spare []*exSlot, rng *xrand.RNG) []*exSlot {
	cfg := &p.cfg
	dense := cfg.DenseFeatures
	if mb.Dense == nil || mb.Dense.Rows != bs || mb.Dense.Cols != dense {
		mb.Dense = tensor.New(bs, dense)
	}
	if len(mb.Bags) != cfg.NumSparse() {
		mb.Bags = make([]embedding.Bag, cfg.NumSparse())
	}
	for f := range mb.Bags {
		mb.Bags[f].Indices = mb.Bags[f].Indices[:0]
		mb.Bags[f].Offsets = append(mb.Bags[f].Offsets[:0], 0)
	}
	if cap(mb.Labels) < bs {
		mb.Labels = make([]float32, bs)
	}
	mb.Labels = mb.Labels[:bs]

	r := *res
	for k := 0; k < bs; k++ {
		j := rng.Intn(len(r))
		s := r[j]
		r[j] = r[len(r)-1]
		r = r[:len(r)-1]

		copy(mb.Dense.Row(k), s.dense)
		mb.Labels[k] = s.label
		for f := range mb.Bags {
			bag := &mb.Bags[f]
			bag.Indices = append(bag.Indices, s.idx[f]...)
			bag.Offsets = append(bag.Offsets, int32(len(bag.Indices)))
		}
		spare = append(spare, s)
	}
	*res = r

	var total, unique int64
	if p.opt.Dedup {
		mb.AttachDedup()
		for f := range mb.Bags {
			total += int64(len(mb.Bags[f].Indices))
			unique += int64(len(mb.Dedup[f].Unique))
		}
	} else {
		mb.DetachDedup()
		for f := range mb.Bags {
			total += int64(len(mb.Bags[f].Indices))
		}
		unique = total
	}
	p.totalIdx.Add(total)
	p.uniqueIdx.Add(unique)
	return spare
}

// NextBatch implements core.BatchSource. It meters ring occupancy and the
// time spent starved (blocked on an empty ring). All timestamps come
// from the telemetry clock — the same monotonic base as hybrid step
// timing — so StarvationFrac composes with the attribution report
// instead of mixing wall- and monotonic-clock windows.
func (p *Pipeline) NextBatch() (*core.MiniBatch, error) {
	now := telemetry.Now()
	p.firstNext.SetOnce(now)
	p.nextCalls.Inc()
	p.occSum.Add(int64(len(p.batchCh)))

	var mb *core.MiniBatch
	var ok bool
	select {
	case mb, ok = <-p.batchCh: // fast path: ring has a batch ready
	default:
		t0 := telemetry.Now()
		select {
		case mb, ok = <-p.batchCh:
		case <-p.stop:
			if err := p.takeErr(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("ingest: pipeline closed")
		}
		t1 := telemetry.Now()
		p.starvedNanos.Add(t1 - t0)
		p.opt.Trace.Emit(p.opt.TraceShard+p.opt.Readers+1, telemetry.PhaseBatchWait, t0, t1)
	}
	p.lastNext.Set(telemetry.Now())
	if !ok {
		if err := p.takeErr(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	return mb, nil
}

func (p *Pipeline) takeErr() error {
	if v := p.err.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Recycle implements core.BatchSource: the batch re-enters the free ring
// for in-place refill. Foreign or surplus batches are dropped.
func (p *Pipeline) Recycle(mb *core.MiniBatch) {
	if mb == nil {
		return
	}
	select {
	case p.freeBatch <- mb:
	default:
	}
}

// Registry returns the registry holding the pipeline's "ingest/…"
// meters (the one passed in Options, or the private default).
func (p *Pipeline) Registry() *telemetry.Registry { return p.reg }

// Meters returns a snapshot of the per-stage meters. It is a shim over
// the telemetry registry, kept so existing callers and experiments read
// the same struct they always did.
func (p *Pipeline) Meters() MeterSnapshot {
	m := MeterSnapshot{
		BytesRead:       p.bytesRead.Load(),
		ReadSeconds:     time.Duration(p.readNanos.Load()).Seconds(),
		DecodeSeconds:   time.Duration(p.decodeNanos.Load()).Seconds(),
		ExamplesDecoded: p.examplesDecoded.Load(),
		BatchesOut:      p.batchesOut.Load(),
		TotalIndices:    p.totalIdx.Load(),
		UniqueIndices:   p.uniqueIdx.Load(),
		StarvedSeconds:  time.Duration(p.starvedNanos.Load()).Seconds(),
		OccupancySum:    p.occSum.Load(),
		OccupancyCap:    p.opt.PrefetchDepth,
		NextCalls:       p.nextCalls.Load(),
	}
	if first := p.firstNext.Load(); first != 0 {
		m.WallSeconds = time.Duration(p.lastNext.Load() - first).Seconds()
	}
	return m
}

// ResetMeters zeroes the pipeline's own meters, excluding warm-up (ring
// fill, first shard reads) from a subsequent measurement window.
//
// Deprecated: prefer Registry().Reset(), which opens a fresh window
// across every subsystem sharing the registry at once. ResetMeters only
// touches the "ingest/…" instruments.
func (p *Pipeline) ResetMeters() {
	p.bytesRead.Reset()
	p.readNanos.Reset()
	p.decodeNanos.Reset()
	p.examplesDecoded.Reset()
	p.batchesOut.Reset()
	p.totalIdx.Reset()
	p.uniqueIdx.Reset()
	p.starvedNanos.Reset()
	p.occSum.Reset()
	p.nextCalls.Reset()
	p.firstNext.Set(0)
	p.lastNext.Set(0)
}

// Close stops every stage goroutine and waits for them to exit. The
// dataset handle is the caller's to close.
func (p *Pipeline) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.wg.Wait()
}

// Package xrand provides deterministic, seedable random number generation
// helpers shared across the simulator and the training stack.
//
// Every stochastic component in this repository (data synthesis, Hogwild
// workers, discrete-event jitter, fleet sampling) draws from an explicitly
// seeded xrand.RNG so that experiments are reproducible run to run.
package xrand

import (
	"math"
	"math/rand"
)

// RNG is a convenience wrapper around math/rand.Rand with distribution
// helpers used by the workload generators. It is NOT safe for concurrent
// use; create one RNG per goroutine (see Split).
type RNG struct {
	r *rand.Rand
	// cached second normal variate from Box-Muller
	normCached bool
	normValue  float64
}

// New returns a deterministic RNG seeded with seed.
func New(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives a new independent RNG from this one. The derived stream is
// a deterministic function of the parent's current state, so a parent
// seeded identically always yields the same family of children.
func (g *RNG) Split() *RNG {
	return New(int64(g.r.Uint64()))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Int63 returns a non-negative 63-bit value.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Float32 returns a uniform float32 in [0, 1).
func (g *RNG) Float32() float32 { return g.r.Float32() }

// Norm returns a standard normal variate (Box-Muller, cached pairs).
func (g *RNG) Norm() float64 {
	if g.normCached {
		g.normCached = false
		return g.normValue
	}
	var u, v, s float64
	for {
		u = 2*g.r.Float64() - 1
		v = 2*g.r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	g.normValue = v * f
	g.normCached = true
	return u * f
}

// NormMS returns a normal variate with the given mean and standard
// deviation.
func (g *RNG) NormMS(mean, std float64) float64 { return mean + std*g.Norm() }

// LogNormal returns exp(N(mu, sigma)). Embedding table hash sizes in
// production are well described by a log-normal spread around the model
// mean (Fig 6 of the paper spans 30 .. 20M with means of a few million).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.NormMS(mu, sigma))
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (g *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp rate must be positive")
	}
	return g.r.ExpFloat64() / rate
}

// Zipf returns a sampler of Zipf-distributed values in [0, imax] with
// exponent s > 1. It wraps math/rand's rejection-inversion implementation.
func (g *RNG) Zipf(s float64, imax uint64) *rand.Zipf {
	return rand.NewZipf(g.r, s, 1, imax)
}

// BoundedZipf samples integers in [1, max] following an approximate Zipf
// law with exponent alpha via a precomputed inverse CDF. Use for small max
// (e.g. per-feature multi-hot lengths truncated at 32).
type BoundedZipf struct {
	cdf []float64
	g   *RNG
}

// NewBoundedZipf builds the sampler. Values range over [1, max].
func NewBoundedZipf(g *RNG, alpha float64, max int) *BoundedZipf {
	if max < 1 {
		panic("xrand: BoundedZipf max must be >= 1")
	}
	cdf := make([]float64, max)
	sum := 0.0
	for k := 1; k <= max; k++ {
		sum += 1 / math.Pow(float64(k), alpha)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &BoundedZipf{cdf: cdf, g: g}
}

// Sample draws one value in [1, len(cdf)].
func (z *BoundedZipf) Sample() int {
	u := z.g.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Mean returns the expected value of the sampler's distribution.
func (z *BoundedZipf) Mean() float64 {
	m := 0.0
	prev := 0.0
	for i, c := range z.cdf {
		m += float64(i+1) * (c - prev)
		prev = c
	}
	return m
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d/100 equal draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not a deterministic function of the parent seed")
		}
	}
}

func TestNormMoments(t *testing.T) {
	g := New(1)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := g.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormMS(t *testing.T) {
	g := New(2)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.NormMS(5, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-5) > 0.05 {
		t.Errorf("NormMS mean = %v, want ~5", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := New(3)
	for i := 0; i < 10000; i++ {
		if v := g.LogNormal(2, 1.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := New(4)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(4)
	}
	if mean := sum / float64(n); math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exp(4) mean = %v, want ~0.25", mean)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive rate")
		}
	}()
	New(5).Exp(0)
}

func TestBoundedZipfRange(t *testing.T) {
	g := New(6)
	z := NewBoundedZipf(g, 1.2, 32)
	counts := make([]int, 33)
	for i := 0; i < 50000; i++ {
		v := z.Sample()
		if v < 1 || v > 32 {
			t.Fatalf("sample %d out of [1,32]", v)
		}
		counts[v]++
	}
	// Zipf must be monotone decreasing-ish: rank 1 most common.
	if counts[1] <= counts[2] || counts[1] <= counts[10] {
		t.Errorf("expected rank-1 dominance, counts[1]=%d counts[2]=%d counts[10]=%d",
			counts[1], counts[2], counts[10])
	}
}

func TestBoundedZipfMeanMatchesEmpirical(t *testing.T) {
	g := New(7)
	z := NewBoundedZipf(g, 1.1, 32)
	want := z.Mean()
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(z.Sample())
	}
	got := sum / float64(n)
	if math.Abs(got-want) > 0.1 {
		t.Errorf("empirical mean %v, analytic mean %v", got, want)
	}
}

func TestBoundedZipfPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for max < 1")
		}
	}()
	NewBoundedZipf(New(8), 1.1, 0)
}

func TestZipfSkew(t *testing.T) {
	g := New(9)
	z := g.Zipf(1.5, 1000000)
	small := 0
	for i := 0; i < 10000; i++ {
		if z.Uint64() < 10 {
			small++
		}
	}
	if small < 5000 {
		t.Errorf("Zipf(1.5) should concentrate on small values; got %d/10000 below 10", small)
	}
}

func TestFloat32Range(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		for i := 0; i < 100; i++ {
			v := g.Float32()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g := New(seed)
		p := g.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

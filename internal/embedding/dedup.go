package embedding

import "repro/internal/tensor"

// DedupIndex is the RecD-style within-batch unique-row view of a Bag.
// Production sparse traffic repeats rows heavily inside one mini-batch
// (the Zipf skew of §III-A2); RecD (Zhao et al.) exploits that by looking
// each unique row up once and scattering through an inverse index. Build
// extracts the view from a Bag:
//
//	Bag.Indices[k] == Unique[Remap[k]]   for every k
//
// with Unique in first-occurrence order. Dedup kernels that consume the
// view (BagForwardDedup, BagBackwardDedup) are bit-identical to their
// plain counterparts — the dedup changes memory traffic, not math — and
// first-occurrence order keeps SparseGrad's first-touch iteration, and
// therefore optimizer application order, unchanged.
//
// A DedupIndex is reusable: Build retains the map and slices across
// batches, so steady-state rebuilds are allocation-free once capacities
// stabilize. It is not safe for concurrent Build calls.
type DedupIndex struct {
	Unique []int32 // unique row ids, first-occurrence order
	Remap  []int32 // len(Bag.Indices); position of each index in Unique

	seen map[int32]int32 // row id -> position in Unique
}

// Build fills the view from the bag, reusing all internal storage.
func (d *DedupIndex) Build(bag Bag) {
	if d.seen == nil {
		d.seen = make(map[int32]int32)
	} else {
		clear(d.seen)
	}
	d.Unique = d.Unique[:0]
	d.Remap = d.Remap[:0]
	for _, ix := range bag.Indices {
		u, ok := d.seen[ix]
		if !ok {
			u = int32(len(d.Unique))
			d.seen[ix] = u
			d.Unique = append(d.Unique, ix)
		}
		d.Remap = append(d.Remap, u)
	}
}

// Built reports whether the view holds a batch (an empty bag still counts
// as built after Build; a zero DedupIndex does not).
func (d *DedupIndex) Built() bool { return d.seen != nil }

// Ratio returns total lookups / unique lookups, the RecD dedup win. An
// all-unique batch yields exactly 1.
func (d *DedupIndex) Ratio() float64 {
	if len(d.Unique) == 0 {
		return 1
	}
	return float64(len(d.Remap)) / float64(len(d.Unique))
}

// ensureSlab grows (without shrinking) a float32 slab to n elements.
func ensureSlab(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// BagForwardDedup is the dedup counterpart of BagForwardInto: it gathers
// each unique row once from the table into the scratch's staging slab,
// then sum-pools every example from the compact staging copy. The pooled
// result is bit-identical to BagForwardInto (same rows added in the same
// order); the table is touched len(Unique) times instead of
// len(Indices), which is what the lookup counter charges — the counter
// meters physical row reads, and fewer of them is the point.
func (t *Table) BagForwardDedup(bag Bag, d *DedupIndex, out *tensor.Matrix, sc *Scratch) {
	if out.Rows != bag.Batch() || out.Cols != t.Dim {
		panic("embedding: dedup forward output shape mismatch")
	}
	dim := t.Dim
	sc.gather = ensureSlab(sc.gather, len(d.Unique)*dim)
	if t.DType == tensor.FP32 {
		for u, ix := range d.Unique {
			copy(sc.gather[u*dim:(u+1)*dim], t.Weights.Row(int(ix)))
		}
	} else {
		// Decode each unique reduced-precision row once; pooling below
		// then adds the same decoded values the plain kernel's fused
		// adds produce, keeping the two paths bit-identical.
		for u, ix := range d.Unique {
			tensor.Decode(t.DType, sc.gather[u*dim:(u+1)*dim], t.halfRow(int(ix)))
		}
	}
	for i := 0; i < bag.Batch(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = 0
		}
		rm := d.Remap[bag.Offsets[i]:bag.Offsets[i+1]]
		k := 0
		for ; k+2 <= len(rm); k += 2 {
			a := int(rm[k]) * dim
			b := int(rm[k+1]) * dim
			tensor.AddTo2(row, sc.gather[a:a+dim], sc.gather[b:b+dim])
		}
		if k < len(rm) {
			a := int(rm[k]) * dim
			tensor.AddTo(row, sc.gather[a:a+dim])
		}
	}
	t.lookups.add(sc.stripe, uint64(len(d.Unique)))
}

// BagBackwardDedup is the dedup counterpart of BagBackward: per-example
// pooled-output gradients accumulate densely into a unique-row slab
// (indexed by Remap — no per-occurrence map probes), then each unique row
// folds once into acc. Accumulation visits occurrences in exactly the
// plain kernel's order and unique rows in first-occurrence order, so the
// resulting SparseGrad — values and first-touch key order — is
// bit-identical to BagBackward's.
func (t *Table) BagBackwardDedup(bag Bag, d *DedupIndex, dOut *tensor.Matrix, acc *SparseGrad, sc *Scratch) {
	if dOut.Rows != bag.Batch() || dOut.Cols != t.Dim {
		panic("embedding: dedup backward grad shape mismatch")
	}
	dim := t.Dim
	n := len(d.Unique) * dim
	sc.gaccum = ensureSlab(sc.gaccum, n)
	clear(sc.gaccum[:n])
	for i := 0; i < bag.Batch(); i++ {
		g := dOut.Row(i)
		for _, u := range d.Remap[bag.Offsets[i]:bag.Offsets[i+1]] {
			tensor.AddTo(sc.gaccum[int(u)*dim:(int(u)+1)*dim], g)
		}
	}
	for u, ix := range d.Unique {
		acc.Add(ix, sc.gaccum[u*dim:(u+1)*dim])
	}
}

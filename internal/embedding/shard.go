package embedding

import (
	"fmt"
	"sort"
)

// TableStat summarizes a table for partitioning decisions without needing
// the weights themselves: its storage size and its access intensity
// (mean pooled lookups per example, Fig 6/7 of the paper).
type TableStat struct {
	Index      int     // position in the model's table list
	Bytes      int64   // fp32 storage footprint
	MeanPooled float64 // mean lookups per example for this feature
}

// Assignment maps table index -> shard/device index.
type Assignment map[int]int

// ShardLoad reports the per-shard totals produced by an assignment.
type ShardLoad struct {
	Bytes   []int64   // storage per shard
	Lookups []float64 // mean lookups/example per shard
}

// TableWiseGreedy assigns whole tables to n shards, balancing a combined
// load metric. The paper notes (§III-A2) that access frequency does not
// correlate with table size, so balancing on bytes alone creates lookup
// hot spots; the weight parameter interpolates between balancing bytes
// (weight=0) and balancing lookups (weight=1).
func TableWiseGreedy(stats []TableStat, n int, weight float64) (Assignment, ShardLoad) {
	if n <= 0 {
		panic("embedding: shard count must be positive")
	}
	// Normalizers so bytes and lookups are comparable.
	var totB int64
	var totL float64
	for _, s := range stats {
		totB += s.Bytes
		totL += s.MeanPooled
	}
	if totB == 0 {
		totB = 1
	}
	if totL == 0 {
		totL = 1
	}
	cost := func(s TableStat) float64 {
		return (1-weight)*float64(s.Bytes)/float64(totB) + weight*s.MeanPooled/totL
	}
	order := make([]int, len(stats))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cost(stats[order[a]]) > cost(stats[order[b]]) })

	asg := make(Assignment, len(stats))
	load := ShardLoad{Bytes: make([]int64, n), Lookups: make([]float64, n)}
	shardCost := make([]float64, n)
	for _, oi := range order {
		s := stats[oi]
		best := 0
		for j := 1; j < n; j++ {
			if shardCost[j] < shardCost[best] {
				best = j
			}
		}
		asg[s.Index] = best
		shardCost[best] += cost(s)
		load.Bytes[best] += s.Bytes
		load.Lookups[best] += s.MeanPooled
	}
	return asg, load
}

// RowWiseSplit divides a single table's rows evenly across n shards and
// returns the [start, end) row range owned by shard i. Row-wise
// partitioning spreads both capacity and lookups of one hot table.
func RowWiseSplit(hashSize, n, i int) (start, end int) {
	if n <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("embedding: bad row-wise split (%d shards, shard %d)", n, i))
	}
	per := hashSize / n
	rem := hashSize % n
	start = i*per + min(i, rem)
	end = start + per
	if i < rem {
		end++
	}
	return start, end
}

// MaxOverMean returns the imbalance factor (max shard load / mean shard
// load) for the given per-shard loads; 1.0 is perfectly balanced.
func MaxOverMean(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var sum, max float64
	for _, v := range loads {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(loads)))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

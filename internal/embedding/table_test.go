package embedding

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func TestNewTableInit(t *testing.T) {
	rng := xrand.New(1)
	tab := NewTable("t", 100, 16, rng)
	bound := float32(1.0 / math.Sqrt(16))
	nonzero := false
	for _, v := range tab.Weights.Data {
		if v < -bound || v > bound {
			t.Fatalf("init value %v outside ±%v", v, bound)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("all-zero init")
	}
	if tab.Bytes() != 100*16*4 {
		t.Errorf("Bytes = %d", tab.Bytes())
	}
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("bad", 0, 8, xrand.New(1))
}

func TestHashIndexInRangeAndDeterministic(t *testing.T) {
	tab := NewTable("t", 997, 8, xrand.New(2))
	f := func(id uint64) bool {
		ix := tab.HashIndex(id)
		return ix >= 0 && int(ix) < 997 && ix == tab.HashIndex(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashIndexSpread(t *testing.T) {
	tab := NewTable("t", 64, 8, xrand.New(3))
	seen := map[int32]bool{}
	for id := uint64(0); id < 1000; id++ {
		seen[tab.HashIndex(id)] = true
	}
	if len(seen) < 48 {
		t.Errorf("hash uses only %d/64 buckets over 1000 ids", len(seen))
	}
}

func TestBagConstructionAndValidate(t *testing.T) {
	bag := NewBag([][]int32{{1, 2}, {}, {3}})
	if bag.Batch() != 3 {
		t.Errorf("Batch = %d", bag.Batch())
	}
	if bag.TotalLookups() != 3 {
		t.Errorf("TotalLookups = %d", bag.TotalLookups())
	}
	if err := bag.Validate(10); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := bag.Validate(3); err == nil {
		t.Error("Validate should reject out-of-range index 3")
	}
	bad := Bag{Indices: []int32{1}, Offsets: []int32{0, 2}}
	if err := bad.Validate(10); err == nil {
		t.Error("Validate should reject inconsistent final offset")
	}
}

func TestForwardSumPooling(t *testing.T) {
	rng := xrand.New(4)
	tab := NewTable("t", 10, 4, rng)
	bag := NewBag([][]int32{{0, 1}, {2}, {}})
	out := tensor.New(3, 4)
	tab.Forward(bag, out)
	for j := 0; j < 4; j++ {
		want := tab.Weights.At(0, j) + tab.Weights.At(1, j)
		if math.Abs(float64(out.At(0, j)-want)) > 1e-6 {
			t.Errorf("pooled[0][%d] = %v, want %v", j, out.At(0, j), want)
		}
		if out.At(1, j) != tab.Weights.At(2, j) {
			t.Errorf("pooled[1][%d] mismatch", j)
		}
		if out.At(2, j) != 0 {
			t.Errorf("empty bag should pool to zero, got %v", out.At(2, j))
		}
	}
	if tab.Lookups() != 3 {
		t.Errorf("Lookups = %d, want 3", tab.Lookups())
	}
	tab.ResetLookups()
	if tab.Lookups() != 0 {
		t.Error("ResetLookups failed")
	}
}

func TestForwardPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab := NewTable("t", 10, 4, xrand.New(5))
	tab.Forward(NewBag([][]int32{{1}}), tensor.New(2, 4))
}

func TestBackwardScatter(t *testing.T) {
	tab := NewTable("t", 10, 2, xrand.New(6))
	bag := NewBag([][]int32{{0, 1}, {1}})
	dOut := tensor.FromData(2, 2, []float32{1, 2, 10, 20})
	sg := NewSparseGrad(2)
	tab.Backward(bag, dOut, sg)
	if sg.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", sg.NumRows())
	}
	// Row 0 only from example 0: [1,2]. Row 1 from both: [11,22].
	if g := sg.Rows[0]; g[0] != 1 || g[1] != 2 {
		t.Errorf("row0 grad = %v", g)
	}
	if g := sg.Rows[1]; g[0] != 11 || g[1] != 22 {
		t.Errorf("row1 grad = %v", g)
	}
	sg.Reset()
	if sg.NumRows() != 0 {
		t.Error("Reset failed")
	}
}

// TestForwardBackwardGradCheck validates the pooled-lookup gradient via a
// finite-difference probe on a scalar objective sum(out * c).
func TestForwardBackwardGradCheck(t *testing.T) {
	rng := xrand.New(7)
	tab := NewTable("t", 6, 3, rng)
	bag := NewBag([][]int32{{0, 2, 2}, {1}})
	c := tensor.FromData(2, 3, []float32{0.5, -1, 2, 1, 1, -0.5})

	objective := func() float64 {
		out := tensor.New(2, 3)
		tab.Forward(bag, out)
		var s float64
		for i, v := range out.Data {
			s += float64(v) * float64(c.Data[i])
		}
		return s
	}
	sg := NewSparseGrad(3)
	tab.Backward(bag, c, sg)

	// Probe a few weights.
	for _, probe := range []struct{ row, col int }{{0, 0}, {2, 1}, {1, 2}, {5, 0}} {
		i := probe.row*3 + probe.col
		orig := tab.Weights.Data[i]
		const eps = 1e-2
		tab.Weights.Data[i] = orig + eps
		fp := objective()
		tab.Weights.Data[i] = orig - eps
		fm := objective()
		tab.Weights.Data[i] = orig
		numeric := (fp - fm) / (2 * eps)
		var analytic float64
		if g, ok := sg.Rows[int32(probe.row)]; ok {
			analytic = float64(g[probe.col])
		}
		if math.Abs(numeric-analytic) > 1e-3 {
			t.Errorf("weight (%d,%d): numeric %v vs analytic %v", probe.row, probe.col, numeric, analytic)
		}
	}
}

func TestDuplicateIndexPooling(t *testing.T) {
	// An index appearing twice in one example must be added twice and
	// receive twice the gradient.
	tab := NewTable("t", 4, 1, xrand.New(8))
	tab.Weights.Set(3, 0, 5)
	bag := NewBag([][]int32{{3, 3}})
	out := tensor.New(1, 1)
	tab.Forward(bag, out)
	if out.At(0, 0) != 10 {
		t.Errorf("duplicate pooling = %v, want 10", out.At(0, 0))
	}
	sg := NewSparseGrad(1)
	tab.Backward(bag, tensor.FromData(1, 1, []float32{1}), sg)
	if sg.Rows[3][0] != 2 {
		t.Errorf("duplicate grad = %v, want 2", sg.Rows[3][0])
	}
}

package embedding

import (
	"hash/fnv"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func TestNewTableInit(t *testing.T) {
	rng := xrand.New(1)
	tab := NewTable("t", 100, 16, rng)
	bound := float32(1.0 / math.Sqrt(16))
	nonzero := false
	for _, v := range tab.Weights.Data {
		if v < -bound || v > bound {
			t.Fatalf("init value %v outside ±%v", v, bound)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("all-zero init")
	}
	if tab.Bytes() != 100*16*4 {
		t.Errorf("Bytes = %d", tab.Bytes())
	}
}

func TestNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("bad", 0, 8, xrand.New(1))
}

func TestHashIndexInRangeAndDeterministic(t *testing.T) {
	tab := NewTable("t", 997, 8, xrand.New(2))
	f := func(id uint64) bool {
		ix := tab.HashIndex(id)
		return ix >= 0 && int(ix) < 997 && ix == tab.HashIndex(id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHashIndexMatchesStdlibFNV pins the inlined FNV-1a to the previous
// implementation (hash/fnv over the 8 little-endian bytes of the raw ID):
// any divergence would silently remap every trained embedding row.
func TestHashIndexMatchesStdlibFNV(t *testing.T) {
	ref := func(hashSize int, rawID uint64) int32 {
		h := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(rawID >> (8 * i))
		}
		h.Write(buf[:])
		return int32(h.Sum64() % uint64(hashSize))
	}
	for _, hashSize := range []int{1, 2, 997, 100000, 1 << 20} {
		tab := NewTable("t", hashSize, 4, xrand.New(11))
		for _, id := range []uint64{0, 1, 2, 255, 256, 65535, 1 << 31, 1<<63 - 1, ^uint64(0)} {
			if got, want := tab.HashIndex(id), ref(hashSize, id); got != want {
				t.Fatalf("HashIndex(%d) with hashSize %d = %d, want %d (stdlib fnv)",
					id, hashSize, got, want)
			}
		}
		f := func(id uint64) bool { return tab.HashIndex(id) == ref(hashSize, id) }
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("hashSize %d: %v", hashSize, err)
		}
	}
}

// TestHashIndexNoAllocs guards the satellite fix: the per-lookup
// hash.Hash64 heap allocation is gone.
func TestHashIndexNoAllocs(t *testing.T) {
	tab := NewTable("t", 997, 4, xrand.New(12))
	var sink int32
	if avg := testing.AllocsPerRun(100, func() { sink = tab.HashIndex(123456789) }); avg != 0 {
		t.Errorf("HashIndex allocates %.1f objects per call, want 0", avg)
	}
	_ = sink
}

func TestHashIndexSpread(t *testing.T) {
	tab := NewTable("t", 64, 8, xrand.New(3))
	seen := map[int32]bool{}
	for id := uint64(0); id < 1000; id++ {
		seen[tab.HashIndex(id)] = true
	}
	if len(seen) < 48 {
		t.Errorf("hash uses only %d/64 buckets over 1000 ids", len(seen))
	}
}

func TestBagConstructionAndValidate(t *testing.T) {
	bag := NewBag([][]int32{{1, 2}, {}, {3}})
	if bag.Batch() != 3 {
		t.Errorf("Batch = %d", bag.Batch())
	}
	if bag.TotalLookups() != 3 {
		t.Errorf("TotalLookups = %d", bag.TotalLookups())
	}
	if err := bag.Validate(10); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := bag.Validate(3); err == nil {
		t.Error("Validate should reject out-of-range index 3")
	}
	bad := Bag{Indices: []int32{1}, Offsets: []int32{0, 2}}
	if err := bad.Validate(10); err == nil {
		t.Error("Validate should reject inconsistent final offset")
	}
}

func TestForwardSumPooling(t *testing.T) {
	rng := xrand.New(4)
	tab := NewTable("t", 10, 4, rng)
	bag := NewBag([][]int32{{0, 1}, {2}, {}})
	out := tensor.New(3, 4)
	tab.Forward(bag, out)
	for j := 0; j < 4; j++ {
		want := tab.Weights.At(0, j) + tab.Weights.At(1, j)
		if math.Abs(float64(out.At(0, j)-want)) > 1e-6 {
			t.Errorf("pooled[0][%d] = %v, want %v", j, out.At(0, j), want)
		}
		if out.At(1, j) != tab.Weights.At(2, j) {
			t.Errorf("pooled[1][%d] mismatch", j)
		}
		if out.At(2, j) != 0 {
			t.Errorf("empty bag should pool to zero, got %v", out.At(2, j))
		}
	}
	if tab.Lookups() != 3 {
		t.Errorf("Lookups = %d, want 3", tab.Lookups())
	}
	tab.ResetLookups()
	if tab.Lookups() != 0 {
		t.Error("ResetLookups failed")
	}
}

func TestForwardPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab := NewTable("t", 10, 4, xrand.New(5))
	tab.Forward(NewBag([][]int32{{1}}), tensor.New(2, 4))
}

func TestBackwardScatter(t *testing.T) {
	tab := NewTable("t", 10, 2, xrand.New(6))
	bag := NewBag([][]int32{{0, 1}, {1}})
	dOut := tensor.FromData(2, 2, []float32{1, 2, 10, 20})
	sg := NewSparseGrad(2)
	tab.Backward(bag, dOut, sg)
	if sg.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", sg.NumRows())
	}
	// Row 0 only from example 0: [1,2]. Row 1 from both: [11,22].
	if g, ok := sg.Row(0); !ok || g[0] != 1 || g[1] != 2 {
		t.Errorf("row0 grad = %v (present %v)", g, ok)
	}
	if g, ok := sg.Row(1); !ok || g[0] != 11 || g[1] != 22 {
		t.Errorf("row1 grad = %v (present %v)", g, ok)
	}
	sg.Reset()
	if sg.NumRows() != 0 {
		t.Error("Reset failed")
	}
}

// TestSparseGradReuseIsAllocFree exercises the slab accumulator's
// steady-state contract: Reset retains storage, so a second identical
// accumulation pass allocates nothing.
func TestSparseGradReuseIsAllocFree(t *testing.T) {
	tab := NewTable("t", 50, 4, xrand.New(9))
	bag := NewBag([][]int32{{0, 7, 7}, {13}, {0, 21}})
	dOut := tensor.New(3, 4)
	tensor.NormalInit(dOut, 1, xrand.New(10))
	sg := NewSparseGrad(4)
	tab.Backward(bag, dOut, sg) // warm the slab and slot map
	if avg := testing.AllocsPerRun(20, func() {
		sg.Reset()
		tab.BagBackward(bag, dOut, sg)
	}); avg != 0 {
		t.Errorf("steady-state BagBackward allocates %.1f objects per pass, want 0", avg)
	}
	// ForEach visits rows in first-touch order with the right values.
	var ids []int32
	sg.ForEach(func(ix int32, g []float32) { ids = append(ids, ix) })
	if len(ids) != 4 || ids[0] != 0 || ids[1] != 7 || ids[2] != 13 || ids[3] != 21 {
		t.Errorf("ForEach order = %v, want [0 7 13 21]", ids)
	}
	if g, ok := sg.Row(7); !ok || math.Abs(float64(g[0]-2*dOut.At(0, 0))) > 1e-6 {
		t.Errorf("row 7 grad = %v, want duplicate-weighted %v", g, 2*dOut.At(0, 0))
	}
}

// TestStripedLookupCounter checks that scratch-striped counting aggregates
// across stripes.
func TestStripedLookupCounter(t *testing.T) {
	tab := NewTable("t", 10, 2, xrand.New(13))
	bag := NewBag([][]int32{{0, 1, 2}})
	out := tensor.New(1, 2)
	scratches := []*Scratch{NewScratch(), NewScratch(), NewScratch()}
	for _, sc := range scratches {
		tab.BagForwardInto(bag, out, sc)
	}
	tab.Forward(bag, out) // stripe 0 path
	if got := tab.Lookups(); got != 12 {
		t.Errorf("Lookups = %d, want 12 across stripes", got)
	}
	tab.ResetLookups()
	if tab.Lookups() != 0 {
		t.Error("ResetLookups failed")
	}
}

// TestForwardBackwardGradCheck validates the pooled-lookup gradient via a
// finite-difference probe on a scalar objective sum(out * c).
func TestForwardBackwardGradCheck(t *testing.T) {
	rng := xrand.New(7)
	tab := NewTable("t", 6, 3, rng)
	bag := NewBag([][]int32{{0, 2, 2}, {1}})
	c := tensor.FromData(2, 3, []float32{0.5, -1, 2, 1, 1, -0.5})

	objective := func() float64 {
		out := tensor.New(2, 3)
		tab.Forward(bag, out)
		var s float64
		for i, v := range out.Data {
			s += float64(v) * float64(c.Data[i])
		}
		return s
	}
	sg := NewSparseGrad(3)
	tab.Backward(bag, c, sg)

	// Probe a few weights.
	for _, probe := range []struct{ row, col int }{{0, 0}, {2, 1}, {1, 2}, {5, 0}} {
		i := probe.row*3 + probe.col
		orig := tab.Weights.Data[i]
		const eps = 1e-2
		tab.Weights.Data[i] = orig + eps
		fp := objective()
		tab.Weights.Data[i] = orig - eps
		fm := objective()
		tab.Weights.Data[i] = orig
		numeric := (fp - fm) / (2 * eps)
		var analytic float64
		if g, ok := sg.Row(int32(probe.row)); ok {
			analytic = float64(g[probe.col])
		}
		if math.Abs(numeric-analytic) > 1e-3 {
			t.Errorf("weight (%d,%d): numeric %v vs analytic %v", probe.row, probe.col, numeric, analytic)
		}
	}
}

func TestDuplicateIndexPooling(t *testing.T) {
	// An index appearing twice in one example must be added twice and
	// receive twice the gradient.
	tab := NewTable("t", 4, 1, xrand.New(8))
	tab.Weights.Set(3, 0, 5)
	bag := NewBag([][]int32{{3, 3}})
	out := tensor.New(1, 1)
	tab.Forward(bag, out)
	if out.At(0, 0) != 10 {
		t.Errorf("duplicate pooling = %v, want 10", out.At(0, 0))
	}
	sg := NewSparseGrad(1)
	tab.Backward(bag, tensor.FromData(1, 1, []float32{1}), sg)
	if g, ok := sg.Row(3); !ok || g[0] != 2 {
		t.Errorf("duplicate grad = %v, want 2", g)
	}
}

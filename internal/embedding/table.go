// Package embedding implements the sparse side of the recommendation
// model: embedding tables accessed through the hashing trick, pooled
// multi-hot (EmbeddingBag) lookups, sparse gradients, and the sharding
// schemes (table-wise, row-wise) used to place tables across devices and
// parameter-server shards.
//
// In the paper (§III-A) each sparse feature owns a table of hashSize × dim
// learned vectors; a training example activates n indices per feature and
// the n vectors are sum-pooled into the feature's dense representation.
package embedding

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// counterStripes is the cell count of the striped lookup counter (power
// of two). Hogwild workers land on distinct stripes via their Scratch, so
// the per-batch counter update stops bouncing one cache line between
// cores.
const counterStripes = 8

// stripedCount is a cache-line-padded striped uint64 counter.
type stripedCount struct {
	cells [counterStripes]struct {
		n atomic.Uint64
		_ [56]byte // pad to one cache line
	}
}

func (c *stripedCount) add(stripe int, n uint64) {
	c.cells[stripe&(counterStripes-1)].n.Add(n)
}

func (c *stripedCount) load() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

func (c *stripedCount) reset() {
	for i := range c.cells {
		c.cells[i].n.Store(0)
	}
}

// Scratch is per-worker state for the batched lookup path. It pins the
// counter stripe a worker updates; stripes are assigned round-robin at
// construction so concurrent Hogwild workers spread across the striped
// counter instead of contending on a single atomic.
type Scratch struct {
	stripe int

	// dedup staging slabs (BagForwardDedup / BagBackwardDedup): the
	// unique-row gather copy and the dense unique-row gradient
	// accumulator. Grown to the largest unique×dim seen, never shrunk.
	gather []float32
	gaccum []float32
}

var scratchSeq atomic.Int64

// NewScratch returns a worker-local scratch with a fresh counter stripe.
func NewScratch() *Scratch {
	return &Scratch{stripe: int(scratchSeq.Add(1))}
}

// Table is one embedding lookup table with hashSize rows of dim floats.
type Table struct {
	Name     string
	HashSize int
	Dim      int
	// Weights is the hashSize×dim parameter matrix. Hogwild workers
	// share it and update it without locks, as in the paper's CPU
	// training stack. With a reduced DType this is the fp32 master
	// copy: optimizer math runs here (split-SGD, Kalamkar et al.) and
	// the lookup path reads the quantized replica below.
	Weights *tensor.Matrix
	// DType is the lookup-path storage precision. FP32 tables read
	// Weights directly; BF16/FP16 tables read half and must SyncRow
	// after every master-row update.
	DType tensor.DType
	// half is the hashSize×dim reduced-precision replica (nil for
	// fp32), kept in sync with Weights by SyncRow/SyncAll.
	half []uint16

	// lookups counts individual row accesses (striped atomics; shared
	// across workers). The trace package uses it for the Fig 6/7 style
	// access-frequency characterization.
	lookups stripedCount
}

// NewTable allocates and initializes an fp32 table. Rows are
// initialized uniformly in ±1/√dim, the conventional DLRM scheme.
func NewTable(name string, hashSize, dim int, rng *xrand.RNG) *Table {
	return NewTableTyped(name, hashSize, dim, tensor.FP32, rng)
}

// NewTableTyped allocates a table whose lookup path stores dt. Reduced
// dtypes allocate the quantized replica alongside the fp32 master and
// seed it from the initial weights.
func NewTableTyped(name string, hashSize, dim int, dt tensor.DType, rng *xrand.RNG) *Table {
	if hashSize <= 0 || dim <= 0 {
		panic(fmt.Sprintf("embedding: invalid table %s size %dx%d", name, hashSize, dim))
	}
	t := &Table{
		Name:     name,
		HashSize: hashSize,
		Dim:      dim,
		DType:    dt,
		Weights:  tensor.New(hashSize, dim),
	}
	bound := float32(1.0 / math.Sqrt(float64(dim)))
	tensor.UniformInit(t.Weights, bound, rng)
	if dt != tensor.FP32 {
		t.half = make([]uint16, hashSize*dim)
		t.SyncAll()
	}
	return t
}

// Clone deep-copies the table (master weights, reduced replica, dtype).
// The lookup counter starts fresh.
func (t *Table) Clone() *Table {
	c := &Table{
		Name:     t.Name,
		HashSize: t.HashSize,
		Dim:      t.Dim,
		DType:    t.DType,
		Weights:  t.Weights.Clone(),
	}
	if t.half != nil {
		c.half = make([]uint16, len(t.half))
		copy(c.half, t.half)
	}
	return c
}

// halfRow returns row ix of the reduced-precision replica.
func (t *Table) halfRow(ix int) []uint16 {
	return t.half[ix*t.Dim : (ix+1)*t.Dim]
}

// SyncRow re-quantizes row ix of the fp32 master into the reduced
// replica. Split-SGD: optimizers update the master and call this for
// every touched row, so quantization error never accumulates in the
// optimizer state. No-op for fp32 tables.
func (t *Table) SyncRow(ix int) {
	if t.half == nil {
		return
	}
	tensor.Encode(t.DType, t.halfRow(ix), t.Weights.Row(ix))
}

// SyncAll re-quantizes the entire table (bulk weight load, checkpoint
// restore) through the worker pool. No-op for fp32 tables.
func (t *Table) SyncAll() {
	if t.half == nil {
		return
	}
	tensor.ParallelEncode(t.DType, t.half, t.Weights.Data)
}

// FNV-1a 64-bit parameters (offset basis and prime).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashIndex maps an arbitrary categorical ID into [0, HashSize) using
// FNV-1a — the "hashing trick" of §III-A1 that bounds table size at the
// cost of collisions. The hash is computed inline over the eight
// little-endian bytes of rawID (bit-identical to hash/fnv over the same
// bytes) so the per-lookup hash.Hash64 heap allocation is gone.
func (t *Table) HashIndex(rawID uint64) int32 {
	h := uint64(fnvOffset64)
	for i := 0; i < 64; i += 8 {
		h ^= (rawID >> i) & 0xff
		h *= fnvPrime64
	}
	return int32(h % uint64(t.HashSize))
}

// Bytes returns the lookup-path storage footprint in bytes: the bytes
// the serving/forward path actually touches, which is what tier
// placement prices. Reduced-precision tables count the quantized
// replica width (the fp32 master is optimizer state, not lookup
// traffic).
func (t *Table) Bytes() int64 {
	return int64(t.HashSize) * int64(t.Dim) * int64(t.DType.Bytes())
}

// Lookups returns the cumulative number of row accesses served.
func (t *Table) Lookups() uint64 { return t.lookups.load() }

// ResetLookups zeroes the access counter.
func (t *Table) ResetLookups() { t.lookups.reset() }

// Bag is a batch of pooled lookups in offsets/indices form (one sparse
// feature, B examples). Example i activates
// Indices[Offsets[i]:Offsets[i+1]].
type Bag struct {
	Indices []int32
	Offsets []int32 // length B+1; Offsets[0] == 0
}

// NewBag builds a Bag from per-example index lists.
func NewBag(perExample [][]int32) Bag {
	b := Bag{Offsets: make([]int32, 1, len(perExample)+1)}
	for _, idxs := range perExample {
		b.Indices = append(b.Indices, idxs...)
		b.Offsets = append(b.Offsets, int32(len(b.Indices)))
	}
	return b
}

// Batch returns the number of examples in the bag.
func (b Bag) Batch() int { return len(b.Offsets) - 1 }

// TotalLookups returns the number of row accesses the bag requires.
func (b Bag) TotalLookups() int { return len(b.Indices) }

// Validate checks structural invariants and index bounds against a table.
func (b Bag) Validate(hashSize int) error {
	if len(b.Offsets) == 0 || b.Offsets[0] != 0 {
		return fmt.Errorf("embedding: bag offsets must start at 0")
	}
	for i := 1; i < len(b.Offsets); i++ {
		if b.Offsets[i] < b.Offsets[i-1] {
			return fmt.Errorf("embedding: bag offsets not monotone at %d", i)
		}
	}
	if int(b.Offsets[len(b.Offsets)-1]) != len(b.Indices) {
		return fmt.Errorf("embedding: bag final offset %d != len(indices) %d",
			b.Offsets[len(b.Offsets)-1], len(b.Indices))
	}
	for _, ix := range b.Indices {
		if ix < 0 || int(ix) >= hashSize {
			return fmt.Errorf("embedding: index %d out of [0,%d)", ix, hashSize)
		}
	}
	return nil
}

// Forward sum-pools the bag's rows into out (B×dim). out must be
// pre-allocated with Batch() rows. Counter updates land on stripe 0; the
// training hot path uses BagForwardInto with a per-worker Scratch.
func (t *Table) Forward(bag Bag, out *tensor.Matrix) {
	t.bagForward(bag, out, 0)
}

// BagForwardInto is the batched pooled-lookup kernel: it walks the whole
// mini-batch, sum-pooling each example's rows into out (B×dim), and
// charges the lookup counter on the scratch's stripe. out must be
// pre-allocated with Batch() rows; sc must not be nil.
func (t *Table) BagForwardInto(bag Bag, out *tensor.Matrix, sc *Scratch) {
	t.bagForward(bag, out, sc.stripe)
}

func (t *Table) bagForward(bag Bag, out *tensor.Matrix, stripe int) {
	if out.Rows != bag.Batch() || out.Cols != t.Dim {
		panic(fmt.Sprintf("embedding: output shape %dx%d, want %dx%d",
			out.Rows, out.Cols, bag.Batch(), t.Dim))
	}
	for i := 0; i < bag.Batch(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = 0
		}
		idxs := bag.Indices[bag.Offsets[i]:bag.Offsets[i+1]]
		k := 0
		switch t.DType {
		case tensor.BF16:
			for ; k+2 <= len(idxs); k += 2 {
				tensor.AddBF16To2(row, t.halfRow(int(idxs[k])), t.halfRow(int(idxs[k+1])))
			}
			if k < len(idxs) {
				tensor.AddBF16To(row, t.halfRow(int(idxs[k])))
			}
		case tensor.FP16:
			for ; k+2 <= len(idxs); k += 2 {
				tensor.AddFP16To2(row, t.halfRow(int(idxs[k])), t.halfRow(int(idxs[k+1])))
			}
			if k < len(idxs) {
				tensor.AddFP16To(row, t.halfRow(int(idxs[k])))
			}
		default:
			for ; k+2 <= len(idxs); k += 2 {
				tensor.AddTo2(row, t.Weights.Row(int(idxs[k])), t.Weights.Row(int(idxs[k+1])))
			}
			if k < len(idxs) {
				tensor.AddTo(row, t.Weights.Row(int(idxs[k])))
			}
		}
	}
	t.lookups.add(stripe, uint64(bag.TotalLookups()))
}

// SparseGrad accumulates per-row gradients for one table across a batch.
// With sum pooling, the gradient of every activated row in example i is
// the example's pooled-output gradient.
//
// Storage is a flat slab indexed by a row→slot map so that Reset retains
// every buffer: at steady state (Reset + re-accumulate each step) the
// accumulator performs zero allocations. Iteration order (ForEach,
// RowIDs) is first-touch order, which also makes optimizer application
// deterministic.
type SparseGrad struct {
	Dim  int
	slot map[int32]int32 // row id -> slot index
	keys []int32         // slot -> row id, in first-touch order
	buf  []float32       // len(keys)*Dim slab of gradient rows
}

// NewSparseGrad returns an empty accumulator for rows of width dim.
func NewSparseGrad(dim int) *SparseGrad {
	return &SparseGrad{Dim: dim, slot: make(map[int32]int32)}
}

// grabRow returns the slab row for ix, claiming and zeroing a fresh slot
// on first touch.
func (s *SparseGrad) grabRow(ix int32) []float32 {
	if si, ok := s.slot[ix]; ok {
		return s.buf[int(si)*s.Dim : (int(si)+1)*s.Dim]
	}
	si := len(s.keys)
	s.slot[ix] = int32(si)
	s.keys = append(s.keys, ix)
	need := (si + 1) * s.Dim
	if need <= cap(s.buf) {
		s.buf = s.buf[:need]
	} else {
		s.buf = append(s.buf, make([]float32, need-len(s.buf))...)
	}
	row := s.buf[si*s.Dim : need]
	clear(row)
	return row
}

// Add accumulates g into row ix.
func (s *SparseGrad) Add(ix int32, g []float32) {
	tensor.AddTo(s.grabRow(ix), g)
}

// Row returns the accumulated gradient for row ix, if present.
func (s *SparseGrad) Row(ix int32) ([]float32, bool) {
	si, ok := s.slot[ix]
	if !ok {
		return nil, false
	}
	return s.buf[int(si)*s.Dim : (int(si)+1)*s.Dim], true
}

// RowIDs returns the touched row ids in first-touch order. The slice is
// owned by the accumulator and valid until the next Reset.
func (s *SparseGrad) RowIDs() []int32 { return s.keys }

// ForEach visits every touched row in first-touch order.
func (s *SparseGrad) ForEach(fn func(ix int32, g []float32)) {
	for si, ix := range s.keys {
		fn(ix, s.buf[si*s.Dim:(si+1)*s.Dim])
	}
}

// NumRows returns the number of distinct rows touched.
func (s *SparseGrad) NumRows() int { return len(s.keys) }

// Reset clears the accumulator, retaining all allocated storage for
// reuse.
func (s *SparseGrad) Reset() {
	clear(s.slot)
	s.keys = s.keys[:0]
	s.buf = s.buf[:0]
}

// Backward scatters dOut (B×dim) into a SparseGrad for this table.
func (t *Table) Backward(bag Bag, dOut *tensor.Matrix, acc *SparseGrad) {
	t.BagBackward(bag, dOut, acc)
}

// BagBackward is the batched gradient-scatter kernel: it walks the whole
// mini-batch, accumulating each example's pooled-output gradient into the
// rows it activated. Reusing acc across steps (Reset between batches)
// makes the scatter allocation-free at steady state.
func (t *Table) BagBackward(bag Bag, dOut *tensor.Matrix, acc *SparseGrad) {
	if dOut.Rows != bag.Batch() || dOut.Cols != t.Dim {
		panic(fmt.Sprintf("embedding: grad shape %dx%d, want %dx%d",
			dOut.Rows, dOut.Cols, bag.Batch(), t.Dim))
	}
	for i := 0; i < bag.Batch(); i++ {
		g := dOut.Row(i)
		for _, ix := range bag.Indices[bag.Offsets[i]:bag.Offsets[i+1]] {
			acc.Add(ix, g)
		}
	}
}

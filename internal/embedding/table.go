// Package embedding implements the sparse side of the recommendation
// model: embedding tables accessed through the hashing trick, pooled
// multi-hot (EmbeddingBag) lookups, sparse gradients, and the sharding
// schemes (table-wise, row-wise) used to place tables across devices and
// parameter-server shards.
//
// In the paper (§III-A) each sparse feature owns a table of hashSize × dim
// learned vectors; a training example activates n indices per feature and
// the n vectors are sum-pooled into the feature's dense representation.
package embedding

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Table is one embedding lookup table with hashSize rows of dim floats.
type Table struct {
	Name     string
	HashSize int
	Dim      int
	// Weights is the hashSize×dim parameter matrix. Hogwild workers
	// share it and update it without locks, as in the paper's CPU
	// training stack.
	Weights *tensor.Matrix

	// lookups counts individual row accesses (atomic; shared across
	// workers). The trace package uses it for the Fig 6/7 style
	// access-frequency characterization.
	lookups atomic.Uint64
}

// NewTable allocates and initializes a table. Rows are initialized
// uniformly in ±1/√dim, the conventional DLRM scheme.
func NewTable(name string, hashSize, dim int, rng *xrand.RNG) *Table {
	if hashSize <= 0 || dim <= 0 {
		panic(fmt.Sprintf("embedding: invalid table %s size %dx%d", name, hashSize, dim))
	}
	t := &Table{
		Name:     name,
		HashSize: hashSize,
		Dim:      dim,
		Weights:  tensor.New(hashSize, dim),
	}
	bound := float32(1.0 / math.Sqrt(float64(dim)))
	tensor.UniformInit(t.Weights, bound, rng)
	return t
}

// HashIndex maps an arbitrary categorical ID into [0, HashSize) using
// FNV-1a — the "hashing trick" of §III-A1 that bounds table size at the
// cost of collisions.
func (t *Table) HashIndex(rawID uint64) int32 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(rawID >> (8 * i))
	}
	h.Write(buf[:])
	return int32(h.Sum64() % uint64(t.HashSize))
}

// Bytes returns the parameter storage footprint in bytes (fp32).
func (t *Table) Bytes() int64 {
	return int64(t.HashSize) * int64(t.Dim) * 4
}

// Lookups returns the cumulative number of row accesses served.
func (t *Table) Lookups() uint64 { return t.lookups.Load() }

// ResetLookups zeroes the access counter.
func (t *Table) ResetLookups() { t.lookups.Store(0) }

// Bag is a batch of pooled lookups in offsets/indices form (one sparse
// feature, B examples). Example i activates
// Indices[Offsets[i]:Offsets[i+1]].
type Bag struct {
	Indices []int32
	Offsets []int32 // length B+1; Offsets[0] == 0
}

// NewBag builds a Bag from per-example index lists.
func NewBag(perExample [][]int32) Bag {
	b := Bag{Offsets: make([]int32, 1, len(perExample)+1)}
	for _, idxs := range perExample {
		b.Indices = append(b.Indices, idxs...)
		b.Offsets = append(b.Offsets, int32(len(b.Indices)))
	}
	return b
}

// Batch returns the number of examples in the bag.
func (b Bag) Batch() int { return len(b.Offsets) - 1 }

// TotalLookups returns the number of row accesses the bag requires.
func (b Bag) TotalLookups() int { return len(b.Indices) }

// Validate checks structural invariants and index bounds against a table.
func (b Bag) Validate(hashSize int) error {
	if len(b.Offsets) == 0 || b.Offsets[0] != 0 {
		return fmt.Errorf("embedding: bag offsets must start at 0")
	}
	for i := 1; i < len(b.Offsets); i++ {
		if b.Offsets[i] < b.Offsets[i-1] {
			return fmt.Errorf("embedding: bag offsets not monotone at %d", i)
		}
	}
	if int(b.Offsets[len(b.Offsets)-1]) != len(b.Indices) {
		return fmt.Errorf("embedding: bag final offset %d != len(indices) %d",
			b.Offsets[len(b.Offsets)-1], len(b.Indices))
	}
	for _, ix := range b.Indices {
		if ix < 0 || int(ix) >= hashSize {
			return fmt.Errorf("embedding: index %d out of [0,%d)", ix, hashSize)
		}
	}
	return nil
}

// Forward sum-pools the bag's rows into out (B×dim). out must be
// pre-allocated with Batch() rows.
func (t *Table) Forward(bag Bag, out *tensor.Matrix) {
	if out.Rows != bag.Batch() || out.Cols != t.Dim {
		panic(fmt.Sprintf("embedding: output shape %dx%d, want %dx%d",
			out.Rows, out.Cols, bag.Batch(), t.Dim))
	}
	for i := 0; i < bag.Batch(); i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = 0
		}
		for _, ix := range bag.Indices[bag.Offsets[i]:bag.Offsets[i+1]] {
			tensor.AddTo(row, t.Weights.Row(int(ix)))
		}
	}
	t.lookups.Add(uint64(bag.TotalLookups()))
}

// SparseGrad accumulates per-row gradients for one table across a batch.
// With sum pooling, the gradient of every activated row in example i is
// the example's pooled-output gradient.
type SparseGrad struct {
	Dim  int
	Rows map[int32][]float32
}

// NewSparseGrad returns an empty accumulator for rows of width dim.
func NewSparseGrad(dim int) *SparseGrad {
	return &SparseGrad{Dim: dim, Rows: make(map[int32][]float32)}
}

// Add accumulates g into row ix.
func (s *SparseGrad) Add(ix int32, g []float32) {
	row, ok := s.Rows[ix]
	if !ok {
		row = make([]float32, s.Dim)
		s.Rows[ix] = row
	}
	tensor.AddTo(row, g)
}

// NumRows returns the number of distinct rows touched.
func (s *SparseGrad) NumRows() int { return len(s.Rows) }

// Reset clears the accumulator, retaining allocated rows for reuse.
func (s *SparseGrad) Reset() {
	for k := range s.Rows {
		delete(s.Rows, k)
	}
}

// Backward scatters dOut (B×dim) into a SparseGrad for this table.
func (t *Table) Backward(bag Bag, dOut *tensor.Matrix, acc *SparseGrad) {
	if dOut.Rows != bag.Batch() || dOut.Cols != t.Dim {
		panic(fmt.Sprintf("embedding: grad shape %dx%d, want %dx%d",
			dOut.Rows, dOut.Cols, bag.Batch(), t.Dim))
	}
	for i := 0; i < bag.Batch(); i++ {
		g := dOut.Row(i)
		for _, ix := range bag.Indices[bag.Offsets[i]:bag.Offsets[i+1]] {
			acc.Add(ix, g)
		}
	}
}

package embedding

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// skewedBag builds a bag with heavy within-batch repetition.
func skewedBag(rng *xrand.RNG, batch, hashSize, maxLen int) Bag {
	per := make([][]int32, batch)
	zipf := rng.Zipf(1.3, uint64(hashSize-1))
	for i := range per {
		n := 1 + rng.Intn(maxLen)
		for k := 0; k < n; k++ {
			per[i] = append(per[i], int32(zipf.Uint64()))
		}
	}
	return NewBag(per)
}

func TestDedupIndexInvariants(t *testing.T) {
	rng := xrand.New(1)
	bag := skewedBag(rng, 32, 50, 6)
	var d DedupIndex
	if d.Built() {
		t.Fatal("zero DedupIndex reports Built")
	}
	d.Build(bag)
	if !d.Built() {
		t.Fatal("Build did not mark the view built")
	}
	if len(d.Remap) != len(bag.Indices) {
		t.Fatalf("remap length %d != %d indices", len(d.Remap), len(bag.Indices))
	}
	for k, ix := range bag.Indices {
		if d.Unique[d.Remap[k]] != ix {
			t.Fatalf("Unique[Remap[%d]] = %d, want %d", k, d.Unique[d.Remap[k]], ix)
		}
	}
	seen := map[int32]bool{}
	for _, u := range d.Unique {
		if seen[u] {
			t.Fatalf("row %d appears twice in Unique", u)
		}
		seen[u] = true
	}
	// First-occurrence order: walking Indices, each new row must appear
	// in Unique at the next position.
	next := 0
	firstSeen := map[int32]bool{}
	for _, ix := range bag.Indices {
		if !firstSeen[ix] {
			firstSeen[ix] = true
			if d.Unique[next] != ix {
				t.Fatalf("Unique[%d] = %d, want first-occurrence %d", next, d.Unique[next], ix)
			}
			next++
		}
	}
	if r := d.Ratio(); r < 1 {
		t.Fatalf("dedup ratio %v < 1", r)
	}
}

func TestDedupRatioAllUnique(t *testing.T) {
	per := [][]int32{{0, 1, 2}, {3, 4}, {5}}
	var d DedupIndex
	d.Build(NewBag(per))
	if r := d.Ratio(); r != 1.0 {
		t.Fatalf("all-unique ratio %v, want exactly 1.0", r)
	}
}

// TestDedupForwardBitIdentical pins the core RecD guarantee: pooled
// outputs from the dedup kernel are bit-identical to the plain kernel.
func TestDedupForwardBitIdentical(t *testing.T) {
	rng := xrand.New(2)
	tab := NewTable("dedup", 200, 12, rng)
	bag := skewedBag(rng, 48, 200, 8)
	var d DedupIndex
	d.Build(bag)

	plain := tensor.New(48, 12)
	dedup := tensor.New(48, 12)
	sc := NewScratch()
	tab.BagForwardInto(bag, plain, sc)
	tab.BagForwardDedup(bag, &d, dedup, sc)
	for i, v := range plain.Data {
		if dedup.Data[i] != v {
			t.Fatalf("pooled output differs at %d: %v vs %v", i, dedup.Data[i], v)
		}
	}
}

// TestDedupBackwardBitIdentical checks values AND first-touch key order of
// the scattered SparseGrad match the plain kernel, so optimizer
// application is unchanged.
func TestDedupBackwardBitIdentical(t *testing.T) {
	rng := xrand.New(3)
	tab := NewTable("dedup", 150, 8, rng)
	bag := skewedBag(rng, 32, 150, 6)
	var d DedupIndex
	d.Build(bag)

	dOut := tensor.New(32, 8)
	tensor.NormalInit(dOut, 1, rng)
	plain := NewSparseGrad(8)
	dd := NewSparseGrad(8)
	sc := NewScratch()
	tab.BagBackward(bag, dOut, plain)
	tab.BagBackwardDedup(bag, &d, dOut, dd, sc)

	pk, dk := plain.RowIDs(), dd.RowIDs()
	if len(pk) != len(dk) {
		t.Fatalf("touched %d rows, plain touched %d", len(dk), len(pk))
	}
	for i := range pk {
		if pk[i] != dk[i] {
			t.Fatalf("first-touch order differs at %d: %d vs %d", i, dk[i], pk[i])
		}
		pg, _ := plain.Row(pk[i])
		dg, _ := dd.Row(pk[i])
		for j := range pg {
			if pg[j] != dg[j] {
				t.Fatalf("row %d grad differs at %d: %v vs %v", pk[i], j, dg[j], pg[j])
			}
		}
	}
}

// TestDedupLookupCounter checks the counter charges unique reads only.
func TestDedupLookupCounter(t *testing.T) {
	rng := xrand.New(4)
	tab := NewTable("count", 10, 4, rng)
	bag := NewBag([][]int32{{1, 1, 2}, {2, 1}})
	var d DedupIndex
	d.Build(bag)
	out := tensor.New(2, 4)
	sc := NewScratch()
	tab.BagForwardDedup(bag, &d, out, sc)
	if got := tab.Lookups(); got != 2 {
		t.Fatalf("dedup forward charged %d lookups, want 2 unique", got)
	}
}

// TestDedupSteadyStateAllocFree: rebuilding the view and re-running both
// kernels on warmed storage must not allocate.
func TestDedupSteadyStateAllocFree(t *testing.T) {
	rng := xrand.New(5)
	tab := NewTable("alloc", 300, 16, rng)
	bag := skewedBag(rng, 64, 300, 8)
	var d DedupIndex
	out := tensor.New(64, 16)
	dOut := tensor.New(64, 16)
	tensor.NormalInit(dOut, 1, rng)
	sg := NewSparseGrad(16)
	sc := NewScratch()
	for i := 0; i < 3; i++ {
		d.Build(bag)
		tab.BagForwardDedup(bag, &d, out, sc)
		sg.Reset()
		tab.BagBackwardDedup(bag, &d, dOut, sg, sc)
	}
	avg := testing.AllocsPerRun(10, func() {
		d.Build(bag)
		tab.BagForwardDedup(bag, &d, out, sc)
		sg.Reset()
		tab.BagBackwardDedup(bag, &d, dOut, sg, sc)
	})
	if avg != 0 {
		t.Fatalf("steady-state dedup path allocates %.1f objects, want 0", avg)
	}
}

package embedding

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func reducedDTypes() []tensor.DType { return []tensor.DType{tensor.BF16, tensor.FP16} }

func TestTypedTableBytesAndReplica(t *testing.T) {
	rng := xrand.New(1)
	full := NewTable("f", 100, 8, xrand.New(1))
	if got, want := full.Bytes(), int64(100*8*4); got != want {
		t.Fatalf("fp32 Bytes = %d, want %d", got, want)
	}
	for _, dt := range reducedDTypes() {
		tab := NewTableTyped("r", 100, 8, dt, rng)
		if got, want := tab.Bytes(), int64(100*8*2); got != want {
			t.Fatalf("%v Bytes = %d, want %d", dt, got, want)
		}
		// The replica must be the exact quantization of the master.
		for ix := 0; ix < tab.HashSize; ix++ {
			row := tab.Weights.Row(ix)
			for j, u := range tab.halfRow(ix) {
				var want uint16
				if dt == tensor.BF16 {
					want = tensor.F32ToBF16(row[j])
				} else {
					want = tensor.F32ToFP16(row[j])
				}
				if u != want {
					t.Fatalf("%v row %d col %d replica %#04x, want %#04x", dt, ix, j, u, want)
				}
			}
		}
	}
}

func TestTypedForwardReadsQuantizedRows(t *testing.T) {
	for _, dt := range reducedDTypes() {
		tab := NewTableTyped("r", 50, 6, dt, xrand.New(2))
		bag := NewBag([][]int32{{3}, {7, 7}, {1, 2, 3}})
		out := tensor.New(3, 6)
		tab.Forward(bag, out)
		dec := make([]float32, 6)
		want := make([]float32, 6)
		for i, idxs := range [][]int32{{3}, {7, 7}, {1, 2, 3}} {
			clear(want)
			for _, ix := range idxs {
				tensor.Decode(dt, dec, tab.halfRow(int(ix)))
				for j := range want {
					want[j] += dec[j]
				}
			}
			// Same association order as the fused kernels for <=2-row
			// bags; the 3-row bag checks the pair+tail split too.
			got := out.Row(i)
			for j := range want {
				if diff := got[j] - want[j]; diff > 1e-6 || diff < -1e-6 {
					t.Fatalf("%v example %d col %d: got %v want %v", dt, i, j, got[j], want[j])
				}
			}
		}
	}
}

// The dedup kernels must stay bit-identical to the plain kernels on
// reduced-precision tables (both read the same quantized values).
func TestDedupBitIdenticalReducedPrecision(t *testing.T) {
	for _, dt := range reducedDTypes() {
		tab := NewTableTyped("r", 64, 16, dt, xrand.New(3))
		rng := xrand.New(4)
		per := make([][]int32, 32)
		for i := range per {
			n := 1 + int(rng.Uint64()%5)
			for k := 0; k < n; k++ {
				per[i] = append(per[i], int32(rng.Uint64()%64))
			}
		}
		bag := NewBag(per)
		sc := NewScratch()
		plain := tensor.New(32, 16)
		tab.BagForwardInto(bag, plain, sc)
		var d DedupIndex
		d.Build(bag)
		dedup := tensor.New(32, 16)
		tab.BagForwardDedup(bag, &d, dedup, sc)
		for i := range plain.Data {
			if plain.Data[i] != dedup.Data[i] {
				t.Fatalf("%v: plain and dedup forward differ at %d (%v vs %v)",
					dt, i, plain.Data[i], dedup.Data[i])
			}
		}
	}
}

func TestCloneCarriesDType(t *testing.T) {
	tab := NewTableTyped("r", 20, 4, tensor.BF16, xrand.New(5))
	c := tab.Clone()
	if c.DType != tensor.BF16 || c.half == nil {
		t.Fatalf("clone lost the reduced storage (dtype %v, half nil=%v)", c.DType, c.half == nil)
	}
	for i := range tab.half {
		if c.half[i] != tab.half[i] {
			t.Fatalf("clone replica differs at %d", i)
		}
	}
	// Independence: mutating the clone must not touch the original.
	c.Weights.Data[0] += 1
	c.SyncRow(0)
	if c.half[0] == tab.half[0] && c.Weights.Data[0] == tab.Weights.Data[0] {
		t.Fatal("clone aliases the original table")
	}
}

func TestTypedForwardSteadyStateAllocFree(t *testing.T) {
	for _, dt := range reducedDTypes() {
		tab := NewTableTyped("r", 128, 16, dt, xrand.New(6))
		per := make([][]int32, 16)
		for i := range per {
			per[i] = []int32{int32(i), int32(i + 1), int32(i + 2)}
		}
		bag := NewBag(per)
		sc := NewScratch()
		out := tensor.New(16, 16)
		var d DedupIndex
		d.Build(bag)
		tab.BagForwardDedup(bag, &d, out, sc) // warm the slabs
		n := testing.AllocsPerRun(20, func() {
			tab.BagForwardInto(bag, out, sc)
			d.Build(bag)
			tab.BagForwardDedup(bag, &d, out, sc)
			tab.SyncRow(3)
		})
		if n != 0 {
			t.Fatalf("%v steady-state forward allocates %v/op, want 0", dt, n)
		}
	}
}

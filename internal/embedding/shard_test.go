package embedding

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func makeStats(n int, seed int64) []TableStat {
	rng := xrand.New(seed)
	stats := make([]TableStat, n)
	for i := range stats {
		stats[i] = TableStat{
			Index:      i,
			Bytes:      int64(1+rng.Intn(1000)) * 1 << 20,
			MeanPooled: 1 + 30*rng.Float64(),
		}
	}
	return stats
}

func TestTableWiseGreedyCoversAllTables(t *testing.T) {
	stats := makeStats(40, 1)
	asg, load := TableWiseGreedy(stats, 8, 0.5)
	if len(asg) != 40 {
		t.Fatalf("assignment covers %d tables, want 40", len(asg))
	}
	var totB int64
	for _, b := range load.Bytes {
		totB += b
	}
	var wantB int64
	for _, s := range stats {
		wantB += s.Bytes
	}
	if totB != wantB {
		t.Errorf("shard bytes sum %d != total %d", totB, wantB)
	}
	for _, shard := range asg {
		if shard < 0 || shard >= 8 {
			t.Fatalf("shard index %d out of range", shard)
		}
	}
}

func TestTableWiseGreedyBalance(t *testing.T) {
	stats := makeStats(64, 2)
	_, loadB := TableWiseGreedy(stats, 8, 0.0) // balance bytes
	bytesF := make([]float64, 8)
	for i, b := range loadB.Bytes {
		bytesF[i] = float64(b)
	}
	if imb := MaxOverMean(bytesF); imb > 1.3 {
		t.Errorf("byte-balanced greedy imbalance %v > 1.3", imb)
	}
	_, loadL := TableWiseGreedy(stats, 8, 1.0) // balance lookups
	if imb := MaxOverMean(loadL.Lookups); imb > 1.3 {
		t.Errorf("lookup-balanced greedy imbalance %v > 1.3", imb)
	}
}

func TestTableWiseGreedySingleShard(t *testing.T) {
	stats := makeStats(10, 3)
	asg, _ := TableWiseGreedy(stats, 1, 0.5)
	for _, s := range asg {
		if s != 0 {
			t.Fatal("single shard must receive everything")
		}
	}
}

func TestTableWiseGreedyPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TableWiseGreedy(makeStats(3, 4), 0, 0.5)
}

func TestRowWiseSplitPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		hashSize := 1 + rng.Intn(10000)
		n := 1 + rng.Intn(16)
		covered := 0
		prevEnd := 0
		for i := 0; i < n; i++ {
			s, e := RowWiseSplit(hashSize, n, i)
			if s != prevEnd || e < s {
				return false
			}
			covered += e - s
			prevEnd = e
		}
		return covered == hashSize && prevEnd == hashSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRowWiseSplitBalance(t *testing.T) {
	// Shard sizes may differ by at most 1.
	for _, n := range []int{1, 3, 7, 8} {
		minSz, maxSz := 1<<30, 0
		for i := 0; i < n; i++ {
			s, e := RowWiseSplit(100, n, i)
			sz := e - s
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Errorf("n=%d: row-wise sizes range [%d,%d]", n, minSz, maxSz)
		}
	}
}

func TestRowWiseSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RowWiseSplit(100, 4, 4)
}

func TestMaxOverMean(t *testing.T) {
	if v := MaxOverMean([]float64{1, 1, 1, 1}); v != 1 {
		t.Errorf("balanced MaxOverMean = %v", v)
	}
	if v := MaxOverMean([]float64{4, 0, 0, 0}); v != 4 {
		t.Errorf("MaxOverMean = %v, want 4", v)
	}
	if v := MaxOverMean(nil); v != 1 {
		t.Errorf("MaxOverMean(nil) = %v, want 1", v)
	}
	if v := MaxOverMean([]float64{0, 0}); v != 1 {
		t.Errorf("MaxOverMean(zeros) = %v, want 1", v)
	}
}

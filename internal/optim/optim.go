// Package optim implements the optimizers used for recommendation model
// training at Facebook (§III-B6 of the paper): dense SGD and Adagrad for
// the MLP stacks, row-wise sparse Adagrad for embedding tables, the
// Elastic-Averaging SGD (EASGD) coupling between trainers and the dense
// parameter server, and the learning-rate scaling/warmup schedules that
// large-batch training requires (§VI-C).
package optim

import (
	"math"

	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// SGD is plain stochastic gradient descent over a fixed parameter set.
type SGD struct {
	LR     float32
	params []nn.Param
}

// NewSGD binds an SGD optimizer to params.
func NewSGD(params []nn.Param, lr float32) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies p -= lr * grad for every bound parameter. Gradients are
// left untouched; the caller zeroes them between batches.
func (s *SGD) Step() {
	for _, p := range s.params {
		tensor.Axpy(-s.LR, p.Grad, p.Value)
	}
}

// Adagrad is the diagonal AdaGrad optimizer for dense parameters.
type Adagrad struct {
	LR    float32
	Eps   float32
	param []nn.Param
	accum [][]float32
}

// NewAdagrad binds an Adagrad optimizer to params.
func NewAdagrad(params []nn.Param, lr float32) *Adagrad {
	a := &Adagrad{LR: lr, Eps: 1e-8, param: params}
	for _, p := range params {
		a.accum = append(a.accum, make([]float32, len(p.Value)))
	}
	return a
}

// Step applies the AdaGrad update using accumulated squared gradients.
func (a *Adagrad) Step() {
	for pi, p := range a.param {
		acc := a.accum[pi]
		for i, g := range p.Grad {
			acc[i] += g * g
			p.Value[i] -= a.LR * g / (float32(math.Sqrt(float64(acc[i]))) + a.Eps)
		}
	}
}

// Accum exposes the per-parameter squared-gradient accumulators (aligned
// with the bound params). The slices alias live optimizer state: reading
// them snapshots it, writing into them restores it — the checkpoint
// export/import seam of internal/ckpt.
func (a *Adagrad) Accum() [][]float32 { return a.accum }

// SparseSGD applies per-row SGD updates to an embedding table from a
// SparseGrad accumulator.
type SparseSGD struct {
	LR    float32
	Table *embedding.Table
}

// Apply updates only the rows present in sg, in first-touch order. The
// update lands on the fp32 master row; SyncRow then re-quantizes the
// touched row into the table's reduced-precision replica (split-SGD —
// a no-op for fp32 tables).
func (s *SparseSGD) Apply(sg *embedding.SparseGrad) {
	sg.ForEach(func(ix int32, g []float32) {
		tensor.Axpy(-s.LR, g, s.Table.Weights.Row(int(ix)))
		s.Table.SyncRow(int(ix))
	})
}

// RowWiseAdagrad is the memory-efficient sparse AdaGrad variant used for
// production embedding tables: one accumulator scalar per row (the mean
// squared gradient of the row) instead of one per element, cutting
// optimizer state from O(rows*dim) to O(rows).
type RowWiseAdagrad struct {
	LR    float32
	Eps   float32
	Table *embedding.Table
	accum []float32 // one per row, lazily grown
}

// NewRowWiseAdagrad binds the optimizer to a table.
func NewRowWiseAdagrad(table *embedding.Table, lr float32) *RowWiseAdagrad {
	return &RowWiseAdagrad{
		LR:    lr,
		Eps:   1e-8,
		Table: table,
		accum: make([]float32, table.HashSize),
	}
}

// Accum exposes the per-row mean-squared-gradient accumulator (length
// HashSize). The slice aliases live optimizer state; internal/ckpt reads
// it when checkpointing and writes into it on restore.
func (r *RowWiseAdagrad) Accum() []float32 { return r.accum }

// Apply updates the rows present in sg using the row-wise accumulator,
// in first-touch order.
func (r *RowWiseAdagrad) Apply(sg *embedding.SparseGrad) {
	dim := float32(r.Table.Dim)
	sg.ForEach(func(ix int32, g []float32) {
		var sq float32
		for _, v := range g {
			sq += v * v
		}
		r.accum[ix] += sq / dim
		scale := -r.LR / (float32(math.Sqrt(float64(r.accum[ix]))) + r.Eps)
		tensor.Axpy(scale, g, r.Table.Weights.Row(int(ix)))
		// Split-SGD: accumulator and master stay fp32; only the lookup
		// replica is re-quantized (no-op for fp32 tables).
		r.Table.SyncRow(int(ix))
	})
}

// EASGDSync performs one elastic-averaging exchange between a worker
// parameter vector and the center (dense parameter server) copy
// (Zhang, Choromanska, LeCun 2015). Both sides move toward each other by
// alpha times their difference:
//
//	delta = alpha * (worker - center)
//	worker -= delta
//	center += delta
//
// In the paper's pipeline (Fig 4) every trainer runs this exchange against
// the master dense parameters at a configurable period.
func EASGDSync(worker, center []float32, alpha float32) {
	if len(worker) != len(center) {
		panic("optim: EASGD length mismatch")
	}
	for i := range worker {
		delta := alpha * (worker[i] - center[i])
		worker[i] -= delta
		center[i] += delta
	}
}

// EASGDSyncParams runs EASGDSync across aligned parameter lists.
func EASGDSyncParams(worker, center []nn.Param, alpha float32) {
	if len(worker) != len(center) {
		panic("optim: EASGD param-count mismatch")
	}
	for i := range worker {
		EASGDSync(worker[i].Value, center[i].Value, alpha)
	}
}

// LinearScaledLR implements the linear batch-size scaling rule of Goyal
// et al.: when the batch grows by k, grow the learning rate by k. The
// paper's Fig 15 applies exactly this "manual tuning" before measuring
// the residual accuracy gap.
func LinearScaledLR(baseLR float64, baseBatch, batch int) float64 {
	if baseBatch <= 0 {
		panic("optim: baseBatch must be positive")
	}
	return baseLR * float64(batch) / float64(baseBatch)
}

// SqrtScaledLR is the gentler square-root scaling alternative.
func SqrtScaledLR(baseLR float64, baseBatch, batch int) float64 {
	if baseBatch <= 0 {
		panic("optim: baseBatch must be positive")
	}
	return baseLR * math.Sqrt(float64(batch)/float64(baseBatch))
}

// WarmupSchedule ramps the learning rate linearly from zero over
// WarmupIters iterations, then holds it at Base. Warmup iterations are one
// of the hyper-parameters the paper lists as quality-critical (§III).
type WarmupSchedule struct {
	Base        float64
	WarmupIters int
}

// At returns the learning rate for the given 0-based iteration.
func (w WarmupSchedule) At(iter int) float64 {
	if w.WarmupIters <= 0 || iter >= w.WarmupIters {
		return w.Base
	}
	return w.Base * float64(iter+1) / float64(w.WarmupIters)
}

// ClipByGlobalNorm rescales all gradients so their concatenated L2 norm is
// at most maxNorm, returning the pre-clip norm.
func ClipByGlobalNorm(params []nn.Param, maxNorm float32) float32 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += float64(g) * float64(g)
		}
	}
	norm := float32(math.Sqrt(sq))
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			tensor.ScaleVec(p.Grad, scale)
		}
	}
	return norm
}

package optim

import (
	"math"
	"testing"

	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// quadratic builds params for f(x) = ||x - target||² with its gradient.
func quadraticGrad(x, target []float32, grad []float32) {
	for i := range x {
		grad[i] = 2 * (x[i] - target[i])
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	x := []float32{5, -3, 2}
	target := []float32{1, 1, 1}
	g := make([]float32, 3)
	p := []nn.Param{{Name: "x", Value: x, Grad: g}}
	opt := NewSGD(p, 0.1)
	for i := 0; i < 200; i++ {
		quadraticGrad(x, target, g)
		opt.Step()
	}
	for i := range x {
		if math.Abs(float64(x[i]-target[i])) > 1e-3 {
			t.Fatalf("x[%d] = %v, want ~%v", i, x[i], target[i])
		}
	}
}

func TestAdagradConvergesOnQuadratic(t *testing.T) {
	x := []float32{5, -3, 2}
	target := []float32{1, 1, 1}
	g := make([]float32, 3)
	p := []nn.Param{{Name: "x", Value: x, Grad: g}}
	opt := NewAdagrad(p, 0.9)
	for i := 0; i < 2000; i++ {
		quadraticGrad(x, target, g)
		opt.Step()
	}
	for i := range x {
		if math.Abs(float64(x[i]-target[i])) > 0.05 {
			t.Fatalf("x[%d] = %v, want ~%v", i, x[i], target[i])
		}
	}
}

func TestSGDZeroGradIsIdentity(t *testing.T) {
	x := []float32{1, 2, 3}
	g := make([]float32, 3)
	opt := NewSGD([]nn.Param{{Value: x, Grad: g}}, 0.5)
	opt.Step()
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Error("zero gradient must not move parameters")
	}
}

func TestAdagradAdaptsStepSize(t *testing.T) {
	// With constant gradient 1, AdaGrad step at iteration k is
	// lr/sqrt(k+1): strictly decreasing.
	x := []float32{0}
	g := []float32{1}
	opt := NewAdagrad([]nn.Param{{Value: x, Grad: g}}, 1.0)
	var prev float32 = math.MaxFloat32
	cur := x[0]
	for i := 0; i < 10; i++ {
		before := cur
		opt.Step()
		cur = x[0]
		step := before - cur
		if step <= 0 {
			t.Fatal("AdaGrad step must be positive for positive grad")
		}
		if step >= prev {
			t.Fatalf("AdaGrad steps must shrink: %v then %v", prev, step)
		}
		prev = step
	}
}

func TestSparseSGDUpdatesOnlyTouchedRows(t *testing.T) {
	rng := xrand.New(1)
	tab := embedding.NewTable("t", 5, 2, rng)
	before := tab.Weights.Clone()
	sg := embedding.NewSparseGrad(2)
	sg.Add(3, []float32{1, -1})
	opt := &SparseSGD{LR: 0.5, Table: tab}
	opt.Apply(sg)
	for r := 0; r < 5; r++ {
		for c := 0; c < 2; c++ {
			got, want := tab.Weights.At(r, c), before.At(r, c)
			if r == 3 {
				delta := float32(0.5)
				if c == 1 {
					delta = -0.5
				}
				if math.Abs(float64(got-(want-delta))) > 1e-6 {
					t.Errorf("row 3 col %d: got %v want %v", c, got, want-delta)
				}
			} else if got != want {
				t.Errorf("untouched row %d changed", r)
			}
		}
	}
}

func TestRowWiseAdagradConverges(t *testing.T) {
	// Drive one embedding row toward a target via repeated sparse grads.
	rng := xrand.New(2)
	tab := embedding.NewTable("t", 4, 3, rng)
	target := []float32{1, 2, 3}
	opt := NewRowWiseAdagrad(tab, 0.5)
	for i := 0; i < 3000; i++ {
		sg := embedding.NewSparseGrad(3)
		row := tab.Weights.Row(2)
		g := make([]float32, 3)
		for j := range g {
			g[j] = 2 * (row[j] - target[j])
		}
		sg.Add(2, g)
		opt.Apply(sg)
	}
	row := tab.Weights.Row(2)
	for j := range target {
		if math.Abs(float64(row[j]-target[j])) > 0.05 {
			t.Fatalf("row[%d] = %v, want ~%v", j, row[j], target[j])
		}
	}
}

func TestEASGDSyncSymmetric(t *testing.T) {
	worker := []float32{10}
	center := []float32{0}
	EASGDSync(worker, center, 0.25)
	// delta = 0.25*10 = 2.5
	if worker[0] != 7.5 || center[0] != 2.5 {
		t.Errorf("after sync worker=%v center=%v", worker[0], center[0])
	}
	// Total "mass" is conserved.
	if worker[0]+center[0] != 10 {
		t.Error("EASGD must conserve worker+center sum")
	}
}

func TestEASGDConvergesWorkersToCenter(t *testing.T) {
	center := []float32{0}
	w1 := []float32{8}
	w2 := []float32{-4}
	for i := 0; i < 100; i++ {
		EASGDSync(w1, center, 0.3)
		EASGDSync(w2, center, 0.3)
	}
	if math.Abs(float64(w1[0]-center[0])) > 0.01 || math.Abs(float64(w2[0]-center[0])) > 0.01 {
		t.Errorf("workers did not converge to center: %v %v %v", w1[0], w2[0], center[0])
	}
	// Consensus should be between initial extremes.
	if center[0] < -4 || center[0] > 8 {
		t.Errorf("center %v escaped the convex hull of workers", center[0])
	}
}

func TestEASGDSyncPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EASGDSync([]float32{1}, []float32{1, 2}, 0.1)
}

func TestLRScalingRules(t *testing.T) {
	if lr := LinearScaledLR(0.1, 200, 1600); math.Abs(lr-0.8) > 1e-12 {
		t.Errorf("linear scaled LR = %v, want 0.8", lr)
	}
	if lr := SqrtScaledLR(0.1, 100, 400); math.Abs(lr-0.2) > 1e-12 {
		t.Errorf("sqrt scaled LR = %v, want 0.2", lr)
	}
}

func TestWarmupSchedule(t *testing.T) {
	w := WarmupSchedule{Base: 1.0, WarmupIters: 10}
	if lr := w.At(0); math.Abs(lr-0.1) > 1e-12 {
		t.Errorf("warmup At(0) = %v, want 0.1", lr)
	}
	if lr := w.At(9); math.Abs(lr-1.0) > 1e-12 {
		t.Errorf("warmup At(9) = %v, want 1.0", lr)
	}
	if lr := w.At(100); lr != 1.0 {
		t.Errorf("post-warmup = %v, want 1.0", lr)
	}
	none := WarmupSchedule{Base: 0.5}
	if lr := none.At(0); lr != 0.5 {
		t.Errorf("no-warmup At(0) = %v, want 0.5", lr)
	}
}

func TestClipByGlobalNorm(t *testing.T) {
	g := []float32{3, 4} // norm 5
	p := []nn.Param{{Value: make([]float32, 2), Grad: g}}
	norm := ClipByGlobalNorm(p, 1)
	if math.Abs(float64(norm)-5) > 1e-5 {
		t.Errorf("pre-clip norm = %v, want 5", norm)
	}
	if n := tensor.L2Norm(g); math.Abs(float64(n)-1) > 1e-5 {
		t.Errorf("post-clip norm = %v, want 1", n)
	}
	// Below the threshold nothing changes.
	g2 := []float32{0.1, 0.1}
	ClipByGlobalNorm([]nn.Param{{Value: make([]float32, 2), Grad: g2}}, 10)
	if g2[0] != 0.1 {
		t.Error("clip must not rescale small gradients")
	}
}

// Package collective implements the communication substrate of the
// synchronous hybrid-parallel trainer (internal/hybrid): an in-process
// communicator over N ranks (goroutines) providing the collectives the
// paper's scale-out analysis is built on — ring all-reduce for the
// data-parallel MLP gradients and all-to-all(v) for the model-parallel
// pooled-embedding exchange — plus all-gather and broadcast.
//
// Ranks rendezvous through a shared slot array and a reusable barrier, so
// payloads move with plain copies under happens-before edges (race-free
// under -race) and every reduction applies contributions in a fixed ring
// order, making results bit-identical across runs regardless of goroutine
// scheduling. Every operation meters the bytes that cross rank
// boundaries and the seconds a pluggable Link (bandwidth + latency, see
// LinkFor) would have charged for them; the meters are what ties the
// analytic collective-volume formulas in internal/perfmodel to observed
// traffic.
package collective

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Op identifies one collective operation kind in the meters.
type Op int

const (
	OpAllReduce Op = iota
	OpAllToAll
	OpAllGather
	OpBroadcast
	numOps
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAllReduce:
		return "allreduce"
	case OpAllToAll:
		return "alltoall"
	case OpAllGather:
		return "allgather"
	case OpBroadcast:
		return "broadcast"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// OpStats is the cumulative meter of one operation kind, summed across
// ranks: Calls counts per-rank invocations, Bytes counts payload bytes
// that crossed a rank boundary (self-destined data is free), and
// ModelSec is the total wire time the communicator's Link would have
// charged (per-rank busy time; divide by the rank count for the
// wall-clock view of a symmetric collective).
type OpStats struct {
	Calls    int64
	Bytes    int64
	ModelSec float64
}

// opMeter is the lock-free accumulator behind OpStats. Since PR 6 the
// instruments live in a telemetry.Registry ("collective/<op>/calls",
// ".../bytes", ".../model_ns"); the pointers are resolved once at world
// construction so the record path stays a few atomic adds.
type opMeter struct {
	calls   *telemetry.Counter
	bytes   *telemetry.Counter
	modelNs *telemetry.Counter
}

func newOpMeter(reg *telemetry.Registry, op Op) opMeter {
	prefix := "collective/" + op.String()
	return opMeter{
		calls:   reg.Counter(prefix + "/calls"),
		bytes:   reg.Counter(prefix + "/bytes"),
		modelNs: reg.Counter(prefix + "/model_ns"),
	}
}

func (c *opMeter) add(bytes int64, modelSec float64) {
	c.calls.Inc()
	c.bytes.Add(bytes)
	c.modelNs.Add(int64(modelSec * 1e9))
}

func (c *opMeter) load() OpStats {
	return OpStats{
		Calls:    c.calls.Load(),
		Bytes:    c.bytes.Load(),
		ModelSec: float64(c.modelNs.Load()) / 1e9,
	}
}

// Totals is an allocation-free snapshot of every operation meter.
type Totals struct {
	AllReduce OpStats
	AllToAll  OpStats
	AllGather OpStats
	Broadcast OpStats
}

// World is a communicator over n ranks sharing one Link and one set of
// meters. Collectives run on Groups (see NewGroup); concurrent
// collectives must use distinct groups.
//
// A world can be armed with a FaultSchedule (SetFaults): collectives
// then check for due faults on entry, and a kill or fail fault aborts
// every group, unblocking all ranks with a RankError. See fault.go.
type World struct {
	n     int
	link  Link
	reg   *telemetry.Registry
	stats [numOps]opMeter
	// rankWait[k] accumulates the nanoseconds rank k spent blocked at
	// collective rendezvous points ("collective/rank<k>/wait_ns"). A
	// straggler arrives at every barrier last, so it waits the least
	// while its peers absorb its lateness — the asymmetry the imbalance
	// detector reads. Synchronous collectives equalize per-rank *span*
	// durations, so this is the only place the skew is visible.
	rankWait []*telemetry.Counter

	mu     sync.Mutex
	groups []*Group
	faults *FaultSchedule
	step   atomic.Int64
}

// NewWorld builds a communicator over n ranks with a private telemetry
// registry (use NewWorldWith to share one).
func NewWorld(n int, link Link) *World {
	return NewWorldWith(n, link, telemetry.NewRegistry())
}

// NewWorldWith builds a communicator whose meters live in the given
// registry, so collective traffic shows up in the process-wide snapshot
// next to ingest and trainer counters. A nil registry meters nothing.
func NewWorldWith(n int, link Link, reg *telemetry.Registry) *World {
	if n <= 0 {
		panic(fmt.Sprintf("collective: world size %d", n))
	}
	w := &World{n: n, link: link, reg: reg, rankWait: make([]*telemetry.Counter, n)}
	for op := Op(0); op < numOps; op++ {
		w.stats[op] = newOpMeter(reg, op)
	}
	for k := 0; k < n; k++ {
		w.rankWait[k] = reg.Counter(fmt.Sprintf("collective/rank%d/wait_ns", k))
	}
	return w
}

// RankWaitNs returns rank k's cumulative rendezvous wait in nanoseconds.
func (w *World) RankWaitNs(k int) int64 { return w.rankWait[k].Load() }

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Link returns the communicator's wire model.
func (w *World) Link() Link { return w.link }

// Registry returns the registry holding this world's meters (nil when
// the world was built meterless).
func (w *World) Registry() *telemetry.Registry { return w.reg }

// Snapshot returns the cumulative meters without allocating.
func (w *World) Snapshot() Totals {
	return Totals{
		AllReduce: w.stats[OpAllReduce].load(),
		AllToAll:  w.stats[OpAllToAll].load(),
		AllGather: w.stats[OpAllGather].load(),
		Broadcast: w.stats[OpBroadcast].load(),
	}
}

// Stats returns the cumulative meters keyed by operation name.
func (w *World) Stats() map[string]OpStats {
	m := make(map[string]OpStats, numOps)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = w.stats[op].load()
	}
	return m
}

// NewGroup mints an independent rendezvous context. Every rank must call
// the same sequence of collectives on a group; two goroutines of the same
// rank may run collectives concurrently as long as they use different
// groups (the hybrid trainer overlaps its dense all-reduce with the
// sparse-gradient all-to-all this way).
func (w *World) NewGroup() *Group {
	g := &Group{
		w:       w,
		bufs:    make([][]float32, w.n),
		vecs:    make([][][]float32, w.n),
		a2aWire: make([][][]byte, w.n),
		arWire:  make([][]byte, w.n),
	}
	g.bar.n = w.n
	g.bar.cond = sync.NewCond(&g.bar.mu)
	w.mu.Lock()
	w.groups = append(w.groups, g)
	w.mu.Unlock()
	return g
}

// barrier is a reusable cyclic barrier over n goroutines. sync.Cond keeps
// the wait allocation-free, which matters for the trainer's steady-state
// zero-allocation budget.
//
// The barrier is abortable: abort stores a sticky error, wakes every
// waiter, and makes all later waits fail fast. That is the mechanism
// that turns one rank's fault into a prompt, clean error on every rank
// instead of a deadlock at the next rendezvous.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
	err   error // sticky abort reason; set once
}

func (b *barrier) wait() error {
	if b.n == 1 {
		// Single-rank fast path: no rendezvous, but still observe abort.
		b.mu.Lock()
		err := b.err
		b.mu.Unlock()
		return err
	}
	b.mu.Lock()
	if b.err != nil {
		err := b.err
		b.mu.Unlock()
		return err
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen && b.err == nil {
			b.cond.Wait()
		}
	}
	err := b.err
	b.mu.Unlock()
	return err
}

// abort poisons the barrier with err (first abort wins) and wakes every
// waiter. All current and future waits return the error.
func (b *barrier) abort(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// error returns the sticky abort reason, or nil.
func (b *barrier) error() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Group is one rendezvous context of a World (see World.NewGroup).
type Group struct {
	w       *World
	bar     barrier
	bufs    [][]float32   // scalar payload slots
	vecs    [][][]float32 // vector payload slots (all-to-all-v)
	unmeter bool          // see MeterWaits

	// compressed wire state (see wire.go): the format, per-rank
	// per-peer all-to-all encode slots, and per-rank all-reduce chunk
	// slots. Scratch grows in place, so steady-state compressed
	// collectives allocate nothing.
	wire    WireFormat
	a2aWire [][][]byte
	arWire  [][]byte
}

// MeterWaits controls whether this group's rendezvous waits feed the
// per-rank wait meters (on by default). Turn it off for groups whose
// collectives run on background goroutines (the hybrid trainer's
// overlapped all-reduce): their waits are hidden under compute, not on
// the rank's critical path, and counting them would misread a balanced
// overlapped run as straggling.
func (g *Group) MeterWaits(on bool) { g.unmeter = !on }

// wait times one barrier rendezvous on behalf of rank, charging the
// blocked nanoseconds to the rank's wait meter (two monotonic clock
// reads; no allocation, so the zero-alloc step budget holds).
func (g *Group) wait(rank int) error {
	if g.unmeter {
		return g.bar.wait()
	}
	start := telemetry.Now()
	err := g.bar.wait()
	g.w.rankWait[rank].Add(telemetry.Now() - start)
	return err
}

// chunkRange returns the [lo, hi) element range of ring chunk k when a
// size-element buffer is split across n ranks. Chunks are contiguous and
// within one element of each other, so no padding bytes are moved and the
// metered volume matches the analytic 2·(n-1)/n·size formula exactly.
func chunkRange(size, n, k int) (int, int) {
	return k * size / n, (k + 1) * size / n
}

// AllReduce sums buf element-wise across all ranks, leaving the identical
// reduced vector in every rank's buf. The implementation is the
// bandwidth-optimal ring: n-1 reduce-scatter steps followed by n-1
// all-gather steps, with contributions applied in fixed ring order so the
// result is bit-identical on every rank and across runs. All ranks must
// pass buffers of equal length.
//
// A non-nil error means the world aborted (injected fault or AbortAll);
// buf contents are then unspecified and the group is poisoned.
func (g *Group) AllReduce(rank int, buf []float32) error {
	if err := g.w.checkFault(rank); err != nil {
		return err
	}
	n := g.w.n
	if n == 1 {
		g.w.stats[OpAllReduce].add(0, 0)
		return nil
	}
	if g.wire != WireFP32 {
		return g.allReduceWire(rank, buf)
	}
	g.bufs[rank] = buf
	if err := g.wait(rank); err != nil {
		return err
	}
	prev := (rank - 1 + n) % n
	src := g.bufs[prev]
	if len(src) != len(buf) {
		panic(fmt.Sprintf("collective: allreduce length mismatch (%d vs %d)", len(buf), len(src)))
	}
	size := len(buf)
	var moved int64
	// Reduce-scatter: at step s, pull chunk (rank-1-s) from the previous
	// rank and accumulate it. After n-1 steps this rank holds the fully
	// reduced chunk (rank+1).
	for s := 0; s < n-1; s++ {
		k := ((rank-1-s)%n + n) % n
		lo, hi := chunkRange(size, n, k)
		dst := buf[lo:hi]
		for i, v := range src[lo:hi] {
			dst[i] += v
		}
		moved += int64(hi-lo) * 4
		if err := g.wait(rank); err != nil {
			return err
		}
	}
	// All-gather: at step s, pull the fully reduced chunk (rank-s) from
	// the previous rank.
	for s := 0; s < n-1; s++ {
		k := ((rank-s)%n + n) % n
		lo, hi := chunkRange(size, n, k)
		copy(buf[lo:hi], src[lo:hi])
		moved += int64(hi-lo) * 4
		if err := g.wait(rank); err != nil {
			return err
		}
	}
	g.w.stats[OpAllReduce].add(moved, g.w.link.xferSec(moved, 2*(n-1)))
	return nil
}

// AllToAllV exchanges variable-length payloads: send[j] travels to rank
// j, and recv[j] is filled with what rank j addressed to this rank.
// len(recv[j]) must equal len(send[j']) as declared by rank j for this
// rank. Self-addressed payloads are copied but not metered.
func (g *Group) AllToAllV(rank int, send, recv [][]float32) error {
	if err := g.w.checkFault(rank); err != nil {
		return err
	}
	n := g.w.n
	if len(send) != n || len(recv) != n {
		panic(fmt.Sprintf("collective: alltoallv needs %d send/recv slots, got %d/%d", n, len(send), len(recv)))
	}
	if g.wire != WireFP32 && n > 1 {
		return g.allToAllVWire(rank, send, recv)
	}
	g.vecs[rank] = send
	if err := g.wait(rank); err != nil {
		return err
	}
	var moved int64
	for j := 0; j < n; j++ {
		src := g.vecs[j][rank]
		if len(src) != len(recv[j]) {
			panic(fmt.Sprintf("collective: alltoallv rank %d expects %d floats from rank %d, got %d",
				rank, len(recv[j]), j, len(src)))
		}
		copy(recv[j], src)
		if j != rank {
			moved += int64(len(src)) * 4
		}
	}
	if err := g.wait(rank); err != nil {
		return err
	}
	g.w.stats[OpAllToAll].add(moved, g.w.link.xferSec(moved, n-1))
	return nil
}

// AllGather concatenates every rank's send buffer into recv, ordered by
// rank. All send buffers must have equal length k; recv must have length
// n·k.
func (g *Group) AllGather(rank int, send, recv []float32) error {
	if err := g.w.checkFault(rank); err != nil {
		return err
	}
	n := g.w.n
	k := len(send)
	if len(recv) != n*k {
		panic(fmt.Sprintf("collective: allgather recv length %d, want %d", len(recv), n*k))
	}
	g.bufs[rank] = send
	if err := g.wait(rank); err != nil {
		return err
	}
	var moved int64
	for j := 0; j < n; j++ {
		src := g.bufs[j]
		if len(src) != k {
			panic(fmt.Sprintf("collective: allgather length mismatch (%d vs %d)", k, len(src)))
		}
		copy(recv[j*k:(j+1)*k], src)
		if j != rank {
			moved += int64(k) * 4
		}
	}
	if err := g.wait(rank); err != nil {
		return err
	}
	g.w.stats[OpAllGather].add(moved, g.w.link.xferSec(moved, n-1))
	return nil
}

// Broadcast copies the root rank's buf into every other rank's buf. All
// ranks must pass buffers of equal length.
func (g *Group) Broadcast(rank, root int, buf []float32) error {
	if err := g.w.checkFault(rank); err != nil {
		return err
	}
	n := g.w.n
	if root < 0 || root >= n {
		panic(fmt.Sprintf("collective: broadcast root %d of %d ranks", root, n))
	}
	if n == 1 {
		g.w.stats[OpBroadcast].add(0, 0)
		return nil
	}
	g.bufs[rank] = buf
	if err := g.wait(rank); err != nil {
		return err
	}
	var moved int64
	if rank != root {
		src := g.bufs[root]
		if len(src) != len(buf) {
			panic(fmt.Sprintf("collective: broadcast length mismatch (%d vs %d)", len(buf), len(src)))
		}
		copy(buf, src)
		moved = int64(len(buf)) * 4
	}
	if err := g.wait(rank); err != nil {
		return err
	}
	g.w.stats[OpBroadcast].add(moved, g.w.link.xferSec(moved, 1))
	return nil
}

// Barrier blocks until every rank has entered it (or the world aborts).
func (g *Group) Barrier(rank int) error {
	if err := g.w.checkFault(rank); err != nil {
		return err
	}
	return g.wait(rank)
}

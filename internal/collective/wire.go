package collective

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// WireFormat selects the on-the-wire encoding of a group's collective
// payloads. Compute stays fp32 on both sides; a non-fp32 format narrows
// each payload through reusable scratch right before the rendezvous and
// widens it right after, so the byte meters (and the Link-priced
// modeled time) see the compressed volume. WireFP32 is the historical
// zero-copy passthrough.
type WireFormat uint8

const (
	WireFP32 WireFormat = iota
	WireFP16
	WireBF16
	// WireINT8 quantizes each 64-element chunk to int8 with one
	// float32 scale (maxabs/127) per chunk: 1.0625 bytes/element on
	// chunk-aligned payloads. Built for pooled embedding rows, whose
	// per-chunk dynamic range is narrow.
	WireINT8
)

// int8ChunkLen is the per-scale quantization granularity of WireINT8.
const int8ChunkLen = 64

func (w WireFormat) String() string {
	switch w {
	case WireFP32:
		return "fp32"
	case WireFP16:
		return "fp16"
	case WireBF16:
		return "bf16"
	case WireINT8:
		return "int8"
	}
	return fmt.Sprintf("wire(%d)", uint8(w))
}

// ParseWireFormat parses "fp32"/"fp16"/"bf16"/"int8".
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "fp32", "":
		return WireFP32, nil
	case "fp16":
		return WireFP16, nil
	case "bf16":
		return WireBF16, nil
	case "int8":
		return WireINT8, nil
	}
	return WireFP32, fmt.Errorf("unknown wire format %q (want fp32, fp16, bf16 or int8)", s)
}

// BytesPerElem returns the average wire bytes per float32 element.
// WireINT8 assumes chunk-aligned payloads (1 + 4/64); short tails add
// at most one 4-byte scale.
func (w WireFormat) BytesPerElem() float64 {
	switch w {
	case WireFP16, WireBF16:
		return 2
	case WireINT8:
		return 1 + 4.0/int8ChunkLen
	}
	return 4
}

// wireBytes returns the exact encoded size of an n-element payload.
func wireBytes(w WireFormat, n int) int {
	switch w {
	case WireFP16, WireBF16:
		return 2 * n
	case WireINT8:
		return n + 4*((n+int8ChunkLen-1)/int8ChunkLen)
	}
	return 4 * n
}

// SetWire selects the wire format for this group's AllReduce and
// AllToAllV payloads. Every rank of the group must use the same format;
// call it before the first collective (it is not synchronized against
// in-flight operations). AllGather and Broadcast always move fp32: they
// carry control-plane payloads (checkpoint fan-out, elastic rebuild),
// not per-step gradient traffic.
func (g *Group) SetWire(w WireFormat) { g.wire = w }

// Wire returns the group's current wire format.
func (g *Group) Wire() WireFormat { return g.wire }

// encodeWire appends the encoded form of src to dst (pass dst[:0] to
// reuse capacity) and returns the extended slice. The output is sized
// exactly once up front and filled with slice-advance stores — the
// codec sits on the critical path of every compressed collective, and
// per-element append bookkeeping is measurable there.
func encodeWire(w WireFormat, dst []byte, src []float32) []byte {
	off := len(dst)
	need := wireBytes(w, len(src))
	if cap(dst)-off < need {
		grown := make([]byte, off+need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:off+need]
	}
	o := dst[off:]
	switch w {
	case WireFP16:
		for _, v := range src {
			u := tensor.F32ToFP16(v)
			o[0], o[1] = byte(u), byte(u>>8)
			o = o[2:]
		}
	case WireBF16:
		// 4x unrolled: the bf16 narrowing is two integer ops per
		// element, so loop and bounds-check overhead dominates a
		// straight loop.
		i := 0
		for ; i+4 <= len(src); i += 4 {
			u0 := tensor.F32ToBF16(src[i])
			u1 := tensor.F32ToBF16(src[i+1])
			u2 := tensor.F32ToBF16(src[i+2])
			u3 := tensor.F32ToBF16(src[i+3])
			o[0], o[1] = byte(u0), byte(u0>>8)
			o[2], o[3] = byte(u1), byte(u1>>8)
			o[4], o[5] = byte(u2), byte(u2>>8)
			o[6], o[7] = byte(u3), byte(u3>>8)
			o = o[8:]
		}
		for ; i < len(src); i++ {
			u := tensor.F32ToBF16(src[i])
			o[0], o[1] = byte(u), byte(u>>8)
			o = o[2:]
		}
	case WireINT8:
		for base := 0; base < len(src); base += int8ChunkLen {
			end := base + int8ChunkLen
			if end > len(src) {
				end = len(src)
			}
			chunk := src[base:end]
			var maxAbs float32
			for _, v := range chunk {
				a := v
				if a < 0 {
					a = -a
				}
				if a > maxAbs {
					maxAbs = a
				}
			}
			scale := maxAbs / 127
			b := math.Float32bits(scale)
			o[0], o[1], o[2], o[3] = byte(b), byte(b>>8), byte(b>>16), byte(b>>24)
			o = o[4:]
			var inv float32
			if scale > 0 {
				inv = 1 / scale
			}
			for i, v := range chunk {
				f := v * inv
				var q int32
				if f >= 0 { // round half away from zero: deterministic, symmetric
					q = int32(f + 0.5)
				} else {
					q = int32(f - 0.5)
				}
				if q > 127 {
					q = 127
				} else if q < -127 {
					q = -127
				}
				o[i] = byte(int8(q))
			}
			o = o[len(chunk):]
		}
	default:
		panic("collective: encodeWire on " + w.String())
	}
	return dst
}

// decodeWire widens src into dst, panicking when src is not the exact
// encoding of len(dst) elements (the compressed analogue of the fp32
// paths' length-mismatch panics).
func decodeWire(w WireFormat, dst []float32, src []byte) {
	if len(src) != wireBytes(w, len(dst)) {
		panic(fmt.Sprintf("collective: %s payload %dB, want %dB for %d elements",
			w, len(src), wireBytes(w, len(dst)), len(dst)))
	}
	s := src
	switch w {
	case WireFP16:
		for i := range dst {
			dst[i] = tensor.FP16ToF32(uint16(s[0]) | uint16(s[1])<<8)
			s = s[2:]
		}
	case WireBF16:
		i := 0
		for ; i+4 <= len(dst); i += 4 {
			dst[i] = tensor.BF16ToF32(uint16(s[0]) | uint16(s[1])<<8)
			dst[i+1] = tensor.BF16ToF32(uint16(s[2]) | uint16(s[3])<<8)
			dst[i+2] = tensor.BF16ToF32(uint16(s[4]) | uint16(s[5])<<8)
			dst[i+3] = tensor.BF16ToF32(uint16(s[6]) | uint16(s[7])<<8)
			s = s[8:]
		}
		for ; i < len(dst); i++ {
			dst[i] = tensor.BF16ToF32(uint16(s[0]) | uint16(s[1])<<8)
			s = s[2:]
		}
	case WireINT8:
		for base := 0; base < len(dst); base += int8ChunkLen {
			end := base + int8ChunkLen
			if end > len(dst) {
				end = len(dst)
			}
			scale := math.Float32frombits(uint32(s[0]) | uint32(s[1])<<8 |
				uint32(s[2])<<16 | uint32(s[3])<<24)
			s = s[4:]
			for i := base; i < end; i++ {
				dst[i] = float32(int8(s[i-base])) * scale
			}
			s = s[end-base:]
		}
	default:
		panic("collective: decodeWire on " + w.String())
	}
}

// decodeAccumWire accumulates the decoded src into dst (dst[i] += v),
// the reduce-scatter inner step of the compressed all-reduce.
func decodeAccumWire(w WireFormat, dst []float32, src []byte) {
	if len(src) != wireBytes(w, len(dst)) {
		panic(fmt.Sprintf("collective: %s payload %dB, want %dB for %d elements",
			w, len(src), wireBytes(w, len(dst)), len(dst)))
	}
	s := src
	switch w {
	case WireFP16:
		for i := range dst {
			dst[i] += tensor.FP16ToF32(uint16(s[0]) | uint16(s[1])<<8)
			s = s[2:]
		}
	case WireBF16:
		i := 0
		for ; i+4 <= len(dst); i += 4 {
			dst[i] += tensor.BF16ToF32(uint16(s[0]) | uint16(s[1])<<8)
			dst[i+1] += tensor.BF16ToF32(uint16(s[2]) | uint16(s[3])<<8)
			dst[i+2] += tensor.BF16ToF32(uint16(s[4]) | uint16(s[5])<<8)
			dst[i+3] += tensor.BF16ToF32(uint16(s[6]) | uint16(s[7])<<8)
			s = s[8:]
		}
		for ; i < len(dst); i++ {
			dst[i] += tensor.BF16ToF32(uint16(s[0]) | uint16(s[1])<<8)
			s = s[2:]
		}
	case WireINT8:
		for base := 0; base < len(dst); base += int8ChunkLen {
			end := base + int8ChunkLen
			if end > len(dst) {
				end = len(dst)
			}
			scale := math.Float32frombits(uint32(s[0]) | uint32(s[1])<<8 |
				uint32(s[2])<<16 | uint32(s[3])<<24)
			s = s[4:]
			for i := base; i < end; i++ {
				dst[i] += float32(int8(s[i-base])) * scale
			}
			s = s[end-base:]
		}
	default:
		panic("collective: decodeAccumWire on " + w.String())
	}
}

// a2aScratch returns rank's per-peer encode slots, allocating the slot
// array on first use (inner byte slices grow in place and are reused,
// so steady-state calls allocate nothing).
func (g *Group) a2aScratch(rank int) [][]byte {
	if g.a2aWire[rank] == nil {
		g.a2aWire[rank] = make([][]byte, g.w.n)
	}
	return g.a2aWire[rank]
}

// allToAllVWire is the compressed AllToAllV: each rank narrows its
// outgoing payloads into private scratch, deposits the encoded slices,
// and every receiver widens the peer bytes straight into recv. The
// self-addressed payload is a plain fp32 copy (it never crosses a rank
// boundary, so compressing it would only add quantization error).
func (g *Group) allToAllVWire(rank int, send, recv [][]float32) error {
	n := g.w.n
	enc := g.a2aScratch(rank)
	for j := 0; j < n; j++ {
		if j == rank {
			continue
		}
		enc[j] = encodeWire(g.wire, enc[j][:0], send[j])
	}
	if err := g.wait(rank); err != nil {
		return err
	}
	if len(send[rank]) != len(recv[rank]) {
		panic(fmt.Sprintf("collective: alltoallv rank %d self payload %d floats, recv wants %d",
			rank, len(send[rank]), len(recv[rank])))
	}
	copy(recv[rank], send[rank])
	var moved int64
	for j := 0; j < n; j++ {
		if j == rank {
			continue
		}
		src := g.a2aWire[j][rank]
		decodeWire(g.wire, recv[j], src)
		moved += int64(len(src))
	}
	if err := g.wait(rank); err != nil {
		return err
	}
	g.w.stats[OpAllToAll].add(moved, g.w.link.xferSec(moved, n-1))
	return nil
}

// allReduceWire is the compressed all-reduce. The reduce-scatter half
// keeps the ring schedule: at step s each rank encodes the chunk it is
// forwarding, and its successor widens and accumulates it (partial sums
// are re-quantized per hop, like any compressed ring). The gather half
// deliberately departs from per-hop forwarding: each fully reduced
// chunk is encoded exactly once by its owner, the owner widens its own
// encoding back into its buffer, and every peer widens those same
// bytes — so all ranks decode identical payloads and the dense replicas
// stay bit-identical across ranks, which the elastic trainer's replica
// fingerprint checks rely on. Volume still matches the analytic
// 2·(n-1)/n·size·bpe, and modeled time keeps the ring's 2·(n-1)
// message count.
func (g *Group) allReduceWire(rank int, buf []float32) error {
	n := g.w.n
	size := len(buf)
	prev := (rank - 1 + n) % n
	var moved int64
	for s := 0; s < n-1; s++ {
		k := ((rank-s)%n + n) % n
		lo, hi := chunkRange(size, n, k)
		g.arWire[rank] = encodeWire(g.wire, g.arWire[rank][:0], buf[lo:hi])
		if err := g.wait(rank); err != nil {
			return err
		}
		k = ((rank-1-s)%n + n) % n
		lo, hi = chunkRange(size, n, k)
		src := g.arWire[prev]
		decodeAccumWire(g.wire, buf[lo:hi], src)
		moved += int64(len(src))
		if err := g.wait(rank); err != nil {
			return err
		}
	}
	// Gather: broadcast each owner's fully reduced chunk (rank+1) once.
	k := (rank + 1) % n
	lo, hi := chunkRange(size, n, k)
	g.arWire[rank] = encodeWire(g.wire, g.arWire[rank][:0], buf[lo:hi])
	decodeWire(g.wire, buf[lo:hi], g.arWire[rank])
	if err := g.wait(rank); err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		if j == rank {
			continue
		}
		jlo, jhi := chunkRange(size, n, (j+1)%n)
		src := g.arWire[j]
		decodeWire(g.wire, buf[jlo:jhi], src)
		moved += int64(len(src))
	}
	if err := g.wait(rank); err != nil {
		return err
	}
	g.w.stats[OpAllReduce].add(moved, g.w.link.xferSec(moved, 2*(n-1)))
	return nil
}

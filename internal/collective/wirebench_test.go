package collective

import (
	"testing"

	"repro/internal/xrand"
)

func benchCodec(b *testing.B, w WireFormat) {
	src := make([]float32, 16384)
	dst := make([]float32, 16384)
	rng := xrand.New(1)
	for i := range src {
		src[i] = float32(rng.Norm())
	}
	var enc []byte
	enc = encodeWire(w, enc[:0], src)
	b.SetBytes(int64(4 * len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc = encodeWire(w, enc[:0], src)
		decodeWire(w, dst, enc)
	}
}

func BenchmarkWireCodecBF16(b *testing.B) { benchCodec(b, WireBF16) }
func BenchmarkWireCodecFP16(b *testing.B) { benchCodec(b, WireFP16) }
func BenchmarkWireCodecINT8(b *testing.B) { benchCodec(b, WireINT8) }

package collective

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func wireFormats() []WireFormat { return []WireFormat{WireFP16, WireBF16, WireINT8} }

// relTol is the element tolerance of one quantization pass, relative to
// the payload's magnitude scale.
func relTol(w WireFormat) float64 {
	switch w {
	case WireFP16:
		return 1.0 / 2048
	case WireBF16:
		return 1.0 / 256
	default: // int8: half a quantization step of a maxabs~3 chunk
		return 1.0 / 127
	}
}

// passTol bounds the absolute error of one quantization pass on an
// element of magnitude elemAbs inside a payload of magnitude payloadMax:
// the half formats round relative to the element, int8 rounds relative
// to its chunk's scale (payloadMax is an upper bound on it).
func passTol(w WireFormat, payloadMax, elemAbs float64) float64 {
	if w == WireINT8 {
		return payloadMax/254 + 1e-6
	}
	return relTol(w)*elemAbs + 1e-6
}

func TestWireCodecRoundTrip(t *testing.T) {
	rng := xrand.New(7)
	for _, w := range wireFormats() {
		for _, n := range []int{0, 1, 63, 64, 65, 300, 1024} {
			src := make([]float32, n)
			var maxAbs float64
			for i := range src {
				src[i] = float32(rng.Norm())
				if a := math.Abs(float64(src[i])); a > maxAbs {
					maxAbs = a
				}
			}
			enc := encodeWire(w, nil, src)
			if len(enc) != wireBytes(w, n) {
				t.Fatalf("%v n=%d encoded %dB, want %dB", w, n, len(enc), wireBytes(w, n))
			}
			dec := make([]float32, n)
			decodeWire(w, dec, enc)
			for i := range src {
				tol := passTol(w, maxAbs, math.Abs(float64(src[i])))
				if math.Abs(float64(dec[i]-src[i])) > tol {
					t.Fatalf("%v n=%d elem %d: %v -> %v (tol %v)", w, n, i, src[i], dec[i], tol)
				}
			}
			// Re-encoding the decoded payload must be a fixed point:
			// values already on the quantization grid stay put.
			if w != WireINT8 {
				enc2 := encodeWire(w, nil, dec)
				for i := range enc {
					if enc[i] != enc2[i] {
						t.Fatalf("%v n=%d: re-encode differs at byte %d", w, n, i)
					}
				}
			}
			// decodeAccumWire must add exactly the decoded values.
			acc := make([]float32, n)
			for i := range acc {
				acc[i] = 1
			}
			decodeAccumWire(w, acc, enc)
			for i := range acc {
				if acc[i] != 1+dec[i] {
					t.Fatalf("%v accum elem %d: got %v want %v", w, i, acc[i], 1+dec[i])
				}
			}
		}
	}
}

func TestWireBytesPerElem(t *testing.T) {
	// The analytic bytes-per-element must match the exact codec size on
	// chunk-aligned payloads (what the perfmodel formulas assume).
	for _, w := range []WireFormat{WireFP32, WireFP16, WireBF16, WireINT8} {
		n := 4 * int8ChunkLen
		if got, want := float64(wireBytes(w, n)), w.BytesPerElem()*float64(n); got != want {
			t.Fatalf("%v: wireBytes(%d)=%v, BytesPerElem implies %v", w, n, got, want)
		}
	}
}

func TestAllReduceWireBitIdenticalAcrossRanks(t *testing.T) {
	for _, w := range wireFormats() {
		for _, n := range []int{2, 3, 4, 7} {
			for _, size := range []int{1, 5, 64, 257, 1000} {
				rng := xrand.New(int64(n*1000 + size))
				in := make([][]float32, n)
				var want []float32
				for r := range in {
					in[r] = make([]float32, size)
					for i := range in[r] {
						in[r][i] = float32(rng.Norm())
					}
				}
				world := NewWorld(n, PerfectLink())
				g := world.NewGroup()
				g.SetWire(w)
				runRanks(n, func(r int) { g.AllReduce(r, in[r]) })
				want = in[0]
				for r := 1; r < n; r++ {
					for i := range want {
						if in[r][i] != want[i] {
							t.Fatalf("%v n=%d size=%d: ranks 0 and %d disagree at %d (%v vs %v)",
								w, n, size, r, i, want[i], in[r][i])
						}
					}
				}
			}
		}
	}
}

func TestAllReduceWireApproximatesSum(t *testing.T) {
	for _, w := range wireFormats() {
		n, size := 4, 512
		rng := xrand.New(11)
		in := make([][]float32, n)
		want := make([]float64, size)
		var maxAbs float64
		for r := range in {
			in[r] = make([]float32, size)
			for i := range in[r] {
				in[r][i] = float32(rng.Norm())
				want[i] += float64(in[r][i])
			}
		}
		for _, v := range want {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		world := NewWorld(n, PerfectLink())
		g := world.NewGroup()
		g.SetWire(w)
		runRanks(n, func(r int) { g.AllReduce(r, in[r]) })
		// n-1 re-quantized hops plus the gather pass compound the
		// per-pass error; bound it loosely but meaningfully.
		for i := range want {
			tol := float64(n+1) * passTol(w, maxAbs, maxAbs)
			if math.Abs(float64(in[0][i])-want[i]) > tol {
				t.Fatalf("%v elem %d: got %v want %v (tol %v)", w, i, in[0][i], want[i], tol)
			}
		}
	}
}

func TestAllToAllVWireMatchesPayloads(t *testing.T) {
	for _, w := range wireFormats() {
		n := 3
		rng := xrand.New(5)
		send := make([][][]float32, n)
		recv := make([][][]float32, n)
		for r := 0; r < n; r++ {
			send[r] = make([][]float32, n)
			recv[r] = make([][]float32, n)
			for j := 0; j < n; j++ {
				// variable lengths, including a non-multiple of the
				// int8 chunk and an empty payload
				l := 17*r + 31*j
				if r == 0 && j == 1 {
					l = 0
				}
				send[r][j] = make([]float32, l)
				for i := range send[r][j] {
					send[r][j][i] = float32(rng.Norm())
				}
			}
		}
		for r := 0; r < n; r++ {
			for j := 0; j < n; j++ {
				recv[r][j] = make([]float32, len(send[j][r]))
			}
		}
		world := NewWorld(n, PerfectLink())
		g := world.NewGroup()
		g.SetWire(w)
		runRanks(n, func(r int) { g.AllToAllV(r, send[r], recv[r]) })
		for r := 0; r < n; r++ {
			for j := 0; j < n; j++ {
				src := send[j][r]
				for i := range src {
					got, want := recv[r][j][i], src[i]
					if j == r {
						if got != want {
							t.Fatalf("%v self payload must be exact: rank %d elem %d", w, r, i)
						}
						continue
					}
					var payloadMax float64
					for _, v := range src {
						if a := math.Abs(float64(v)); a > payloadMax {
							payloadMax = a
						}
					}
					if math.Abs(float64(got-want)) > passTol(w, payloadMax, math.Abs(float64(want))) {
						t.Fatalf("%v rank %d from %d elem %d: got %v want %v", w, r, j, i, got, want)
					}
				}
			}
		}
	}
}

// The byte meters must count encoded wire bytes, not fp32 payload
// bytes — that is what shrinks the Link-priced modeled time.
func TestWireMetersCountWireBytes(t *testing.T) {
	n, size := 4, 1024
	link := Link{Name: "test-25GbE", BandwidthBps: 25e9 / 8, LatencySec: 2e-6}
	for _, w := range wireFormats() {
		world := NewWorld(n, link)
		g := world.NewGroup()
		g.SetWire(w)
		bufs := make([][]float32, n)
		for r := range bufs {
			bufs[r] = make([]float32, size)
			for i := range bufs[r] {
				bufs[r][i] = float32(r + i)
			}
		}
		runRanks(n, func(r int) { g.AllReduce(r, bufs[r]) })
		var want int64
		for r := 0; r < n; r++ {
			for s := 0; s < n; s++ { // n-1 rs chunks + n-1 gather chunks per rank
				lo, hi := chunkRange(size, n, s)
				if s != (r+1)%n {
					want += int64(wireBytes(w, hi-lo)) // rs: every chunk but the owned one
				}
			}
			for j := 0; j < n; j++ {
				if j == r {
					continue
				}
				lo, hi := chunkRange(size, n, (j+1)%n)
				want += int64(wireBytes(w, hi-lo))
			}
		}
		if got := world.Snapshot().AllReduce.Bytes; got != want {
			t.Fatalf("%v allreduce meter %d bytes, want %d", w, got, want)
		}
		// Compression must shrink the Link-priced modeled time versus
		// the same payload over an fp32 group on the same link.
		ref := NewWorld(n, link)
		gRef := ref.NewGroup()
		refBufs := make([][]float32, n)
		for r := range refBufs {
			refBufs[r] = make([]float32, size)
		}
		runRanks(n, func(r int) { gRef.AllReduce(r, refBufs[r]) })
		if cs, fs := world.Snapshot().AllReduce.ModelSec, ref.Snapshot().AllReduce.ModelSec; cs <= 0 || cs >= fs {
			t.Fatalf("%v modeled time %v not below fp32's %v", w, cs, fs)
		}
	}
}

// Steady-state compressed collectives must not allocate: the hybrid
// step budget (≤2 allocs) has no headroom for per-step encode buffers.
func TestWireCollectivesSteadyStateAllocFree(t *testing.T) {
	n, size := 2, 4096
	for _, w := range wireFormats() {
		world := NewWorld(n, PerfectLink())
		g := world.NewGroup()
		g.SetWire(w)
		bufs := make([][]float32, n)
		sends := make([][][]float32, n)
		recvs := make([][][]float32, n)
		for r := 0; r < n; r++ {
			bufs[r] = make([]float32, size)
			sends[r] = make([][]float32, n)
			recvs[r] = make([][]float32, n)
			for j := 0; j < n; j++ {
				sends[r][j] = make([]float32, 300)
				recvs[r][j] = make([]float32, 300)
			}
		}
		step := func() {
			runRanks(n, func(r int) {
				g.AllReduce(r, bufs[r])
				g.AllToAllV(r, sends[r], recvs[r])
			})
		}
		step() // warm the scratch
		step()
		avg := testing.AllocsPerRun(10, step)
		// runRanks itself allocates its goroutines and closures; a
		// fp32 baseline measures that harness floor.
		gBase := world.NewGroup()
		base := testing.AllocsPerRun(10, func() {
			runRanks(n, func(r int) {
				gBase.AllReduce(r, bufs[r])
				gBase.AllToAllV(r, sends[r], recvs[r])
			})
		})
		if avg > base {
			t.Fatalf("%v steady state allocates %v/step vs fp32 harness floor %v", w, avg, base)
		}
	}
}

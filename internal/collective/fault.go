package collective

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind classifies an injected fault.
type FaultKind uint8

const (
	// FaultKill simulates a rank dying: the first collective the rank
	// enters at (or after) the scheduled step aborts every group of the
	// world with a RankError, and the op returns that error on all
	// ranks. The killed rank's goroutine is expected to exit its loop.
	FaultKill FaultKind = iota
	// FaultDelay stalls the rank for the configured duration before the
	// op proceeds — a straggler, not a failure. Peers block at the
	// rendezvous for the duration; no error is raised.
	FaultDelay
	// FaultFail makes one collective op fail on the scheduled rank.
	// Collectives cannot partially complete, so the failure propagates:
	// all groups abort and every rank's op returns the RankError.
	FaultFail
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultKill:
		return "kill"
	case FaultDelay:
		return "delay"
	case FaultFail:
		return "fail"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scheduled fault: Kind strikes Rank at the first
// collective entered at step >= Step (steps come from World.BeginStep).
type Fault struct {
	Kind  FaultKind
	Rank  int
	Step  int
	Delay time.Duration // FaultDelay only
}

// String renders the fault in the schedule syntax.
func (f Fault) String() string {
	s := fmt.Sprintf("%s:%d@%d", f.Kind, f.Rank, f.Step)
	if f.Kind == FaultDelay {
		s += "+" + f.Delay.String()
	}
	return s
}

// RankError is the error a faulted collective raises on every rank of
// the world: rank Rank suffered a Kind fault at step Step. The hybrid
// trainer uses it to decide recovery (rollback + rebuild).
type RankError struct {
	Rank int
	Step int
	Kind FaultKind
}

// Error implements error.
func (e *RankError) Error() string {
	return fmt.Sprintf("collective: rank %d %s fault at step %d", e.Rank, e.Kind, e.Step)
}

// AsRankError extracts a RankError from an error chain.
func AsRankError(err error) (*RankError, bool) {
	var re *RankError
	ok := errors.As(err, &re)
	return re, ok
}

// FaultSchedule is a set of step-triggered faults shared by one or more
// worlds. Each fault fires exactly once per schedule lifetime — fired
// flags survive a trainer rebuild, so a deterministic replay through the
// same steps does not re-trigger the fault it is recovering from.
//
// The zero-pending fast path is a single atomic load, keeping the
// fault seam free on unfaulted hot paths.
type FaultSchedule struct {
	mu      sync.Mutex
	faults  []Fault
	fired   []bool
	pending atomic.Int32
}

// NewFaultSchedule builds a schedule from explicit faults.
func NewFaultSchedule(faults ...Fault) *FaultSchedule {
	fs := &FaultSchedule{
		faults: append([]Fault(nil), faults...),
		fired:  make([]bool, len(faults)),
	}
	sort.SliceStable(fs.faults, func(i, j int) bool { return fs.faults[i].Step < fs.faults[j].Step })
	fs.pending.Store(int32(len(faults)))
	return fs
}

// ParseFaultSchedule parses the -faults flag syntax: a comma-separated
// list of kind:rank@step items, where kind is kill, fail, or
// delay (delay takes a duration suffix, +<dur>):
//
//	kill:1@12          rank 1 dies at step 12
//	delay:0@5+2ms      rank 0 stalls 2ms at step 5
//	fail:2@30          rank 2's collective op fails at step 30
//
// An empty string parses to an empty schedule.
func ParseFaultSchedule(s string) (*FaultSchedule, error) {
	var faults []Fault
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("collective: fault %q: want kind:rank@step", item)
		}
		var f Fault
		switch kindStr {
		case "kill":
			f.Kind = FaultKill
		case "fail":
			f.Kind = FaultFail
		case "delay":
			f.Kind = FaultDelay
		default:
			return nil, fmt.Errorf("collective: fault %q: unknown kind %q (kill, fail, delay)", item, kindStr)
		}
		rankStr, stepStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("collective: fault %q: want kind:rank@step", item)
		}
		rank, err := strconv.Atoi(rankStr)
		if err != nil || rank < 0 {
			return nil, fmt.Errorf("collective: fault %q: bad rank %q", item, rankStr)
		}
		f.Rank = rank
		if f.Kind == FaultDelay {
			stepPart, durPart, ok := strings.Cut(stepStr, "+")
			if !ok {
				return nil, fmt.Errorf("collective: fault %q: delay needs +<duration>", item)
			}
			d, err := time.ParseDuration(durPart)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("collective: fault %q: bad duration %q", item, durPart)
			}
			f.Delay = d
			stepStr = stepPart
		}
		step, err := strconv.Atoi(stepStr)
		if err != nil || step < 0 {
			return nil, fmt.Errorf("collective: fault %q: bad step %q", item, stepStr)
		}
		f.Step = step
		faults = append(faults, f)
	}
	return NewFaultSchedule(faults...), nil
}

// String renders the schedule in the parseable syntax.
func (fs *FaultSchedule) String() string {
	if fs == nil {
		return ""
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parts := make([]string, len(fs.faults))
	for i, f := range fs.faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// Len returns the total number of scheduled faults.
func (fs *FaultSchedule) Len() int {
	if fs == nil {
		return 0
	}
	return len(fs.faults)
}

// Pending returns the number of faults that have not fired yet.
func (fs *FaultSchedule) Pending() int {
	if fs == nil {
		return 0
	}
	return int(fs.pending.Load())
}

// next pops the first unfired fault for rank due at or before step, or
// returns false. Firing is permanent: the fault never triggers again,
// even if the schedule outlives a trainer rebuild that replays the step.
func (fs *FaultSchedule) next(rank, step int) (Fault, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for i, f := range fs.faults {
		if fs.fired[i] || f.Rank != rank || step < f.Step {
			continue
		}
		fs.fired[i] = true
		fs.pending.Add(-1)
		return f, true
	}
	return Fault{}, false
}

// SetFaults arms a fault schedule on the world. Passing nil disarms.
// Arm before launching rank goroutines; the schedule may be shared by
// successive worlds (rebuilds) so fired faults stay fired.
func (w *World) SetFaults(fs *FaultSchedule) { w.faults = fs }

// Faults returns the armed schedule (nil when disarmed).
func (w *World) Faults() *FaultSchedule { return w.faults }

// BeginStep advances the world's fault clock: faults scheduled at or
// before step become eligible to fire on their rank's next collective.
// The trainer calls it once per training step from the control thread.
func (w *World) BeginStep(step int) { w.step.Store(int64(step)) }

// StepClock returns the current fault-clock step.
func (w *World) StepClock() int { return int(w.step.Load()) }

// checkFault fires at most one due fault for rank. Kill and fail faults
// abort every group of the world and return the RankError; delay faults
// sleep and return nil. The no-pending fast path is one atomic load.
func (w *World) checkFault(rank int) error {
	fs := w.faults
	if fs == nil || fs.pending.Load() == 0 {
		return nil
	}
	f, ok := fs.next(rank, int(w.step.Load()))
	if !ok {
		return nil
	}
	if f.Kind == FaultDelay {
		time.Sleep(f.Delay)
		return nil
	}
	err := &RankError{Rank: f.Rank, Step: int(w.step.Load()), Kind: f.Kind}
	w.AbortAll(err)
	return err
}

// AbortAll poisons every group of the world: blocked collectives unblock
// immediately and return err, and every later collective on any group
// returns err without rendezvousing. Recovery rebuilds the world.
func (w *World) AbortAll(err error) {
	w.mu.Lock()
	groups := w.groups
	w.mu.Unlock()
	for _, g := range groups {
		g.bar.abort(err)
	}
}

// Err returns the world's abort error, or nil while healthy. It reports
// the first abort even on groups the failing op never touched.
func (w *World) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, g := range w.groups {
		if err := g.bar.error(); err != nil {
			return err
		}
	}
	return nil
}

package collective

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestParseFaultSchedule(t *testing.T) {
	fs, err := ParseFaultSchedule("kill:1@12, delay:0@5+2ms ,fail:2@30")
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 3 || fs.Pending() != 3 {
		t.Fatalf("len=%d pending=%d, want 3/3", fs.Len(), fs.Pending())
	}
	// Schedule sorts by step: delay@5, kill@12, fail@30.
	if got := fs.String(); got != "delay:0@5+2ms,kill:1@12,fail:2@30" {
		t.Fatalf("round-trip = %q", got)
	}

	if fs, err := ParseFaultSchedule(""); err != nil || fs.Len() != 0 {
		t.Fatalf("empty schedule: %v (len %d)", err, fs.Len())
	}
	for _, bad := range []string{"boom:1@2", "kill:1", "kill:x@2", "kill:1@y", "delay:1@2", "delay:1@2+x", "kill:-1@2", "kill:1@-2"} {
		if _, err := ParseFaultSchedule(bad); err == nil {
			t.Errorf("ParseFaultSchedule(%q) accepted bad input", bad)
		}
	}
}

func TestKillAbortsAllRanks(t *testing.T) {
	const n = 4
	w := NewWorld(n, PerfectLink())
	w.SetFaults(NewFaultSchedule(Fault{Kind: FaultKill, Rank: 2, Step: 3}))
	g := w.NewGroup()

	errs := make([]error, n)
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, 8)
	}
	for step := 0; step < 5; step++ {
		w.BeginStep(step)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = g.AllReduce(r, bufs[r])
			}(r)
		}
		wg.Wait()
		if step < 3 {
			for r, err := range errs {
				if err != nil {
					t.Fatalf("step %d rank %d failed early: %v", step, r, err)
				}
			}
			continue
		}
		// The kill step and every later op fail on every rank.
		for r, err := range errs {
			re, ok := AsRankError(err)
			if !ok {
				t.Fatalf("step %d rank %d: %v, want RankError", step, r, err)
			}
			if re.Rank != 2 || re.Kind != FaultKill || re.Step != 3 {
				t.Fatalf("step %d rank %d: %+v", step, r, re)
			}
		}
	}
	if w.Err() == nil {
		t.Fatal("world does not report the abort")
	}
	if w.Faults().Pending() != 0 {
		t.Fatalf("fault did not mark fired (pending %d)", w.Faults().Pending())
	}
}

func TestKillPropagatesAcrossGroups(t *testing.T) {
	const n = 2
	w := NewWorld(n, PerfectLink())
	w.SetFaults(NewFaultSchedule(Fault{Kind: FaultKill, Rank: 0, Step: 0}))
	main, side := w.NewGroup(), w.NewGroup()
	w.BeginStep(0)

	// Rank 1 blocks on the side group; rank 0's kill on the main group
	// must unblock it with the same error.
	var wg sync.WaitGroup
	var sideErr, mainErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		sideErr = side.Barrier(1)
	}()
	go func() {
		defer wg.Done()
		mainErr = main.AllReduce(0, make([]float32, 4))
	}()
	wg.Wait()
	if _, ok := AsRankError(mainErr); !ok {
		t.Fatalf("killed rank got %v", mainErr)
	}
	if _, ok := AsRankError(sideErr); !ok {
		t.Fatalf("bystander group wait got %v, want RankError", sideErr)
	}
	if !errors.Is(sideErr, mainErr) {
		t.Fatalf("groups aborted with different errors: %v vs %v", sideErr, mainErr)
	}
}

func TestDelayFaultIsNotAnError(t *testing.T) {
	const n = 2
	w := NewWorld(n, PerfectLink())
	w.SetFaults(NewFaultSchedule(Fault{Kind: FaultDelay, Rank: 1, Step: 0, Delay: 20 * time.Millisecond}))
	g := w.NewGroup()
	w.BeginStep(0)

	start := time.Now()
	bufs := [][]float32{{1, 2}, {3, 4}}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = g.AllReduce(r, bufs[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delay fault did not stall: %v", elapsed)
	}
	for r := range bufs {
		if bufs[r][0] != 4 || bufs[r][1] != 6 {
			t.Fatalf("rank %d result %v after delay, want [4 6]", r, bufs[r])
		}
	}
}

func TestFailFaultFiresOnce(t *testing.T) {
	const n = 2
	fs := NewFaultSchedule(Fault{Kind: FaultFail, Rank: 0, Step: 2})

	run := func(w *World) []error {
		g := w.NewGroup()
		errs := make([]error, n)
		for step := 0; step < 4; step++ {
			w.BeginStep(step)
			var wg sync.WaitGroup
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					err := g.Barrier(r)
					if errs[r] == nil {
						errs[r] = err
					}
				}(r)
			}
			wg.Wait()
		}
		return errs
	}

	w1 := NewWorld(n, PerfectLink())
	w1.SetFaults(fs)
	errs := run(w1)
	for r, err := range errs {
		if re, ok := AsRankError(err); !ok || re.Kind != FaultFail {
			t.Fatalf("first world rank %d: %v, want fail RankError", r, err)
		}
	}

	// A rebuilt world sharing the schedule replays the same steps
	// without re-firing the fault — the recovery run survives.
	w2 := NewWorld(n, PerfectLink())
	w2.SetFaults(fs)
	for r, err := range run(w2) {
		if err != nil {
			t.Fatalf("rebuilt world rank %d re-hit the fault: %v", r, err)
		}
	}
}

func TestFaultClockGatesFiring(t *testing.T) {
	w := NewWorld(1, PerfectLink())
	w.SetFaults(NewFaultSchedule(Fault{Kind: FaultKill, Rank: 0, Step: 10}))
	g := w.NewGroup()
	w.BeginStep(9)
	if err := g.Barrier(0); err != nil {
		t.Fatalf("fault fired before its step: %v", err)
	}
	w.BeginStep(10)
	if err := g.Barrier(0); err == nil {
		t.Fatal("fault did not fire at its step")
	}
	if w.StepClock() != 10 {
		t.Fatalf("StepClock = %d", w.StepClock())
	}
}

func TestUnfaultedHotPathStaysCheap(t *testing.T) {
	// With no schedule armed (or all faults fired) the per-op fault
	// check must not allocate.
	w := NewWorld(1, PerfectLink())
	g := w.NewGroup()
	buf := make([]float32, 16)
	allocs := testing.AllocsPerRun(100, func() {
		if err := g.AllReduce(0, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("unfaulted AllReduce allocates %.1f/op", allocs)
	}
}

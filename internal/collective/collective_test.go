package collective

import (
	"math"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/xrand"
)

// runRanks executes fn once per rank on its own goroutine and waits.
func runRanks(n int, fn func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(r)
		}(r)
	}
	wg.Wait()
}

func TestAllReduceMatchesSerialSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, size := range []int{0, 1, 5, 64, 1000} {
			rng := xrand.New(int64(n*1000 + size))
			in := make([][]float32, n)
			want := make([]float32, size)
			for r := range in {
				in[r] = make([]float32, size)
				for i := range in[r] {
					in[r][i] = float32(rng.Norm())
					want[i] += in[r][i]
				}
			}
			w := NewWorld(n, PerfectLink())
			g := w.NewGroup()
			runRanks(n, func(r int) { g.AllReduce(r, in[r]) })
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Abs(float64(in[r][i]-want[i])) > 1e-4 {
						t.Fatalf("n=%d size=%d rank %d elem %d: got %v want %v",
							n, size, r, i, in[r][i], want[i])
					}
				}
				// Every rank must hold the bit-identical reduced vector.
				for i := range want {
					if in[r][i] != in[0][i] {
						t.Fatalf("n=%d size=%d: ranks 0 and %d disagree at %d", n, size, r, i)
					}
				}
			}
		}
	}
}

// TestAllReduceDeterministic checks bit-identical results across repeated
// runs: the ring applies contributions in a fixed order, so goroutine
// scheduling must not leak into the floats.
func TestAllReduceDeterministic(t *testing.T) {
	const n, size = 4, 1003
	mk := func() [][]float32 {
		rng := xrand.New(42)
		in := make([][]float32, n)
		for r := range in {
			in[r] = make([]float32, size)
			for i := range in[r] {
				in[r][i] = float32(rng.Norm())
			}
		}
		return in
	}
	first := mk()
	w := NewWorld(n, PerfectLink())
	g := w.NewGroup()
	runRanks(n, func(r int) { g.AllReduce(r, first[r]) })
	for trial := 0; trial < 3; trial++ {
		in := mk()
		w2 := NewWorld(n, PerfectLink())
		g2 := w2.NewGroup()
		runRanks(n, func(r int) { g2.AllReduce(r, in[r]) })
		for r := 0; r < n; r++ {
			for i := range in[r] {
				if in[r][i] != first[r][i] {
					t.Fatalf("trial %d rank %d elem %d: %v != %v", trial, r, i, in[r][i], first[r][i])
				}
			}
		}
	}
}

func TestAllToAllV(t *testing.T) {
	const n = 4
	w := NewWorld(n, PerfectLink())
	g := w.NewGroup()
	// Rank r sends to rank j a payload of length r+j+1 filled with
	// 100*r+j; verify every rank receives what each peer addressed to it.
	send := make([][][]float32, n)
	recv := make([][][]float32, n)
	for r := 0; r < n; r++ {
		send[r] = make([][]float32, n)
		recv[r] = make([][]float32, n)
		for j := 0; j < n; j++ {
			send[r][j] = make([]float32, r+j+1)
			for i := range send[r][j] {
				send[r][j][i] = float32(100*r + j)
			}
			recv[r][j] = make([]float32, j+r+1)
		}
	}
	runRanks(n, func(r int) { g.AllToAllV(r, send[r], recv[r]) })
	for r := 0; r < n; r++ {
		for j := 0; j < n; j++ {
			want := float32(100*j + r)
			if len(recv[r][j]) != j+r+1 {
				t.Fatalf("rank %d from %d: length %d", r, j, len(recv[r][j]))
			}
			for i, v := range recv[r][j] {
				if v != want {
					t.Fatalf("rank %d from %d elem %d: got %v want %v", r, j, i, v, want)
				}
			}
		}
	}
}

func TestAllGatherAndBroadcast(t *testing.T) {
	const n, k = 3, 5
	w := NewWorld(n, PerfectLink())
	g := w.NewGroup()
	recv := make([][]float32, n)
	runRanks(n, func(r int) {
		send := make([]float32, k)
		for i := range send {
			send[i] = float32(10*r + i)
		}
		recv[r] = make([]float32, n*k)
		g.AllGather(r, send, recv[r])
	})
	for r := 0; r < n; r++ {
		for j := 0; j < n; j++ {
			for i := 0; i < k; i++ {
				if got, want := recv[r][j*k+i], float32(10*j+i); got != want {
					t.Fatalf("rank %d slot %d elem %d: got %v want %v", r, j, i, got, want)
				}
			}
		}
	}

	bufs := make([][]float32, n)
	runRanks(n, func(r int) {
		bufs[r] = make([]float32, 4)
		if r == 1 {
			for i := range bufs[r] {
				bufs[r][i] = float32(i + 1)
			}
		}
		g.Broadcast(r, 1, bufs[r])
	})
	for r := 0; r < n; r++ {
		for i := range bufs[r] {
			if bufs[r][i] != float32(i+1) {
				t.Fatalf("rank %d elem %d: got %v", r, i, bufs[r][i])
			}
		}
	}
}

// TestMeters pins the byte accounting against the analytic collective
// volumes: ring all-reduce moves 2·(n-1)·size floats in total, an
// all-to-all moves every cross-rank payload exactly once.
func TestMeters(t *testing.T) {
	const n, size = 4, 1000
	w := NewWorld(n, PerfectLink())
	g := w.NewGroup()
	bufs := make([][]float32, n)
	for r := range bufs {
		bufs[r] = make([]float32, size)
	}
	runRanks(n, func(r int) { g.AllReduce(r, bufs[r]) })
	st := w.Snapshot()
	if want := int64(2 * (n - 1) * size * 4); st.AllReduce.Bytes != want {
		t.Errorf("allreduce bytes %d, want %d", st.AllReduce.Bytes, want)
	}
	if st.AllReduce.Calls != n {
		t.Errorf("allreduce calls %d, want %d", st.AllReduce.Calls, n)
	}

	const msg = 25
	send := make([][][]float32, n)
	recv := make([][][]float32, n)
	for r := 0; r < n; r++ {
		send[r] = make([][]float32, n)
		recv[r] = make([][]float32, n)
		for j := 0; j < n; j++ {
			send[r][j] = make([]float32, msg)
			recv[r][j] = make([]float32, msg)
		}
	}
	runRanks(n, func(r int) { g.AllToAllV(r, send[r], recv[r]) })
	st = w.Snapshot()
	if want := int64(n * (n - 1) * msg * 4); st.AllToAll.Bytes != want {
		t.Errorf("alltoall bytes %d, want %d (self payloads must be free)", st.AllToAll.Bytes, want)
	}
}

// TestThrottledLinkModelsTime checks that a finite link accumulates
// modeled wire seconds while the perfect link stays at zero.
func TestThrottledLinkModelsTime(t *testing.T) {
	const n, size = 2, 1 << 12
	run := func(link Link) Totals {
		w := NewWorld(n, link)
		g := w.NewGroup()
		bufs := make([][]float32, n)
		for r := range bufs {
			bufs[r] = make([]float32, size)
		}
		runRanks(n, func(r int) { g.AllReduce(r, bufs[r]) })
		return w.Snapshot()
	}
	if st := run(PerfectLink()); st.AllReduce.ModelSec != 0 {
		t.Errorf("perfect link charged %v sec", st.AllReduce.ModelSec)
	}
	link := LinkFor(hw.BigBasin()) // NVLink fabric
	st := run(link)
	bytesPerRank := float64(2*(n-1)*size*4) / n
	want := float64(n) * (2*(n-1)*link.LatencySec + bytesPerRank/link.BandwidthBps)
	if st.AllReduce.ModelSec <= 0 || math.Abs(st.AllReduce.ModelSec-want)/want > 0.01 {
		t.Errorf("modeled %v sec, want ~%v", st.AllReduce.ModelSec, want)
	}
	if cpu := LinkFor(hw.DualSocketCPU()); cpu.Name != hw.DualSocketCPU().NIC.Name {
		t.Errorf("CPU platform link should be the NIC, got %s", cpu.Name)
	}
}

// TestConcurrentGroups runs two collectives in flight at once on separate
// groups, the pattern the hybrid trainer uses to overlap its dense
// all-reduce with the sparse-gradient all-to-all.
func TestConcurrentGroups(t *testing.T) {
	const n, size = 3, 256
	w := NewWorld(n, PerfectLink())
	ga, gb := w.NewGroup(), w.NewGroup()
	a := make([][]float32, n)
	b := make([][]float32, n)
	for r := 0; r < n; r++ {
		a[r] = make([]float32, size)
		b[r] = make([]float32, size)
		for i := range a[r] {
			a[r][i] = 1
			b[r][i] = 2
		}
	}
	runRanks(n, func(r int) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			ga.AllReduce(r, a[r])
		}()
		gb.AllReduce(r, b[r])
		wg.Wait()
	})
	for r := 0; r < n; r++ {
		if a[r][0] != n || b[r][0] != 2*n {
			t.Fatalf("rank %d: a=%v b=%v", r, a[r][0], b[r][0])
		}
	}
}

package collective

import "repro/internal/hw"

// Link models the wire connecting the ranks of a communicator: a
// per-endpoint bandwidth and a per-message latency. Collectives never
// sleep on the link — they run at memory speed — but every operation is
// priced against it and the cost accumulates in the per-op meters, so
// the same code serves both correctness tests (the zero-value
// PerfectLink prices everything at zero, i.e. an "infinitely fast" wire)
// and timing studies (a Link drawn from an hw.Platform yields the
// modeled communication seconds the perfmodel can be validated against).
type Link struct {
	Name string
	// BandwidthBps is bytes/second per endpoint direction; <= 0 means
	// infinitely fast.
	BandwidthBps float64
	// LatencySec is the per-message base latency in seconds.
	LatencySec float64
}

// PerfectLink returns the infinitely fast link (the zero value).
func PerfectLink() Link { return Link{Name: "perfect"} }

// LinkFor derives the rank-to-rank link of a platform: the NVLink fabric
// when the platform has one, otherwise its NIC (the scale-out case, where
// each rank is a server).
func LinkFor(p hw.Platform) Link {
	ic := p.RankInterconnect()
	return Link{Name: ic.Name, BandwidthBps: ic.BandwidthBps, LatencySec: ic.LatencySec}
}

// xferSec prices a transfer of the given payload split across the given
// number of messages.
func (l Link) xferSec(bytes int64, messages int) float64 {
	s := float64(messages) * l.LatencySec
	if l.BandwidthBps > 0 {
		s += float64(bytes) / l.BandwidthBps
	}
	return s
}

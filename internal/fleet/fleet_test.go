package fleet

import (
	"testing"

	"repro/internal/metrics"
)

func TestUtilizationStudySmall(t *testing.T) {
	s := DefaultUtilizationStudy(12, 1)
	s.Trainers = 4
	s.SparsePS = 4
	s.Iterations = 30
	d, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(d.TrainerCPU) != 12 || len(d.PSCPU) != 12 {
		t.Fatalf("runs recorded: %d trainer, %d ps", len(d.TrainerCPU), len(d.PSCPU))
	}
	for _, xs := range [][]float64{d.TrainerCPU, d.TrainerMem, d.TrainerNet, d.PSCPU, d.PSMem, d.PSNet} {
		for _, u := range xs {
			if u < 0 || u > 1 {
				t.Fatalf("utilization %v out of range", u)
			}
		}
	}
}

// TestFig5Shape pins the paper's Fig 5 observation across runs: trainers
// run at high utilization with modest spread; parameter servers have a
// lower mean and a wider relative distribution.
func TestFig5Shape(t *testing.T) {
	s := DefaultUtilizationStudy(25, 2)
	s.Iterations = 40
	d, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.Summarize(d.TrainerCPU)
	ps := metrics.Summarize(d.PSCPU)
	if tr.Mean <= ps.Mean {
		t.Errorf("trainer CPU mean %v must exceed PS mean %v", tr.Mean, ps.Mean)
	}
	// Coefficient of variation: PS wider than trainers.
	if ps.Mean > 0 && tr.Mean > 0 {
		if ps.Std/ps.Mean <= tr.Std/tr.Mean {
			t.Errorf("PS relative spread (%v) should exceed trainers' (%v)",
				ps.Std/ps.Mean, tr.Std/tr.Mean)
		}
	}
}

func TestUtilizationStudyRejectsZeroRuns(t *testing.T) {
	s := DefaultUtilizationStudy(0, 3)
	if _, err := s.Run(); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestSummariesTable(t *testing.T) {
	s := DefaultUtilizationStudy(5, 4)
	s.Trainers, s.SparsePS, s.Iterations = 2, 2, 20
	d, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rows := d.Summaries()
	if len(rows) != 7 {
		t.Fatalf("summary rows = %d, want header + 6", len(rows))
	}
	if rows[1][0] != "trainer" || rows[4][0] != "paramsrv" {
		t.Errorf("row groups: %v", rows)
	}
}

func TestServerCountStudy(t *testing.T) {
	th, ph, p95 := ServerCountStudy(2000, 5)
	if th.Total() != 2000 || ph.Total() != 2000 {
		t.Fatalf("histogram totals %d/%d", th.Total(), ph.Total())
	}
	// Fig 9: trainer counts concentrate (one bin >= 40%).
	maxFrac := 0.0
	for _, f := range th.Fractions() {
		if f > maxFrac {
			maxFrac = f
		}
	}
	if maxFrac < 0.4 {
		t.Errorf("trainer histogram mode %v, want >= 0.4", maxFrac)
	}
	// PS counts spread more evenly than trainers.
	psMax := 0.0
	for _, f := range ph.Fractions() {
		if f > psMax {
			psMax = f
		}
	}
	if psMax >= maxFrac {
		t.Errorf("PS histogram should be flatter: mode %v vs trainer %v", psMax, maxFrac)
	}
	if p95 < 5 || p95 > 50 {
		t.Errorf("p95 trainers = %v", p95)
	}
}

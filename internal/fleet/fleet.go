// Package fleet reproduces the paper's fleet-scale characterizations: the
// run-to-run utilization distributions of Fig 5 (hundreds of training
// runs of one ranking model at fixed scale) and the server-count
// histograms of Fig 9 (a month of workflows choosing trainer and
// parameter-server counts).
package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// UtilizationStudy drives Fig 5: the same ranking-model *type* at the
// same scale, re-run `runs` times with the configuration drift ML
// engineers introduce (feature additions/removals) plus system-level
// jitter, through the discrete-event pipeline.
type UtilizationStudy struct {
	// Fixed scale, as the paper controls for it.
	Trainers int
	SparsePS int
	Runs     int
	// Iterations per simulated run (small: utilization converges fast).
	Iterations int
	Seed       int64
}

// DefaultUtilizationStudy mirrors the paper's fixed-scale setting.
func DefaultUtilizationStudy(runs int, seed int64) UtilizationStudy {
	return UtilizationStudy{Trainers: 8, SparsePS: 8, Runs: runs, Iterations: 60, Seed: seed}
}

// UtilizationDistributions collects per-run mean utilizations for
// trainer and parameter servers across the three Fig 5 axes.
type UtilizationDistributions struct {
	TrainerCPU, TrainerMem, TrainerNet []float64
	PSCPU, PSMem, PSNet                []float64
}

// Run executes the study.
func (s UtilizationStudy) Run() (UtilizationDistributions, error) {
	if s.Runs <= 0 {
		return UtilizationDistributions{}, fmt.Errorf("fleet: runs must be positive")
	}
	rng := xrand.New(s.Seed)
	var out UtilizationDistributions
	for r := 0; r < s.Runs; r++ {
		// Same model type, drifting configuration: the engineer adds
		// or removes features and tweaks pooling between runs (§III).
		dense := 800 + rng.Intn(400)
		sparse := 16 + rng.Intn(16)
		pooled := 4 + 12*rng.Float64()
		cfg := core.Config{
			Name:          fmt.Sprintf("ranking-run%d", r),
			DenseFeatures: dense,
			Sparse:        core.UniformSparse(sparse, 2_000_000, pooled),
			EmbeddingDim:  64,
			BottomMLP:     []int{512, 256},
			TopMLP:        []int{1024, 512, 256},
			Interaction:   core.Concat,
		}
		res, err := pipeline.Run(pipeline.Config{
			Model:      cfg,
			Batch:      200,
			Trainers:   s.Trainers,
			SparsePS:   s.SparsePS,
			Iterations: s.Iterations,
			Seed:       int64(rng.Uint64()),
		})
		if err != nil {
			return UtilizationDistributions{}, err
		}
		var tc, tm, tn float64
		for _, u := range res.Trainers {
			tc += u.CPU
			tm += u.MemBW
			tn += u.Net
		}
		k := float64(len(res.Trainers))
		out.TrainerCPU = append(out.TrainerCPU, tc/k)
		out.TrainerMem = append(out.TrainerMem, tm/k)
		out.TrainerNet = append(out.TrainerNet, tn/k)
		var pc, pm, pn float64
		for _, u := range res.SparsePS {
			pc += u.CPU
			pm += u.MemBW
			pn += u.Net
		}
		k = float64(len(res.SparsePS))
		out.PSCPU = append(out.PSCPU, pc/k)
		out.PSMem = append(out.PSMem, pm/k)
		out.PSNet = append(out.PSNet, pn/k)
	}
	return out, nil
}

// Summaries renders the Fig 5 comparison: mean/std per axis per group.
func (d UtilizationDistributions) Summaries() [][]string {
	rows := [][]string{{"group", "axis", "mean", "std", "p25", "p50"}}
	addRow := func(group, axis string, xs []float64) {
		s := metrics.Summarize(xs)
		rows = append(rows, []string{group, axis,
			metrics.F2(s.Mean), metrics.F2(s.Std), metrics.F2(s.P25), metrics.F2(s.P50)})
	}
	addRow("trainer", "cpu", d.TrainerCPU)
	addRow("trainer", "membw", d.TrainerMem)
	addRow("trainer", "network", d.TrainerNet)
	addRow("paramsrv", "cpu", d.PSCPU)
	addRow("paramsrv", "membw", d.PSMem)
	addRow("paramsrv", "network", d.PSNet)
	return rows
}

// ServerCountStudy drives Fig 9: sample a month's worth of training runs
// and histogram their trainer/parameter-server counts.
func ServerCountStudy(runs int, seed int64) (trainerHist, psHist *metrics.Histogram, p95Trainers float64) {
	sampler := workload.NewFleetSampler(seed)
	trainerHist = metrics.NewHistogram(0, 55, 11)
	psHist = metrics.NewHistogram(0, 55, 11)
	var trainerCounts []float64
	for i := 0; i < runs; i++ {
		s := sampler.Sample()
		trainerHist.Add(float64(s.Trainers))
		psHist.Add(float64(s.ParamSrv))
		trainerCounts = append(trainerCounts, float64(s.Trainers))
	}
	p95Trainers = metrics.Summarize(trainerCounts).Quantile(0.95)
	return trainerHist, psHist, p95Trainers
}

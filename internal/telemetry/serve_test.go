package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServeEndpoints binds a real listener (127.0.0.1:0), then drives
// the mux in-process so the test doesn't depend on recovering the
// ephemeral port.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve/hits").Add(42)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	for path, check := range map[string]func([]byte) error{
		"/metrics": func(b []byte) error {
			var s Snapshot
			if err := json.Unmarshal(b, &s); err != nil {
				return err
			}
			if s.Get("serve/hits") != 42 {
				t.Fatalf("metrics missing counter: %s", b)
			}
			return nil
		},
		"/debug/vars": func(b []byte) error {
			var m map[string]any
			return json.Unmarshal(b, &m)
		},
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body)
		}
		if err := check(rec.Body.Bytes()); err != nil {
			t.Fatalf("%s: %v (%s)", path, err, rec.Body)
		}
	}
	// Second Serve must not panic on duplicate expvar publication.
	srv2, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv2.Shutdown(ctx)
}

// get drives the server's mux in-process and returns the recorder.
func get(t *testing.T, srv *http.Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body)
	}
	return rec
}

// TestServeHealthAndContentTypes pins /healthz and the explicit
// Content-Type headers on every JSON endpoint.
func TestServeHealthAndContentTypes(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	if rec := get(t, srv, "/healthz"); rec.Body.String() != "ok\n" {
		t.Fatalf("/healthz body %q", rec.Body.String())
	} else if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Fatalf("/healthz Content-Type %q", ct)
	}
	for _, path := range []string{"/metrics", "/timeseries"} {
		rec := get(t, srv, path)
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s Content-Type %q", path, ct)
		}
	}
	// Without WithTimeseries the endpoint serves an empty, well-formed
	// document.
	var doc struct {
		Samples []StepSample `json:"samples"`
		Marks   []SeriesMark `json:"marks"`
	}
	rec := get(t, srv, "/timeseries")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/timeseries: %v (%s)", err, rec.Body)
	}
	if doc.Samples == nil || doc.Marks == nil {
		t.Fatalf("/timeseries must serve empty arrays, got %s", rec.Body)
	}
	if len(doc.Samples) != 0 {
		t.Fatalf("unbacked /timeseries has %d samples", len(doc.Samples))
	}
}

// TestServeTimeseries wires a live ring through WithTimeseries and
// checks the served snapshot round-trips samples and marks.
func TestServeTimeseries(t *testing.T) {
	ts := NewTimeseries(16)
	ts.Append(StepSample{Step: 7, Loss: 0.5, Examples: 128, StepNS: 1e6})
	ts.Mark(7, "restore", "rolled back")
	srv, err := Serve("127.0.0.1:0", NewRegistry(), WithTimeseries(ts))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	rec := get(t, srv, "/timeseries")
	var doc struct {
		Total   uint64       `json:"total"`
		Samples []StepSample `json:"samples"`
		Marks   []SeriesMark `json:"marks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/timeseries: %v (%s)", err, rec.Body)
	}
	if doc.Total != 1 || len(doc.Samples) != 1 || doc.Samples[0].Step != 7 {
		t.Fatalf("served samples wrong: %s", rec.Body)
	}
	if len(doc.Marks) != 1 || doc.Marks[0].Kind != "restore" {
		t.Fatalf("served marks wrong: %s", rec.Body)
	}
}

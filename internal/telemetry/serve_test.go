package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestServeEndpoints binds a real listener (127.0.0.1:0), then drives
// the mux in-process so the test doesn't depend on recovering the
// ephemeral port.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve/hits").Add(42)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	for path, check := range map[string]func([]byte) error{
		"/metrics": func(b []byte) error {
			var s Snapshot
			if err := json.Unmarshal(b, &s); err != nil {
				return err
			}
			if s.Get("serve/hits") != 42 {
				t.Fatalf("metrics missing counter: %s", b)
			}
			return nil
		},
		"/debug/vars": func(b []byte) error {
			var m map[string]any
			return json.Unmarshal(b, &m)
		},
	} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, rec.Code, rec.Body)
		}
		if err := check(rec.Body.Bytes()); err != nil {
			t.Fatalf("%s: %v (%s)", path, err, rec.Body)
		}
	}
	// Second Serve must not panic on duplicate expvar publication.
	srv2, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = srv2.Shutdown(ctx)
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FlightRecorderConfig configures OpenFlightRecorder. The zero value of
// every field has a sensible default; only Dir must be set for black-box
// bundles to be written (without it the recorder still samples, detects
// and marks, which is what the benchreport overhead specs measure).
type FlightRecorderConfig struct {
	// Dir is where blackbox-<step>/ bundles are dumped. Empty disables
	// dumping (findings are still recorded in memory).
	Dir string
	// Capacity is the sample-ring depth in steps (DefaultTimeseriesCap).
	Capacity int
	// WindowSteps is K for the bundle's last-K-steps Chrome trace
	// window and time-series tail (default 64).
	WindowSteps int
	// DebounceSteps is the per-kind refractory window
	// (DefaultDebounceSteps); findings of a kind that already fired
	// within the window are suppressed.
	DebounceSteps int
	// MaxBundles caps how many bundles one recorder writes (default 8);
	// further triggers record findings but skip the dump.
	MaxBundles int
	// Tracer, when set, supplies the per-phase ns deltas (histogram
	// sums) for each sample and the span window for bundles.
	Tracer *Tracer
	// Registry, when set, supplies ingest-starvation and checkpoint
	// meters per sample and the metrics snapshot for bundles.
	Registry *Registry
	// Ranks gates the straggler detector (needs > 1).
	Ranks int
	// Detector thresholds; zero means the package default.
	LossZScore     float64
	DipFraction    float64
	StarveFraction float64
	StragglerIndex float64
	WarmupSteps    int
	// SLOStepNS, when > 0, fires AnomalySLOBreach on any step slower
	// than this wall-time budget.
	SLOStepNS int64
	// Logf, when set, receives one line per recorded finding and dump.
	Logf func(format string, args ...any)
}

// FlightRecorder is the continuous-monitoring front end: trainers feed
// it one StepSample per step (ObserveStep, zero-alloc in steady state),
// it maintains the time-series ring, runs the online anomaly detectors,
// and on any finding — or an externally reported RankError / manual
// trigger — atomically dumps a blackbox-<step>/ bundle with the trace
// window, metrics snapshot, time-series tail and a doctor report.
//
// ObserveStep/RecordFault/Mark are meant to be called from the training
// goroutine between steps (bundle dumps snapshot the tracer, which
// requires quiescent recording shards); the accessor methods and the
// /timeseries endpoint are safe to use concurrently.
type FlightRecorder struct {
	cfg FlightRecorderConfig
	ts  *Timeseries
	det anomalyState

	starved   *Counter // ingest/starved_ns
	ckptBytes *Counter // ckpt/bytes_written
	prevStarved,
	prevCkpt int64
	prevPhase [NumPhases]int64

	mu       sync.Mutex
	findings []AnomalyFinding
	bundles  []string
	lastFire [numAnomalyKinds]int64 // last recorded step per kind, +1 (0 = never)
	scratch  []AnomalyFinding       // reused per-step findings buffer
}

// OpenFlightRecorder validates cfg, creates cfg.Dir when set, and
// returns a recorder ready to observe steps.
func OpenFlightRecorder(cfg FlightRecorderConfig) (*FlightRecorder, error) {
	if cfg.WindowSteps <= 0 {
		cfg.WindowSteps = 64
	}
	if cfg.DebounceSteps <= 0 {
		cfg.DebounceSteps = DefaultDebounceSteps
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 8
	}
	if cfg.LossZScore <= 0 {
		cfg.LossZScore = DefaultLossZScore
	}
	if cfg.DipFraction <= 0 {
		cfg.DipFraction = DefaultDipFraction
	}
	if cfg.StarveFraction <= 0 {
		cfg.StarveFraction = DefaultStarveFraction
	}
	if cfg.StragglerIndex <= 0 {
		cfg.StragglerIndex = StragglerIndexThreshold
	}
	if cfg.WarmupSteps <= 0 {
		cfg.WarmupSteps = DefaultWarmupSteps
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("telemetry: flight recorder dir: %w", err)
		}
	}
	fr := &FlightRecorder{
		cfg: cfg,
		ts:  NewTimeseries(cfg.Capacity),
		det: anomalyState{cfg: anomalyConfig{
			lossZ:      cfg.LossZScore,
			dipFrac:    cfg.DipFraction,
			starveFrac: cfg.StarveFraction,
			stragIdx:   cfg.StragglerIndex,
			sloStepNS:  cfg.SLOStepNS,
			warmup:     cfg.WarmupSteps,
			ranks:      cfg.Ranks,
		}},
		scratch: make([]AnomalyFinding, 0, 8),
	}
	if cfg.Registry != nil {
		fr.starved = cfg.Registry.Counter("ingest/starved_ns")
		fr.ckptBytes = cfg.Registry.Counter("ckpt/bytes_written")
	}
	return fr, nil
}

// Timeseries returns the recorder's sample ring (also what the
// /timeseries endpoint serves). Nil-safe.
func (fr *FlightRecorder) Timeseries() *Timeseries {
	if fr == nil {
		return nil
	}
	return fr.ts
}

// ObserveStep records one step sample: it derives the meter-backed
// fields (starvation, checkpoint bytes, per-phase ns) as deltas since
// the previous step, appends the sample to the ring, runs the anomaly
// detectors, and — on a non-debounced finding — dumps a black-box
// bundle. Nil-safe; allocation-free unless a finding fires.
func (fr *FlightRecorder) ObserveStep(s StepSample) {
	if fr == nil {
		return
	}
	if s.ClockNS == 0 {
		s.ClockNS = Now()
	}
	if fr.starved != nil {
		v := fr.starved.Load()
		s.StarvedNS = v - fr.prevStarved
		fr.prevStarved = v
	}
	if fr.ckptBytes != nil {
		v := fr.ckptBytes.Load()
		s.CkptBytes = v - fr.prevCkpt
		fr.prevCkpt = v
	}
	if fr.cfg.Tracer != nil {
		var sums [NumPhases]int64
		fr.cfg.Tracer.PhaseSumsNS(&sums)
		for p := range sums {
			s.PhaseNS[p] = sums[p] - fr.prevPhase[p]
		}
		fr.prevPhase = sums
	}
	fr.ts.Append(s)

	fr.mu.Lock()
	found := fr.det.observe(s, fr.scratch[:0])
	fr.mu.Unlock()
	for _, f := range found {
		fr.recordFinding(f)
	}
}

// RecordFault reports a failed step (typically a collective RankError
// surfaced by the hybrid trainer or RunElastic — the caller localizes
// step via collective.AsRankError, which this package cannot import).
// It records a maximum-severity AnomalyRankFault finding at that step
// and triggers a bundle dump.
func (fr *FlightRecorder) RecordFault(step int64, err error) {
	if fr == nil || err == nil {
		return
	}
	fr.recordFinding(AnomalyFinding{
		Kind: AnomalyRankFault, Step: step, Severity: 10,
		Detail: err.Error(),
	})
}

// Mark annotates the time-series with a non-finding event (world
// rebuild, checkpoint restore, config change). Marks do not trigger
// bundle dumps.
func (fr *FlightRecorder) Mark(step int64, kind, detail string) {
	if fr == nil {
		return
	}
	fr.ts.Mark(step, kind, detail)
	if fr.cfg.Logf != nil {
		fr.cfg.Logf("flightrec: mark %s @ step %d: %s", kind, step, detail)
	}
}

// recordFinding applies the per-kind debounce, stores the finding,
// mirrors it as a time-series mark, and dumps a bundle.
func (fr *FlightRecorder) recordFinding(f AnomalyFinding) {
	fr.mu.Lock()
	if last := fr.lastFire[f.Kind]; last != 0 && f.Step-(last-1) < int64(fr.cfg.DebounceSteps) {
		fr.mu.Unlock()
		return
	}
	fr.lastFire[f.Kind] = f.Step + 1
	fr.findings = append(fr.findings, f)
	fr.mu.Unlock()

	fr.ts.Mark(f.Step, f.Kind.String(), f.Detail)
	if fr.cfg.Logf != nil {
		fr.cfg.Logf("flightrec: %s", f.String())
	}
	if fr.cfg.Dir != "" {
		if path, err := fr.dump(f); err != nil {
			if fr.cfg.Logf != nil {
				fr.cfg.Logf("flightrec: bundle dump failed: %v", err)
			}
		} else if path != "" && fr.cfg.Logf != nil {
			fr.cfg.Logf("flightrec: black box dumped to %s", path)
		}
	}
}

// Findings returns a copy of all recorded (non-debounced) findings in
// order.
func (fr *FlightRecorder) Findings() []AnomalyFinding {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]AnomalyFinding(nil), fr.findings...)
}

// FindingsOf returns the recorded findings of one kind.
func (fr *FlightRecorder) FindingsOf(kind AnomalyKind) []AnomalyFinding {
	var out []AnomalyFinding
	for _, f := range fr.Findings() {
		if f.Kind == kind {
			out = append(out, f)
		}
	}
	return out
}

// Bundles returns the paths of the black-box bundles written so far.
func (fr *FlightRecorder) Bundles() []string {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return append([]string(nil), fr.bundles...)
}

// Dump writes a black-box bundle for the given step outside the finding
// path (manual trigger, e.g. on demand from a signal handler). It
// counts against MaxBundles.
func (fr *FlightRecorder) Dump(step int64, reason string) (string, error) {
	if fr == nil {
		return "", nil
	}
	if fr.cfg.Dir == "" {
		return "", fmt.Errorf("telemetry: flight recorder has no dump dir")
	}
	return fr.dump(AnomalyFinding{Kind: AnomalyRankFault, Step: step, Detail: reason})
}

// BundleManifest is the bundle.json schema: what triggered the dump and
// which files the bundle holds.
type BundleManifest struct {
	Schema  string         `json:"schema"` // "recsim-blackbox/1"
	Step    int64          `json:"step"`
	Trigger AnomalyFinding `json:"trigger"`
	Files   []string       `json:"files"`
}

// bundleSchemaVersion identifies the bundle layout; bump on breaking
// changes so readers can dispatch.
const bundleSchemaVersion = "recsim-blackbox/1"

// dump writes blackbox-<step>/ atomically: everything lands in a
// temporary directory first, then one os.Rename publishes it — a
// half-written bundle can never be observed under its final name
// (the same crash-atomicity idiom the checkpoint store uses).
func (fr *FlightRecorder) dump(trigger AnomalyFinding) (string, error) {
	final := filepath.Join(fr.cfg.Dir, fmt.Sprintf("blackbox-%d", trigger.Step))

	fr.mu.Lock()
	if len(fr.bundles) >= fr.cfg.MaxBundles {
		fr.mu.Unlock()
		return "", nil
	}
	for _, b := range fr.bundles {
		if b == final {
			fr.mu.Unlock()
			return final, nil
		}
	}
	fr.mu.Unlock()

	tmp := final + fmt.Sprintf(".tmp-%d", Now())
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	files := []string{"timeseries.json", "metrics.json", "trace.json", "doctor.txt"}

	// Time-series tail (the full held window; the ring already bounds it).
	if err := writeBundleFile(tmp, "timeseries.json", fr.ts.WriteJSON); err != nil {
		return "", err
	}

	// Registry snapshot.
	if err := writeBundleFile(tmp, "metrics.json", func(w io.Writer) error {
		if fr.cfg.Registry == nil {
			_, err := io.WriteString(w, "{}\n")
			return err
		}
		return fr.cfg.Registry.WriteJSON(w)
	}); err != nil {
		return "", err
	}

	// Chrome trace of the last-K-steps window, plus the doctor's read
	// of the full snapshot.
	snap := fr.cfg.Tracer.Snapshot()
	var cutoff int64
	if tail := fr.ts.Tail(fr.cfg.WindowSteps); len(tail) > 0 {
		cutoff = tail[0].ClockNS - tail[0].StepNS
	}
	win := snap
	win.Spans = nil
	for _, sp := range snap.Spans {
		if sp.End >= cutoff {
			win.Spans = append(win.Spans, sp)
		}
	}
	if err := writeBundleFile(tmp, "trace.json", func(w io.Writer) error {
		return WriteChromeTrace(w, win)
	}); err != nil {
		return "", err
	}

	var met Snapshot
	if fr.cfg.Registry != nil {
		met = fr.cfg.Registry.Snapshot()
	}
	report := Diagnose(DoctorInput{Snap: snap, Metrics: met})
	if err := writeBundleFile(tmp, "doctor.txt", func(w io.Writer) error {
		if _, err := io.WriteString(w, report.Render()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "\ntrigger: %s\n", trigger)
		return err
	}); err != nil {
		return "", err
	}

	man := BundleManifest{
		Schema: bundleSchemaVersion, Step: trigger.Step,
		Trigger: trigger, Files: files,
	}
	if err := writeBundleFile(tmp, "bundle.json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	}); err != nil {
		return "", err
	}

	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	fr.mu.Lock()
	fr.bundles = append(fr.bundles, final)
	fr.mu.Unlock()
	return final, nil
}

// writeBundleFile creates name under dir, runs fill, and closes,
// reporting the first error.
func writeBundleFile(dir, name string, fill func(io.Writer) error) error {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

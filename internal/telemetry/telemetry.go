// Package telemetry is the unified observability layer of the training
// stack: a zero-allocation span tracer, a counter/gauge registry, and the
// exporters (Chrome trace_event JSON, plain-text timelines, expvar/pprof
// HTTP) that make one training step visible end to end.
//
// The source paper is a performance *characterization* study — its whole
// contribution is knowing where DLRM training time goes across lookup,
// compute, and communication. This package is the repository's
// measurement substrate for that discipline: every hot path (ingest
// read/decode/shuffle/assemble, embedding lookup, all-to-all, dense
// forward/backward, all-reduce, sparse scatter, optimizer) records spans
// into fixed-capacity per-shard slabs, and every scattered meter
// (collective bytes/calls, ingest MB/s, ring occupancy, starvation,
// dedup ratio) lives behind one Registry of cheap atomic instruments.
// Span timings can then be joined against perfmodel's analytic phase
// estimates (AttributionReport), reproducing the paper's time-breakdown
// figures from live traces.
//
// Design constraints, in order:
//
//  1. Recording must be allocation- and lock-free: Begin reads the
//     clock; End writes one pre-allocated slot. The steady-state
//     training step stays 0 allocs/step with tracing enabled (guarded by
//     AllocsPerRun tests at the repository root).
//  2. Every duration in the system shares one clock: nanoseconds since
//     the package's process-start epoch, read monotonically (Now). This
//     is what lets ingest starvation, hybrid exposed-communication time,
//     and step wall time be compared and summed without wall-clock skew.
//  3. A nil *Tracer (and a nil instrument) is a valid no-op, so hot
//     paths instrument unconditionally and pay one predictable branch
//     when telemetry is off.
//
// The package deliberately imports no other internal package except
// internal/metrics (pure rendering), so core, collective, ingest,
// hybrid, and perfmodel can all depend on it without cycles.
package telemetry

import (
	"fmt"
	"time"
)

// epoch anchors the package clock at process start. All telemetry
// timestamps are nanoseconds since this instant, read via the runtime's
// monotonic clock — never wall time, so clock steps/skew cannot break
// span arithmetic.
var epoch = time.Now()

// Now returns nanoseconds elapsed since the telemetry epoch, from the
// monotonic clock. It allocates nothing.
func Now() int64 { return int64(time.Since(epoch)) }

// Phase is the span taxonomy: one label per hot-path segment of a
// training step, from shard read to optimizer update. The set mirrors
// the operator categories of the paper's breakdown figures.
type Phase uint8

const (
	// PhaseStep delimits one whole training step on a shard; the other
	// phases tile its interior.
	PhaseStep Phase = iota
	// PhaseIngestRead is shard-file IO (ReadAt + bandwidth throttle).
	PhaseIngestRead
	// PhaseIngestDecode parses a shard image into example blocks.
	PhaseIngestDecode
	// PhaseIngestShuffle admits decoded examples into the bounded
	// shuffle reservoir.
	PhaseIngestShuffle
	// PhaseIngestAssemble fills a recycled MiniBatch from the reservoir
	// (including the optional RecD dedup build).
	PhaseIngestAssemble
	// PhaseBatchWait is the trainer blocked on an empty prefetch ring —
	// the span form of the starvation meter.
	PhaseBatchWait
	// PhaseEmbLookup is the pooled embedding-table gather.
	PhaseEmbLookup
	// PhaseAllToAll is the pooled-row / pooled-gradient exchange.
	PhaseAllToAll
	// PhaseDenseFwd is the dense forward pass (bottom MLP, interaction,
	// top MLP).
	PhaseDenseFwd
	// PhaseLoss is loss + logit-gradient computation.
	PhaseLoss
	// PhaseDenseBwd is the dense backward pass.
	PhaseDenseBwd
	// PhaseAllReduce is dense-gradient synchronization. On a step shard
	// it is the *exposed* time (blocked waiting); an overlapped
	// all-reduce records its full duration on a background shard.
	PhaseAllReduce
	// PhaseSparseScatter is the embedding-gradient scatter + sparse
	// optimizer application.
	PhaseSparseScatter
	// PhaseOptimizer is the dense optimizer update.
	PhaseOptimizer
	// PhaseCheckpoint is a durable-checkpoint write (internal/ckpt):
	// dense + touched-row serialization, hashing, and disk IO. It runs
	// between steps, so attribution reports it outside step windows.
	PhaseCheckpoint
	// PhaseRestore is a checkpoint restore (manifest verification plus
	// the base-and-delta chain replay into live parameters).
	PhaseRestore

	// NumPhases bounds the taxonomy (for fixed-size per-phase arrays).
	NumPhases
)

var phaseNames = [NumPhases]string{
	"step",
	"ingest_read",
	"ingest_decode",
	"ingest_shuffle",
	"ingest_assemble",
	"batch_wait",
	"emb_lookup",
	"all_to_all",
	"dense_fwd",
	"loss",
	"dense_bwd",
	"all_reduce",
	"sparse_scatter",
	"optimizer",
	"checkpoint",
	"restore",
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

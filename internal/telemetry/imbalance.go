package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// RankStat is one rank's share of the straggler analysis: its step wall
// time, how long it sat blocked at collective rendezvous points, and the
// self time left over — the rank's own work plus any injected stall.
//
// Synchronous collectives make stragglers invisible in span durations
// (every rank's all-to-all stretches to the slowest rank's arrival), so
// the join runs the other way: a straggler reaches every barrier last
// and therefore *waits the least*, while its peers absorb the lateness
// as rendezvous wait. Subtracting wait from step wall recovers each
// rank's true self time.
type RankStat struct {
	Rank  int
	Name  string
	Steps int
	// Seconds, summed over the rank's steps.
	StepSec float64
	WaitSec float64
	SelfSec float64
	// Per-step wall-time quantiles from the rank's step histogram.
	StepP50 float64
	StepP99 float64
}

// ImbalanceReport joins per-rank phase attribution with the collective
// rendezvous-wait meters into the paper-style trainer-imbalance view.
type ImbalanceReport struct {
	Ranks []RankStat
	// Index is max(self)/mean(self) across ranks — 1.0 for a perfectly
	// balanced world; StragglerIndexThreshold flags a straggler.
	Index float64
	// Slowest is the rank with the largest self time (-1 when empty).
	Slowest int
	// PhaseIndex/PhaseSlowest give the same max/mean attribution per
	// phase (index 0 unused — PhaseStep is covered by Index).
	PhaseIndex   [NumPhases]float64
	PhaseSlowest [NumPhases]int
}

// StragglerIndexThreshold is the imbalance index above which a run is
// classified straggler-bound. Balanced runs measure ~1.0–1.1 even under
// scheduler noise (the index is a ratio of whole-run totals); a rank
// stalled a few percent of step time already clears 1.25.
const StragglerIndexThreshold = 1.25

// rankWaitNs extracts the per-rank rendezvous wait meters
// ("collective/rank<k>/wait_ns") from a metrics snapshot.
func rankWaitNs(s Snapshot) map[int]int64 {
	out := map[int]int64{}
	for _, m := range s.Metrics {
		rest, ok := strings.CutPrefix(m.Name, "collective/rank")
		if !ok {
			continue
		}
		numStr, ok := strings.CutSuffix(rest, "/wait_ns")
		if !ok {
			continue
		}
		k, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		out[k] = m.Value
	}
	return out
}

// Imbalance computes the straggler report for a run: the trace snapshot
// supplies per-rank step windows and phase attribution (step shards in
// ascending shard order are ranks 0..n-1, the hybrid trainer's layout),
// and the metrics snapshot supplies the collective wait meters. With
// overlapped all-reduce (detected by background all-reduce spans) the
// background goroutine's barrier waits are unmetered — they hide under
// compute — and the rank's exposed all-reduce join span counts as wait
// instead: it is exactly the time the critical path sat blocked on the
// collective. SelfSec is clamped at a floor of zero.
func Imbalance(snap TraceSnapshot, ms Snapshot) ImbalanceReport {
	attr := Attribute(snap)
	waits := rankWaitNs(ms)
	overlapped := attr.Background[PhaseAllReduce] > 0
	rep := ImbalanceReport{Slowest: -1}
	for i, sa := range attr.Shards {
		wait := float64(waits[i]) / 1e9
		if overlapped {
			wait += float64(sa.Phases[PhaseAllReduce]) / 1e9
		}
		step := float64(sa.StepNS) / 1e9
		self := step - wait
		if self < 0 {
			self = 0
		}
		sh := snap.ShardPhaseHist(sa.Shard, PhaseStep)
		rep.Ranks = append(rep.Ranks, RankStat{
			Rank: i, Name: sa.Name, Steps: sa.Steps,
			StepSec: step, WaitSec: wait, SelfSec: self,
			StepP50: float64(sh.Quantile(0.50)) / 1e9,
			StepP99: float64(sh.Quantile(0.99)) / 1e9,
		})
	}
	var maxSelf, sumSelf float64
	for _, r := range rep.Ranks {
		sumSelf += r.SelfSec
		if r.SelfSec > maxSelf {
			maxSelf = r.SelfSec
			rep.Slowest = r.Rank
		}
	}
	if n := len(rep.Ranks); n > 0 && sumSelf > 0 {
		rep.Index = maxSelf / (sumSelf / float64(n))
	}
	for p := Phase(1); p < NumPhases; p++ {
		var maxP, sumP float64
		rep.PhaseSlowest[p] = -1
		for i, sa := range attr.Shards {
			v := float64(sa.Phases[p])
			sumP += v
			if v > maxP {
				maxP = v
				rep.PhaseSlowest[p] = i
			}
		}
		if n := len(attr.Shards); n > 0 && sumP > 0 {
			rep.PhaseIndex[p] = maxP / (sumP / float64(n))
		}
	}
	return rep
}

// Straggling reports whether the index crosses the straggler threshold.
func (r ImbalanceReport) Straggling() bool {
	return len(r.Ranks) > 1 && r.Index >= StragglerIndexThreshold
}

// Render returns the per-rank table plus the index summary.
func (r ImbalanceReport) Render() string {
	var b strings.Builder
	rows := [][]string{{"rank", "steps", "step s", "wait s", "self s", "step p50 ms", "step p99 ms"}}
	for _, rk := range r.Ranks {
		rows = append(rows, []string{
			fmt.Sprintf("%d (%s)", rk.Rank, rk.Name), fmt.Sprintf("%d", rk.Steps),
			metrics.F(rk.StepSec), metrics.F(rk.WaitSec), metrics.F(rk.SelfSec),
			metrics.F(rk.StepP50 * 1e3), metrics.F(rk.StepP99 * 1e3),
		})
	}
	b.WriteString(metrics.Table(rows))
	fmt.Fprintf(&b, "imbalance index %.2f (max self / mean self; straggler threshold %.2f)",
		r.Index, StragglerIndexThreshold)
	if r.Slowest >= 0 {
		fmt.Fprintf(&b, ", slowest rank %d", r.Slowest)
	}
	b.WriteString("\n")
	var phased [][]string
	for p := Phase(1); p < NumPhases; p++ {
		if r.PhaseIndex[p] > 0 && r.PhaseSlowest[p] >= 0 {
			phased = append(phased, []string{
				p.String(), metrics.F2(r.PhaseIndex[p]), fmt.Sprintf("%d", r.PhaseSlowest[p]),
			})
		}
	}
	if len(phased) > 0 {
		b.WriteString("per-phase imbalance (slowest-rank attribution):\n")
		b.WriteString(metrics.Table(append([][]string{{"phase", "max/mean", "slowest rank"}}, phased...)))
	}
	return b.String()
}

// TableSkew summarizes one embedding table's hot-row skew, fed from the
// per-row access counts the trace collector keeps (sorted descending).
type TableSkew struct {
	Table string
	// Rows is the number of rows with at least one access; Lookups the
	// total access count.
	Rows    int
	Lookups uint64
	// Top1Share / Top10Share are the lookup fractions served by the
	// hottest 1% / 10% of accessed rows — the access locality MTrainS
	// exploits for tier placement and RecD for dedup.
	Top1Share  float64
	Top10Share float64
	MaxRow     uint64
	// Hist is the distribution of per-row access counts.
	Hist Histogram
}

// SkewFromRowCounts builds the skew summary from raw per-row access
// counts (any order; zero rows are ignored).
func SkewFromRowCounts(table string, counts []uint64) TableSkew {
	sorted := make([]uint64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			sorted = append(sorted, c)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	sk := TableSkew{Table: table, Rows: len(sorted)}
	for _, c := range sorted {
		sk.Lookups += c
		sk.Hist.Record(int64(c))
	}
	if len(sorted) == 0 || sk.Lookups == 0 {
		return sk
	}
	sk.MaxRow = sorted[0]
	share := func(frac float64) float64 {
		n := int(frac * float64(len(sorted)))
		if n < 1 {
			n = 1
		}
		var sum uint64
		for _, c := range sorted[:n] {
			sum += c
		}
		return float64(sum) / float64(sk.Lookups)
	}
	sk.Top1Share = share(0.01)
	sk.Top10Share = share(0.10)
	return sk
}

package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing atomic instrument. Values are
// int64; durations are recorded as nanoseconds, bytes as bytes. A nil
// *Counter no-ops, so optional instrumentation needs no branches at the
// call site.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Reset zeroes the counter — for per-subsystem measurement windows
// (deprecated ResetMeters shims). Prefer Registry.Reset.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Load returns the current value (0 for nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument. A nil *Gauge no-ops.
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetOnce stores v only if the gauge is still zero (first-write-wins;
// used for "first event" timestamps) and reports whether it stored.
func (g *Gauge) SetOnce(v int64) bool {
	if g == nil {
		return false
	}
	return g.v.CompareAndSwap(0, v)
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is the unified meter store: named counters, gauges, and
// snapshot-time functions behind one namespace. Instrument lookup
// (Counter, Gauge) takes a lock and may allocate — do it once at
// construction and keep the returned pointer; the instruments themselves
// are single atomic words with no per-operation allocation.
//
// Names are slash-scoped by convention: "collective/allreduce/bytes",
// "ingest/bytes_read", "hybrid/step_ns".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]func() Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]func() Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// RegisterFunc installs a snapshot-time metric: fn is evaluated on every
// Snapshot. Use it to surface externally owned counters (embedding-table
// lookup stripes, ring depths) without copying them on the hot path.
func (r *Registry) RegisterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// RegisterHist installs a snapshot-time histogram source: fn (typically
// a Tracer.PhaseHist closure) is evaluated on every Snapshot and, when
// the histogram is non-empty, expands into quantile metrics under the
// given name — <name>/count, /mean_ns, /p50_ns, /p95_ns, /p99_ns,
// /p999_ns, /max_ns. Empty histograms are omitted so idle phases do not
// flood the snapshot.
func (r *Registry) RegisterHist(name string, fn func() Histogram) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = fn
}

// RegisterPhaseHists exposes every phase latency distribution of a
// tracer in the registry under "phase/<phase name>", so /metrics and
// Snapshot().Render() carry p50/p95/p99/p999 per phase.
func RegisterPhaseHists(r *Registry, t *Tracer) {
	if r == nil || t == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		p := p
		r.RegisterHist("phase/"+p.String(), func() Histogram { return t.PhaseHist(p) })
	}
}

// Metric is one named value in a snapshot.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time copy of every registry instrument, sorted
// by name, stamped with the time it was resolved.
type Snapshot struct {
	// TakenAt is the wall-clock resolution time (RFC3339Nano, UTC).
	TakenAt string `json:"taken_at,omitempty"`
	// ClockNS is the telemetry clock (Now) at resolution time, the
	// timebase every span and duration metric shares.
	ClockNS int64    `json:"clock_ns,omitempty"`
	Metrics []Metric `json:"metrics"`
}

// Snapshot reads every instrument (and snapshot function) atomically per
// instrument. It allocates; take snapshots at measurement boundaries,
// not inside hot loops.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	ms := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.funcs))
	for n, c := range r.counters {
		ms = append(ms, Metric{n, c.Load()})
	}
	for n, g := range r.gauges {
		ms = append(ms, Metric{n, g.Load()})
	}
	fns := make([]Metric, 0, len(r.funcs))
	for n := range r.funcs {
		fns = append(fns, Metric{Name: n})
	}
	funcs := r.funcs
	histNames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	hists := r.hists
	r.mu.Unlock()
	// Evaluate functions and histograms outside the lock: they may read
	// other systems.
	for i := range fns {
		fns[i].Value = funcs[fns[i].Name]()
	}
	ms = append(ms, fns...)
	for _, n := range histNames {
		h := hists[n]()
		if h.Count() == 0 {
			continue
		}
		q := h.Summary()
		ms = append(ms,
			Metric{n + "/count", int64(q.Count)},
			Metric{n + "/mean_ns", int64(q.Mean)},
			Metric{n + "/p50_ns", q.P50},
			Metric{n + "/p95_ns", q.P95},
			Metric{n + "/p99_ns", q.P99},
			Metric{n + "/p999_ns", q.P999},
			Metric{n + "/max_ns", q.Max},
		)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return Snapshot{
		TakenAt: time.Now().UTC().Format(time.RFC3339Nano),
		ClockNS: Now(),
		Metrics: ms,
	}
}

// Reset zeroes every counter and gauge (snapshot functions are left
// alone — they mirror external state). This supersedes the per-subsystem
// ResetMeters methods: one call opens a fresh measurement window across
// every absorbed meter.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
}

// Value returns the named metric and whether it exists.
func (s Snapshot) Value(name string) (int64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// Get returns the named metric or 0.
func (s Snapshot) Get(name string) int64 {
	v, _ := s.Value(name)
	return v
}

// Sub returns this snapshot minus prev, metric-wise — the windowed view
// between two snapshots. Metrics absent from prev pass through.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	old := make(map[string]int64, len(prev.Metrics))
	for _, m := range prev.Metrics {
		old[m.Name] = m.Value
	}
	out := Snapshot{TakenAt: s.TakenAt, ClockNS: s.ClockNS, Metrics: make([]Metric, len(s.Metrics))}
	for i, m := range s.Metrics {
		out.Metrics[i] = Metric{m.Name, m.Value - old[m.Name]}
	}
	return out
}

// Render returns the snapshot as an aligned two-column table, headed by
// the resolution timestamp.
func (s Snapshot) Render() string {
	rows := [][]string{{"metric", "value"}}
	for _, m := range s.Metrics {
		rows = append(rows, []string{m.Name, fmt.Sprintf("%d", m.Value)})
	}
	head := ""
	if s.TakenAt != "" {
		head = fmt.Sprintf("snapshot at %s (clock %.3f s)\n", s.TakenAt, float64(s.ClockNS)/1e9)
	}
	return head + metrics.Table(rows)
}

// WriteJSON serializes a snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// expvarMu guards duplicate expvar names across multiple Serve calls
// in one process (expvar.Publish panics on re-publication).
var expvarMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name, so
// /debug/vars carries a live snapshot. Re-publishing an existing name is
// a no-op (expvar forbids replacement).
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot().Metrics }))
}

// Handler returns an http.Handler serving the registry snapshot as JSON.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// serveOpts collects the optional Serve wiring.
type serveOpts struct {
	ts *Timeseries
}

// ServeOption configures optional endpoints on Serve.
type ServeOption func(*serveOpts)

// WithTimeseries backs the /timeseries endpoint with the given ring
// (typically FlightRecorder.Timeseries()). Without this option the
// endpoint still exists and serves an empty, well-formed document.
func WithTimeseries(ts *Timeseries) ServeOption {
	return func(o *serveOpts) { o.ts = ts }
}

// Serve starts an HTTP endpoint with the process profile and the
// registry: /debug/vars (expvar, including this registry under
// "telemetry"), /debug/pprof/* (the standard profiles), /metrics
// (the registry snapshot as JSON), /timeseries (the per-step flight-
// recorder ring as JSON; see WithTimeseries) and /healthz (liveness).
// It returns the running server; the caller shuts it down. The
// listener is bound synchronously, so a returned nil error means the
// endpoint is live.
func Serve(addr string, r *Registry, opts ...ServeOption) (*http.Server, error) {
	var o serveOpts
	for _, opt := range opts {
		opt(&o)
	}
	r.PublishExpvar("telemetry")
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/timeseries", o.ts.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	srv := &http.Server{Addr: addr, Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	srv.Addr = ln.Addr().String() // report the resolved port for ":0"
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}

package telemetry

import (
	"encoding/json"
	"io"
)

// chromeEvent is one trace_event entry in the Chrome/Perfetto JSON object
// format. Timestamps and durations are microseconds ("ts"/"dur"); "ph"
// is "X" for complete events and "M" for metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// phaseCategory buckets phases for Chrome's category filter UI.
func phaseCategory(p Phase) string {
	switch p {
	case PhaseIngestRead, PhaseIngestDecode, PhaseIngestShuffle, PhaseIngestAssemble, PhaseBatchWait:
		return "ingest"
	case PhaseAllToAll, PhaseAllReduce:
		return "comm"
	case PhaseStep:
		return "step"
	case PhaseCheckpoint, PhaseRestore:
		return "durability"
	default:
		return "compute"
	}
}

// WriteChromeTrace serializes the snapshot in Chrome trace_event JSON
// (object form), loadable in chrome://tracing and Perfetto. Every tracer
// shard becomes a thread (tid = shard index) under pid 0, labeled with
// its shard name via thread_name metadata events.
func WriteChromeTrace(w io.Writer, s TraceSnapshot) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	for i, name := range s.Shards {
		args := map[string]any{"name": name}
		// Attach the shard's per-phase latency quantiles to its
		// thread_name metadata (extra Args keys keep the event schema the
		// validators pin), so the sidecar carries the tail distributions
		// alongside the raw spans.
		for p := Phase(0); p < NumPhases; p++ {
			h := s.ShardPhaseHist(i, p)
			if h.Count() == 0 {
				continue
			}
			q := h.Summary()
			args[p.String()+"_quantiles"] = map[string]any{
				"count": q.Count, "mean_ns": int64(q.Mean),
				"p50_ns": q.P50, "p95_ns": q.P95, "p99_ns": q.P99,
				"p999_ns": q.P999, "max_ns": q.Max,
			}
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  0,
			TID:  i,
			Args: args,
		})
	}
	for _, sp := range s.Spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: sp.Phase.String(),
			Cat:  phaseCategory(sp.Phase),
			Ph:   "X",
			TS:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.End-sp.Start) / 1e3,
			PID:  0,
			TID:  int(sp.Shard),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

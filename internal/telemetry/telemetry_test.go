package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		n := p.String()
		if n == "" || strings.HasPrefix(n, "Phase(") {
			t.Fatalf("phase %d has no name", p)
		}
		if seen[n] {
			t.Fatalf("duplicate phase name %q", n)
		}
		seen[n] = true
	}
	if got := Phase(200).String(); got != "Phase(200)" {
		t.Fatalf("out-of-range phase name = %q", got)
	}
}

func TestNowMonotone(t *testing.T) {
	a := Now()
	b := Now()
	if b < a {
		t.Fatalf("Now went backwards: %d then %d", a, b)
	}
}

func TestTracerBeginEnd(t *testing.T) {
	tr := NewTracer(2, 8)
	tok := tr.Begin(PhaseDenseFwd)
	if end := tr.End(1, tok); end < tok.Start() {
		t.Fatalf("end %d before start %d", end, tok.Start())
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(snap.Spans))
	}
	sp := snap.Spans[0]
	if sp.Phase != PhaseDenseFwd || sp.Shard != 1 || sp.Dur() < 0 {
		t.Fatalf("bad span %+v", sp)
	}
}

// TestTracerNextTilesExactly is the clock-base guarantee behind the
// attribution report: chained segments share boundary timestamps, so
// interior phases sum to the enclosing interval with zero gap.
func TestTracerNextTiles(t *testing.T) {
	tr := NewTracer(1, 16)
	tok := tr.Begin(PhaseEmbLookup)
	tok = tr.Next(0, tok, PhaseDenseFwd)
	tok = tr.Next(0, tok, PhaseDenseBwd)
	tr.End(0, tok)
	snap := tr.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	for i := 1; i < len(snap.Spans); i++ {
		if snap.Spans[i].Start != snap.Spans[i-1].End {
			t.Fatalf("gap between spans %d and %d: %d != %d",
				i-1, i, snap.Spans[i-1].End, snap.Spans[i].Start)
		}
	}
}

func TestTracerRingOverwrite(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(0, PhaseOptimizer, int64(i), int64(i+1))
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(snap.Spans))
	}
	if snap.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.Dropped)
	}
	// Oldest retained first.
	for i, sp := range snap.Spans {
		if sp.Start != int64(6+i) {
			t.Fatalf("span %d start = %d, want %d", i, sp.Start, 6+i)
		}
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(1, 4)
	tr.Emit(0, PhaseLoss, 1, 2)
	tr.Reset()
	if snap := tr.Snapshot(); len(snap.Spans) != 0 || snap.Dropped != 0 {
		t.Fatalf("after reset: %d spans, %d dropped", len(snap.Spans), snap.Dropped)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	tok := tr.Begin(PhaseStep)
	tr.End(0, tok)
	tr.Next(0, tok, PhaseLoss)
	tr.Emit(0, PhaseLoss, 1, 2)
	tr.Reset()
	tr.NameShard(0, "x")
	if tr.Shards() != 0 {
		t.Fatal("nil tracer has shards")
	}
	if snap := tr.Snapshot(); len(snap.Spans) != 0 {
		t.Fatal("nil tracer produced spans")
	}
}

// TestTracerRecordZeroAlloc pins the record-path allocation budget that
// the root-level TestStepTraceZeroAlloc guards end to end.
func TestTracerRecordZeroAlloc(t *testing.T) {
	tr := NewTracer(1, 64)
	if avg := testing.AllocsPerRun(100, func() {
		tok := tr.Begin(PhaseEmbLookup)
		tok = tr.Next(0, tok, PhaseDenseFwd)
		tr.End(0, tok)
		tr.Emit(0, PhaseAllReduce, 1, 2)
	}); avg != 0 {
		t.Fatalf("record path allocates %.1f objects, want 0", avg)
	}
}

// TestTracerShardsConcurrent exercises distinct-shard recording under
// the race detector: single-writer shards must not share mutable state.
func TestTracerShardsConcurrent(t *testing.T) {
	const shards, spans = 8, 200
	tr := NewTracer(shards, spans)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				tok := tr.Begin(PhaseOptimizer)
				tr.End(s, tok)
			}
		}(s)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Spans) != shards*spans {
		t.Fatalf("got %d spans, want %d", len(snap.Spans), shards*spans)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/b")
	c.Add(3)
	c.Inc()
	if c.Load() != 4 {
		t.Fatalf("counter = %d, want 4", c.Load())
	}
	if r.Counter("a/b") != c {
		t.Fatal("Counter not idempotent")
	}
	g := r.Gauge("g")
	g.Set(7)
	if !g.SetOnce(9) == false {
		t.Fatal("SetOnce stored over non-zero")
	}
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
	g.Set(0)
	if !g.SetOnce(5) || g.Load() != 5 {
		t.Fatal("SetOnce failed on zero gauge")
	}
}

func TestNilInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter held a value")
	}
	g := r.Gauge("y")
	g.Set(2)
	if g.SetOnce(3) || g.Load() != 0 {
		t.Fatal("nil gauge held a value")
	}
	r.RegisterFunc("f", func() int64 { return 1 })
	r.Reset()
	if s := r.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("z/count").Add(2)
	r.Gauge("a/gauge").Set(5)
	r.RegisterFunc("m/func", func() int64 { return 11 })
	s := r.Snapshot()
	names := make([]string, len(s.Metrics))
	for i, m := range s.Metrics {
		names[i] = m.Name
	}
	want := []string{"a/gauge", "m/func", "z/count"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
	if s.Get("m/func") != 11 || s.Get("z/count") != 2 {
		t.Fatalf("bad values in %+v", s.Metrics)
	}
	if _, ok := s.Value("missing"); ok {
		t.Fatal("missing metric reported present")
	}

	r.Counter("z/count").Add(3)
	d := r.Snapshot().Sub(s)
	if d.Get("z/count") != 3 || d.Get("a/gauge") != 0 {
		t.Fatalf("windowed sub wrong: %+v", d.Metrics)
	}

	r.Reset()
	after := r.Snapshot()
	if after.Get("z/count") != 0 || after.Get("a/gauge") != 0 {
		t.Fatal("reset did not zero instruments")
	}
	if after.Get("m/func") != 11 {
		t.Fatal("reset clobbered snapshot func")
	}

	if out := after.Render(); !strings.Contains(out, "m/func") {
		t.Fatalf("render missing metric:\n%s", out)
	}
}

func TestRegistryInstrumentZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	g := r.Gauge("hot/g")
	if avg := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(c.Load())
	}); avg != 0 {
		t.Fatalf("instrument ops allocate %.1f objects, want 0", avg)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.NameShard(0, "rank 0")
	tr.NameShard(1, "decoder 0")
	tr.Emit(0, PhaseStep, 0, 100)
	tr.Emit(0, PhaseDenseFwd, 0, 60)
	tr.Emit(1, PhaseIngestDecode, 10, 50)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			for _, k := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("event missing %q: %v", k, ev)
				}
			}
		default:
			t.Fatalf("unexpected ph %v", ev["ph"])
		}
	}
	if meta != 2 || complete != 3 {
		t.Fatalf("meta=%d complete=%d, want 2 and 3", meta, complete)
	}
}

func TestAttribute(t *testing.T) {
	tr := NewTracer(3, 16)
	tr.NameShard(0, "rank 0")
	tr.NameShard(1, "rank 1")
	tr.NameShard(2, "overlap 0")
	// Rank 0: one step [0,100) tiled as lookup 40 + fwd 30 + bwd 30.
	tr.Emit(0, PhaseStep, 0, 100)
	tr.Emit(0, PhaseEmbLookup, 0, 40)
	tr.Emit(0, PhaseDenseFwd, 40, 70)
	tr.Emit(0, PhaseDenseBwd, 70, 100)
	// Rank 1: slower step [0,120) fully tiled by lookup.
	tr.Emit(1, PhaseStep, 0, 120)
	tr.Emit(1, PhaseEmbLookup, 0, 120)
	// Overlap shard: background all-reduce, no step window.
	tr.Emit(2, PhaseAllReduce, 10, 90)

	a := Attribute(tr.Snapshot())
	if len(a.Shards) != 2 || a.TotalSteps != 2 {
		t.Fatalf("shards=%d steps=%d, want 2/2", len(a.Shards), a.TotalSteps)
	}
	if a.WallNS != 120 {
		t.Fatalf("critical path = %d, want 120", a.WallNS)
	}
	if a.Background[PhaseAllReduce] != 80 {
		t.Fatalf("background allreduce = %d, want 80", a.Background[PhaseAllReduce])
	}
	if cov := a.Coverage(); cov != 1.0 {
		t.Fatalf("coverage = %v, want 1.0", cov)
	}
	per := a.PerStepNS()
	if per[PhaseEmbLookup] != 80 { // (40+120)/2
		t.Fatalf("emb_lookup per-step = %v, want 80", per[PhaseEmbLookup])
	}
	if w := a.StepWallNS(); w != 110 { // (100+120)/2
		t.Fatalf("step wall per-step = %v, want 110", w)
	}

	out := a.Render(map[Phase]float64{PhaseEmbLookup: 80e-9})
	for _, want := range []string{"emb_lookup", "all_reduce", "coverage=100.00%", "obs/pred"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAttributeClipsToWindows: spans outside a step window (warmup,
// eval-time forward passes) must not pollute the per-step numbers.
func TestAttributeClipsToWindows(t *testing.T) {
	tr := NewTracer(1, 16)
	tr.Emit(0, PhaseDenseFwd, 0, 50) // warmup, before any step
	tr.Emit(0, PhaseStep, 100, 200)
	tr.Emit(0, PhaseDenseFwd, 100, 200)
	tr.Emit(0, PhaseDenseFwd, 250, 300) // eval after the step
	a := Attribute(tr.Snapshot())
	if got := a.Shards[0].Phases[PhaseDenseFwd]; got != 100 {
		t.Fatalf("clipped dense_fwd = %d, want 100", got)
	}
	if cov := a.Shards[0].Coverage(); cov != 1.0 {
		t.Fatalf("coverage = %v, want 1.0", cov)
	}
}

func TestTimeline(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.NameShard(0, "rank 0")
	tr.NameShard(1, "ingest")
	tr.Emit(0, PhaseStep, 0, 100)
	tr.Emit(0, PhaseDenseFwd, 0, 50)
	tr.Emit(1, PhaseIngestRead, 25, 75)
	out := tr.Snapshot().Timeline(40)
	if !strings.Contains(out, "rank 0") || !strings.Contains(out, "ingest") {
		t.Fatalf("timeline missing shard labels:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("timeline painted nothing:\n%s", out)
	}
	if empty := (TraceSnapshot{}).Timeline(40); !strings.Contains(empty, "no spans") {
		t.Fatalf("empty timeline = %q", empty)
	}
}

func TestPhaseTotals(t *testing.T) {
	tr := NewTracer(1, 8)
	tr.Emit(0, PhaseStep, 0, 2e9)
	tr.Emit(0, PhaseEmbLookup, 0, 1e9)
	tr.Emit(0, PhaseDenseFwd, 1e9, 2e9)
	tot := tr.Snapshot().PhaseTotals()
	if _, ok := tot[PhaseStep]; ok {
		t.Fatal("PhaseTotals included step envelope")
	}
	if tot[PhaseEmbLookup] != 1.0 || tot[PhaseDenseFwd] != 1.0 {
		t.Fatalf("totals = %v", tot)
	}
}

package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// DoctorInput bundles everything the diagnosis fuses: the span trace,
// the metrics snapshot (collective meters, ingest starvation, checkpoint
// costs, rendezvous waits), the analytic per-phase prediction
// (perfmodel.PredictedPhases; optional), and per-table hot-row skew
// summaries (optional).
type DoctorInput struct {
	Snap      TraceSnapshot
	Metrics   Snapshot
	Predicted map[Phase]float64
	Skew      []TableSkew
}

// ShareEntry is one boundedness bucket of the step-time decomposition.
type ShareEntry struct {
	Name       string
	SecPerStep float64 // average seconds per rank-step
	Share      float64 // fraction of the accounted step time
}

// Finding is one ranked, human-readable diagnosis.
type Finding struct {
	Severity float64 // 0..10, sorts the report
	Title    string
	Detail   string
}

// DoctorReport is the classified run: a verdict naming the dominant
// cost, the bucket decomposition behind it, the straggler analysis, and
// ranked findings.
type DoctorReport struct {
	Verdict   string
	Steps     int // rank-steps observed
	Shares    []ShareEntry
	Imbalance ImbalanceReport
	Findings  []Finding
}

// Boundedness verdicts. Straggler-bound overrides the bucket verdicts:
// a straggling rank inflates every synchronous phase equally, so the
// bucket decomposition alone would misread it as compute- or comm-bound.
const (
	VerdictCompute      = "compute-bound"
	VerdictAllToAll     = "all-to-all-bound"
	VerdictAllReduce    = "all-reduce-bound"
	VerdictReader       = "reader-bound"
	VerdictCheckpoint   = "checkpoint-bound"
	VerdictStraggler    = "straggler-bound"
	VerdictInconclusive = "inconclusive"
)

// computePhases are the on-device phases of the compute bucket.
var computePhases = []Phase{PhaseEmbLookup, PhaseDenseFwd, PhaseLoss, PhaseDenseBwd, PhaseSparseScatter, PhaseOptimizer}

// Diagnose classifies a run. The decomposition works in average seconds
// per rank-step across five buckets:
//
//   - compute: embedding lookup + dense fwd/bwd + loss + sparse scatter
//   - optimizer, from span attribution.
//   - all-to-all / all-reduce: the larger of the observed exposed phase
//     time and the Link-priced model time from the collective meters.
//     The in-process collectives move bytes at memory speed while the
//     meters record what the configured wire would have charged, so a
//     slow Link shows up only in the modeled term — taking the max keeps
//     both real stalls and modeled wire cost visible.
//   - reader: batch-wait spans and the ingest starvation meter (same
//     signal measured from both sides; the max is used).
//   - checkpoint: checkpoint spans and the ckpt save meter.
//
// The verdict names the largest bucket, unless the imbalance index says
// the spread across ranks, not the mean, is the problem.
func Diagnose(in DoctorInput) DoctorReport {
	attr := Attribute(in.Snap)
	rep := DoctorReport{Steps: attr.TotalSteps, Imbalance: Imbalance(in.Snap, in.Metrics)}
	if attr.TotalSteps == 0 {
		rep.Verdict = VerdictInconclusive
		rep.Findings = append(rep.Findings, Finding{
			Severity: 1, Title: "no step spans recorded",
			Detail: "the trace snapshot holds no PhaseStep windows; enable tracing on the trainer shards",
		})
		return rep
	}
	steps := float64(attr.TotalSteps)
	per := attr.PerStepNS()

	var computeSec float64
	for _, p := range computePhases {
		computeSec += per[p] / 1e9
	}

	modelSec := func(op string) float64 {
		return float64(in.Metrics.Get("collective/"+op+"/model_ns")) / 1e9 / steps
	}
	a2aObs, a2aModel := per[PhaseAllToAll]/1e9, modelSec("alltoall")
	arObs, arModel := per[PhaseAllReduce]/1e9, modelSec("allreduce")
	a2aSec, arSec := max(a2aObs, a2aModel), max(arObs, arModel)

	var batchWaitSec, ckptSpanSec float64
	for _, sp := range in.Snap.Spans {
		switch sp.Phase {
		case PhaseBatchWait:
			batchWaitSec += float64(sp.Dur()) / 1e9
		case PhaseCheckpoint:
			ckptSpanSec += float64(sp.Dur()) / 1e9
		}
	}
	readerSec := max(batchWaitSec, float64(in.Metrics.Get("ingest/starved_ns"))/1e9) / steps
	ckptSec := max(ckptSpanSec, float64(in.Metrics.Get("ckpt/save_ns"))/1e9) / steps

	rep.Shares = []ShareEntry{
		{Name: VerdictCompute, SecPerStep: computeSec},
		{Name: VerdictAllToAll, SecPerStep: a2aSec},
		{Name: VerdictAllReduce, SecPerStep: arSec},
		{Name: VerdictReader, SecPerStep: readerSec},
		{Name: VerdictCheckpoint, SecPerStep: ckptSec},
	}
	var total float64
	for _, s := range rep.Shares {
		total += s.SecPerStep
	}
	top := 0
	for i := range rep.Shares {
		if total > 0 {
			rep.Shares[i].Share = rep.Shares[i].SecPerStep / total
		}
		if rep.Shares[i].SecPerStep > rep.Shares[top].SecPerStep {
			top = i
		}
	}
	rep.Verdict = rep.Shares[top].Name
	if total == 0 {
		rep.Verdict = VerdictInconclusive
	}
	if rep.Imbalance.Straggling() {
		rep.Verdict = VerdictStraggler
	}

	// ---- ranked findings ----
	add := func(sev float64, title, detail string) {
		rep.Findings = append(rep.Findings, Finding{Severity: sev, Title: title, Detail: detail})
	}
	if total > 0 {
		t := rep.Shares[top]
		add(10*t.Share, fmt.Sprintf("dominant cost: %s (%.0f%% of step time)", t.Name, 100*t.Share),
			fmt.Sprintf("%.3f ms of %.3f ms accounted per rank-step", t.SecPerStep*1e3, total*1e3))
	}
	if imb := rep.Imbalance; imb.Straggling() {
		add(min(10, 5*(imb.Index-1)),
			fmt.Sprintf("straggler: rank %d (imbalance index %.2f)", imb.Slowest, imb.Index),
			"the slowest rank's self time dominates; its peers burn the difference blocked at collective rendezvous — "+
				"rebalance or fix the slow rank before optimizing operators")
	}
	if a2aModel > a2aObs*1.5 && a2aModel > 0.05*total {
		add(10*a2aSec/max(total, 1e-12), "all-to-all is wire-limited on the configured link",
			fmt.Sprintf("modeled wire time %.3f ms/step vs %.3f ms observed in-process — a real deployment on this link would be exchange-bound", a2aModel*1e3, a2aObs*1e3))
	}
	if arModel > arObs*1.5 && arModel > 0.05*total {
		add(10*arSec/max(total, 1e-12), "all-reduce is wire-limited on the configured link",
			fmt.Sprintf("modeled wire time %.3f ms/step vs %.3f ms observed in-process", arModel*1e3, arObs*1e3))
	}
	if in.Predicted != nil {
		for p := Phase(1); p < NumPhases; p++ {
			pred := in.Predicted[p]
			obs := per[p] / 1e9
			if pred > 0 && obs > 1.5*pred && obs > 0.05*total {
				add(5*obs/max(total, 1e-12),
					fmt.Sprintf("%s runs %.1fx its analytic prediction", p, obs/pred),
					fmt.Sprintf("observed %.3f ms/step vs predicted %.3f ms/step", obs*1e3, pred*1e3))
			}
		}
	}
	for _, sk := range in.Skew {
		if sk.Top1Share > 0.2 && sk.Lookups > 0 {
			add(2+4*sk.Top1Share,
				fmt.Sprintf("hot-row skew on %s: top 1%% of rows serve %.0f%% of lookups", sk.Table, 100*sk.Top1Share),
				fmt.Sprintf("%d accessed rows, %d lookups, hottest row %d — a candidate for HBM/cache tier placement and RecD dedup", sk.Rows, sk.Lookups, sk.MaxRow))
		}
	}
	if cov := attr.Coverage(); cov < 0.95 && cov > 0 {
		add(2, fmt.Sprintf("phase coverage only %.0f%% of step wall", 100*cov),
			"interior spans do not tile the step windows; per-phase shares are underestimates")
	}
	if in.Snap.Dropped > 0 {
		add(1, fmt.Sprintf("%d spans dropped to ring overwrite", in.Snap.Dropped),
			"raise the tracer ring capacity; histogram quantiles still cover the full run")
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool { return rep.Findings[i].Severity > rep.Findings[j].Severity })
	return rep
}

// Render formats the report: verdict, bucket decomposition, imbalance
// table, and the ranked findings.
func (r DoctorReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "doctor verdict: %s (%d rank-steps)\n", r.Verdict, r.Steps)
	rows := [][]string{{"bucket", "ms/step", "share %"}}
	for _, s := range r.Shares {
		rows = append(rows, []string{s.Name, metrics.F(s.SecPerStep * 1e3), metrics.F(100 * s.Share)})
	}
	b.WriteString(metrics.Table(rows))
	if len(r.Imbalance.Ranks) > 0 {
		b.WriteString("\nstraggler analysis:\n")
		b.WriteString(r.Imbalance.Render())
	}
	if len(r.Findings) > 0 {
		b.WriteString("\nfindings (ranked):\n")
		for i, f := range r.Findings {
			fmt.Fprintf(&b, "%2d. [%.1f] %s\n      %s\n", i+1, f.Severity, f.Title, f.Detail)
		}
	}
	return b.String()
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
)

// AnomalyKind classifies an online detector finding.
type AnomalyKind uint8

const (
	// AnomalyLossSpike fires when the step loss sits more than
	// LossZScore EWMA standard deviations above the EWMA mean.
	AnomalyLossSpike AnomalyKind = iota
	// AnomalyLossNaN fires on a NaN or ±Inf loss — divergence, not a
	// statistical outlier, so it has no warmup and maximum severity.
	AnomalyLossNaN
	// AnomalyThroughputDip fires when examples/sec drops below
	// (1 − DipFraction) of its EWMA baseline.
	AnomalyThroughputDip
	// AnomalyIngestStarvation fires when the trainer spent more than
	// StarveFraction of the step blocked on the input pipeline.
	AnomalyIngestStarvation
	// AnomalyStraggler fires when the per-step straggler index (max
	// rank self time / mean self time, the Imbalance definition)
	// crosses StragglerIndex.
	AnomalyStraggler
	// AnomalySLOBreach fires when the step exceeds the configured
	// SLOStepNS wall-time budget.
	AnomalySLOBreach
	// AnomalyRankFault is recorded via FlightRecorder.RecordFault when
	// a collective RankError (kill/fail) aborts a step.
	AnomalyRankFault
	numAnomalyKinds
)

var anomalyKindNames = [numAnomalyKinds]string{
	"loss_spike",
	"loss_nan",
	"throughput_dip",
	"ingest_starvation",
	"straggler",
	"slo_breach",
	"rank_fault",
}

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	if int(k) < len(anomalyKindNames) {
		return anomalyKindNames[k]
	}
	return fmt.Sprintf("AnomalyKind(%d)", int(k))
}

// MarshalJSON renders the kind as its snake_case name.
func (k AnomalyKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the snake_case name back (bundle readers).
func (k *AnomalyKind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	for i, n := range anomalyKindNames {
		if n == s {
			*k = AnomalyKind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown anomaly kind %q", s)
}

// AnomalyFinding is one structured detector hit: what fired, at which
// step, how far outside the baseline the observation sat, and a
// human-readable detail line.
type AnomalyFinding struct {
	Kind AnomalyKind `json:"kind"`
	// Step is the offending training step (the step whose sample
	// triggered the detector, or RankError.Step for faults).
	Step int64 `json:"step"`
	// Severity is a 0–10 urgency score (10 = divergence/fault).
	Severity float64 `json:"severity"`
	// Value is the observed quantity (loss, examples/sec, fraction,
	// index or ns — per Kind).
	Value float64 `json:"value"`
	// Baseline is what the detector expected (EWMA mean, threshold).
	Baseline float64 `json:"baseline"`
	Detail   string  `json:"detail"`
}

// String renders the finding as one log line.
func (f AnomalyFinding) String() string {
	return fmt.Sprintf("%s @ step %d (severity %.1f): %s", f.Kind, f.Step, f.Severity, f.Detail)
}

// anomalyFindingAlias strips AnomalyFinding's methods so the shadow
// struct below can embed it without recursing into MarshalJSON.
type anomalyFindingAlias AnomalyFinding

// anomalyFindingJSON shadows Value/Baseline with the non-finite-safe
// float form: a loss_nan finding's Value IS NaN, and the bundle
// manifest that carries it as trigger must still serialize.
type anomalyFindingJSON struct {
	anomalyFindingAlias
	Value    jsonFloat `json:"value"`
	Baseline jsonFloat `json:"baseline"`
}

func (f AnomalyFinding) MarshalJSON() ([]byte, error) {
	return json.Marshal(anomalyFindingJSON{
		anomalyFindingAlias: anomalyFindingAlias(f),
		Value:               jsonFloat(f.Value),
		Baseline:            jsonFloat(f.Baseline),
	})
}

func (f *AnomalyFinding) UnmarshalJSON(b []byte) error {
	var doc anomalyFindingJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	*f = AnomalyFinding(doc.anomalyFindingAlias)
	f.Value = float64(doc.Value)
	f.Baseline = float64(doc.Baseline)
	return nil
}

// Detector defaults. See DESIGN.md ("Flight recorder") for the math.
const (
	// DefaultLossZScore is the EWMA z-score above which a loss sample
	// counts as a spike. 6σ keeps the detector quiet on the heavy-
	// tailed per-batch loss noise of small-batch training while still
	// firing on order-of-magnitude jumps (corrupt batch, wire drift).
	DefaultLossZScore = 6.0
	// DefaultDipFraction: throughput below (1−0.5)× the EWMA baseline
	// — i.e. a >2× slowdown — counts as a dip.
	DefaultDipFraction = 0.5
	// DefaultStarveFraction: spending over half the step blocked on
	// ingest is reader-bound territory (the doctor's verdict line).
	DefaultStarveFraction = 0.5
	// DefaultWarmupSteps is how many samples the EWMA detectors absorb
	// before they may fire; early-run loss is legitimately steep.
	DefaultWarmupSteps = 8
	// DefaultDebounceSteps is the per-kind refractory window: once a
	// kind fires, repeats within this many steps are suppressed so one
	// incident yields one finding (and one bundle), not a burst.
	DefaultDebounceSteps = 32
	// ewmaAlpha is the smoothing factor for the loss/throughput
	// baselines: an effective memory of ~1/α = 20 steps.
	ewmaAlpha = 0.05
)

// anomalyConfig are the resolved detector thresholds.
type anomalyConfig struct {
	lossZ      float64
	dipFrac    float64
	starveFrac float64
	stragIdx   float64
	sloStepNS  int64
	warmup     int
	ranks      int
}

// anomalyState is the online detector state: EWMA mean/variance of the
// loss and an EWMA throughput baseline, updated once per sample with a
// handful of float ops — no allocation, no history scan.
type anomalyState struct {
	cfg      anomalyConfig
	seen     int
	lossMean float64
	lossVar  float64
	thptMean float64
}

// observe updates the detector state with sample s and appends any
// findings to dst (reusing its backing array), returning the extended
// slice. The common no-finding path does not allocate.
func (a *anomalyState) observe(s StepSample, dst []AnomalyFinding) []AnomalyFinding {
	// NaN/Inf guard: no warmup, and no EWMA update (a NaN would poison
	// the baseline for the rest of the run).
	if math.IsNaN(s.Loss) || math.IsInf(s.Loss, 0) {
		dst = append(dst, AnomalyFinding{
			Kind: AnomalyLossNaN, Step: s.Step, Severity: 10,
			Value: s.Loss, Baseline: a.lossMean,
			Detail: fmt.Sprintf("loss %v (EWMA baseline %.4f): model diverged", s.Loss, a.lossMean),
		})
		a.seen++
		return dst
	}

	warm := a.seen >= a.cfg.warmup
	if warm {
		// Loss spike: one-sided EWMA z-score (drops are good news).
		sigma := math.Sqrt(a.lossVar)
		if sigma < 1e-12 {
			sigma = 1e-12
		}
		if z := (s.Loss - a.lossMean) / sigma; z >= a.cfg.lossZ {
			sev := 5 + math.Min(5, z-a.cfg.lossZ)
			dst = append(dst, AnomalyFinding{
				Kind: AnomalyLossSpike, Step: s.Step, Severity: sev,
				Value: s.Loss, Baseline: a.lossMean,
				Detail: fmt.Sprintf("loss %.4f is %.1fσ above EWMA mean %.4f", s.Loss, z, a.lossMean),
			})
		}
		// Throughput dip vs the EWMA baseline.
		if thpt := s.ExamplesPerSec(); thpt > 0 && a.thptMean > 0 &&
			thpt < (1-a.cfg.dipFrac)*a.thptMean {
			drop := 1 - thpt/a.thptMean
			dst = append(dst, AnomalyFinding{
				Kind: AnomalyThroughputDip, Step: s.Step, Severity: 3 + 5*drop,
				Value: thpt, Baseline: a.thptMean,
				Detail: fmt.Sprintf("%.0f ex/s, %.0f%% below EWMA baseline %.0f ex/s",
					thpt, 100*drop, a.thptMean),
			})
		}
	}

	// Fraction detectors need no baseline, only a valid step time.
	if s.StepNS > 0 {
		if frac := float64(s.StarvedNS) / float64(s.StepNS); frac >= a.cfg.starveFrac {
			dst = append(dst, AnomalyFinding{
				Kind: AnomalyIngestStarvation, Step: s.Step, Severity: 3 + 5*frac,
				Value: frac, Baseline: a.cfg.starveFrac,
				Detail: fmt.Sprintf("trainer starved %.0f%% of the step waiting on ingest", 100*frac),
			})
		}
		if a.cfg.sloStepNS > 0 && s.StepNS > a.cfg.sloStepNS {
			dst = append(dst, AnomalyFinding{
				Kind: AnomalySLOBreach, Step: s.Step, Severity: 4,
				Value: float64(s.StepNS), Baseline: float64(a.cfg.sloStepNS),
				Detail: fmt.Sprintf("step took %.2fms, SLO %.2fms",
					float64(s.StepNS)/1e6, float64(a.cfg.sloStepNS)/1e6),
			})
		}
	}

	// Straggler-index crossing (multi-rank only): same index Imbalance
	// reports post-hoc, evaluated per step.
	if a.cfg.ranks > 1 && s.StragglerIndex >= a.cfg.stragIdx {
		dst = append(dst, AnomalyFinding{
			Kind: AnomalyStraggler, Step: s.Step,
			Severity: 3 + math.Min(5, 2*(s.StragglerIndex-a.cfg.stragIdx)),
			Value:    s.StragglerIndex, Baseline: a.cfg.stragIdx,
			Detail: fmt.Sprintf("straggler index %.2f (threshold %.2f), slowest rank %d",
				s.StragglerIndex, a.cfg.stragIdx, s.SlowestRank),
		})
	}

	// Update the EWMA baselines after testing, so a spike is judged
	// against the pre-spike mean. West-style EWMA variance.
	d := s.Loss - a.lossMean
	a.lossMean += ewmaAlpha * d
	a.lossVar = (1 - ewmaAlpha) * (a.lossVar + ewmaAlpha*d*d)
	if thpt := s.ExamplesPerSec(); thpt > 0 {
		if a.thptMean == 0 {
			a.thptMean = thpt
		} else {
			a.thptMean += ewmaAlpha * (thpt - a.thptMean)
		}
	}
	if a.seen == 0 {
		// Seed the loss baseline on the first sample instead of pulling
		// the mean up from zero.
		a.lossMean, a.lossVar = s.Loss, 0
	}
	a.seen++
	return dst
}

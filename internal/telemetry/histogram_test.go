package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// histTestDists are adversarial value distributions for the quantile
// accuracy bound: exact small values, octave-boundary values (powers of
// two ±1, the worst case for log bucketing), wide log-uniform spreads,
// heavy tails, and point masses.
func histTestDists() map[string][]int64 {
	rng := rand.New(rand.NewSource(7))
	dists := map[string][]int64{}

	uni := make([]int64, 20000)
	for i := range uni {
		uni[i] = rng.Int63n(1_000_000)
	}
	dists["uniform"] = uni

	logu := make([]int64, 20000)
	for i := range logu {
		logu[i] = int64(math.Exp(rng.Float64()*30)) + 1 // 1 .. ~1e13
	}
	dists["log-uniform"] = logu

	var edges []int64
	for e := uint(0); e < 40; e++ {
		v := int64(1) << e
		edges = append(edges, v-1, v, v+1)
	}
	dists["octave-edges"] = edges

	bim := make([]int64, 0, 10000)
	for i := 0; i < 9000; i++ {
		bim = append(bim, 50+rng.Int63n(10))
	}
	for i := 0; i < 1000; i++ {
		bim = append(bim, 2_000_000_000+rng.Int63n(1000)) // 2s outliers
	}
	dists["bimodal-tail"] = bim

	dists["constant"] = []int64{12345, 12345, 12345, 12345}
	dists["small-exact"] = []int64{0, 1, 2, 3, 5, 8, 13, 21, 31}
	return dists
}

// exactQuantile mirrors Histogram.Quantile's rank definition (the
// ⌈q·n⌉-th smallest observation) on the raw sorted values.
func exactQuantile(sorted []int64, q float64) int64 {
	target := int(q * float64(len(sorted)))
	if target < 1 {
		target = 1
	}
	return sorted[target-1]
}

// TestHistogramQuantileAccuracy checks the advertised bound: every
// reported quantile is within 3.125% relative error of the exact
// order-statistic (exact below histSubCount where buckets are unit
// width).
func TestHistogramQuantileAccuracy(t *testing.T) {
	for name, vals := range histTestDists() {
		var h Histogram
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, v := range vals {
			h.Record(v)
		}
		if h.Count() != uint64(len(vals)) {
			t.Fatalf("%s: count %d, want %d", name, h.Count(), len(vals))
		}
		for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0} {
			got := h.Quantile(q)
			want := exactQuantile(sorted, q)
			if want < histSubCount {
				if got != want {
					t.Errorf("%s: q=%.3f got %d, want exactly %d (unit-bucket range)", name, q, got, want)
				}
				continue
			}
			if relerr := math.Abs(float64(got)-float64(want)) / float64(want); relerr > 0.03125 {
				t.Errorf("%s: q=%.3f got %d, want %d (rel err %.4f > 3.125%%)", name, q, got, want, relerr)
			}
		}
		// Mean is exact (tracked as a true sum, not from buckets).
		var sum float64
		for _, v := range vals {
			sum += float64(v)
		}
		if want := sum / float64(len(vals)); h.Mean() != want {
			t.Errorf("%s: mean %.3f, want exact %.3f", name, h.Mean(), want)
		}
	}
}

// TestHistogramBucketRoundTrip checks the bucket representative stays
// within half a bucket width of every value mapped into it.
func TestHistogramBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		v := rng.Int63() >> uint(rng.Intn(60))
		got := histValue(histBucket(v))
		if v < histSubCount {
			if got != v {
				t.Fatalf("histValue(histBucket(%d)) = %d, want exact", v, got)
			}
			continue
		}
		if relerr := math.Abs(float64(got)-float64(v)) / float64(v); relerr > 0.03125 {
			t.Fatalf("histValue(histBucket(%d)) = %d, rel err %.4f > 3.125%%", v, got, relerr)
		}
	}
}

// TestHistogramMergeCommutative splits a stream across shards and
// checks merge order does not matter and the merge equals the
// single-histogram ground truth.
func TestHistogramMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole, a, b, c Histogram
	for i := 0; i < 30000; i++ {
		v := int64(math.Exp(rng.Float64() * 25))
		whole.Record(v)
		switch i % 3 {
		case 0:
			a.Record(v)
		case 1:
			b.Record(v)
		case 2:
			c.Record(v)
		}
	}
	ab := a.Clone()
	ab.Merge(&b)
	ab.Merge(&c)
	cb := c.Clone()
	cb.Merge(&b)
	cb.Merge(&a)
	if ab != cb {
		t.Fatal("merge(a,b,c) != merge(c,b,a): merge is not commutative")
	}
	if ab != whole {
		t.Fatal("merged shards differ from the single-histogram ground truth")
	}
}

// TestHistogramZeroAlloc pins the zero-allocation contract of the
// record path and the quantile read path.
func TestHistogramZeroAlloc(t *testing.T) {
	var h Histogram
	if avg := testing.AllocsPerRun(100, func() { h.Record(123456) }); avg != 0 {
		t.Fatalf("Record allocates %.1f objects, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		_ = h.Quantile(0.99)
		_ = h.Summary()
	}); avg != 0 {
		t.Fatalf("Quantile/Summary allocate %.1f objects, want 0", avg)
	}
}

// TestHistogramConcurrentRecord hammers Record from parallel writers
// and checks the totals line up (run under -race in CI).
func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	const writers, per = 8, 10000
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				h.Record(int64(w*1000 + i))
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	if h.Count() != writers*per {
		t.Fatalf("count %d, want %d", h.Count(), writers*per)
	}
}

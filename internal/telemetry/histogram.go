package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// Histogram bucket layout: HDR-style log-linear. Values below
// histSubCount land in exact unit buckets; above that, each power-of-two
// octave is split into histSubCount linear sub-buckets, so the bucket
// width is always at most 1/(histSubCount/2) of the bucket's lower
// bound. Reporting the bucket midpoint therefore bounds the relative
// error of any quantile: with histSubBits=5 the worst case is
// (2^e/2)/(16·2^e) = 3.125%.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits // 32 linear sub-buckets per octave
	// histBuckets covers the full non-negative int64 range: exponents
	// run 0..64-histSubBits, histSubCount sub-buckets each.
	histBuckets = (64 - histSubBits + 1) * histSubCount // 1920
)

// Histogram is a fixed-size, log-bucketed latency histogram. Record is
// allocation- and lock-free (three atomic adds), safe for concurrent
// writers, and the struct is a flat value: Clone snapshots it with
// atomic loads, Merge folds shard snapshots together, and the quantile
// accessors run on quiescent copies. The zero value is ready to use.
//
// Values are int64 (nanoseconds by convention); negative values clamp
// to bucket zero and do not contribute to Sum.
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
}

// histBucket maps a value to its bucket index.
func histBucket(v int64) int {
	if v < 0 {
		return 0
	}
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	e := bits.Len64(u) - histSubBits // ≥1 here; u>>e ∈ [histSubCount/2, histSubCount)
	return e*histSubCount + int(u>>uint(e))
}

// histValue returns the representative (midpoint) value of bucket b —
// the inverse of histBucket up to half a bucket width.
func histValue(b int) int64 {
	if b < histSubCount {
		return int64(b)
	}
	e := uint(b / histSubCount)
	m := uint64(b % histSubCount)
	lo := m << e
	return int64(lo + (uint64(1)<<e)/2)
}

// Record adds one observation. It allocates nothing and may race freely
// with other Record and Clone calls.
func (h *Histogram) Record(v int64) {
	atomic.AddUint64(&h.counts[histBucket(v)], 1)
	atomic.AddUint64(&h.count, 1)
	if v > 0 {
		atomic.AddUint64(&h.sum, uint64(v))
	}
}

// Clone returns a point-in-time copy taken with atomic loads, safe to
// call while writers are live. The copy is a plain value; all read
// accessors below assume they run on such a quiescent copy (or on a
// histogram whose writers have stopped).
func (h *Histogram) Clone() Histogram {
	var out Histogram
	for i := range h.counts {
		out.counts[i] = atomic.LoadUint64(&h.counts[i])
	}
	out.count = atomic.LoadUint64(&h.count)
	out.sum = atomic.LoadUint64(&h.sum)
	return out
}

// Merge folds o into h bucket-wise. Both sides must be quiescent
// (clones or stopped writers); merging is commutative and associative,
// so per-rank shard histograms reduce in any order.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all positive recorded values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Mean returns the exact mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at rank q ∈ [0,1] — the representative of
// the bucket holding the ⌈q·count⌉-th smallest observation, accurate to
// 3.125% relative error. q ≥ 1 returns Max; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= target {
			return histValue(i)
		}
	}
	return h.Max()
}

// Max returns the representative value of the highest non-empty bucket
// (0 when empty).
func (h *Histogram) Max() int64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if h.counts[i] != 0 {
			return histValue(i)
		}
	}
	return 0
}

// Quantiles is the rendered summary of one histogram: the percentile
// set the paper's tail-latency analysis needs, in the histogram's value
// unit (nanoseconds throughout this package).
type Quantiles struct {
	Count uint64
	Mean  float64
	P50   int64
	P95   int64
	P99   int64
	P999  int64
	Max   int64
}

// Summary computes the standard quantile bundle.
func (h *Histogram) Summary() Quantiles {
	return Quantiles{
		Count: h.count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

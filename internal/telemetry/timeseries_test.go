package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTimeseriesRing(t *testing.T) {
	ts := NewTimeseries(4)
	if ts.Cap() != 4 || ts.Len() != 0 {
		t.Fatalf("fresh ring: cap %d len %d", ts.Cap(), ts.Len())
	}
	if _, ok := ts.Last(); ok {
		t.Fatal("Last on empty ring")
	}
	for i := 0; i < 6; i++ {
		ts.Append(StepSample{Step: int64(i), Loss: float64(i)})
	}
	if ts.Len() != 4 || ts.Total() != 6 {
		t.Fatalf("after wrap: len %d total %d", ts.Len(), ts.Total())
	}
	last, ok := ts.Last()
	if !ok || last.Step != 5 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	tail := ts.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("Tail(0) len %d", len(tail))
	}
	for i, s := range tail {
		if want := int64(i + 2); s.Step != want { // oldest retained is step 2
			t.Fatalf("tail[%d].Step = %d, want %d", i, s.Step, want)
		}
	}
	if got := ts.Tail(2); len(got) != 2 || got[0].Step != 4 || got[1].Step != 5 {
		t.Fatalf("Tail(2) = %+v", got)
	}
}

func TestTimeseriesMarks(t *testing.T) {
	ts := NewTimeseries(8)
	for i := 0; i < timeseriesMarkCap+3; i++ {
		ts.Mark(int64(i), "k", "")
	}
	marks := ts.Marks()
	if len(marks) != timeseriesMarkCap {
		t.Fatalf("mark ring len %d", len(marks))
	}
	if marks[0].Step != 3 || marks[len(marks)-1].Step != int64(timeseriesMarkCap+2) {
		t.Fatalf("mark ring order: first %d last %d", marks[0].Step, marks[len(marks)-1].Step)
	}
}

func TestTimeseriesNilSafe(t *testing.T) {
	var ts *Timeseries
	ts.Append(StepSample{})
	ts.Mark(0, "k", "d")
	if ts.Len() != 0 || ts.Cap() != 0 || ts.Total() != 0 {
		t.Fatal("nil ring not empty")
	}
	if ts.Tail(3) != nil || ts.Marks() != nil {
		t.Fatal("nil ring returned data")
	}
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil WriteJSON: %v (%s)", err, buf.Bytes())
	}
	if string(doc["samples"]) != "[]" {
		t.Fatalf("nil samples = %s", doc["samples"])
	}
}

func TestTimeseriesWriteJSONRoundTrip(t *testing.T) {
	ts := NewTimeseries(8)
	ts.Append(StepSample{Step: 1, Loss: 0.7, Examples: 64, StepNS: 2e6, WaitNS: 1e5})
	ts.Mark(1, "fault", "rank 1 kill")
	var buf bytes.Buffer
	if err := ts.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total   uint64       `json:"total"`
		Cap     int          `json:"cap"`
		Samples []StepSample `json:"samples"`
		Marks   []SeriesMark `json:"marks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Total != 1 || doc.Cap != 8 || len(doc.Samples) != 1 || len(doc.Marks) != 1 {
		t.Fatalf("round trip: %+v", doc)
	}
	if doc.Samples[0].Loss != 0.7 || doc.Marks[0].Detail != "rank 1 kill" {
		t.Fatalf("round trip content: %+v", doc)
	}
}

func TestTimeseriesAppendZeroAlloc(t *testing.T) {
	ts := NewTimeseries(64)
	s := StepSample{Step: 1, Loss: 0.5, Examples: 128, StepNS: 1e6}
	if n := testing.AllocsPerRun(100, func() { ts.Append(s) }); n != 0 {
		t.Fatalf("Append allocates %v/op", n)
	}
}

func TestExamplesPerSec(t *testing.T) {
	s := StepSample{Examples: 128, StepNS: int64(1e9)}
	if got := s.ExamplesPerSec(); got != 128 {
		t.Fatalf("ExamplesPerSec = %v", got)
	}
	if (StepSample{Examples: 128}).ExamplesPerSec() != 0 {
		t.Fatal("zero StepNS must yield 0 throughput")
	}
}

func TestDashboard(t *testing.T) {
	var nilTS *Timeseries
	if out := nilTS.Dashboard(40); !strings.Contains(out, "no samples") {
		t.Fatalf("nil dashboard: %q", out)
	}
	ts := NewTimeseries(32)
	for i := 0; i < 20; i++ {
		ts.Append(StepSample{
			Step: int64(i), Loss: 0.7 - 0.01*float64(i),
			Examples: 128, StepNS: 1e6,
			WaitNS: 1e5, StarvedNS: 2e5,
		})
	}
	ts.Mark(10, "restore", "rollback")
	out := ts.Dashboard(16)
	for _, want := range []string{"loss", "ex/s", "step ms", "wait %", "starve %", "mark @10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	// NaN losses must not break the sparkline scaling.
	ts.Append(StepSample{Step: 20, Loss: math.NaN(), Examples: 128, StepNS: 1e6})
	if out := ts.Dashboard(16); !strings.Contains(out, "loss") {
		t.Fatalf("dashboard with NaN:\n%s", out)
	}
}

func TestAnomalyKindJSON(t *testing.T) {
	for k := AnomalyKind(0); k < numAnomalyKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back AnomalyKind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
	}
	var k AnomalyKind
	if err := json.Unmarshal([]byte(`"nope"`), &k); err == nil {
		t.Fatal("unknown kind must not parse")
	}
}

// feedStable drives n baseline samples through the detector state.
func feedStable(a *anomalyState, n int) {
	for i := 0; i < n; i++ {
		a.observe(StepSample{
			Step: int64(i), Loss: 0.69 + 0.001*float64(i%3),
			Examples: 128, StepNS: 1e6,
		}, nil)
	}
}

func detCfg() anomalyConfig {
	return anomalyConfig{
		lossZ: DefaultLossZScore, dipFrac: DefaultDipFraction,
		starveFrac: DefaultStarveFraction, stragIdx: StragglerIndexThreshold,
		warmup: DefaultWarmupSteps, ranks: 2,
	}
}

func TestDetectLossSpike(t *testing.T) {
	a := &anomalyState{cfg: detCfg()}
	feedStable(a, 20)
	got := a.observe(StepSample{Step: 20, Loss: 9.0, Examples: 128, StepNS: 1e6}, nil)
	if len(got) == 0 || got[0].Kind != AnomalyLossSpike || got[0].Step != 20 {
		t.Fatalf("spike findings: %+v", got)
	}
	// A loss *drop* is good news, not a spike.
	if got := a.observe(StepSample{Step: 21, Loss: 0.01, Examples: 128, StepNS: 1e6}, nil); len(got) != 0 {
		t.Fatalf("drop fired: %+v", got)
	}
}

func TestDetectLossSpikeWarmup(t *testing.T) {
	a := &anomalyState{cfg: detCfg()}
	// Within warmup even a wild jump stays quiet.
	a.observe(StepSample{Step: 0, Loss: 0.7, Examples: 128, StepNS: 1e6}, nil)
	if got := a.observe(StepSample{Step: 1, Loss: 50, Examples: 128, StepNS: 1e6}, nil); len(got) != 0 {
		t.Fatalf("warmup fired: %+v", got)
	}
}

func TestDetectNaN(t *testing.T) {
	a := &anomalyState{cfg: detCfg()}
	got := a.observe(StepSample{Step: 0, Loss: math.NaN()}, nil)
	if len(got) != 1 || got[0].Kind != AnomalyLossNaN || got[0].Severity != 10 {
		t.Fatalf("NaN findings: %+v", got)
	}
	if got := a.observe(StepSample{Step: 1, Loss: math.Inf(1)}, nil); len(got) != 1 || got[0].Kind != AnomalyLossNaN {
		t.Fatalf("Inf findings: %+v", got)
	}
}

func TestDetectThroughputDip(t *testing.T) {
	a := &anomalyState{cfg: detCfg()}
	feedStable(a, 20) // 128 ex / 1ms
	got := a.observe(StepSample{Step: 20, Loss: 0.69, Examples: 128, StepNS: 4e6}, nil)
	var hit bool
	for _, f := range got {
		if f.Kind == AnomalyThroughputDip && f.Step == 20 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("dip findings: %+v", got)
	}
}

func TestDetectStarvationAndSLO(t *testing.T) {
	cfg := detCfg()
	cfg.sloStepNS = 2e6
	a := &anomalyState{cfg: cfg}
	got := a.observe(StepSample{Step: 0, Loss: 0.7, Examples: 128, StepNS: 3e6, StarvedNS: 2e6}, nil)
	kinds := map[AnomalyKind]int64{}
	for _, f := range got {
		kinds[f.Kind] = f.Step
	}
	if _, ok := kinds[AnomalyIngestStarvation]; !ok {
		t.Fatalf("no starvation finding: %+v", got)
	}
	if _, ok := kinds[AnomalySLOBreach]; !ok {
		t.Fatalf("no SLO finding: %+v", got)
	}
}

func TestDetectStraggler(t *testing.T) {
	a := &anomalyState{cfg: detCfg()}
	got := a.observe(StepSample{Step: 3, Loss: 0.7, Examples: 128, StepNS: 1e6,
		StragglerIndex: 1.6, SlowestRank: 1}, nil)
	if len(got) != 1 || got[0].Kind != AnomalyStraggler || got[0].Step != 3 {
		t.Fatalf("straggler findings: %+v", got)
	}
	// Single-rank configs never report stragglers.
	a.cfg.ranks = 1
	if got := a.observe(StepSample{Step: 4, Loss: 0.7, StragglerIndex: 9}, nil); len(got) != 0 {
		t.Fatalf("single-rank straggler fired: %+v", got)
	}
}

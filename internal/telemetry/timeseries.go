package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// StepSample is one step of the training time-series: everything the
// flight recorder needs to detect anomalies and reconstruct what the
// run looked like around a trigger. Samples are plain values — they are
// built on the caller's stack and copied into the ring, so steady-state
// recording never allocates.
//
// Trainers fill the fields they own (Step, Loss, Examples, StepNS and —
// for the hybrid engine — the comm breakdown, summed rendezvous wait
// and per-step straggler index); FlightRecorder.ObserveStep derives the
// rest (clock, ingest starvation, checkpoint bytes, per-phase ns) from
// the registry meters and tracer histograms it was opened with.
type StepSample struct {
	// Step is the 0-based training step this sample describes.
	Step int64 `json:"step"`
	// ClockNS is the process-epoch timestamp (telemetry.Now) at which
	// the sample was recorded, i.e. the end of the step.
	ClockNS int64 `json:"clock_ns"`
	// Loss is the mini-batch training loss.
	Loss float64 `json:"loss"`
	// Examples is the number of examples the step consumed.
	Examples int64 `json:"examples"`
	// StepNS is the wall time of the step.
	StepNS int64 `json:"step_ns"`
	// A2ANS / ARNS / ExposedNS are the hybrid engine's critical-path
	// all-to-all, all-reduce and exposed (non-overlapped) comm times.
	// Zero for the single-process trainer.
	A2ANS     int64 `json:"a2a_ns,omitempty"`
	ARNS      int64 `json:"ar_ns,omitempty"`
	ExposedNS int64 `json:"exposed_ns,omitempty"`
	// WaitNS is the rendezvous wait summed across ranks this step
	// (delta of the collective/rank<k>/wait_ns meters, plus each rank's
	// exposed all-reduce join when comm/compute overlap is on).
	WaitNS int64 `json:"wait_ns,omitempty"`
	// StarvedNS is the time the trainer spent blocked on the input
	// pipeline this step (delta of ingest/starved_ns).
	StarvedNS int64 `json:"starved_ns,omitempty"`
	// CkptBytes is the checkpoint volume written during this step
	// (delta of ckpt/bytes_written).
	CkptBytes int64 `json:"ckpt_bytes,omitempty"`
	// StragglerIndex is the per-step imbalance index: max over ranks of
	// self time (step − wait) divided by the mean self time — the same
	// definition Imbalance computes over a whole run (imbalance.go),
	// evaluated on this step only. 0 when not applicable (single rank).
	StragglerIndex float64 `json:"straggler_index,omitempty"`
	// SlowestRank is the rank with the largest self time this step, or
	// -1 when unknown/not applicable.
	SlowestRank int32 `json:"slowest_rank,omitempty"`
	// PhaseNS is the per-phase recorded span time for this step: the
	// delta, across the step, of each phase histogram's running sum
	// (Tracer.PhaseSumsNS). Indexed by Phase.
	PhaseNS [NumPhases]int64 `json:"phase_ns"`
}

// jsonFloat marshals like a float64 but survives non-finite values,
// which encoding/json rejects: NaN and ±Inf encode as the strings
// "NaN", "+Inf", "-Inf". A black-box bundle must preserve the very
// value (a NaN loss) that triggered it.
type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"NaN"`:
		*f = jsonFloat(math.NaN())
		return nil
	case `"+Inf"`:
		*f = jsonFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = jsonFloat(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// stepSampleAlias strips StepSample's methods so the shadow struct
// below can embed it without recursing into MarshalJSON.
type stepSampleAlias StepSample

// stepSampleJSON shadows the fields that may legitimately go
// non-finite (a diverged loss, a 0/0 straggler index) with jsonFloat;
// the shallower shadow fields win the JSON-name conflict against the
// embedded alias's.
type stepSampleJSON struct {
	stepSampleAlias
	Loss           jsonFloat `json:"loss"`
	StragglerIndex jsonFloat `json:"straggler_index,omitempty"`
}

func (s StepSample) MarshalJSON() ([]byte, error) {
	return json.Marshal(stepSampleJSON{
		stepSampleAlias: stepSampleAlias(s),
		Loss:            jsonFloat(s.Loss),
		StragglerIndex:  jsonFloat(s.StragglerIndex),
	})
}

func (s *StepSample) UnmarshalJSON(b []byte) error {
	var doc stepSampleJSON
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	*s = StepSample(doc.stepSampleAlias)
	s.Loss = float64(doc.Loss)
	s.StragglerIndex = float64(doc.StragglerIndex)
	return nil
}

// ExamplesPerSec is the sample's throughput (0 if the step time is
// unknown).
func (s StepSample) ExamplesPerSec() float64 {
	if s.StepNS <= 0 {
		return 0
	}
	return float64(s.Examples) * 1e9 / float64(s.StepNS)
}

// SeriesMark is an annotated point event on the time-series: faults,
// world rebuilds, checkpoint restores, detector findings. Marks are
// rare, so recording one may allocate.
type SeriesMark struct {
	Step    int64  `json:"step"`
	ClockNS int64  `json:"clock_ns"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail,omitempty"`
}

// timeseriesMarkCap bounds the mark ring: marks annotate rare events
// (faults, rebuilds, findings), so a small fixed window suffices.
const timeseriesMarkCap = 256

// Timeseries is a fixed-capacity ring of per-step samples plus a small
// ring of annotated marks. Append is zero-allocation and nil-safe; the
// ring overwrites oldest-first once full, so it always holds the most
// recent window of the run. All methods are safe for concurrent use
// (one writer — the training goroutine — plus readers such as the
// /timeseries HTTP endpoint).
type Timeseries struct {
	mu      sync.Mutex
	samples []StepSample
	next    int
	total   uint64
	marks   []SeriesMark
	mnext   int
	mtotal  uint64
}

// DefaultTimeseriesCap is the sample-ring capacity used when none is
// configured: at one sample per step it spans the last ~1k steps, and
// at ~250 B/sample costs ~256 KiB — small enough to keep resident for
// the whole run, deep enough that a bundle's tail shows the lead-up to
// a trigger, not just the trigger itself.
const DefaultTimeseriesCap = 1024

// NewTimeseries returns a ring holding the last capacity steps
// (DefaultTimeseriesCap if capacity <= 0). All memory is allocated up
// front; recording never grows it.
func NewTimeseries(capacity int) *Timeseries {
	if capacity <= 0 {
		capacity = DefaultTimeseriesCap
	}
	return &Timeseries{
		samples: make([]StepSample, capacity),
		marks:   make([]SeriesMark, timeseriesMarkCap),
	}
}

// Append records one step sample. Nil-safe; zero allocations.
func (ts *Timeseries) Append(s StepSample) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	ts.samples[ts.next] = s
	ts.next++
	if ts.next == len(ts.samples) {
		ts.next = 0
	}
	ts.total++
	ts.mu.Unlock()
}

// Mark records an annotated event at the given step. Marks live in
// their own small ring so a burst of samples cannot evict them.
func (ts *Timeseries) Mark(step int64, kind, detail string) {
	if ts == nil {
		return
	}
	m := SeriesMark{Step: step, ClockNS: Now(), Kind: kind, Detail: detail}
	ts.mu.Lock()
	ts.marks[ts.mnext] = m
	ts.mnext++
	if ts.mnext == len(ts.marks) {
		ts.mnext = 0
	}
	ts.mtotal++
	ts.mu.Unlock()
}

// Len is the number of samples currently held (≤ Cap).
func (ts *Timeseries) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.lenLocked()
}

func (ts *Timeseries) lenLocked() int {
	if ts.total < uint64(len(ts.samples)) {
		return int(ts.total)
	}
	return len(ts.samples)
}

// Cap is the ring capacity in steps.
func (ts *Timeseries) Cap() int {
	if ts == nil {
		return 0
	}
	return len(ts.samples)
}

// Total is the number of samples ever appended (including overwritten
// ones).
func (ts *Timeseries) Total() uint64 {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.total
}

// Last returns the most recent sample, if any.
func (ts *Timeseries) Last() (StepSample, bool) {
	if ts == nil {
		return StepSample{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.total == 0 {
		return StepSample{}, false
	}
	i := ts.next - 1
	if i < 0 {
		i = len(ts.samples) - 1
	}
	return ts.samples[i], true
}

// Tail returns a copy of the newest n samples in chronological order
// (all held samples if n <= 0 or n exceeds Len).
func (ts *Timeseries) Tail(n int) []StepSample {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	held := ts.lenLocked()
	if n <= 0 || n > held {
		n = held
	}
	out := make([]StepSample, n)
	for i := 0; i < n; i++ {
		j := ts.next - n + i
		if j < 0 {
			j += len(ts.samples)
		}
		out[i] = ts.samples[j]
	}
	return out
}

// Marks returns a copy of the held marks in chronological order.
func (ts *Timeseries) Marks() []SeriesMark {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	held := int(ts.mtotal)
	if held > len(ts.marks) {
		held = len(ts.marks)
	}
	out := make([]SeriesMark, held)
	for i := 0; i < held; i++ {
		j := ts.mnext - held + i
		if j < 0 {
			j += len(ts.marks)
		}
		out[i] = ts.marks[j]
	}
	return out
}

// timeseriesJSON is the wire/bundle schema of a time-series snapshot.
type timeseriesJSON struct {
	Total   uint64       `json:"total"`
	Cap     int          `json:"cap"`
	Samples []StepSample `json:"samples"`
	Marks   []SeriesMark `json:"marks"`
}

// WriteJSON writes the held samples and marks as one indented JSON
// object: {"total":…, "cap":…, "samples":[…], "marks":[…]}. Nil-safe
// (writes empty arrays), so the /timeseries endpoint is well-formed
// even before a recorder is attached.
func (ts *Timeseries) WriteJSON(w io.Writer) error {
	doc := timeseriesJSON{Samples: []StepSample{}, Marks: []SeriesMark{}}
	if ts != nil {
		doc.Total = ts.Total()
		doc.Cap = ts.Cap()
		doc.Samples = ts.Tail(0)
		doc.Marks = ts.Marks()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Handler serves the time-series snapshot as JSON. Nil-safe.
func (ts *Timeseries) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ts.WriteJSON(w)
	})
}

// column extracts f over the newest n samples.
func (ts *Timeseries) column(n int, f func(StepSample) float64) []float64 {
	tail := ts.Tail(n)
	out := make([]float64, len(tail))
	for i, s := range tail {
		out[i] = f(s)
	}
	return out
}

// Dashboard renders an ASCII sparkline panel over the newest width
// samples: loss, throughput, step latency, and (when present) wait and
// starvation shares — the live view behind dlrmtrain -telemetry.watch.
func (ts *Timeseries) Dashboard(width int) string {
	if ts == nil || ts.Len() == 0 {
		return "timeseries: no samples yet\n"
	}
	if width <= 0 {
		width = 60
	}
	last, _ := ts.Last()
	var b strings.Builder
	fmt.Fprintf(&b, "timeseries: step %d, %d/%d samples, %d marks\n",
		last.Step, ts.Len(), ts.Cap(), len(ts.Marks()))
	row := func(label string, vals []float64, cur string) {
		fmt.Fprintf(&b, "  %-10s %s  %s\n", label, metrics.Sparkline(vals), cur)
	}
	row("loss", ts.column(width, func(s StepSample) float64 {
		if math.IsNaN(s.Loss) || math.IsInf(s.Loss, 0) {
			return 0
		}
		return s.Loss
	}), metrics.F2(last.Loss))
	row("ex/s", ts.column(width, StepSample.ExamplesPerSec), metrics.F(last.ExamplesPerSec()))
	row("step ms", ts.column(width, func(s StepSample) float64 {
		return float64(s.StepNS) / 1e6
	}), metrics.F2(float64(last.StepNS)/1e6))
	frac := func(num func(StepSample) int64) func(StepSample) float64 {
		return func(s StepSample) float64 {
			if s.StepNS <= 0 {
				return 0
			}
			return float64(num(s)) / float64(s.StepNS)
		}
	}
	if last.WaitNS > 0 || last.StragglerIndex > 0 {
		row("wait %", ts.column(width, frac(func(s StepSample) int64 { return s.WaitNS })),
			metrics.F2(100*frac(func(s StepSample) int64 { return s.WaitNS })(last))+"%")
	}
	if last.StarvedNS > 0 {
		row("starve %", ts.column(width, frac(func(s StepSample) int64 { return s.StarvedNS })),
			metrics.F2(100*frac(func(s StepSample) int64 { return s.StarvedNS })(last))+"%")
	}
	if marks := ts.Marks(); len(marks) > 0 {
		n := len(marks)
		if n > 4 {
			marks = marks[n-4:]
		}
		for _, m := range marks {
			fmt.Fprintf(&b, "  mark @%-6d %s  %s\n", m.Step, m.Kind, m.Detail)
		}
	}
	return b.String()
}

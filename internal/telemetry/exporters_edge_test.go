package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// chromeDoc mirrors the trace_event object form for assertions.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
}

// TestChromeTraceEmptyTracer: a tracer that never recorded must still
// serialize to a valid, loadable document (metadata only, no X events).
func TestChromeTraceEmptyTracer(t *testing.T) {
	tr := NewTracer(2, 16)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace JSON: %v (%s)", err, buf.Bytes())
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			t.Fatalf("empty tracer emitted a %q event: %+v", ev.Ph, ev)
		}
	}
	// The nil tracer degenerates the same way.
	buf.Reset()
	var nilTr *Tracer
	if err := WriteChromeTrace(&buf, nilTr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer events: %+v", doc.TraceEvents)
	}
}

// TestTimelineEmptyTracer pins the "(no spans)" degenerate render.
func TestTimelineEmptyTracer(t *testing.T) {
	tr := NewTracer(1, 8)
	if out := tr.Snapshot().Timeline(40); !strings.Contains(out, "no spans") {
		t.Fatalf("empty timeline: %q", out)
	}
}

// TestExportersOpenSpan: a Begin without End must not corrupt either
// exporter — the open span simply isn't in the snapshot (spans are
// recorded at End), while completed spans around it are.
func TestExportersOpenSpan(t *testing.T) {
	tr := NewTracer(1, 16)
	done := tr.Begin(PhaseEmbLookup)
	tr.End(0, done)
	_ = tr.Begin(PhaseDenseFwd) // never ended
	snap := tr.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Phase != PhaseEmbLookup {
		t.Fatalf("snapshot with open span: %+v", snap.Spans)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var xEvents int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			xEvents++
			if ev.Dur < 0 {
				t.Fatalf("negative duration: %+v", ev)
			}
		}
	}
	if xEvents != 1 {
		t.Fatalf("open span leaked into the trace: %d X events", xEvents)
	}
	if out := snap.Timeline(40); !strings.Contains(out, "emb_lookup") {
		t.Fatalf("timeline lost the completed span:\n%s", out)
	}
}

// TestSnapshotMidWrite: snapshots taken from another goroutine between
// (not during) record calls on a single-writer shard must always be
// internally consistent — spans ordered, durations non-negative, and
// serializable — even while the writer keeps appending afterwards.
func TestSnapshotMidWrite(t *testing.T) {
	tr := NewTracer(1, 32)
	const steps = 200
	snapAt := make(chan struct{})
	var got TraceSnapshot
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-snapAt
		got = tr.Snapshot()
	}()
	for i := 0; i < steps; i++ {
		tok := tr.Begin(PhaseOptimizer)
		tr.End(0, tok)
		if i == steps/2 {
			// Hand the half-written tracer to the snapshotter and wait:
			// recording is quiescent while it copies, which is the
			// documented contract ("between steps").
			snapAt <- struct{}{}
			wg.Wait()
		}
	}
	if len(got.Spans) == 0 {
		t.Fatal("mid-write snapshot empty")
	}
	for i, sp := range got.Spans {
		if sp.End < sp.Start {
			t.Fatalf("span %d negative duration: %+v", i, sp)
		}
		if i > 0 && sp.Start < got.Spans[i-1].Start {
			t.Fatalf("spans unordered at %d", i)
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, got); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// The writer continued past the snapshot: the final state holds all
	// spans, the snapshot only the prefix.
	final := tr.Snapshot()
	if int(final.Dropped)+len(final.Spans) != steps {
		t.Fatalf("final accounting: %d dropped + %d held != %d", final.Dropped, len(final.Spans), steps)
	}
	if len(got.Spans) >= steps {
		t.Fatalf("snapshot saw the future: %d spans", len(got.Spans))
	}
}

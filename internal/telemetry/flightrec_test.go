package telemetry

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// feedRecorder drives n stable steps into fr starting at step from.
func feedRecorder(fr *FlightRecorder, from, n int) {
	for i := 0; i < n; i++ {
		fr.ObserveStep(StepSample{
			Step: int64(from + i), Loss: 0.69 + 0.001*float64(i%3),
			Examples: 128, StepNS: 1e6,
		})
	}
}

func TestFlightRecorderDumpsBundle(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer(1, 128)
	reg := NewRegistry()
	fr, err := OpenFlightRecorder(FlightRecorderConfig{
		Dir: dir, Capacity: 64, Tracer: tr, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the bundle a trace window to carve from.
	for i := 0; i < 10; i++ {
		tok := tr.Begin(PhaseStep)
		tr.End(0, tok)
	}
	feedRecorder(fr, 0, 20)
	fr.ObserveStep(StepSample{Step: 20, Loss: 42, Examples: 128, StepNS: 1e6})

	findings := fr.Findings()
	if len(findings) != 1 || findings[0].Kind != AnomalyLossSpike || findings[0].Step != 20 {
		t.Fatalf("findings: %+v", findings)
	}
	bundles := fr.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles: %v", bundles)
	}
	want := filepath.Join(dir, "blackbox-20")
	if bundles[0] != want {
		t.Fatalf("bundle path %q, want %q", bundles[0], want)
	}
	for _, name := range []string{"bundle.json", "timeseries.json", "metrics.json", "trace.json", "doctor.txt"} {
		if _, err := os.Stat(filepath.Join(want, name)); err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
	}
	// Atomic publication: no temp directories survive.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp dir %s", e.Name())
		}
	}
	// Manifest schema.
	raw, err := os.ReadFile(filepath.Join(want, "bundle.json"))
	if err != nil {
		t.Fatal(err)
	}
	var man BundleManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	if man.Schema != "recsim-blackbox/1" || man.Step != 20 || man.Trigger.Kind != AnomalyLossSpike {
		t.Fatalf("manifest: %+v", man)
	}
	if len(man.Files) != 4 {
		t.Fatalf("manifest files: %v", man.Files)
	}
	// The time-series tail parses and ends at the triggering step.
	raw, err = os.ReadFile(filepath.Join(want, "timeseries.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Samples []StepSample `json:"samples"`
		Marks   []SeriesMark `json:"marks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Samples) == 0 || doc.Samples[len(doc.Samples)-1].Step != 20 {
		t.Fatalf("timeseries tail: %d samples", len(doc.Samples))
	}
	// The finding is mirrored as a mark.
	if len(doc.Marks) != 1 || doc.Marks[0].Kind != "loss_spike" {
		t.Fatalf("marks: %+v", doc.Marks)
	}
}

func TestFlightRecorderDebounce(t *testing.T) {
	fr, err := OpenFlightRecorder(FlightRecorderConfig{DebounceSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	feedRecorder(fr, 0, 20)
	fr.ObserveStep(StepSample{Step: 20, Loss: 9, Examples: 128, StepNS: 1e6})
	fr.ObserveStep(StepSample{Step: 21, Loss: 9.5, Examples: 128, StepNS: 1e6})
	if got := fr.FindingsOf(AnomalyLossSpike); len(got) != 1 {
		t.Fatalf("debounce failed: %+v", got)
	}
	// Outside the refractory window the kind may fire again.
	feedRecorder(fr, 22, 15)
	fr.ObserveStep(StepSample{Step: 37, Loss: 30, Examples: 128, StepNS: 1e6})
	if got := fr.FindingsOf(AnomalyLossSpike); len(got) != 2 {
		t.Fatalf("post-window refire: %+v", got)
	}
}

func TestFlightRecorderRecordFault(t *testing.T) {
	dir := t.TempDir()
	fr, err := OpenFlightRecorder(FlightRecorderConfig{Dir: dir, Tracer: NewTracer(1, 16)})
	if err != nil {
		t.Fatal(err)
	}
	fr.RecordFault(15, errors.New("rank 1 kill fault at step 15"))
	got := fr.FindingsOf(AnomalyRankFault)
	if len(got) != 1 || got[0].Step != 15 || got[0].Severity != 10 {
		t.Fatalf("fault findings: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "blackbox-15")); err != nil {
		t.Fatalf("fault bundle: %v", err)
	}
	fr.RecordFault(0, nil) // nil error is a no-op
	if len(fr.FindingsOf(AnomalyRankFault)) != 1 {
		t.Fatal("nil error recorded a fault")
	}
}

func TestFlightRecorderMaxBundles(t *testing.T) {
	dir := t.TempDir()
	fr, err := OpenFlightRecorder(FlightRecorderConfig{
		Dir: dir, MaxBundles: 2, DebounceSteps: 1, Tracer: NewTracer(1, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fr.RecordFault(int64(10+i), errors.New("boom"))
	}
	if got := fr.Bundles(); len(got) != 2 {
		t.Fatalf("MaxBundles: %v", got)
	}
	if got := fr.FindingsOf(AnomalyRankFault); len(got) != 5 {
		t.Fatalf("findings still recorded past the cap: %d", len(got))
	}
}

func TestFlightRecorderDerivesMeterDeltas(t *testing.T) {
	reg := NewRegistry()
	starved := reg.Counter("ingest/starved_ns")
	ck := reg.Counter("ckpt/bytes_written")
	fr, err := OpenFlightRecorder(FlightRecorderConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	starved.Add(100)
	ck.Add(1000)
	fr.ObserveStep(StepSample{Step: 0, Loss: 0.7, Examples: 128, StepNS: 1e6})
	starved.Add(250)
	fr.ObserveStep(StepSample{Step: 1, Loss: 0.7, Examples: 128, StepNS: 1e6})
	tail := fr.Timeseries().Tail(0)
	if len(tail) != 2 {
		t.Fatalf("tail: %d", len(tail))
	}
	if tail[0].StarvedNS != 100 || tail[0].CkptBytes != 1000 {
		t.Fatalf("first sample deltas: %+v", tail[0])
	}
	if tail[1].StarvedNS != 250 || tail[1].CkptBytes != 0 {
		t.Fatalf("second sample deltas: %+v", tail[1])
	}
}

func TestFlightRecorderPhaseDeltas(t *testing.T) {
	tr := NewTracer(1, 64)
	fr, err := OpenFlightRecorder(FlightRecorderConfig{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit(0, PhaseDenseFwd, 0, 500)
	fr.ObserveStep(StepSample{Step: 0, Loss: 0.7, StepNS: 1e6})
	tr.Emit(0, PhaseDenseFwd, 1000, 1300)
	tr.Emit(0, PhaseLoss, 1300, 1400)
	fr.ObserveStep(StepSample{Step: 1, Loss: 0.7, StepNS: 1e6})
	tail := fr.Timeseries().Tail(0)
	if tail[0].PhaseNS[PhaseDenseFwd] != 500 {
		t.Fatalf("step 0 dense_fwd delta: %+v", tail[0].PhaseNS)
	}
	if tail[1].PhaseNS[PhaseDenseFwd] != 300 || tail[1].PhaseNS[PhaseLoss] != 100 {
		t.Fatalf("step 1 phase deltas: %+v", tail[1].PhaseNS)
	}
}

func TestFlightRecorderObserveZeroAlloc(t *testing.T) {
	tr := NewTracer(1, 64)
	reg := NewRegistry()
	fr, err := OpenFlightRecorder(FlightRecorderConfig{Tracer: tr, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	feedRecorder(fr, 0, 20)
	s := StepSample{Step: 20, Loss: 0.69, Examples: 128, StepNS: 1e6}
	if n := testing.AllocsPerRun(100, func() {
		s.Step++
		fr.ObserveStep(s)
	}); n != 0 {
		t.Fatalf("ObserveStep allocates %v/op in steady state", n)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.ObserveStep(StepSample{})
	fr.RecordFault(0, errors.New("x"))
	fr.Mark(0, "k", "d")
	if fr.Findings() != nil || fr.Bundles() != nil || fr.Timeseries() != nil {
		t.Fatal("nil recorder returned data")
	}
}

func TestFlightRecorderManualDump(t *testing.T) {
	fr, err := OpenFlightRecorder(FlightRecorderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Dump(3, "manual"); err == nil {
		t.Fatal("Dump without a dir must error")
	}
	dir := t.TempDir()
	fr, err = OpenFlightRecorder(FlightRecorderConfig{Dir: dir, Tracer: NewTracer(1, 16)})
	if err != nil {
		t.Fatal(err)
	}
	path, err := fr.Dump(3, "manual")
	if err != nil {
		t.Fatal(err)
	}
	if path != filepath.Join(dir, "blackbox-3") {
		t.Fatalf("manual dump path %q", path)
	}
}

package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// ShardAttribution is the per-shard join of step windows and interior
// phase spans. A shard appears here only if it recorded PhaseStep spans
// (trainer / rank shards); background shards (ingest stages, overlapped
// all-reduce goroutines) are aggregated separately.
type ShardAttribution struct {
	Shard  int
	Name   string
	Steps  int
	StepNS int64            // summed step wall time on this shard
	Phases [NumPhases]int64 // phase ns clipped to this shard's step windows
}

// Coverage is the fraction of this shard's step wall time accounted for
// by interior phase spans — the "phases sum to wall" acceptance check.
func (s ShardAttribution) Coverage() float64 {
	if s.StepNS == 0 {
		return 0
	}
	var sum int64
	for p := Phase(1); p < NumPhases; p++ {
		sum += s.Phases[p]
	}
	return float64(sum) / float64(s.StepNS)
}

// Attribution is the structural decomposition of a trace snapshot:
// which step shard spent how long in which phase, what ran in the
// background (overlapped), and the critical-path wall time.
type Attribution struct {
	Shards []ShardAttribution
	// Background holds phase time from shards with no step spans —
	// pipelined ingest stages and overlapped all-reduce. This is work
	// hidden under (or beside) the step critical path, reported
	// separately from the exposed in-step phases.
	Background [NumPhases]int64
	// WallNS is the critical-path step time: the max summed step wall
	// across step shards (ranks run concurrently, so the slowest rank
	// bounds throughput).
	WallNS int64
	// TotalSteps sums Steps over all step shards (rank-steps).
	TotalSteps int
}

// Attribute decomposes a snapshot. Non-step spans on a step shard are
// clipped to that shard's step windows (eval-time or warmup spans
// outside any window don't count); spans on shards without step windows
// accumulate into Background at full duration.
func Attribute(s TraceSnapshot) Attribution {
	byShard := make(map[int32][]Span)
	for _, sp := range s.Spans {
		byShard[sp.Shard] = append(byShard[sp.Shard], sp)
	}
	shardIDs := make([]int32, 0, len(byShard))
	for id := range byShard {
		shardIDs = append(shardIDs, id)
	}
	sort.Slice(shardIDs, func(i, j int) bool { return shardIDs[i] < shardIDs[j] })

	var a Attribution
	for _, id := range shardIDs {
		spans := byShard[id]
		var windows [][2]int64
		for _, sp := range spans {
			if sp.Phase == PhaseStep {
				windows = append(windows, [2]int64{sp.Start, sp.End})
			}
		}
		if len(windows) == 0 {
			for _, sp := range spans {
				a.Background[sp.Phase] += sp.Dur()
			}
			continue
		}
		sa := ShardAttribution{Shard: int(id), Name: s.ShardName(int(id)), Steps: len(windows)}
		for _, w := range windows {
			sa.StepNS += w[1] - w[0]
		}
		for _, sp := range spans {
			if sp.Phase == PhaseStep {
				continue
			}
			sa.Phases[sp.Phase] += overlap(sp, windows)
		}
		a.TotalSteps += sa.Steps
		if sa.StepNS > a.WallNS {
			a.WallNS = sa.StepNS
		}
		a.Shards = append(a.Shards, sa)
	}
	return a
}

// overlap returns the nanoseconds of sp covered by any window. Windows
// from a single-writer shard are disjoint, so overlaps simply add.
func overlap(sp Span, windows [][2]int64) int64 {
	var total int64
	for _, w := range windows {
		lo, hi := sp.Start, sp.End
		if lo < w[0] {
			lo = w[0]
		}
		if hi > w[1] {
			hi = w[1]
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// PerStepNS returns the observed average nanoseconds per rank-step for
// each phase — summed phase time over step shards divided by the total
// rank-step count. This is the quantity comparable to a per-device
// analytic prediction.
func (a Attribution) PerStepNS() [NumPhases]float64 {
	var out [NumPhases]float64
	if a.TotalSteps == 0 {
		return out
	}
	for _, sa := range a.Shards {
		for p := Phase(0); p < NumPhases; p++ {
			out[p] += float64(sa.Phases[p])
		}
	}
	for p := Phase(0); p < NumPhases; p++ {
		out[p] /= float64(a.TotalSteps)
	}
	return out
}

// StepWallNS returns observed average step wall nanoseconds per
// rank-step.
func (a Attribution) StepWallNS() float64 {
	if a.TotalSteps == 0 {
		return 0
	}
	var sum int64
	for _, sa := range a.Shards {
		sum += sa.StepNS
	}
	return float64(sum) / float64(a.TotalSteps)
}

// Coverage is the phase-sum / step-wall ratio over all step shards. The
// tracer's gap-free tiling (Tracer.Next) makes this structurally ~1.0;
// the telemetry_attribution experiment asserts |1-Coverage| < 1%.
func (a Attribution) Coverage() float64 {
	var phases, wall int64
	for _, sa := range a.Shards {
		wall += sa.StepNS
		for p := Phase(1); p < NumPhases; p++ {
			phases += sa.Phases[p]
		}
	}
	if wall == 0 {
		return 0
	}
	return float64(phases) / float64(wall)
}

// Render joins the observed per-step phase times against an analytic
// prediction (seconds per phase per step, e.g. perfmodel.PredictedPhases;
// nil for observed-only) into the attribution table, followed by
// background/overlapped totals and the coverage line.
func (a Attribution) Render(predicted map[Phase]float64) string {
	per := a.PerStepNS()
	wall := a.StepWallNS()
	var b strings.Builder
	rows := [][]string{{"phase", "observed ms/step", "predicted ms/step", "obs/pred", "share %"}}
	for p := Phase(1); p < NumPhases; p++ {
		obs := per[p]
		pred, hasPred := 0.0, false
		if predicted != nil {
			pred, hasPred = predicted[p]
		}
		if obs == 0 && !hasPred {
			continue
		}
		predCell, ratioCell := "-", "-"
		if hasPred {
			predCell = metrics.F(pred * 1e3)
			if pred > 0 {
				ratioCell = metrics.F2(obs / 1e9 / pred)
			}
		}
		share := "-"
		if wall > 0 {
			share = metrics.F2(obs / wall * 100)
		}
		rows = append(rows, []string{p.String(), metrics.F(obs / 1e6), predCell, ratioCell, share})
	}
	rows = append(rows, []string{"step (wall)", metrics.F(wall / 1e6), "-", "-", "100.00"})
	b.WriteString(metrics.Table(rows))

	var bg [][]string
	for p := Phase(0); p < NumPhases; p++ {
		if a.Background[p] > 0 {
			bg = append(bg, []string{p.String(), metrics.F(float64(a.Background[p]) / 1e6)})
		}
	}
	if len(bg) > 0 {
		b.WriteString("\nbackground / overlapped (not on the step critical path):\n")
		b.WriteString(metrics.Table(append([][]string{{"phase", "total ms"}}, bg...)))
	}
	fmt.Fprintf(&b, "\nsteps=%d  critical-path wall=%s ms  phase coverage=%.2f%%\n",
		a.TotalSteps, metrics.F(float64(a.WallNS)/1e6), a.Coverage()*100)
	return b.String()
}

// Timeline renders the snapshot as a per-shard ASCII Gantt chart (one
// track per shard, '#' where any non-step span runs) — the quick-look
// text alternative to the Chrome trace.
func (s TraceSnapshot) Timeline(width int) string {
	if len(s.Spans) == 0 {
		return "(no spans)\n"
	}
	t0, t1 := s.Spans[0].Start, s.Spans[0].End
	byShard := make(map[int32][][2]float64)
	var order []int32
	for _, sp := range s.Spans {
		if sp.Start < t0 {
			t0 = sp.Start
		}
		if sp.End > t1 {
			t1 = sp.End
		}
		if sp.Phase == PhaseStep {
			continue
		}
		if _, ok := byShard[sp.Shard]; !ok {
			order = append(order, sp.Shard)
		}
		byShard[sp.Shard] = append(byShard[sp.Shard], [2]float64{float64(sp.Start), float64(sp.End)})
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	rows := make([]metrics.GanttRow, 0, len(order))
	for _, id := range order {
		rows = append(rows, metrics.GanttRow{Label: s.ShardName(int(id)), Intervals: byShard[id]})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "window %s ms (%d spans)\n", metrics.F(float64(t1-t0)/1e6), len(s.Spans))
	b.WriteString(metrics.Gantt(rows, float64(t0), float64(t1), width))

	// Per-phase latency quantiles: the tail view the Gantt hides. Fed
	// from the histogram banks when present (full run coverage), else
	// rebuilt from the retained spans.
	lat := [][]string{{"phase", "spans", "mean ms", "p50 ms", "p99 ms", "max ms"}}
	for p := Phase(0); p < NumPhases; p++ {
		h := s.PhaseHist(p)
		if h.Count() == 0 {
			continue
		}
		q := h.Summary()
		lat = append(lat, []string{
			p.String(), fmt.Sprintf("%d", q.Count),
			metrics.F(q.Mean / 1e6), metrics.F(float64(q.P50) / 1e6),
			metrics.F(float64(q.P99) / 1e6), metrics.F(float64(q.Max) / 1e6),
		})
	}
	if len(lat) > 1 {
		b.WriteString("\nphase latency quantiles:\n")
		b.WriteString(metrics.Table(lat))
	}
	return b.String()
}

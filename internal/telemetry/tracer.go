package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Span is one recorded interval on one shard. Start and End are
// nanoseconds since the telemetry epoch (see Now).
type Span struct {
	Phase Phase
	Shard int32
	Start int64
	End   int64
}

// Dur returns the span length in nanoseconds.
func (s Span) Dur() int64 { return s.End - s.Start }

// SpanToken is an open span: the phase and its start timestamp. Tokens
// live on the caller's stack — Begin/Next/End never touch the heap.
type SpanToken struct {
	phase Phase
	start int64
	live  bool
}

// Start returns the token's begin timestamp (0 for a token minted by a
// nil tracer).
func (t SpanToken) Start() int64 { return t.start }

// traceShard is one single-writer span slab. Exactly one goroutine may
// record into a shard at a time; distinct shards are written
// concurrently without synchronization (disjoint memory). The pad keeps
// two shards' hot cursors off one cache line.
type traceShard struct {
	spans []Span
	next  int
	total uint64
	_     [64]byte
}

// Tracer is a fixed-capacity, slab-backed span recorder. It is sharded:
// every recording goroutine (trainer, rank, decoder, assembler) owns one
// shard index and appends completed spans into that shard's
// pre-allocated ring, overwriting the oldest spans when full. The record
// path performs no allocations and takes no locks; Snapshot (which does
// allocate) must only run while the shards are quiescent — between
// steps, or after the recording goroutines stopped.
//
// A nil *Tracer is valid: every method no-ops, so hot paths instrument
// unconditionally.
type Tracer struct {
	shards []traceShard
	names  []string
	// hists holds one fixed bank of per-phase latency histograms per
	// shard, allocated up front so the record path stays allocation-free.
	// Unlike the span rings, histograms never overwrite: they keep the
	// full latency distribution of every span ever recorded, which is
	// what the doctor's tail analysis reads.
	hists []PhaseHistograms
}

// PhaseHistograms is one shard's bank of per-phase latency histograms.
type PhaseHistograms [NumPhases]Histogram

// NewTracer builds a tracer with the given shard count, each holding a
// ring of capacity spans. Memory is allocated up front: shards ×
// capacity × 24 bytes.
func NewTracer(shards, capacity int) *Tracer {
	if shards <= 0 {
		panic(fmt.Sprintf("telemetry: tracer shard count %d", shards))
	}
	if capacity <= 0 {
		capacity = 1024
	}
	t := &Tracer{
		shards: make([]traceShard, shards),
		names:  make([]string, shards),
		hists:  make([]PhaseHistograms, shards),
	}
	for i := range t.shards {
		t.shards[i].spans = make([]Span, capacity)
		t.names[i] = fmt.Sprintf("shard %d", i)
	}
	return t
}

// Shards returns the shard count (0 for a nil tracer).
func (t *Tracer) Shards() int {
	if t == nil {
		return 0
	}
	return len(t.shards)
}

// NameShard labels a shard for the exporters ("rank 0", "decoder 1").
func (t *Tracer) NameShard(i int, name string) {
	if t == nil {
		return
	}
	t.names[i] = name
}

// Begin opens a span. It only reads the clock; pass the token to End (or
// Next) on the owning shard to record it.
func (t *Tracer) Begin(p Phase) SpanToken {
	if t == nil {
		return SpanToken{}
	}
	return SpanToken{phase: p, start: Now(), live: true}
}

// End closes the span onto the shard's slab and returns the end
// timestamp (0 on a nil tracer or dead token).
func (t *Tracer) End(shard int, tok SpanToken) int64 {
	if t == nil || !tok.live {
		return 0
	}
	end := Now()
	t.record(shard, tok.phase, tok.start, end)
	return end
}

// Next closes tok and opens a follow-up span of phase p at the same
// timestamp, so consecutive segments tile with zero gap — the property
// that makes per-phase times sum to step wall time exactly.
func (t *Tracer) Next(shard int, tok SpanToken, p Phase) SpanToken {
	if t == nil {
		return SpanToken{}
	}
	now := Now()
	if tok.live {
		t.record(shard, tok.phase, tok.start, now)
	}
	return SpanToken{phase: p, start: now, live: true}
}

// Emit records a span with explicit bounds — for callers that already
// captured timestamps with Now (the hybrid rank step times its segments
// this way and emits them after the fact).
func (t *Tracer) Emit(shard int, p Phase, start, end int64) {
	if t == nil {
		return
	}
	t.record(shard, p, start, end)
}

func (t *Tracer) record(shard int, p Phase, start, end int64) {
	s := &t.shards[shard]
	s.spans[s.next] = Span{Phase: p, Shard: int32(shard), Start: start, End: end}
	s.next++
	if s.next == len(s.spans) {
		s.next = 0
	}
	s.total++
	t.hists[shard][p].Record(end - start)
}

// PhaseHist returns a merged clone of phase p's latency histogram across
// every shard. It uses atomic loads, so it is safe while recording is
// live (an approximate in-flight view); for exact numbers take it at a
// quiescent point. A nil tracer returns an empty histogram.
func (t *Tracer) PhaseHist(p Phase) Histogram {
	var out Histogram
	if t == nil {
		return out
	}
	for i := range t.hists {
		c := t.hists[i][p].Clone()
		out.Merge(&c)
	}
	return out
}

// PhaseSumsNS accumulates into dst, per phase, the running sum of all
// recorded span durations across every shard — 16×shards atomic loads,
// no allocation, safe while recording is live. The flight recorder
// diffs consecutive calls to attribute each step's time to phases
// without touching the span rings. Nil-safe.
func (t *Tracer) PhaseSumsNS(dst *[NumPhases]int64) {
	if t == nil {
		return
	}
	for i := range t.hists {
		for p := range t.hists[i] {
			dst[p] += int64(atomic.LoadUint64(&t.hists[i][p].sum))
		}
	}
}

// Reset discards every recorded span (capacity is retained). Like
// Snapshot, it requires quiescent shards.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.next = 0
		s.total = 0
		for j := range s.spans {
			s.spans[j] = Span{}
		}
		t.hists[i] = PhaseHistograms{}
	}
}

// TraceSnapshot is a point-in-time copy of a tracer's retained spans,
// ordered by start time, plus the shard labels and the count of spans
// lost to ring overwrite.
type TraceSnapshot struct {
	Spans   []Span
	Shards  []string
	Dropped uint64
	// Hists carries each shard's per-phase latency histograms. Unlike
	// Spans (bounded by the ring capacity), the histograms cover every
	// span recorded since the last Reset, so tail quantiles survive ring
	// overwrite.
	Hists []PhaseHistograms
}

// Snapshot copies the retained spans out of every shard. It allocates,
// and must not run concurrently with recording (call it between steps or
// after the recording goroutines are done).
func (t *Tracer) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	var snap TraceSnapshot
	snap.Shards = append([]string(nil), t.names...)
	snap.Hists = make([]PhaseHistograms, len(t.hists))
	for i := range t.hists {
		for p := range t.hists[i] {
			snap.Hists[i][p] = t.hists[i][p].Clone()
		}
	}
	for i := range t.shards {
		s := &t.shards[i]
		n := int(s.total)
		if n > len(s.spans) {
			snap.Dropped += s.total - uint64(len(s.spans))
			n = len(s.spans)
		}
		// Ring order: oldest retained span first.
		start := s.next - n
		if start < 0 {
			start += len(s.spans)
		}
		for k := 0; k < n; k++ {
			snap.Spans = append(snap.Spans, s.spans[(start+k)%len(s.spans)])
		}
	}
	sort.SliceStable(snap.Spans, func(i, j int) bool { return snap.Spans[i].Start < snap.Spans[j].Start })
	return snap
}

// ShardName returns the label of shard i ("shard i" when unnamed).
func (s TraceSnapshot) ShardName(i int) string {
	if i >= 0 && i < len(s.Shards) {
		return s.Shards[i]
	}
	return fmt.Sprintf("shard %d", i)
}

// PhaseHist merges phase p's latency histogram across every shard of
// the snapshot. When the snapshot carries no histogram banks (hand-built
// literals in tests), it falls back to bucketing the retained spans.
func (s TraceSnapshot) PhaseHist(p Phase) Histogram {
	var out Histogram
	if len(s.Hists) == 0 {
		for _, sp := range s.Spans {
			if sp.Phase == p {
				out.Record(sp.Dur())
			}
		}
		return out
	}
	for i := range s.Hists {
		out.Merge(&s.Hists[i][p])
	}
	return out
}

// ShardPhaseHist returns shard i's histogram for phase p (empty when the
// snapshot has no banks or i is out of range), with the same span-level
// fallback as PhaseHist.
func (s TraceSnapshot) ShardPhaseHist(i int, p Phase) Histogram {
	var out Histogram
	if len(s.Hists) == 0 {
		for _, sp := range s.Spans {
			if sp.Phase == p && int(sp.Shard) == i {
				out.Record(sp.Dur())
			}
		}
		return out
	}
	if i >= 0 && i < len(s.Hists) {
		out = s.Hists[i][p]
	}
	return out
}

// PhaseTotals sums span durations per phase in seconds across the whole
// snapshot (PhaseStep excluded — it envelopes the others).
func (s TraceSnapshot) PhaseTotals() map[Phase]float64 {
	out := make(map[Phase]float64)
	for _, sp := range s.Spans {
		if sp.Phase == PhaseStep {
			continue
		}
		out[sp.Phase] += float64(sp.Dur()) / 1e9
	}
	return out
}

//go:build !race

package distrib

const raceDetectorEnabled = false

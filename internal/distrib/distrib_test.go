package distrib

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/tensor"
)

func clusterCfg() core.Config {
	return core.Config{
		Name:          "distrib-test",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(4, 200, 3),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.DotProduct,
	}
}

func newTestCluster(t *testing.T, cc ClusterConfig) *Cluster {
	t.Helper()
	cl, err := NewCluster(clusterCfg(), cc, 1)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return cl
}

// genFactory forks one base generator so every trainer thread sees the
// same planted label function on an independent feature stream.
func genFactory(cfg core.Config) func(int, int) *data.Generator {
	base := data.NewGenerator(cfg, 7, data.DefaultOptions())
	return func(trainer, thread int) *data.Generator {
		return base.Fork(100 + int64(trainer*10+thread))
	}
}

func TestClusterShardsCoverAllTables(t *testing.T) {
	cl := newTestCluster(t, ClusterConfig{SparsePS: 3})
	owned := map[int]bool{}
	for _, ps := range cl.SparsePS {
		for f := range ps.tables {
			if owned[f] {
				t.Fatalf("feature %d owned by two shards", f)
			}
			owned[f] = true
			if cl.Owner(f) != ps.Shard {
				t.Fatalf("owner map disagrees for feature %d", f)
			}
		}
	}
	cfg := clusterCfg()
	if len(owned) != cfg.NumSparse() {
		t.Fatalf("only %d features owned", len(owned))
	}
}

func TestSparsePSLookupAndMetering(t *testing.T) {
	cl := newTestCluster(t, ClusterConfig{SparsePS: 2})
	f := 0
	ps := cl.SparsePS[cl.Owner(f)]
	bag := embedding.NewBag([][]int32{{1, 2}, {3}})
	out := tensor.New(2, clusterCfg().EmbeddingDim)
	ps.Lookup(f, bag, out)
	if ps.Requests() != 1 {
		t.Errorf("Requests = %d", ps.Requests())
	}
	wantBytes := int64(3*4 + 2*8*4)
	if ps.BytesTransferred() != wantBytes {
		t.Errorf("BytesTransferred = %d, want %d", ps.BytesTransferred(), wantBytes)
	}
}

func TestSparsePSPanicsOnWrongShard(t *testing.T) {
	cl := newTestCluster(t, ClusterConfig{SparsePS: 2})
	f := 0
	wrong := cl.SparsePS[(cl.Owner(f)+1)%2]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	wrong.Lookup(f, embedding.NewBag([][]int32{{1}}), tensor.New(1, 8))
}

func TestTrainRunsAndAccountsTraffic(t *testing.T) {
	cc := ClusterConfig{Trainers: 2, SparsePS: 2, Hogwild: 2, BatchSize: 32, EASGDPeriod: 2}
	if raceDetectorEnabled {
		// Hogwild threads share dense parameters and trainers share
		// sparse shards without locks on purpose (the paper's
		// asynchronous modes); a serial configuration keeps the
		// pipeline and accounting covered without tripping -race.
		cc.Trainers, cc.Hogwild = 1, 1
	}
	cl := newTestCluster(t, cc)
	res, err := cl.Train(cc, genFactory(clusterCfg()), 10)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	want := int64(cc.Trainers * cc.Hogwild * 10 * 32)
	if res.Examples != want {
		t.Errorf("Examples = %d, want %d", res.Examples, want)
	}
	if res.DenseBytes <= 0 || res.SparseBytes <= 0 {
		t.Errorf("traffic accounting: dense %d sparse %d", res.DenseBytes, res.SparseBytes)
	}
	if cl.DensePS.Syncs() == 0 {
		t.Error("EASGD syncs never happened")
	}
	if res.MeanLoss <= 0 {
		t.Errorf("MeanLoss = %v", res.MeanLoss)
	}
}

func TestTrainNilGenerator(t *testing.T) {
	cc := ClusterConfig{}
	cl := newTestCluster(t, cc)
	if _, err := cl.Train(cc, nil, 1); err == nil {
		t.Error("nil generator accepted")
	}
}

// TestDistributedConvergence: the distributed cluster must learn the
// planted task — center-model NE below 1 after training.
func TestDistributedConvergence(t *testing.T) {
	cfg := clusterCfg()
	cc := ClusterConfig{Trainers: 2, SparsePS: 2, Hogwild: 1, BatchSize: 64,
		LR: 0.1, EASGDPeriod: 4, EASGDAlpha: 0.4}
	if raceDetectorEnabled {
		// Trainers update shared sparse shards without locks on purpose
		// (asynchronous PS mode); serial still tests convergence.
		cc.Trainers = 1
	}
	cl, err := NewCluster(cfg, cc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Train(cc, genFactory(cfg), 500); err != nil {
		t.Fatal(err)
	}
	eval := cl.EvalModel()
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions()).Fork(999)
	res := core.Evaluate(eval, gen.EvalSet(10, 64))
	if res.NE >= 1.0 {
		t.Errorf("distributed training did not learn: NE = %v", res.NE)
	}
}

// TestEASGDKeepsWorkersNearCenter: after many syncs the center must have
// moved away from initialization (it absorbs worker progress).
func TestEASGDCenterMoves(t *testing.T) {
	cfg := clusterCfg()
	cc := ClusterConfig{Trainers: 2, SparsePS: 1, BatchSize: 32, EASGDPeriod: 2}
	if raceDetectorEnabled {
		cc.Trainers = 1 // see TestDistributedConvergence
	}
	cl, err := NewCluster(cfg, cc, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]float32, len(cl.DensePS.Center()[0].Value))
	copy(before, cl.DensePS.Center()[0].Value)
	if _, err := cl.Train(cc, genFactory(cfg), 30); err != nil {
		t.Fatal(err)
	}
	after := cl.DensePS.Center()[0].Value
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("center parameters never moved")
	}
}

func TestMoreTrainersProcessMoreExamples(t *testing.T) {
	if raceDetectorEnabled {
		// Inherently multi-trainer over lock-free shared shards (the
		// paper's asynchronous mode); meaningless to serialize.
		t.Skip("intentional Hogwild-style races; run without -race")
	}
	cfg := clusterCfg()
	run := func(trainers int) int64 {
		cc := ClusterConfig{Trainers: trainers, SparsePS: 2, BatchSize: 16}
		cl, err := NewCluster(cfg, cc, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.Train(cc, genFactory(cfg), 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Examples
	}
	if run(4) != 2*run(2) {
		t.Error("examples must scale linearly with trainers")
	}
}

func TestNewClusterRejectsInvalidConfig(t *testing.T) {
	bad := clusterCfg()
	bad.EmbeddingDim = 0
	if _, err := NewCluster(bad, ClusterConfig{}, 5); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestWorkerModelSharesTablesOnly(t *testing.T) {
	cl := newTestCluster(t, ClusterConfig{})
	w1 := cl.newWorkerModel(0)
	w2 := cl.newWorkerModel(1)
	// Tables shared with the shards.
	if &w1.Tables[0].Weights.Data[0] != &cl.reference.Tables[0].Weights.Data[0] {
		t.Error("worker tables must alias shard tables")
	}
	// Dense replicas private.
	w1.DenseParams()[0].Value[0] = 42
	if w2.DenseParams()[0].Value[0] == 42 {
		t.Error("worker dense replicas must be private")
	}
}

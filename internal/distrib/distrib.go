// Package distrib implements the paper's distributed training pipeline
// (Fig 4) as a real, in-process system: trainer goroutines run Hogwild!
// threads over shared model replicas, a dense parameter server performs
// Elastic-Averaging SGD exchanges, and embedding tables are sharded
// table-wise across sparse parameter-server shards that meter every byte
// crossing the (simulated) wire.
//
// Gradients, models, and updates are all real — this is the substrate for
// the paper's model-quality experiments at distributed scale, and its
// byte meters tie the analytic cost model to observed traffic.
package distrib

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// DensePS is the master copy of the MLP parameters. Trainers exchange
// with it using the symmetric EASGD rule under a mutex (the production
// system's "center" parameters).
type DensePS struct {
	mu     sync.Mutex
	center []nn.Param
	bytes  atomic.Int64
	syncs  atomic.Int64
}

// NewDensePS snapshots the given model's dense parameters as the center.
func NewDensePS(m *core.Model) *DensePS {
	c := m.Clone()
	return &DensePS{center: c.DenseParams()}
}

// Sync performs one elastic exchange between worker parameters and the
// center, accounting the wire traffic (parameters down + up).
func (ps *DensePS) Sync(worker []nn.Param, alpha float32) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	optim.EASGDSyncParams(worker, ps.center, alpha)
	var n int64
	for _, p := range worker {
		n += int64(len(p.Value)) * 4
	}
	ps.bytes.Add(2 * n)
	ps.syncs.Add(1)
}

// Center returns the center parameter list (for evaluation snapshots).
func (ps *DensePS) Center() []nn.Param { return ps.center }

// BytesTransferred returns cumulative EASGD wire bytes.
func (ps *DensePS) BytesTransferred() int64 { return ps.bytes.Load() }

// Syncs returns the number of elastic exchanges served.
func (ps *DensePS) Syncs() int64 { return ps.syncs.Load() }

// SparsePS is one shard of the sharded sparse parameter servers: it owns
// a subset of the embedding tables and applies row-wise AdaGrad updates.
type SparsePS struct {
	Shard  int
	tables map[int]*embedding.Table // feature index -> table
	opts   map[int]*optim.RowWiseAdagrad
	bytes  atomic.Int64
	reqs   atomic.Int64
}

// Lookup pools the bag for feature f into out and meters response bytes.
func (ps *SparsePS) Lookup(f int, bag embedding.Bag, out *tensor.Matrix) {
	t, ok := ps.tables[f]
	if !ok {
		panic(fmt.Sprintf("distrib: shard %d does not own feature %d", ps.Shard, f))
	}
	t.Forward(bag, out)
	ps.bytes.Add(int64(len(bag.Indices))*4 + int64(out.Rows*out.Cols)*4)
	ps.reqs.Add(1)
}

// ApplyGrad applies a sparse gradient to the shard's table and meters
// request bytes.
func (ps *SparsePS) ApplyGrad(f int, sg *embedding.SparseGrad) {
	opt, ok := ps.opts[f]
	if !ok {
		panic(fmt.Sprintf("distrib: shard %d does not own feature %d", ps.Shard, f))
	}
	opt.Apply(sg)
	ps.bytes.Add(int64(sg.NumRows()) * int64(sg.Dim+1) * 4)
	ps.reqs.Add(1)
}

// BytesTransferred returns cumulative wire bytes served by the shard.
func (ps *SparsePS) BytesTransferred() int64 { return ps.bytes.Load() }

// Requests returns the number of lookup/update RPCs served.
func (ps *SparsePS) Requests() int64 { return ps.reqs.Load() }

// Cluster is a full distributed training deployment.
type Cluster struct {
	Cfg      core.Config
	DensePS  *DensePS
	SparsePS []*SparsePS
	// owner[f] is the shard owning feature f.
	owner []int

	reference *core.Model // architecture template for worker replicas
	sparseLR  float32
}

// ClusterConfig sizes a deployment.
type ClusterConfig struct {
	Trainers   int
	SparsePS   int
	Hogwild    int // Hogwild! threads per trainer
	BatchSize  int
	LR         float64
	SparseLR   float64
	EASGDAlpha float64
	// EASGDPeriod is the number of iterations between elastic syncs.
	EASGDPeriod int
}

// Defaults fills unset fields with the paper's common choices.
func (c *ClusterConfig) Defaults() {
	if c.Trainers == 0 {
		c.Trainers = 2
	}
	if c.SparsePS == 0 {
		c.SparsePS = 2
	}
	if c.Hogwild == 0 {
		c.Hogwild = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 100
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.SparseLR == 0 {
		c.SparseLR = c.LR
	}
	if c.EASGDAlpha == 0 {
		c.EASGDAlpha = 0.3
	}
	if c.EASGDPeriod == 0 {
		c.EASGDPeriod = 4
	}
}

// NewCluster builds the deployment: a reference model, the dense center,
// and table-wise sharded sparse parameter servers balanced by size and
// access (the §III-A2 greedy partitioner).
func NewCluster(cfg core.Config, cc ClusterConfig, seed int64) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cc.Defaults()
	rng := xrand.New(seed)
	ref := core.NewModel(cfg, rng)

	cl := &Cluster{Cfg: cfg, reference: ref, sparseLR: float32(cc.SparseLR)}
	cl.DensePS = NewDensePS(ref)

	stats := make([]embedding.TableStat, cfg.NumSparse())
	for i, s := range cfg.TableStats() {
		stats[i] = embedding.TableStat{Index: s.Index, Bytes: s.Bytes, MeanPooled: s.MeanPooled}
	}
	asg, _ := embedding.TableWiseGreedy(stats, cc.SparsePS, 0.5)
	cl.owner = make([]int, cfg.NumSparse())
	cl.SparsePS = make([]*SparsePS, cc.SparsePS)
	for i := range cl.SparsePS {
		cl.SparsePS[i] = &SparsePS{
			Shard:  i,
			tables: map[int]*embedding.Table{},
			opts:   map[int]*optim.RowWiseAdagrad{},
		}
	}
	for f, shard := range asg {
		cl.owner[f] = shard
		cl.SparsePS[shard].tables[f] = ref.Tables[f]
		cl.SparsePS[shard].opts[f] = optim.NewRowWiseAdagrad(ref.Tables[f], float32(cc.SparseLR))
	}
	return cl, nil
}

// Owner returns the shard index owning feature f.
func (cl *Cluster) Owner(f int) int { return cl.owner[f] }

// TrainResult summarizes one distributed training run.
type TrainResult struct {
	Examples    int64
	MeanLoss    float64
	DenseBytes  int64
	SparseBytes int64
}

// Train runs the full pipeline: cc.Trainers trainer goroutines, each with
// cc.Hogwild Hogwild! threads, consuming iters mini-batches per thread
// from per-thread generators, doing remote-style lookups against the
// sparse shards and EASGD syncs against the dense center.
func (cl *Cluster) Train(cc ClusterConfig, gen func(trainer, thread int) *data.Generator, iters int) (TrainResult, error) {
	cc.Defaults()
	if gen == nil {
		return TrainResult{}, fmt.Errorf("distrib: nil generator factory")
	}
	var examples atomic.Int64
	var lossSum, lossN atomic.Int64 // fixed-point loss accumulation (micro-units)

	var wg sync.WaitGroup
	for t := 0; t < cc.Trainers; t++ {
		// Each trainer holds a local dense replica; Hogwild threads
		// share it without locks (the paper's intra-trainer mode).
		local := cl.newWorkerModel(int64(t))
		for h := 0; h < cc.Hogwild; h++ {
			wg.Add(1)
			go func(t, h int) {
				defer wg.Done()
				worker := local.ShareWeights()
				g := gen(t, h)
				opt := optim.NewSGD(worker.DenseParams(), float32(cc.LR))
				// Per-worker arena: one recycled MiniBatch and one
				// gradient buffer per Hogwild thread, so the steady-state
				// loop stops churning the heap.
				var ar workerArena
				for it := 0; it < iters; it++ {
					ar.batch = g.NextBatchInto(cc.BatchSize, ar.batch)
					loss := cl.step(worker, opt, ar.batch, &ar)
					examples.Add(int64(cc.BatchSize))
					lossSum.Add(int64(loss * 1e6))
					lossN.Add(1)
					if h == 0 && (it+1)%cc.EASGDPeriod == 0 {
						cl.DensePS.Sync(local.DenseParams(), float32(cc.EASGDAlpha))
					}
				}
			}(t, h)
		}
	}
	wg.Wait()

	res := TrainResult{
		Examples:   examples.Load(),
		DenseBytes: cl.DensePS.BytesTransferred(),
	}
	for _, ps := range cl.SparsePS {
		res.SparseBytes += ps.BytesTransferred()
	}
	if n := lossN.Load(); n > 0 {
		res.MeanLoss = float64(lossSum.Load()) / 1e6 / float64(n)
	}
	return res, nil
}

// newWorkerModel creates a trainer-local model: private dense parameters
// initialized from the center, shared (remote) embedding tables.
func (cl *Cluster) newWorkerModel(seed int64) *core.Model {
	_ = seed // replicas start from the center; seed reserved for future perturbation
	return &core.Model{
		Cfg:    cl.Cfg,
		Bottom: cl.reference.Bottom.Clone(),
		Top:    cl.reference.Top.Clone(),
		Tables: cl.reference.Tables, // embedding rows stay remote/shared
	}
}

// workerArena holds the per-Hogwild-thread reusable buffers: the recycled
// mini-batch and the logit-gradient slice.
type workerArena struct {
	batch *core.MiniBatch
	grad  []float32
}

// step runs forward/backward on the worker, routing pooled lookups and
// gradient pushes through the owning shards. Because the worker model
// shares table storage with the shards, Forward reads the same rows the
// shard would serve; the shard's meters account the would-be wire bytes.
func (cl *Cluster) step(worker *core.Model, opt *optim.SGD, b *core.MiniBatch, ar *workerArena) float64 {
	// Meter the lookups on the owning shards.
	for f, bag := range b.Bags {
		ps := cl.SparsePS[cl.owner[f]]
		ps.bytes.Add(int64(len(bag.Indices))*4 + int64(bag.Batch()*worker.Cfg.EmbeddingDim)*4)
		ps.reqs.Add(1)
	}
	logits := worker.Forward(b)
	if cap(ar.grad) < len(logits) {
		ar.grad = make([]float32, len(logits))
	}
	grad := ar.grad[:len(logits)]
	loss := nn.BCEWithLogits(logits, b.Labels, grad)
	worker.ZeroGrad()
	sparse := worker.Backward(grad)
	opt.Step()
	for f, sg := range sparse {
		cl.SparsePS[cl.owner[f]].ApplyGrad(f, sg)
	}
	return loss
}

// EvalModel materializes a model holding the center dense parameters and
// the shard tables, for held-out evaluation.
func (cl *Cluster) EvalModel() *core.Model {
	m := &core.Model{
		Cfg:    cl.Cfg,
		Bottom: cl.reference.Bottom.Clone(),
		Top:    cl.reference.Top.Clone(),
		Tables: cl.reference.Tables,
	}
	dst := m.DenseParams()
	src := cl.DensePS.Center()
	for i := range dst {
		copy(dst[i].Value, src[i].Value)
	}
	return m
}

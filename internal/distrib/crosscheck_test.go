package distrib

import (
	"testing"

	"repro/internal/data"
)

// TestWireBytesMatchAnalyticModel cross-validates the real cluster's byte
// meters against the analytic cost model's traffic formulas: per
// iteration, the sparse exchange carries the lookup indices (B·L·4), the
// pooled responses (B·S·d·4), and the row gradients.
func TestWireBytesMatchAnalyticModel(t *testing.T) {
	cfg := clusterCfg()
	cc := ClusterConfig{Trainers: 1, SparsePS: 2, Hogwild: 1, BatchSize: 64, EASGDPeriod: 1000}
	cl, err := NewCluster(cfg, cc, 11)
	if err != nil {
		t.Fatal(err)
	}
	iters := 20
	res, err := cl.Train(cc, genFactory(cfg), iters)
	if err != nil {
		t.Fatal(err)
	}

	B := float64(cc.BatchSize)
	L := cfg.LookupsPerExample()
	d := float64(cfg.EmbeddingDim)
	S := float64(cfg.NumSparse())
	// Analytic per-iteration wire bytes, excluding gradient rows (which
	// depend on the number of distinct rows touched).
	perIterMin := B*L*4 + B*S*d*4
	// Upper bound: every lookup touches a distinct row, each shipping a
	// d-vector gradient plus its index.
	perIterMax := perIterMin + B*L*(d+1)*4

	measured := float64(res.SparseBytes) / float64(iters)
	if measured < perIterMin || measured > perIterMax {
		t.Errorf("sparse wire bytes/iter = %.0f, analytic range [%.0f, %.0f]",
			measured, perIterMin, perIterMax)
	}

	// Dense EASGD traffic: 2 × parameter bytes per sync.
	denseBytes := float64(cfg.DenseParamBytes())
	syncs := float64(cl.DensePS.Syncs())
	if syncs > 0 {
		perSync := float64(res.DenseBytes) / syncs
		if perSync != 2*denseBytes {
			t.Errorf("dense bytes/sync = %v, want %v", perSync, 2*denseBytes)
		}
	}
}

// TestLookupVolumeMatchesConfig: the generator's mean pooled lengths feed
// through to the tables' access counters.
func TestLookupVolumeMatchesConfig(t *testing.T) {
	cfg := clusterCfg()
	cc := ClusterConfig{Trainers: 1, SparsePS: 1, BatchSize: 128}
	cl, err := NewCluster(cfg, cc, 12)
	if err != nil {
		t.Fatal(err)
	}
	iters := 20
	if _, err := cl.Train(cc, genFactory(cfg), iters); err != nil {
		t.Fatal(err)
	}
	var lookups uint64
	for _, tab := range cl.reference.Tables {
		lookups += tab.Lookups()
	}
	examples := float64(iters * 128)
	perExample := float64(lookups) / examples
	want := cfg.LookupsPerExample()
	// The generator's rescaled power law lands near the configured mean.
	if perExample < want*0.4 || perExample > want*2.0 {
		t.Errorf("observed %.1f lookups/example, configured %.1f", perExample, want)
	}
}

// TestGeneratorForkSharesTask: two forks of one generator are learnable
// by a single model interchangeably (shared teacher).
func TestGeneratorForkSharesTask(t *testing.T) {
	cfg := clusterCfg()
	base := data.NewGenerator(cfg, 21, data.DefaultOptions())
	a := base.Fork(1)
	bgen := base.Fork(2)
	// Labels from both forks must have similar base rates (same task).
	rate := func(g *data.Generator) float64 {
		pos, n := 0.0, 0.0
		for i := 0; i < 10; i++ {
			b := g.NextBatch(128)
			for _, y := range b.Labels {
				n++
				if y > 0.5 {
					pos++
				}
			}
		}
		return pos / n
	}
	ra, rb := rate(a), rate(bgen)
	if diff := ra - rb; diff > 0.1 || diff < -0.1 {
		t.Errorf("forked generators disagree on base rate: %v vs %v", ra, rb)
	}
}

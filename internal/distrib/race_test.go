//go:build race

package distrib

// raceDetectorEnabled gates test configurations that rely on Hogwild's
// intentionally lock-free dense-parameter sharing, which the race
// detector flags by design.
const raceDetectorEnabled = true

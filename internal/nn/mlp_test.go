package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

func TestMLPForwardShape(t *testing.T) {
	rng := xrand.New(1)
	m := NewMLP([]int{8, 16, 4, 1}, rng)
	x := tensor.New(5, 8)
	tensor.NormalInit(x, 1, rng)
	y := m.Forward(x)
	if y.Rows != 5 || y.Cols != 1 {
		t.Fatalf("output shape %dx%d, want 5x1", y.Rows, y.Cols)
	}
}

func TestMLPPanicsOnWrongInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input width")
		}
	}()
	rng := xrand.New(1)
	m := NewMLP([]int{8, 4}, rng)
	m.Forward(tensor.New(2, 5))
}

func TestNewMLPPanicsOnShortDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dims of length 1")
		}
	}()
	NewMLP([]int{8}, xrand.New(1))
}

// TestMLPGradCheck validates analytic backprop against central differences
// on every parameter of a small network.
func TestMLPGradCheck(t *testing.T) {
	rng := xrand.New(2)
	m := NewMLP([]int{4, 6, 3, 1}, rng)
	b := 3
	x := tensor.New(b, 4)
	tensor.NormalInit(x, 1, rng)
	labels := []float32{1, 0, 1}

	lossFn := func() float64 {
		out := m.Forward(x)
		logits := make([]float32, b)
		for i := 0; i < b; i++ {
			logits[i] = out.At(i, 0)
		}
		return BCEWithLogits(logits, labels, nil)
	}

	// Analytic gradients.
	m.ZeroGrad()
	out := m.Forward(x)
	logits := make([]float32, b)
	for i := 0; i < b; i++ {
		logits[i] = out.At(i, 0)
	}
	grad := make([]float32, b)
	BCEWithLogits(logits, labels, grad)
	dout := tensor.New(b, 1)
	for i := 0; i < b; i++ {
		dout.Set(i, 0, grad[i])
	}
	m.Backward(dout)

	// Central differences on a float32 ReLU network are noisy at kinks
	// (a perturbation can flip a hidden unit on/off), so the check is
	// statistical: the overwhelming majority of entries must agree.
	total, bad := 0, 0
	for _, p := range m.Params() {
		numer := NumericalGradient(lossFn, p.Value, 1e-2)
		for i := range p.Value {
			total++
			diff := math.Abs(float64(numer[i] - p.Grad[i]))
			scale := math.Max(1e-3, math.Abs(float64(numer[i]))+math.Abs(float64(p.Grad[i])))
			if diff/scale > 0.10 {
				bad++
				t.Logf("%s[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad[i], numer[i])
			}
		}
	}
	if float64(bad) > 0.03*float64(total) {
		t.Fatalf("%d/%d gradient entries disagree beyond tolerance", bad, total)
	}
}

func TestMLPInputGradCheck(t *testing.T) {
	rng := xrand.New(3)
	m := NewMLP([]int{3, 5, 1}, rng)
	x := tensor.New(2, 3)
	tensor.NormalInit(x, 1, rng)
	labels := []float32{1, 0}

	lossFn := func() float64 {
		out := m.Forward(x)
		logits := []float32{out.At(0, 0), out.At(1, 0)}
		return BCEWithLogits(logits, labels, nil)
	}
	m.ZeroGrad()
	out := m.Forward(x)
	logits := []float32{out.At(0, 0), out.At(1, 0)}
	grad := make([]float32, 2)
	BCEWithLogits(logits, labels, grad)
	dout := tensor.FromData(2, 1, append([]float32(nil), grad...))
	dx := m.Backward(dout)

	numer := NumericalGradient(lossFn, x.Data, 1e-2)
	for i := range x.Data {
		diff := math.Abs(float64(numer[i] - dx.Data[i]))
		scale := math.Max(1e-3, math.Abs(float64(numer[i])))
		if diff/scale > 0.05 {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx.Data[i], numer[i])
		}
	}
}

func TestShareWeightsAliasing(t *testing.T) {
	rng := xrand.New(4)
	m := NewMLP([]int{4, 4, 1}, rng)
	c := m.ShareWeights()
	// Mutating clone weights must affect the original (shared storage)...
	c.Params()[0].Value[0] = 42
	if m.Params()[0].Value[0] != 42 {
		t.Error("ShareWeights must alias weight storage")
	}
	// ...but gradients must be private.
	c.Params()[0].Grad[0] = 7
	if m.Params()[0].Grad[0] == 7 {
		t.Error("ShareWeights must NOT alias gradient storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := xrand.New(5)
	m := NewMLP([]int{4, 4, 1}, rng)
	c := m.Clone()
	c.Params()[0].Value[0] = 42
	if m.Params()[0].Value[0] == 42 {
		t.Error("Clone must copy weights")
	}
}

func TestNumParamsAndFLOPs(t *testing.T) {
	m := NewMLP([]int{10, 20, 5}, xrand.New(6))
	wantParams := int64(10*20 + 20 + 20*5 + 5)
	if got := m.NumParams(); got != wantParams {
		t.Errorf("NumParams = %d, want %d", got, wantParams)
	}
	wantFLOPs := int64(2 * (10*20 + 20*5))
	if got := m.FLOPsPerExample(); got != wantFLOPs {
		t.Errorf("FLOPsPerExample = %d, want %d", got, wantFLOPs)
	}
}

func TestZeroGrad(t *testing.T) {
	rng := xrand.New(7)
	m := NewMLP([]int{2, 3, 1}, rng)
	x := tensor.New(2, 2)
	tensor.NormalInit(x, 1, rng)
	out := m.Forward(x)
	dout := tensor.New(out.Rows, out.Cols)
	dout.Fill(1)
	m.Backward(dout)
	m.ZeroGrad()
	for _, p := range m.Params() {
		for i, g := range p.Grad {
			if g != 0 {
				t.Fatalf("%s grad[%d] = %v after ZeroGrad", p.Name, i, g)
			}
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	rng := xrand.New(8)
	m := NewMLP([]int{2, 1}, rng)
	x := tensor.FromData(1, 2, []float32{1, 2})
	dout := tensor.FromData(1, 1, []float32{1})
	m.ZeroGrad()
	m.Forward(x)
	m.Backward(dout.Clone())
	g1 := append([]float32(nil), m.Params()[0].Grad...)
	m.Forward(x)
	m.Backward(dout.Clone())
	for i, g := range m.Params()[0].Grad {
		if math.Abs(float64(g-2*g1[i])) > 1e-5 {
			t.Fatalf("gradients must accumulate: got %v, want %v", g, 2*g1[i])
		}
	}
}

func TestReLUForward(t *testing.T) {
	rng := xrand.New(9)
	m := NewMLP([]int{1, 4, 1}, rng)
	// Hidden activations must be non-negative after ReLU.
	x := tensor.FromData(1, 1, []float32{-3})
	m.Forward(x)
	hidden := m.layers[0].y
	for _, v := range hidden.Data {
		if v < 0 {
			t.Fatalf("ReLU output %v < 0", v)
		}
	}
}

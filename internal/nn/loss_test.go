package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBCEWithLogitsKnownValues(t *testing.T) {
	// logit 0 => p=0.5 => loss = ln 2 regardless of label.
	loss := BCEWithLogits([]float32{0}, []float32{1}, nil)
	if math.Abs(loss-math.Ln2) > 1e-6 {
		t.Errorf("BCE(0,1) = %v, want ln2", loss)
	}
	loss = BCEWithLogits([]float32{0}, []float32{0}, nil)
	if math.Abs(loss-math.Ln2) > 1e-6 {
		t.Errorf("BCE(0,0) = %v, want ln2", loss)
	}
	// Very confident correct prediction => near-zero loss.
	loss = BCEWithLogits([]float32{20}, []float32{1}, nil)
	if loss > 1e-6 {
		t.Errorf("BCE(20,1) = %v, want ~0", loss)
	}
	// Very confident wrong prediction => ~|logit| loss.
	loss = BCEWithLogits([]float32{20}, []float32{0}, nil)
	if math.Abs(loss-20) > 0.01 {
		t.Errorf("BCE(20,0) = %v, want ~20", loss)
	}
}

func TestBCEGradientMatchesNumeric(t *testing.T) {
	logits := []float32{0.5, -1.2, 2.0, 0.0}
	labels := []float32{1, 0, 0, 1}
	grad := make([]float32, 4)
	BCEWithLogits(logits, labels, grad)
	numer := NumericalGradient(func() float64 {
		return BCEWithLogits(logits, labels, nil)
	}, logits, 1e-3)
	for i := range grad {
		if math.Abs(float64(grad[i]-numer[i])) > 1e-3 {
			t.Errorf("grad[%d] = %v, numeric %v", i, grad[i], numer[i])
		}
	}
}

func TestBCEStabilityExtremeLogits(t *testing.T) {
	f := func(z float32) bool {
		if math.IsNaN(float64(z)) || math.IsInf(float64(z), 0) {
			return true
		}
		loss := BCEWithLogits([]float32{z}, []float32{1}, nil)
		return !math.IsNaN(loss) && !math.IsInf(loss, 0) && loss >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBCEPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BCEWithLogits([]float32{1}, []float32{1, 2}, nil)
}

func TestLogLossMatchesBCE(t *testing.T) {
	rng := xrand.New(1)
	n := 100
	logits := make([]float32, n)
	labels := make([]float32, n)
	preds := make([]float32, n)
	for i := 0; i < n; i++ {
		logits[i] = float32(rng.NormMS(0, 2))
		if rng.Float64() < 0.5 {
			labels[i] = 1
		}
	}
	SigmoidVec(preds, logits)
	a := BCEWithLogits(logits, labels, nil)
	b := LogLoss(preds, labels)
	if math.Abs(a-b) > 1e-4 {
		t.Errorf("BCEWithLogits %v vs LogLoss %v", a, b)
	}
}

func TestNormalizedEntropyBaseline(t *testing.T) {
	// Predicting exactly the base rate gives NE = 1.
	labels := make([]float32, 1000)
	for i := 0; i < 300; i++ {
		labels[i] = 1
	}
	preds := make([]float32, 1000)
	for i := range preds {
		preds[i] = 0.3
	}
	ne := NormalizedEntropy(preds, labels)
	if math.Abs(ne-1) > 1e-6 {
		t.Errorf("NE at base rate = %v, want 1", ne)
	}
	// A better-than-base model has NE < 1.
	better := make([]float32, 1000)
	for i := range better {
		if labels[i] > 0.5 {
			better[i] = 0.8
		} else {
			better[i] = 0.1
		}
	}
	if ne := NormalizedEntropy(better, labels); ne >= 1 {
		t.Errorf("informative predictions should give NE < 1, got %v", ne)
	}
}

func TestNormalizedEntropyDegenerate(t *testing.T) {
	// All-positive labels: base entropy is 0, NE undefined.
	labels := []float32{1, 1, 1}
	preds := []float32{0.5, 0.5, 0.5}
	if ne := NormalizedEntropy(preds, labels); !math.IsNaN(ne) {
		t.Errorf("NE with degenerate labels = %v, want NaN", ne)
	}
	if ne := NormalizedEntropy(nil, nil); !math.IsNaN(ne) {
		t.Errorf("NE of empty = %v, want NaN", ne)
	}
}

func TestAccuracy(t *testing.T) {
	preds := []float32{0.9, 0.2, 0.6, 0.4}
	labels := []float32{1, 0, 0, 1}
	if acc := Accuracy(preds, labels, 0.5); acc != 0.5 {
		t.Errorf("Accuracy = %v, want 0.5", acc)
	}
	if acc := Accuracy(nil, nil, 0.5); acc != 0 {
		t.Errorf("Accuracy(empty) = %v, want 0", acc)
	}
}

func TestLogLossClamping(t *testing.T) {
	// Exact 0/1 predictions must not produce Inf.
	loss := LogLoss([]float32{0, 1}, []float32{1, 0})
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Errorf("LogLoss with extreme preds = %v", loss)
	}
}

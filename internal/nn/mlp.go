// Package nn implements the multi-layer perceptron (MLP) stacks used by
// the recommendation model: fully connected layers with ReLU activations,
// forward/backward passes over mini-batches, and the classification losses
// and quality metrics (log loss, normalized entropy) the paper reports.
//
// The paper's model (Fig 3) contains two MLP stacks — the bottom (dense
// feature) MLP and the top (post-interaction) MLP — both built from this
// package.
package nn

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Param is one trainable tensor with its gradient accumulator. Optimizers
// consume Params without knowing layer structure.
type Param struct {
	Name  string
	Value []float32
	Grad  []float32
}

// denseLayer is one fully connected layer y = x·W + b with optional ReLU.
type denseLayer struct {
	in, out int
	w       *tensor.Matrix // in×out, shared between weight-sharing clones
	b       []float32      // len out, shared
	gradW   *tensor.Matrix // private per clone
	gradB   []float32

	relu bool

	// forward caches (private per clone)
	x   *tensor.Matrix // input
	y   *tensor.Matrix // post-activation output
	dxB *tensor.Matrix // scratch for input gradient
}

func newDenseLayer(in, out int, relu bool, rng *xrand.RNG) *denseLayer {
	l := &denseLayer{
		in: in, out: out,
		w:     tensor.New(in, out),
		b:     make([]float32, out),
		gradW: tensor.New(in, out),
		gradB: make([]float32, out),
		relu:  relu,
	}
	tensor.XavierInit(l.w, in, out, rng)
	return l
}

func (l *denseLayer) forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.in {
		panic(fmt.Sprintf("nn: layer expects %d inputs, got %d", l.in, x.Cols))
	}
	l.x = x
	if l.y == nil || l.y.Rows != x.Rows {
		l.y = tensor.New(x.Rows, l.out)
	}
	// Fused kernel: matmul, bias, and activation in one pass over l.y.
	tensor.MatMulBiasReLU(l.y, x, l.w, l.b, l.relu)
	return l.y
}

// backward consumes dY (gradient w.r.t. this layer's output), accumulates
// into gradW/gradB, and returns dX. dY may be mutated in place (the ReLU
// mask is applied to it). Steady-state calls allocate nothing: the weight
// gradient accumulates in place (MatMulTransAAcc) and the input-gradient
// buffer is reused across batches.
func (l *denseLayer) backward(dy *tensor.Matrix) *tensor.Matrix {
	// Fused pass: apply the ReLU mask and accumulate the bias gradient
	// (column sums of dY) row-by-row while each row is cache-hot.
	for i := 0; i < dy.Rows; i++ {
		drow := dy.Row(i)
		if l.relu {
			tensor.ReLUGradInto(drow, l.y.Row(i))
		}
		tensor.AddTo(l.gradB, drow)
	}
	// Weight gradient: Xᵀ·dY, accumulated in place.
	tensor.MatMulTransAAcc(l.gradW, l.x, dy)
	// Input gradient: dY·Wᵀ.
	if l.dxB == nil || l.dxB.Rows != dy.Rows {
		l.dxB = tensor.New(dy.Rows, l.in)
	}
	tensor.MatMulTransB(l.dxB, dy, l.w)
	return l.dxB
}

// MLP is a stack of fully connected layers. All hidden layers use ReLU;
// the final layer is linear (the sigmoid lives in the loss).
type MLP struct {
	Dims   []int
	layers []*denseLayer
}

// NewMLP builds an MLP with the given layer dimensions. dims[0] is the
// input width; dims[len-1] is the output width. len(dims) must be >= 2.
func NewMLP(dims []int, rng *xrand.RNG) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{Dims: append([]int(nil), dims...)}
	for i := 0; i+1 < len(dims); i++ {
		relu := i+2 < len(dims) // last layer linear
		m.layers = append(m.layers, newDenseLayer(dims[i], dims[i+1], relu, rng))
	}
	return m
}

// Forward runs the batch x (B×dims[0]) through the stack and returns the
// output (B×dims[last]). Intermediate activations are cached for Backward.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	h := x
	for _, l := range m.layers {
		h = l.forward(h)
	}
	return h
}

// Backward propagates dOut through the stack, accumulating parameter
// gradients, and returns the gradient w.r.t. the input batch.
func (m *MLP) Backward(dout *tensor.Matrix) *tensor.Matrix {
	d := dout
	for i := len(m.layers) - 1; i >= 0; i-- {
		d = m.layers[i].backward(d)
	}
	return d
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.layers {
		l.gradW.Zero()
		for i := range l.gradB {
			l.gradB[i] = 0
		}
	}
}

// Params returns the trainable parameters paired with their gradient
// buffers, in a stable order.
func (m *MLP) Params() []Param {
	var ps []Param
	for i, l := range m.layers {
		ps = append(ps,
			Param{Name: fmt.Sprintf("layer%d.w", i), Value: l.w.Data, Grad: l.gradW.Data},
			Param{Name: fmt.Sprintf("layer%d.b", i), Value: l.b, Grad: l.gradB})
	}
	return ps
}

// ShareWeights returns a new MLP that aliases this MLP's weights but owns
// private gradient and activation buffers. Hogwild! workers each hold one
// weight-sharing clone and update the shared weights lock-free.
func (m *MLP) ShareWeights() *MLP {
	c := &MLP{Dims: m.Dims}
	for _, l := range m.layers {
		c.layers = append(c.layers, &denseLayer{
			in: l.in, out: l.out,
			w: l.w, b: l.b, // shared
			gradW: tensor.New(l.in, l.out),
			gradB: make([]float32, l.out),
			relu:  l.relu,
		})
	}
	return c
}

// Clone returns a deep copy with independent weights and gradients.
func (m *MLP) Clone() *MLP {
	c := &MLP{Dims: m.Dims}
	for _, l := range m.layers {
		nl := &denseLayer{
			in: l.in, out: l.out,
			w:     l.w.Clone(),
			b:     append([]float32(nil), l.b...),
			gradW: tensor.New(l.in, l.out),
			gradB: make([]float32, l.out),
			relu:  l.relu,
		}
		c.layers = append(c.layers, nl)
	}
	return c
}

// NumParams returns the total number of trainable scalars.
func (m *MLP) NumParams() int64 {
	var n int64
	for _, l := range m.layers {
		n += int64(l.in*l.out) + int64(l.out)
	}
	return n
}

// FLOPsPerExample returns the forward-pass multiply-add count for a single
// example, the quantity the hardware cost model charges for MLP compute.
func (m *MLP) FLOPsPerExample() int64 {
	var f int64
	for _, l := range m.layers {
		f += 2 * int64(l.in) * int64(l.out)
	}
	return f
}

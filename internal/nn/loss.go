package nn

import (
	"math"

	"repro/internal/tensor"
)

// BCEWithLogits computes the mean binary cross-entropy between logits and
// {0,1} labels, and the gradient w.r.t. the logits written into grad
// (grad[i] = (sigmoid(logit_i) - label_i) / B). grad may be nil if only
// the loss value is needed.
func BCEWithLogits(logits, labels, grad []float32) float64 {
	if len(logits) != len(labels) {
		panic("nn: logits and labels length mismatch")
	}
	if len(logits) == 0 {
		return 0
	}
	return BCEWithLogitsNorm(logits, labels, grad, 1.0/float64(len(logits)))
}

// BCEWithLogitsNorm is BCEWithLogits with an explicit normalizer: loss
// and gradients are scaled by invN instead of 1/len(logits). Synchronous
// data-parallel ranks pass 1/globalBatch so that each sub-batch gradient
// carries exactly the weight it has in the single-process step and the
// per-rank partial losses sum to the global mean loss.
func BCEWithLogitsNorm(logits, labels, grad []float32, invN float64) float64 {
	if len(logits) != len(labels) {
		panic("nn: logits and labels length mismatch")
	}
	if len(logits) == 0 {
		return 0
	}
	var loss float64
	for i, z := range logits {
		y := float64(labels[i])
		zf := float64(z)
		// Numerically stable: max(z,0) - z*y + log(1+exp(-|z|))
		m := zf
		if m < 0 {
			m = 0
		}
		loss += m - zf*y + math.Log1p(math.Exp(-math.Abs(zf)))
		if grad != nil {
			grad[i] = float32((1.0/(1.0+math.Exp(-zf)) - y) * invN)
		}
	}
	return loss * invN
}

// LogLoss computes the mean binary cross-entropy of probability
// predictions against {0,1} labels, clamping predictions away from 0/1.
func LogLoss(preds, labels []float32) float64 {
	if len(preds) != len(labels) {
		panic("nn: preds and labels length mismatch")
	}
	if len(preds) == 0 {
		return 0
	}
	const eps = 1e-7
	var loss float64
	for i, p := range preds {
		pf := math.Min(math.Max(float64(p), eps), 1-eps)
		if labels[i] > 0.5 {
			loss -= math.Log(pf)
		} else {
			loss -= math.Log(1 - pf)
		}
	}
	return loss / float64(len(preds))
}

// NormalizedEntropy is the paper's model-quality metric (§VI-C): the mean
// log loss divided by the entropy of the empirical base click-through
// rate. NE = 1 means the model is no better than always predicting the
// base rate; lower is better.
func NormalizedEntropy(preds, labels []float32) float64 {
	if len(labels) == 0 {
		return math.NaN()
	}
	var pos float64
	for _, y := range labels {
		if y > 0.5 {
			pos++
		}
	}
	p := pos / float64(len(labels))
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	baseEntropy := -(p*math.Log(p) + (1-p)*math.Log(1-p))
	return LogLoss(preds, labels) / baseEntropy
}

// Accuracy returns the fraction of predictions on the correct side of the
// threshold.
func Accuracy(preds, labels []float32, threshold float32) float64 {
	if len(preds) == 0 {
		return 0
	}
	correct := 0
	for i, p := range preds {
		pred1 := p >= threshold
		lab1 := labels[i] >= 0.5
		if pred1 == lab1 {
			correct++
		}
	}
	return float64(correct) / float64(len(preds))
}

// SigmoidVec applies the logistic function to each logit, writing into dst
// (which may alias logits).
func SigmoidVec(dst, logits []float32) {
	for i, z := range logits {
		dst[i] = tensor.Sigmoid(z)
	}
}

// NumericalGradient estimates d f / d x[i] for each i via central
// differences. Used by tests to validate analytic backprop.
func NumericalGradient(f func() float64, x []float32, eps float32) []float32 {
	g := make([]float32, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		fp := f()
		x[i] = orig - eps
		fm := f()
		x[i] = orig
		g[i] = float32((fp - fm) / (2 * float64(eps)))
	}
	return g
}

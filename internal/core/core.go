// Package core implements the deep learning recommendation model (DLRM)
// that the paper characterizes (Fig 3): a bottom MLP over dense features,
// a set of embedding tables over sparse (categorical) features, a feature
// interaction (concatenation or pairwise dot product), and a top MLP
// producing a click-through-rate logit.
//
// The package provides the full training loop — forward, loss, backward,
// optimizer application — in pure Go, so the paper's model-quality
// experiments (batch-size accuracy gap, hyper-parameter re-tuning) run on
// real gradients rather than a simulation. Hardware-efficiency experiments
// consume only the model Config through the perfmodel package.
package core

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Interaction selects how dense and sparse representations are combined
// before the top MLP (§III-A3).
type Interaction int

const (
	// Concat concatenates the bottom-MLP output with every pooled
	// embedding.
	Concat Interaction = iota
	// DotProduct computes pairwise dot products among the bottom-MLP
	// output and all pooled embeddings, and concatenates the products
	// with the bottom-MLP output.
	DotProduct
)

// String implements fmt.Stringer.
func (i Interaction) String() string {
	switch i {
	case Concat:
		return "concat"
	case DotProduct:
		return "dot"
	default:
		return fmt.Sprintf("Interaction(%d)", int(i))
	}
}

// SparseFeature configures one categorical feature and its embedding
// table.
type SparseFeature struct {
	Name string
	// HashSize is the number of rows after the hashing trick
	// (§III-A2). Production values span 30 .. 20M+ (Fig 6).
	HashSize int
	// MeanPooled is the mean number of activated indices (lookups)
	// per example for this feature (Fig 7). Synthetic data generation
	// and the hardware cost model both consume it.
	MeanPooled float64
	// MaxPooled truncates per-example lookups; the paper's test suite
	// uses 32 (§V).
	MaxPooled int
	// DType overrides the config-wide TableDType for this feature's
	// table. Zero (FP32) means "no override" — use Config.TableDType.
	DType tensor.DType
}

// Config fully describes a DLRM instance. It is the unit of exchange
// between the workload zoo, the real trainer, and the hardware cost
// model.
type Config struct {
	Name string
	// DenseFeatures is the width of the dense input vector (§V sweeps
	// 64..4096).
	DenseFeatures int
	Sparse        []SparseFeature
	// EmbeddingDim is the shared embedding dimension d.
	EmbeddingDim int
	// BottomMLP lists hidden-layer widths of the dense stack. Its
	// input width is DenseFeatures and its output width is forced to
	// EmbeddingDim so dot interaction is well-defined.
	BottomMLP []int
	// TopMLP lists hidden-layer widths of the top stack; a final
	// 1-wide logit layer is appended automatically.
	TopMLP      []int
	Interaction Interaction
	// TableDType is the lookup-path storage precision for every
	// embedding table (per-feature SparseFeature.DType overrides it).
	// FP32 (the zero value) keeps the historical full-precision
	// storage; BF16/FP16 store quantized replicas read by lookups while
	// optimizer math stays on fp32 masters (split-SGD).
	TableDType tensor.DType
}

// DTypeOf resolves the storage dtype of table ti: the per-feature
// override when set, the config-wide TableDType otherwise.
func (c *Config) DTypeOf(ti int) tensor.DType {
	if d := c.Sparse[ti].DType; d != tensor.FP32 {
		return d
	}
	return c.TableDType
}

// Validate checks structural invariants.
func (c *Config) Validate() error {
	if c.DenseFeatures <= 0 {
		return fmt.Errorf("core: DenseFeatures must be positive, got %d", c.DenseFeatures)
	}
	if c.EmbeddingDim <= 0 {
		return fmt.Errorf("core: EmbeddingDim must be positive, got %d", c.EmbeddingDim)
	}
	if len(c.Sparse) == 0 {
		return fmt.Errorf("core: at least one sparse feature required")
	}
	for i, s := range c.Sparse {
		if s.HashSize <= 0 {
			return fmt.Errorf("core: sparse[%d] %q hash size %d", i, s.Name, s.HashSize)
		}
		if s.MeanPooled <= 0 {
			return fmt.Errorf("core: sparse[%d] %q mean pooled %v", i, s.Name, s.MeanPooled)
		}
		if s.MaxPooled <= 0 {
			return fmt.Errorf("core: sparse[%d] %q max pooled %d", i, s.Name, s.MaxPooled)
		}
	}
	return nil
}

// NumSparse returns the number of sparse features (= embedding tables).
func (c *Config) NumSparse() int { return len(c.Sparse) }

// BottomDims returns the full bottom-MLP dimension list including input
// and output widths.
func (c *Config) BottomDims() []int {
	dims := append([]int{c.DenseFeatures}, c.BottomMLP...)
	return append(dims, c.EmbeddingDim)
}

// InteractionDim returns the width of the top MLP's input.
func (c *Config) InteractionDim() int {
	s := c.NumSparse()
	switch c.Interaction {
	case DotProduct:
		// C(S+1, 2) pairwise products + the dense vector itself.
		return (s+1)*s/2 + c.EmbeddingDim
	default:
		return (s + 1) * c.EmbeddingDim
	}
}

// TopDims returns the full top-MLP dimension list including the
// interaction input width and the final logit.
func (c *Config) TopDims() []int {
	dims := append([]int{c.InteractionDim()}, c.TopMLP...)
	return append(dims, 1)
}

// EmbeddingBytes returns the total lookup-path embedding storage the
// config implies, honoring per-table dtypes: reduced-precision tables
// count their quantized replica width. This is the capacity number that
// drives placement decisions.
func (c *Config) EmbeddingBytes() int64 {
	var b int64
	for i, s := range c.Sparse {
		b += int64(s.HashSize) * int64(c.EmbeddingDim) * int64(c.DTypeOf(i).Bytes())
	}
	return b
}

// LookupsPerExample returns the expected total embedding-row accesses one
// example performs (Σ mean pooled lengths).
func (c *Config) LookupsPerExample() float64 {
	var l float64
	for _, s := range c.Sparse {
		l += s.MeanPooled
	}
	return l
}

// MLPFLOPsPerExample returns forward multiply-add FLOPs per example across
// both MLP stacks (2·Σ in·out). Backward costs roughly 2× forward; the
// cost model applies that multiplier.
func (c *Config) MLPFLOPsPerExample() int64 {
	var f int64
	dims := c.BottomDims()
	for i := 0; i+1 < len(dims); i++ {
		f += 2 * int64(dims[i]) * int64(dims[i+1])
	}
	dims = c.TopDims()
	for i := 0; i+1 < len(dims); i++ {
		f += 2 * int64(dims[i]) * int64(dims[i+1])
	}
	return f
}

// InteractionFLOPsPerExample returns the FLOPs of the feature-interaction
// stage for one example.
func (c *Config) InteractionFLOPsPerExample() int64 {
	s := int64(c.NumSparse())
	if c.Interaction == DotProduct {
		return (s + 1) * s / 2 * 2 * int64(c.EmbeddingDim)
	}
	return 0 // concat is a copy
}

// DenseParamBytes returns the fp32 bytes of MLP (dense) parameters, the
// payload of EASGD synchronization with the dense parameter server.
func (c *Config) DenseParamBytes() int64 {
	var n int64
	dims := c.BottomDims()
	for i := 0; i+1 < len(dims); i++ {
		n += int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	dims = c.TopDims()
	for i := 0; i+1 < len(dims); i++ {
		n += int64(dims[i])*int64(dims[i+1]) + int64(dims[i+1])
	}
	return n * 4
}

// PooledBytesPerExample returns the bytes of pooled embedding activations
// exchanged per example between the sparse side and the interaction
// (S·d·4). This is the wire payload when embeddings live remotely.
func (c *Config) PooledBytesPerExample() int64 {
	return int64(c.NumSparse()) * int64(c.EmbeddingDim) * 4
}

// TableStats converts the sparse feature list into the size/access
// statistics that sharding and placement operate on.
func (c *Config) TableStats() []TableStatView {
	stats := make([]TableStatView, len(c.Sparse))
	for i, s := range c.Sparse {
		stats[i] = TableStatView{
			Index:      i,
			Name:       s.Name,
			HashSize:   s.HashSize,
			Bytes:      int64(s.HashSize) * int64(c.EmbeddingDim) * int64(c.DTypeOf(i).Bytes()),
			MeanPooled: s.MeanPooled,
		}
	}
	return stats
}

// TableStatView is the per-table summary used by placement and
// characterization code.
type TableStatView struct {
	Index      int
	Name       string
	HashSize   int
	Bytes      int64
	MeanPooled float64
}

// UniformSparse builds n identical sparse features, the §V test-suite
// shape: fixed hash size, fixed mean pooled lookups, truncation at 32.
func UniformSparse(n, hashSize int, meanPooled float64) []SparseFeature {
	feats := make([]SparseFeature, n)
	for i := range feats {
		feats[i] = SparseFeature{
			Name:       fmt.Sprintf("sparse_%d", i),
			HashSize:   hashSize,
			MeanPooled: meanPooled,
			MaxPooled:  32,
		}
	}
	return feats
}

// GB formats a byte count as gigabytes.
func GB(bytes int64) float64 { return float64(bytes) / (1 << 30) }

// HumanBytes renders a byte count with a binary-unit suffix.
func HumanBytes(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1f TB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// RoundUpPow2 returns the smallest power of two >= v (min 1).
func RoundUpPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << bitsLen(uint(v-1))
}

func bitsLen(v uint) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Almost reports |a-b| <= eps, a float comparison helper shared by tests.
func Almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// makeBatch builds a small deterministic batch for the test config.
func makeBatch(cfg Config, b int, seed int64) *MiniBatch {
	rng := xrand.New(seed)
	dense := tensor.New(b, cfg.DenseFeatures)
	tensor.NormalInit(dense, 1, rng)
	bags := make([]embedding.Bag, cfg.NumSparse())
	for f := range bags {
		per := make([][]int32, b)
		for i := range per {
			n := 1 + rng.Intn(4)
			idxs := make([]int32, n)
			for k := range idxs {
				idxs[k] = int32(rng.Intn(cfg.Sparse[f].HashSize))
			}
			per[i] = idxs
		}
		bags[f] = embedding.NewBag(per)
	}
	labels := make([]float32, b)
	for i := range labels {
		if rng.Float64() < 0.4 {
			labels[i] = 1
		}
	}
	return &MiniBatch{Dense: dense, Bags: bags, Labels: labels}
}

func TestForwardShapesAndDeterminism(t *testing.T) {
	for _, inter := range []Interaction{Concat, DotProduct} {
		cfg := testConfig()
		cfg.Interaction = inter
		m := NewModel(cfg, xrand.New(1))
		b := makeBatch(cfg, 6, 2)
		if err := b.Validate(&cfg); err != nil {
			t.Fatalf("batch invalid: %v", err)
		}
		// Forward reuses its logit buffer, so snapshot the first pass
		// before running the second.
		l1 := append([]float32(nil), m.Forward(b)...)
		l2 := m.Forward(b)
		if len(l1) != 6 {
			t.Fatalf("%v: %d logits", inter, len(l1))
		}
		for i := range l1 {
			if l1[i] != l2[i] {
				t.Fatalf("%v: forward not deterministic", inter)
			}
		}
	}
}

func TestBatchValidateRejectsMismatches(t *testing.T) {
	cfg := testConfig()
	b := makeBatch(cfg, 4, 3)
	bad := *b
	bad.Labels = bad.Labels[:2]
	if bad.Validate(&cfg) == nil {
		t.Error("short labels accepted")
	}
	bad2 := *b
	bad2.Bags = bad2.Bags[:2]
	if bad2.Validate(&cfg) == nil {
		t.Error("missing bags accepted")
	}
}

// TestModelGradCheckDot validates end-to-end gradients (MLPs + embeddings
// + dot interaction) against finite differences.
func TestModelGradCheckDot(t *testing.T) {
	cfg := Config{
		Name:          "gradcheck",
		DenseFeatures: 5,
		Sparse:        UniformSparse(3, 11, 2),
		EmbeddingDim:  4,
		BottomMLP:     []int{6},
		TopMLP:        []int{7},
		Interaction:   DotProduct,
	}
	m := NewModel(cfg, xrand.New(4))
	b := makeBatch(cfg, 3, 5)

	lossOf := func() float64 {
		logits := m.Forward(b)
		return nn.BCEWithLogits(logits, b.Labels, nil)
	}

	logits := m.Forward(b)
	grad := make([]float32, len(logits))
	nn.BCEWithLogits(logits, b.Labels, grad)
	m.ZeroGrad()
	sparse := m.Backward(grad)

	// Check MLP params statistically (ReLU kinks cause rare outliers).
	total, bad := 0, 0
	for _, p := range m.DenseParams() {
		numer := nn.NumericalGradient(lossOf, p.Value, 1e-2)
		for i := range p.Value {
			total++
			diff := math.Abs(float64(numer[i] - p.Grad[i]))
			scale := math.Max(1e-3, math.Abs(float64(numer[i]))+math.Abs(float64(p.Grad[i])))
			if diff/scale > 0.1 {
				bad++
			}
		}
	}
	if float64(bad) > 0.03*float64(total) {
		t.Errorf("MLP grads: %d/%d entries disagree", bad, total)
	}

	// Check a touched embedding row per table (one row keeps it fast).
	for ti, sg := range sparse {
		ids := sg.RowIDs()
		if len(ids) == 0 {
			continue
		}
		ix := ids[0]
		g, _ := sg.Row(ix)
		w := m.Tables[ti].Weights.Row(int(ix))
		for c := 0; c < 2 && c < len(w); c++ {
			orig := w[c]
			const eps = 1e-2
			w[c] = orig + eps
			fp := lossOf()
			w[c] = orig - eps
			fm := lossOf()
			w[c] = orig
			numeric := (fp - fm) / (2 * eps)
			if math.Abs(numeric-float64(g[c])) > math.Max(2e-3, 0.1*math.Abs(numeric)) {
				t.Errorf("table %d row %d col %d: numeric %v vs analytic %v",
					ti, ix, c, numeric, g[c])
			}
		}
	}
}

func TestModelGradCheckConcat(t *testing.T) {
	cfg := Config{
		Name:          "gradcheck-concat",
		DenseFeatures: 4,
		Sparse:        UniformSparse(2, 9, 2),
		EmbeddingDim:  3,
		BottomMLP:     []int{5},
		TopMLP:        []int{6},
		Interaction:   Concat,
	}
	m := NewModel(cfg, xrand.New(6))
	b := makeBatch(cfg, 2, 7)
	lossOf := func() float64 {
		logits := m.Forward(b)
		return nn.BCEWithLogits(logits, b.Labels, nil)
	}
	logits := m.Forward(b)
	grad := make([]float32, len(logits))
	nn.BCEWithLogits(logits, b.Labels, grad)
	m.ZeroGrad()
	sparse := m.Backward(grad)

	for ti, sg := range sparse {
		ids := sg.RowIDs()
		if len(ids) == 0 {
			continue
		}
		ix := ids[0]
		g, _ := sg.Row(ix)
		w := m.Tables[ti].Weights.Row(int(ix))
		orig := w[0]
		const eps = 1e-2
		w[0] = orig + eps
		fp := lossOf()
		w[0] = orig - eps
		fm := lossOf()
		w[0] = orig
		numeric := (fp - fm) / (2 * eps)
		if math.Abs(numeric-float64(g[0])) > math.Max(2e-3, 0.1*math.Abs(numeric)) {
			t.Errorf("table %d row %d: numeric %v vs analytic %v", ti, ix, numeric, g[0])
		}
	}
}

func TestShareWeightsModel(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, xrand.New(8))
	w := m.ShareWeights()
	// Same underlying weights.
	if &w.Tables[0].Weights.Data[0] != &m.Tables[0].Weights.Data[0] {
		t.Error("tables must be shared")
	}
	w.DenseParams()[0].Value[0] = 123
	if m.DenseParams()[0].Value[0] != 123 {
		t.Error("MLP weights must be shared")
	}
	// Forward on the clone must not clobber the original's caches in a
	// way that breaks the original's backward (separate activations).
	b := makeBatch(cfg, 4, 9)
	m.Forward(b)
	w.Forward(b)
	// original backward still works against its own cache
	grads := m.Backward(make([]float32, 4))
	if len(grads) != cfg.NumSparse() {
		t.Error("backward after clone forward failed")
	}
}

func TestCloneModelIndependent(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, xrand.New(10))
	c := m.Clone()
	c.Tables[0].Weights.Data[0] += 5
	if m.Tables[0].Weights.Data[0] == c.Tables[0].Weights.Data[0] {
		t.Error("Clone must copy tables")
	}
}

func TestSaveLoadWeights(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, xrand.New(11))
	b := makeBatch(cfg, 4, 12)
	want := m.Forward(b)

	var buf bytes.Buffer
	if err := m.SaveWeights(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	m2 := NewModel(cfg, xrand.New(999)) // different init
	if err := m2.LoadWeights(&buf); err != nil {
		t.Fatalf("load: %v", err)
	}
	got := m2.Forward(b)
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-6 {
			t.Fatalf("logit %d differs after load: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestLoadWeightsRejectsWrongShape(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, xrand.New(13))
	var buf bytes.Buffer
	if err := m.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.EmbeddingDim = 4
	m2 := NewModel(other, xrand.New(14))
	if err := m2.LoadWeights(&buf); err == nil {
		t.Error("mismatched snapshot accepted")
	}
}

func TestTrainerLearnsSyntheticTask(t *testing.T) {
	// A small model must beat the base rate on a planted-teacher task.
	cfg := Config{
		Name:          "learn",
		DenseFeatures: 8,
		Sparse:        UniformSparse(3, 50, 3),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   DotProduct,
	}
	m := NewModel(cfg, xrand.New(15))
	tr := NewTrainer(m, TrainerConfig{Optimizer: OptAdagrad, LR: 0.05})

	// Teacher: fixed random linear rule on dense features + one table.
	rng := xrand.New(16)
	teacherW := make([]float32, cfg.DenseFeatures)
	for i := range teacherW {
		teacherW[i] = float32(rng.NormMS(0, 1))
	}
	gen := func(b int) *MiniBatch {
		mb := makeBatch(cfg, b, int64(rng.Uint64()))
		for i := 0; i < b; i++ {
			z := tensor.Dot(teacherW, mb.Dense.Row(i)) * 1.5
			if rng.Float32() < tensor.Sigmoid(z) {
				mb.Labels[i] = 1
			} else {
				mb.Labels[i] = 0
			}
		}
		return mb
	}

	var first, last float64
	iters := 300
	for i := 0; i < iters; i++ {
		loss := tr.Step(gen(32))
		if i < 20 {
			first += loss
		}
		if i >= iters-20 {
			last += loss
		}
	}
	if last >= first*0.95 {
		t.Errorf("training loss did not improve: first %v, last %v", first/20, last/20)
	}
	if tr.Iter() != iters {
		t.Errorf("Iter = %d, want %d", tr.Iter(), iters)
	}
}

func TestTrainerPanics(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, xrand.New(17))
	mustPanic(t, func() { NewTrainer(m, TrainerConfig{LR: 0}) })
	mustPanic(t, func() { NewTrainer(m, TrainerConfig{LR: 0.1, Optimizer: "nope"}) })
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	m := NewModel(testConfig(), xrand.New(18))
	mustPanic(t, func() { m.Backward([]float32{0}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestEvaluateMetrics(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, xrand.New(19))
	batches := []*MiniBatch{makeBatch(cfg, 32, 20), makeBatch(cfg, 32, 21)}
	res := Evaluate(m, batches)
	if res.Examples != 64 {
		t.Errorf("Examples = %d", res.Examples)
	}
	if res.LogLoss <= 0 || math.IsNaN(res.LogLoss) {
		t.Errorf("LogLoss = %v", res.LogLoss)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 {
		t.Errorf("Accuracy = %v", res.Accuracy)
	}
}

func TestTotalLookupsAccumulates(t *testing.T) {
	cfg := testConfig()
	m := NewModel(cfg, xrand.New(22))
	b := makeBatch(cfg, 8, 23)
	m.Forward(b)
	var want uint64
	for _, bag := range b.Bags {
		want += uint64(bag.TotalLookups())
	}
	if got := m.TotalLookups(); got != want {
		t.Errorf("TotalLookups = %d, want %d", got, want)
	}
	if m.EmbeddingBytes() != cfg.EmbeddingBytes() {
		t.Error("EmbeddingBytes mismatch between model and config")
	}
}

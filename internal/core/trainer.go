package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/ckpt"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/telemetry"
)

// OptimizerKind selects the dense-side optimizer.
type OptimizerKind string

const (
	// OptSGD uses plain SGD for MLPs and embeddings.
	OptSGD OptimizerKind = "sgd"
	// OptAdagrad uses AdaGrad for MLPs and row-wise AdaGrad for
	// embeddings, the production default.
	OptAdagrad OptimizerKind = "adagrad"
)

// TrainerConfig holds the hyper-parameters of a single-node trainer.
type TrainerConfig struct {
	Optimizer   OptimizerKind
	LR          float64 // dense learning rate
	SparseLR    float64 // embedding learning rate (defaults to LR)
	WarmupIters int     // linear LR warmup length
}

// Trainer couples a model with its optimizers and runs mini-batch steps.
type Trainer struct {
	Model *Model
	cfg   TrainerConfig

	sgd     *optim.SGD
	adagrad *optim.Adagrad
	sparseS []*optim.SparseSGD
	sparseA []*optim.RowWiseAdagrad
	sched   optim.WarmupSchedule
	iter    int
	gradBuf []float32     // reusable logit-gradient buffer
	dirty   []*ckpt.Dirty // per-table touched rows since the last checkpoint

	trace      *telemetry.Tracer
	traceShard int
	rec        *telemetry.FlightRecorder
}

// NewTrainer builds a trainer for the model.
func NewTrainer(m *Model, cfg TrainerConfig) *Trainer {
	if cfg.LR <= 0 {
		panic("core: trainer LR must be positive")
	}
	if cfg.SparseLR <= 0 {
		cfg.SparseLR = cfg.LR
	}
	if cfg.Optimizer == "" {
		cfg.Optimizer = OptAdagrad
	}
	t := &Trainer{Model: m, cfg: cfg, sched: optim.WarmupSchedule{Base: cfg.LR, WarmupIters: cfg.WarmupIters}}
	switch cfg.Optimizer {
	case OptSGD:
		t.sgd = optim.NewSGD(m.DenseParams(), float32(cfg.LR))
		for _, tab := range m.Tables {
			t.sparseS = append(t.sparseS, &optim.SparseSGD{LR: float32(cfg.SparseLR), Table: tab})
		}
	case OptAdagrad:
		t.adagrad = optim.NewAdagrad(m.DenseParams(), float32(cfg.LR))
		for _, tab := range m.Tables {
			t.sparseA = append(t.sparseA, optim.NewRowWiseAdagrad(tab, float32(cfg.SparseLR)))
		}
	default:
		panic(fmt.Sprintf("core: unknown optimizer %q", cfg.Optimizer))
	}
	for _, tab := range m.Tables {
		t.dirty = append(t.dirty, ckpt.NewDirty(tab.HashSize))
	}
	return t
}

// Iter returns the number of steps taken.
func (t *Trainer) Iter() int { return t.iter }

// SetTrace points the trainer (and its model) at a tracer shard. Step
// then records a PhaseStep envelope plus the interior phase spans —
// lookup, dense fwd/bwd, loss, sparse scatter, optimizer — all from the
// trainer goroutine, which must be the shard's only writer. A nil tracer
// turns tracing off.
func (t *Trainer) SetTrace(tr *telemetry.Tracer, shard int) {
	t.trace, t.traceShard = tr, shard
	t.Model.Trace, t.Model.TraceShard = tr, shard
}

// SetRecorder attaches a flight recorder: Step then feeds it one
// StepSample per step (loss, batch size, wall time) from the trainer
// goroutine. Nil detaches. Steady-state sampling stays allocation-free.
func (t *Trainer) SetRecorder(fr *telemetry.FlightRecorder) { t.rec = fr }

// Step runs one forward/backward/update over the batch and returns the
// batch's training loss. At steady state (fixed batch size) it performs
// zero heap allocations; every scratch buffer is owned by the trainer or
// the model and reused across steps.
func (t *Trainer) Step(b *MiniBatch) float64 {
	var t0 int64
	if t.rec != nil {
		t0 = telemetry.Now()
	}
	stepTok := t.trace.Begin(telemetry.PhaseStep)
	logits := t.Model.Forward(b) // records emb_lookup + dense_fwd spans
	if cap(t.gradBuf) < len(logits) {
		t.gradBuf = make([]float32, len(logits))
	}
	grad := t.gradBuf[:len(logits)]
	tok := t.trace.Begin(telemetry.PhaseLoss)
	loss := nn.BCEWithLogits(logits, b.Labels, grad)

	// ZeroGrad is gradient-buffer preparation: charge it to the backward
	// pass (Backward itself records dense_bwd + sparse_scatter).
	tok = t.trace.Next(t.traceShard, tok, telemetry.PhaseDenseBwd)
	t.Model.ZeroGrad()
	t.trace.End(t.traceShard, tok)
	sparseGrads := t.Model.Backward(grad)

	lr := t.sched.At(t.iter)
	scale := float32(lr / t.cfg.LR)
	tok = t.trace.Begin(telemetry.PhaseOptimizer)
	switch t.cfg.Optimizer {
	case OptSGD:
		t.sgd.LR = float32(lr)
		t.sgd.Step()
		tok = t.trace.Next(t.traceShard, tok, telemetry.PhaseSparseScatter)
		for i, s := range t.sparseS {
			s.LR = float32(t.cfg.SparseLR) * scale
			s.Apply(sparseGrads[i])
			t.dirty[i].Mark(sparseGrads[i].RowIDs())
		}
	case OptAdagrad:
		t.adagrad.LR = float32(lr)
		t.adagrad.Step()
		tok = t.trace.Next(t.traceShard, tok, telemetry.PhaseSparseScatter)
		for i, s := range t.sparseA {
			s.LR = float32(t.cfg.SparseLR) * scale
			s.Apply(sparseGrads[i])
			t.dirty[i].Mark(sparseGrads[i].RowIDs())
		}
	}
	t.trace.End(t.traceShard, tok)
	t.iter++
	t.trace.End(t.traceShard, stepTok)
	if t.rec != nil {
		now := telemetry.Now()
		t.rec.ObserveStep(telemetry.StepSample{
			Step:        int64(t.iter - 1),
			ClockNS:     now,
			Loss:        loss,
			Examples:    int64(b.Batch()),
			StepNS:      now - t0,
			SlowestRank: -1,
		})
	}
	return loss
}

// EvalResult aggregates model-quality metrics over an evaluation set.
type EvalResult struct {
	LogLoss  float64
	NE       float64 // normalized entropy (§VI-C); lower is better
	Accuracy float64
	Examples int
}

// Evaluate scores the model on the given batches without training.
func Evaluate(m *Model, batches []*MiniBatch) EvalResult {
	var preds, labels []float32
	for _, b := range batches {
		preds = append(preds, m.Predict(b)...)
		labels = append(labels, b.Labels...)
	}
	return EvalResult{
		LogLoss:  nn.LogLoss(preds, labels),
		NE:       nn.NormalizedEntropy(preds, labels),
		Accuracy: nn.Accuracy(preds, labels, 0.5),
		Examples: len(labels),
	}
}

// modelSnapshot is the gob wire format for model weights.
type modelSnapshot struct {
	Dense  [][]float32
	Tables [][]float32
}

// SaveWeights serializes the model's parameters.
func (m *Model) SaveWeights(w io.Writer) error {
	snap := modelSnapshot{}
	for _, p := range m.DenseParams() {
		snap.Dense = append(snap.Dense, p.Value)
	}
	for _, t := range m.Tables {
		snap.Tables = append(snap.Tables, t.Weights.Data)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadWeights restores parameters saved by SaveWeights into a model built
// from the same Config.
func (m *Model) LoadWeights(r io.Reader) error {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decoding weights: %w", err)
	}
	dense := m.DenseParams()
	if len(snap.Dense) != len(dense) || len(snap.Tables) != len(m.Tables) {
		return fmt.Errorf("core: snapshot shape mismatch (%d/%d dense, %d/%d tables)",
			len(snap.Dense), len(dense), len(snap.Tables), len(m.Tables))
	}
	for i, p := range dense {
		if len(snap.Dense[i]) != len(p.Value) {
			return fmt.Errorf("core: dense param %d length %d != %d", i, len(snap.Dense[i]), len(p.Value))
		}
		copy(p.Value, snap.Dense[i])
	}
	for i, t := range m.Tables {
		if len(snap.Tables[i]) != len(t.Weights.Data) {
			return fmt.Errorf("core: table %d length %d != %d", i, len(snap.Tables[i]), len(t.Weights.Data))
		}
		copy(t.Weights.Data, snap.Tables[i])
		t.SyncAll()
	}
	return nil
}

// TotalLookups sums the access counters across all tables.
func (m *Model) TotalLookups() uint64 {
	var n uint64
	for _, t := range m.Tables {
		n += t.Lookups()
	}
	return n
}

// EmbeddingBytes returns the actual embedding footprint of this model.
func (m *Model) EmbeddingBytes() int64 {
	var b int64
	for _, t := range m.Tables {
		b += t.Bytes()
	}
	return b
}

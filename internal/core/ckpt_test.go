package core_test

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/xrand"
)

func ckptTestCfg() core.Config {
	return core.Config{
		Name:          "ckpt-test",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(4, 500, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   core.DotProduct,
	}
}

func newCkptTrainer(cfg core.Config, opt core.OptimizerKind) *core.Trainer {
	m := core.NewModel(cfg, xrand.New(1))
	return core.NewTrainer(m, core.TrainerConfig{Optimizer: opt, LR: 0.05})
}

// TestResumeBitIdentical pins the single-process durability contract:
// save at step k, rebuild a fresh trainer from the same seed, restore,
// replay the batch stream from step k — the tail of the loss curve must
// be bit-identical to the uninterrupted run.
func TestResumeBitIdentical(t *testing.T) {
	for _, opt := range []core.OptimizerKind{core.OptAdagrad, core.OptSGD} {
		t.Run(string(opt), func(t *testing.T) {
			cfg := ckptTestCfg()
			const steps, mid, batch = 20, 10, 32

			// Uninterrupted reference run.
			ref := newCkptTrainer(cfg, opt)
			gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
			want := make([]float64, steps)
			for i := range want {
				want[i] = ref.Step(gen.NextBatch(batch))
			}

			// Interrupted run: checkpoint at mid, then abandon the trainer.
			store, err := ckpt.OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			tr := newCkptTrainer(cfg, opt)
			gen = data.NewGenerator(cfg, 7, data.DefaultOptions())
			for i := 0; i < mid; i++ {
				if got := tr.Step(gen.NextBatch(batch)); got != want[i] {
					t.Fatalf("step %d: loss diverged before checkpoint", i)
				}
			}
			if _, err := tr.SaveCheckpoint(store, 0); err != nil {
				t.Fatal(err)
			}

			// Resume in a fresh trainer (fresh model, same architecture).
			tr2 := newCkptTrainer(cfg, opt)
			info, err := tr2.RestoreCheckpoint(store)
			if err != nil {
				t.Fatal(err)
			}
			if info.Step != mid || tr2.Iter() != mid {
				t.Fatalf("restored step = %d/%d, want %d", info.Step, tr2.Iter(), mid)
			}
			for i := mid; i < steps; i++ {
				if got := tr2.Step(gen.NextBatch(batch)); got != want[i] {
					t.Fatalf("step %d: resumed loss %v != uninterrupted %v", i, got, want[i])
				}
			}
		})
	}
}

// TestDeltaResumeBitIdentical resumes from the tip of a delta chain
// (full + two incrementals) and must land on the same curve.
func TestDeltaResumeBitIdentical(t *testing.T) {
	cfg := ckptTestCfg()
	const steps, batch = 18, 32

	ref := newCkptTrainer(cfg, core.OptAdagrad)
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	want := make([]float64, steps)
	for i := range want {
		want[i] = ref.Step(gen.NextBatch(batch))
	}

	store, err := ckpt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := newCkptTrainer(cfg, core.OptAdagrad)
	gen = data.NewGenerator(cfg, 7, data.DefaultOptions())
	for i := 0; i < 12; i++ {
		tr.Step(gen.NextBatch(batch))
		if (i+1)%4 == 0 {
			// fullEvery=10 keeps saves 2 and 3 incremental.
			if _, err := tr.SaveCheckpoint(store, 10); err != nil {
				t.Fatal(err)
			}
		}
	}

	tr2 := newCkptTrainer(cfg, core.OptAdagrad)
	info, err := tr2.RestoreCheckpoint(store)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 12 || info.Chain != 3 {
		t.Fatalf("restored step %d applied %d checkpoints, want step 12 via full+2 deltas", info.Step, info.Chain)
	}
	for i := 12; i < steps; i++ {
		if got := tr2.Step(gen.NextBatch(batch)); got != want[i] {
			t.Fatalf("step %d: delta-resumed loss %v != %v", i, got, want[i])
		}
	}
}

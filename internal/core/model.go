package core

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// MiniBatch is one training batch: a dense matrix, one pooled-lookup Bag
// per sparse feature, and the click labels.
type MiniBatch struct {
	Dense  *tensor.Matrix  // B × DenseFeatures
	Bags   []embedding.Bag // one per sparse feature
	Labels []float32       // length B, values in {0,1}

	// Dedup optionally carries the RecD-style unique-row view of each
	// bag (aligned with Bags). When present and built, lookups and
	// gradient scatters take the dedup kernels — bit-identical math,
	// fewer table touches. Batch producers (internal/ingest, or
	// AttachDedup) fill it; nil means the plain kernels run.
	Dedup []embedding.DedupIndex
}

// AttachDedup builds (or rebuilds, reusing storage) the per-bag dedup
// views so consumers take the unique-row lookup path.
func (b *MiniBatch) AttachDedup() {
	if cap(b.Dedup) >= len(b.Bags) {
		b.Dedup = b.Dedup[:len(b.Bags)] // retains each view's storage
	} else {
		b.Dedup = make([]embedding.DedupIndex, len(b.Bags))
	}
	for i := range b.Bags {
		b.Dedup[i].Build(b.Bags[i])
	}
}

// DetachDedup invalidates the dedup views (their storage is retained for
// the next AttachDedup). Every producer that rewrites Bags in place must
// detach, or consumers would pool through a stale unique/remap mapping.
func (b *MiniBatch) DetachDedup() { b.Dedup = b.Dedup[:0] }

// DedupFor returns the built dedup view for bag i, or nil.
func (b *MiniBatch) DedupFor(i int) *embedding.DedupIndex {
	if i >= len(b.Dedup) || !b.Dedup[i].Built() {
		return nil
	}
	return &b.Dedup[i]
}

// Batch returns the number of examples.
func (b *MiniBatch) Batch() int { return b.Dense.Rows }

// Validate checks the batch against a config.
func (b *MiniBatch) Validate(cfg *Config) error {
	if b.Dense.Cols != cfg.DenseFeatures {
		return fmt.Errorf("core: dense width %d, config wants %d", b.Dense.Cols, cfg.DenseFeatures)
	}
	if len(b.Bags) != cfg.NumSparse() {
		return fmt.Errorf("core: %d bags, config wants %d", len(b.Bags), cfg.NumSparse())
	}
	if len(b.Labels) != b.Batch() {
		return fmt.Errorf("core: %d labels for batch %d", len(b.Labels), b.Batch())
	}
	for i, bag := range b.Bags {
		if bag.Batch() != b.Batch() {
			return fmt.Errorf("core: bag %d batch %d != %d", i, bag.Batch(), b.Batch())
		}
		if err := bag.Validate(cfg.Sparse[i].HashSize); err != nil {
			return fmt.Errorf("core: bag %d: %w", i, err)
		}
	}
	return nil
}

// Model is an instantiated DLRM with real parameters.
type Model struct {
	Cfg    Config
	Bottom *nn.MLP
	Top    *nn.MLP
	Tables []*embedding.Table

	// forward caches
	pooled   []*tensor.Matrix // per sparse feature, B×d (local-lookup path)
	pooledIn []*tensor.Matrix // pooled matrices of the current forward pass
	z        *tensor.Matrix   // bottom output, B×d
	xTop     *tensor.Matrix   // interaction output, B×interactionDim
	batch    *MiniBatch
	logits   []float32 // returned by Forward, reused across batches

	// backward scratch
	dPooled []*tensor.Matrix
	dZ      *tensor.Matrix
	dOut    *tensor.Matrix // B×1 logit-gradient column

	// reusable arenas: per-row vector views for the interaction, the
	// per-table sparse-gradient accumulators handed to optimizers, and
	// the per-worker embedding-lookup scratch. Together they make
	// steady-state Forward/Backward allocation-free.
	vecs, dvecs []([]float32)
	sparseGrads []*embedding.SparseGrad
	embScratch  *embedding.Scratch

	// Trace, when non-nil, records phase spans (embedding lookup, dense
	// forward/backward, sparse scatter) onto TraceShard. The model must
	// be driven by a single goroutine per shard (it already is: workers
	// use ShareWeights clones).
	Trace      *telemetry.Tracer
	TraceShard int
}

// NewModel allocates a model with freshly initialized parameters. It
// panics if the config is invalid (validate configs at the boundary).
func NewModel(cfg Config, rng *xrand.RNG) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Model{Cfg: cfg, embScratch: embedding.NewScratch()}
	m.Bottom = nn.NewMLP(cfg.BottomDims(), rng)
	m.Top = nn.NewMLP(cfg.TopDims(), rng)
	for i, s := range cfg.Sparse {
		m.Tables = append(m.Tables,
			embedding.NewTableTyped(s.Name, s.HashSize, cfg.EmbeddingDim, cfg.DTypeOf(i), rng))
	}
	return m
}

// ShareWeights returns a model aliasing this model's parameters (MLP
// weights and embedding tables) with private activation/gradient buffers.
// This is the worker view for Hogwild! training.
func (m *Model) ShareWeights() *Model {
	return &Model{
		Cfg:        m.Cfg,
		Bottom:     m.Bottom.ShareWeights(),
		Top:        m.Top.ShareWeights(),
		Tables:     m.Tables, // embedding rows are updated lock-free in place
		embScratch: embedding.NewScratch(),
	}
}

// Clone returns a deep copy with independent parameters.
func (m *Model) Clone() *Model {
	c := &Model{Cfg: m.Cfg, Bottom: m.Bottom.Clone(), Top: m.Top.Clone(), embScratch: embedding.NewScratch()}
	for _, t := range m.Tables {
		c.Tables = append(c.Tables, t.Clone())
	}
	return c
}

// Forward computes logits for the batch and caches activations for
// Backward. The returned slice is valid until the next Forward call.
func (m *Model) Forward(b *MiniBatch) []float32 {
	B := b.Batch()
	d := m.Cfg.EmbeddingDim
	s := m.Cfg.NumSparse()

	if m.embScratch == nil {
		m.embScratch = embedding.NewScratch()
	}
	if len(m.pooled) != s || (s > 0 && m.pooled[0].Rows != B) {
		m.pooled = make([]*tensor.Matrix, s)
		for i := range m.pooled {
			m.pooled[i] = tensor.New(B, d)
		}
	}
	tok := m.Trace.Begin(telemetry.PhaseEmbLookup)
	for i, tab := range m.Tables {
		if dd := b.DedupFor(i); dd != nil {
			tab.BagForwardDedup(b.Bags[i], dd, m.pooled[i], m.embScratch)
		} else {
			tab.BagForwardInto(b.Bags[i], m.pooled[i], m.embScratch)
		}
	}
	m.Trace.End(m.TraceShard, tok)
	logits := m.ForwardPooled(b.Dense, m.pooled)
	m.batch = b
	return logits
}

// ForwardPooled computes logits from a dense batch and externally
// produced pooled embeddings (one B×d matrix per sparse feature). This is
// the model-parallel entry point of the hybrid trainer, where pooled rows
// arrive from remote table shards via all-to-all rather than from this
// model's own tables; pair it with BackwardPooled. The returned slice is
// valid until the next forward pass.
func (m *Model) ForwardPooled(dense *tensor.Matrix, pooled []*tensor.Matrix) []float32 {
	B := dense.Rows
	s := m.Cfg.NumSparse()
	if len(pooled) != s {
		panic(fmt.Sprintf("core: %d pooled matrices, config wants %d", len(pooled), s))
	}
	for i, p := range pooled {
		if p.Rows != B || p.Cols != m.Cfg.EmbeddingDim {
			panic(fmt.Sprintf("core: pooled[%d] is %dx%d, want %dx%d",
				i, p.Rows, p.Cols, B, m.Cfg.EmbeddingDim))
		}
	}
	tok := m.Trace.Begin(telemetry.PhaseDenseFwd)
	m.batch = nil // sparse scatter unavailable until the local-lookup path runs
	m.pooledIn = pooled
	m.z = m.Bottom.Forward(dense)

	idim := m.Cfg.InteractionDim()
	if m.xTop == nil || m.xTop.Rows != B || m.xTop.Cols != idim {
		m.xTop = tensor.New(B, idim)
	}
	m.buildInteraction(B)

	out := m.Top.Forward(m.xTop)
	if cap(m.logits) < B {
		m.logits = make([]float32, B)
	}
	logits := m.logits[:B]
	for i := 0; i < B; i++ {
		logits[i] = out.At(i, 0)
	}
	m.Trace.End(m.TraceShard, tok)
	return logits
}

// ensureVecs sizes the reusable per-row vector-view arenas shared by
// buildInteraction and the interaction backward pass.
func (m *Model) ensureVecs(s int) {
	if len(m.vecs) != s+1 {
		m.vecs = make([][]float32, s+1)
		m.dvecs = make([][]float32, s+1)
	}
}

// buildInteraction fills xTop from z and pooledIn according to the config.
func (m *Model) buildInteraction(B int) {
	d := m.Cfg.EmbeddingDim
	s := m.Cfg.NumSparse()
	switch m.Cfg.Interaction {
	case DotProduct:
		// Layout per row: [z (d) | dot(v_i, v_j) for i<j over v_0=z, v_1..s=pooled]
		m.ensureVecs(s)
		vecs := m.vecs
		for r := 0; r < B; r++ {
			row := m.xTop.Row(r)
			copy(row[:d], m.z.Row(r))
			k := d
			vecs[0] = m.z.Row(r)
			for i := 0; i < s; i++ {
				vecs[i+1] = m.pooledIn[i].Row(r)
			}
			for i := 0; i <= s; i++ {
				for j := i + 1; j <= s; j++ {
					row[k] = tensor.Dot(vecs[i], vecs[j])
					k++
				}
			}
		}
	default: // Concat: [z | pooled_0 | ... | pooled_{s-1}]
		for r := 0; r < B; r++ {
			row := m.xTop.Row(r)
			copy(row[:d], m.z.Row(r))
			for i := 0; i < s; i++ {
				copy(row[(i+1)*d:(i+2)*d], m.pooledIn[i].Row(r))
			}
		}
	}
}

// Backward propagates the per-example logit gradients through the model.
// MLP gradients accumulate into the nn layers (call ZeroGrad between
// batches); embedding gradients are returned as one SparseGrad per table.
// The returned accumulators are owned by the model and reused: they are
// valid only until the next Backward call, which Resets and refills them.
func (m *Model) Backward(dLogits []float32) []*embedding.SparseGrad {
	if m.batch == nil {
		panic("core: Backward before Forward")
	}
	b := m.batch
	dPooled := m.BackwardPooled(dLogits)

	// Persistent per-table accumulators: Reset retains their slabs, so
	// the scatter is allocation-free at steady state. The returned slice
	// is valid until the next Backward call.
	s := m.Cfg.NumSparse()
	if len(m.sparseGrads) != s {
		m.sparseGrads = make([]*embedding.SparseGrad, s)
		for i := range m.sparseGrads {
			m.sparseGrads[i] = embedding.NewSparseGrad(m.Cfg.EmbeddingDim)
		}
	}
	tok := m.Trace.Begin(telemetry.PhaseSparseScatter)
	for i, tab := range m.Tables {
		m.sparseGrads[i].Reset()
		if dd := b.DedupFor(i); dd != nil {
			tab.BagBackwardDedup(b.Bags[i], dd, dPooled[i], m.sparseGrads[i], m.embScratch)
		} else {
			tab.BagBackward(b.Bags[i], dPooled[i], m.sparseGrads[i])
		}
	}
	m.Trace.End(m.TraceShard, tok)
	return m.sparseGrads
}

// BackwardPooled propagates per-example logit gradients through the top
// MLP, the interaction, and the bottom MLP, and returns the gradients
// w.r.t. the pooled embedding matrices supplied to ForwardPooled (one
// B×d matrix per sparse feature). MLP gradients accumulate into the nn
// layers; the hybrid trainer ships the returned matrices back to the
// owning table shards via all-to-all. The matrices are owned by the model
// and valid until the next backward pass.
func (m *Model) BackwardPooled(dLogits []float32) []*tensor.Matrix {
	if m.pooledIn == nil {
		panic("core: BackwardPooled before ForwardPooled")
	}
	tok := m.Trace.Begin(telemetry.PhaseDenseBwd)
	B := m.z.Rows
	d := m.Cfg.EmbeddingDim
	s := m.Cfg.NumSparse()

	if m.dOut == nil || m.dOut.Rows != B {
		m.dOut = tensor.New(B, 1)
	}
	for i := 0; i < B; i++ {
		m.dOut.Set(i, 0, dLogits[i])
	}
	dXTop := m.Top.Backward(m.dOut)

	if len(m.dPooled) != s || (s > 0 && m.dPooled[0].Rows != B) {
		m.dPooled = make([]*tensor.Matrix, s)
		for i := range m.dPooled {
			m.dPooled[i] = tensor.New(B, d)
		}
		m.dZ = tensor.New(B, d)
	}
	m.dZ.Zero()
	for i := range m.dPooled {
		m.dPooled[i].Zero()
	}

	switch m.Cfg.Interaction {
	case DotProduct:
		m.ensureVecs(s)
		vecs, dvecs := m.vecs, m.dvecs
		for r := 0; r < B; r++ {
			g := dXTop.Row(r)
			tensor.AddTo(m.dZ.Row(r), g[:d])
			vecs[0], dvecs[0] = m.z.Row(r), m.dZ.Row(r)
			for i := 0; i < s; i++ {
				vecs[i+1], dvecs[i+1] = m.pooledIn[i].Row(r), m.dPooled[i].Row(r)
			}
			k := d
			for i := 0; i <= s; i++ {
				for j := i + 1; j <= s; j++ {
					gd := g[k]
					k++
					if gd == 0 {
						continue
					}
					tensor.Axpy(gd, vecs[j], dvecs[i])
					tensor.Axpy(gd, vecs[i], dvecs[j])
				}
			}
		}
	default:
		for r := 0; r < B; r++ {
			g := dXTop.Row(r)
			tensor.AddTo(m.dZ.Row(r), g[:d])
			for i := 0; i < s; i++ {
				tensor.AddTo(m.dPooled[i].Row(r), g[(i+1)*d:(i+2)*d])
			}
		}
	}

	m.Bottom.Backward(m.dZ)
	m.Trace.End(m.TraceShard, tok)
	return m.dPooled
}

// DenseParams returns the MLP parameters (bottom then top) for optimizers
// and EASGD synchronization.
func (m *Model) DenseParams() []nn.Param {
	return append(m.Bottom.Params(), m.Top.Params()...)
}

// ZeroGrad clears accumulated MLP gradients.
func (m *Model) ZeroGrad() {
	m.Bottom.ZeroGrad()
	m.Top.ZeroGrad()
}

// Predict runs Forward and converts logits to probabilities.
func (m *Model) Predict(b *MiniBatch) []float32 {
	logits := m.Forward(b)
	probs := make([]float32, len(logits))
	nn.SigmoidVec(probs, logits)
	return probs
}

package core

import (
	"repro/internal/ckpt"
)

// CkptState exports the trainer's live parameters and optimizer state as
// a checkpointable view. Every slice in the returned state aliases
// trainer memory: ckpt.Store saves stream directly from it, and restores
// write back into it. Call only between steps.
func (t *Trainer) CkptState() *ckpt.ModelState {
	st := &ckpt.ModelState{
		Step:      t.iter,
		Optimizer: string(t.cfg.Optimizer),
		Tables:    t.Model.Tables,
		Ranks:     1,
	}
	for _, p := range t.Model.DenseParams() {
		st.Dense = append(st.Dense, p.Value)
	}
	if t.adagrad != nil {
		st.DenseAccum = t.adagrad.Accum()
		for _, s := range t.sparseA {
			st.SparseAccum = append(st.SparseAccum, s.Accum())
		}
	}
	return st
}

// DirtyRows returns the per-table touched-row trackers the trainer feeds
// on every step (aligned with Model.Tables). ckpt.Store delta saves
// consume and reset them.
func (t *Trainer) DirtyRows() []*ckpt.Dirty { return t.dirty }

// SaveCheckpoint writes a checkpoint of the trainer into store,
// delegating the full-vs-delta choice to ckpt.Store.AutoSave: full when
// the store is empty or the delta chain has fullEvery links, incremental
// (touched rows only) otherwise.
func (t *Trainer) SaveCheckpoint(store *ckpt.Store, fullEvery int) (ckpt.SaveInfo, error) {
	return store.AutoSave(t.CkptState(), t.dirty, fullEvery)
}

// RestoreCheckpoint rebuilds the trainer's parameters, optimizer state,
// and step counter from the latest checkpoint in store. Training resumed
// from the restored state replays the exact uninterrupted loss curve
// (bit-identical) when the batch stream is replayed from the same step.
func (t *Trainer) RestoreCheckpoint(store *ckpt.Store) (ckpt.RestoreInfo, error) {
	st := t.CkptState()
	info, err := store.Restore(st)
	if err != nil {
		return info, err
	}
	t.iter = st.Step
	// The restored state matches the checkpoint tip exactly, so rows
	// touched since (and now reverted) need not ride the next delta.
	for _, d := range t.dirty {
		d.Reset()
	}
	return info, nil
}

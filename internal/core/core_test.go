package core

import (
	"testing"
)

func testConfig() Config {
	return Config{
		Name:          "test",
		DenseFeatures: 16,
		Sparse:        UniformSparse(4, 100, 5),
		EmbeddingDim:  8,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   DotProduct,
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.DenseFeatures = 0
	if bad.Validate() == nil {
		t.Error("zero dense features accepted")
	}
	bad = cfg
	bad.Sparse = nil
	if bad.Validate() == nil {
		t.Error("no sparse features accepted")
	}
	bad = testConfig()
	bad.Sparse[0].HashSize = -1
	if bad.Validate() == nil {
		t.Error("negative hash size accepted")
	}
	bad = testConfig()
	bad.Sparse[1].MeanPooled = 0
	if bad.Validate() == nil {
		t.Error("zero mean pooled accepted")
	}
	bad = testConfig()
	bad.EmbeddingDim = 0
	if bad.Validate() == nil {
		t.Error("zero embedding dim accepted")
	}
}

func TestDimsComputation(t *testing.T) {
	cfg := testConfig()
	// Bottom: 16 -> 32 -> 8
	bd := cfg.BottomDims()
	if len(bd) != 3 || bd[0] != 16 || bd[2] != 8 {
		t.Errorf("BottomDims = %v", bd)
	}
	// Dot interaction: C(5,2)=10 dots + d=8 -> 18.
	if id := cfg.InteractionDim(); id != 18 {
		t.Errorf("dot InteractionDim = %d, want 18", id)
	}
	td := cfg.TopDims()
	if td[0] != 18 || td[len(td)-1] != 1 {
		t.Errorf("TopDims = %v", td)
	}
	cfg.Interaction = Concat
	// Concat: (4+1)*8 = 40.
	if id := cfg.InteractionDim(); id != 40 {
		t.Errorf("concat InteractionDim = %d, want 40", id)
	}
}

func TestModelStatistics(t *testing.T) {
	cfg := testConfig()
	if b := cfg.EmbeddingBytes(); b != 4*int64(100*8*4) {
		t.Errorf("EmbeddingBytes = %d", b)
	}
	if l := cfg.LookupsPerExample(); l != 20 {
		t.Errorf("LookupsPerExample = %v, want 20", l)
	}
	if f := cfg.MLPFLOPsPerExample(); f <= 0 {
		t.Errorf("MLPFLOPsPerExample = %d", f)
	}
	if f := cfg.InteractionFLOPsPerExample(); f != 10*2*8 {
		t.Errorf("InteractionFLOPsPerExample = %d, want 160", f)
	}
	cfg.Interaction = Concat
	if f := cfg.InteractionFLOPsPerExample(); f != 0 {
		t.Errorf("concat interaction FLOPs = %d, want 0", f)
	}
	if b := cfg.DenseParamBytes(); b <= 0 {
		t.Errorf("DenseParamBytes = %d", b)
	}
	stats := cfg.TableStats()
	if len(stats) != 4 || stats[2].Bytes != 100*8*4 {
		t.Errorf("TableStats = %+v", stats)
	}
}

func TestUniformSparse(t *testing.T) {
	feats := UniformSparse(3, 1000, 7.5)
	if len(feats) != 3 {
		t.Fatalf("len = %d", len(feats))
	}
	for _, f := range feats {
		if f.HashSize != 1000 || f.MeanPooled != 7.5 || f.MaxPooled != 32 {
			t.Errorf("feature %+v", f)
		}
	}
	if feats[0].Name == feats[1].Name {
		t.Error("feature names must be distinct")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:           "512 B",
		2 << 10:       "2.0 KB",
		3 << 20:       "3.0 MB",
		5 << 30:       "5.0 GB",
		2 << 40:       "2.0 TB",
		1<<30 + 1<<29: "1.5 GB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRoundUpPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := RoundUpPow2(in); got != want {
			t.Errorf("RoundUpPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestInteractionString(t *testing.T) {
	if Concat.String() != "concat" || DotProduct.String() != "dot" {
		t.Error("Interaction.String mismatch")
	}
	if Interaction(9).String() == "" {
		t.Error("unknown interaction should still render")
	}
}

func TestGB(t *testing.T) {
	if g := GB(1 << 30); g != 1 {
		t.Errorf("GB(1GiB) = %v", g)
	}
}

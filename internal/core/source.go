package core

import (
	"errors"
	"fmt"
	"io"
)

// BatchSource supplies training batches to a trainer. Implementations
// stream from sharded on-disk datasets (internal/ingest) or synthesize in
// memory (data.GeneratorSource); the interface is the seam at which the
// feeding pipeline — the paper's disaggregated reader tier (§IV-B2) — is
// swapped under a trainer without touching the training loop.
//
// The Recycle contract is the backpressure protocol: a consumer that is
// done with a batch hands it back so the producer refills it in place
// instead of allocating. A bounded producer that has lent out every batch
// blocks until one comes back; a consumer that never recycles therefore
// stalls a bounded source. Recycling a batch the source did not produce
// is allowed and simply ignored by sources that cannot reuse it.
type BatchSource interface {
	// NextBatch returns the next batch, blocking until one is ready. It
	// returns io.EOF after the final batch of a finite stream.
	NextBatch() (*MiniBatch, error)
	// Recycle returns an exhausted batch to the source for reuse. The
	// caller must not touch the batch afterwards.
	Recycle(*MiniBatch)
}

// TrainFrom drives the trainer from a BatchSource for up to iters steps
// (every step recycles its batch), returning the mean training loss over
// the steps taken and the step count. A finite source ending early is not
// an error; the step count just comes up short.
func (t *Trainer) TrainFrom(src BatchSource, iters int) (meanLoss float64, steps int, err error) {
	var sum float64
	for steps < iters {
		b, err := src.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return meanOf(sum, steps), steps, fmt.Errorf("core: batch source: %w", err)
		}
		sum += t.Step(b)
		src.Recycle(b)
		steps++
	}
	return meanOf(sum, steps), steps, nil
}

func meanOf(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

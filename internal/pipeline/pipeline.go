// Package pipeline builds the paper's distributed CPU training pipeline
// (Fig 4) as a discrete-event simulation: reader servers feed trainers,
// trainers run Hogwild-style overlapped iteration flows, sparse lookups
// and gradient pushes fan out to sharded sparse parameter servers, and
// dense parameters elastically synchronize with a dense parameter server.
//
// Unlike the analytic perfmodel (steady-state bottleneck arithmetic),
// the simulation exposes queueing, transients, and run-to-run
// variability, which is what the utilization distributions of Fig 5 are
// about.
package pipeline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// Config describes one simulated training run.
type Config struct {
	Model core.Config
	// Batch is the per-trainer mini-batch.
	Batch    int
	Trainers int
	SparsePS int
	DensePS  int
	Readers  int
	// HogwildFlows is the number of concurrently outstanding
	// iteration pipelines per trainer (asynchronous overlap).
	HogwildFlows int
	// Iterations per trainer before the run ends.
	Iterations int
	// Jitter is the log-normal sigma applied to every service time —
	// the "system level variability" the paper cites for Fig 5.
	Jitter float64
	// MachineSpread is the log-normal sigma of per-server static speed
	// factors (slow hosts, co-location, thermal differences).
	MachineSpread float64
	Seed          int64
	Cal           perfmodel.Calibration
}

// Defaults fills unset fields.
func (c *Config) Defaults() {
	if c.Batch == 0 {
		c.Batch = 200
	}
	if c.Trainers == 0 {
		c.Trainers = 4
	}
	if c.SparsePS == 0 {
		c.SparsePS = 2
	}
	if c.DensePS == 0 {
		c.DensePS = 1
	}
	if c.Readers == 0 {
		// §IV-B2: "We typically scale up reader servers such that data
		// reading is not a bottleneck."
		c.Readers = 3 * c.Trainers
	}
	if c.HogwildFlows == 0 {
		c.HogwildFlows = 2
	}
	if c.Iterations == 0 {
		c.Iterations = 200
	}
	if c.Jitter == 0 {
		c.Jitter = 0.15
	}
	if c.MachineSpread == 0 {
		c.MachineSpread = 0.08
	}
	if c.Cal == (perfmodel.Calibration{}) {
		c.Cal = perfmodel.DefaultCalibration()
	}
}

// ServerUtil carries the three Fig 5 utilization axes for one server.
type ServerUtil struct {
	CPU   float64
	MemBW float64
	Net   float64
}

// Result aggregates one simulated run.
type Result struct {
	SimTime    float64
	Examples   int64
	Throughput float64
	Trainers   []ServerUtil
	SparsePS   []ServerUtil
	Readers    []float64 // reader busy fractions
}

// trainerNode groups one trainer's resources.
type trainerNode struct {
	cpu *sim.Resource
	mem *sim.Resource
	net *sim.Resource
	// static speed factor
	speed float64
	done  int
}

type psNode struct {
	cpu   *sim.Resource
	mem   *sim.Resource
	net   *sim.Resource
	speed float64
}

// Run executes the simulation and returns utilization/throughput results.
func Run(cfg Config) (Result, error) {
	cfg.Defaults()
	if err := cfg.Model.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Trainers <= 0 || cfg.SparsePS <= 0 {
		return Result{}, fmt.Errorf("pipeline: need at least one trainer and sparse PS")
	}

	eng := sim.NewEngine()
	rng := xrand.New(cfg.Seed)
	node := hw.DualSocketCPU()
	cal := cfg.Cal

	speed := func() float64 { return math.Exp(rng.NormMS(0, cfg.MachineSpread)) }
	jit := func(g *xrand.RNG) float64 { return math.Exp(g.NormMS(0, cfg.Jitter)) }

	trainers := make([]*trainerNode, cfg.Trainers)
	for i := range trainers {
		trainers[i] = &trainerNode{
			cpu:   sim.NewResource(eng, fmt.Sprintf("trainer%d.cpu", i), 1),
			mem:   sim.NewResource(eng, fmt.Sprintf("trainer%d.mem", i), 1),
			net:   sim.NewResource(eng, fmt.Sprintf("trainer%d.net", i), 1),
			speed: speed(),
		}
	}
	pss := make([]*psNode, cfg.SparsePS)
	for i := range pss {
		pss[i] = &psNode{
			cpu:   sim.NewResource(eng, fmt.Sprintf("ps%d.cpu", i), 1),
			mem:   sim.NewResource(eng, fmt.Sprintf("ps%d.mem", i), 1),
			net:   sim.NewResource(eng, fmt.Sprintf("ps%d.net", i), 1),
			speed: speed(),
		}
	}
	densePS := sim.NewResource(eng, "dense.net", cfg.DensePS)
	readers := make([]*sim.Resource, cfg.Readers)
	for i := range readers {
		readers[i] = sim.NewResource(eng, fmt.Sprintf("reader%d", i), 1)
	}

	// Per-iteration service-time building blocks (seconds), shared with
	// the analytic model's cost arithmetic.
	b := float64(cfg.Batch)
	m := cfg.Model
	flops := 3 * b * float64(m.MLPFLOPsPerExample()+m.InteractionFLOPsPerExample())
	computeSec := flops / (node.CPU.PeakFLOPs() * cal.CPUGemmEff * cal.HogwildEff)
	// Trainer memory traffic: parameters + activations, three passes.
	actBytes := 0.0
	for _, d := range m.BottomDims() {
		actBytes += b * float64(d) * 4
	}
	for _, d := range m.TopDims() {
		actBytes += b * float64(d) * 4
	}
	memSec := (3*actBytes + float64(m.DenseParamBytes())) / node.CPU.MemBW()
	lookupBytes := b * m.LookupsPerExample() * float64(m.EmbeddingDim) * 4
	netBytes := b*m.LookupsPerExample()*4 + 2*b*float64(m.NumSparse())*float64(m.EmbeddingDim)*4
	nicSec := netBytes / (node.NIC.BandwidthBps * cal.NetEff)
	// Serializing the sparse exchange costs trainer CPU cycles too.
	serializeSec := netBytes / (float64(node.CPU.Sockets) * cal.HostCopyBWPerSocket)
	// Each sparse PS shard handles its slice of the exchange.
	psShare := 1.0 / float64(cfg.SparsePS)
	psCPUSec := netBytes * psShare / cal.PSHandleBWPerNode
	psMemSec := cal.EmbedFwdBwdFactor * lookupBytes * psShare / (node.CPU.MemBW() * cal.PSDRAMEff)
	psNetSec := netBytes * psShare / (node.NIC.BandwidthBps * cal.NetEff)
	denseSec := 2 * float64(m.DenseParamBytes()) / (node.NIC.BandwidthBps * cal.NetEff)
	readSec := (b*float64(m.DenseFeatures)*4 + b*m.LookupsPerExample()*4) / 400e6 // decode ~400MB/s per reader

	var examples int64

	// Each flow is a chain of callbacks: read -> compute(+mem) ->
	// sparse exchange -> maybe dense sync -> repeat. The two mutually
	// recursive steps are declared up front.
	var launch, finishIteration func(tn *trainerNode, ti int, g *xrand.RNG)

	launch = func(tn *trainerNode, ti int, g *xrand.RNG) {
		if tn.done >= cfg.Iterations {
			return
		}
		tn.done++
		iter := tn.done
		reader := readers[(ti+iter)%len(readers)]
		reader.Acquire(readSec*jit(g), func() {
			// Memory then compute occupy the trainer's sockets.
			j := jit(g)
			tn.mem.Acquire(memSec*j/tn.speed, func() {
				tn.cpu.Acquire((computeSec+serializeSec)*j/tn.speed, func() {
					// Sparse exchange: NIC, then every PS shard in
					// parallel; the iteration completes when the
					// slowest shard responds.
					tn.net.Acquire(nicSec*jit(g), func() {
						pending := len(pss)
						for _, ps := range pss {
							ps := ps
							jp := jit(g)
							ps.net.Acquire(psNetSec*jp, func() {
								ps.mem.Acquire(psMemSec*jp/ps.speed, func() {
									ps.cpu.Acquire(psCPUSec*jp/ps.speed, func() {
										pending--
										if pending == 0 {
											finishIteration(tn, ti, g)
										}
									})
								})
							})
						}
					})
				})
			})
		})
	}

	finishIteration = func(tn *trainerNode, ti int, g *xrand.RNG) {
		examples += int64(cfg.Batch)
		if tn.done%int(cal.EASGDPeriodIters) == 0 {
			tn.net.Acquire(denseSec*jit(g), func() {
				densePS.Acquire(denseSec*jit(g), func() {
					launch(tn, ti, g)
				})
			})
			return
		}
		launch(tn, ti, g)
	}

	for ti, tn := range trainers {
		for f := 0; f < cfg.HogwildFlows; f++ {
			launch(tn, ti, rng.Split())
		}
	}
	eng.Run(math.Inf(1))

	res := Result{SimTime: eng.Now(), Examples: examples}
	if eng.Now() > 0 {
		res.Throughput = float64(examples) / eng.Now()
	}
	for _, tn := range trainers {
		res.Trainers = append(res.Trainers, ServerUtil{
			CPU:   tn.cpu.Utilization(),
			MemBW: tn.mem.Utilization(),
			Net:   tn.net.Utilization(),
		})
	}
	for _, ps := range pss {
		res.SparsePS = append(res.SparsePS, ServerUtil{
			CPU:   ps.cpu.Utilization(),
			MemBW: ps.mem.Utilization(),
			Net:   ps.net.Utilization(),
		})
	}
	for _, r := range readers {
		res.Readers = append(res.Readers, r.Utilization())
	}
	return res, nil
}

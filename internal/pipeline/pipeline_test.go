package pipeline

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func quickConfig(seed int64) Config {
	return Config{
		Model:      workload.DefaultTestSuite(256, 16),
		Batch:      200,
		Trainers:   4,
		SparsePS:   2,
		DensePS:    1,
		Iterations: 100,
		Seed:       seed,
	}
}

func TestRunProducesThroughput(t *testing.T) {
	res, err := Run(quickConfig(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Throughput <= 0 || res.SimTime <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	wantExamples := int64(4 * 100 * 200)
	if res.Examples != wantExamples {
		t.Errorf("Examples = %d, want %d", res.Examples, wantExamples)
	}
	if len(res.Trainers) != 4 || len(res.SparsePS) != 2 {
		t.Fatalf("server counts: %d trainers, %d PS", len(res.Trainers), len(res.SparsePS))
	}
}

func TestUtilizationsInRange(t *testing.T) {
	res, err := Run(quickConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, u float64) {
		if u < 0 || u > 1 {
			t.Errorf("%s utilization %v out of [0,1]", name, u)
		}
	}
	for _, s := range res.Trainers {
		check("trainer cpu", s.CPU)
		check("trainer mem", s.MemBW)
		check("trainer net", s.Net)
	}
	for _, s := range res.SparsePS {
		check("ps cpu", s.CPU)
		check("ps mem", s.MemBW)
		check("ps net", s.Net)
	}
	for _, u := range res.Readers {
		check("reader", u)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := Run(quickConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.Throughput != b.Throughput {
		t.Error("same seed must reproduce the run exactly")
	}
	c, err := Run(quickConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if c.SimTime == a.SimTime {
		t.Error("different seeds should differ (jitter)")
	}
}

// TestFig5Property reproduces Fig 5's qualitative claim on a single run:
// trainer servers run hot with modest variation, parameter servers sit at
// lower mean utilization.
func TestFig5Property(t *testing.T) {
	cfg := quickConfig(5)
	cfg.Trainers = 8
	cfg.SparsePS = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tCPU, pCPU []float64
	for _, s := range res.Trainers {
		tCPU = append(tCPU, s.CPU)
	}
	for _, s := range res.SparsePS {
		pCPU = append(pCPU, s.CPU)
	}
	tSum := metrics.Summarize(tCPU)
	pSum := metrics.Summarize(pCPU)
	if tSum.Mean <= pSum.Mean {
		t.Errorf("trainer CPU mean %v should exceed PS CPU mean %v", tSum.Mean, pSum.Mean)
	}
	if tSum.Mean < 0.3 {
		t.Errorf("trainer servers should be busy; mean util %v", tSum.Mean)
	}
}

func TestMoreTrainersRaisePSLoad(t *testing.T) {
	small := quickConfig(6)
	small.Trainers = 2
	big := quickConfig(6)
	big.Trainers = 8
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	meanPS := func(ss []ServerUtil) float64 {
		var sum float64
		for _, s := range ss {
			sum += s.CPU
		}
		return sum / float64(len(ss))
	}
	if meanPS(rb.SparsePS) <= meanPS(rs.SparsePS) {
		t.Errorf("PS load must rise with trainer count: %v vs %v",
			meanPS(rs.SparsePS), meanPS(rb.SparsePS))
	}
	if rb.Throughput <= rs.Throughput {
		t.Errorf("cluster throughput must rise with trainers: %v vs %v",
			rs.Throughput, rb.Throughput)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := quickConfig(7)
	cfg.Model.Sparse = nil
	if _, err := Run(cfg); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestHogwildFlowsIncreaseUtilization(t *testing.T) {
	serial := quickConfig(8)
	serial.HogwildFlows = 1
	overlapped := quickConfig(8)
	overlapped.HogwildFlows = 4
	rs, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Throughput <= rs.Throughput {
		t.Errorf("overlap should raise throughput: %v vs %v", rs.Throughput, ro.Throughput)
	}
}

package hybrid

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
)

// SetFaults arms a collective fault schedule on the trainer's world:
// kill/fail faults abort the step they strike (Step returns the
// collective.RankError on every rank), delay faults stall the scheduled
// rank. A schedule may be shared across rebuilds — fired faults stay
// fired, so a recovery run replaying the same steps is not re-struck.
func (t *Trainer) SetFaults(fs *collective.FaultSchedule) { t.world.SetFaults(fs) }

// CkptState exports the trainer's live parameters and optimizer state as
// a checkpointable view: rank 0's dense replica (replicas are kept
// bit-identical by the all-reduce) plus the full sharded table set with
// each owner's row-wise accumulator. Slices alias live memory — call
// only between steps.
func (t *Trainer) CkptState() *ckpt.ModelState {
	st := &ckpt.ModelState{
		Step:      t.iter,
		Optimizer: string(t.HC.Optimizer),
		Tables:    t.tables,
		Owner:     t.owner,
		Ranks:     t.HC.Ranks,
	}
	r0 := t.ranks[0]
	for _, p := range r0.params {
		st.Dense = append(st.Dense, p.Value)
	}
	if r0.adagrad != nil {
		st.DenseAccum = r0.adagrad.Accum()
		st.SparseAccum = make([][]float32, len(t.tables))
		for _, r := range t.ranks {
			for oi, ti := range r.owned {
				st.SparseAccum[ti] = r.sparseA[oi].Accum()
			}
		}
	}
	return st
}

// DirtyRows returns the per-table touched-row trackers (aligned with the
// config's table order) that every step feeds; ckpt.Store delta saves
// consume and reset them.
func (t *Trainer) DirtyRows() []*ckpt.Dirty { return t.dirty }

// SaveCheckpoint writes a checkpoint of the trainer into store,
// delegating the full-vs-delta choice to ckpt.Store.AutoSave. Saving a
// poisoned trainer is refused: after a mid-step abort the parameter
// state may be torn across ranks.
func (t *Trainer) SaveCheckpoint(store *ckpt.Store, fullEvery int) (ckpt.SaveInfo, error) {
	if t.failed != nil {
		return ckpt.SaveInfo{}, fmt.Errorf("hybrid: refusing checkpoint of failed trainer: %w", t.failed)
	}
	return store.AutoSave(t.CkptState(), t.dirty, fullEvery)
}

// RestoreCheckpoint loads the latest checkpoint in store into a healthy
// trainer: table shards and owner accumulators restore in place (the
// per-table layout is rank-elastic — TableWiseGreedy re-derives the same
// owners deterministically, and shards are keyed by table, not rank),
// rank 0's dense replica restores and is then copied to every other
// rank, and the step counter rewinds to the checkpoint step.
//
// It must run on a fresh (never-failed) trainer: recovery from a fault
// rebuilds via Restore, because an aborted world cannot rendezvous
// again.
func (t *Trainer) RestoreCheckpoint(store *ckpt.Store) (ckpt.RestoreInfo, error) {
	if t.failed != nil {
		return ckpt.RestoreInfo{}, fmt.Errorf("hybrid: cannot restore into failed trainer (rebuild with hybrid.Restore): %w", t.failed)
	}
	st := t.CkptState()
	info, err := store.Restore(st)
	if err != nil {
		return info, err
	}
	t.iter = st.Step
	t.syncReplicas()
	// The restored state matches the checkpoint tip exactly; stale marks
	// would only pad the next delta.
	for _, d := range t.dirty {
		d.Reset()
	}
	return info, nil
}

// syncReplicas copies rank 0's dense parameters and optimizer
// accumulators into every other rank — the in-process equivalent of the
// dense broadcast a restored worker performs on rejoin. Runs on the
// control thread between steps.
func (t *Trainer) syncReplicas() {
	r0 := t.ranks[0]
	for _, r := range t.ranks[1:] {
		for pi, p := range r.params {
			copy(p.Value, r0.params[pi].Value)
		}
		if r.adagrad != nil {
			a0 := r0.adagrad.Accum()
			for ai, acc := range r.adagrad.Accum() {
				copy(acc, a0[ai])
			}
		}
	}
}

// Restore builds a trainer from cfg/hc and loads the latest checkpoint
// in store — the recovery path after a rank fault (the rebuilt world
// re-shards the tables with the same deterministic layout, or a new one
// when hc.Ranks changed) and the resume path for cold starts. The fault
// schedule, when non-nil, is armed before the restore so its fired
// entries carry over.
func Restore(cfg core.Config, hc Config, store *ckpt.Store, fs *collective.FaultSchedule) (*Trainer, ckpt.RestoreInfo, error) {
	t, err := New(cfg, hc)
	if err != nil {
		return nil, ckpt.RestoreInfo{}, err
	}
	t.SetFaults(fs)
	info, err := t.RestoreCheckpoint(store)
	if err != nil {
		t.Close()
		return nil, info, err
	}
	return t, info, nil
}

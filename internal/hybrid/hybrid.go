// Package hybrid implements the paper's synchronous hybrid-parallel
// training engine (§IV-B1) as a real, in-process system: the MLP stacks
// are data-parallel (every rank holds a full replica, synchronized with a
// bucketed ring all-reduce of dense gradients) while the embedding tables
// are model-parallel (each rank owns a table-wise shard and the pooled
// rows are exchanged with all-to-all). One step is therefore
//
//	local sparse lookup over the global batch (owned tables)
//	→ all-to-all of pooled embedding rows
//	→ fused dense forward/backward on the rank's sub-batch
//	→ bucketed, overlap-capable all-reduce of dense gradients
//	→ all-to-all of pooled-embedding gradients back to the owners
//	→ local sparse scatter + optimizer update,
//
// which is exactly the synchronous scale-out loop whose all-to-all and
// all-reduce times dominate the paper's operator breakdowns. Ranks run on
// goroutines over internal/collective, so every byte the step moves is
// metered and comparable against perfmodel's analytic collective volumes.
//
// The trainer is deterministic for a fixed seed, and its sparse updates
// are bit-identical to the single-process core.Trainer on the same batch
// stream: each rank computes logit gradients with the global-batch
// normalizer, so pooled-embedding gradients — and therefore the table
// updates applied by each owner — match the single-process step exactly.
// Dense gradients differ only by the summation order of the ring, keeping
// the loss curve rank-count-invariant within float tolerance. Steady-state
// steps reuse per-rank scratch arenas and perform no per-rank heap
// allocations.
package hybrid

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// Config holds the hyper-parameters of the synchronous hybrid trainer.
// The optimizer fields mirror core.TrainerConfig so that a hybrid run is
// comparable with the single-process trainer it parallelizes.
type Config struct {
	// Ranks is the number of synchronous workers (default 2).
	Ranks     int
	Optimizer core.OptimizerKind
	LR        float64 // dense learning rate
	SparseLR  float64 // embedding learning rate (defaults to LR)
	// WarmupIters is the linear LR warmup length.
	WarmupIters int
	// BucketBytes chunks the dense-gradient all-reduce into buckets
	// (default 256 KiB), the granularity at which overlap can hide it.
	BucketBytes int
	// Overlap runs the bucketed all-reduce concurrently with the
	// sparse-gradient all-to-all and scatter. The math is identical; only
	// the exposed communication time changes.
	Overlap bool
	// Link prices the collectives (zero value: infinitely fast). Use
	// collective.LinkFor to draw it from an hw.Platform.
	Link collective.Link
	// Seed initializes the model parameters; a single-process
	// core.NewModel with the same seed starts from identical weights.
	Seed int64
	// Registry receives the step counters ("hybrid/…") and the
	// collective meters ("collective/…"). Nil gets a private registry.
	Registry *telemetry.Registry
	// Trace, when non-nil, records per-rank step spans. Rank id writes
	// onto shard TraceShard+id; with Overlap on, the background
	// all-reduce goroutine of rank id writes its full (possibly hidden)
	// duration onto shard TraceShard+Ranks+id, so the tracer must have
	// 2·Ranks shards from TraceShard (Ranks otherwise).
	Trace      *telemetry.Tracer
	TraceShard int
	// WireA2A compresses the pooled-activation and sparse-gradient
	// all-to-alls; WireAllReduce compresses the bucketed dense-gradient
	// all-reduce. The zero value (fp32) keeps the exact historical wire
	// behavior; see collective.WireFormat for the formats.
	WireA2A       collective.WireFormat
	WireAllReduce collective.WireFormat
	// Recorder, when non-nil, receives one flight-recorder StepSample
	// per successful Step: loss, throughput, the comm breakdown, the
	// summed rendezvous wait, and the per-step straggler index (the
	// imbalance.go definition evaluated on one step). Sampling adds no
	// heap allocations to the step.
	Recorder *telemetry.FlightRecorder
}

// ShardCount returns how many tracer shards a trainer with this config
// records onto (after defaults).
func (c Config) ShardCount() int {
	n := c.Ranks
	if n == 0 {
		n = 2
	}
	if c.Overlap {
		return 2 * n
	}
	return n
}

func (c *Config) defaults() {
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.Optimizer == "" {
		c.Optimizer = core.OptAdagrad
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.SparseLR <= 0 {
		c.SparseLR = c.LR
	}
	if c.BucketBytes == 0 {
		c.BucketBytes = 256 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// StepBreakdown decomposes one synchronous step, mirroring the paper's
// operator breakdown figures. Durations are seconds; Compute, AllToAll,
// AllReduce, and Exposed are the maximum across ranks (the critical
// path), where Exposed is the time a rank spent blocked on communication
// that compute did not hide (with Overlap off it is simply the comm
// total; with Overlap on it shrinks by whatever the sparse path hid).
// Byte and modeled-second counters are summed across ranks for the step,
// directly comparable with perfmodel's analytic collective volumes.
type StepBreakdown struct {
	Compute   float64
	AllToAll  float64
	AllReduce float64
	Exposed   float64
	Step      float64

	AllToAllBytes  int64
	AllReduceBytes int64

	ModelAllToAllSec  float64
	ModelAllReduceSec float64
}

// Trainer is a synchronous hybrid-parallel trainer over N in-process
// ranks. Construct with New, drive with Step, release with Close.
type Trainer struct {
	Cfg core.Config
	HC  Config

	world   *collective.World
	tables  []*embedding.Table
	owner   []int   // table index -> owning rank
	ownedBy [][]int // rank -> owned table indices, ascending
	ranks   []*rank

	sched  optim.WarmupSchedule
	iter   int
	batch  *core.MiniBatch
	bounds []int // rank r owns examples [bounds[r], bounds[r+1])
	wg     sync.WaitGroup
	closed bool
	failed error         // sticky first step error; Step refuses afterwards
	dirty  []*ckpt.Dirty // per-table touched rows since the last checkpoint

	// registry-backed step counters (critical-path ns, accumulated per
	// Step) — the StepBreakdown return stays the per-step view, these
	// are the cumulative one.
	reg                       *telemetry.Registry
	stepsC, stepNs, computeNs *telemetry.Counter
	a2aNs, arNs, exposedNs    *telemetry.Counter

	// flight-recorder feed (Config.Recorder): per-rank rendezvous wait
	// counters resolved once so each Step costs only atomic loads.
	rec      *telemetry.FlightRecorder
	waitC    []*telemetry.Counter
	prevWait []int64
}

// New builds the trainer: a reference model seeded exactly like the
// single-process core.NewModel, full MLP replicas per rank, and embedding
// tables sharded table-wise across ranks with the §III-A2 greedy
// partitioner (balancing bytes and lookups).
func New(cfg core.Config, hc Config) (*Trainer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hc.defaults()
	if hc.Ranks < 1 {
		return nil, fmt.Errorf("hybrid: rank count %d", hc.Ranks)
	}
	if hc.LR <= 0 {
		return nil, fmt.Errorf("hybrid: LR must be positive")
	}

	reg := hc.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ref := core.NewModel(cfg, xrand.New(hc.Seed))
	t := &Trainer{
		Cfg:    cfg,
		HC:     hc,
		world:  collective.NewWorldWith(hc.Ranks, hc.Link, reg),
		tables: ref.Tables,
		sched:  optim.WarmupSchedule{Base: hc.LR, WarmupIters: hc.WarmupIters},
		bounds: make([]int, hc.Ranks+1),
		reg:    reg,
	}
	if t.rec = hc.Recorder; t.rec != nil {
		t.waitC = make([]*telemetry.Counter, hc.Ranks)
		t.prevWait = make([]int64, hc.Ranks)
		for id := 0; id < hc.Ranks; id++ {
			t.waitC[id] = reg.Counter(fmt.Sprintf("collective/rank%d/wait_ns", id))
		}
	}
	t.stepsC = reg.Counter("hybrid/steps")
	t.stepNs = reg.Counter("hybrid/step_ns")
	t.computeNs = reg.Counter("hybrid/compute_ns")
	t.a2aNs = reg.Counter("hybrid/a2a_ns")
	t.arNs = reg.Counter("hybrid/ar_ns")
	t.exposedNs = reg.Counter("hybrid/exposed_ns")
	reg.RegisterFunc("embedding/lookups", func() int64 {
		var n int64
		for _, tab := range t.tables {
			n += int64(tab.Lookups())
		}
		return n
	})
	if tr := hc.Trace; tr != nil {
		for id := 0; id < hc.Ranks; id++ {
			tr.NameShard(hc.TraceShard+id, fmt.Sprintf("rank %d", id))
			if hc.Overlap {
				tr.NameShard(hc.TraceShard+hc.Ranks+id, fmt.Sprintf("rank %d allreduce", id))
			}
		}
	}

	stats := make([]embedding.TableStat, cfg.NumSparse())
	for i, s := range cfg.TableStats() {
		stats[i] = embedding.TableStat{Index: s.Index, Bytes: s.Bytes, MeanPooled: s.MeanPooled}
	}
	asg, _ := embedding.TableWiseGreedy(stats, hc.Ranks, 0.5)
	t.owner = make([]int, cfg.NumSparse())
	t.ownedBy = make([][]int, hc.Ranks)
	for ti := 0; ti < cfg.NumSparse(); ti++ { // ascending: fixes packing order
		rk := asg[ti]
		t.owner[ti] = rk
		t.ownedBy[rk] = append(t.ownedBy[rk], ti)
	}
	for _, tab := range t.tables {
		t.dirty = append(t.dirty, ckpt.NewDirty(tab.HashSize))
	}

	main, side, ar := t.world.NewGroup(), t.world.NewGroup(), t.world.NewGroup()
	main.SetWire(hc.WireA2A)
	side.SetWire(hc.WireA2A)
	ar.SetWire(hc.WireAllReduce)
	if hc.Overlap && hc.Ranks > 1 {
		// The bucketed all-reduce runs on a background goroutine when
		// overlapped: its rendezvous waits hide under compute, off the
		// rank's critical path, so they must not feed the per-rank wait
		// meters the straggler analysis subtracts from step wall time.
		// (The exposed join is still visible as the rank shard's
		// all-reduce span.) With Overlap off the same collective runs
		// inline and stays metered.
		ar.MeterWaits(false)
	}
	for id := 0; id < hc.Ranks; id++ {
		r := &rank{
			t:    t,
			id:   id,
			main: main,
			side: side,
			ar:   ar,
			model: &core.Model{
				Cfg:    cfg,
				Bottom: ref.Bottom.Clone(),
				Top:    ref.Top.Clone(),
			},
			scratch:      embedding.NewScratch(),
			owned:        t.ownedBy[id],
			pooledOwned:  make([]*tensor.Matrix, cfg.NumSparse()),
			dPooledOwned: make([]*tensor.Matrix, cfg.NumSparse()),
			sparseGrad:   make([]*embedding.SparseGrad, cfg.NumSparse()),
			sendF:        make([][]float32, hc.Ranks),
			recvF:        make([][]float32, hc.Ranks),
			sendB:        make([][]float32, hc.Ranks),
			recvB:        make([][]float32, hc.Ranks),
			work:         make(chan float64, 1),
			arDone:       make(chan error, 1),
			curB:         -1,
			shard:        hc.TraceShard + id,
			bgShard:      hc.TraceShard + hc.Ranks + id,
		}
		r.params = r.model.DenseParams()
		var flatLen int
		for _, p := range r.params {
			flatLen += len(p.Value)
		}
		r.flat = make([]float32, flatLen)
		switch hc.Optimizer {
		case core.OptSGD:
			r.sgd = optim.NewSGD(r.params, float32(hc.LR))
			for _, ti := range r.owned {
				r.sparseS = append(r.sparseS, &optim.SparseSGD{LR: float32(hc.SparseLR), Table: t.tables[ti]})
			}
		case core.OptAdagrad:
			r.adagrad = optim.NewAdagrad(r.params, float32(hc.LR))
			for _, ti := range r.owned {
				r.sparseA = append(r.sparseA, optim.NewRowWiseAdagrad(t.tables[ti], float32(hc.SparseLR)))
			}
		default:
			return nil, fmt.Errorf("hybrid: unknown optimizer %q", hc.Optimizer)
		}
		for _, ti := range r.owned {
			r.sparseGrad[ti] = embedding.NewSparseGrad(cfg.EmbeddingDim)
		}
		t.ranks = append(t.ranks, r)
		go r.loop()
	}
	return t, nil
}

// Ranks returns the number of synchronous workers.
func (t *Trainer) Ranks() int { return t.HC.Ranks }

// Iter returns the number of steps taken.
func (t *Trainer) Iter() int { return t.iter }

// Owner returns the rank owning embedding table ti.
func (t *Trainer) Owner(ti int) int { return t.owner[ti] }

// CollectiveStats returns the cumulative collective meters (bytes, calls,
// link-modeled seconds) summed across ranks.
func (t *Trainer) CollectiveStats() collective.Totals { return t.world.Snapshot() }

// Registry returns the registry holding the trainer's "hybrid/…" step
// counters and the shared "collective/…" meters.
func (t *Trainer) Registry() *telemetry.Registry { return t.reg }

// Step runs one synchronous iteration over the global batch and returns
// the batch's training loss plus the per-phase breakdown. The batch must
// carry at least one example per rank. At steady state (fixed batch size)
// the per-rank work performs zero heap allocations; every buffer lives in
// rank-owned arenas resized only when the batch size changes.
//
// A non-nil error means the world aborted mid-step — an injected
// collective fault (collective.RankError) or AbortAll. The trainer is
// then poisoned: parameter state may be torn across ranks, every later
// Step returns the same error, and recovery goes through Restore
// (rebuild + checkpoint rollback).
func (t *Trainer) Step(b *core.MiniBatch) (float64, StepBreakdown, error) {
	if t.closed {
		panic("hybrid: Step after Close")
	}
	if t.failed != nil {
		return 0, StepBreakdown{}, t.failed
	}
	B := b.Batch()
	n := t.HC.Ranks
	if B < n {
		panic(fmt.Sprintf("hybrid: batch %d smaller than %d ranks", B, n))
	}
	for r := 0; r <= n; r++ {
		t.bounds[r] = r * B / n
	}
	t.batch = b

	before := t.world.Snapshot()
	lr := t.sched.At(t.iter)
	t.world.BeginStep(t.iter) // faults scheduled for this step become due
	t.wg.Add(n)
	for _, r := range t.ranks {
		r.work <- lr
	}
	t.wg.Wait()
	for _, r := range t.ranks {
		if r.err != nil {
			t.failed = r.err
			return 0, StepBreakdown{}, t.failed
		}
	}
	after := t.world.Snapshot()
	t.iter++

	var loss float64
	var bd StepBreakdown
	for _, r := range t.ranks {
		loss += r.loss
		bd.Compute = max(bd.Compute, r.tCompute.Seconds())
		bd.AllToAll = max(bd.AllToAll, r.tA2A.Seconds())
		bd.AllReduce = max(bd.AllReduce, r.tAR.Seconds())
		bd.Exposed = max(bd.Exposed, (r.tA2A + r.arWait).Seconds())
		bd.Step = max(bd.Step, r.tStep.Seconds())
	}
	bd.AllToAllBytes = after.AllToAll.Bytes - before.AllToAll.Bytes
	bd.AllReduceBytes = after.AllReduce.Bytes - before.AllReduce.Bytes
	bd.ModelAllToAllSec = after.AllToAll.ModelSec - before.AllToAll.ModelSec
	bd.ModelAllReduceSec = after.AllReduce.ModelSec - before.AllReduce.ModelSec

	t.stepsC.Inc()
	t.stepNs.Add(int64(bd.Step * 1e9))
	t.computeNs.Add(int64(bd.Compute * 1e9))
	t.a2aNs.Add(int64(bd.AllToAll * 1e9))
	t.arNs.Add(int64(bd.AllReduce * 1e9))
	t.exposedNs.Add(int64(bd.Exposed * 1e9))
	if t.rec != nil {
		t.observeStep(loss, B, bd)
	}
	return loss, bd, nil
}

// observeStep feeds the flight recorder one sample for the step that
// just completed. The per-step straggler index mirrors Imbalance: each
// rank's self time is its step wall minus its rendezvous waits (meter
// delta, plus the exposed all-reduce join when overlap keeps the
// background collective off the meters), and the index is max self over
// mean self. Runs on the driving goroutine with all rank goroutines
// parked, so reading rank state is safe; no heap allocations.
func (t *Trainer) observeStep(loss float64, batch int, bd StepBreakdown) {
	n := t.HC.Ranks
	overlapped := t.HC.Overlap && n > 1
	var maxSelf, sumSelf float64
	var waitSum int64
	slowest := int32(-1)
	for k, r := range t.ranks {
		w := t.waitC[k].Load()
		wait := w - t.prevWait[k]
		t.prevWait[k] = w
		if overlapped {
			wait += int64(r.arWait)
		}
		waitSum += wait
		self := float64(int64(r.tStep) - wait)
		if self < 0 {
			self = 0
		}
		sumSelf += self
		if self > maxSelf {
			maxSelf, slowest = self, int32(k)
		}
	}
	idx := 0.0
	if sumSelf > 0 {
		idx = maxSelf / (sumSelf / float64(n))
	}
	t.rec.ObserveStep(telemetry.StepSample{
		Step:           int64(t.iter - 1),
		Loss:           loss,
		Examples:       int64(batch),
		StepNS:         int64(bd.Step * 1e9),
		A2ANS:          int64(bd.AllToAll * 1e9),
		ARNS:           int64(bd.AllReduce * 1e9),
		ExposedNS:      int64(bd.Exposed * 1e9),
		WaitNS:         waitSum,
		StragglerIndex: idx,
		SlowestRank:    slowest,
	})
}

// Err returns the error that poisoned the trainer, or nil while healthy.
func (t *Trainer) Err() error { return t.failed }

// TrainFrom drives the hybrid trainer from a BatchSource for up to iters
// synchronous steps (every step recycles its batch), returning the mean
// training loss, the accumulated step breakdown, and the step count. A
// finite source ending early is not an error; a batch with fewer
// examples than ranks (a finite stream's partial tail) is recycled and
// skipped rather than stepped, since a synchronous step needs at least
// one example per rank.
func (t *Trainer) TrainFrom(src core.BatchSource, iters int) (meanLoss float64, total StepBreakdown, steps int, err error) {
	var sum float64
	for steps < iters {
		b, err := src.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return 0, total, steps, fmt.Errorf("hybrid: batch source: %w", err)
		}
		if b.Batch() < t.HC.Ranks {
			src.Recycle(b)
			continue
		}
		loss, bd, err := t.Step(b)
		if err != nil {
			src.Recycle(b)
			return 0, total, steps, err
		}
		src.Recycle(b)
		sum += loss
		total.Compute += bd.Compute
		total.AllToAll += bd.AllToAll
		total.AllReduce += bd.AllReduce
		total.Exposed += bd.Exposed
		total.Step += bd.Step
		total.AllToAllBytes += bd.AllToAllBytes
		total.AllReduceBytes += bd.AllReduceBytes
		total.ModelAllToAllSec += bd.ModelAllToAllSec
		total.ModelAllReduceSec += bd.ModelAllReduceSec
		steps++
	}
	if steps > 0 {
		sum /= float64(steps)
	}
	return sum, total, steps, nil
}

// EvalModel returns a model view over rank 0's dense replica and the full
// sharded table set, for held-out evaluation between steps. The view
// aliases the trainer's parameters; do not evaluate concurrently with
// Step.
func (t *Trainer) EvalModel() *core.Model {
	return &core.Model{
		Cfg:    t.Cfg,
		Bottom: t.ranks[0].model.Bottom.ShareWeights(),
		Top:    t.ranks[0].model.Top.ShareWeights(),
		Tables: t.tables,
	}
}

// Close stops the rank goroutines. The trainer must not be stepped again.
func (t *Trainer) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, r := range t.ranks {
		close(r.work)
	}
}

// rank is one synchronous worker: a full MLP replica, the owned table
// shard with its sparse optimizers, and every scratch arena the step
// needs (pooled matrices, pack/unpack wires, flattened gradients).
type rank struct {
	t    *Trainer
	id   int
	main *collective.Group // forward all-to-all
	side *collective.Group // backward all-to-all (overlappable)
	ar   *collective.Group // bucketed dense all-reduce

	model   *core.Model // dense replica (no tables)
	params  []nn.Param
	sgd     *optim.SGD
	adagrad *optim.Adagrad
	sparseS []*optim.SparseSGD      // aligned with owned
	sparseA []*optim.RowWiseAdagrad // aligned with owned
	owned   []int                   // owned table indices, ascending
	scratch *embedding.Scratch

	// arenas, resized only when the global batch size changes
	curB         int
	pooledOwned  []*tensor.Matrix // owned ti -> B×d pooled rows (global batch)
	dPooledOwned []*tensor.Matrix // owned ti -> B×d pooled grads (global batch)
	sparseGrad   []*embedding.SparseGrad
	pooledLocal  []*tensor.Matrix // every ti -> bs×d rows for this rank's examples
	sendF, recvF [][]float32      // forward pooled-row wires, per peer
	sendB, recvB [][]float32      // backward pooled-grad wires, per peer
	gradBuf      []float32
	flat         []float32 // flattened dense grads for the bucketed all-reduce
	denseView    tensor.Matrix

	work   chan float64 // learning rate for the step; closed by Close
	arDone chan error

	// tracer shards: the rank goroutine writes step spans onto shard;
	// the overlapped all-reduce goroutine writes onto bgShard.
	shard, bgShard int

	// per-step outputs
	loss                float64
	err                 error // collective abort, if the step failed
	tCompute, tA2A, tAR time.Duration
	arWait, tStep       time.Duration
	tARBg               time.Duration // all-reduce duration when overlapped
}

func (r *rank) loop() {
	for lr := range r.work {
		r.err = r.step(lr)
		r.t.wg.Done()
	}
}

// ensure resizes the arenas for global batch size B and this rank's
// sub-batch. No-op (and allocation-free) while B is unchanged.
func (r *rank) ensure(B int) {
	if r.curB == B {
		return
	}
	r.curB = B
	t := r.t
	n := t.HC.Ranks
	d := t.Cfg.EmbeddingDim
	bs := t.bounds[r.id+1] - t.bounds[r.id]
	for _, ti := range r.owned {
		r.pooledOwned[ti] = tensor.New(B, d)
		r.dPooledOwned[ti] = tensor.New(B, d)
	}
	if len(r.pooledLocal) != t.Cfg.NumSparse() {
		r.pooledLocal = make([]*tensor.Matrix, t.Cfg.NumSparse())
	}
	for ti := range r.pooledLocal {
		r.pooledLocal[ti] = tensor.New(bs, d)
	}
	for j := 0; j < n; j++ {
		bsj := t.bounds[j+1] - t.bounds[j]
		r.sendF[j] = make([]float32, len(r.owned)*bsj*d)
		r.recvF[j] = make([]float32, len(t.ownedBy[j])*bs*d)
		r.sendB[j] = make([]float32, len(t.ownedBy[j])*bs*d)
		r.recvB[j] = make([]float32, len(r.owned)*bsj*d)
	}
	r.gradBuf = make([]float32, bs)
}

// step runs this rank's share of one synchronous iteration. All segment
// timing reads the telemetry clock — one monotonic base shared with the
// ingest meters and every span — and the boundary marks double as span
// edges, so the recorded phases tile the step with no gaps.
//
// A non-nil error is a collective abort (fault injection or AbortAll):
// the step bails out wherever it was, leaving rank state torn — the
// trainer surfaces the error and recovery rolls back to a checkpoint.
func (r *rank) step(lr float64) error {
	t := r.t
	b := t.batch
	n := t.HC.Ranks
	d := t.Cfg.EmbeddingDim
	B := b.Batch()
	lo, hi := t.bounds[r.id], t.bounds[r.id+1]
	bs := hi - lo
	trace := t.HC.Trace

	start := telemetry.Now()
	var a2a, ar, arWait int64
	r.ensure(B)

	// 1. Model-parallel lookups: pool the owned tables over the whole
	// global batch. Batches carrying a RecD dedup view (internal/ingest)
	// take the unique-row kernels — identical math, fewer table reads.
	for _, ti := range r.owned {
		if dd := b.DedupFor(ti); dd != nil {
			t.tables[ti].BagForwardDedup(b.Bags[ti], dd, r.pooledOwned[ti], r.scratch)
		} else {
			t.tables[ti].BagForwardInto(b.Bags[ti], r.pooledOwned[ti], r.scratch)
		}
	}

	// 2. Pack pooled rows per destination: rank j receives its examples'
	// rows for every table this rank owns (tables in ascending order).
	// The pack is lookup-output marshaling, charged to the lookup span.
	for j := 0; j < n; j++ {
		off := 0
		for _, ti := range r.owned {
			src := r.pooledOwned[ti].Data[t.bounds[j]*d : t.bounds[j+1]*d]
			copy(r.sendF[j][off:], src)
			off += len(src)
		}
	}

	// 3. Forward all-to-all of pooled embedding rows.
	ts := telemetry.Now()
	trace.Emit(r.shard, telemetry.PhaseEmbLookup, start, ts)
	if err := r.main.AllToAllV(r.id, r.sendF, r.recvF); err != nil {
		return err
	}
	te := telemetry.Now()
	a2a += te - ts
	trace.Emit(r.shard, telemetry.PhaseAllToAll, ts, te)

	// 4. Unpack: pooledLocal[ti] gets this rank's bs×d slice of table ti.
	for o := 0; o < n; o++ {
		off := 0
		for _, ti := range t.ownedBy[o] {
			copy(r.pooledLocal[ti].Data, r.recvF[o][off:off+bs*d])
			off += bs * d
		}
	}

	// 5. Data-parallel dense pass on the rank's sub-batch. The logit
	// gradient uses the global-batch normalizer, so sub-batch gradients
	// carry exactly their single-process weight.
	r.denseView.Rows, r.denseView.Cols = bs, b.Dense.Cols
	r.denseView.Data = b.Dense.Data[lo*b.Dense.Cols : hi*b.Dense.Cols]
	logits := r.model.ForwardPooled(&r.denseView, r.pooledLocal)
	tf := telemetry.Now()
	trace.Emit(r.shard, telemetry.PhaseDenseFwd, te, tf)
	grad := r.gradBuf[:bs]
	r.loss = nn.BCEWithLogitsNorm(logits, b.Labels[lo:hi], grad, 1.0/float64(B))
	tl := telemetry.Now()
	trace.Emit(r.shard, telemetry.PhaseLoss, tf, tl)

	r.model.ZeroGrad()
	dPooled := r.model.BackwardPooled(grad)

	// 6. Pack pooled-embedding gradients back toward the table owners and
	// flatten the dense gradients for the bucketed all-reduce.
	for o := 0; o < n; o++ {
		off := 0
		for _, ti := range t.ownedBy[o] {
			copy(r.sendB[o][off:], dPooled[ti].Data)
			off += bs * d
		}
	}
	off := 0
	for _, p := range r.params {
		copy(r.flat[off:], p.Grad)
		off += len(p.Grad)
	}
	tb := telemetry.Now()
	trace.Emit(r.shard, telemetry.PhaseDenseBwd, tl, tb)

	// 7. Synchronize. With Overlap the bucketed all-reduce proceeds on a
	// second goroutine while the sparse gradients travel and scatter —
	// identical math, less exposed communication. The rank shard records
	// only the *exposed* wait; the background shard gets the full
	// all-reduce duration (the hidden part of the paper's overlap win).
	var tOptStart int64
	if t.HC.Overlap && n > 1 {
		go func() {
			t0 := telemetry.Now()
			err := r.allReduceBuckets()
			t1 := telemetry.Now()
			r.tARBg = time.Duration(t1 - t0)
			trace.Emit(r.bgShard, telemetry.PhaseAllReduce, t0, t1)
			r.arDone <- err
		}()
		ts = telemetry.Now()
		sideErr := r.side.AllToAllV(r.id, r.sendB, r.recvB)
		te = telemetry.Now()
		a2a += te - ts
		trace.Emit(r.shard, telemetry.PhaseAllToAll, ts, te)
		if sideErr == nil {
			r.applySparse(lr)
		}
		ts = telemetry.Now()
		trace.Emit(r.shard, telemetry.PhaseSparseScatter, te, ts)
		// Always drain the background all-reduce; an abort unblocks it,
		// so the send happens even on a torn step.
		arErr := <-r.arDone
		te = telemetry.Now()
		arWait = te - ts
		trace.Emit(r.shard, telemetry.PhaseAllReduce, ts, te)
		ar = int64(r.tARBg)
		tOptStart = te
		if sideErr != nil {
			return sideErr
		}
		if arErr != nil {
			return arErr
		}
	} else {
		ts = telemetry.Now()
		arErr := r.allReduceBuckets()
		te = telemetry.Now()
		ar = te - ts
		arWait = ar
		trace.Emit(r.shard, telemetry.PhaseAllReduce, ts, te)
		if arErr != nil {
			return arErr
		}
		ts = telemetry.Now()
		if err := r.side.AllToAllV(r.id, r.sendB, r.recvB); err != nil {
			return err
		}
		te = telemetry.Now()
		a2a += te - ts
		trace.Emit(r.shard, telemetry.PhaseAllToAll, ts, te)
		r.applySparse(lr)
		tOptStart = telemetry.Now()
		trace.Emit(r.shard, telemetry.PhaseSparseScatter, te, tOptStart)
	}

	// 8. Dense update: every rank applies the identical summed gradient,
	// so the replicas stay bit-for-bit in sync.
	off = 0
	for _, p := range r.params {
		copy(p.Grad, r.flat[off:off+len(p.Grad)])
		off += len(p.Grad)
	}
	switch {
	case r.sgd != nil:
		r.sgd.LR = float32(lr)
		r.sgd.Step()
	default:
		r.adagrad.LR = float32(lr)
		r.adagrad.Step()
	}

	end := telemetry.Now()
	trace.Emit(r.shard, telemetry.PhaseOptimizer, tOptStart, end)
	trace.Emit(r.shard, telemetry.PhaseStep, start, end)
	r.tStep = time.Duration(end - start)
	r.tA2A = time.Duration(a2a)
	r.tAR = time.Duration(ar)
	r.arWait = time.Duration(arWait)
	r.tCompute = r.tStep - r.tA2A - r.arWait
	return nil
}

// allReduceBuckets ring-all-reduces the flattened dense gradients in
// BucketBytes chunks.
func (r *rank) allReduceBuckets() error {
	bucket := r.t.HC.BucketBytes / 4
	if bucket <= 0 {
		bucket = len(r.flat)
	}
	for off := 0; off < len(r.flat); off += bucket {
		end := off + bucket
		if end > len(r.flat) {
			end = len(r.flat)
		}
		if err := r.ar.AllReduce(r.id, r.flat[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// applySparse reassembles the global-order pooled-gradient matrix for
// every owned table from the backward all-to-all, scatters it through the
// bag (exactly the single-process BagBackward walk), and applies the
// sparse optimizer with the warmup-scaled learning rate.
func (r *rank) applySparse(lr float64) {
	t := r.t
	n := t.HC.Ranks
	d := t.Cfg.EmbeddingDim
	scale := float32(lr / t.HC.LR)
	for j := 0; j < n; j++ {
		off := 0
		rows := (t.bounds[j+1] - t.bounds[j]) * d
		for _, ti := range r.owned {
			dst := r.dPooledOwned[ti].Data[t.bounds[j]*d : t.bounds[j+1]*d]
			copy(dst, r.recvB[j][off:off+rows])
			off += rows
		}
	}
	for oi, ti := range r.owned {
		sg := r.sparseGrad[ti]
		sg.Reset()
		if dd := t.batch.DedupFor(ti); dd != nil {
			t.tables[ti].BagBackwardDedup(t.batch.Bags[ti], dd, r.dPooledOwned[ti], sg, r.scratch)
		} else {
			t.tables[ti].BagBackward(t.batch.Bags[ti], r.dPooledOwned[ti], sg)
		}
		if r.sgd != nil {
			r.sparseS[oi].LR = float32(t.HC.SparseLR) * scale
			r.sparseS[oi].Apply(sg)
		} else {
			r.sparseA[oi].LR = float32(t.HC.SparseLR) * scale
			r.sparseA[oi].Apply(sg)
		}
		// Feed the delta-checkpoint tracker. Each table has exactly one
		// owner, so trackers are rank-private here (no races).
		t.dirty[ti].Mark(sg.RowIDs())
	}
}

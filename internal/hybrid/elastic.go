package hybrid

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// SourceFactory returns a batch source positioned after the first skip
// batches of the stream, plus a release func. Elastic training uses it
// to replay the exact batch sequence from a rolled-back step: the
// factory recreates the deterministic stream (same seed, same order) and
// fast-forwards. It is called once per (re)start, never concurrently.
type SourceFactory func(skip int) (core.BatchSource, func(), error)

// ElasticConfig drives RunElastic.
type ElasticConfig struct {
	Cfg core.Config
	HC  Config

	// Store is the durable checkpoint store (required).
	Store *ckpt.Store
	// CkptEvery saves a checkpoint every CkptEvery steps (0: only
	// recover from whatever the store already holds).
	CkptEvery int
	// FullEvery bounds the delta chain: every FullEvery-th save is a
	// full compaction (0: always full).
	FullEvery int
	// Steps is the target step count.
	Steps int
	// Source produces the replayable batch stream (required).
	Source SourceFactory
	// Faults, when non-nil, is armed on every (re)built world. Fired
	// entries persist across rebuilds, so recovery replays clean.
	Faults *collective.FaultSchedule
	// Logf, when non-nil, receives progress lines (kills, restores).
	Logf func(format string, args ...any)
	// Recorder, when non-nil, is attached to every (re)built trainer
	// (overriding HC.Recorder) so the per-step time-series spans
	// recoveries, and receives the fault as an AnomalyRankFault finding
	// plus "rebuild"/"restore" marks — the annotated events a black-box
	// bundle localizes a kill with.
	Recorder *telemetry.FlightRecorder
}

// ElasticResult reports an elastic run: the full loss curve (one entry
// per step, replayed entries overwritten — the curve a monitoring system
// would keep), and the cost of every recovery.
type ElasticResult struct {
	Losses     []float64
	Steps      int
	Recoveries int
	// RecoveryWall is the total wall time spent between detecting a
	// fault and having a restored, stepping trainer again.
	RecoveryWall time.Duration
	// BytesRestored totals the verified checkpoint bytes recovery read.
	BytesRestored int64
	// Saves counts checkpoints written; LastRoot is the final manifest
	// Merkle root ("" when no checkpoint was written).
	Saves    int
	LastRoot string
}

func (ec *ElasticConfig) logf(format string, args ...any) {
	if ec.Logf != nil {
		ec.Logf(format, args...)
	}
}

// RunElastic trains for ec.Steps synchronous steps with durable
// checkpoints and fault-tolerant recovery: when a step dies on an
// injected (or real) collective abort, the trainer is torn down, a fresh
// world is built, state rolls back to the last durable checkpoint, the
// batch stream is replayed from that step, and training continues. With
// a deterministic source the recovered loss curve is bit-identical to an
// uninterrupted run — the property the elastic_recovery experiment and
// the kill/restore tests pin.
//
// A fault striking before the first checkpoint restarts training from
// scratch (same seed), which preserves the bit-identity property at the
// cost of replaying the whole prefix.
func RunElastic(ec ElasticConfig) (*ElasticResult, error) {
	if ec.Store == nil {
		return nil, fmt.Errorf("hybrid: elastic run needs a checkpoint store")
	}
	if ec.Source == nil {
		return nil, fmt.Errorf("hybrid: elastic run needs a batch source factory")
	}
	res := &ElasticResult{Losses: make([]float64, ec.Steps)}

	// Build, preferring a resume over a cold start.
	if ec.Recorder != nil {
		ec.HC.Recorder = ec.Recorder
	}
	build := func() (*Trainer, error) {
		t, err := New(ec.Cfg, ec.HC)
		if err != nil {
			return nil, err
		}
		t.SetFaults(ec.Faults)
		info, err := t.RestoreCheckpoint(ec.Store)
		switch {
		case err == nil:
			res.BytesRestored += info.Bytes
			ec.logf("hybrid: restored %s at step %d (%d bytes)", info.Name, info.Step, info.Bytes)
			ec.HC.Recorder.Mark(int64(info.Step), "restore",
				fmt.Sprintf("rolled back to checkpoint %s (%d bytes)", info.Name, info.Bytes))
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			// Cold start from the seed.
		default:
			t.Close()
			return nil, err
		}
		return t, nil
	}

	t, err := build()
	if err != nil {
		return nil, err
	}
	defer func() { t.Close() }()

	// Recoveries are bounded by the fault schedule: each kill/fail fires
	// once. The +1 headroom covers an abort without any schedule.
	maxRecoveries := ec.Faults.Len() + 1

	for {
		start := t.Iter()
		src, release, err := ec.Source(start)
		if err != nil {
			return res, fmt.Errorf("hybrid: opening batch stream at step %d: %w", start, err)
		}
		stepErr, runErr := runSpan(t, ec, res, src)
		release()
		if runErr != nil {
			return res, runErr
		}
		if stepErr == nil {
			return res, nil // reached ec.Steps
		}

		// Fault detected: roll back to the last durable barrier.
		res.Recoveries++
		if res.Recoveries > maxRecoveries {
			return res, fmt.Errorf("hybrid: giving up after %d recoveries: %w", res.Recoveries-1, stepErr)
		}
		ec.logf("hybrid: step %d failed (%v); recovering", t.Iter(), stepErr)
		faultStep := int64(t.Iter())
		if re, ok := collective.AsRankError(stepErr); ok {
			faultStep = int64(re.Step)
		}
		ec.HC.Recorder.RecordFault(faultStep, stepErr)
		rec0 := telemetry.Now()
		t.Close()
		t, err = build()
		if err != nil {
			return res, fmt.Errorf("hybrid: rebuilding after %v: %w", stepErr, err)
		}
		res.RecoveryWall += time.Duration(telemetry.Now() - rec0)
		ec.HC.Recorder.Mark(int64(t.Iter()), "rebuild",
			fmt.Sprintf("world rebuilt with %d ranks after %v", t.Ranks(), stepErr))
		ec.logf("hybrid: rejoined %d ranks at step %d", t.Ranks(), t.Iter())
	}
}

// runSpan steps the trainer from its current iter toward ec.Steps,
// recording losses and periodic checkpoints. It returns (stepErr, nil)
// when a step aborts, (nil, nil) on reaching the target, and a non-nil
// second error for unrecoverable problems (source failures, checkpoint
// IO).
func runSpan(t *Trainer, ec ElasticConfig, res *ElasticResult, src core.BatchSource) (error, error) {
	for t.Iter() < ec.Steps {
		b, err := src.NextBatch()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, nil
			}
			return nil, fmt.Errorf("hybrid: batch source at step %d: %w", t.Iter(), err)
		}
		if b.Batch() < t.Ranks() {
			src.Recycle(b)
			continue
		}
		step := t.Iter()
		loss, _, stepErr := t.Step(b)
		src.Recycle(b)
		if stepErr != nil {
			return stepErr, nil
		}
		res.Losses[step] = loss
		res.Steps = max(res.Steps, step+1)
		if ec.CkptEvery > 0 && (step+1)%ec.CkptEvery == 0 {
			info, err := t.SaveCheckpoint(ec.Store, ec.FullEvery)
			if err != nil {
				return nil, fmt.Errorf("hybrid: checkpoint at step %d: %w", step+1, err)
			}
			res.Saves++
			res.LastRoot = info.Root
			ec.logf("hybrid: saved %s", info)
		}
	}
	return nil, nil
}

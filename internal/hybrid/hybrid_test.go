package hybrid

import (
	"io"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/xrand"
)

func testCfg() core.Config {
	return core.Config{
		Name:          "hybrid-test",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(8, 1000, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   core.DotProduct,
	}
}

// singleLosses trains the single-process reference trainer on the same
// seed/workload and records per-step losses.
func singleLosses(t *testing.T, cfg core.Config, steps, batch int) []float64 {
	t.Helper()
	m := core.NewModel(cfg, xrand.New(1))
	tr := core.NewTrainer(m, core.TrainerConfig{Optimizer: core.OptAdagrad, LR: 0.05})
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	losses := make([]float64, steps)
	for i := range losses {
		losses[i] = tr.Step(gen.NextBatch(batch))
	}
	return losses
}

func hybridLosses(t *testing.T, cfg core.Config, hc Config, steps, batch int) []float64 {
	t.Helper()
	ht, err := New(cfg, hc)
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	losses := make([]float64, steps)
	for i := range losses {
		losses[i], _, _ = ht.Step(gen.NextBatch(batch))
	}
	return losses
}

// TestMatchesSingleProcess is the engine's core acceptance criterion: for
// the same seed and workload, the synchronous hybrid trainer's loss curve
// must match the single-process core.Trainer within float tolerance, for
// 1, 2, and 4 ranks. Sparse updates are bit-identical by construction;
// dense gradients differ only by ring summation order.
func TestMatchesSingleProcess(t *testing.T) {
	cfg := testCfg()
	const steps, batch = 30, 64
	ref := singleLosses(t, cfg, steps, batch)
	for _, ranks := range []int{1, 2, 4} {
		got := hybridLosses(t, cfg, Config{Ranks: ranks, Seed: 1, LR: 0.05}, steps, batch)
		var worst float64
		for i := range ref {
			if d := math.Abs(got[i] - ref[i]); d > worst {
				worst = d
			}
		}
		if worst > 5e-3 {
			t.Errorf("ranks=%d: max per-step loss deviation %v from single-process run", ranks, worst)
		}
		if d := math.Abs(got[0] - ref[0]); d > 1e-6 {
			t.Errorf("ranks=%d: first-step loss off by %v (forward pass should be near-exact)", ranks, d)
		}
	}
}

// TestDeterministicAndOverlapInvariant checks that a fixed seed yields a
// bit-identical loss trajectory across runs, and that overlapping the
// dense all-reduce with the sparse path changes timing only, not math.
func TestDeterministicAndOverlapInvariant(t *testing.T) {
	cfg := testCfg()
	const steps, batch = 12, 32
	base := hybridLosses(t, cfg, Config{Ranks: 3, Seed: 5, LR: 0.05}, steps, batch)
	again := hybridLosses(t, cfg, Config{Ranks: 3, Seed: 5, LR: 0.05}, steps, batch)
	overlapped := hybridLosses(t, cfg, Config{Ranks: 3, Seed: 5, LR: 0.05, Overlap: true}, steps, batch)
	for i := range base {
		if base[i] != again[i] {
			t.Fatalf("step %d: reruns diverge (%v vs %v)", i, base[i], again[i])
		}
		if base[i] != overlapped[i] {
			t.Fatalf("step %d: overlap changed the math (%v vs %v)", i, base[i], overlapped[i])
		}
	}
}

// hybridLossesDedup trains with the RecD dedup view attached to every
// batch (the internal/ingest pipeline's arrangement).
func hybridLossesDedup(t *testing.T, cfg core.Config, hc Config, steps, batch int) []float64 {
	t.Helper()
	ht, err := New(cfg, hc)
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	losses := make([]float64, steps)
	for i := range losses {
		b := gen.NextBatch(batch)
		b.AttachDedup()
		losses[i], _, _ = ht.Step(b)
	}
	return losses
}

// TestDedupBitIdenticalAcrossRanks is the RecD acceptance criterion:
// training with within-batch dedup on must produce a bit-identical loss
// curve to dedup off, for 1-, 2-, and 4-rank hybrid training — the dedup
// changes the work (unique-row gathers, dense unique-grad accumulation),
// never the math.
func TestDedupBitIdenticalAcrossRanks(t *testing.T) {
	cfg := testCfg()
	const steps, batch = 20, 64
	for _, ranks := range []int{1, 2, 4} {
		hc := Config{Ranks: ranks, Seed: 3, LR: 0.05, Overlap: ranks > 1}
		off := hybridLosses(t, cfg, hc, steps, batch)
		on := hybridLossesDedup(t, cfg, hc, steps, batch)
		for i := range off {
			if off[i] != on[i] {
				t.Fatalf("ranks=%d step %d: dedup changed the loss (%v vs %v)",
					ranks, i, on[i], off[i])
			}
		}
	}
}

// TestDedupBitIdenticalSingleTrainer covers the single-process trainer's
// dedup path the same way.
func TestDedupBitIdenticalSingleTrainer(t *testing.T) {
	cfg := testCfg()
	const steps, batch = 20, 64
	run := func(dedup bool) []float64 {
		m := core.NewModel(cfg, xrand.New(1))
		tr := core.NewTrainer(m, core.TrainerConfig{Optimizer: core.OptAdagrad, LR: 0.05})
		gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
		losses := make([]float64, steps)
		for i := range losses {
			b := gen.NextBatch(batch)
			if dedup {
				b.AttachDedup()
			}
			losses[i] = tr.Step(b)
		}
		return losses
	}
	off, on := run(false), run(true)
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("step %d: dedup changed the loss (%v vs %v)", i, on[i], off[i])
		}
	}
}

// tailSource emits full batches followed by one sub-rank tail batch,
// then io.EOF — the shape a finite ingest stream ends with.
type tailSource struct {
	gen     *data.Generator
	full    int // full batches remaining
	tail    int // tail batch size (< ranks)
	emitted bool
}

func (s *tailSource) NextBatch() (*core.MiniBatch, error) {
	if s.full > 0 {
		s.full--
		return s.gen.NextBatch(32), nil
	}
	if !s.emitted {
		s.emitted = true
		return s.gen.NextBatch(s.tail), nil
	}
	return nil, io.EOF
}

func (s *tailSource) Recycle(*core.MiniBatch) {}

// TestTrainFromSkipsSubRankTail: a finite stream whose final partial
// batch is smaller than the rank count must be skipped, not panic the
// synchronous step.
func TestTrainFromSkipsSubRankTail(t *testing.T) {
	cfg := testCfg()
	ht, err := New(cfg, Config{Ranks: 4, Seed: 1, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	src := &tailSource{gen: data.NewGenerator(cfg, 7, data.DefaultOptions()), full: 3, tail: 2}
	loss, _, steps, err := ht.TrainFrom(src, 100)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("trained %d steps, want 3 full batches (tail skipped)", steps)
	}
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("degenerate mean loss %v", loss)
	}
}

// TestBreakdownBytes pins the per-step collective meters to the exact
// exchange volumes of a balanced shard: the pooled all-to-all moves
// 2·B·S·d·4·(n-1)/n bytes and the ring all-reduce 2·(n-1)·denseBytes.
func TestBreakdownBytes(t *testing.T) {
	cfg := testCfg()
	const ranks, batch = 4, 64
	ht, err := New(cfg, Config{Ranks: ranks, Seed: 1, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	_, bd, _ := ht.Step(gen.NextBatch(batch))

	d := cfg.EmbeddingDim
	s := cfg.NumSparse()
	wantA2A := int64(2 * batch * s * d * 4 * (ranks - 1) / ranks)
	if bd.AllToAllBytes != wantA2A {
		t.Errorf("all-to-all bytes %d, want %d", bd.AllToAllBytes, wantA2A)
	}
	wantAR := 2 * int64(ranks-1) * cfg.DenseParamBytes()
	if bd.AllReduceBytes != wantAR {
		t.Errorf("all-reduce bytes %d, want %d", bd.AllReduceBytes, wantAR)
	}
	if bd.Step <= 0 || bd.Compute < 0 || bd.Exposed < 0 {
		t.Errorf("degenerate breakdown: %+v", bd)
	}
	if bd.Exposed > bd.Step {
		t.Errorf("exposed comm %v exceeds step time %v", bd.Exposed, bd.Step)
	}
}

// TestUnevenBatchAndFewTables exercises a batch that does not divide by
// the rank count and more ranks than some tables' shards.
func TestUnevenBatchAndFewTables(t *testing.T) {
	cfg := testCfg()
	cfg.Sparse = core.UniformSparse(3, 500, 3) // fewer tables than ranks
	ht, err := New(cfg, Config{Ranks: 4, Seed: 2, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, 11, data.DefaultOptions())
	for i := 0; i < 5; i++ {
		loss, _, _ := ht.Step(gen.NextBatch(13))
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Fatalf("step %d: loss %v", i, loss)
		}
	}
	// Batch sizes may change between steps; arenas must follow.
	if loss, _, _ := ht.Step(gen.NextBatch(32)); math.IsNaN(loss) {
		t.Fatal("resized batch produced NaN")
	}
}

// TestEvalModelLearns trains for a while and checks the assembled eval
// view (rank-0 dense replica + sharded tables) beats the base rate.
func TestEvalModelLearns(t *testing.T) {
	cfg := testCfg()
	ht, err := New(cfg, Config{Ranks: 2, Seed: 1, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	var first, last float64
	const steps = 100
	for i := 0; i < steps; i++ {
		loss, _, _ := ht.Step(gen.NextBatch(64))
		if i < 10 {
			first += loss
		}
		if i >= steps-10 {
			last += loss
		}
	}
	if last >= first {
		t.Errorf("loss did not improve: %v -> %v", first/10, last/10)
	}
	res := core.Evaluate(ht.EvalModel(), gen.Fork(999).EvalSet(4, 128))
	if !(res.NE < 1.0) {
		t.Errorf("NE %v, want < 1 (better than base rate)", res.NE)
	}
}

// TestStepSteadyStateAllocs checks the per-rank arenas are reused: after
// warmup a fixed-size step performs (near) zero heap allocations. A small
// budget absorbs one-off runtime costs (goroutine stack growth, timer
// pages) that are not per-step arena churn.
func TestStepSteadyStateAllocs(t *testing.T) {
	cfg := testCfg()
	ht, err := New(cfg, Config{Ranks: 2, Seed: 1, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	batch := gen.NextBatch(64)
	for i := 0; i < 5; i++ {
		ht.Step(batch)
	}
	if avg := testing.AllocsPerRun(20, func() { ht.Step(batch) }); avg > 2 {
		t.Errorf("hybrid step allocates %.1f objects at steady state, want ~0", avg)
	}
}

// TestConfigErrors covers constructor validation.
func TestConfigErrors(t *testing.T) {
	if _, err := New(core.Config{}, Config{}); err == nil {
		t.Error("invalid model config accepted")
	}
	if _, err := New(testCfg(), Config{Ranks: -1}); err == nil {
		t.Error("negative rank count accepted")
	}
	if _, err := New(testCfg(), Config{Optimizer: "momentum"}); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

package hybrid

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
)

// replaySource recreates the deterministic batch stream (same seed and
// batch size) and fast-forwards past the first skip batches, which is
// exactly what a production loader does on resume: seek, not re-sample.
func replaySource(cfg core.Config, batch int) SourceFactory {
	return func(skip int) (core.BatchSource, func(), error) {
		gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
		for i := 0; i < skip; i++ {
			gen.NextBatch(batch)
		}
		return gen.NewSource(batch), func() {}, nil
	}
}

func runElastic(t *testing.T, cfg core.Config, ranks, steps, batch int, faults string) *ElasticResult {
	t.Helper()
	fs, err := collective.ParseFaultSchedule(faults)
	if err != nil {
		t.Fatal(err)
	}
	store, err := ckpt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunElastic(ElasticConfig{
		Cfg:       cfg,
		HC:        Config{Ranks: ranks, LR: 0.05, Optimizer: core.OptAdagrad},
		Store:     store,
		CkptEvery: 6,
		FullEvery: 2,
		Steps:     steps,
		Source:    replaySource(cfg, batch),
		Faults:    fs,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatalf("RunElastic(ranks=%d, faults=%q): %v", ranks, faults, err)
	}
	if res.Steps != steps {
		t.Fatalf("ran %d steps, want %d", res.Steps, steps)
	}
	if err := store.Verify(); err != nil {
		t.Fatalf("store verify after run: %v", err)
	}
	return res
}

// TestKillRestoreRejoinBitIdentical is the PR's acceptance criterion: a
// training run struck by a rank kill mid-step must — after rollback to
// the last durable checkpoint, world rebuild, and replay — produce a
// loss curve bit-identical to the uninterrupted run, for 1, 2, and 4
// ranks.
func TestKillRestoreRejoinBitIdentical(t *testing.T) {
	cfg := testCfg()
	const steps, batch = 24, 32
	for _, ranks := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("ranks%d", ranks), func(t *testing.T) {
			clean := runElastic(t, cfg, ranks, steps, batch, "")
			if clean.Recoveries != 0 {
				t.Fatalf("clean run recovered %d times", clean.Recoveries)
			}
			// Kill the highest rank three steps past the step-12 checkpoint.
			kill := fmt.Sprintf("kill:%d@15", ranks-1)
			faulted := runElastic(t, cfg, ranks, steps, batch, kill)
			if faulted.Recoveries != 1 {
				t.Fatalf("faulted run recovered %d times, want 1", faulted.Recoveries)
			}
			if faulted.BytesRestored == 0 {
				t.Fatal("recovery restored zero bytes")
			}
			for i := range clean.Losses {
				if clean.Losses[i] != faulted.Losses[i] {
					t.Fatalf("step %d: loss %v (clean) != %v (kill/restore/rejoin)",
						i, clean.Losses[i], faulted.Losses[i])
				}
			}
		})
	}
}

// TestElasticEarlyKill covers a fault striking before any checkpoint
// exists: recovery restarts from the seed and the curve still matches.
func TestElasticEarlyKill(t *testing.T) {
	cfg := testCfg()
	const steps, batch = 12, 32
	clean := runElastic(t, cfg, 2, steps, batch, "")
	faulted := runElastic(t, cfg, 2, steps, batch, "kill:1@3")
	if faulted.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", faulted.Recoveries)
	}
	if faulted.BytesRestored != 0 {
		t.Fatalf("pre-checkpoint recovery restored %d bytes, want 0 (cold restart)", faulted.BytesRestored)
	}
	for i := range clean.Losses {
		if clean.Losses[i] != faulted.Losses[i] {
			t.Fatalf("step %d: loss mismatch after cold-restart recovery", i)
		}
	}
}

// TestElasticMultipleFaults survives two separate kills, each rolling
// back to a different checkpoint.
func TestElasticMultipleFaults(t *testing.T) {
	cfg := testCfg()
	const steps, batch = 24, 32
	clean := runElastic(t, cfg, 2, steps, batch, "")
	faulted := runElastic(t, cfg, 2, steps, batch, "kill:0@8,kill:1@20")
	if faulted.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", faulted.Recoveries)
	}
	for i := range clean.Losses {
		if clean.Losses[i] != faulted.Losses[i] {
			t.Fatalf("step %d: loss mismatch after double fault", i)
		}
	}
}

// TestElasticRankRejoinElastic restores a 4-rank checkpoint into a
// 2-rank world: shards are keyed by table, not rank, so a resize
// re-shards deterministically and training proceeds from the same state.
func TestElasticRankRejoinElastic(t *testing.T) {
	cfg := testCfg()
	const batch = 32
	dir := t.TempDir()
	store, err := ckpt.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Train 8 steps on 4 ranks and checkpoint.
	ht4, err := New(cfg, Config{Ranks: 4, LR: 0.05, Optimizer: core.OptAdagrad})
	if err != nil {
		t.Fatal(err)
	}
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	for i := 0; i < 8; i++ {
		if _, _, err := ht4.Step(gen.NextBatch(batch)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ht4.SaveCheckpoint(store, 0); err != nil {
		t.Fatal(err)
	}
	ht4.Close()

	// Rejoin with 2 ranks from the same checkpoint.
	ht2, info, err := Restore(cfg, Config{Ranks: 2, LR: 0.05, Optimizer: core.OptAdagrad}, store, nil)
	if err != nil {
		t.Fatalf("restore into resized world: %v", err)
	}
	defer ht2.Close()
	if info.Step != 8 || ht2.Iter() != 8 {
		t.Fatalf("restored step = %d/%d, want 8", info.Step, ht2.Iter())
	}
	loss, _, err := ht2.Step(gen.NextBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || loss != loss {
		t.Fatalf("post-resize step loss = %v", loss)
	}
}

// TestSaveRefusedOnFailedTrainer pins the torn-state guard: after an
// abort the trainer must refuse to checkpoint.
func TestSaveRefusedOnFailedTrainer(t *testing.T) {
	cfg := testCfg()
	fs, err := collective.ParseFaultSchedule("fail:0@2")
	if err != nil {
		t.Fatal(err)
	}
	ht, err := New(cfg, Config{Ranks: 2, LR: 0.05, Optimizer: core.OptAdagrad})
	if err != nil {
		t.Fatal(err)
	}
	defer ht.Close()
	ht.SetFaults(fs)
	gen := data.NewGenerator(cfg, 7, data.DefaultOptions())
	var stepErr error
	for i := 0; i < 4 && stepErr == nil; i++ {
		_, _, stepErr = ht.Step(gen.NextBatch(32))
	}
	if stepErr == nil {
		t.Fatal("fault never fired")
	}
	re, ok := collective.AsRankError(stepErr)
	if !ok || re.Rank != 0 {
		t.Fatalf("step error = %v, want RankError on rank 0", stepErr)
	}
	store, err := ckpt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ht.SaveCheckpoint(store, 0); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("SaveCheckpoint on failed trainer = %v, want refusal", err)
	}
	if _, err := ht.RestoreCheckpoint(store); err == nil || !strings.Contains(err.Error(), "failed trainer") {
		t.Fatalf("RestoreCheckpoint on failed trainer = %v, want refusal", err)
	}
}

package tensor

import (
	"math"
	"testing"
)

// refF32ToFP16 is an independent reference built on float64 arithmetic
// (exact for every float32 input scaled by powers of two) and
// math.RoundToEven. NaN inputs are excluded; the payload policy is
// pinned separately in TestFP16NaN.
func refF32ToFP16(f float32) uint16 {
	var sign uint16
	d := float64(f)
	if math.Signbit(d) {
		sign = 0x8000
		d = -d
	}
	if d >= 65520 { // includes +Inf
		return sign | 0x7c00
	}
	if d < math.Ldexp(1, -14) {
		q := math.RoundToEven(math.Ldexp(d, 24))
		return sign | uint16(q)
	}
	fr, exp := math.Frexp(d)
	q := int(math.RoundToEven(fr * 2048))
	if q == 2048 {
		q = 1024
		exp++
	}
	return sign | uint16(exp-1+15)<<10 | uint16(q-1024)
}

// refF32ToBF16 mirrors refF32ToFP16 for the bfloat16 layout.
func refF32ToBF16(f float32) uint16 {
	var sign uint16
	d := float64(f)
	if math.Signbit(d) {
		sign = 0x8000
		d = -d
	}
	if math.IsInf(d, 0) {
		return sign | 0x7f80
	}
	if d < math.Ldexp(1, -126) {
		q := math.RoundToEven(math.Ldexp(d, 133))
		return sign | uint16(q)
	}
	fr, exp := math.Frexp(d)
	q := int(math.RoundToEven(fr * 256))
	if q == 256 {
		q = 128
		exp++
	}
	if exp-1 > 127 {
		return sign | 0x7f80
	}
	return sign | uint16(exp-1+127)<<7 | uint16(q-128)
}

// Every one of the 2^16 bf16 bit patterns — including every NaN
// payload — must survive bf16 -> fp32 -> bf16 bit-identically.
func TestBF16ExhaustiveRoundTrip(t *testing.T) {
	for u := 0; u <= 0xffff; u++ {
		got := F32ToBF16(BF16ToF32(uint16(u)))
		if got != uint16(u) {
			t.Fatalf("bf16 round trip: %#04x -> %v -> %#04x", u, BF16ToF32(uint16(u)), got)
		}
	}
}

func TestFP16ExhaustiveRoundTrip(t *testing.T) {
	for u := 0; u <= 0xffff; u++ {
		got := F32ToFP16(FP16ToF32(uint16(u)))
		if got != uint16(u) {
			t.Fatalf("fp16 round trip: %#04x -> %v -> %#04x", u, FP16ToF32(uint16(u)), got)
		}
	}
}

// FP16ToF32 must agree with the IEEE 754 binary16 value formula for all
// 2^16 patterns (subnormals, ±Inf, NaN class).
func TestFP16DecodeExhaustive(t *testing.T) {
	for u := 0; u <= 0xffff; u++ {
		e := (u >> 10) & 0x1f
		m := u & 0x3ff
		sign := 1.0
		if u&0x8000 != 0 {
			sign = -1
		}
		f := FP16ToF32(uint16(u))
		if e == 0x1f && m != 0 {
			if f == f {
				t.Fatalf("fp16 %#04x should decode to NaN, got %v", u, f)
			}
			continue
		}
		var want float64
		switch {
		case e == 0x1f:
			want = math.Inf(int(sign))
		case e == 0:
			want = sign * math.Ldexp(float64(m), -24)
		default:
			want = sign * (1 + float64(m)/1024) * math.Ldexp(1, e-15)
		}
		if float64(f) != want || (f == 0 && math.Signbit(float64(f)) != math.Signbit(want)) {
			t.Fatalf("fp16 decode %#04x = %v, want %v", u, f, want)
		}
	}
}

// Sweep every fp32 high half-word crossed with low-word patterns around
// the rounding boundaries; both narrowing kernels must match the
// float64 references exactly (math.Float32bits-level comparison).
func TestNarrowingMatchesReference(t *testing.T) {
	lows := []uint32{0x0000, 0x0001, 0x0fff, 0x1000, 0x1001, 0x2000, 0x7fff, 0x8000, 0xffff}
	for hi := 0; hi <= 0xffff; hi++ {
		for _, lo := range lows {
			b := uint32(hi)<<16 | lo
			f := math.Float32frombits(b)
			if f != f { // NaN payloads pinned in TestFP16NaN / round-trip tests
				continue
			}
			if got, want := F32ToFP16(f), refF32ToFP16(f); got != want {
				t.Fatalf("F32ToFP16(%#08x=%v) = %#04x, want %#04x", b, f, got, want)
			}
			if got, want := F32ToBF16(f), refF32ToBF16(f); got != want {
				t.Fatalf("F32ToBF16(%#08x=%v) = %#04x, want %#04x", b, f, got, want)
			}
		}
	}
}

func TestFP16NaN(t *testing.T) {
	cases := []uint32{
		0x7fc00000,             // canonical quiet NaN
		0x7f800001,             // signalling payload entirely in dropped bits
		0xffc12345, 0x7fffffff, // payload-carrying NaNs, both signs
	}
	for _, b := range cases {
		u := F32ToFP16(math.Float32frombits(b))
		if u&0x7c00 != 0x7c00 || u&0x3ff == 0 {
			t.Fatalf("F32ToFP16(%#08x) = %#04x, not a NaN", b, u)
		}
		if u&0x8000 != uint16(b>>16)&0x8000 {
			t.Fatalf("F32ToFP16(%#08x) = %#04x dropped the sign", b, u)
		}
		f := FP16ToF32(u)
		if f == f {
			t.Fatalf("FP16ToF32(%#04x) = %v, want NaN", u, f)
		}
	}
	// bf16 NaNs must stay NaNs too, even when the payload lives
	// entirely in the dropped low 16 bits.
	if u := F32ToBF16(math.Float32frombits(0x7f800001)); BF16ToF32(u) == BF16ToF32(u) {
		t.Fatalf("F32ToBF16(0x7f800001) = %#04x is not a NaN", u)
	}
}

func halfTestInputs(n int) []float32 {
	src := make([]float32, n)
	for i := range src {
		// mix magnitudes across the normal, subnormal and overflow ranges
		src[i] = float32(math.Ldexp(float64(i%97)/97-0.5, (i%40)-20))
	}
	src[0], src[1], src[2] = float32(math.Inf(1)), float32(math.Inf(-1)), 0
	return src
}

func TestSliceKernelsMatchScalar(t *testing.T) {
	src := halfTestInputs(1031) // odd length exercises the unroll tails
	enc := make([]uint16, len(src))
	dec := make([]float32, len(src))
	for _, dt := range []DType{BF16, FP16} {
		Encode(dt, enc, src)
		Decode(dt, dec, enc)
		for i, f := range src {
			var wantU uint16
			if dt == BF16 {
				wantU = F32ToBF16(f)
			} else {
				wantU = F32ToFP16(f)
			}
			if enc[i] != wantU {
				t.Fatalf("%v encode[%d] = %#04x, want %#04x", dt, i, enc[i], wantU)
			}
			var wantF float32
			if dt == BF16 {
				wantF = BF16ToF32(enc[i])
			} else {
				wantF = FP16ToF32(enc[i])
			}
			if math.Float32bits(dec[i]) != math.Float32bits(wantF) {
				t.Fatalf("%v decode[%d] = %v, want %v", dt, i, dec[i], wantF)
			}
		}
	}
}

func TestParallelConvMatchesSerial(t *testing.T) {
	src := halfTestInputs(3*convChunk + 517) // force the pooled path
	for _, dt := range []DType{BF16, FP16} {
		serial := make([]uint16, len(src))
		Encode(dt, serial, src)
		par := make([]uint16, len(src))
		ParallelEncode(dt, par, src)
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("%v ParallelEncode[%d] = %#04x, want %#04x", dt, i, par[i], serial[i])
			}
		}
		serialF := make([]float32, len(src))
		Decode(dt, serialF, serial)
		parF := make([]float32, len(src))
		ParallelDecode(dt, parF, par)
		for i := range serialF {
			if math.Float32bits(serialF[i]) != math.Float32bits(parF[i]) {
				t.Fatalf("%v ParallelDecode[%d] = %v, want %v", dt, i, parF[i], serialF[i])
			}
		}
	}
}

func TestFusedAddKernels(t *testing.T) {
	const dim = 33
	src0, src1 := halfTestInputs(dim), halfTestInputs(dim)
	for i := range src1 {
		src1[i] *= 0.5
	}
	for _, dt := range []DType{BF16, FP16} {
		e0, e1 := make([]uint16, dim), make([]uint16, dim)
		Encode(dt, e0, src0)
		Encode(dt, e1, src1)
		d0, d1 := make([]float32, dim), make([]float32, dim)
		Decode(dt, d0, e0)
		Decode(dt, d1, e1)

		got1, got2 := make([]float32, dim), make([]float32, dim)
		if dt == BF16 {
			AddBF16To(got1, e0)
			AddBF16To2(got2, e0, e1)
		} else {
			AddFP16To(got1, e0)
			AddFP16To2(got2, e0, e1)
		}
		for i := 0; i < dim; i++ {
			if math.Float32bits(got1[i]) != math.Float32bits(d0[i]) {
				t.Fatalf("%v AddTo[%d] = %v, want %v", dt, i, got1[i], d0[i])
			}
			if want := d0[i] + d1[i]; math.Float32bits(got2[i]) != math.Float32bits(want) {
				t.Fatalf("%v AddTo2[%d] = %v, want %v", dt, i, got2[i], want)
			}
		}
	}
}

// The serial conversion and fused-add kernels must be allocation-free:
// they run inside the zero-alloc training step budget.
func TestHalfKernelsAllocFree(t *testing.T) {
	src := halfTestInputs(256)
	enc := make([]uint16, len(src))
	dec := make([]float32, len(src))
	acc := make([]float32, len(src))
	for _, dt := range []DType{BF16, FP16} {
		dt := dt
		n := testing.AllocsPerRun(20, func() {
			Encode(dt, enc, src)
			Decode(dt, dec, enc)
			if dt == BF16 {
				AddBF16To(acc, enc)
				AddBF16To2(acc, enc, enc)
			} else {
				AddFP16To(acc, enc)
				AddFP16To2(acc, enc, enc)
			}
		})
		if n != 0 {
			t.Fatalf("%v kernels allocate %v/op, want 0", dt, n)
		}
	}
}

package tensor

import (
	"math"

	"repro/internal/xrand"
)

// Dot returns the inner product of a and b. Lengths must match; the
// shorter-slice bound is taken to keep the hot loop branch-free, so
// callers are expected to pass equal lengths.
//
// The loop runs four independent accumulator chains: a single-accumulator
// float32 dot is serialized on the ~4-cycle add latency, which caps it at
// a quarter of the core's multiply-add throughput.
func Dot(a, b []float32) float32 {
	if len(a) > len(b) {
		a = a[:len(b)]
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x element-wise, unrolled 4× to amortize loop
// and bounds-check overhead (iterations are independent, so no extra
// accumulators are needed).
func Axpy(alpha float32, x, y []float32) {
	if len(x) > len(y) {
		x = x[:len(y)]
	}
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// AddTo computes dst += src element-wise, unrolled like Axpy.
func AddTo(dst, src []float32) {
	if len(src) > len(dst) {
		src = src[:len(dst)]
	}
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < len(src); i++ {
		dst[i] += src[i]
	}
}

// ReLUGradInto masks the upstream gradient dy in place by the forward
// activation y: dy[i] is zeroed wherever y[i] <= 0. This is the fused
// backward kernel of a ReLU dense layer — one pass instead of a separate
// mask materialization. Lengths must match; the shorter bound is taken.
func ReLUGradInto(dy, y []float32) {
	if len(y) > len(dy) {
		y = y[:len(dy)]
	}
	for i, v := range y {
		if v <= 0 {
			dy[i] = 0
		}
	}
}

// AddTo2 computes dst += src0 + src1 in one pass, halving destination
// load/store traffic versus two AddTo calls (used by pooled embedding
// lookups).
func AddTo2(dst, src0, src1 []float32) {
	n := len(dst)
	if len(src0) < n {
		n = len(src0)
	}
	if len(src1) < n {
		n = len(src1)
	}
	dst, src0, src1 = dst[:n], src0[:n], src1[:n]
	i := 0
	for ; i+2 <= n; i += 2 {
		dst[i] += src0[i] + src1[i]
		dst[i+1] += src0[i+1] + src1[i+1]
	}
	if i < n {
		dst[i] += src0[i] + src1[i]
	}
}

// ScaleVec multiplies every element of x by a.
func ScaleVec(x []float32, a float32) {
	for i := range x {
		x[i] *= a
	}
}

// Sum returns the sum of all elements.
func Sum(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v
	}
	return s
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// MaxAbs returns the largest absolute element value of x (0 for empty x).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// XavierInit fills m with Xavier/Glorot-uniform values appropriate for a
// layer with the given fan-in and fan-out.
func XavierInit(m *Matrix, fanIn, fanOut int, rng *xrand.RNG) {
	bound := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float32() - 1) * bound
	}
}

// UniformInit fills m with uniform values in [-bound, bound].
func UniformInit(m *Matrix, bound float32, rng *xrand.RNG) {
	for i := range m.Data {
		m.Data[i] = (2*rng.Float32() - 1) * bound
	}
}

// NormalInit fills m with N(0, std²) values.
func NormalInit(m *Matrix, std float64, rng *xrand.RNG) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormMS(0, std))
	}
}

// Sigmoid returns 1/(1+exp(-x)) computed in float64 for stability.
func Sigmoid(x float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(x))))
}

package tensor

import (
	"math"

	"repro/internal/xrand"
)

// Dot returns the inner product of a and b. Lengths must match; the
// shorter-slice bound is taken to keep the hot loop branch-free, so
// callers are expected to pass equal lengths.
func Dot(a, b []float32) float32 {
	var s float32
	if len(a) > len(b) {
		a = a[:len(b)]
	}
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x element-wise.
func Axpy(alpha float32, x, y []float32) {
	if len(x) > len(y) {
		x = x[:len(y)]
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// AddTo computes dst += src element-wise.
func AddTo(dst, src []float32) {
	if len(src) > len(dst) {
		src = src[:len(dst)]
	}
	for i, v := range src {
		dst[i] += v
	}
}

// ScaleVec multiplies every element of x by a.
func ScaleVec(x []float32, a float32) {
	for i := range x {
		x[i] *= a
	}
}

// Sum returns the sum of all elements.
func Sum(x []float32) float32 {
	var s float32
	for _, v := range x {
		s += v
	}
	return s
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float32) float32 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// MaxAbs returns the largest absolute element value of x (0 for empty x).
func MaxAbs(x []float32) float32 {
	var m float32
	for _, v := range x {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// XavierInit fills m with Xavier/Glorot-uniform values appropriate for a
// layer with the given fan-in and fan-out.
func XavierInit(m *Matrix, fanIn, fanOut int, rng *xrand.RNG) {
	bound := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (2*rng.Float32() - 1) * bound
	}
}

// UniformInit fills m with uniform values in [-bound, bound].
func UniformInit(m *Matrix, bound float32, rng *xrand.RNG) {
	for i := range m.Data {
		m.Data[i] = (2*rng.Float32() - 1) * bound
	}
}

// NormalInit fills m with N(0, std²) values.
func NormalInit(m *Matrix, std float64, rng *xrand.RNG) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormMS(0, std))
	}
}

// Sigmoid returns 1/(1+exp(-x)) computed in float64 for stability.
func Sigmoid(x float32) float32 {
	return float32(1.0 / (1.0 + math.Exp(-float64(x))))
}

package tensor

import (
	"fmt"
	"math"
)

// DType identifies the storage precision of a block of float values.
// FP32 is the native compute format everywhere in the repo; BF16 and
// FP16 are storage/wire formats that are always converted back to
// float32 before any arithmetic (split-SGD keeps optimizer math fp32).
type DType uint8

const (
	FP32 DType = iota
	BF16
	FP16
)

// Bytes reports the storage bytes per element of the dtype.
func (d DType) Bytes() int {
	if d == FP32 {
		return 4
	}
	return 2
}

func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case BF16:
		return "bf16"
	case FP16:
		return "fp16"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// ParseDType parses "fp32"/"bf16"/"fp16" (the flag and config spelling).
func ParseDType(s string) (DType, error) {
	switch s {
	case "fp32", "float32", "":
		return FP32, nil
	case "bf16", "bfloat16":
		return BF16, nil
	case "fp16", "float16", "half":
		return FP16, nil
	}
	return FP32, fmt.Errorf("unknown dtype %q (want fp32, bf16 or fp16)", s)
}

// F32ToBF16 converts with round-to-nearest-even. NaN payloads survive a
// bf16→fp32→bf16 round trip bit-identically: the top 16 bits are kept,
// and a payload living entirely in the dropped bits is pinned to a
// quiet-ish NaN (low bit set) so it cannot collapse to Inf.
func F32ToBF16(f float32) uint16 {
	b := math.Float32bits(f)
	if b&0x7fffffff > 0x7f800000 { // NaN
		u := uint16(b >> 16)
		if u&0x7f == 0 {
			u |= 1
		}
		return u
	}
	b += 0x7fff + (b>>16)&1 // round to nearest, ties to even
	return uint16(b >> 16)
}

// BF16ToF32 widens a bfloat16 value. Exact (bf16 is a prefix of fp32).
func BF16ToF32(u uint16) float32 {
	return math.Float32frombits(uint32(u) << 16)
}

// F32ToFP16 converts to IEEE 754 binary16 with round-to-nearest-even,
// handling subnormals, overflow to ±Inf, and NaN payload preservation.
func F32ToFP16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	b &= 0x7fffffff
	switch {
	case b > 0x7f800000: // NaN: keep the top payload bits, stay a NaN
		m := uint16((b >> 13) & 0x3ff)
		if m == 0 {
			m = 0x200
		}
		return sign | 0x7c00 | m
	case b >= 0x477ff000: // >= 65520 rounds past the max finite half
		return sign | 0x7c00
	case b >= 0x38800000: // normal half range [2^-14, 65504]
		u := b - 0x38000000 // re-bias exponent 127 -> 15
		u += 0xfff + ((u >> 13) & 1)
		return sign | uint16(u>>13)
	case b >= 0x33000000: // subnormal half range [2^-25, 2^-14)
		e := int(b>>23) - 127
		s := (b & 0x7fffff) | 0x800000
		shift := uint(-e - 1) // in [14, 24]
		q := s >> shift
		rem := s & (1<<shift - 1)
		round := uint32(1) << (shift - 1)
		if rem > round || (rem == round && q&1 == 1) {
			q++
		}
		return sign | uint16(q)
	default: // underflows to signed zero
		return sign
	}
}

// FP16ToF32 widens an IEEE 754 binary16 value. Exact.
func FP16ToF32(u uint16) float32 {
	sign := uint32(u&0x8000) << 16
	e := uint32(u>>10) & 0x1f
	m := uint32(u & 0x3ff)
	switch {
	case e == 0x1f: // Inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | m<<13)
	case e != 0: // normal
		return math.Float32frombits(sign | (e+112)<<23 | m<<13)
	case m != 0: // subnormal: normalize into the fp32 exponent range
		e = 113
		for m&0x400 == 0 {
			m <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (m&0x3ff)<<13)
	default:
		return math.Float32frombits(sign)
	}
}

// EncodeBF16 narrows src into dst (len(dst) >= len(src)).
func EncodeBF16(dst []uint16, src []float32) {
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] = F32ToBF16(src[i])
		dst[i+1] = F32ToBF16(src[i+1])
		dst[i+2] = F32ToBF16(src[i+2])
		dst[i+3] = F32ToBF16(src[i+3])
	}
	for ; i < len(src); i++ {
		dst[i] = F32ToBF16(src[i])
	}
}

// DecodeBF16 widens src into dst (len(dst) >= len(src)).
func DecodeBF16(dst []float32, src []uint16) {
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] = BF16ToF32(src[i])
		dst[i+1] = BF16ToF32(src[i+1])
		dst[i+2] = BF16ToF32(src[i+2])
		dst[i+3] = BF16ToF32(src[i+3])
	}
	for ; i < len(src); i++ {
		dst[i] = BF16ToF32(src[i])
	}
}

// EncodeFP16 narrows src into dst (len(dst) >= len(src)).
func EncodeFP16(dst []uint16, src []float32) {
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] = F32ToFP16(src[i])
		dst[i+1] = F32ToFP16(src[i+1])
		dst[i+2] = F32ToFP16(src[i+2])
		dst[i+3] = F32ToFP16(src[i+3])
	}
	for ; i < len(src); i++ {
		dst[i] = F32ToFP16(src[i])
	}
}

// DecodeFP16 widens src into dst (len(dst) >= len(src)).
func DecodeFP16(dst []float32, src []uint16) {
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		dst[i] = FP16ToF32(src[i])
		dst[i+1] = FP16ToF32(src[i+1])
		dst[i+2] = FP16ToF32(src[i+2])
		dst[i+3] = FP16ToF32(src[i+3])
	}
	for ; i < len(src); i++ {
		dst[i] = FP16ToF32(src[i])
	}
}

// Encode narrows src into dst using dt. FP32 is invalid here (there is
// no uint16 representation); callers gate on dt before reaching this.
func Encode(dt DType, dst []uint16, src []float32) {
	switch dt {
	case BF16:
		EncodeBF16(dst, src)
	case FP16:
		EncodeFP16(dst, src)
	default:
		panic("tensor: Encode called with dtype " + dt.String())
	}
}

// Decode widens src into dst using dt.
func Decode(dt DType, dst []float32, src []uint16) {
	switch dt {
	case BF16:
		DecodeBF16(dst, src)
	case FP16:
		DecodeFP16(dst, src)
	default:
		panic("tensor: Decode called with dtype " + dt.String())
	}
}

// AddBF16To accumulates dst[i] += bf16(src[i]) — the pooled-lookup hot
// loop reading reduced-precision rows without a staging buffer.
func AddBF16To(dst []float32, src []uint16) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += BF16ToF32(src[i])
		dst[i+1] += BF16ToF32(src[i+1])
		dst[i+2] += BF16ToF32(src[i+2])
		dst[i+3] += BF16ToF32(src[i+3])
	}
	for ; i < n; i++ {
		dst[i] += BF16ToF32(src[i])
	}
}

// AddBF16To2 accumulates two bf16 rows into dst in one pass.
func AddBF16To2(dst []float32, s0, s1 []uint16) {
	n := len(dst)
	i := 0
	for ; i+2 <= n; i += 2 {
		dst[i] += BF16ToF32(s0[i]) + BF16ToF32(s1[i])
		dst[i+1] += BF16ToF32(s0[i+1]) + BF16ToF32(s1[i+1])
	}
	for ; i < n; i++ {
		dst[i] += BF16ToF32(s0[i]) + BF16ToF32(s1[i])
	}
}

// AddFP16To accumulates dst[i] += fp16(src[i]).
func AddFP16To(dst []float32, src []uint16) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += FP16ToF32(src[i])
		dst[i+1] += FP16ToF32(src[i+1])
		dst[i+2] += FP16ToF32(src[i+2])
		dst[i+3] += FP16ToF32(src[i+3])
	}
	for ; i < n; i++ {
		dst[i] += FP16ToF32(src[i])
	}
}

// AddFP16To2 accumulates two fp16 rows into dst in one pass.
func AddFP16To2(dst []float32, s0, s1 []uint16) {
	n := len(dst)
	i := 0
	for ; i+2 <= n; i += 2 {
		dst[i] += FP16ToF32(s0[i]) + FP16ToF32(s1[i])
		dst[i+1] += FP16ToF32(s0[i+1]) + FP16ToF32(s1[i+1])
	}
	for ; i < n; i++ {
		dst[i] += FP16ToF32(s0[i]) + FP16ToF32(s1[i])
	}
}

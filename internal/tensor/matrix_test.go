package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// naiveMatMul is the O(n³) reference used to validate the optimized kernels.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func randomMatrix(rng *xrand.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormMS(0, 1))
	}
	return m
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := xrand.New(1)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 3}, {16, 16, 16}, {33, 17, 9}, {64, 128, 32}}
	for _, s := range shapes {
		a := randomMatrix(rng, s[0], s[1])
		b := randomMatrix(rng, s[1], s[2])
		want := naiveMatMul(a, b)
		got := New(s[0], s[2])
		MatMul(got, a, b)
		if !got.Equal(want, 1e-4) {
			t.Errorf("MatMul mismatch for shape %v", s)
		}
	}
}

func TestMatMulParallelLarge(t *testing.T) {
	rng := xrand.New(2)
	// Large enough to cross parallelThreshold.
	a := randomMatrix(rng, 120, 90)
	b := randomMatrix(rng, 90, 70)
	want := naiveMatMul(a, b)
	got := New(120, 70)
	MatMul(got, a, b)
	if !got.Equal(want, 1e-3) {
		t.Error("parallel MatMul diverges from naive result")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := xrand.New(3)
	a := randomMatrix(rng, 12, 7)
	bT := randomMatrix(rng, 9, 7) // b = bTᵀ is 7x9
	b := New(7, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 7; j++ {
			b.Set(j, i, bT.At(i, j))
		}
	}
	want := naiveMatMul(a, b)
	got := New(12, 9)
	MatMulTransB(got, a, bT)
	if !got.Equal(want, 1e-4) {
		t.Error("MatMulTransB mismatch")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := xrand.New(4)
	aT := randomMatrix(rng, 11, 6) // a = aTᵀ is 6x11
	b := randomMatrix(rng, 11, 8)
	a := New(6, 11)
	for i := 0; i < 11; i++ {
		for j := 0; j < 6; j++ {
			a.Set(j, i, aT.At(i, j))
		}
	}
	want := naiveMatMul(a, b)
	got := New(6, 8)
	MatMulTransA(got, aT, b)
	if !got.Equal(want, 1e-4) {
		t.Error("MatMulTransA mismatch")
	}
}

func TestMatMulIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(20)
		a := randomMatrix(rng, n, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(i, i, 1)
		}
		got := New(n, n)
		MatMul(got, a, id)
		return got.Equal(a, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatMulDistributive(t *testing.T) {
	// a·(b+c) == a·b + a·c
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		c := randomMatrix(rng, k, n)
		bc := b.Clone()
		bc.Add(c)
		left := New(m, n)
		MatMul(left, a, bc)
		ab := New(m, n)
		ac := New(m, n)
		MatMul(ab, a, b)
		MatMul(ac, a, c)
		ab.Add(ac)
		return left.Equal(ab, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatMulPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

func TestFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromData(2, 3, make([]float32, 5))
}

func TestCloneIsDeep(t *testing.T) {
	a := New(2, 2)
	a.Fill(1)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromData(2, 2, []float32{1, 2, 3, 4})
	b := FromData(2, 2, []float32{4, 3, 2, 1})
	a.Add(b)
	want := FromData(2, 2, []float32{5, 5, 5, 5})
	if !a.Equal(want, 0) {
		t.Errorf("Add: got %v", a.Data)
	}
	a.Sub(b)
	if !a.Equal(FromData(2, 2, []float32{1, 2, 3, 4}), 0) {
		t.Errorf("Sub: got %v", a.Data)
	}
	a.Scale(2)
	if !a.Equal(FromData(2, 2, []float32{2, 4, 6, 8}), 0) {
		t.Errorf("Scale: got %v", a.Data)
	}
	a.AXPY(0.5, b)
	if !a.Equal(FromData(2, 2, []float32{4, 5.5, 7, 8.5}), 1e-6) {
		t.Errorf("AXPY: got %v", a.Data)
	}
}

func TestRowIsView(t *testing.T) {
	m := New(3, 4)
	r := m.Row(1)
	r[2] = 7
	if m.At(1, 2) != 7 {
		t.Error("Row should be a view into the matrix")
	}
}

func TestDotAxpy(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 5, 6}
	if d := Dot(a, b); d != 32 {
		t.Errorf("Dot = %v, want 32", d)
	}
	y := []float32{1, 1, 1}
	Axpy(2, a, y)
	want := []float32{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("Axpy[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestL2NormAndMaxAbs(t *testing.T) {
	x := []float32{3, -4}
	if n := L2Norm(x); math.Abs(float64(n)-5) > 1e-6 {
		t.Errorf("L2Norm = %v, want 5", n)
	}
	if m := MaxAbs(x); m != 4 {
		t.Errorf("MaxAbs = %v, want 4", m)
	}
	if m := MaxAbs(nil); m != 0 {
		t.Errorf("MaxAbs(nil) = %v, want 0", m)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := xrand.New(5)
	m := New(50, 50)
	XavierInit(m, 50, 50, rng)
	bound := float32(math.Sqrt(6.0 / 100.0))
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("Xavier value %v outside ±%v", v, bound)
		}
	}
	// Should not be all zeros.
	if MaxAbs(m.Data) == 0 {
		t.Error("Xavier init produced all zeros")
	}
}

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); math.Abs(float64(s)-0.5) > 1e-6 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Errorf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Errorf("Sigmoid(-100) = %v", s)
	}
}

func TestSumScaleVec(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	if s := Sum(x); s != 10 {
		t.Errorf("Sum = %v", s)
	}
	ScaleVec(x, 0.5)
	if x[3] != 2 {
		t.Errorf("ScaleVec: got %v", x)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := xrand.New(1)
	x := randomMatrix(rng, 128, 128)
	y := randomMatrix(rng, 128, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

func BenchmarkMatMulNaive128(b *testing.B) {
	rng := xrand.New(1)
	x := randomMatrix(rng, 128, 128)
	y := randomMatrix(rng, 128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naiveMatMul(x, y)
	}
}

package tensor

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/xrand"
)

// Naive O(mnk) reference kernels the tiled/parallel/fused production
// kernels are verified against. naiveMatMul lives in matrix_test.go.

func naiveMatMulTransB(a, b *Matrix) *Matrix {
	dst := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float32
			for p := 0; p < a.Cols; p++ {
				s += a.At(i, p) * b.At(j, p)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func naiveMatMulTransA(a, b *Matrix) *Matrix {
	dst := New(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for p := 0; p < a.Rows; p++ {
				s += a.At(p, i) * b.At(p, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func naiveBiasReLU(y *Matrix, bias []float32, relu bool) {
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += bias[j]
			if relu && row[j] < 0 {
				row[j] = 0
			}
		}
	}
}

func randShaped(rng *xrand.RNG, rows, cols int) *Matrix {
	return randomMatrix(rng, rows, cols)
}

// kernelShapes covers the edge geometry called out in the issue: 1×1,
// prime dims, rows smaller than the worker count, single rows/columns,
// and shapes big enough (work > parallelThreshold) to engage the pool.
var kernelShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 17, 1},
	{2, 3, 2},
	{3, 7, 5},
	{13, 1, 31},
	{31, 29, 37},
	{5, 64, 3},
	{2, 300, 300},  // rows < workers, parallel-sized work
	{64, 64, 64},   // parallel-sized
	{40, 257, 129}, // parallel-sized, tile-straddling odd dims
	{97, 256, 32},  // k == tileK boundary
	{33, 512, 65},  // multiple k panels, odd row tile remainder
}

func checkAllKernels(t *testing.T, label string) {
	t.Helper()
	rng := xrand.New(42)
	const eps = 1e-3
	for _, sh := range kernelShapes {
		name := fmt.Sprintf("%s/%dx%dx%d", label, sh.m, sh.k, sh.n)
		a := randShaped(rng, sh.m, sh.k)
		b := randShaped(rng, sh.k, sh.n)
		bT := randShaped(rng, sh.n, sh.k)
		bias := randShaped(rng, 1, sh.n).Data

		dst := New(sh.m, sh.n)
		MatMul(dst, a, b)
		if !dst.Equal(naiveMatMul(a, b), eps) {
			t.Errorf("%s: MatMul differs from naive reference", name)
		}

		for _, relu := range []bool{false, true} {
			MatMulBiasReLU(dst, a, b, bias, relu)
			want := naiveMatMul(a, b)
			naiveBiasReLU(want, bias, relu)
			if !dst.Equal(want, eps) {
				t.Errorf("%s: MatMulBiasReLU(relu=%v) differs from naive reference", name, relu)
			}
		}

		dstT := New(sh.m, sh.n)
		MatMulTransB(dstT, a, bT)
		if !dstT.Equal(naiveMatMulTransB(a, bT), eps) {
			t.Errorf("%s: MatMulTransB differs from naive reference", name)
		}

		// For aᵀ·b the shared dim is the row count: use a as k×m.
		at := randShaped(rng, sh.k, sh.m)
		dstA := New(sh.m, sh.n)
		MatMulTransA(dstA, at, b)
		want := naiveMatMulTransA(at, b)
		if !dstA.Equal(want, eps) {
			t.Errorf("%s: MatMulTransA differs from naive reference", name)
		}

		// Accumulating variant: dst0 + aᵀ·b.
		acc := randShaped(rng, sh.m, sh.n)
		wantAcc := acc.Clone()
		wantAcc.Add(want)
		MatMulTransAAcc(acc, at, b)
		if !acc.Equal(wantAcc, eps) {
			t.Errorf("%s: MatMulTransAAcc differs from naive reference", name)
		}
	}
}

func TestKernelsMatchNaive(t *testing.T) {
	checkAllKernels(t, "default")
}

// TestKernelsMatchNaiveSerial pins GOMAXPROCS=1 so every kernel takes the
// serial path regardless of host parallelism.
func TestKernelsMatchNaiveSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	checkAllKernels(t, "gomaxprocs1")
}

// TestKernelsMatchNaiveParallel raises GOMAXPROCS so the worker pool
// engages even on single-core CI runners.
func TestKernelsMatchNaiveParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	checkAllKernels(t, "gomaxprocs4")
}

// TestKernelsConcurrentCallers hammers the shared worker pool from many
// goroutines at once (the Hogwild pattern) and checks every result.
func TestKernelsConcurrentCallers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	rng := xrand.New(7)
	a := randShaped(rng, 48, 256)
	b := randShaped(rng, 256, 96)
	want := naiveMatMul(a, b)
	done := make(chan bool)
	const callers = 8
	for c := 0; c < callers; c++ {
		go func() {
			dst := New(48, 96)
			for i := 0; i < 20; i++ {
				MatMul(dst, a, b)
			}
			done <- dst.Equal(want, 1e-3)
		}()
	}
	for c := 0; c < callers; c++ {
		if !<-done {
			t.Fatal("concurrent MatMul produced a wrong result")
		}
	}
}

func TestReLUGradInto(t *testing.T) {
	y := []float32{-1, 0, 0.5, 2, -0.1}
	dy := []float32{1, 2, 3, 4, 5}
	ReLUGradInto(dy, y)
	want := []float32{0, 0, 3, 4, 0}
	for i := range want {
		if dy[i] != want[i] {
			t.Fatalf("dy = %v, want %v", dy, want)
		}
	}
}

// TestSerialKernelsAllocFree guards the zero-allocation property of the
// serial dispatch path that the Trainer.Step alloc budget depends on.
func TestSerialKernelsAllocFree(t *testing.T) {
	rng := xrand.New(3)
	a := randShaped(rng, 16, 32)
	b := randShaped(rng, 32, 8)
	bias := randShaped(rng, 1, 8).Data
	dst := New(16, 8)
	if avg := testing.AllocsPerRun(20, func() {
		MatMul(dst, a, b)
		MatMulBiasReLU(dst, a, b, bias, true)
	}); avg != 0 {
		t.Errorf("serial kernels allocate %.1f objects per call, want 0", avg)
	}
}

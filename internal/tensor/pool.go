package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker pool behind the parallel
// kernels. Design notes live in DESIGN.md; the short version:
//
//   - Workers are lazily started once and live for the process lifetime,
//     so the hot path never pays a goroutine spawn.
//   - A parallel invocation is described by a job carrying typed operands
//     (not a closure), so dispatching allocates nothing: closures passed
//     across goroutines escape to the heap, kernel kinds do not.
//   - Jobs are recycled through a sync.Pool, and workers plus the
//     submitting goroutine claim row chunks from a shared atomic cursor,
//     which load-balances skewed rows without per-chunk channel traffic.

// kernelKind enumerates the range kernels the pool can run.
type kernelKind uint8

const (
	kMatMul kernelKind = iota
	kMatMulBiasReLU
	kMatMulTransB
	kMatMulTransA
	kMatMulTransAAcc
	kEncodeHalf
	kDecodeHalf
)

// convChunk is the element-block granularity for pooled dtype
// conversions: jobs partition the flat element space into blocks of
// this size and the row cursor walks blocks instead of matrix rows.
const convChunk = 4096

// job is one parallel kernel invocation over the row space [0, rows).
type job struct {
	kind kernelKind
	dst  *Matrix
	a, b *Matrix
	bias []float32
	relu bool

	// dtype-conversion operands (kEncodeHalf / kDecodeHalf)
	hu []uint16
	hf []float32
	dt DType

	rows   int
	chunk  int
	cursor atomic.Int64
	done   sync.WaitGroup
}

// runRange executes the job's kernel over rows [r0, r1).
func (j *job) runRange(r0, r1 int) {
	switch j.kind {
	case kMatMul:
		matMulRange(j.dst, j.a, j.b, r0, r1)
	case kMatMulBiasReLU:
		matMulBiasReLURange(j.dst, j.a, j.b, j.bias, j.relu, r0, r1)
	case kMatMulTransB:
		matMulTransBRange(j.dst, j.a, j.b, r0, r1)
	case kMatMulTransA:
		matMulTransARange(j.dst, j.a, j.b, r0, r1)
	case kMatMulTransAAcc:
		matMulTransAAccRange(j.dst, j.a, j.b, r0, r1)
	case kEncodeHalf:
		lo, hi := convRange(r0, r1, len(j.hf))
		Encode(j.dt, j.hu[lo:hi], j.hf[lo:hi])
	case kDecodeHalf:
		lo, hi := convRange(r0, r1, len(j.hu))
		Decode(j.dt, j.hf[lo:hi], j.hu[lo:hi])
	}
}

// convRange maps a block range onto element bounds clamped to n.
func convRange(r0, r1, n int) (int, int) {
	lo, hi := r0*convChunk, r1*convChunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// drain claims chunks from the cursor until the row space is exhausted.
func (j *job) drain() {
	for {
		r0 := int(j.cursor.Add(int64(j.chunk))) - j.chunk
		if r0 >= j.rows {
			return
		}
		r1 := r0 + j.chunk
		if r1 > j.rows {
			r1 = j.rows
		}
		j.runRange(r0, r1)
	}
}

var (
	poolOnce    sync.Once
	poolCh      chan *job
	poolWorkers int
	jobPool     = sync.Pool{New: func() any { return new(job) }}
)

// startPool spawns the persistent helpers. The count is fixed at first
// use: GOMAXPROCS-1 helpers (the submitter is the remaining worker), with
// a floor of 2 so tests that raise GOMAXPROCS after init still exercise
// true cross-goroutine execution.
func startPool() {
	poolWorkers = runtime.GOMAXPROCS(0) - 1
	if poolWorkers < 2 {
		poolWorkers = 2
	}
	poolCh = make(chan *job)
	for i := 0; i < poolWorkers; i++ {
		go func() {
			for j := range poolCh {
				j.drain()
				j.done.Done()
			}
		}()
	}
}

// dispatch runs the kernel serially when the FLOP estimate is below
// parallelThreshold (or only one P is available) and through the worker
// pool otherwise. The serial path performs zero allocations; the parallel
// path recycles its job and so is allocation-free at steady state.
func dispatch(kind kernelKind, dst, a, b *Matrix, bias []float32, relu bool, rows, work int) {
	if rows == 0 {
		return
	}
	if work < parallelThreshold || rows < 2 || runtime.GOMAXPROCS(0) < 2 {
		j := job{kind: kind, dst: dst, a: a, b: b, bias: bias, relu: relu}
		j.runRange(0, rows)
		return
	}
	poolOnce.Do(startPool)
	j := jobPool.Get().(*job)
	j.kind, j.dst, j.a, j.b, j.bias, j.relu = kind, dst, a, b, bias, relu
	j.rows = rows
	// ~4 chunks per participant keeps the cursor cheap while still
	// smoothing uneven per-row cost.
	j.chunk = rows / (4 * (poolWorkers + 1))
	if j.chunk < 1 {
		j.chunk = 1
	}
	j.cursor.Store(0)
	// Hand the job to idle helpers only: if every helper is busy (e.g.
	// many Hogwild threads issuing matmuls at once) the submitter simply
	// does the work itself, which self-balances the pool.
fanout:
	for i := 0; i < poolWorkers; i++ {
		j.done.Add(1)
		select {
		case poolCh <- j:
		default:
			j.done.Done()
			break fanout
		}
	}
	j.drain()
	j.done.Wait()
	j.dst, j.a, j.b, j.bias = nil, nil, nil, nil
	j.hu, j.hf = nil, nil
	jobPool.Put(j)
}

// dispatchConv runs a bulk dtype conversion over n elements, serially
// below the work threshold and through the worker pool above it. The
// conversion kernels cost a handful of integer ops per element, so the
// work estimate is 4*n to share parallelThreshold's FLOP scale.
func dispatchConv(kind kernelKind, dt DType, u []uint16, f []float32, n int) {
	if n == 0 {
		return
	}
	blocks := (n + convChunk - 1) / convChunk
	if 4*n < parallelThreshold || blocks < 2 || runtime.GOMAXPROCS(0) < 2 {
		j := job{kind: kind, dt: dt, hu: u, hf: f}
		j.runRange(0, blocks)
		return
	}
	poolOnce.Do(startPool)
	j := jobPool.Get().(*job)
	j.kind, j.dt, j.hu, j.hf = kind, dt, u, f
	j.dst, j.a, j.b, j.bias, j.relu = nil, nil, nil, nil, false
	j.rows = blocks
	j.chunk = blocks / (4 * (poolWorkers + 1))
	if j.chunk < 1 {
		j.chunk = 1
	}
	j.cursor.Store(0)
fanout:
	for i := 0; i < poolWorkers; i++ {
		j.done.Add(1)
		select {
		case poolCh <- j:
		default:
			j.done.Done()
			break fanout
		}
	}
	j.drain()
	j.done.Wait()
	j.hu, j.hf = nil, nil
	jobPool.Put(j)
}

// ParallelEncode narrows src into dst[:len(src)] using dt, spreading
// element blocks across the worker pool for large slices (bulk table
// re-quantization); small slices run serially and allocation-free.
func ParallelEncode(dt DType, dst []uint16, src []float32) {
	dispatchConv(kEncodeHalf, dt, dst[:len(src)], src, len(src))
}

// ParallelDecode widens src into dst[:len(src)] using dt.
func ParallelDecode(dt DType, dst []float32, src []uint16) {
	dispatchConv(kDecodeHalf, dt, src, dst[:len(src)], len(src))
}

package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker pool behind the parallel
// kernels. Design notes live in DESIGN.md; the short version:
//
//   - Workers are lazily started once and live for the process lifetime,
//     so the hot path never pays a goroutine spawn.
//   - A parallel invocation is described by a job carrying typed operands
//     (not a closure), so dispatching allocates nothing: closures passed
//     across goroutines escape to the heap, kernel kinds do not.
//   - Jobs are recycled through a sync.Pool, and workers plus the
//     submitting goroutine claim row chunks from a shared atomic cursor,
//     which load-balances skewed rows without per-chunk channel traffic.

// kernelKind enumerates the range kernels the pool can run.
type kernelKind uint8

const (
	kMatMul kernelKind = iota
	kMatMulBiasReLU
	kMatMulTransB
	kMatMulTransA
	kMatMulTransAAcc
)

// job is one parallel kernel invocation over the row space [0, rows).
type job struct {
	kind kernelKind
	dst  *Matrix
	a, b *Matrix
	bias []float32
	relu bool

	rows   int
	chunk  int
	cursor atomic.Int64
	done   sync.WaitGroup
}

// runRange executes the job's kernel over rows [r0, r1).
func (j *job) runRange(r0, r1 int) {
	switch j.kind {
	case kMatMul:
		matMulRange(j.dst, j.a, j.b, r0, r1)
	case kMatMulBiasReLU:
		matMulBiasReLURange(j.dst, j.a, j.b, j.bias, j.relu, r0, r1)
	case kMatMulTransB:
		matMulTransBRange(j.dst, j.a, j.b, r0, r1)
	case kMatMulTransA:
		matMulTransARange(j.dst, j.a, j.b, r0, r1)
	case kMatMulTransAAcc:
		matMulTransAAccRange(j.dst, j.a, j.b, r0, r1)
	}
}

// drain claims chunks from the cursor until the row space is exhausted.
func (j *job) drain() {
	for {
		r0 := int(j.cursor.Add(int64(j.chunk))) - j.chunk
		if r0 >= j.rows {
			return
		}
		r1 := r0 + j.chunk
		if r1 > j.rows {
			r1 = j.rows
		}
		j.runRange(r0, r1)
	}
}

var (
	poolOnce    sync.Once
	poolCh      chan *job
	poolWorkers int
	jobPool     = sync.Pool{New: func() any { return new(job) }}
)

// startPool spawns the persistent helpers. The count is fixed at first
// use: GOMAXPROCS-1 helpers (the submitter is the remaining worker), with
// a floor of 2 so tests that raise GOMAXPROCS after init still exercise
// true cross-goroutine execution.
func startPool() {
	poolWorkers = runtime.GOMAXPROCS(0) - 1
	if poolWorkers < 2 {
		poolWorkers = 2
	}
	poolCh = make(chan *job)
	for i := 0; i < poolWorkers; i++ {
		go func() {
			for j := range poolCh {
				j.drain()
				j.done.Done()
			}
		}()
	}
}

// dispatch runs the kernel serially when the FLOP estimate is below
// parallelThreshold (or only one P is available) and through the worker
// pool otherwise. The serial path performs zero allocations; the parallel
// path recycles its job and so is allocation-free at steady state.
func dispatch(kind kernelKind, dst, a, b *Matrix, bias []float32, relu bool, rows, work int) {
	if rows == 0 {
		return
	}
	if work < parallelThreshold || rows < 2 || runtime.GOMAXPROCS(0) < 2 {
		j := job{kind: kind, dst: dst, a: a, b: b, bias: bias, relu: relu}
		j.runRange(0, rows)
		return
	}
	poolOnce.Do(startPool)
	j := jobPool.Get().(*job)
	j.kind, j.dst, j.a, j.b, j.bias, j.relu = kind, dst, a, b, bias, relu
	j.rows = rows
	// ~4 chunks per participant keeps the cursor cheap while still
	// smoothing uneven per-row cost.
	j.chunk = rows / (4 * (poolWorkers + 1))
	if j.chunk < 1 {
		j.chunk = 1
	}
	j.cursor.Store(0)
	// Hand the job to idle helpers only: if every helper is busy (e.g.
	// many Hogwild threads issuing matmuls at once) the submitter simply
	// does the work itself, which self-balances the pool.
fanout:
	for i := 0; i < poolWorkers; i++ {
		j.done.Add(1)
		select {
		case poolCh <- j:
		default:
			j.done.Done()
			break fanout
		}
	}
	j.drain()
	j.done.Wait()
	j.dst, j.a, j.b, j.bias = nil, nil, nil, nil
	jobPool.Put(j)
}

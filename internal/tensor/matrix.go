// Package tensor implements the dense float32 linear-algebra kernels that
// the DLRM training stack is built on: matrices, parallel blocked matrix
// multiplication (including transposed variants needed by backpropagation),
// and vector primitives.
//
// The package is deliberately small and allocation-conscious: every kernel
// writes into a caller-provided destination so the training loop can reuse
// buffers across iterations, which matters when Hogwild workers hammer the
// same model concurrently.
package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromData wraps an existing slice as a rows×cols matrix. The slice is not
// copied; len(data) must equal rows*cols.
func FromData(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing storage).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Add accumulates other into m element-wise. Shapes must match.
func (m *Matrix) Add(other *Matrix) {
	m.mustSameShape(other)
	AddTo(m.Data, other.Data)
}

// Sub subtracts other from m element-wise. Shapes must match.
func (m *Matrix) Sub(other *Matrix) {
	m.mustSameShape(other)
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float32) { ScaleVec(m.Data, a) }

// AXPY computes m += a*x element-wise. Shapes must match.
func (m *Matrix) AXPY(a float32, x *Matrix) {
	m.mustSameShape(x)
	Axpy(a, x.Data, m.Data)
}

// Equal reports whether two matrices have identical shape and elements
// within tolerance eps.
func (m *Matrix) Equal(other *Matrix, eps float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

func (m *Matrix) mustSameShape(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// parallelThreshold is the FLOP count above which matmuls fan out across
// goroutines. Below it the goroutine overhead exceeds the win.
const parallelThreshold = 1 << 17

// MatMul computes dst = a·b where a is m×k and b is k×n. dst must be m×n
// and must not alias a or b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dims (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Cols, func(r0, r1 int) {
		matMulRange(dst, a, b, r0, r1)
	})
}

// matMulRange computes rows [r0, r1) of dst = a·b using the cache-friendly
// i-k-j loop order with the inner loop vectorizable by the compiler.
func matMulRange(dst, a, b *Matrix, r0, r1 int) {
	n := b.Cols
	k := a.Cols
	for i := r0; i < r1; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			Axpy(av, brow, drow)
		}
	}
}

// MatMulTransB computes dst = a·bᵀ where a is m×k and b is n×k. dst must
// be m×n. This is the shape backprop needs for input gradients
// (dX = dY·Wᵀ) without materializing the transpose.
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB dims (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelRows(a.Rows, a.Rows*a.Cols*b.Rows, func(r0, r1 int) {
		k := a.Cols
		n := b.Rows
		for i := r0; i < r1; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := dst.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				drow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
			}
		}
	})
}

// MatMulTransA computes dst = aᵀ·b where a is k×m and b is k×n. dst must
// be m×n. This is the shape backprop needs for weight gradients
// (dW = Xᵀ·dY).
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA dims (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelRows(a.Cols, a.Rows*a.Cols*b.Cols, func(r0, r1 int) {
		m := a.Cols
		n := b.Cols
		for i := r0; i < r1; i++ {
			drow := dst.Data[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			for p := 0; p < a.Rows; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				Axpy(av, b.Data[p*n:(p+1)*n], drow)
			}
		}
	})
}

// parallelRows splits [0, rows) into contiguous chunks and runs fn on each,
// in parallel when work (a FLOP estimate) justifies it.
func parallelRows(rows, work int, fn func(r0, r1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if rows == 0 {
		return
	}
	if work < parallelThreshold || workers < 2 || rows < 2 {
		fn(0, rows)
		return
	}
	if workers > rows {
		workers = rows
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		r1 := r0 + chunk
		if r1 > rows {
			r1 = rows
		}
		if r0 >= r1 {
			break
		}
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			fn(r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// Package tensor implements the dense float32 linear-algebra kernels that
// the DLRM training stack is built on: matrices, cache-tiled parallel
// matrix multiplication (including transposed variants needed by
// backpropagation), fused bias/activation epilogues, and vector
// primitives. Parallel kernels run on a persistent worker pool (pool.go);
// design rationale is documented in DESIGN.md.
//
// The package is deliberately small and allocation-conscious: every kernel
// writes into a caller-provided destination so the training loop can reuse
// buffers across iterations, which matters when Hogwild workers hammer the
// same model concurrently.
package tensor

import (
	"fmt"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromData wraps an existing slice as a rows×cols matrix. The slice is not
// copied; len(data) must equal rows*cols.
func FromData(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared backing storage).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Add accumulates other into m element-wise. Shapes must match.
func (m *Matrix) Add(other *Matrix) {
	m.mustSameShape(other)
	AddTo(m.Data, other.Data)
}

// Sub subtracts other from m element-wise. Shapes must match.
func (m *Matrix) Sub(other *Matrix) {
	m.mustSameShape(other)
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float32) { ScaleVec(m.Data, a) }

// AXPY computes m += a*x element-wise. Shapes must match.
func (m *Matrix) AXPY(a float32, x *Matrix) {
	m.mustSameShape(x)
	Axpy(a, x.Data, m.Data)
}

// Equal reports whether two matrices have identical shape and elements
// within tolerance eps.
func (m *Matrix) Equal(other *Matrix, eps float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < 0 {
			d = -d
		}
		if d > eps {
			return false
		}
	}
	return true
}

func (m *Matrix) mustSameShape(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// parallelThreshold is the FLOP count above which matmuls fan out across
// the persistent worker pool (pool.go). Below it the hand-off overhead
// exceeds the win.
const parallelThreshold = 1 << 17

// Cache tile sizes (see DESIGN.md). A tileRows×n destination tile plus a
// tileK×n panel of the streamed operand stay resident in L2 while the
// panel is reused across the tile's rows.
const (
	tileRows = 32
	tileK    = 256
)

// MatMul computes dst = a·b where a is m×k and b is k×n. dst must be m×n
// and must not alias a or b.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dims (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dispatch(kMatMul, dst, a, b, nil, false, a.Rows, a.Rows*a.Cols*b.Cols)
}

// MatMulBiasReLU computes dst = a·b + bias (broadcast over rows), applying
// ReLU in place when relu is true — the fused forward kernel of one dense
// layer. bias must have len b.Cols; dst must be m×n and must not alias a
// or b. The epilogue runs on each destination tile while it is still
// cache-resident, replacing the matmul→bias→ReLU triple pass over memory.
func MatMulBiasReLU(dst, a, b *Matrix, bias []float32, relu bool) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBiasReLU dims (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if len(bias) != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBiasReLU bias len %d, want %d", len(bias), b.Cols))
	}
	dispatch(kMatMulBiasReLU, dst, a, b, bias, relu, a.Rows, a.Rows*a.Cols*b.Cols)
}

// Register-blocked micro-kernels. Go's compiler does not auto-vectorize,
// so the scalar loops are shaped for instruction-level parallelism
// instead: axpy2 folds two rank-1 row updates into one pass over the
// destination (halving its load/store traffic), and dot2 computes two
// inner products sharing the left operand's loads across four independent
// accumulator chains.

// axpy2 computes y += a0*x0 + a1*x1 in one pass.
func axpy2(a0 float32, x0 []float32, a1 float32, x1 []float32, y []float32) {
	n := min(len(y), min(len(x0), len(x1)))
	x0, x1, y = x0[:n], x1[:n], y[:n]
	i := 0
	for ; i+2 <= n; i += 2 {
		y[i] += a0*x0[i] + a1*x1[i]
		y[i+1] += a0*x0[i+1] + a1*x1[i+1]
	}
	if i < n {
		y[i] += a0*x0[i] + a1*x1[i]
	}
}

// axpy4 computes y += a0*x0 + a1*x1 + a2*x2 + a3*x3 in one pass: four
// rank-1 updates per destination load/store.
func axpy4(a0 float32, x0 []float32, a1 float32, x1 []float32,
	a2 float32, x2 []float32, a3 float32, x3 []float32, y []float32) {
	n := min(min(len(y), min(len(x0), len(x1))), min(len(x2), len(x3)))
	x0, x1, x2, x3, y = x0[:n], x1[:n], x2[:n], x3[:n], y[:n]
	i := 0
	for ; i+2 <= n; i += 2 {
		y[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
		y[i+1] += a0*x0[i+1] + a1*x1[i+1] + a2*x2[i+1] + a3*x3[i+1]
	}
	if i < n {
		y[i] += a0*x0[i] + a1*x1[i] + a2*x2[i] + a3*x3[i]
	}
}

// dot4 returns (a·b0, a·b1, a·b2, a·b3) computed in one pass over a:
// eight independent accumulator chains sharing each pair of a loads.
func dot4(a, b0, b1, b2, b3 []float32) (r0, r1, r2, r3 float32) {
	n := min(len(a), min(min(len(b0), len(b1)), min(len(b2), len(b3))))
	a, b0, b1, b2, b3 = a[:n], b0[:n], b1[:n], b2[:n], b3[:n]
	var s00, s01, s10, s11, s20, s21, s30, s31 float32
	i := 0
	for ; i+2 <= n; i += 2 {
		a0, a1 := a[i], a[i+1]
		s00 += a0 * b0[i]
		s01 += a1 * b0[i+1]
		s10 += a0 * b1[i]
		s11 += a1 * b1[i+1]
		s20 += a0 * b2[i]
		s21 += a1 * b2[i+1]
		s30 += a0 * b3[i]
		s31 += a1 * b3[i+1]
	}
	r0, r1, r2, r3 = s00+s01, s10+s11, s20+s21, s30+s31
	if i < n {
		r0 += a[i] * b0[i]
		r1 += a[i] * b1[i]
		r2 += a[i] * b2[i]
		r3 += a[i] * b3[i]
	}
	return
}

// dot2 returns (a·b0, a·b1) computed in one pass over a.
func dot2(a, b0, b1 []float32) (float32, float32) {
	n := min(len(a), min(len(b0), len(b1)))
	a, b0, b1 = a[:n], b0[:n], b1[:n]
	var s00, s01, s10, s11 float32
	i := 0
	for ; i+2 <= n; i += 2 {
		a0, a1 := a[i], a[i+1]
		s00 += a0 * b0[i]
		s01 += a1 * b0[i+1]
		s10 += a0 * b1[i]
		s11 += a1 * b1[i+1]
	}
	r0, r1 := s00+s01, s10+s11
	if i < n {
		r0 += a[i] * b0[i]
		r1 += a[i] * b1[i]
	}
	return r0, r1
}

// axpyPair accumulates drow += a0·x0 + a1·x1, skipping zero coefficients
// (common after ReLU).
func axpyPair(a0 float32, x0 []float32, a1 float32, x1 []float32, drow []float32) {
	switch {
	case a0 == 0 && a1 == 0:
	case a1 == 0:
		Axpy(a0, x0, drow)
	case a0 == 0:
		Axpy(a1, x1, drow)
	default:
		axpy2(a0, x0, a1, x1, drow)
	}
}

// axpyPanel accumulates drow += Σ_p arow[p]·b[row kk+p]. Dense
// coefficient quads go through axpy4 (one destination pass per four
// rank-1 updates); quads containing zeros — the post-ReLU case — fall
// back to pair updates that skip the zero work entirely.
func axpyPanel(arow []float32, b *Matrix, kk int, drow []float32) {
	n := b.Cols
	p := 0
	for ; p+4 <= len(arow); p += 4 {
		a0, a1, a2, a3 := arow[p], arow[p+1], arow[p+2], arow[p+3]
		bi := (kk + p) * n
		if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
			axpy4(a0, b.Data[bi:bi+n], a1, b.Data[bi+n:bi+2*n],
				a2, b.Data[bi+2*n:bi+3*n], a3, b.Data[bi+3*n:bi+4*n], drow)
			continue
		}
		axpyPair(a0, b.Data[bi:bi+n], a1, b.Data[bi+n:bi+2*n], drow)
		axpyPair(a2, b.Data[bi+2*n:bi+3*n], a3, b.Data[bi+3*n:bi+4*n], drow)
	}
	for ; p < len(arow); p++ {
		if av := arow[p]; av != 0 {
			bi := (kk + p) * n
			Axpy(av, b.Data[bi:bi+n], drow)
		}
	}
}

// matMulRange computes rows [r0, r1) of dst = a·b with the i-k-j loop
// order, k blocked in tileK panels reused across tileRows-row tiles.
func matMulRange(dst, a, b *Matrix, r0, r1 int) {
	matMulBiasReLURange(dst, a, b, nil, false, r0, r1)
}

func matMulBiasReLURange(dst, a, b *Matrix, bias []float32, relu bool, r0, r1 int) {
	n := b.Cols
	k := a.Cols
	for ii := r0; ii < r1; ii += tileRows {
		iEnd := min(ii+tileRows, r1)
		for i := ii; i < iEnd; i++ {
			drow := dst.Data[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
		}
		for kk := 0; kk < k; kk += tileK {
			kEnd := min(kk+tileK, k)
			for i := ii; i < iEnd; i++ {
				drow := dst.Data[i*n : (i+1)*n]
				arow := a.Data[i*k+kk : i*k+kEnd]
				axpyPanel(arow, b, kk, drow)
			}
		}
		if bias == nil {
			continue
		}
		// Fused epilogue over the still-hot tile.
		for i := ii; i < iEnd; i++ {
			drow := dst.Data[i*n : (i+1)*n]
			AddTo(drow, bias)
			if relu {
				for j, v := range drow {
					if v < 0 {
						drow[j] = 0
					}
				}
			}
		}
	}
}

// MatMulTransB computes dst = a·bᵀ where a is m×k and b is n×k. dst must
// be m×n. This is the shape backprop needs for input gradients
// (dX = dY·Wᵀ) without materializing the transpose.
func MatMulTransB(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB dims (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dispatch(kMatMulTransB, dst, a, b, nil, false, a.Rows, a.Rows*a.Cols*b.Rows)
}

// matMulTransBRange computes rows [r0, r1) of dst = a·bᵀ; b's rows are
// walked in tileRows panels reused across each tile of a's rows.
func matMulTransBRange(dst, a, b *Matrix, r0, r1 int) {
	k := a.Cols
	n := b.Rows
	for ii := r0; ii < r1; ii += tileRows {
		iEnd := min(ii+tileRows, r1)
		for jj := 0; jj < n; jj += tileRows {
			jEnd := min(jj+tileRows, n)
			for i := ii; i < iEnd; i++ {
				arow := a.Data[i*k : (i+1)*k]
				drow := dst.Data[i*n : (i+1)*n]
				j := jj
				for ; j+4 <= jEnd; j += 4 {
					drow[j], drow[j+1], drow[j+2], drow[j+3] = dot4(arow,
						b.Data[j*k:(j+1)*k], b.Data[(j+1)*k:(j+2)*k],
						b.Data[(j+2)*k:(j+3)*k], b.Data[(j+3)*k:(j+4)*k])
				}
				for ; j+2 <= jEnd; j += 2 {
					drow[j], drow[j+1] = dot2(arow, b.Data[j*k:(j+1)*k], b.Data[(j+1)*k:(j+2)*k])
				}
				if j < jEnd {
					drow[j] = Dot(arow, b.Data[j*k:(j+1)*k])
				}
			}
		}
	}
}

// MatMulTransA computes dst = aᵀ·b where a is k×m and b is k×n. dst must
// be m×n. This is the shape backprop needs for weight gradients
// (dW = Xᵀ·dY).
func MatMulTransA(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA dims (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dispatch(kMatMulTransA, dst, a, b, nil, false, a.Cols, a.Rows*a.Cols*b.Cols)
}

// MatMulTransAAcc computes dst += aᵀ·b — the accumulate-fused weight
// gradient kernel. Backprop adds dW = Xᵀ·dY into the running gradient
// directly, eliminating the scratch matrix and the extra add pass.
func MatMulTransAAcc(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransAAcc dims (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dispatch(kMatMulTransAAcc, dst, a, b, nil, false, a.Cols, a.Rows*a.Cols*b.Cols)
}

func matMulTransARange(dst, a, b *Matrix, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		drow := dst.Data[i*n : (i+1)*n]
		for j := range drow {
			drow[j] = 0
		}
	}
	matMulTransAAccRange(dst, a, b, r0, r1)
}

// matMulTransAAccRange accumulates rows [r0, r1) of dst += aᵀ·b (rows of
// dst index columns of a), blocking the shared row dimension of a/b in
// tileK panels so the streamed b panel is reused across the output range.
func matMulTransAAccRange(dst, a, b *Matrix, r0, r1 int) {
	m := a.Cols
	n := b.Cols
	for pp := 0; pp < a.Rows; pp += tileK {
		pEnd := min(pp+tileK, a.Rows)
		for i := r0; i < r1; i++ {
			drow := dst.Data[i*n : (i+1)*n]
			p := pp
			for ; p+4 <= pEnd; p += 4 {
				av0 := a.Data[p*m+i]
				av1 := a.Data[(p+1)*m+i]
				av2 := a.Data[(p+2)*m+i]
				av3 := a.Data[(p+3)*m+i]
				if av0 != 0 && av1 != 0 && av2 != 0 && av3 != 0 {
					axpy4(av0, b.Data[p*n:(p+1)*n], av1, b.Data[(p+1)*n:(p+2)*n],
						av2, b.Data[(p+2)*n:(p+3)*n], av3, b.Data[(p+3)*n:(p+4)*n], drow)
					continue
				}
				axpyPair(av0, b.Data[p*n:(p+1)*n], av1, b.Data[(p+1)*n:(p+2)*n], drow)
				axpyPair(av2, b.Data[(p+2)*n:(p+3)*n], av3, b.Data[(p+3)*n:(p+4)*n], drow)
			}
			for ; p < pEnd; p++ {
				if av := a.Data[p*m+i]; av != 0 {
					Axpy(av, b.Data[p*n:(p+1)*n], drow)
				}
			}
		}
	}
}

package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
)

// hybridScaling runs the real synchronous hybrid-parallel engine across a
// ranks × batch sweep and emits the paper-style operator breakdown
// (compute / all-to-all / all-reduce / exposed comm) per point, plus the
// observed-vs-analytic collective volumes and the rank-count invariance
// of the loss — the figure family the paper's scale-out analysis (and
// the Ardalani et al. scaling-law sweeps) is built on.
func hybridScaling(opt Options) (Result, error) {
	cfg := core.Config{
		Name:          "hybrid-scaling",
		DenseFeatures: 32,
		Sparse:        core.UniformSparse(8, 4000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   core.DotProduct,
	}
	iters := 12
	batches := []int{128, 256}
	if opt.Quick {
		iters = 6
		batches = []int{128}
	}
	link := collective.LinkFor(hw.BigBasin())

	rows := [][]string{{"ranks", "batch", "mean loss", "ex/s", "compute%", "a2a%", "allreduce%",
		"exposed%", "a2a B/iter", "vs analytic", "ar B/iter", "vs analytic"}}
	finalLoss := map[int]float64{}
	for _, ranks := range []int{1, 2, 4} {
		for _, batch := range batches {
			ht, err := hybrid.New(cfg, hybrid.Config{
				Ranks: ranks, Seed: opt.Seed + 1, LR: 0.05, Overlap: ranks > 1, Link: link,
			})
			if err != nil {
				return Result{}, err
			}
			gen := data.NewGenerator(cfg, opt.Seed+2, data.DefaultOptions())
			var lossSum, stepSec, comp, a2a, ar, exposed float64
			var a2aBytes, arBytes int64
			for i := 0; i < iters; i++ {
				loss, bd, _ := ht.Step(gen.NextBatch(batch))
				lossSum += loss
				stepSec += bd.Step
				comp += bd.Compute
				a2a += bd.AllToAll
				ar += bd.AllReduce
				exposed += bd.Exposed
				a2aBytes += bd.AllToAllBytes
				arBytes += bd.AllReduceBytes
			}
			ht.Close()
			if batch == batches[0] {
				finalLoss[ranks] = lossSum / float64(iters)
			}
			pct := func(v float64) string {
				if stepSec == 0 {
					return "-"
				}
				return fmt.Sprintf("%.0f%%", 100*v/stepSec)
			}
			ratio := func(obs int64, want float64) string {
				if want == 0 {
					return "-"
				}
				return metrics.F2(float64(obs) / float64(iters) / want)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", ranks),
				fmt.Sprintf("%d", batch),
				fmt.Sprintf("%.4f", lossSum/float64(iters)),
				metrics.F(float64(iters*batch) / stepSec),
				pct(comp), pct(a2a), pct(ar), pct(exposed),
				fmt.Sprintf("%d", a2aBytes/int64(iters)),
				ratio(a2aBytes, perfmodel.HybridAllToAllBytes(cfg, batch, ranks)),
				fmt.Sprintf("%d", arBytes/int64(iters)),
				ratio(arBytes, perfmodel.HybridAllReduceBytes(cfg, ranks)),
			})
		}
	}

	var b strings.Builder
	b.WriteString("Synchronous hybrid-parallel engine: ranks x batch sweep\n")
	fmt.Fprintf(&b, "(link model: %s; all-reduce overlapped with the sparse path for ranks > 1)\n\n", link.Name)
	b.WriteString(metrics.Table(rows))
	fmt.Fprintf(&b, "\nrank-count invariance (mean loss over first %d iters at batch %d):\n", iters, batches[0])
	for _, ranks := range []int{1, 2, 4} {
		fmt.Fprintf(&b, "  %d ranks: %.6f\n", ranks, finalLoss[ranks])
	}

	note := "Paper (SIV-B1, Fig 8): synchronous hybrid parallelism makes MLPs\n" +
		"data-parallel (all-reduce) and embeddings model-parallel (all-to-all);\n" +
		"at scale those two collectives dominate iteration time. Measured: the\n" +
		"engine's byte meters match the analytic volumes (columns 'vs analytic'\n" +
		"~= 1.00), the loss is rank-count-invariant, and the exposed-comm share\n" +
		"grows with ranks while overlap hides part of the all-reduce — the\n" +
		"operator-breakdown shape the paper reports. Scaling-law sweeps\n" +
		"(Ardalani et al.) can now run on real synchronous gradients."
	return Result{Output: b.String(), PaperNote: note}, nil
}

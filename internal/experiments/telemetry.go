package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/telemetry"
)

// telemetryAttribution runs the hybrid trainer from a real on-disk
// dataset at 1/2/4 ranks with full span tracing on, then joins the
// observed per-phase step decomposition against the analytic perfmodel
// prediction for the same config — the observed-vs-predicted attribution
// the paper's operator breakdowns (Fig 8) are read from. It doubles as
// the structural check on the tracer itself: gap-free span tiling must
// make the interior phases sum to the step wall time within 1%, and the
// same trace must export as loadable Chrome trace_event JSON.
func telemetryAttribution(opt Options) (Result, error) {
	cfg := core.Config{
		Name:          "telemetry-attribution",
		DenseFeatures: 32,
		Sparse:        core.UniformSparse(8, 4000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   core.DotProduct,
	}
	iters, batch, readers := 30, 128, 2
	rankCounts := []int{1, 2, 4}
	shards, perShard := 6, 1024
	if opt.Quick {
		iters, shards, perShard = 12, 4, 512
		rankCounts = []int{1, 2}
	}

	dir, err := os.MkdirTemp("", "telemetry_attr")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	gen := data.NewGenerator(cfg, opt.Seed+1, data.DefaultOptions())
	if err := gen.WriteShards(dir, shards, perShard); err != nil {
		return Result{}, err
	}
	ds, err := ingest.OpenDataset(dir)
	if err != nil {
		return Result{}, err
	}
	defer ds.Close()

	// Analytic prediction for this config at this batch on the GPU
	// platform the hybrid engine models its link after.
	platform := hw.BigBasin()
	plan, err := placement.Fit(cfg, platform, placement.GPUMemory, 0)
	if err != nil {
		return Result{}, err
	}
	bd, err := perfmodel.Estimate(perfmodel.Scenario{Cfg: cfg, Platform: platform, Batch: batch, Plan: plan})
	if err != nil {
		return Result{}, err
	}
	predicted := perfmodel.PredictedPhases(bd)

	var b strings.Builder
	b.WriteString("Telemetry attribution: observed span phases vs perfmodel prediction\n")
	fmt.Fprintf(&b, "(hybrid trainer fed from disk: %d examples in %d shards, %d readers, batch %d, %d iters/run;\n"+
		" predicted column: perfmodel on %s at the same batch — shape, not wall-clock, is the comparison)\n",
		ds.Examples(), shards, readers, batch, iters, platform.Name)

	worstCov, chromeOK := 1.0, true
	for _, ranks := range rankCounts {
		hc := hybrid.Config{
			Ranks: ranks, LR: 0.05, Seed: opt.Seed + 2, Overlap: ranks > 1,
			Link: collective.LinkFor(platform),
		}
		iOpt := ingest.Options{
			BatchSize: batch, Readers: readers, Epochs: 0, Seed: opt.Seed + 3, Dedup: true,
		}
		reg := telemetry.NewRegistry()
		tr := telemetry.NewTracer(hc.ShardCount()+iOpt.ShardCount(), 8192)
		hc.Registry, hc.Trace, hc.TraceShard = reg, tr, 0
		iOpt.Registry, iOpt.Trace, iOpt.TraceShard = reg, tr, hc.ShardCount()

		ht, err := hybrid.New(cfg, hc)
		if err != nil {
			return Result{}, err
		}
		// Warm the arenas outside the measured trace, on a pipeline of
		// their own: Tracer.Reset needs quiescent shards, and the ingest
		// stage goroutines keep recording spans between batches — the
		// warmup pipeline must be fully closed (Close waits for its
		// goroutines) before the rings are wiped for the measured run.
		warm, err := ingest.Open(ds, cfg, iOpt)
		if err != nil {
			ht.Close()
			return Result{}, err
		}
		_, _, _, err = ht.TrainFrom(warm, 3)
		warm.Close()
		if err != nil {
			ht.Close()
			return Result{}, err
		}
		tr.Reset()
		reg.Reset()
		p, err := ingest.Open(ds, cfg, iOpt)
		if err != nil {
			ht.Close()
			return Result{}, err
		}
		_, _, steps, err := ht.TrainFrom(p, iters)
		ht.Close()
		p.Close()
		if err != nil {
			return Result{}, err
		}

		snap := tr.Snapshot()
		attr := telemetry.Attribute(snap)
		if cov := attr.Coverage(); cov < worstCov {
			worstCov = cov
		}

		// The same snapshot must export as loadable Chrome trace JSON.
		var buf bytes.Buffer
		if err := telemetry.WriteChromeTrace(&buf, snap); err != nil {
			return Result{}, err
		}
		var chrome struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil || len(chrome.TraceEvents) == 0 {
			chromeOK = false
		}

		fmt.Fprintf(&b, "\n--- %d rank(s), %d steps ---\n", ranks, steps)
		b.WriteString(attr.Render(predicted))
		fmt.Fprintf(&b, "chrome trace: %d events, %s\n",
			len(chrome.TraceEvents), metrics.F(float64(buf.Len())/1024)+" KiB")
		snapReg := reg.Snapshot()
		fmt.Fprintf(&b, "registry: hybrid/steps=%d ingest/batches_out=%d collective a2a bytes=%d\n",
			snapReg.Get("hybrid/steps"), snapReg.Get("ingest/batches_out"),
			snapReg.Get("collective/alltoall/bytes"))
	}

	fmt.Fprintf(&b, "\nworst phase coverage across runs: %.2f%% (acceptance: within 1%% of 100%%)\n", worstCov*100)
	if math.Abs(1-worstCov) > 0.01 {
		b.WriteString("WARNING: phase spans do not tile the step wall within 1%\n")
	}
	if !chromeOK {
		b.WriteString("WARNING: Chrome trace export did not round-trip as JSON\n")
	}

	note := "Paper (§IV-B1, Fig 8): understanding DLRM training efficiency starts\n" +
		"from a per-iteration operator breakdown — compute vs embedding lookup\n" +
		"vs all-to-all vs all-reduce. Measured: the span tracer's gap-free\n" +
		"tiling accounts for >99% of every rank's step wall time at 1/2/4\n" +
		"ranks, the observed phase shares reproduce the analytic model's\n" +
		"shape (dense fwd:bwd near 1:2, communication share growing with\n" +
		"ranks), overlapped all-reduce and pipelined ingest stages appear as\n" +
		"background tracks off the critical path, and the identical trace\n" +
		"loads in chrome://tracing via the trace_event export."
	return Result{Output: b.String(), PaperNote: note}, nil
}

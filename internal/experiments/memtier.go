package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/memtier"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/trace"
	"repro/internal/workload"
)

// memtierSweep regenerates the MTrainS-style tiered-memory study on top
// of the paper's M3prod capacity wall: sweep the HBM hot-row cache
// capacity and report hit rate and modeled throughput per point, then
// validate the analytic hit-rate estimator against replayed eviction
// policies on a recorded synthetic trace.
func memtierSweep(opt Options) (Result, error) {
	m3 := workload.M3Prod()
	bb := hw.BigBasin()
	const batch = 800

	baseline, err := gpuThroughput(m3, bb, batch, placement.RemoteCPU, 8)
	if err != nil {
		return Result{}, err
	}

	rows := [][]string{{"cache frac", "cache rows", "est hit rate", "HBM lookup frac",
		"norm throughput", "bottleneck"}}
	for _, frac := range []float64{-1, 0.025, 0.05, 0.10, 0.20, 0.30} {
		plan, err := placement.FitTiered(m3, bb, placement.TieredOptions{
			Assign: memtier.AssignOptions{CacheFraction: frac},
		})
		if err != nil {
			return Result{}, err
		}
		bd, err := perfmodel.Estimate(perfmodel.Scenario{Cfg: m3, Platform: bb, Batch: batch, Plan: plan})
		if err != nil {
			return Result{}, err
		}
		label := fmt.Sprintf("%.1f%%", 100*frac)
		if frac < 0 {
			label = "off"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d", plan.Tiered.CacheRows),
			metrics.F2(plan.Tiered.CacheHitRate),
			metrics.F2(plan.HotFraction),
			metrics.F2(bd.Throughput / baseline.Throughput),
			bd.Bottleneck,
		})
	}

	var b strings.Builder
	b.WriteString("M3prod on Big Basin, capacity -> hit rate -> throughput\n")
	b.WriteString("(normalized to the paper's RemoteCPU placement = 1.00):\n\n")
	b.WriteString(metrics.Table(rows))

	// Eviction-policy validation on a recorded trace: replayed hit rates
	// per policy vs the analytic trace-driven estimate.
	cfg := core.Config{
		Name:          "memtier-trace",
		DenseFeatures: 32,
		Sparse:        core.UniformSparse(8, 50000, 6),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32},
		Interaction:   core.Concat,
	}
	batches := 40
	if opt.Quick {
		batches = 10
	}
	gen := data.NewGenerator(cfg, opt.Seed+17, data.DefaultOptions())
	col := trace.NewCollector(cfg)
	var stream []*core.MiniBatch
	for i := 0; i < batches; i++ {
		mb := gen.NextBatch(64)
		stream = append(stream, mb)
		col.RecordBatch(mb)
	}
	demand := memtier.DemandFromProfile(cfg.TableStats(), col.RowFrequencies(), 0)
	caps := []int{500, 2000, 8000, 32000}
	prows := [][]string{append([]string{"cache rows"}, append(memtier.PolicyNames(), "analytic")...)}
	for _, c := range caps {
		row := []string{fmt.Sprintf("%d", c)}
		for _, name := range memtier.PolicyNames() {
			p, err := memtier.NewPolicy(name, c)
			if err != nil {
				return Result{}, err
			}
			row = append(row, metrics.F2(memtier.Replay(p, stream)))
		}
		row = append(row, metrics.F2(memtier.EstimateHitRate(demand, c)))
		prows = append(prows, row)
	}
	b.WriteString("\nEviction policies on a recorded trace (hit rate by cache rows):\n\n")
	b.WriteString(metrics.Table(prows))

	note := "MTrainS (arXiv:2305.01515) stages DLRM embeddings across heterogeneous\n" +
		"memories; the paper's SIII-A2 skew is what makes a small HBM cache absorb\n" +
		"a large lookup share. Modeled: the tiered plan beats the remote-PS\n" +
		"baseline, and throughput rises with cache capacity until the resident\n" +
		"HBM share shrinks enough to offset further hit-rate gains. The analytic\n" +
		"estimator tracks the replayed frequency-aware policies (it upper-bounds\n" +
		"LRU/CLOCK, approaches LFU)."
	return Result{Output: b.String(), PaperNote: note}, nil
}

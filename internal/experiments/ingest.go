package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/xrand"
)

// ingestScaling sweeps readers-per-trainer over a real on-disk dataset to
// reproduce the reader-bound → trainer-bound crossover of the paper's
// disaggregated reader tier (§IV-B2): per-reader bandwidth is pinned to a
// fraction of what the trainer consumes, so one reader starves the
// trainer and adding readers recovers throughput until the trainer is
// the bottleneck again. The second half meters RecD-style within-batch
// dedup on Zipf-skewed vs all-unique traffic.
func ingestScaling(opt Options) (Result, error) {
	cfg := core.Config{
		Name:          "ingest-scaling",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(4, 2000, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   core.DotProduct,
	}
	iters, batch := 60, 64
	shards, perShard := 8, 512
	readerCounts := []int{1, 2, 4, 8}
	if opt.Quick {
		iters, shards, perShard = 25, 4, 256
		readerCounts = []int{1, 4}
	}

	dir, err := os.MkdirTemp("", "ingest_scaling")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	gen := data.NewGenerator(cfg, opt.Seed+1, data.DefaultOptions())
	if err := gen.WriteShards(dir, shards, perShard); err != nil {
		return Result{}, err
	}
	ds, err := ingest.OpenDataset(dir)
	if err != nil {
		return Result{}, err
	}
	defer ds.Close()

	// In-memory baseline: the same trainer fed by data.Generator, the
	// feed every real-training experiment used before this subsystem.
	trainFrom := func(src core.BatchSource, afterWarm func()) (float64, error) {
		m := core.NewModel(cfg, xrand.New(opt.Seed+2))
		tr := core.NewTrainer(m, core.TrainerConfig{LR: 0.05})
		if _, _, err := tr.TrainFrom(src, 5); err != nil { // warm arenas
			return 0, err
		}
		if afterWarm != nil {
			afterWarm()
		}
		t0 := time.Now()
		_, steps, err := tr.TrainFrom(src, iters)
		if err != nil {
			return 0, err
		}
		return float64(steps*batch) / time.Since(t0).Seconds(), nil
	}
	memSrc := data.NewGenerator(cfg, opt.Seed+3, data.DefaultOptions()).NewSource(batch)
	baseline, err := trainFrom(memSrc, nil)
	if err != nil {
		return Result{}, err
	}

	// Pin per-reader bandwidth to a third of the trainer's appetite: one
	// reader is bandwidth-bound by construction, four+ are not.
	bytesPerEx := float64(ds.Bytes()) / float64(ds.Examples())
	perBW := baseline * bytesPerEx / 3
	needed := perfmodel.IngestReadersNeeded(cfg, baseline, perBW)

	rows := [][]string{{"readers", "ex/s", "vs mem", "starved%", "ring occ", "read MB/s", "dedup", "regime"}}
	var firstStarved, lastRatio float64
	for _, readers := range readerCounts {
		p, err := ingest.Open(ds, cfg, ingest.Options{
			BatchSize: batch, Readers: readers, Epochs: 0, Seed: opt.Seed + 4,
			Dedup: true, ReadBandwidth: perBW, PrefetchDepth: 8,
		})
		if err != nil {
			return Result{}, err
		}
		exs, err := trainFrom(p, p.ResetMeters)
		p.Close()
		if err != nil {
			return Result{}, err
		}
		m := p.Meters()
		if readers == readerCounts[0] {
			firstStarved = m.StarvationFrac()
		}
		lastRatio = m.DedupRatio()
		// Reader-bound: the trainer both waits on the ring and falls
		// short of its in-memory rate. Starvation alone can be shard-
		// granularity jitter once aggregate bandwidth exceeds appetite.
		regime := "trainer-bound"
		if m.StarvationFrac() > 0.05 && exs < 0.9*baseline {
			regime = "reader-bound"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", readers),
			metrics.F(exs),
			metrics.F2(exs / baseline),
			fmt.Sprintf("%.0f%%", 100*m.StarvationFrac()),
			metrics.F2(m.Occupancy()),
			metrics.F2(m.ReadMBps()),
			metrics.F2(m.DedupRatio()),
			regime,
		})
	}

	// The same pipeline feeds the hybrid trainer (2 ranks, from disk).
	hp, err := ingest.Open(ds, cfg, ingest.Options{
		BatchSize: batch, Readers: 2, Epochs: 0, Seed: opt.Seed + 5, Dedup: true,
	})
	if err != nil {
		return Result{}, err
	}
	ht, err := hybrid.New(cfg, hybrid.Config{Ranks: 2, LR: 0.05, Seed: opt.Seed + 2})
	if err != nil {
		hp.Close()
		return Result{}, err
	}
	hLoss, _, hSteps, err := ht.TrainFrom(hp, iters/2)
	ht.Close()
	hp.Close()
	if err != nil {
		return Result{}, err
	}

	// Dedup-ratio contrast: the Zipf-skewed dataset above vs an
	// all-unique dataset (globally sequential ids), which must meter
	// exactly 1.0.
	uniqRatio, err := allUniqueDedupRatio(opt.Seed + 6)
	if err != nil {
		return Result{}, err
	}

	var b strings.Builder
	b.WriteString("Ingestion scaling: readers per trainer over a sharded on-disk dataset\n")
	fmt.Fprintf(&b, "(dataset %d examples in %d shards, %.0f B/example; per-reader bandwidth "+
		"pinned to %.2f MB/s = 1/3 of trainer appetite; analytic crossover at %d readers)\n\n",
		ds.Examples(), shards, bytesPerEx, perBW/(1<<20), needed)
	fmt.Fprintf(&b, "in-memory generator baseline: %s examples/sec\n\n", metrics.F(baseline))
	b.WriteString(metrics.Table(rows))
	fmt.Fprintf(&b, "\nhybrid trainer from disk: %d ranks, %d steps, mean loss %.4f\n", 2, hSteps, hLoss)
	fmt.Fprintf(&b, "dedup ratio: %.2f on Zipf-skewed traffic, %.2f on all-unique traffic\n",
		lastRatio, uniqRatio)
	if firstStarved <= 0 {
		fmt.Fprintf(&b, "WARNING: single throttled reader did not starve the trainer\n")
	}

	note := "Paper (§IV-B2): disaggregated readers decode and ship examples, and\n" +
		"ingestion bandwidth bounds training exactly like FLOPs or memory.\n" +
		"Measured: with per-reader bandwidth pinned below the trainer's\n" +
		"appetite, one reader leaves the trainer starved (starved% > 0,\n" +
		"reader-bound) and examples/sec climbs with the reader count until it\n" +
		"reaches the in-memory baseline (trainer-bound) — the crossover the\n" +
		"readers-per-trainer ratio is provisioned around. RecD-style dedup\n" +
		"(Zhao et al.) meters >1 on Zipf traffic and exactly 1.0 on all-unique\n" +
		"traffic, with bit-identical training either way."
	return Result{Output: b.String(), PaperNote: note}, nil
}

// allUniqueDedupRatio streams a dataset whose indices are globally
// sequential (no repeats anywhere) through a dedup pipeline and returns
// the metered ratio.
func allUniqueDedupRatio(seed int64) (float64, error) {
	const shards, perShard, batch = 2, 128, 32
	cfg := core.Config{
		Name:          "ingest-unique",
		DenseFeatures: 4,
		Sparse:        core.UniformSparse(2, shards*perShard*32, 3),
		EmbeddingDim:  8,
		BottomMLP:     []int{8},
		TopMLP:        []int{8},
		Interaction:   core.Concat,
	}
	dir, err := os.MkdirTemp("", "ingest_unique")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	w, err := ingest.NewShardWriter(dir, cfg)
	if err != nil {
		return 0, err
	}
	gen := data.NewGenerator(cfg, seed, data.DefaultOptions())
	next := int32(0)
	var mb *core.MiniBatch
	for s := 0; s < shards; s++ {
		mb = gen.NextBatchInto(perShard, mb)
		for f := range mb.Bags {
			for k := range mb.Bags[f].Indices {
				mb.Bags[f].Indices[k] = next
				next++
			}
		}
		if err := w.Append(mb); err != nil {
			return 0, err
		}
		if err := w.EndShard(); err != nil {
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	ds, err := ingest.OpenDataset(dir)
	if err != nil {
		return 0, err
	}
	defer ds.Close()
	p, err := ingest.Open(ds, cfg, ingest.Options{BatchSize: batch, Epochs: 1, Dedup: true})
	if err != nil {
		return 0, err
	}
	defer p.Close()
	for {
		mb, err := p.NextBatch()
		if err != nil {
			break // io.EOF ends the epoch
		}
		p.Recycle(mb)
	}
	return p.Meters().DedupRatio(), nil
}

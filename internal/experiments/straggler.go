package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// recordingSource passes batches through while recording their sparse
// row accesses into a trace collector, so the same run that measures
// rank balance also profiles hot-row skew.
type recordingSource struct {
	core.BatchSource
	col *trace.Collector
}

func (s recordingSource) NextBatch() (*core.MiniBatch, error) {
	mb, err := s.BatchSource.NextBatch()
	if mb != nil {
		s.col.RecordBatch(mb)
	}
	return mb, err
}

// stragglerAnalysis runs the hybrid trainer from disk at 1/2/4 ranks,
// each rank count once clean and once with rank 0 slowed by a per-step
// delay fault, and joins the per-rank rendezvous-wait meters with the
// span trace into the imbalance index the performance doctor keys on.
// A synchronous straggler is invisible in span durations — every rank's
// collectives stretch to the slowest arrival — so the detector reads
// the signal backwards: the straggler reaches every barrier last and
// waits the least, while its peers absorb the lateness as metered
// rendezvous wait. Acceptance: clean runs stay under the straggler
// threshold and keep their compute-bound verdict; faulted multi-rank
// runs cross it, attribute the slowdown to rank 0, and flip the doctor
// verdict to straggler-bound.
func stragglerAnalysis(opt Options) (Result, error) {
	cfg := core.Config{
		Name:          "straggler-analysis",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(8, 2000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   core.DotProduct,
	}
	iters, batch, readers := 24, 64, 2
	rankCounts := []int{1, 2, 4}
	shards, perShard := 4, 768
	delay := 2 * time.Millisecond
	if opt.Quick {
		iters, shards, perShard = 10, 3, 384
		rankCounts = []int{1, 2}
	}

	dir, err := os.MkdirTemp("", "straggler")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	gen := data.NewGenerator(cfg, opt.Seed+1, data.DefaultOptions())
	if err := gen.WriteShards(dir, shards, perShard); err != nil {
		return Result{}, err
	}
	ds, err := ingest.OpenDataset(dir)
	if err != nil {
		return Result{}, err
	}
	defer ds.Close()

	var b strings.Builder
	b.WriteString("Straggler detection: imbalance index from rendezvous-wait meters\n")
	fmt.Fprintf(&b, "(hybrid trainer fed from disk, batch %d, %d iters/run; faulted runs stall\n"+
		" rank 0 for %v at every step via the collective fault schedule)\n\n", batch, iters, delay)

	type outcome struct {
		ranks   int
		faulted bool
		imb     telemetry.ImbalanceReport
		verdict string
	}
	var outcomes []outcome
	var skews []telemetry.TableSkew

	platform := hw.BigBasin()
	for _, ranks := range rankCounts {
		for _, faulted := range []bool{false, true} {
			hc := hybrid.Config{
				Ranks: ranks, LR: 0.05, Seed: opt.Seed + 2, Overlap: ranks > 1,
				Link: collective.LinkFor(platform),
			}
			iOpt := ingest.Options{
				BatchSize: batch, Readers: readers, Epochs: 0, Seed: opt.Seed + 3,
			}
			reg := telemetry.NewRegistry()
			tr := telemetry.NewTracer(hc.ShardCount()+iOpt.ShardCount(), 8192)
			hc.Registry, hc.Trace, hc.TraceShard = reg, tr, 0
			iOpt.Registry, iOpt.Trace, iOpt.TraceShard = reg, tr, hc.ShardCount()

			ht, err := hybrid.New(cfg, hc)
			if err != nil {
				return Result{}, err
			}
			// Warm arenas on a throwaway pipeline, then wipe the rings and
			// meters so the measured window starts clean (Tracer.Reset
			// needs the warmup pipeline's goroutines fully stopped).
			warm, err := ingest.Open(ds, cfg, iOpt)
			if err != nil {
				ht.Close()
				return Result{}, err
			}
			_, _, _, err = ht.TrainFrom(warm, 3)
			warm.Close()
			if err != nil {
				ht.Close()
				return Result{}, err
			}
			tr.Reset()
			reg.Reset()

			if faulted {
				// One delay per measured step, armed after warmup so the
				// schedule's one-shot faults all land in the window.
				var faults []collective.Fault
				for s := ht.Iter(); s < ht.Iter()+iters; s++ {
					faults = append(faults, collective.Fault{
						Kind: collective.FaultDelay, Rank: 0, Step: s, Delay: delay,
					})
				}
				ht.SetFaults(collective.NewFaultSchedule(faults...))
			}

			col := trace.NewCollector(cfg)
			p, err := ingest.Open(ds, cfg, iOpt)
			if err != nil {
				ht.Close()
				return Result{}, err
			}
			_, _, _, err = ht.TrainFrom(recordingSource{p, col}, iters)
			ht.Close()
			p.Close()
			if err != nil {
				return Result{}, err
			}

			snap, ms := tr.Snapshot(), reg.Snapshot()
			if !faulted && ranks == rankCounts[len(rankCounts)-1] {
				// Skew is a property of the data, not the fault: profile it
				// once, on the largest clean run.
				for ti, counts := range col.RowFrequencies() {
					skews = append(skews, telemetry.SkewFromRowCounts(fmt.Sprintf("table%d", ti), counts))
				}
			}
			doc := telemetry.Diagnose(telemetry.DoctorInput{Snap: snap, Metrics: ms, Skew: skews})
			outcomes = append(outcomes, outcome{ranks: ranks, faulted: faulted, imb: doc.Imbalance, verdict: doc.Verdict})
		}
	}

	rows := [][]string{{"ranks", "run", "imbalance idx", "slowest rank", "slowest self s", "mean self s", "verdict"}}
	ok := true
	for _, o := range outcomes {
		kind := "clean"
		if o.faulted {
			kind = "rank 0 delayed"
		}
		var meanSelf, slowSelf float64
		for _, r := range o.imb.Ranks {
			meanSelf += r.SelfSec / float64(len(o.imb.Ranks))
			if r.Rank == o.imb.Slowest {
				slowSelf = r.SelfSec
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", o.ranks), kind, metrics.F2(o.imb.Index),
			fmt.Sprintf("%d", o.imb.Slowest), metrics.F(slowSelf), metrics.F(meanSelf), o.verdict,
		})
		if !o.faulted && o.imb.Straggling() {
			ok = false
			fmt.Fprintf(&b, "WARNING: clean %d-rank run flagged as straggling (index %.2f)\n", o.ranks, o.imb.Index)
		}
		if o.faulted && o.ranks > 1 {
			if o.verdict != telemetry.VerdictStraggler || o.imb.Slowest != 0 {
				ok = false
				fmt.Fprintf(&b, "WARNING: faulted %d-rank run not attributed to rank 0 (verdict %s, slowest %d)\n",
					o.ranks, o.verdict, o.imb.Slowest)
			}
		}
	}
	b.WriteString(metrics.Table(rows))

	// Render the most lopsided faulted run in full: the per-rank
	// wait/self decomposition is the point of the detector.
	var worst *outcome
	for i := range outcomes {
		if o := &outcomes[i]; o.faulted && (worst == nil || o.imb.Index > worst.imb.Index) {
			worst = o
		}
	}
	if worst != nil {
		fmt.Fprintf(&b, "\n--- %d ranks, rank 0 delayed %v/step ---\n%s", worst.ranks, delay, worst.imb.Render())
	}

	b.WriteString("\nhot-row skew (from the same run's sparse accesses):\n")
	srows := [][]string{{"table", "rows", "lookups", "top 1% share", "top 10% share", "max row"}}
	for _, sk := range skews {
		srows = append(srows, []string{
			sk.Table, fmt.Sprintf("%d", sk.Rows), fmt.Sprintf("%d", sk.Lookups),
			metrics.F2(sk.Top1Share), metrics.F2(sk.Top10Share), fmt.Sprintf("%d", sk.MaxRow),
		})
	}
	b.WriteString(metrics.Table(srows))

	if ok {
		fmt.Fprintf(&b, "\nacceptance: clean runs < %.2f threshold, every faulted multi-rank run straggler-bound with rank 0 slowest\n",
			telemetry.StragglerIndexThreshold)
	}
	note := "Paper (§IV-C, Fig 5): production training fleets lose throughput to\n" +
		"trainer imbalance — utilization spreads across hosts mean the\n" +
		"synchronous step runs at the slowest trainer's pace. Measured: an\n" +
		"injected per-step delay on one rank is invisible in span durations\n" +
		"(every rank's collectives stretch together) but the rendezvous-wait\n" +
		"meters recover it — the straggler waits least, its peers wait most,\n" +
		"and max/mean self time cleanly separates faulted runs (index well\n" +
		"above the 1.25 threshold, slowest rank correctly attributed) from\n" +
		"clean ones (~1.0), flipping the doctor verdict to straggler-bound."
	return Result{Output: b.String(), PaperNote: note}, nil
}

package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hw"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

// mixedPrecisionLossTol is the pinned quality budget: a reduced-precision
// variant's mean loss over the measured window must stay within this
// relative distance of the fp32 baseline at the same rank count. The
// paper's quality bar (SIV-C: "no measurable accuracy loss" for the
// manually tuned configs) maps here to a 3% tolerance on the early loss
// curve, far above observed bf16/fp16 deviation (<0.5%) but tight enough
// to catch a broken kernel, which shows up as tens of percent.
const mixedPrecisionLossTol = 0.03

// mixedPrecision sweeps embedding-table storage dtype x collective wire
// format across 1/2/4 ranks on the real synchronous engine and reports,
// per variant: quality drift vs the fp32 baseline, wire-byte compression
// vs fp32, and the observed-vs-analytic volume ratio using the dtype-
// aware formulas. This is the quantization counterpart of the paper's
// comm-dominated scale-out analysis: both collectives shrink by the wire
// width while the loss trajectory stays inside the pinned tolerance.
func mixedPrecision(opt Options) (Result, error) {
	cfg := core.Config{
		Name:          "mixed-precision",
		DenseFeatures: 32,
		Sparse:        core.UniformSparse(8, 4000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{64},
		TopMLP:        []int{64, 32},
		Interaction:   core.DotProduct,
	}
	iters, batch := 12, 128
	if opt.Quick {
		// 8, not fewer: the drift-vs-baseline check compares mean losses,
		// and below ~8 iters the mean is noisy enough that the marginal
		// int8-wire variant can cross the 3% tolerance on some seeds.
		iters = 8
	}
	link := collective.LinkFor(hw.BigBasin())

	type variant struct {
		name  string
		table tensor.DType
		wire  collective.WireFormat
	}
	variants := []variant{
		{"fp32/fp32", tensor.FP32, collective.WireFP32},
		{"bf16/fp32", tensor.BF16, collective.WireFP32},
		{"bf16/fp16", tensor.BF16, collective.WireFP16},
		{"bf16/int8", tensor.BF16, collective.WireINT8},
		{"fp16/fp16", tensor.FP16, collective.WireFP16},
	}

	rows := [][]string{{"ranks", "tables/wire", "mean loss", "vs fp32", "quality",
		"wire B/iter", "compress", "vs analytic"}}
	warnings := 0
	var minCompress = math.Inf(1)
	for _, ranks := range []int{1, 2, 4} {
		var baseLoss float64
		var baseBytes int64
		for _, v := range variants {
			vcfg := cfg
			vcfg.TableDType = v.table
			ht, err := hybrid.New(vcfg, hybrid.Config{
				Ranks: ranks, Seed: opt.Seed + 1, LR: 0.05, Overlap: ranks > 1, Link: link,
				WireA2A: v.wire, WireAllReduce: v.wire,
			})
			if err != nil {
				return Result{}, err
			}
			gen := data.NewGenerator(vcfg, opt.Seed+2, data.DefaultOptions())
			var lossSum float64
			var a2aBytes, arBytes int64
			for i := 0; i < iters; i++ {
				loss, bd, err := ht.Step(gen.NextBatch(batch))
				if err != nil {
					ht.Close()
					return Result{}, err
				}
				lossSum += loss
				a2aBytes += bd.AllToAllBytes
				arBytes += bd.AllReduceBytes
			}
			ht.Close()
			meanLoss := lossSum / float64(iters)
			wireBytes := a2aBytes + arBytes

			drift, quality := "-", "ok"
			if v.table == tensor.FP32 && v.wire == collective.WireFP32 {
				baseLoss, baseBytes = meanLoss, wireBytes
				quality = "baseline"
			} else {
				rel := math.Abs(meanLoss-baseLoss) / baseLoss
				drift = fmt.Sprintf("%+.3f%%", 100*(meanLoss-baseLoss)/baseLoss)
				if rel > mixedPrecisionLossTol {
					quality = "WARNING"
					warnings++
				}
			}

			compress, analytic := "-", "-"
			if ranks > 1 {
				bpe := v.wire.BytesPerElem()
				want := perfmodel.HybridAllToAllBytesWire(vcfg, batch, ranks, bpe) +
					perfmodel.HybridAllReduceBytesWire(vcfg, ranks, bpe)
				got := float64(wireBytes) / float64(iters)
				ratio := got / want
				analytic = metrics.F2(ratio)
				if math.Abs(ratio-1) > 0.02 {
					analytic += " WARNING"
					warnings++
				}
				c := float64(baseBytes) / float64(wireBytes)
				compress = fmt.Sprintf("%.2fx", c)
				if v.wire != collective.WireFP32 && c < minCompress {
					minCompress = c
				}
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", ranks), v.name,
				fmt.Sprintf("%.4f", meanLoss), drift, quality,
				fmt.Sprintf("%d", wireBytes/int64(iters)), compress, analytic,
			})
		}
	}

	var b strings.Builder
	b.WriteString("Mixed precision: table dtype x collective wire format (real engine)\n")
	fmt.Fprintf(&b, "(link model: %s; loss tolerance %.0f%% of fp32 baseline; bf16/fp16 tables\n",
		link.Name, 100*mixedPrecisionLossTol)
	b.WriteString("keep fp32 masters, split-SGD re-quantizes touched rows)\n\n")
	b.WriteString(metrics.Table(rows))
	fmt.Fprintf(&b, "\nembedding bytes: fp32 %d, bf16 %d (2.0x smaller lookup path)\n",
		cfg.EmbeddingBytes(), bf16Bytes(cfg))
	if warnings == 0 && minCompress >= 2 {
		fmt.Fprintf(&b, "acceptance: all variants within tolerance; compressed wires shrink traffic >=%.1fx\n",
			minCompress)
	} else {
		fmt.Fprintf(&b, "acceptance: WARNING (%d violations, min compression %.2fx)\n",
			warnings, minCompress)
	}

	note := "Paper (SIV-B1): at scale the all-to-all and all-reduce dominate the\n" +
		"hybrid-parallel step, so wire width converts directly into step time.\n" +
		"Measured: fp16/int8 wire formats cut collective bytes 2-3.8x with the\n" +
		"byte meters matching the dtype-aware analytic volumes within 2%, and\n" +
		"bf16/fp16 tables with fp32 masters (split-SGD) hold the loss curve\n" +
		"within the pinned tolerance of the fp32 baseline at every rank count\n" +
		"-- the standard production recipe for comm- and capacity-bound DLRMs."
	return Result{Output: b.String(), PaperNote: note}, nil
}

// bf16Bytes is cfg.EmbeddingBytes with every table forced to bf16.
func bf16Bytes(cfg core.Config) int64 {
	c := cfg
	c.TableDType = tensor.BF16
	sp := make([]core.SparseFeature, len(cfg.Sparse))
	copy(sp, cfg.Sparse)
	for i := range sp {
		sp[i].DType = tensor.FP32
	}
	c.Sparse = sp
	return c.EmbeddingBytes()
}

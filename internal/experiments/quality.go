package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/optim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// ---- Fig 2 ----

func fig2(Options) (Result, error) {
	rows := [][]string{{"workload", "family", "trains every", "duration", "share of cycles"}}
	for _, c := range workload.Fig2Catalog() {
		rows = append(rows, []string{
			c.Name, c.ModelFamily,
			fmtHours(c.FreqEveryHrs), fmtHours(c.DurationHrs),
			fmt.Sprintf("%.0f%%", 100*c.ShareOfCycles),
		})
	}
	note := "Paper: recommendation models (News Feed, Search) are the most\n" +
		"frequently trained workloads and consume >50% of all training cycles;\n" +
		"translation (RNN) and Facer (CNN) train far less often."
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

func fmtHours(h float64) string {
	switch {
	case h < 1:
		return fmt.Sprintf("%.0f min", h*60)
	case h < 48:
		return fmt.Sprintf("%.0f hours", h)
	case h < 24*14:
		return fmt.Sprintf("%.0f days", h/24)
	default:
		return fmt.Sprintf("%.1f months", h/(30*24))
	}
}

// ---- Fig 5 ----

func fig5(opt Options) (Result, error) {
	runs := 200
	if opt.Quick {
		runs = 25
	}
	study := fleet.DefaultUtilizationStudy(runs, opt.Seed+51)
	d, err := study.Run()
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d simulated runs of one ranking model at fixed scale (%d trainers, %d sparse PS)\n\n",
		runs, study.Trainers, study.SparsePS)
	b.WriteString(metrics.Table(d.Summaries()))
	b.WriteString("\nTrainer CPU distribution: ")
	b.WriteString(metrics.Sparkline(histCounts(d.TrainerCPU)))
	b.WriteString("\nParamSrv CPU distribution: ")
	b.WriteString(metrics.Sparkline(histCounts(d.PSCPU)))
	b.WriteString("\n")
	tr := metrics.Summarize(d.TrainerCPU)
	ps := metrics.Summarize(d.PSCPU)
	note := fmt.Sprintf("Paper: trainers run hot with small variation; parameter servers show a\n"+
		"lower mean and wider, longer-tailed distribution. Measured: trainer CPU\n"+
		"mean %.2f (cv %.2f) vs PS mean %.2f (cv %.2f).",
		tr.Mean, tr.Std/tr.Mean, ps.Mean, ps.Std/ps.Mean)
	return Result{Output: b.String(), PaperNote: note}, nil
}

func histCounts(xs []float64) []float64 {
	h := metrics.NewHistogram(0, 1, 20)
	for _, x := range xs {
		h.Add(x)
	}
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c)
	}
	return out
}

// ---- Fig 6 ----

func fig6(Options) (Result, error) {
	var b strings.Builder
	var notes []string
	for _, cfg := range workload.ProdModels() {
		var hashes, lens []float64
		for _, s := range cfg.Sparse {
			hashes = append(hashes, float64(s.HashSize))
			lens = append(lens, s.MeanPooled)
		}
		hs := metrics.Summarize(hashes)
		corr := pearson(hashes, lens)
		fmt.Fprintf(&b, "%s: %d tables, hash size min=%.3g p50=%.3g max=%.3g mean=%.3g\n",
			cfg.Name, len(hashes), hs.Min, hs.P50, hs.Max, hs.Mean)
		fmt.Fprintf(&b, "  hash-size vs feature-length correlation: %+.2f\n", corr)
		notes = append(notes, fmt.Sprintf("%s mean hash %.2gM (paper %.2gM)",
			cfg.Name, hs.Mean/1e6, map[string]float64{"M1prod": 5.7, "M2prod": 7.3, "M3prod": 3.7}[cfg.Name]))
	}
	note := "Paper Fig 6: hash sizes span 30 .. 20M with means 5.7M/7.3M/3.7M and\n" +
		"no strong correlation between table size and access frequency.\n" +
		"Measured: " + strings.Join(notes, "; ") + "."
	return Result{Output: b.String(), PaperNote: note}, nil
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}

// ---- Fig 7 ----

func fig7(Options) (Result, error) {
	var b strings.Builder
	for _, cfg := range workload.ProdModels() {
		var lens []float64
		for _, s := range cfg.Sparse {
			lens = append(lens, s.MeanPooled)
		}
		s := metrics.Summarize(lens)
		grid := metrics.Linspace(0, s.Max*1.1, 40)
		kde := metrics.KDE(lens, grid, 0)
		alpha, _ := metrics.FitPowerLaw(lens)
		fmt.Fprintf(&b, "%s mean feature lengths: mean=%.1f p50=%.1f max=%.1f power-law alpha=%.2f\n",
			cfg.Name, s.Mean, s.P50, s.Max, alpha)
		fmt.Fprintf(&b, "  KDE: %s\n", metrics.Sparkline(kde))
	}
	note := "Paper Fig 7: per-table mean lengths follow a power law — most tables\n" +
		"are short, a few are accessed very frequently; model means 28/17/49.\n" +
		"Measured densities above show the same right-skewed shape."
	return Result{Output: b.String(), PaperNote: note}, nil
}

// ---- Fig 9 ----

func fig9(opt Options) (Result, error) {
	runs := 3000
	if opt.Quick {
		runs = 500
	}
	th, ph, p95 := fleet.ServerCountStudy(runs, opt.Seed+91)
	labels := make([]string, len(th.Counts))
	for i := range labels {
		labels[i] = fmt.Sprintf("%2.0f-%2.0f", th.BinCenter(i)-2.5, th.BinCenter(i)+2.5)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Trainer-count histogram (%d workflows):\n", runs)
	b.WriteString(metrics.BarChart(labels, th.Fractions(), 40))
	fmt.Fprintf(&b, "\nParameter-server-count histogram:\n")
	b.WriteString(metrics.BarChart(labels, ph.Fractions(), 40))
	fmt.Fprintf(&b, "\np95 trainer count: %.0f\n", p95)
	note := "Paper Fig 9: >40% of workflows reuse the same trainer count while\n" +
		"parameter-server counts vary widely with memory needs. Measured: modal\n" +
		"trainer bin holds the plurality; PS histogram is much flatter."
	return Result{Output: b.String(), PaperNote: note}, nil
}

// ---- Fig 15: real training, accuracy vs batch size ----

// fig15Config is deliberately small so repeated full training runs are
// cheap; the effect under study (fixed sample budget, larger batch =>
// fewer updates => residual accuracy loss after linear LR scaling) is
// scale-free.
func fig15Config() core.Config {
	return core.Config{
		Name:          "fig15",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(4, 2000, 4),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32},
		Interaction:   core.DotProduct,
	}
}

func trainWithBatch(cfg core.Config, base *data.Generator, seed int64, batch int, lr float64, budget int) core.EvalResult {
	m := core.NewModel(cfg, xrand.New(seed))
	tr := core.NewTrainer(m, core.TrainerConfig{
		Optimizer:   core.OptSGD,
		LR:          lr,
		WarmupIters: 20,
	})
	gen := base.Fork(seed * 31)
	iters := budget / batch
	for i := 0; i < iters; i++ {
		tr.Step(gen.NextBatch(batch))
	}
	eval := base.Fork(777)
	return core.Evaluate(m, eval.EvalSet(12, 256))
}

func fig15(opt Options) (Result, error) {
	cfg := fig15Config()
	base := data.NewGenerator(cfg, 15+opt.Seed, data.DefaultOptions())
	budget := 160000
	batches := []int{400, 800, 1200, 1600, 2000, 2400}
	seeds := []int64{1, 2, 3}
	if opt.Quick {
		budget = 48000
		batches = []int{400, 1200, 2400}
		seeds = []int64{1, 2}
	}
	const refBatch, refLR = 200, 0.05

	// Reference: the small-batch CPU-style configuration.
	var refAcc float64
	for _, s := range seeds {
		refAcc += trainWithBatch(cfg, base, s, refBatch, refLR, budget).Accuracy
	}
	refAcc /= float64(len(seeds))

	rows := [][]string{{"batch", "scaled LR", "accuracy", "accuracy loss %"}}
	var losses []float64
	for _, b := range batches {
		lr := optim.LinearScaledLR(refLR, refBatch, b)
		var acc float64
		for _, s := range seeds {
			acc += trainWithBatch(cfg, base, s, b, lr, budget).Accuracy
		}
		acc /= float64(len(seeds))
		loss := (refAcc - acc) * 100
		losses = append(losses, loss)
		rows = append(rows, []string{
			fmt.Sprintf("%d", b), fmt.Sprintf("%.3f", lr),
			fmt.Sprintf("%.4f", acc), fmt.Sprintf("%.3f", loss),
		})
	}
	trend := "grows with batch size"
	if len(losses) >= 2 && losses[len(losses)-1] <= losses[0] {
		trend = "does NOT grow in this run (seed sensitivity)"
	}
	note := fmt.Sprintf("Paper Fig 15: even after manual (linear) LR re-tuning, the accuracy\n"+
		"gap versus the small-batch CPU run grows with batch size, reaching\n"+
		"~0.2%% at batch 2400 — intolerable for ads-ranking calibration.\n"+
		"Measured (real training, %d-example budget): the residual loss %s;\n"+
		"largest-batch loss %.3f%%.", budget, trend, losses[len(losses)-1])
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

// ---- §VI-C: AutoML re-tuning ----

func vic(opt Options) (Result, error) {
	cfg := fig15Config()
	base := data.NewGenerator(cfg, 61+opt.Seed, data.DefaultOptions())
	budget := 120000
	evals := 14
	if opt.Quick {
		budget = 40000
		evals = 8
	}
	const cpuBatch, cpuLR = 200, 0.05
	gpuBatch := 1600

	cpuNE := trainWithBatch(cfg, base, 5, cpuBatch, cpuLR, budget).NE
	manualNE := trainWithBatch(cfg, base, 5, gpuBatch,
		optim.LinearScaledLR(cpuLR, cpuBatch, gpuBatch), budget).NE

	space := autotune.Space{
		{Name: "lr", Lo: 0.01, Hi: 2.0, Log: true},
	}
	tuner, err := autotune.NewBayesian(space, opt.Seed+6)
	if err != nil {
		return Result{}, err
	}
	bestX, bestNE := autotune.Minimize(tuner, func(x []float64) float64 {
		ne := trainWithBatch(cfg, base, 5, gpuBatch, x[0], budget).NE
		return ne
	}, evals)

	rows := [][]string{
		{"setup", "batch", "LR", "NE"},
		{"CPU baseline (manual)", fmt.Sprintf("%d", cpuBatch), fmt.Sprintf("%.3f", cpuLR), fmt.Sprintf("%.4f", cpuNE)},
		{"GPU manual (linear scaling)", fmt.Sprintf("%d", gpuBatch), fmt.Sprintf("%.3f", optim.LinearScaledLR(cpuLR, cpuBatch, gpuBatch)), fmt.Sprintf("%.4f", manualNE)},
		{"GPU AutoML (Bayesian)", fmt.Sprintf("%d", gpuBatch), fmt.Sprintf("%.3f", bestX[0]), fmt.Sprintf("%.4f", bestNE)},
	}
	deltaPct := (bestNE - cpuNE) / cpuNE * 100
	note := fmt.Sprintf("Paper §VI-C: Bayesian re-tuning of the GPU setup from scratch recovered\n"+
		"model quality, beating the CPU baseline NE by 0.1-0.2%%. Measured: AutoML\n"+
		"NE vs CPU baseline: %+.2f%% (negative = better), vs manual GPU scaling:\n"+
		"%+.2f%%.", deltaPct, (bestNE-manualNE)/manualNE*100)
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

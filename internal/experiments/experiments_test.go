package experiments

import (
	"strings"
	"testing"
)

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 24 {
		t.Fatalf("%d experiments registered, want 24", len(ids))
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsRun executes every experiment in quick mode and
// verifies each yields non-empty output and a paper comparison.
func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if strings.TrimSpace(res.Output) == "" {
				t.Errorf("%s: empty output", id)
			}
			if strings.TrimSpace(res.PaperNote) == "" {
				t.Errorf("%s: missing paper note", id)
			}
			if res.ID != id || res.Title == "" {
				t.Errorf("%s: metadata %q %q", id, res.ID, res.Title)
			}
		})
	}
}

// TestIngestScalingShowsCrossover pins the ingest_scaling acceptance
// shape: a single bandwidth-throttled reader is reader-bound (starved
// trainer), and the dedup meter contrasts Zipf-skewed traffic (>1)
// against all-unique traffic (exactly 1.00).
func TestIngestScalingShowsCrossover(t *testing.T) {
	res, err := Run("ingest_scaling", Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reader-bound", "in-memory generator baseline",
		"hybrid trainer from disk", "1.00 on all-unique traffic"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("ingest_scaling output missing %q:\n%s", want, res.Output)
		}
	}
	if strings.Contains(res.Output, "WARNING") {
		t.Errorf("throttled single reader failed to starve the trainer:\n%s", res.Output)
	}
}

// TestTelemetryAttributionAcceptance pins the telemetry_attribution
// acceptance shape: the per-rank phase spans tile the step wall within
// 1% (no coverage WARNING) and the Chrome trace export round-trips.
func TestTelemetryAttributionAcceptance(t *testing.T) {
	res, err := Run("telemetry_attribution", Options{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"phase coverage=", "chrome trace:", "observed ms/step",
		"predicted ms/step", "background / overlapped", "registry: hybrid/steps="} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("telemetry_attribution output missing %q:\n%s", want, res.Output)
		}
	}
	if strings.Contains(res.Output, "WARNING") {
		t.Errorf("attribution acceptance failed:\n%s", res.Output)
	}
}

// TestElasticRecoveryAcceptance pins the elastic_recovery acceptance
// shape: every rank count recovers exactly once, restores verified
// bytes, and lands on a bit-identical curve (no DIVERGED verdict).
func TestElasticRecoveryAcceptance(t *testing.T) {
	res, err := Run("elastic_recovery", Options{Quick: true, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(res.Output, "bit-identical"); n < 3 {
		t.Errorf("want 3 bit-identical verdicts (1/2/4 ranks), got %d:\n%s", n, res.Output)
	}
	for _, bad := range []string{"DIVERGED", "WARNING"} {
		if strings.Contains(res.Output, bad) {
			t.Errorf("elastic_recovery output contains %q:\n%s", bad, res.Output)
		}
	}
}

// TestFlightRecorderAcceptance pins the flight_recorder acceptance
// shape: every injected incident (loss spike, NaN, rank-0 delay,
// kill/restore) is detected within ±1 step with a complete black-box
// bundle, and the fault run carries rebuild/restore marks.
func TestFlightRecorderAcceptance(t *testing.T) {
	res, err := Run("flight_recorder", Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loss_spike", "loss_nan", "rank_fault",
		"acceptance: every injected incident detected within ±1 step"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("flight_recorder output missing %q:\n%s", want, res.Output)
		}
	}
	if strings.Contains(res.Output, "WARNING") {
		t.Errorf("flight_recorder acceptance failed:\n%s", res.Output)
	}
}

func TestFig10ContainsRatioGrid(t *testing.T) {
	res, err := Run("fig10", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GPU/CPU throughput ratio", "power efficiency", "4096"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("fig10 output missing %q", want)
		}
	}
}

func TestTable3ContainsAllModels(t *testing.T) {
	res, err := Run("table3", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"M1prod", "M2prod", "M3prod"} {
		if !strings.Contains(res.Output, m) {
			t.Errorf("table3 missing %s", m)
		}
	}
}

func TestFig12MarksOOM(t *testing.T) {
	res, err := Run("fig12", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "OOM") {
		t.Error("fig12 should mark infeasible GPU placements as OOM")
	}
}

func TestMemtierSweepShape(t *testing.T) {
	res, err := Run("memtier", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache rows", "bottleneck", "lru", "lfu", "clock", "analytic"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("memtier output missing %q", want)
		}
	}
}

func TestFig14CoversBothPlatforms(t *testing.T) {
	res, err := Run("fig14", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "BigBasin") || !strings.Contains(res.Output, "Zion") {
		t.Error("fig14 must cover both platforms")
	}
}

// TestMixedPrecisionAcceptance pins the mixed_precision acceptance
// shape: every reduced-precision variant stays inside the pinned loss
// tolerance of the fp32 baseline at 1/2/4 ranks, the compressed wire
// formats shrink collective traffic at least 2x, and the byte meters
// match the dtype-aware analytic volumes within 2% (no WARNING rows).
func TestMixedPrecisionAcceptance(t *testing.T) {
	res, err := Run("mixed_precision", Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Output, "WARNING") {
		t.Errorf("mixed_precision reports violations:\n%s", res.Output)
	}
	for _, want := range []string{"bf16/int8", "fp16/fp16", "baseline",
		"acceptance: all variants within tolerance", "split-SGD"} {
		if !strings.Contains(res.Output, want) {
			t.Errorf("mixed_precision output missing %q:\n%s", want, res.Output)
		}
	}
}

package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hybrid"
	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/xrand"
)

// frOutcome is one injected-incident run of the flight-recorder
// experiment: what was injected where, and where the detector localized
// it.
type frOutcome struct {
	ranks    int
	scenario string
	injected int64
	detected int64 // -1 when no finding fired
	kind     telemetry.AnomalyKind
	bundle   bool
}

func (o frOutcome) localized() bool {
	if o.detected < 0 {
		return false
	}
	d := o.detected - o.injected
	return d >= -1 && d <= 1
}

// frDetected finds the finding of the wanted kind closest to the
// injected step (the detector may legitimately fire on neighbors of a
// multi-step incident).
func frDetected(fr *telemetry.FlightRecorder, kind telemetry.AnomalyKind, injected int64) int64 {
	best := int64(-1)
	for _, f := range fr.FindingsOf(kind) {
		if best < 0 || abs64(f.Step-injected) < abs64(best-injected) {
			best = f.Step
		}
	}
	return best
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// frBundleAt reports whether dir holds a complete blackbox bundle for a
// step within ±1 of the given one.
func frBundleAt(dir string, step int64) bool {
	for _, s := range []int64{step - 1, step, step + 1} {
		b := filepath.Join(dir, fmt.Sprintf("blackbox-%d", s))
		ok := true
		for _, name := range []string{"bundle.json", "timeseries.json", "metrics.json", "trace.json", "doctor.txt"} {
			if _, err := os.Stat(filepath.Join(b, name)); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// flightRecorder injects three incident classes — a synthetic loss
// spike (corrupted batch labels), a rank-0 delay fault, and a rank
// kill with checkpoint restore — at known steps across 1/2/4 ranks,
// with the flight recorder attached, and asserts each online detector
// fires, localizes the incident to within ±1 step, and leaves a
// complete blackbox-<step>/ bundle behind. The loss-spike run at one
// rank drives the single-process core.Trainer feed; everything else
// exercises the hybrid trainer (and, for kills, RunElastic with its
// fault/rebuild/restore marks).
func flightRecorder(opt Options) (Result, error) {
	cfg := core.Config{
		Name:          "flight-recorder",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(8, 2000, 5),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   core.DotProduct,
	}
	batch := 64
	iters, spikeAt, nanAt := 36, 24, 34
	delayIters, delayAt, delaySteps := 20, 12, 4
	elasticSteps, killAt, ckptEvery := 28, 18, 8
	rankCounts := []int{1, 2, 4}
	if opt.Quick {
		rankCounts = []int{1, 2}
	}

	root, err := os.MkdirTemp("", "flightrec")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(root)

	// Calibrate the injected delay against the measured per-step cost:
	// the dip detector needs the stall to exceed the baseline step and
	// the 2-rank straggler index needs it to exceed twice the per-rank
	// self time, so a hard-coded 2ms dies in slow environments (-race
	// runs the same math an order of magnitude slower). 6x the measured
	// single-process step keeps a 2x margin over the tightest bound.
	calGen := data.NewGenerator(cfg, opt.Seed+9, data.DefaultOptions())
	calT := core.NewTrainer(core.NewModel(cfg, xrand.New(opt.Seed+9)), core.TrainerConfig{LR: 0.05})
	const calSteps = 8
	calStart := telemetry.Now()
	for i := 0; i < calSteps; i++ {
		calT.Step(calGen.NextBatch(batch))
	}
	delay := 2 * time.Millisecond
	if d := time.Duration(6 * (telemetry.Now() - calStart) / calSteps); d > delay {
		delay = d
	}

	var outcomes []frOutcome
	var b strings.Builder
	b.WriteString("Flight recorder: online anomaly detection + black-box bundles\n")
	fmt.Fprintf(&b, "(batch %d; loss spike at step %d + NaN at %d, rank-0 delay %v at steps %d..%d,\n"+
		" kill/restore at step %d; every run dumps blackbox-<step>/ bundles)\n\n",
		batch, spikeAt, nanAt, delay, delayAt, delayAt+delaySteps-1, killAt)

	// stragOff disables the straggler detector for the runs that don't
	// inject a delay: per-step self times on sub-millisecond steps
	// jitter, and a noise finding would eat bundle quota.
	const stragOff = 1e9
	openRec := func(dir string, ranks int, tr *telemetry.Tracer, reg *telemetry.Registry, stragIdx float64) (*telemetry.FlightRecorder, error) {
		return telemetry.OpenFlightRecorder(telemetry.FlightRecorderConfig{
			Dir: dir, Tracer: tr, Registry: reg, Ranks: ranks,
			// Per-step self times on sub-millisecond steps jitter more
			// than a whole-run average, so the per-step threshold sits
			// above the run-level StragglerIndexThreshold; the injected
			// delay pushes the index well past both.
			StragglerIndex: stragIdx,
			// One finding per incident step: the localization assert
			// wants the hit at the injected step, not a suppressed
			// repeat of an earlier neighbor. The generous bundle cap
			// keeps scheduling-noise findings from starving the
			// injected incident's dump.
			DebounceSteps: 1,
			MaxBundles:    64,
		})
	}

	for _, ranks := range rankCounts {
		// --- (a) synthetic loss spike + NaN guard ---------------------
		dir := filepath.Join(root, fmt.Sprintf("spike-r%d", ranks))
		reg := telemetry.NewRegistry()
		var fr *telemetry.FlightRecorder
		gen := data.NewGenerator(cfg, opt.Seed+2, data.DefaultOptions())
		corrupt := func(step int, mb *core.MiniBatch) {
			if step == spikeAt {
				for i := range mb.Labels {
					mb.Labels[i] = 8 // far outside {0,1}: BCE jumps an order of magnitude
				}
			}
			if step == nanAt {
				mb.Labels[0] = float32(math.NaN())
			}
		}
		if ranks == 1 {
			tr := telemetry.NewTracer(1, 4096)
			if fr, err = openRec(dir, ranks, tr, reg, stragOff); err != nil {
				return Result{}, err
			}
			m := core.NewModel(cfg, xrand.New(opt.Seed+1))
			t := core.NewTrainer(m, core.TrainerConfig{LR: 0.05})
			t.SetTrace(tr, 0)
			t.SetRecorder(fr)
			for step := 0; step < iters; step++ {
				mb := gen.NextBatch(batch)
				corrupt(step, mb)
				t.Step(mb)
			}
		} else {
			hc := hybrid.Config{
				Ranks: ranks, LR: 0.05, Seed: opt.Seed + 1, Overlap: true,
				Registry: reg,
			}
			hc.Trace = telemetry.NewTracer(hc.ShardCount(), 4096)
			if fr, err = openRec(dir, ranks, hc.Trace, reg, stragOff); err != nil {
				return Result{}, err
			}
			hc.Recorder = fr
			ht, err := hybrid.New(cfg, hc)
			if err != nil {
				return Result{}, err
			}
			for step := 0; step < iters; step++ {
				mb := gen.NextBatch(batch)
				corrupt(step, mb)
				if _, _, err := ht.Step(mb); err != nil {
					ht.Close()
					return Result{}, err
				}
			}
			ht.Close()
		}
		outcomes = append(outcomes,
			frOutcome{ranks: ranks, scenario: "loss spike", injected: int64(spikeAt),
				detected: frDetected(fr, telemetry.AnomalyLossSpike, int64(spikeAt)),
				kind:     telemetry.AnomalyLossSpike, bundle: frBundleAt(dir, int64(spikeAt))},
			frOutcome{ranks: ranks, scenario: "NaN loss", injected: int64(nanAt),
				detected: frDetected(fr, telemetry.AnomalyLossNaN, int64(nanAt)),
				kind:     telemetry.AnomalyLossNaN, bundle: frBundleAt(dir, int64(nanAt))})

		// --- (b) rank-0 delay: straggler (multi-rank) or throughput dip
		dir = filepath.Join(root, fmt.Sprintf("delay-r%d", ranks))
		reg = telemetry.NewRegistry()
		hc := hybrid.Config{
			Ranks: ranks, LR: 0.05, Seed: opt.Seed + 1, Overlap: ranks > 1,
			Registry: reg,
		}
		hc.Trace = telemetry.NewTracer(hc.ShardCount(), 4096)
		if fr, err = openRec(dir, ranks, hc.Trace, reg, 1.5); err != nil {
			return Result{}, err
		}
		hc.Recorder = fr
		ht, err := hybrid.New(cfg, hc)
		if err != nil {
			return Result{}, err
		}
		var faults []collective.Fault
		for s := delayAt; s < delayAt+delaySteps; s++ {
			faults = append(faults, collective.Fault{
				Kind: collective.FaultDelay, Rank: 0, Step: s, Delay: delay,
			})
		}
		ht.SetFaults(collective.NewFaultSchedule(faults...))
		gen = data.NewGenerator(cfg, opt.Seed+3, data.DefaultOptions())
		for step := 0; step < delayIters; step++ {
			if _, _, err := ht.Step(gen.NextBatch(batch)); err != nil {
				ht.Close()
				return Result{}, err
			}
		}
		ht.Close()
		kind := telemetry.AnomalyStraggler
		if ranks == 1 {
			// A single rank has no peers to lag behind; the stall
			// surfaces as a throughput dip instead.
			kind = telemetry.AnomalyThroughputDip
		}
		outcomes = append(outcomes, frOutcome{
			ranks: ranks, scenario: "rank-0 delay", injected: int64(delayAt),
			detected: frDetected(fr, kind, int64(delayAt)),
			kind:     kind, bundle: frBundleAt(dir, int64(delayAt)),
		})

		// --- (c) kill + checkpoint restore via RunElastic -------------
		dir = filepath.Join(root, fmt.Sprintf("kill-r%d", ranks))
		ckptDir := filepath.Join(root, fmt.Sprintf("ck-r%d", ranks))
		store, err := ckpt.OpenStore(ckptDir)
		if err != nil {
			return Result{}, err
		}
		reg = telemetry.NewRegistry()
		ehc := hybrid.Config{Ranks: ranks, LR: 0.05, Seed: opt.Seed + 1, Overlap: ranks > 1, Registry: reg}
		ehc.Trace = telemetry.NewTracer(ehc.ShardCount(), 4096)
		if fr, err = openRec(dir, ranks, ehc.Trace, reg, stragOff); err != nil {
			return Result{}, err
		}
		fs, err := collective.ParseFaultSchedule(fmt.Sprintf("kill:%d@%d", ranks-1, killAt))
		if err != nil {
			return Result{}, err
		}
		if _, err := hybrid.RunElastic(hybrid.ElasticConfig{
			Cfg: cfg, HC: ehc, Store: store,
			CkptEvery: ckptEvery, FullEvery: 2, Steps: elasticSteps,
			Source: func(skip int) (core.BatchSource, func(), error) {
				g := data.NewGenerator(cfg, opt.Seed+4, data.DefaultOptions())
				for i := 0; i < skip; i++ {
					g.NextBatch(batch)
				}
				return g.NewSource(batch), func() {}, nil
			},
			Faults:   fs,
			Recorder: fr,
		}); err != nil {
			return Result{}, err
		}
		marks := map[string]bool{}
		for _, m := range fr.Timeseries().Marks() {
			marks[m.Kind] = true
		}
		o := frOutcome{
			ranks: ranks, scenario: "kill/restore", injected: int64(killAt),
			detected: frDetected(fr, telemetry.AnomalyRankFault, int64(killAt)),
			kind:     telemetry.AnomalyRankFault, bundle: frBundleAt(dir, int64(killAt)),
		}
		outcomes = append(outcomes, o)
		if !marks["rebuild"] || !marks["restore"] {
			fmt.Fprintf(&b, "WARNING: %d-rank kill run missing rebuild/restore marks (got %v)\n", ranks, marks)
		}
	}

	ok := true
	rows := [][]string{{"ranks", "incident", "detector", "injected", "detected", "delta", "bundle", "localized"}}
	for _, o := range outcomes {
		det, delta := "-", "-"
		if o.detected >= 0 {
			det = fmt.Sprintf("%d", o.detected)
			delta = fmt.Sprintf("%+d", o.detected-o.injected)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", o.ranks), o.scenario, o.kind.String(),
			fmt.Sprintf("%d", o.injected), det, delta,
			fmt.Sprintf("%v", o.bundle), fmt.Sprintf("%v", o.localized() && o.bundle),
		})
		if !o.localized() || !o.bundle {
			ok = false
			fmt.Fprintf(&b, "WARNING: %d-rank %s not localized (injected %d, detected %d, bundle %v)\n",
				o.ranks, o.scenario, o.injected, o.detected, o.bundle)
		}
	}
	b.WriteString(metrics.Table(rows))
	if ok {
		b.WriteString("\nacceptance: every injected incident detected within ±1 step with a complete blackbox-<step>/ bundle\n")
	}

	note := "Paper (§IV): production training efficiency work depends on catching\n" +
		"stragglers, input starvation and quality regressions while the run is\n" +
		"live, not in a post-mortem. Measured: a per-step time-series ring plus\n" +
		"EWMA/threshold detectors localize an injected corrupt-batch loss spike,\n" +
		"a NaN divergence, an injected rank-0 delay (straggler index per step, the\n" +
		"imbalance.go definition) and a mid-run rank kill to within ±1 step at\n" +
		"1/2/4 ranks, and each trigger atomically dumps a black-box bundle\n" +
		"(trace window, metrics snapshot, series tail, doctor verdict) for\n" +
		"offline forensics."
	return Result{Output: b.String(), PaperNote: note}, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a named runner returning rendered text
// plus a paper-vs-measured note; cmd/dlrmbench exposes them on the
// command line and bench_test.go as benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/workload"
)

// Options tune experiment execution.
type Options struct {
	// Quick shrinks the real-training and fleet experiments for CI.
	Quick bool
	Seed  int64
}

// Result is one regenerated artifact.
type Result struct {
	ID     string
	Title  string
	Output string
	// PaperNote records the paper-vs-measured comparison.
	PaperNote string
}

// Runner produces a Result.
type Runner func(Options) (Result, error)

var registry = map[string]struct {
	title string
	run   Runner
}{
	"fig1":                  {"Fig 1: production model throughput across platforms", fig1},
	"fig2":                  {"Fig 2: training frequency and duration by workload", fig2},
	"fig5":                  {"Fig 5: utilization distributions, trainers vs parameter servers", fig5},
	"fig6":                  {"Fig 6: hash size vs mean feature length per table", fig6},
	"fig7":                  {"Fig 7: mean sparse feature length distributions", fig7},
	"fig9":                  {"Fig 9: histogram of trainer / parameter server counts", fig9},
	"fig10":                 {"Fig 10: sparse x dense sweep on CPU and GPU", fig10},
	"fig11":                 {"Fig 11: batch size scaling on CPU and GPU", fig11},
	"fig12":                 {"Fig 12: hash size scaling on CPU and GPU", fig12},
	"fig13":                 {"Fig 13: throughput under varying MLP dimensions", fig13},
	"fig14":                 {"Fig 14: embedding placements on Big Basin vs Zion (M2prod)", fig14},
	"fig15":                 {"Fig 15: accuracy loss vs batch size after manual tuning", fig15},
	"elastic_recovery":      {"Elastic recovery: kill/restore/rejoin wall time, bytes restored, loss bit-identity (1/2/4 ranks)", elasticRecovery},
	"flight_recorder":       {"Flight recorder: online anomaly detection localizing injected spike/delay/kill incidents to ±1 step, with black-box bundles (1/2/4 ranks)", flightRecorder},
	"hybrid_scaling":        {"Hybrid-parallel scaling: ranks x batch comm/compute breakdown (real collectives)", hybridScaling},
	"ingest_scaling":        {"Ingestion scaling: readers per trainer, reader-bound vs trainer-bound crossover + RecD dedup", ingestScaling},
	"mixed_precision":       {"Mixed precision: table dtype x wire format sweep, quality drift and wire-byte compression (1/2/4 ranks)", mixedPrecision},
	"memtier":               {"Tiered memory: cache capacity vs hit rate vs throughput (MTrainS-style)", memtierSweep},
	"straggler_analysis":    {"Straggler detection: imbalance index and doctor verdict under an injected per-step delay fault (1/2/4 ranks)", stragglerAnalysis},
	"table1":                {"Table I: hardware platform details", table1},
	"telemetry_attribution": {"Telemetry attribution: observed span phases vs perfmodel prediction (1/2/4 ranks from disk)", telemetryAttribution},
	"table2":                {"Table II: production model descriptions", table2},
	"table3":                {"Table III: CPU-GPU optimal setup comparison", table3},
	"vic":                   {"Sec VI-C: AutoML hyper-parameter re-tuning on GPU", vic},
}

// IDs lists experiment identifiers in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the display title for an experiment id.
func Title(id string) string { return registry[id].title }

// Run executes one experiment.
func Run(id string, opt Options) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (known: %s)",
			id, strings.Join(IDs(), ", "))
	}
	res, err := e.run(opt)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = e.title
	return res, nil
}

// ---- shared helpers ----

func cpuClusterThroughput(cfg core.Config, batch, trainers, sparsePS, densePS int) (perfmodel.Breakdown, error) {
	return perfmodel.Estimate(perfmodel.Scenario{
		Cfg: cfg, Platform: hw.DualSocketCPU(), Batch: batch,
		NumTrainers: trainers, NumSparsePS: sparsePS, NumDensePS: densePS,
	})
}

func gpuThroughput(cfg core.Config, platform hw.Platform, batch int, strat placement.Strategy, remotePS int) (perfmodel.Breakdown, error) {
	plan, err := placement.Fit(cfg, platform, strat, remotePS)
	if err != nil {
		return perfmodel.Breakdown{}, err
	}
	return perfmodel.Estimate(perfmodel.Scenario{Cfg: cfg, Platform: platform, Batch: batch, Plan: plan})
}

// ---- Fig 1 ----

func fig1(Options) (Result, error) {
	rows := [][]string{{"model", "platform", "placement", "norm throughput", "bottleneck"}}
	var notes []string
	for _, cfg := range workload.ProdModels() {
		setup, err := workload.ProdSetup(cfg.Name)
		if err != nil {
			return Result{}, err
		}
		cpu, err := cpuClusterThroughput(cfg, setup.TrainerBatch, setup.Trainers, setup.SparsePS, setup.DensePS)
		if err != nil {
			return Result{}, err
		}
		rows = append(rows, []string{cfg.Name, "DualSocketCPU",
			fmt.Sprintf("sparse PS x%d", setup.SparsePS), "1.00", cpu.Bottleneck})
		for _, platform := range []hw.Platform{hw.BigBasin(), hw.Zion()} {
			plan, bd, err := perfmodel.BestPlacement(cfg, platform, setup.OptimalGPUBatch, perfmodel.DefaultCalibration())
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, []string{cfg.Name, platform.Name, plan.Strategy.String(),
				metrics.F2(bd.Throughput / cpu.Throughput), bd.Bottleneck})
		}
	}
	notes = append(notes,
		"Paper: throughput rises CPU -> Big Basin -> Zion; M1/M2 place embeddings",
		"on GPU memory on Big Basin, M3 on remote CPU (does not fit), Zion keeps",
		"embeddings in its 2TB system memory. Shape reproduced; see rows above.",
		"(BestPlacement now also considers the Tiered extension, which wins for",
		"models that overflow HBM — the paper's M3 row used remote CPU only.)")
	return Result{Output: metrics.Table(rows), PaperNote: strings.Join(notes, "\n")}, nil
}

// ---- Fig 10 ----

func fig10(Options) (Result, error) {
	T := perfmodel.PaperTargets
	denseLabels := make([]string, len(workload.SweepDense))
	sparseLabels := make([]string, len(workload.SweepSparse))
	for i, d := range workload.SweepDense {
		denseLabels[i] = fmt.Sprintf("%d", d)
	}
	for j, s := range workload.SweepSparse {
		sparseLabels[j] = fmt.Sprintf("%d", s)
	}

	cpuT := make([][]float64, len(workload.SweepDense))
	gpuT := make([][]float64, len(workload.SweepDense))
	ratio := make([][]float64, len(workload.SweepDense))
	powerEff := make([][]float64, len(workload.SweepDense))
	var cpuMin, gpuMin float64
	for i, d := range workload.SweepDense {
		cpuT[i] = make([]float64, len(workload.SweepSparse))
		gpuT[i] = make([]float64, len(workload.SweepSparse))
		ratio[i] = make([]float64, len(workload.SweepSparse))
		powerEff[i] = make([]float64, len(workload.SweepSparse))
		for j, s := range workload.SweepSparse {
			cfg := workload.DefaultTestSuite(d, s)
			c, err := cpuClusterThroughput(cfg, 200, 1, 1, 1)
			if err != nil {
				return Result{}, err
			}
			g, err := gpuThroughput(cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0)
			if err != nil {
				return Result{}, err
			}
			cpuT[i][j] = c.Throughput
			gpuT[i][j] = g.Throughput
			ratio[i][j] = g.Throughput / c.Throughput
			powerEff[i][j] = ratio[i][j] / T.Fig10PowerDivisor
			if cpuMin == 0 || c.Throughput < cpuMin {
				cpuMin = c.Throughput
			}
			if gpuMin == 0 || g.Throughput < gpuMin {
				gpuMin = g.Throughput
			}
		}
	}
	norm := func(m [][]float64, base float64) [][]float64 {
		out := make([][]float64, len(m))
		for i := range m {
			out[i] = make([]float64, len(m[i]))
			for j := range m[i] {
				out[i][j] = m[i][j] / base
			}
		}
		return out
	}
	var b strings.Builder
	b.WriteString("CPU normalized throughput (dense rows x sparse cols):\n")
	b.WriteString(metrics.Heatmap(denseLabels, sparseLabels, norm(cpuT, cpuMin), "%.2f"))
	b.WriteString("\nGPU normalized throughput:\n")
	b.WriteString(metrics.Heatmap(denseLabels, sparseLabels, norm(gpuT, gpuMin), "%.2f"))
	b.WriteString("\nGPU/CPU throughput ratio (paper values in note):\n")
	b.WriteString(metrics.Heatmap(denseLabels, sparseLabels, ratio, "%.2f"))
	b.WriteString("\nGPU/CPU power efficiency (setup power: Big Basin 7.3 units vs 3 CPU nodes):\n")
	b.WriteString(metrics.Heatmap(denseLabels, sparseLabels, powerEff, "%.2f"))

	paper := make([][]float64, len(T.Fig10Ratio))
	for i := range T.Fig10Ratio {
		paper[i] = T.Fig10Ratio[i][:]
	}
	note := "Paper GPU/CPU ratios:\n" + metrics.Heatmap(denseLabels, sparseLabels, paper, "%.2f") +
		"Modeled ratios stay within the paper's 1.9-5.6x band; the GPU advantage\n" +
		"grows with dense features, and power efficiency favors the CPU for the\n" +
		"smallest dense models (paper cells < 1), matching the published pattern."
	return Result{Output: b.String(), PaperNote: note}, nil
}

// ---- Fig 11 ----

func fig11(Options) (Result, error) {
	var b strings.Builder
	header := []string{"config (dense-sparse)"}
	for _, bb := range workload.SweepCPUBatch {
		header = append(header, fmt.Sprintf("cpu@%d", bb))
	}
	for _, bb := range workload.SweepGPUBatch {
		header = append(header, fmt.Sprintf("gpu@%d", bb))
	}
	rows := [][]string{header}
	var base float64
	for _, d := range workload.SweepDense {
		for _, s := range workload.SweepSparse {
			cfg := workload.DefaultTestSuite(d, s)
			row := []string{fmt.Sprintf("%d-%d", d, s)}
			for _, batch := range workload.SweepCPUBatch {
				c, err := cpuClusterThroughput(cfg, batch, 1, 1, 1)
				if err != nil {
					return Result{}, err
				}
				if base == 0 {
					base = c.Throughput
				}
				row = append(row, metrics.F2(c.Throughput/base))
			}
			for _, batch := range workload.SweepGPUBatch {
				g, err := gpuThroughput(cfg, hw.BigBasin(), batch, placement.GPUMemory, 0)
				if err != nil {
					return Result{}, err
				}
				row = append(row, metrics.F2(g.Throughput/base))
			}
			rows = append(rows, row)
		}
	}
	b.WriteString(metrics.Table(rows))
	note := "Paper: GPU throughput rises roughly linearly with batch before\n" +
		"saturating; CPU gains little from larger batches. Modeled GPU columns\n" +
		"rise steeply 400->3200 with diminishing returns; CPU columns are nearly\n" +
		"flat, matching the published shapes."
	return Result{Output: b.String(), PaperNote: note}, nil
}

// ---- Fig 12 ----

func fig12(Options) (Result, error) {
	header := []string{"config (dense-sparse)"}
	for _, h := range workload.SweepHash {
		header = append(header, fmt.Sprintf("cpu@%g", float64(h)))
	}
	for _, h := range workload.SweepHash {
		header = append(header, fmt.Sprintf("gpu@%g", float64(h)))
	}
	rows := [][]string{header}
	var base float64
	for _, d := range workload.SweepDense {
		for _, s := range workload.SweepSparse {
			row := []string{fmt.Sprintf("%d-%d", d, s)}
			for _, h := range workload.SweepHash {
				cfg := workload.TestSuiteConfig(d, s, 512, 3, h)
				c, err := cpuClusterThroughput(cfg, 200, 1, 1, 1)
				if err != nil {
					return Result{}, err
				}
				if base == 0 {
					base = c.Throughput
				}
				row = append(row, metrics.F2(c.Throughput/base))
			}
			for _, h := range workload.SweepHash {
				cfg := workload.TestSuiteConfig(d, s, 512, 3, h)
				g, err := gpuThroughput(cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0)
				if err != nil {
					// Tables exceed the 8-GPU HBM budget: the paper's
					// capacity wall.
					row = append(row, "OOM")
					continue
				}
				row = append(row, metrics.F2(g.Throughput/base))
			}
			rows = append(rows, row)
		}
	}
	note := "Paper: CPU throughput is insensitive to hash size; GPU throughput\n" +
		"drops significantly as growing tables force more GPUs into the exchange.\n" +
		"Modeled: CPU flat; GPU declines ~1.5-2x across the sweep (paper shows a\n" +
		"steeper ~4x drop) and hits OOM where tables exceed 8-GPU HBM — the\n" +
		"capacity cliff the paper works around with remote placement."
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

// ---- Fig 13 ----

func fig13(Options) (Result, error) {
	rows := [][]string{{"mlp dims", "cpu norm", "gpu norm", "gpu/cpu"}}
	var cpuBase, gpuBase float64
	for _, w := range workload.SweepMLPWidths {
		for _, l := range workload.SweepMLPDepths {
			cfg := workload.TestSuiteConfig(1024, 64, w, l, workload.TestSuiteHashSize)
			c, err := cpuClusterThroughput(cfg, 200, 1, 1, 1)
			if err != nil {
				return Result{}, err
			}
			g, err := gpuThroughput(cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0)
			if err != nil {
				return Result{}, err
			}
			if cpuBase == 0 {
				cpuBase, gpuBase = c.Throughput, g.Throughput
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d^%d", w, l),
				metrics.F2(c.Throughput / cpuBase),
				metrics.F2(g.Throughput / gpuBase),
				metrics.F2(g.Throughput / c.Throughput),
			})
		}
	}
	note := "Paper (config 1024-64): throughput holds until MLPs exceed ~256^3,\n" +
		"then the CPU drops faster than the GPU. Modeled: the gpu/cpu column\n" +
		"grows monotonically with MLP size, i.e. the CPU pays more for bigger\n" +
		"MLPs, matching the published claim."
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

// ---- Fig 14 ----

func fig14(Options) (Result, error) {
	m2 := workload.M2Prod()
	setup, err := workload.ProdSetup("M2prod")
	if err != nil {
		return Result{}, err
	}
	base, err := gpuThroughput(m2, hw.BigBasin(), setup.OptimalGPUBatch, placement.RemoteCPU, 8)
	if err != nil {
		return Result{}, err
	}
	rows := [][]string{{"platform", "placement", "norm throughput", "paper", "bottleneck"}}
	paperVals := map[string][3]float64{
		"BigBasin": perfmodel.PaperTargets.Fig14BigBasin,
		"Zion":     perfmodel.PaperTargets.Fig14Zion,
	}
	for _, platform := range []hw.Platform{hw.BigBasin(), hw.Zion()} {
		for k, strat := range []placement.Strategy{placement.GPUMemory, placement.SystemMemory, placement.RemoteCPU} {
			bd, err := gpuThroughput(m2, platform, setup.OptimalGPUBatch, strat, 8)
			if err != nil {
				return Result{}, err
			}
			rows = append(rows, []string{platform.Name, strat.String(),
				metrics.F2(bd.Throughput / base.Throughput),
				metrics.F2(paperVals[platform.Name][k]),
				bd.Bottleneck})
		}
	}
	note := "Paper: Big Basin is fastest with embeddings in GPU memory; Zion's\n" +
		"prototype lacks GPU-GPU links, so its best placement is system memory\n" +
		"(its 1TB/s host DRAM). All orderings reproduced; normalization is Big\n" +
		"Basin RemoteCPU = 1 as in the figure."
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

// ---- Tables ----

func table1(Options) (Result, error) {
	rows := [][]string{{"platform", "accelerators", "accel mem", "system mem", "cpu", "interconnect", "power"}}
	for _, p := range hw.Platforms() {
		acc, am := "-", "-"
		if p.IsGPU() {
			acc = fmt.Sprintf("%d x %s", p.NumGPUs, p.GPU.Name)
			am = core.HumanBytes(p.GPU.MemCapacity)
		}
		rows = append(rows, []string{
			p.Name, acc, am,
			core.HumanBytes(p.CPU.MemCapacity),
			fmt.Sprintf("%d sockets x %d cores", p.CPU.Sockets, p.CPU.CoresPerSocket),
			p.NIC.Name,
			fmt.Sprintf("%.1fx", p.PowerUnits),
		})
	}
	note := "Matches Table I: 256GB/256GB/~2TB system memory, 8 V100s on the GPU\n" +
		"platforms, 25GbE / 100GbE / 4x IB-100 interconnects."
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

func table2(Options) (Result, error) {
	rows := [][]string{{"model", "# sparse", "# dense", "emb size", "mean lookups", "bottom MLP", "top MLP"}}
	for _, cfg := range workload.ProdModels() {
		var meanLen float64
		for _, s := range cfg.Sparse {
			meanLen += s.MeanPooled
		}
		meanLen /= float64(cfg.NumSparse())
		bot := dimsString(cfg.BottomMLP)
		top := dimsString(cfg.TopMLP)
		rows = append(rows, []string{
			cfg.Name,
			fmt.Sprintf("%d", cfg.NumSparse()),
			fmt.Sprintf("%d", cfg.DenseFeatures),
			core.HumanBytes(cfg.EmbeddingBytes()),
			metrics.F2(meanLen),
			bot, top,
		})
	}
	note := "Matches Table II: 30/13/127 sparse features, 800/504/809 dense,\n" +
		"tens/tens/hundreds of GB of embeddings, 28/17/49 mean lookups."
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

func dimsString(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return strings.Join(parts, "-")
}

func table3(Options) (Result, error) {
	T := perfmodel.PaperTargets
	rows := [][]string{{"model", "cpu setup", "gpu placement", "opt batch (paper)",
		"gpu/cpu thpt", "paper", "gpu/cpu power eff", "paper"}}
	strats := []placement.Strategy{placement.GPUMemory, placement.GPUMemory, placement.RemoteCPU}
	remotes := []int{0, 0, 8}
	batchSweep := []int{200, 400, 800, 1600, 3200, 6400}
	for k, cfg := range workload.ProdModels() {
		setup, err := workload.ProdSetup(cfg.Name)
		if err != nil {
			return Result{}, err
		}
		cpu, err := cpuClusterThroughput(cfg, setup.TrainerBatch, setup.Trainers, setup.SparsePS, setup.DensePS)
		if err != nil {
			return Result{}, err
		}
		plan, err := placement.Fit(cfg, hw.BigBasin(), strats[k], remotes[k])
		if err != nil {
			return Result{}, err
		}
		optBatch, err := perfmodel.SaturationBatch(perfmodel.Scenario{
			Cfg: cfg, Platform: hw.BigBasin(), Plan: plan}, batchSweep, 0.85)
		if err != nil {
			return Result{}, err
		}
		gpu, err := perfmodel.Estimate(perfmodel.Scenario{
			Cfg: cfg, Platform: hw.BigBasin(), Batch: setup.OptimalGPUBatch, Plan: plan})
		if err != nil {
			return Result{}, err
		}
		thptRatio := gpu.Throughput / cpu.Throughput
		peRatio := gpu.PowerEfficiency() / cpu.PowerEfficiency()
		rows = append(rows, []string{
			cfg.Name,
			fmt.Sprintf("%dtr+%dps", setup.Trainers, setup.SparsePS+setup.DensePS),
			plan.Strategy.String(),
			fmt.Sprintf("%d (%d)", optBatch, setup.OptimalGPUBatch),
			metrics.F2(thptRatio), metrics.F2(T.TableIIIThroughput[k]),
			metrics.F2(peRatio), metrics.F2(T.TableIIIPowerEff[k]),
		})
	}
	note := "Paper: M1 gains 2.25x throughput / 4.3x power efficiency on GPU;\n" +
		"M2 roughly breaks even (0.85x) with a 2.8x efficiency win; M3 (tables\n" +
		"too large for GPU memory) loses at 0.67x. Modeled ratios preserve the\n" +
		"ordering and the win/lose classification of all three models."
	return Result{Output: metrics.Table(rows), PaperNote: note}, nil
}

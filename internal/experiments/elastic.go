package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hybrid"
	"repro/internal/metrics"
)

// elasticRecovery measures the fault-tolerance subsystem end to end: for
// 1, 2, and 4 ranks it trains a clean reference run, then re-runs the
// same workload with a rank kill injected mid-run — forcing rollback to
// the last durable checkpoint, a world rebuild, and stream replay — and
// reports recovery wall time, verified bytes restored, and whether the
// recovered loss curve is bit-identical to the uninterrupted one.
func elasticRecovery(opt Options) (Result, error) {
	cfg := core.Config{
		Name:          "elastic-recovery",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(8, 1000, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{32},
		TopMLP:        []int{32, 16},
		Interaction:   core.DotProduct,
	}
	steps, ckptEvery, killAt, batch := 48, 8, 21, 64
	if opt.Quick {
		steps, ckptEvery, killAt, batch = 24, 6, 15, 32
	}

	run := func(ranks int, faults string) (*hybrid.ElasticResult, error) {
		dir, err := os.MkdirTemp("", "elastic-recovery-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		store, err := ckpt.OpenStore(dir)
		if err != nil {
			return nil, err
		}
		fs, err := collective.ParseFaultSchedule(faults)
		if err != nil {
			return nil, err
		}
		return hybrid.RunElastic(hybrid.ElasticConfig{
			Cfg:       cfg,
			HC:        hybrid.Config{Ranks: ranks, LR: 0.05, Seed: opt.Seed + 1, Overlap: ranks > 1},
			Store:     store,
			CkptEvery: ckptEvery,
			FullEvery: 2, // exercise the delta chain + compaction on every run
			Steps:     steps,
			Source: func(skip int) (core.BatchSource, func(), error) {
				gen := data.NewGenerator(cfg, opt.Seed+2, data.DefaultOptions())
				for i := 0; i < skip; i++ {
					gen.NextBatch(batch)
				}
				return gen.NewSource(batch), func() {}, nil
			},
			Faults: fs,
		})
	}

	rows := [][]string{{"ranks", "steps", "kills", "recoveries", "recovery wall",
		"bytes restored", "ckpts", "curve vs clean"}}
	allIdentical := true
	for _, ranks := range []int{1, 2, 4} {
		clean, err := run(ranks, "")
		if err != nil {
			return Result{}, err
		}
		kill := fmt.Sprintf("kill:%d@%d", ranks-1, killAt)
		faulted, err := run(ranks, kill)
		if err != nil {
			return Result{}, err
		}
		identical := len(clean.Losses) == len(faulted.Losses)
		for i := range clean.Losses {
			if !identical || clean.Losses[i] != faulted.Losses[i] {
				identical = false
				break
			}
		}
		allIdentical = allIdentical && identical
		verdict := "bit-identical"
		if !identical {
			verdict = "DIVERGED"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", ranks),
			fmt.Sprintf("%d", faulted.Steps),
			"1",
			fmt.Sprintf("%d", faulted.Recoveries),
			faulted.RecoveryWall.Round(10 * time.Microsecond).String(),
			core.HumanBytes(faulted.BytesRestored),
			fmt.Sprintf("%d", faulted.Saves),
			verdict,
		})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Elastic recovery: kill rank N-1 at step %d, roll back to the last\n", killAt)
	fmt.Fprintf(&b, "durable checkpoint (every %d steps, full compaction every 2nd save),\n", ckptEvery)
	b.WriteString("rebuild the world, replay the deterministic stream, and compare the\n")
	b.WriteString("final loss curve float-for-float against an uninterrupted run.\n\n")
	b.WriteString(metrics.Table(rows))
	if !allIdentical {
		b.WriteString("\nWARNING: a recovered curve diverged from its uninterrupted reference.\n")
	}

	note := "Paper (SIII-B, SVII): at the fleet scale the paper studies, trainer\n" +
		"preemptions and host failures are routine, so production recommendation\n" +
		"training checkpoints its ~TB-scale sharded embedding tables incrementally\n" +
		"and resumes without losing synchronous-SGD semantics. Measured: recovery\n" +
		"restores only verified (SHA-256 + Merkle root) shard bytes, rejoins in\n" +
		"well under a second at this scale, and the resumed loss curve is\n" +
		"bit-identical to the uninterrupted run for 1/2/4 ranks — determinism the\n" +
		"synchronous engine's fixed reduction order makes possible."
	return Result{Output: b.String(), PaperNote: note}, nil
}

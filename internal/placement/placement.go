// Package placement implements the embedding-table placement strategies
// of §IV-B1 / Fig 8: on the GPUs' HBM, in the GPU server's system memory,
// in the system memory of remote CPU parameter servers, or a hybrid of
// GPU and system memory. It answers the capacity question — does this
// model fit, and with how many devices/servers — while the perfmodel
// package answers the speed question for feasible plans.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memtier"
)

// Strategy enumerates the placement options of Fig 8.
type Strategy int

const (
	// GPUMemory distributes tables across the accelerators' HBM
	// (table-wise).
	GPUMemory Strategy = iota
	// SystemMemory keeps tables in the GPU server's host DRAM.
	SystemMemory
	// RemoteCPU shards tables across remote CPU parameter servers.
	RemoteCPU
	// Hybrid places the hottest tables that fit on GPU HBM and spills
	// the rest to host DRAM.
	Hybrid
	// Tiered stages tables across the platform's full memory hierarchy
	// (HBM, host DRAM, remote DRAM, NVM) hottest-first and reserves
	// leftover HBM as a hot-row cache — the memtier subsystem's
	// trace-driven extension of Hybrid.
	Tiered
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case GPUMemory:
		return "GPUMemory"
	case SystemMemory:
		return "SystemMemory"
	case RemoteCPU:
		return "RemoteCPU"
	case Hybrid:
		return "Hybrid"
	case Tiered:
		return "Tiered"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all placement options.
func Strategies() []Strategy {
	return []Strategy{GPUMemory, SystemMemory, RemoteCPU, Hybrid, Tiered}
}

const (
	// gpuReserveFraction of HBM is withheld for activations,
	// workspace, and optimizer scratch when packing tables.
	gpuReserveFraction = 0.25
	// hostReserveFraction of system DRAM is withheld for the OS, the
	// input pipeline, and dense parameters.
	hostReserveFraction = 0.25
)

// Plan is a concrete, feasibility-checked placement.
type Plan struct {
	Strategy Strategy
	Platform hw.Platform

	// EmbGPUs is the number of accelerators holding embedding shards
	// (GPUMemory/Hybrid). Fig 12's throughput collapse comes from this
	// number growing with hash size.
	EmbGPUs int
	// RemotePS is the number of remote parameter servers (RemoteCPU).
	RemotePS int
	// GPUTableIdx / HostTableIdx partition table indices for Hybrid.
	GPUTableIdx  []int
	HostTableIdx []int
	// GPUBytes / HostBytes / RemoteBytes are where the embedding
	// parameters physically live.
	GPUBytes, HostBytes, RemoteBytes int64
	// HotFraction is the fraction of lookups served from GPU HBM
	// (1.0 for GPUMemory, 0 for SystemMemory/RemoteCPU; for Tiered it
	// includes hot-row cache hits).
	HotFraction float64
	// Tiered carries the full per-tier assignment for the Tiered
	// strategy (nil otherwise).
	Tiered *memtier.Assignment
}

// usableGPUBytes returns packable HBM per device.
func usableGPUBytes(p hw.Platform) int64 {
	return int64(float64(p.GPU.MemCapacity) * (1 - gpuReserveFraction))
}

// usableHostBytes returns packable system DRAM.
func usableHostBytes(p hw.Platform) int64 {
	return int64(float64(p.CPU.MemCapacity) * (1 - hostReserveFraction))
}

// usablePSBytes returns packable DRAM of one remote parameter server
// (always a dual-socket CPU node).
func usablePSBytes() int64 {
	return usableHostBytes(hw.DualSocketCPU())
}

// Fit constructs a Plan for the strategy on the platform, or an error if
// the model cannot be placed that way. remotePS requests a parameter
// server count for RemoteCPU; pass 0 to size automatically.
func Fit(cfg core.Config, platform hw.Platform, strategy Strategy, remotePS int) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	total := cfg.EmbeddingBytes()
	plan := Plan{Strategy: strategy, Platform: platform}

	switch strategy {
	case GPUMemory:
		if !platform.IsGPU() {
			return Plan{}, fmt.Errorf("placement: %s has no GPUs", platform.Name)
		}
		per := usableGPUBytes(platform)
		need := int(ceilDiv(total, per))
		if need > platform.NumGPUs {
			return Plan{}, fmt.Errorf(
				"placement: %s embeddings (%s) exceed %d-GPU HBM capacity (%s usable)",
				cfg.Name, core.HumanBytes(total), platform.NumGPUs,
				core.HumanBytes(per*int64(platform.NumGPUs)))
		}
		// Capacity-minimal table-wise packing: tables occupy as few
		// GPUs as fit them. §V-C observes that growing hash sizes
		// force more GPUs into the embedding exchange, which is what
		// degrades Fig 12's GPU throughput.
		if need < 1 {
			need = 1
		}
		plan.EmbGPUs = need
		plan.GPUBytes = total
		plan.HotFraction = 1
		return plan, nil

	case SystemMemory:
		if !platform.IsGPU() {
			return Plan{}, fmt.Errorf("placement: SystemMemory placement targets GPU servers; use RemoteCPU for CPU clusters")
		}
		if total > usableHostBytes(platform) {
			return Plan{}, fmt.Errorf(
				"placement: %s embeddings (%s) exceed %s system memory (%s usable)",
				cfg.Name, core.HumanBytes(total), platform.Name,
				core.HumanBytes(usableHostBytes(platform)))
		}
		plan.HostBytes = total
		return plan, nil

	case RemoteCPU:
		need := int(ceilDiv(total, usablePSBytes()))
		if need < 1 {
			need = 1
		}
		if remotePS == 0 {
			// §VI-A: the paper scales the PS fleet up beyond the bare
			// capacity minimum to spread lookup load.
			remotePS = need
			if remotePS < 8 {
				remotePS = 8
			}
		}
		if remotePS < need {
			return Plan{}, fmt.Errorf(
				"placement: %s needs >= %d remote parameter servers for %s, got %d",
				cfg.Name, need, core.HumanBytes(total), remotePS)
		}
		plan.RemotePS = remotePS
		plan.RemoteBytes = total
		return plan, nil

	case Hybrid:
		if !platform.IsGPU() {
			return Plan{}, fmt.Errorf("placement: %s has no GPUs", platform.Name)
		}
		gpuBudget := usableGPUBytes(platform) * int64(platform.NumGPUs)
		stats := cfg.TableStats()
		// Hottest-first: pack by lookup density (accesses per byte) so
		// GPU HBM serves the largest share of lookups.
		order := make([]int, len(stats))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da := stats[order[a]].MeanPooled / float64(stats[order[a]].Bytes)
			db := stats[order[b]].MeanPooled / float64(stats[order[b]].Bytes)
			return da > db
		})
		var gpuBytes int64
		var gpuLookups, totalLookups float64
		for _, s := range stats {
			totalLookups += s.MeanPooled
		}
		for _, oi := range order {
			s := stats[oi]
			if gpuBytes+s.Bytes <= gpuBudget {
				gpuBytes += s.Bytes
				gpuLookups += s.MeanPooled
				plan.GPUTableIdx = append(plan.GPUTableIdx, s.Index)
			} else {
				plan.HostTableIdx = append(plan.HostTableIdx, s.Index)
			}
		}
		hostBytes := total - gpuBytes
		if hostBytes > usableHostBytes(platform) {
			return Plan{}, fmt.Errorf(
				"placement: %s hybrid spill (%s) exceeds %s system memory",
				cfg.Name, core.HumanBytes(hostBytes), platform.Name)
		}
		sort.Ints(plan.GPUTableIdx)
		sort.Ints(plan.HostTableIdx)
		plan.GPUBytes = gpuBytes
		plan.HostBytes = hostBytes
		if gpuBytes > 0 {
			plan.EmbGPUs = int(ceilDiv(gpuBytes, usableGPUBytes(platform)))
		}
		if totalLookups > 0 {
			plan.HotFraction = gpuLookups / totalLookups
		}
		return plan, nil

	case Tiered:
		return FitTiered(cfg, platform, TieredOptions{RemotePS: remotePS})
	}
	return Plan{}, fmt.Errorf("placement: unknown strategy %v", strategy)
}

// TieredOptions tune the Tiered strategy beyond what Fit's signature
// carries: an access profile recorded by the trace package and the
// memtier planner knobs.
type TieredOptions struct {
	// RemotePS sizes the remote-DRAM tier in parameter-server nodes;
	// 0 selects hw.DefaultRemotePS.
	RemotePS int
	// Assign is forwarded to memtier.Assign (trace profile, Zipf skew,
	// cache fraction, eviction policy).
	Assign memtier.AssignOptions
}

// FitTiered constructs the Tiered plan: tables staged across the
// platform's memory hierarchy hottest-first with a hot-row HBM cache for
// spilled tables. Unlike the flat strategies it consults per-row access
// skew (traced, or power-law-fitted) so the plan records how many lookups
// each tier actually serves.
func FitTiered(cfg core.Config, platform hw.Platform, opts TieredOptions) (Plan, error) {
	if err := cfg.Validate(); err != nil {
		return Plan{}, err
	}
	if !platform.IsGPU() {
		return Plan{}, fmt.Errorf("placement: %s has no GPUs for the tiered hierarchy's top tier", platform.Name)
	}
	tiers := platform.MemoryTiers(opts.RemotePS)
	asg, err := memtier.Assign(cfg.TableStats(), tiers, opts.Assign)
	if err != nil {
		return Plan{}, fmt.Errorf("placement: %s on %s: %w", cfg.Name, platform.Name, err)
	}
	plan := Plan{Strategy: Tiered, Platform: platform, Tiered: &asg}
	for _, tl := range asg.Tiers {
		switch tl.Tier.Kind {
		case hw.TierHBM:
			plan.GPUBytes = tl.Bytes + asg.CacheBytes
			plan.GPUTableIdx = append([]int(nil), tl.Tables...)
		case hw.TierLocalDRAM:
			plan.HostBytes = tl.Bytes
			plan.HostTableIdx = append([]int(nil), tl.Tables...)
		case hw.TierRemoteDRAM:
			plan.RemoteBytes = tl.Bytes
			if tl.Bytes > 0 {
				ps := opts.RemotePS
				if min := int(ceilDiv(tl.Bytes, usablePSBytes())); ps < min {
					ps = min
				}
				if ps < hw.DefaultRemotePS {
					ps = hw.DefaultRemotePS
				}
				plan.RemotePS = ps
			}
		}
	}
	if plan.GPUBytes > 0 {
		plan.EmbGPUs = int(ceilDiv(plan.GPUBytes, usableGPUBytes(platform)))
		if plan.EmbGPUs > platform.NumGPUs {
			plan.EmbGPUs = platform.NumGPUs
		}
	}
	plan.HotFraction = asg.TopTierFraction()
	return plan, nil
}

// Feasible returns every strategy that fits on the platform, in enum
// order.
func Feasible(cfg core.Config, platform hw.Platform) []Plan {
	var plans []Plan
	for _, s := range Strategies() {
		if p, err := Fit(cfg, platform, s, 0); err == nil {
			plans = append(plans, p)
		}
	}
	return plans
}

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("placement: non-positive divisor")
	}
	return (a + b - 1) / b
}

package placement

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/memtier"
	"repro/internal/workload"
)

func smallCfg() core.Config {
	return workload.DefaultTestSuite(256, 16) // 16 × 100k × 32 × 4 ≈ 205 MB
}

func TestGPUMemorySmallModelFitsOneGPU(t *testing.T) {
	plan, err := Fit(smallCfg(), hw.BigBasin(), GPUMemory, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if plan.EmbGPUs != 1 {
		t.Errorf("EmbGPUs = %d, want 1 for a 205MB model", plan.EmbGPUs)
	}
	cfg := smallCfg()
	if plan.HotFraction != 1 || plan.GPUBytes != cfg.EmbeddingBytes() {
		t.Errorf("plan: %+v", plan)
	}
}

func TestGPUMemorySpreadGrowsWithHashSize(t *testing.T) {
	// §V-C / Fig 12: growing hash sizes force more GPUs into the
	// embedding exchange.
	prev := 0
	for _, h := range workload.SweepHash {
		cfg := workload.TestSuiteConfig(1024, 16, 512, 3, h)
		plan, err := Fit(cfg, hw.BigBasin(), GPUMemory, 0)
		if err != nil {
			t.Fatalf("hash %d: %v", h, err)
		}
		if plan.EmbGPUs < prev {
			t.Errorf("hash %d: EmbGPUs %d decreased from %d", h, plan.EmbGPUs, prev)
		}
		prev = plan.EmbGPUs
	}
	if prev < 2 {
		t.Errorf("largest hash should need multiple GPUs, got %d", prev)
	}
}

func TestM3DoesNotFitOnBigBasinGPUs(t *testing.T) {
	// §VI-A: M3prod's embedding tables exceed a single Big Basin's GPU
	// memory, forcing the remote-CPU placement.
	m3 := workload.M3Prod()
	if _, err := Fit(m3, hw.BigBasin(), GPUMemory, 0); err == nil {
		t.Fatal("M3prod must not fit in Big Basin GPU memory")
	}
	if _, err := Fit(m3, hw.BigBasin(), SystemMemory, 0); err == nil {
		t.Fatal("M3prod must not fit in Big Basin 256GB system memory")
	}
	// Remote placement always works with enough PS.
	plan, err := Fit(m3, hw.BigBasin(), RemoteCPU, 8)
	if err != nil {
		t.Fatalf("remote placement: %v", err)
	}
	if plan.RemotePS != 8 {
		t.Errorf("RemotePS = %d", plan.RemotePS)
	}
	// Zion's 2TB system memory holds it (Fig 1's headline).
	if _, err := Fit(m3, hw.Zion(), SystemMemory, 0); err != nil {
		t.Fatalf("M3prod must fit in Zion system memory: %v", err)
	}
}

func TestM1M2FitOnBigBasinGPUs(t *testing.T) {
	for _, cfg := range []core.Config{workload.M1Prod(), workload.M2Prod()} {
		plan, err := Fit(cfg, hw.BigBasin(), GPUMemory, 0)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if plan.EmbGPUs < 2 || plan.EmbGPUs > 8 {
			t.Errorf("%s: EmbGPUs = %d", cfg.Name, plan.EmbGPUs)
		}
	}
}

func TestRemoteCPUAutoSizing(t *testing.T) {
	plan, err := Fit(workload.M3Prod(), hw.BigBasin(), RemoteCPU, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// 240 GB over 192 GB-usable PS nodes => at least 2.
	if plan.RemotePS < 2 {
		t.Errorf("auto-sized RemotePS = %d", plan.RemotePS)
	}
	if _, err := Fit(workload.M3Prod(), hw.BigBasin(), RemoteCPU, 1); err == nil {
		t.Error("1 PS cannot hold M3prod; Fit must refuse")
	}
}

func TestGPUPlacementsRejectCPUPlatform(t *testing.T) {
	cpu := hw.DualSocketCPU()
	for _, s := range []Strategy{GPUMemory, SystemMemory, Hybrid, Tiered} {
		if _, err := Fit(smallCfg(), cpu, s, 0); err == nil {
			t.Errorf("%v placement must fail on a CPU-only platform", s)
		}
	}
	if _, err := Fit(smallCfg(), cpu, RemoteCPU, 0); err != nil {
		t.Errorf("RemoteCPU should work from any trainer: %v", err)
	}
}

func TestHybridSplitsByLookupDensity(t *testing.T) {
	// Two tables: one small-and-hot, one huge-and-cold. Hybrid must put
	// the hot one on GPU.
	cfg := core.Config{
		Name:          "hybrid-test",
		DenseFeatures: 64,
		EmbeddingDim:  64,
		BottomMLP:     []int{64},
		TopMLP:        []int{64},
		Interaction:   core.Concat,
		Sparse: []core.SparseFeature{
			{Name: "hot", HashSize: 1000, MeanPooled: 30, MaxPooled: 32},
			// ~229 GB: exceeds the 8-GPU budget on its own.
			{Name: "cold", HashSize: 960_000_000, MeanPooled: 1, MaxPooled: 32},
		},
	}
	plan, err := Fit(cfg, hw.Zion(), Hybrid, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if len(plan.GPUTableIdx) != 1 || plan.GPUTableIdx[0] != 0 {
		t.Errorf("GPU tables = %v, want [0] (the hot table)", plan.GPUTableIdx)
	}
	if len(plan.HostTableIdx) != 1 || plan.HostTableIdx[0] != 1 {
		t.Errorf("host tables = %v, want [1]", plan.HostTableIdx)
	}
	if plan.HotFraction < 0.9 {
		t.Errorf("HotFraction = %v, want ~30/31", plan.HotFraction)
	}
}

func TestFeasibleEnumerates(t *testing.T) {
	plans := Feasible(smallCfg(), hw.BigBasin())
	if len(plans) != 5 {
		t.Errorf("small model should fit all 5 strategies on BigBasin, got %d", len(plans))
	}
	plans = Feasible(workload.M3Prod(), hw.BigBasin())
	for _, p := range plans {
		if p.Strategy == GPUMemory || p.Strategy == SystemMemory {
			t.Errorf("M3prod must not report %v as feasible on BigBasin", p.Strategy)
		}
	}
}

func TestStrategyString(t *testing.T) {
	names := []string{"GPUMemory", "SystemMemory", "RemoteCPU", "Hybrid", "Tiered"}
	for i, s := range Strategies() {
		if s.String() != names[i] {
			t.Errorf("Strategy(%d).String() = %q", i, s.String())
		}
	}
	if !strings.Contains(Strategy(99).String(), "99") {
		t.Error("unknown strategy should render its number")
	}
}

func TestTieredSmallModelDegeneratesToGPUMemory(t *testing.T) {
	plan, err := Fit(smallCfg(), hw.BigBasin(), Tiered, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	cfg := smallCfg()
	if plan.GPUBytes != cfg.EmbeddingBytes() || plan.HostBytes != 0 || plan.RemoteBytes != 0 {
		t.Errorf("small model must live entirely in HBM: %+v", plan)
	}
	if plan.HotFraction != 1 || plan.EmbGPUs != 1 {
		t.Errorf("HotFraction %v EmbGPUs %d, want 1/1", plan.HotFraction, plan.EmbGPUs)
	}
	if plan.Tiered == nil || plan.Tiered.CacheRows != 0 {
		t.Errorf("no-spill plan must carry an assignment without a cache: %+v", plan.Tiered)
	}
}

func TestTieredHandlesHBMOverflow(t *testing.T) {
	// M3prod (224 GB) does not fit Big Basin's HBM or its 256 GB host
	// DRAM flat, but the tiered hierarchy holds it: hot tables in HBM,
	// spill in host DRAM, with an HBM hot-row cache in front.
	m3 := workload.M3Prod()
	plan, err := Fit(m3, hw.BigBasin(), Tiered, 0)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if plan.GPUBytes == 0 || plan.HostBytes == 0 {
		t.Errorf("M3prod must span HBM and host DRAM: %+v", plan)
	}
	if plan.EmbGPUs != 8 {
		t.Errorf("EmbGPUs = %d, want all 8 for a ~192GB HBM load", plan.EmbGPUs)
	}
	asg := plan.Tiered
	if asg == nil || asg.CacheRows == 0 || asg.CacheHitRate <= 0 {
		t.Fatalf("overflowing model must activate the hot-row cache: %+v", asg)
	}
	if plan.HotFraction <= asg.Tiers[0].ResidentShare {
		t.Error("cache hits must raise HotFraction above the resident HBM share")
	}
	if plan.HotFraction >= 1 {
		t.Errorf("HotFraction %v must stay below 1 when tables spill", plan.HotFraction)
	}
}

func TestFitTieredUsesProfile(t *testing.T) {
	// A trace that inverts the configured hotness must invert the HBM
	// winner (trace-driven placement, not config-driven).
	cfg := core.Config{
		Name:          "tiered-profile",
		DenseFeatures: 64,
		EmbeddingDim:  64,
		BottomMLP:     []int{64},
		TopMLP:        []int{64},
		Interaction:   core.Concat,
		Sparse: []core.SparseFeature{
			{Name: "cfg-hot", HashSize: 500_000_000, MeanPooled: 30, MaxPooled: 32}, // ~119 GB
			{Name: "cfg-cold", HashSize: 500_000_000, MeanPooled: 1, MaxPooled: 32}, // ~119 GB
		},
	}
	profile := [][]uint64{{2, 1}, {100, 90, 80}}
	plan, err := FitTiered(cfg, hw.BigBasin(), TieredOptions{
		Assign: memtier.AssignOptions{Profile: profile},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.GPUTableIdx) != 1 || plan.GPUTableIdx[0] != 1 {
		t.Errorf("traced-hot table must win HBM: GPU tables %v", plan.GPUTableIdx)
	}
}

func TestFitRejectsInvalidConfig(t *testing.T) {
	bad := smallCfg()
	bad.Sparse = nil
	if _, err := Fit(bad, hw.BigBasin(), GPUMemory, 0); err == nil {
		t.Error("invalid config accepted")
	}
}

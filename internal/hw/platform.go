// Package hw catalogs the training hardware platforms of the paper's
// Table I — the dual-socket CPU server, the Big Basin 8-GPU server, and
// the prototype Zion 8-socket GPU server — with the compute, memory,
// interconnect, and power characteristics the performance model consumes.
//
// Raw peak numbers come from Table I and the public platform disclosures
// cited there (V100: 15.7 TF/s FP32 and 900 GB/s HBM2; NICs of 25/100
// Gbps; Zion with ~2 TB of system memory at ~1 TB/s). Achievable-fraction
// calibration lives in perfmodel, not here: this package states what the
// hardware is, not how efficiently software drives it.
package hw

import "fmt"

// Interconnect describes one communication channel.
type Interconnect struct {
	Name string
	// BandwidthBps is bytes/second per direction for one endpoint.
	BandwidthBps float64
	// LatencySec is the per-message base latency in seconds.
	LatencySec float64
}

// CPUSpec describes the host CPU complex of a platform.
type CPUSpec struct {
	Sockets        int
	CoresPerSocket int
	// PeakFLOPsPerSocket is FP32 FLOP/s per socket (FMA counted as 2).
	PeakFLOPsPerSocket float64
	// MemBWPerSocket is DRAM stream bandwidth per socket, bytes/s.
	MemBWPerSocket float64
	// MemCapacity is total system DRAM in bytes.
	MemCapacity int64
}

// Cores returns the total core count.
func (c CPUSpec) Cores() int { return c.Sockets * c.CoresPerSocket }

// PeakFLOPs returns aggregate FP32 FLOP/s.
func (c CPUSpec) PeakFLOPs() float64 { return float64(c.Sockets) * c.PeakFLOPsPerSocket }

// MemBW returns aggregate DRAM bandwidth, bytes/s.
func (c CPUSpec) MemBW() float64 { return float64(c.Sockets) * c.MemBWPerSocket }

// GPUSpec describes one accelerator.
type GPUSpec struct {
	Name string
	// PeakFLOPs is FP32 FLOP/s per device.
	PeakFLOPs float64
	// MemBW is HBM bandwidth per device, bytes/s.
	MemBW float64
	// MemCapacity is device memory in bytes.
	MemCapacity int64
}

// Platform is one server design from Table I.
type Platform struct {
	Name string
	CPU  CPUSpec
	// NumGPUs is 0 for CPU-only platforms.
	NumGPUs int
	GPU     GPUSpec
	// NVLink is the direct GPU-GPU fabric; nil when GPUs can only
	// communicate through the host (the Zion prototype, §VI-B).
	NVLink *Interconnect
	// PCIe is the host-device channel per GPU.
	PCIe Interconnect
	// NIC is the network channel of the server.
	NIC Interconnect
	// NVM optionally overrides the platform's non-volatile storage tier
	// (see MemoryTiers); nil selects the default NVMe spec.
	NVM *MemTier
	// PowerUnits is provisioned power relative to the dual-socket CPU
	// server (= 1.0). The paper states Big Basin requires 7.3× (§V-A).
	PowerUnits float64
}

// TotalGPUMemory returns the aggregate accelerator memory in bytes.
func (p Platform) TotalGPUMemory() int64 {
	return int64(p.NumGPUs) * p.GPU.MemCapacity
}

// TotalGPUFLOPs returns aggregate accelerator FP32 FLOP/s.
func (p Platform) TotalGPUFLOPs() float64 {
	return float64(p.NumGPUs) * p.GPU.PeakFLOPs
}

// HasNVLink reports whether GPUs have a direct fabric.
func (p Platform) HasNVLink() bool { return p.NVLink != nil }

// IsGPU reports whether the platform carries accelerators.
func (p Platform) IsGPU() bool { return p.NumGPUs > 0 }

// RankInterconnect returns the channel connecting peer training ranks on
// this platform: the direct GPU fabric when one exists, otherwise the
// NIC (the scale-out case where each rank is a server — also the Zion
// prototype, whose accelerators can only talk through the host).
func (p Platform) RankInterconnect() Interconnect {
	if p.HasNVLink() {
		return *p.NVLink
	}
	return p.NIC
}

// String renders a Table I style row.
func (p Platform) String() string {
	acc := "-"
	if p.IsGPU() {
		acc = fmt.Sprintf("%d x %s", p.NumGPUs, p.GPU.Name)
	}
	return fmt.Sprintf("%s: accelerators=%s systemMem=%dGB cpuSockets=%d nic=%s power=%.1fx",
		p.Name, acc, p.CPU.MemCapacity>>30, p.CPU.Sockets, p.NIC.Name, p.PowerUnits)
}

const (
	gb = int64(1) << 30
	tb = int64(1) << 40
)

// v100 is the NVIDIA Tesla V100 of Big Basin and the Zion prototype.
func v100() GPUSpec {
	return GPUSpec{
		Name:        "V100",
		PeakFLOPs:   15.7e12, // Table I / §IV-A
		MemBW:       900e9,   // HBM2
		MemCapacity: 32 * gb,
	}
}

// skylakeSocket returns one production dual-socket-class Skylake socket:
// 20 cores, AVX-512 FMA ≈ 2.4 TF/s FP32 peak, six DDR4 channels
// ≈ 128 GB/s stream.
func skylakeSocket() (flops, membw float64, cores int) {
	return 2.4e12, 128e9, 20
}

// DualSocketCPU returns the baseline production CPU trainer/parameter
// server (Table I, column 1).
func DualSocketCPU() Platform {
	f, bw, cores := skylakeSocket()
	return Platform{
		Name: "DualSocketCPU",
		CPU: CPUSpec{
			Sockets:            2,
			CoresPerSocket:     cores,
			PeakFLOPsPerSocket: f,
			MemBWPerSocket:     bw,
			MemCapacity:        256 * gb,
		},
		PCIe:       Interconnect{Name: "PCIe3x16", BandwidthBps: 16e9, LatencySec: 10e-6},
		NIC:        Interconnect{Name: "25GbE", BandwidthBps: 25e9 / 8, LatencySec: 30e-6},
		PowerUnits: 1.0,
	}
}

// BigBasin returns the 8×V100 training server (Table I, column 2): two
// host sockets, 256 GB system DRAM, NVLink hybrid cube mesh, 100 GbE.
func BigBasin() Platform {
	f, bw, cores := skylakeSocket()
	nvlink := Interconnect{
		// Six 25 GB/s links per V100 in the hybrid cube mesh give
		// each GPU ~150 GB/s of aggregate fabric bandwidth.
		Name:         "NVLink-cube-mesh",
		BandwidthBps: 150e9,
		LatencySec:   5e-6,
	}
	return Platform{
		Name: "BigBasin",
		CPU: CPUSpec{
			Sockets:            2,
			CoresPerSocket:     cores,
			PeakFLOPsPerSocket: f,
			MemBWPerSocket:     bw,
			MemCapacity:        256 * gb,
		},
		NumGPUs:    8,
		GPU:        v100(),
		NVLink:     &nvlink,
		PCIe:       Interconnect{Name: "PCIe3x16", BandwidthBps: 16e9, LatencySec: 10e-6},
		NIC:        Interconnect{Name: "100GbE", BandwidthBps: 100e9 / 8, LatencySec: 20e-6},
		PowerUnits: 7.3, // §V-A: Big Basin power capacity is 7.3× the CPU server
	}
}

// Zion returns the prototype 8-socket large-memory GPU platform (Table I,
// column 3): ~2 TB system memory at ~1 TB/s, 8 accelerators WITHOUT a
// direct GPU-GPU fabric (all cross-GPU traffic goes through the host,
// §VI-B), and 4× InfiniBand 100 Gbps.
func Zion() Platform {
	f, bw, cores := skylakeSocket()
	return Platform{
		Name: "Zion",
		CPU: CPUSpec{
			Sockets:            8,
			CoresPerSocket:     cores,
			PeakFLOPsPerSocket: f,
			MemBWPerSocket:     bw, // 8 × 128 GB/s ≈ 1 TB/s aggregate
			MemCapacity:        2 * tb,
		},
		NumGPUs: 8,
		GPU:     v100(),
		NVLink:  nil, // prototype: no GPU-GPU direct communication
		PCIe:    Interconnect{Name: "PCIe3x16", BandwidthBps: 16e9, LatencySec: 10e-6},
		NIC:     Interconnect{Name: "4xIB100", BandwidthBps: 4 * 100e9 / 8, LatencySec: 5e-6},
		// Not disclosed; modeled as the Big Basin GPU complex plus
		// four dual-socket hosts' worth of CPU/DRAM power.
		PowerUnits: 10.3,
	}
}

// Platforms returns the Table I catalog in paper order.
func Platforms() []Platform {
	return []Platform{DualSocketCPU(), BigBasin(), Zion()}
}

// ByName looks a platform up by its name.
func ByName(name string) (Platform, error) {
	for _, p := range Platforms() {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("hw: unknown platform %q", name)
}

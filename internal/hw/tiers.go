package hw

import "fmt"

// MemTierKind orders the levels of the embedding memory hierarchy from
// fastest/smallest to slowest/largest. The hierarchy mirrors MTrainS's
// staging of DLRM embeddings across heterogeneous memories: accelerator
// HBM, host DRAM, the DRAM of remote parameter-server nodes, and block
// storage (NVM/SSD).
type MemTierKind int

const (
	// TierHBM is accelerator high-bandwidth memory.
	TierHBM MemTierKind = iota
	// TierLocalDRAM is the training server's host DRAM.
	TierLocalDRAM
	// TierRemoteDRAM is DRAM on remote parameter-server nodes, reached
	// over the network.
	TierRemoteDRAM
	// TierNVM is local non-volatile storage (NVMe SSD).
	TierNVM
)

// String implements fmt.Stringer.
func (k MemTierKind) String() string {
	switch k {
	case TierHBM:
		return "HBM"
	case TierLocalDRAM:
		return "LocalDRAM"
	case TierRemoteDRAM:
		return "RemoteDRAM"
	case TierNVM:
		return "NVM"
	default:
		return fmt.Sprintf("MemTierKind(%d)", int(k))
	}
}

// MemTier describes one level of a platform's embedding memory hierarchy:
// raw capacity, aggregate bandwidth, and per-access base latency. Like the
// rest of this package it states what the hardware offers; achievable
// fractions (random-access derating, protocol efficiency) live in
// perfmodel's Calibration.
type MemTier struct {
	Kind MemTierKind
	Name string
	// CapacityBytes is the raw capacity of the tier.
	CapacityBytes int64
	// BandwidthBps is the aggregate bytes/second the tier can stream to
	// the consumer (for remote tiers, the trainer-side network path).
	BandwidthBps float64
	// LatencySec is the base latency of one access/request.
	LatencySec float64
}

// String renders a catalog row.
func (t MemTier) String() string {
	return fmt.Sprintf("%s(%s): %s @ %.0f GB/s, %.1f us",
		t.Name, t.Kind, humanBytes(t.CapacityBytes), t.BandwidthBps/1e9, t.LatencySec*1e6)
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1fTB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.0fGB", float64(b)/(1<<30))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// defaultNVM returns the NVMe spec assumed for platforms that do not
// declare one: a 4 TB enterprise drive, ~3.2 GB/s sustained read, ~90 us
// access latency — the block-storage tier of the MTrainS hierarchy.
func defaultNVM() MemTier {
	return MemTier{
		Kind:          TierNVM,
		Name:          "NVMe-SSD",
		CapacityBytes: 4 * tb,
		BandwidthBps:  3.2e9,
		LatencySec:    90e-6,
	}
}

// DefaultRemotePS is the parameter-server fleet size assumed for the
// remote-DRAM tier when the caller does not request one; it matches the
// minimum fleet placement.Fit auto-sizes for RemoteCPU.
const DefaultRemotePS = 8

// MemoryTiers returns the platform's embedding memory hierarchy ordered
// fastest to slowest. remotePS sizes the remote-DRAM tier in
// dual-socket parameter-server nodes; pass 0 for DefaultRemotePS.
// CPU-only platforms have no HBM tier; every platform gets an NVM tier
// (the Platform.NVM override, or a default 4 TB NVMe).
func (p Platform) MemoryTiers(remotePS int) []MemTier {
	if remotePS <= 0 {
		remotePS = DefaultRemotePS
	}
	var tiers []MemTier
	if p.IsGPU() {
		tiers = append(tiers, MemTier{
			Kind:          TierHBM,
			Name:          p.GPU.Name + "-HBM",
			CapacityBytes: p.TotalGPUMemory(),
			BandwidthBps:  float64(p.NumGPUs) * p.GPU.MemBW,
			LatencySec:    0.5e-6,
		})
	}
	tiers = append(tiers, MemTier{
		Kind:          TierLocalDRAM,
		Name:          "HostDRAM",
		CapacityBytes: p.CPU.MemCapacity,
		BandwidthBps:  p.CPU.MemBW(),
		LatencySec:    0.1e-6,
	})
	ps := DualSocketCPU()
	tiers = append(tiers, MemTier{
		Kind:          TierRemoteDRAM,
		Name:          fmt.Sprintf("RemoteDRAM-x%d", remotePS),
		CapacityBytes: int64(remotePS) * ps.CPU.MemCapacity,
		// The trainer reaches remote DRAM through its own NIC; the PS
		// fleet's aggregate DRAM is effectively never the tighter pipe.
		BandwidthBps: p.NIC.BandwidthBps,
		LatencySec:   p.NIC.LatencySec + ps.NIC.LatencySec,
	})
	nvm := defaultNVM()
	if p.NVM != nil {
		nvm = *p.NVM
	}
	tiers = append(tiers, nvm)
	return tiers
}

package hw

import (
	"strings"
	"testing"
)

func TestTableIInvariants(t *testing.T) {
	cpu := DualSocketCPU()
	bb := BigBasin()
	zion := Zion()

	// Table I: CPU platform has no accelerators.
	if cpu.IsGPU() || cpu.NumGPUs != 0 {
		t.Error("CPU platform must have no GPUs")
	}
	// Both GPU platforms carry 8 V100s.
	for _, p := range []Platform{bb, zion} {
		if p.NumGPUs != 8 || p.GPU.Name != "V100" {
			t.Errorf("%s: accelerators %d x %s", p.Name, p.NumGPUs, p.GPU.Name)
		}
	}
	// System memory: 256 GB / 256 GB / ~2 TB.
	if cpu.CPU.MemCapacity != 256<<30 || bb.CPU.MemCapacity != 256<<30 {
		t.Error("CPU/BigBasin system memory must be 256 GB")
	}
	if zion.CPU.MemCapacity != 2<<40 {
		t.Error("Zion system memory must be 2 TB")
	}
	// CPU sockets: 2 / 2 / 8.
	if cpu.CPU.Sockets != 2 || bb.CPU.Sockets != 2 || zion.CPU.Sockets != 8 {
		t.Error("socket counts must match Table I")
	}
	// Zion aggregate memory bandwidth ~1 TB/s.
	if zbw := zion.CPU.MemBW(); zbw < 0.9e12 || zbw > 1.2e12 {
		t.Errorf("Zion memory bandwidth %v, want ~1 TB/s", zbw)
	}
	// Interconnects: 25 GbE / 100 GbE / 4x IB 100.
	if cpu.NIC.BandwidthBps*8 != 25e9 {
		t.Error("CPU NIC must be 25 Gbps")
	}
	if bb.NIC.BandwidthBps*8 != 100e9 {
		t.Error("BigBasin NIC must be 100 Gbps")
	}
	if zion.NIC.BandwidthBps*8 != 400e9 {
		t.Error("Zion NIC must be 4x100 Gbps")
	}
}

func TestV100Specs(t *testing.T) {
	bb := BigBasin()
	if bb.GPU.PeakFLOPs != 15.7e12 {
		t.Errorf("V100 FP32 peak = %v, want 15.7 TF/s", bb.GPU.PeakFLOPs)
	}
	if bb.GPU.MemBW != 900e9 {
		t.Errorf("V100 HBM2 BW = %v, want 900 GB/s", bb.GPU.MemBW)
	}
	if got := bb.TotalGPUMemory(); got != 8*32<<30 {
		t.Errorf("BigBasin total GPU memory = %d", got)
	}
	if got := bb.TotalGPUFLOPs(); got != 8*15.7e12 {
		t.Errorf("BigBasin total GPU FLOPs = %v", got)
	}
}

func TestNVLinkTopology(t *testing.T) {
	// The paper's Zion prototype has no GPU-GPU direct fabric (§VI-B);
	// Big Basin has the NVLink cube mesh.
	if !BigBasin().HasNVLink() {
		t.Error("BigBasin must have NVLink")
	}
	if Zion().HasNVLink() {
		t.Error("prototype Zion must not have direct GPU-GPU communication")
	}
	if DualSocketCPU().HasNVLink() {
		t.Error("CPU server has no NVLink")
	}
}

func TestPowerUnits(t *testing.T) {
	if DualSocketCPU().PowerUnits != 1.0 {
		t.Error("CPU server is the 1.0 power baseline")
	}
	if BigBasin().PowerUnits != 7.3 {
		t.Error("§V-A: Big Basin is 7.3× the CPU server")
	}
	if z := Zion().PowerUnits; z <= BigBasin().PowerUnits {
		t.Errorf("Zion power %v should exceed Big Basin", z)
	}
}

func TestCPUAggregates(t *testing.T) {
	c := DualSocketCPU().CPU
	if c.Cores() != 40 {
		t.Errorf("cores = %d", c.Cores())
	}
	if c.PeakFLOPs() != 2*c.PeakFLOPsPerSocket {
		t.Error("PeakFLOPs aggregation")
	}
	if c.MemBW() != 2*c.MemBWPerSocket {
		t.Error("MemBW aggregation")
	}
	// Zion CPU compute should be 4x the dual-socket server.
	if Zion().CPU.PeakFLOPs() != 4*c.PeakFLOPs() {
		t.Error("Zion CPU compute must be 4x dual-socket")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"DualSocketCPU", "BigBasin", "Zion"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%s): %v", name, err)
		}
	}
	if _, err := ByName("TPUv4"); err == nil {
		t.Error("unknown platform must error")
	}
}

func TestString(t *testing.T) {
	s := BigBasin().String()
	if !strings.Contains(s, "8 x V100") || !strings.Contains(s, "7.3x") {
		t.Errorf("String() = %q", s)
	}
	if !strings.Contains(DualSocketCPU().String(), "accelerators=-") {
		t.Error("CPU String should show no accelerators")
	}
}

func TestPlatformsOrder(t *testing.T) {
	ps := Platforms()
	if len(ps) != 3 || ps[0].Name != "DualSocketCPU" || ps[2].Name != "Zion" {
		t.Errorf("Platforms() = %v", ps)
	}
}

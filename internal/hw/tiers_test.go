package hw

import (
	"strings"
	"testing"
)

func TestMemoryTiersOrderedAndComplete(t *testing.T) {
	for _, p := range Platforms() {
		tiers := p.MemoryTiers(0)
		if p.IsGPU() {
			if len(tiers) != 4 || tiers[0].Kind != TierHBM {
				t.Fatalf("%s: tiers %v", p.Name, tiers)
			}
		} else {
			if len(tiers) != 3 || tiers[0].Kind != TierLocalDRAM {
				t.Fatalf("%s: tiers %v", p.Name, tiers)
			}
		}
		for i := 1; i < len(tiers); i++ {
			if tiers[i].Kind <= tiers[i-1].Kind {
				t.Errorf("%s: tier kinds not strictly ordered: %v", p.Name, tiers)
			}
		}
		// The top tier must be the fastest; below it ordering is by
		// kind (a local NVMe can out-stream a slow NIC).
		for i := 1; i < len(tiers); i++ {
			if tiers[i].BandwidthBps >= tiers[0].BandwidthBps {
				t.Errorf("%s: tier %s bandwidth %.0f not below top tier",
					p.Name, tiers[i].Name, tiers[i].BandwidthBps)
			}
		}
		last := tiers[len(tiers)-1]
		if last.Kind != TierNVM || last.CapacityBytes < tb {
			t.Errorf("%s: NVM tier %v", p.Name, last)
		}
	}
}

func TestMemoryTiersRemotePSScaling(t *testing.T) {
	bb := BigBasin()
	t8 := bb.MemoryTiers(8)
	t16 := bb.MemoryTiers(16)
	if t16[2].CapacityBytes != 2*t8[2].CapacityBytes {
		t.Errorf("remote tier capacity must scale with PS count: %d vs %d",
			t8[2].CapacityBytes, t16[2].CapacityBytes)
	}
	if t8[2].Kind != TierRemoteDRAM {
		t.Errorf("third GPU tier should be remote DRAM, got %v", t8[2].Kind)
	}
}

func TestMemTierStringers(t *testing.T) {
	kinds := []MemTierKind{TierHBM, TierLocalDRAM, TierRemoteDRAM, TierNVM}
	names := []string{"HBM", "LocalDRAM", "RemoteDRAM", "NVM"}
	for i, k := range kinds {
		if k.String() != names[i] {
			t.Errorf("kind %d = %q", i, k.String())
		}
	}
	if !strings.Contains(MemTierKind(42).String(), "42") {
		t.Error("unknown kind should render its number")
	}
	s := BigBasin().MemoryTiers(0)[0].String()
	if !strings.Contains(s, "HBM") || !strings.Contains(s, "GB/s") {
		t.Errorf("tier string %q", s)
	}
}

func TestPlatformNVMOverride(t *testing.T) {
	p := BigBasin()
	custom := MemTier{Kind: TierNVM, Name: "CustomNVM", CapacityBytes: 8 * tb, BandwidthBps: 6e9, LatencySec: 20e-6}
	p.NVM = &custom
	tiers := p.MemoryTiers(0)
	if got := tiers[len(tiers)-1]; got != custom {
		t.Errorf("NVM override ignored: %v", got)
	}
}

// Package sim is a small discrete-event simulation engine: an event
// queue, FIFO resources with configurable capacity, and busy-time
// accounting. The pipeline package builds the paper's distributed
// training pipeline (Fig 4) on top of it to study utilization and
// variability (Fig 5), which analytic steady-state formulas cannot show.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is one scheduled callback.
type event struct {
	time float64
	seq  int64 // tie-breaker for deterministic ordering
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine runs events in time order. Events scheduled at equal times run
// in scheduling order, so simulations are fully deterministic.
type Engine struct {
	now   float64
	seq   int64
	queue eventHeap
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds of simulated time.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.seq++
	heap.Push(&e.queue, event{time: e.now + delay, seq: e.seq, fn: fn})
}

// Step executes the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.time
	ev.fn()
	return true
}

// Run processes events until the queue empties or simulated time would
// exceed until; remaining events stay queued. Passing +Inf drains the
// queue and leaves the clock at the last event.
func (e *Engine) Run(until float64) {
	for e.queue.Len() > 0 {
		if e.queue[0].time > until {
			e.now = until
			return
		}
		e.Step()
	}
	if !math.IsInf(until, 1) && e.now < until {
		e.now = until
	}
}

// Resource is a FIFO service center with a fixed number of parallel
// servers. Requests are granted in arrival order; busy time accumulates
// for utilization accounting.
type Resource struct {
	Name string

	eng      *Engine
	capacity int
	// freeAt[i] is when server i next becomes idle.
	freeAt   []float64
	busyTime float64
	served   int64
	waitTime float64
}

// NewResource attaches a resource with the given server count.
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{Name: name, eng: eng, capacity: capacity, freeAt: make([]float64, capacity)}
}

// Acquire queues a request of the given service duration and calls done
// when it completes. The request occupies the earliest-free server.
func (r *Resource) Acquire(duration float64, done func()) {
	if duration < 0 {
		panic(fmt.Sprintf("sim: negative service time %v", duration))
	}
	best := 0
	for i := 1; i < r.capacity; i++ {
		if r.freeAt[i] < r.freeAt[best] {
			best = i
		}
	}
	start := r.eng.now
	if r.freeAt[best] > start {
		start = r.freeAt[best]
	}
	finish := start + duration
	r.freeAt[best] = finish
	r.busyTime += duration
	r.waitTime += start - r.eng.now
	r.served++
	r.eng.Schedule(finish-r.eng.now, done)
}

// BusyTime returns the cumulative service time delivered.
func (r *Resource) BusyTime() float64 { return r.busyTime }

// Served returns the number of completed-or-started requests.
func (r *Resource) Served() int64 { return r.served }

// MeanWait returns the average queueing delay experienced by requests.
func (r *Resource) MeanWait() float64 {
	if r.served == 0 {
		return 0
	}
	return r.waitTime / float64(r.served)
}

// Utilization returns busy time as a fraction of capacity over [0, now].
func (r *Resource) Utilization() float64 {
	if r.eng.now <= 0 {
		return 0
	}
	u := r.busyTime / (r.eng.now * float64(r.capacity))
	if u > 1 {
		// Busy time booked ahead of now (requests finishing after
		// the horizon); clamp for reporting.
		u = 1
	}
	return u
}

package sim

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want horizon 10", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(1, func() { order = append(order, i) })
	}
	e.Run(2)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must run in scheduling order: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	hits := 0
	var tick func()
	tick = func() {
		hits++
		if hits < 5 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	e.Run(100)
	if hits != 5 {
		t.Errorf("hits = %d", hits)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(5, func() { ran = true })
	e.Run(3)
	if ran {
		t.Error("event beyond horizon must not run")
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v", e.Now())
	}
	e.Run(6)
	if !ran {
		t.Error("event must run once horizon extends")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestResourceFIFOService(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "cpu", 1)
	var done []float64
	for i := 0; i < 3; i++ {
		r.Acquire(2, func() { done = append(done, e.Now()) })
	}
	e.Run(100)
	want := []float64{2, 4, 6}
	for i, w := range want {
		if math.Abs(done[i]-w) > 1e-12 {
			t.Errorf("completion %d at %v, want %v", i, done[i], w)
		}
	}
	if r.Served() != 3 {
		t.Errorf("Served = %d", r.Served())
	}
	// Mean wait of (0 + 2 + 4)/3 = 2.
	if math.Abs(r.MeanWait()-2) > 1e-12 {
		t.Errorf("MeanWait = %v", r.MeanWait())
	}
}

func TestResourceParallelServers(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "gpu", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		r.Acquire(3, func() { done = append(done, e.Now()) })
	}
	e.Run(100)
	// Two at t=3, two at t=6.
	if done[0] != 3 || done[1] != 3 || done[2] != 6 || done[3] != 6 {
		t.Errorf("completions = %v", done)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	r.Acquire(4, func() {})
	e.Run(8)
	if u := r.Utilization(); math.Abs(u-0.5) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
	if r.BusyTime() != 4 {
		t.Errorf("BusyTime = %v", r.BusyTime())
	}
}

func TestUtilizationClamped(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "x", 1)
	r.Acquire(100, func() {})
	e.Run(1)
	if u := r.Utilization(); u > 1 {
		t.Errorf("Utilization = %v, must clamp to 1", u)
	}
}

func TestResourceCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewResource(NewEngine(), "bad", 0)
}

// TestMD1QueueWait sanity-checks queueing behavior against the M/D/1
// expectation: with utilization rho, mean wait = rho/(2(1-rho)) * service.
func TestMD1QueueWait(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "q", 1)
	rng := xrand.New(42)
	const service = 1.0
	const rho = 0.7
	n := 20000
	var arrive func()
	count := 0
	arrive = func() {
		r.Acquire(service, func() {})
		count++
		if count < n {
			e.Schedule(rng.Exp(rho/service), arrive)
		}
	}
	e.Schedule(0, arrive)
	e.Run(math.Inf(1))
	want := rho / (2 * (1 - rho)) * service // ≈ 1.1667
	got := r.MeanWait()
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("M/D/1 mean wait = %v, want ≈ %v", got, want)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		e := NewEngine()
		r := NewResource(e, "x", 2)
		rng := xrand.New(7)
		var times []float64
		for i := 0; i < 50; i++ {
			e.Schedule(rng.Float64()*10, func() {
				r.Acquire(rng.Float64(), func() { times = append(times, e.Now()) })
			})
		}
		e.Run(100)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay diverged in count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay diverged")
		}
	}
}

package trace

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/metrics"
)

func traceCfg() core.Config {
	return core.Config{
		Name:          "trace-test",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(6, 5000, 6),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.Concat,
	}
}

func TestCollectorCounts(t *testing.T) {
	cfg := traceCfg()
	c := NewCollector(cfg)
	c.Record(0, 5)
	c.Record(0, 5)
	c.Record(1, 7)
	profs := c.Profiles(10)
	if profs[0].Accesses != 2 || profs[0].UniqueRows != 1 {
		t.Errorf("table0 profile %+v", profs[0])
	}
	if profs[1].Accesses != 1 {
		t.Errorf("table1 profile %+v", profs[1])
	}
	if profs[0].MeanPerExample != 0.2 {
		t.Errorf("mean per example %v", profs[0].MeanPerExample)
	}
	if profs[2].Accesses != 0 || profs[2].Top1PctShare != 0 {
		t.Errorf("untouched table profile %+v", profs[2])
	}
}

func TestRecordBatchAndProfiles(t *testing.T) {
	cfg := traceCfg()
	gen := data.NewGenerator(cfg, 1, data.DefaultOptions())
	c := NewCollector(cfg)
	examples := 0
	for i := 0; i < 20; i++ {
		b := gen.NextBatch(64)
		c.RecordBatch(b)
		examples += 64
	}
	profs := c.Profiles(examples)
	for _, p := range profs {
		if p.Accesses == 0 {
			t.Fatalf("table %d saw no accesses", p.Feature)
		}
		if p.MeanPerExample < 1 || p.MeanPerExample > 32 {
			t.Errorf("table %d mean/example %v", p.Feature, p.MeanPerExample)
		}
		// Zipf-popular rows: top 1% should absorb far more than 1%.
		if p.Top1PctShare < 0.02 {
			t.Errorf("table %d top-1%% share %v; expected locality", p.Feature, p.Top1PctShare)
		}
	}
}

func TestAccessFrequenciesPowerLaw(t *testing.T) {
	// Tables with very different pooled lengths produce a skewed
	// access-frequency series that fits a power law (Fig 7 narrative).
	cfg := traceCfg()
	cfg.Sparse = []core.SparseFeature{
		{Name: "a", HashSize: 1000, MeanPooled: 30, MaxPooled: 32},
		{Name: "b", HashSize: 1000, MeanPooled: 10, MaxPooled: 32},
		{Name: "c", HashSize: 1000, MeanPooled: 3, MaxPooled: 32},
		{Name: "d", HashSize: 1000, MeanPooled: 1, MaxPooled: 32},
	}
	gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
	c := NewCollector(cfg)
	for i := 0; i < 10; i++ {
		c.RecordBatch(gen.NextBatch(64))
	}
	freqs := c.AccessFrequencies()
	if _, ok := metrics.FitPowerLaw(freqs); !ok {
		t.Error("power-law fit failed")
	}
	if freqs[0] <= freqs[3] {
		t.Error("hot feature must out-access cold feature")
	}
}

func TestSizeFrequencyCorrelationWeak(t *testing.T) {
	// Big tables accessed rarely, small tables accessed often: negative
	// or weak correlation, echoing §III-A2.
	cfg := traceCfg()
	cfg.Sparse = []core.SparseFeature{
		{Name: "small-hot", HashSize: 100, MeanPooled: 20, MaxPooled: 32},
		{Name: "big-cold", HashSize: 1_000_000, MeanPooled: 1, MaxPooled: 32},
		{Name: "mid", HashSize: 10_000, MeanPooled: 5, MaxPooled: 32},
	}
	c := NewCollector(cfg)
	gen := data.NewGenerator(cfg, 3, data.DefaultOptions())
	for i := 0; i < 10; i++ {
		c.RecordBatch(gen.NextBatch(64))
	}
	if corr := c.SizeFrequencyCorrelation(); corr > 0.5 {
		t.Errorf("size-frequency correlation %v; paper observes weak/none", corr)
	}
}

func TestRowFrequenciesSortedAndAligned(t *testing.T) {
	cfg := traceCfg()
	c := NewCollector(cfg)
	c.Record(0, 5)
	c.Record(0, 5)
	c.Record(0, 9)
	c.Record(2, 1)
	freqs := c.RowFrequencies()
	if len(freqs) != cfg.NumSparse() {
		t.Fatalf("profile length %d", len(freqs))
	}
	if len(freqs[0]) != 2 || freqs[0][0] != 2 || freqs[0][1] != 1 {
		t.Errorf("table0 frequencies %v, want [2 1]", freqs[0])
	}
	if len(freqs[1]) != 0 || len(freqs[2]) != 1 {
		t.Errorf("tables 1/2 frequencies %v / %v", freqs[1], freqs[2])
	}
}

func TestLRUBasics(t *testing.T) {
	lru := NewLRU(2)
	if lru.Access(0, 1) {
		t.Error("first access must miss")
	}
	if !lru.Access(0, 1) {
		t.Error("repeat access must hit")
	}
	lru.Access(0, 2)
	lru.Access(0, 3) // evicts (0,1)
	if lru.Access(0, 1) {
		t.Error("evicted entry must miss")
	}
	if lru.Len() != 2 {
		t.Errorf("Len = %d", lru.Len())
	}
	if hr := lru.HitRate(); math.Abs(hr-0.2) > 1e-9 {
		t.Errorf("HitRate = %v, want 1/5", hr)
	}
}

func TestLRUDistinguishesTables(t *testing.T) {
	lru := NewLRU(10)
	lru.Access(0, 1)
	if lru.Access(1, 1) {
		t.Error("same row in different tables must be distinct keys")
	}
}

func TestLRUPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLRU(0)
}

func TestCacheOpportunityMonotone(t *testing.T) {
	cfg := traceCfg()
	gen := data.NewGenerator(cfg, 4, data.DefaultOptions())
	var batches []*core.MiniBatch
	for i := 0; i < 10; i++ {
		batches = append(batches, gen.NextBatch(64))
	}
	caps := []int{10, 100, 1000, 10000}
	rates := CacheOpportunity(batches, caps)
	for i := 1; i < len(rates); i++ {
		if rates[i]+1e-9 < rates[i-1] {
			t.Errorf("hit rate must not fall with capacity: %v", rates)
		}
	}
	// Zipf access gives a sizeable hit rate even with a modest cache.
	if rates[len(rates)-1] < 0.3 {
		t.Errorf("large-cache hit rate %v; expected Zipf locality", rates[len(rates)-1])
	}
}

func TestEmptyHitRate(t *testing.T) {
	if NewLRU(4).HitRate() != 0 {
		t.Error("empty cache hit rate should be 0")
	}
}

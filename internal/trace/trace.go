// Package trace captures and characterizes embedding-table access
// patterns — the paper's §III-A2 analysis (Fig 6, Fig 7): per-table
// access frequencies follow a power law, frequency does not correlate
// with table size, and the skew creates caching opportunities.
//
// It also provides an LRU cache simulator (backed by the memtier
// package's policy implementations) to quantify that caching opportunity
// on recorded traces, and exports row-frequency profiles the memtier
// planner consumes for trace-driven tier assignment.
package trace

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/memtier"
)

// Collector counts per-row accesses per table.
type Collector struct {
	cfg    core.Config
	counts []map[int32]uint64
	totals []uint64
}

// NewCollector prepares a collector for the config's tables.
func NewCollector(cfg core.Config) *Collector {
	c := &Collector{cfg: cfg}
	c.counts = make([]map[int32]uint64, cfg.NumSparse())
	c.totals = make([]uint64, cfg.NumSparse())
	for i := range c.counts {
		c.counts[i] = make(map[int32]uint64)
	}
	return c
}

// Record notes one access to table feature at row ix.
func (c *Collector) Record(feature int, ix int32) {
	c.counts[feature][ix]++
	c.totals[feature]++
}

// RecordBatch ingests every lookup in the batch.
func (c *Collector) RecordBatch(b *core.MiniBatch) {
	for f, bag := range b.Bags {
		for _, ix := range bag.Indices {
			c.Record(f, ix)
		}
	}
}

// TableProfile summarizes one table's observed accesses.
type TableProfile struct {
	Feature    int
	Name       string
	HashSize   int
	Bytes      int64
	Accesses   uint64
	UniqueRows int
	// Top1PctShare is the fraction of accesses absorbed by the most
	// popular 1% of touched rows — the locality that makes caching
	// (§III-A2) attractive.
	Top1PctShare float64
	// MeanPerExample is the observed mean pooled length.
	MeanPerExample float64
}

// Profiles computes per-table summaries. examples is the number of
// training examples ingested.
func (c *Collector) Profiles(examples int) []TableProfile {
	out := make([]TableProfile, c.cfg.NumSparse())
	for f := range out {
		p := TableProfile{
			Feature:  f,
			Name:     c.cfg.Sparse[f].Name,
			HashSize: c.cfg.Sparse[f].HashSize,
			Bytes:    int64(c.cfg.Sparse[f].HashSize) * int64(c.cfg.EmbeddingDim) * 4,
			Accesses: c.totals[f],
		}
		p.UniqueRows = len(c.counts[f])
		if examples > 0 {
			p.MeanPerExample = float64(c.totals[f]) / float64(examples)
		}
		if p.UniqueRows > 0 && p.Accesses > 0 {
			freqs := make([]uint64, 0, p.UniqueRows)
			for _, n := range c.counts[f] {
				freqs = append(freqs, n)
			}
			sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
			top := p.UniqueRows / 100
			if top < 1 {
				top = 1
			}
			var sum uint64
			for _, n := range freqs[:top] {
				sum += n
			}
			p.Top1PctShare = float64(sum) / float64(p.Accesses)
		}
		out[f] = p
	}
	return out
}

// AccessFrequencies returns total accesses per table, the series whose
// rank-frequency shape the paper describes as a power law.
func (c *Collector) AccessFrequencies() []float64 {
	out := make([]float64, len(c.totals))
	for i, n := range c.totals {
		out[i] = float64(n)
	}
	return out
}

// SizeFrequencyCorrelation returns the Pearson correlation between table
// size and access count; the paper observes it is weak ("the access
// frequency does not always correlate with the embedding table size").
func (c *Collector) SizeFrequencyCorrelation() float64 {
	n := len(c.totals)
	if n < 2 {
		return 0
	}
	var mx, my float64
	for f := 0; f < n; f++ {
		mx += float64(c.cfg.Sparse[f].HashSize)
		my += float64(c.totals[f])
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for f := 0; f < n; f++ {
		dx := float64(c.cfg.Sparse[f].HashSize) - mx
		dy := float64(c.totals[f]) - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / (math.Sqrt(sxx) * math.Sqrt(syy))
}

// RowFrequencies exports per-table row access counts sorted descending —
// the profile memtier.Assign and memtier.EstimateHitRate consume for
// trace-driven tier assignment. The outer slice is index-aligned with the
// config's sparse features; untouched tables yield empty slices.
func (c *Collector) RowFrequencies() [][]uint64 {
	out := make([][]uint64, len(c.counts))
	for f, m := range c.counts {
		freqs := make([]uint64, 0, len(m))
		for _, n := range m {
			freqs = append(freqs, n)
		}
		sort.Slice(freqs, func(i, j int) bool { return freqs[i] > freqs[j] })
		out[f] = freqs
	}
	return out
}

// LRU is a fixed-capacity least-recently-used cache over (table, row)
// keys, used to estimate the hit rate a row cache would achieve on a
// recorded access stream. It is a thin (feature, row)-keyed wrapper over
// memtier.LRU; use the memtier package directly for other eviction
// policies (LFU, CLOCK).
type LRU struct {
	p *memtier.LRU
}

// NewLRU creates a cache holding capacity rows.
func NewLRU(capacity int) *LRU {
	return &LRU{p: memtier.NewLRU(capacity)}
}

// Access touches (feature, ix) and reports whether it hit.
func (c *LRU) Access(feature int, ix int32) bool {
	return c.p.Access(memtier.Key(feature, ix))
}

// HitRate returns hits / (hits + misses).
func (c *LRU) HitRate() float64 { return memtier.HitRate(c.p) }

// Len returns the number of cached rows.
func (c *LRU) Len() int { return c.p.Len() }

// CacheOpportunity replays the batches through LRU caches of the given
// row capacities and returns the hit rate per capacity — the §III-A2
// caching-opportunity curve. memtier.OpportunityCurve generalizes this
// over eviction policies.
func CacheOpportunity(batches []*core.MiniBatch, capacities []int) []float64 {
	out, err := memtier.OpportunityCurve("lru", batches, capacities)
	if err != nil {
		panic(err) // unreachable: "lru" is always registered
	}
	return out
}

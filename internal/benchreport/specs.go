package benchreport

import (
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/embedding"
	"repro/internal/hybrid"
	"repro/internal/ingest"
	"repro/internal/nn"
	"repro/internal/telemetry"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// benchBatch is the mini-batch size of the train-step benchmark (matches
// BenchmarkTrainStep in the repository root).
const benchBatch = 128

// BenchStepConfig is the mid-size DLRM shared by every train-step
// measurement in the repository — the root BenchmarkTrainStep and
// TestTrainStepZeroAlloc reference it too, so the committed BENCH reports
// stay comparable with `go test -bench`.
func BenchStepConfig() core.Config {
	return core.Config{
		Name:          "benchrun",
		DenseFeatures: 64,
		Sparse:        core.UniformSparse(8, 10000, 5),
		EmbeddingDim:  32,
		BottomMLP:     []int{128},
		TopMLP:        []int{128, 64},
		Interaction:   core.DotProduct,
	}
}

// UnfusedDenseLayer runs the pre-fusion dense-layer forward sequence
// (matmul, then bias and ReLU passes) — the ablation counterpart of
// tensor.MatMulBiasReLU, shared with the root benchmarks.
func UnfusedDenseLayer(y, x, w *tensor.Matrix, bias []float32) {
	tensor.MatMul(y, x, w)
	for r := 0; r < y.Rows; r++ {
		row := y.Row(r)
		tensor.AddTo(row, bias)
		for j, v := range row {
			if v < 0 {
				row[j] = 0
			}
		}
	}
}

// DefaultSpecs returns the standard benchmark set: the end-to-end
// training step, the kernel ablations behind the named speedups, the
// sparse-side primitives, and the batch-generation path. A non-empty
// filter skips non-matching specs before their fixtures are built, so
// filtered runs construct only what they measure.
func DefaultSpecs(filter string) []Spec {
	var specs []Spec
	want := func(names ...string) bool {
		if filter == "" {
			return true
		}
		for _, n := range names {
			if strings.Contains(n, filter) {
				return true
			}
		}
		return false
	}

	// End-to-end training step (fused kernels, zero steady-state allocs).
	if want("train_step") {
		cfg := BenchStepConfig()
		m := core.NewModel(cfg, xrand.New(1))
		tr := core.NewTrainer(m, core.TrainerConfig{LR: 0.05})
		gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
		batch := gen.NextBatch(benchBatch)
		specs = append(specs, Spec{
			Name:          "train_step",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					tr.Step(batch)
				}
			},
		})
	}

	// The same training step with full span tracing AND flight recording
	// on: every phase of every step lands in a slab-backed ring, and the
	// recorder samples the step (meter/histogram deltas, detector
	// update) into its time-series ring. The telemetry_overhead speedup
	// (traced+recorded ns / untraced ns) is the whole observability
	// stack's cost — the acceptance bound is < 3%.
	if want("train_step_traced") {
		cfg := BenchStepConfig()
		m := core.NewModel(cfg, xrand.New(1))
		tr := core.NewTrainer(m, core.TrainerConfig{LR: 0.05})
		trace := telemetry.NewTracer(1, 4096)
		tr.SetTrace(trace, 0)
		fr, err := telemetry.OpenFlightRecorder(telemetry.FlightRecorderConfig{
			Tracer: trace, Registry: telemetry.NewRegistry(),
		})
		if err != nil {
			panic(err)
		}
		tr.SetRecorder(fr)
		gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
		batch := gen.NextBatch(benchBatch)
		specs = append(specs, Spec{
			Name:          "train_step_traced",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					tr.Step(batch)
				}
			},
		})
	}

	// End-to-end synchronous hybrid-parallel step on 2 in-process ranks
	// (BenchmarkHybridStep in the repository root measures the same
	// setup): model-parallel lookups, pooled all-to-all, data-parallel
	// dense pass, bucketed all-reduce, sparse scatter.
	if want("hybrid_step") {
		cfg := BenchStepConfig()
		gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
		batch := gen.NextBatch(benchBatch)
		// The trainer (and its rank goroutines) starts lazily on first
		// use and lives for the process, like the tensor worker pool —
		// building specs must not spawn goroutines the caller never runs.
		var ht *hybrid.Trainer
		specs = append(specs, Spec{
			Name:          "hybrid_step",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				if ht == nil {
					var err error
					if ht, err = hybrid.New(cfg, hybrid.Config{Ranks: 2, LR: 0.05, Seed: 1}); err != nil {
						panic(err)
					}
				}
				for i := 0; i < iters; i++ {
					ht.Step(batch)
				}
			},
		})
	}

	// Hybrid step with tracing and flight recording on across both rank
	// shards plus the overlapped all-reduce shards — the multi-writer
	// overhead companion to train_step_traced.
	if want("hybrid_step_traced") {
		cfg := BenchStepConfig()
		gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
		batch := gen.NextBatch(benchBatch)
		var ht *hybrid.Trainer
		specs = append(specs, Spec{
			Name:          "hybrid_step_traced",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				if ht == nil {
					hc := hybrid.Config{Ranks: 2, LR: 0.05, Seed: 1}
					hc.Trace = telemetry.NewTracer(hc.ShardCount(), 4096)
					hc.Registry = telemetry.NewRegistry()
					fr, err := telemetry.OpenFlightRecorder(telemetry.FlightRecorderConfig{
						Tracer: hc.Trace, Registry: hc.Registry, Ranks: hc.Ranks,
					})
					if err != nil {
						panic(err)
					}
					hc.Recorder = fr
					if ht, err = hybrid.New(cfg, hc); err != nil {
						panic(err)
					}
				}
				for i := 0; i < iters; i++ {
					ht.Step(batch)
				}
			},
		})
	}

	// Mixed-precision hybrid step: same model and batch as hybrid_step
	// but with bf16 embedding tables (fp32 masters, split-SGD) and
	// bf16-compressed collective wires on both the pooled all-to-all and
	// the dense all-reduce — the cheapest codec (two integer ops per
	// element), halving every wire payload. Paired with hybrid_step in
	// the hybrid_bf16_vs_fp32 speedup; the mixed_precision experiment
	// validates the recipe's quality.
	if want("hybrid_step_bf16") {
		cfg := BenchStepConfig()
		cfg.TableDType = tensor.BF16
		gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
		batch := gen.NextBatch(benchBatch)
		var ht *hybrid.Trainer
		specs = append(specs, Spec{
			Name:          "hybrid_step_bf16",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				if ht == nil {
					var err error
					if ht, err = hybrid.New(cfg, hybrid.Config{
						Ranks: 2, LR: 0.05, Seed: 1,
						WireA2A:       collective.WireBF16,
						WireAllReduce: collective.WireBF16,
					}); err != nil {
						panic(err)
					}
				}
				for i := 0; i < iters; i++ {
					ht.Step(batch)
				}
			},
		})
	}

	// Pooled-embedding exchange in isolation: a 2-rank AllToAllV over a
	// hybrid_step-sized payload, fp32 wire vs int8-compressed wire. The
	// a2a_int8_vs_fp32 speedup isolates what the per-chunk-scaled codec
	// buys (and costs) on the wire path alone.
	for _, v := range []struct {
		name string
		wire collective.WireFormat
	}{
		{"a2a_fp32_wire", collective.WireFP32},
		{"a2a_int8_wire", collective.WireINT8},
	} {
		if !want(v.name) {
			continue
		}
		wire := v.wire
		// Per direction: the pooled rows hybrid_step exchanges each
		// iteration (batch · tables · dim elements, split across peers).
		const elems = benchBatch * 8 * 32
		world := collective.NewWorld(2, collective.PerfectLink())
		groups := make([]*collective.Group, 2)
		send := make([][][]float32, 2)
		recv := make([][][]float32, 2)
		g := world.NewGroup()
		g.SetWire(wire)
		rng := xrand.New(7)
		for r := 0; r < 2; r++ {
			groups[r] = g
			send[r] = [][]float32{make([]float32, elems/2), make([]float32, elems/2)}
			recv[r] = [][]float32{make([]float32, elems/2), make([]float32, elems/2)}
			for _, s := range send[r] {
				for i := range s {
					s[i] = float32(rng.Norm())
				}
			}
		}
		specs = append(specs, Spec{
			Name:          v.name,
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				var wg sync.WaitGroup
				for r := 0; r < 2; r++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						for i := 0; i < iters; i++ {
							if err := groups[rank].AllToAllV(rank, send[rank], recv[rank]); err != nil {
								panic(err)
							}
						}
					}(r)
				}
				wg.Wait()
			},
		})
	}

	// End-to-end ingestion-fed training step: the staged on-disk reader
	// pipeline (2 decoders, RecD dedup) feeding the single-process
	// trainer, measuring the full NextBatch → Step → Recycle cycle
	// (BenchmarkIngestStep in the repository root measures the same
	// setup). The dataset materializes lazily into a temp dir on first
	// use so building specs does no IO.
	if want("ingest_step") {
		cfg := BenchStepConfig()
		var tr *core.Trainer
		var pipe *ingest.Pipeline
		specs = append(specs, Spec{
			Name:          "ingest_step",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				if pipe == nil {
					// One stable, deterministic dataset dir per machine,
					// reused across benchrun invocations (the writer's
					// equal-seed determinism makes any existing copy
					// identical) so repeated runs never accumulate /tmp
					// litter.
					dir := filepath.Join(os.TempDir(), "repro-ingest-step-bench")
					if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
						if err := os.RemoveAll(dir); err != nil {
							panic(err)
						}
						gen := data.NewGenerator(cfg, 9, data.DefaultOptions())
						if err := gen.WriteShards(dir, 4, 4*benchBatch); err != nil {
							panic(err)
						}
					}
					ds, err := ingest.OpenDataset(dir)
					if err != nil {
						panic(err)
					}
					if pipe, err = ingest.Open(ds, cfg, ingest.Options{
						BatchSize: benchBatch, Readers: 2, Dedup: true, Seed: 1,
					}); err != nil {
						panic(err)
					}
					tr = core.NewTrainer(core.NewModel(cfg, xrand.New(1)), core.TrainerConfig{LR: 0.05})
				}
				if _, _, err := tr.TrainFrom(pipe, iters); err != nil {
					panic(err)
				}
			},
		})
	}

	// GEMM: tiled/register-blocked production kernel vs the naive
	// three-loop reference.
	if want("gemm/tiled_256", "gemm/naive_256") {
		rng := xrand.New(3)
		a, b, dst := tensor.New(256, 256), tensor.New(256, 256), tensor.New(256, 256)
		tensor.NormalInit(a, 1, rng)
		tensor.NormalInit(b, 1, rng)
		specs = append(specs, Spec{
			Name: "gemm/tiled_256",
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					tensor.MatMul(dst, a, b)
				}
			},
		}, Spec{
			Name: "gemm/naive_256",
			Fn: func(iters int) {
				for it := 0; it < iters; it++ {
					for r := 0; r < 256; r++ {
						for c := 0; c < 256; c++ {
							var s float32
							for k := 0; k < 256; k++ {
								s += a.At(r, k) * b.At(k, c)
							}
							dst.Set(r, c, s)
						}
					}
				}
			},
		})
	}

	// Dense layer forward: fused matmul+bias+ReLU vs the three-pass
	// unfused sequence it replaced.
	if want("dense_layer/fused", "dense_layer/unfused") {
		rng := xrand.New(4)
		x, w, y := tensor.New(benchBatch, 256), tensor.New(256, 128), tensor.New(benchBatch, 128)
		bias := make([]float32, 128)
		tensor.NormalInit(x, 1, rng)
		tensor.NormalInit(w, 0.1, rng)
		specs = append(specs, Spec{
			Name: "dense_layer/fused",
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					tensor.MatMulBiasReLU(y, x, w, bias, true)
				}
			},
		}, Spec{
			Name: "dense_layer/unfused",
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					UnfusedDenseLayer(y, x, w, bias)
				}
			},
		})
	}

	// Sparse side: pooled bag lookup + gradient scatter, and the hashing
	// trick.
	if want("embedding/bag_forward", "embedding/bag_backward", "embedding/hash_index") {
		cfg := BenchStepConfig()
		rng := xrand.New(5)
		tab := embedding.NewTable("bench", cfg.Sparse[0].HashSize, cfg.EmbeddingDim, rng)
		gen := data.NewGenerator(cfg, 6, data.DefaultOptions())
		batch := gen.NextBatch(benchBatch)
		bag := batch.Bags[0]
		out := tensor.New(benchBatch, cfg.EmbeddingDim)
		dOut := tensor.New(benchBatch, cfg.EmbeddingDim)
		tensor.NormalInit(dOut, 1, rng)
		sc := embedding.NewScratch()
		sg := embedding.NewSparseGrad(cfg.EmbeddingDim)
		specs = append(specs, Spec{
			Name:          "embedding/bag_forward",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					tab.BagForwardInto(bag, out, sc)
				}
			},
		}, Spec{
			Name:          "embedding/bag_backward",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					sg.Reset()
					tab.BagBackward(bag, dOut, sg)
				}
			},
		}, Spec{
			Name:          "embedding/hash_index",
			ExamplesPerOp: 1024,
			Fn: func(iters int) {
				var sink int32
				for i := 0; i < iters; i++ {
					for id := uint64(0); id < 1024; id++ {
						sink = tab.HashIndex(id*2654435761 + uint64(i))
					}
				}
				_ = sink
			},
		})
	}

	// Data path: recycled NextBatchInto vs per-call allocation.
	if want("data/next_batch_into", "data/next_batch") {
		cfg := BenchStepConfig()
		genInto := data.NewGenerator(cfg, 7, data.DefaultOptions())
		genFresh := data.NewGenerator(cfg, 7, data.DefaultOptions())
		var mb *core.MiniBatch
		specs = append(specs, Spec{
			Name:          "data/next_batch_into",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					mb = genInto.NextBatchInto(benchBatch, mb)
				}
			},
		}, Spec{
			Name:          "data/next_batch",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					_ = genFresh.NextBatch(benchBatch)
				}
			},
		})
	}

	// Checkpoint stall: full snapshot vs incremental delta of the same
	// trained state — the pause a training loop pays at a save point
	// (BenchmarkCkptSnapshot in the repository root measures the same
	// pair). Each iteration deletes the previous checkpoint after the new
	// one lands (retain-newest policy), so the store directory stays
	// small and the measured cost is one encode+hash+write cycle. The
	// delta carries exactly the rows one training step touches.
	if want("ckpt_snapshot/full", "ckpt_snapshot/delta") {
		cfg := BenchStepConfig()
		tr := core.NewTrainer(core.NewModel(cfg, xrand.New(1)), core.TrainerConfig{LR: 0.05})
		gen := data.NewGenerator(cfg, 2, data.DefaultOptions())
		tr.Step(gen.NextBatch(benchBatch))
		touched := make([][]int32, 0, len(tr.DirtyRows()))
		for _, d := range tr.DirtyRows() {
			ids := make([]int32, 0, d.Count())
			d.ForEach(func(r int32) { ids = append(ids, r) })
			touched = append(touched, ids)
		}
		st := tr.CkptState()
		dirty := tr.DirtyRows()
		openBenchStore := func(kind string) *ckpt.Store {
			dir := filepath.Join(os.TempDir(), "repro-ckpt-bench-"+kind)
			if err := os.RemoveAll(dir); err != nil {
				panic(err)
			}
			store, err := ckpt.OpenStore(dir)
			if err != nil {
				panic(err)
			}
			return store
		}
		var fullStore, deltaStore *ckpt.Store
		var fullPrev, deltaPrev string
		specs = append(specs, Spec{
			Name: "ckpt_snapshot/full",
			Fn: func(iters int) {
				if fullStore == nil {
					fullStore = openBenchStore("full")
				}
				for i := 0; i < iters; i++ {
					st.Step++
					info, err := fullStore.SaveFull(st, nil)
					if err != nil {
						panic(err)
					}
					if fullPrev != "" {
						if err := os.RemoveAll(filepath.Join(os.TempDir(), "repro-ckpt-bench-full", fullPrev)); err != nil {
							panic(err)
						}
					}
					fullPrev = info.Name
				}
			},
		}, Spec{
			Name: "ckpt_snapshot/delta",
			Fn: func(iters int) {
				if deltaStore == nil {
					deltaStore = openBenchStore("delta")
					st.Step++
					if _, err := deltaStore.SaveFull(st, dirty); err != nil {
						panic(err)
					}
				}
				for i := 0; i < iters; i++ {
					for ti, ids := range touched {
						dirty[ti].Mark(ids)
					}
					st.Step++
					info, err := deltaStore.SaveDelta(st, dirty)
					if err != nil {
						panic(err)
					}
					if deltaPrev != "" {
						if err := os.RemoveAll(filepath.Join(os.TempDir(), "repro-ckpt-bench-delta", deltaPrev)); err != nil {
							panic(err)
						}
					}
					deltaPrev = info.Name
				}
			},
		})
	}

	// Loss micro-kernel rounds out the step profile.
	if want("loss/bce_with_logits") {
		logits := make([]float32, benchBatch)
		labels := make([]float32, benchBatch)
		grad := make([]float32, benchBatch)
		rng := xrand.New(8)
		for i := range logits {
			logits[i] = float32(rng.Norm())
			if rng.Float32() < 0.25 {
				labels[i] = 1
			}
		}
		specs = append(specs, Spec{
			Name:          "loss/bce_with_logits",
			ExamplesPerOp: benchBatch,
			Fn: func(iters int) {
				for i := 0; i < iters; i++ {
					nn.BCEWithLogits(logits, labels, grad)
				}
			},
		})
	}

	// Fixture blocks are shared, so a matching block may carry sibling
	// specs the filter does not name; drop those here.
	if filter != "" {
		kept := specs[:0]
		for _, s := range specs {
			if strings.Contains(s.Name, filter) {
				kept = append(kept, s)
			}
		}
		specs = kept
	}
	return specs
}

package benchreport

import (
	"strings"
	"testing"
)

func diffReport(results ...Result) Report {
	return Report{Timestamp: "t", Benchmarks: results}
}

func entryByName(t *testing.T, d Diff, name string) DiffEntry {
	t.Helper()
	for _, e := range d.Entries {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("no diff entry %q", name)
	return DiffEntry{}
}

func TestCompareWithinTolerance(t *testing.T) {
	old := diffReport(
		Result{Name: "train_step", NsPerOp: 1e6, ExamplesPerSec: 128000, AllocsPerOp: 0},
		Result{Name: "gemm", NsPerOp: 40000, AllocsPerOp: 0},
	)
	new := diffReport(
		Result{Name: "train_step", NsPerOp: 1.05e6, ExamplesPerSec: 121000, AllocsPerOp: 0}, // -5.5% ex/s: noise
		Result{Name: "gemm", NsPerOp: 44000, AllocsPerOp: 0},                                // +10% ns: noise
	)
	d := Compare(old, new, DefaultTolerance())
	if d.Regressed() {
		t.Fatalf("drift within tolerance flagged as regression: %v", d.Regressions)
	}
}

func TestCompareThroughputRegression(t *testing.T) {
	old := diffReport(Result{Name: "train_step", NsPerOp: 1e6, ExamplesPerSec: 128000})
	new := diffReport(Result{Name: "train_step", NsPerOp: 1.18e6, ExamplesPerSec: 108800}) // -15%
	d := Compare(old, new, DefaultTolerance())
	if !d.Regressed() {
		t.Fatal("15% examples/sec drop not flagged (gate bound is 10%)")
	}
	e := entryByName(t, d, "train_step")
	if e.Status != "REGRESSED" || !strings.Contains(e.Reason, "examples/sec") {
		t.Fatalf("entry = %+v, want REGRESSED on examples/sec", e)
	}
}

func TestCompareNsRegressionWithoutThroughput(t *testing.T) {
	old := diffReport(Result{Name: "emb_lookup", NsPerOp: 50000})
	new := diffReport(Result{Name: "emb_lookup", NsPerOp: 60000}) // +20%
	d := Compare(old, new, DefaultTolerance())
	if !d.Regressed() {
		t.Fatal("20% ns/op slowdown not flagged (gate bound is 15%)")
	}
}

func TestCompareNoiseFloorInfoOnly(t *testing.T) {
	// Micro-kernels under the noise floor are reported but never gated,
	// however bad the ratio looks.
	old := diffReport(Result{Name: "tiny_kernel", NsPerOp: 80})
	new := diffReport(Result{Name: "tiny_kernel", NsPerOp: 240})
	d := Compare(old, new, DefaultTolerance())
	if d.Regressed() {
		t.Fatalf("sub-floor benchmark gated: %v", d.Regressions)
	}
	if e := entryByName(t, d, "tiny_kernel"); e.Status != "info" {
		t.Fatalf("status %q, want info", e.Status)
	}
}

func TestCompareZeroAllocContractExact(t *testing.T) {
	// A benchmark that was allocation-free must stay so: one new
	// alloc/op fails even though it is far below the absolute slack.
	old := diffReport(Result{Name: "hybrid_step", NsPerOp: 2e6, ExamplesPerSec: 60000, AllocsPerOp: 0})
	new := diffReport(Result{Name: "hybrid_step", NsPerOp: 2e6, ExamplesPerSec: 60000, AllocsPerOp: 1})
	d := Compare(old, new, DefaultTolerance())
	if !d.Regressed() {
		t.Fatal("broken zero-alloc contract not flagged")
	}
	// Already-allocating benchmarks get the absolute slack instead.
	old = diffReport(Result{Name: "ingest_step", NsPerOp: 2e6, ExamplesPerSec: 60000, AllocsPerOp: 8})
	new = diffReport(Result{Name: "ingest_step", NsPerOp: 2e6, ExamplesPerSec: 60000, AllocsPerOp: 12})
	if d := Compare(old, new, DefaultTolerance()); d.Regressed() {
		t.Fatalf("allocs within slack gated: %v", d.Regressions)
	}
	new.Benchmarks[0].AllocsPerOp = 30
	if d := Compare(old, new, DefaultTolerance()); !d.Regressed() {
		t.Fatal("allocs past slack not flagged")
	}
}

func TestCompareNewAndRemovedNotGated(t *testing.T) {
	old := diffReport(
		Result{Name: "kept", NsPerOp: 1e5, ExamplesPerSec: 1000},
		Result{Name: "dropped", NsPerOp: 1e5},
	)
	new := diffReport(
		Result{Name: "kept", NsPerOp: 1e5, ExamplesPerSec: 1000},
		Result{Name: "added", NsPerOp: 1e5},
	)
	d := Compare(old, new, DefaultTolerance())
	if d.Regressed() {
		t.Fatalf("spec churn gated: %v", d.Regressions)
	}
	if e := entryByName(t, d, "added"); e.Status != "new" {
		t.Fatalf("added status %q, want new", e.Status)
	}
	if e := entryByName(t, d, "dropped"); e.Status != "removed" {
		t.Fatalf("dropped status %q, want removed", e.Status)
	}
}

func TestCompareImprovement(t *testing.T) {
	old := diffReport(Result{Name: "train_step", NsPerOp: 1e6, ExamplesPerSec: 100000})
	new := diffReport(Result{Name: "train_step", NsPerOp: 8e5, ExamplesPerSec: 125000})
	d := Compare(old, new, DefaultTolerance())
	if e := entryByName(t, d, "train_step"); e.Status != "improved" {
		t.Fatalf("status %q, want improved", e.Status)
	}
	if !strings.Contains(d.Render(), "no regressions past tolerance") {
		t.Fatal("render missing the all-clear line")
	}
}

// Package benchreport runs the repository's performance benchmarks
// programmatically and renders machine-readable reports
// (BENCH_<timestamp>.json) so the perf trajectory of the training hot
// path is measured, committed, and comparable across PRs.
//
// The harness is self-contained (no testing.Benchmark dependency) so the
// per-benchmark measurement time is controllable: the CI smoke mode runs
// every benchmark in tens of milliseconds, while the default mode spends
// about a second per entry for stable numbers. Paired naive/optimized
// specs (tiled vs naive GEMM, fused vs unfused dense layer, recycled vs
// fresh batches) are reduced to named speedups in the report.
package benchreport

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Spec is one benchmark: Fn must execute iters iterations of the
// measured operation.
type Spec struct {
	Name          string
	ExamplesPerOp int // >0: report examples/sec using this per-op count
	Fn            func(iters int)
}

// Result is one measured benchmark.
type Result struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	ExamplesPerSec float64 `json:"examples_per_sec,omitempty"`
}

// Report is the full benchmark run, serialized as BENCH_<timestamp>.json.
type Report struct {
	SchemaVersion int                `json:"schema_version"`
	Timestamp     string             `json:"timestamp"`
	GoVersion     string             `json:"go_version"`
	GOOS          string             `json:"goos"`
	GOARCH        string             `json:"goarch"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	NumCPU        int                `json:"num_cpu"`
	Benchmarks    []Result           `json:"benchmarks"`
	Speedups      map[string]float64 `json:"speedups,omitempty"`
	// Baseline carries reference numbers from a prior report (or a
	// recorded pre-optimization run) keyed by benchmark name; Speedups
	// gains "<name>_vs_baseline" entries for every matching benchmark.
	Baseline map[string]float64 `json:"baseline_ns_per_op,omitempty"`
	Notes    string             `json:"notes,omitempty"`
}

// Options tunes a run.
type Options struct {
	// MinTime is the per-benchmark measurement floor (default 1s;
	// quick/smoke runs use a few tens of ms).
	MinTime time.Duration
	// Filter, when non-empty, selects only specs whose name contains it.
	Filter string
	// AfterEach, when non-nil, is called with each spec's name as its
	// measurement finishes (progress metering for long runs).
	AfterEach func(name string)
}

// speedupPairs names the ablation ratios derived from paired specs:
// speedup = ns/op(denominator spec) / ns/op(numerator spec).
var speedupPairs = []struct{ key, fast, slow string }{
	{"gemm_tiled_vs_naive", "gemm/tiled_256", "gemm/naive_256"},
	{"dense_layer_fused_vs_unfused", "dense_layer/fused", "dense_layer/unfused"},
	{"next_batch_into_vs_fresh", "data/next_batch_into", "data/next_batch"},
	// Incremental checkpoint vs full snapshot: the stall reduction the
	// SparseGrad-driven delta path buys at a save point.
	{"ckpt_delta_vs_full", "ckpt_snapshot/delta", "ckpt_snapshot/full"},
	// Inverted pairs (ratio ~1.0): the traced step over the untraced
	// step, i.e. the span tracer's whole-step overhead. Acceptance: the
	// ratio stays below 1.03 (tracing costs < 3%).
	{"telemetry_overhead_single", "train_step", "train_step_traced"},
	{"telemetry_overhead_hybrid", "hybrid_step", "hybrid_step_traced"},
	// Mixed precision: the bf16-table + compressed-wire step over the
	// fp32 step, and the int8-compressed pooled exchange over the fp32
	// exchange on the same payload.
	{"hybrid_bf16_vs_fp32", "hybrid_step_bf16", "hybrid_step"},
	{"a2a_int8_vs_fp32", "a2a_int8_wire", "a2a_fp32_wire"},
}

// Run measures every spec and assembles the report.
func Run(specs []Spec, opts Options) Report {
	if opts.MinTime <= 0 {
		opts.MinTime = time.Second
	}
	rep := Report{
		SchemaVersion: 1,
		Timestamp:     time.Now().UTC().Format("2006-01-02T15:04:05Z"),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Speedups:      map[string]float64{},
	}
	type pending struct {
		spec Spec
		res  Result
		best time.Duration
	}
	var runs []pending
	for _, s := range specs {
		if opts.Filter != "" && !strings.Contains(s.Name, opts.Filter) {
			continue
		}
		res, elapsed := calibrate(s, opts.MinTime)
		runs = append(runs, pending{spec: s, res: res, best: elapsed})
		if opts.AfterEach != nil {
			opts.AfterEach(s.Name)
		}
	}
	// The remaining timed windows run round-robin across all specs, so
	// slow environmental drift (thermal throttling, noisy neighbors on a
	// shared VM) lands on every spec roughly equally instead of biasing
	// whichever spec happened to run later. The speedup pairs — ratios of
	// two specs' ns/op — depend on this: measured back-to-back, a few
	// percent of drift reads as a few percent of fake (anti-)speedup.
	for w := 1; w < measureWindows; w++ {
		for i := range runs {
			start := time.Now()
			runs[i].spec.Fn(runs[i].res.Iterations)
			if e := time.Since(start); e < runs[i].best {
				runs[i].best = e
			}
		}
	}
	byName := map[string]Result{}
	for i := range runs {
		r := runs[i].res
		r.NsPerOp = float64(runs[i].best.Nanoseconds()) / float64(r.Iterations)
		if runs[i].spec.ExamplesPerOp > 0 && runs[i].best > 0 {
			r.ExamplesPerSec = float64(runs[i].spec.ExamplesPerOp) * float64(r.Iterations) / runs[i].best.Seconds()
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
		byName[r.Name] = r
	}
	for _, p := range speedupPairs {
		fast, okF := byName[p.fast]
		slow, okS := byName[p.slow]
		if okF && okS && fast.NsPerOp > 0 {
			rep.Speedups[p.key] = slow.NsPerOp / fast.NsPerOp
		}
	}
	return rep
}

// ApplyBaseline records reference ns/op numbers (keyed by benchmark
// name) and derives "<name>_vs_baseline" speedups for every benchmark
// present in both.
func (r *Report) ApplyBaseline(baseline map[string]float64, note string) {
	r.Baseline = baseline
	if r.Speedups == nil {
		r.Speedups = map[string]float64{}
	}
	for _, b := range r.Benchmarks {
		if ref, ok := baseline[b.Name]; ok && b.NsPerOp > 0 {
			r.Speedups[b.Name+"_vs_baseline"] = ref / b.NsPerOp
		}
	}
	if note != "" {
		if r.Notes != "" {
			r.Notes += "; "
		}
		r.Notes += note
	}
}

// Filename returns the canonical report file name for the run.
func (r Report) Filename() string {
	ts := r.Timestamp
	clean := make([]rune, 0, len(ts))
	for _, c := range ts {
		switch c {
		case '-', ':':
		default:
			clean = append(clean, c)
		}
	}
	return "BENCH_" + string(clean) + ".json"
}

// WriteJSON serializes the report with stable indentation.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a report produced by WriteJSON.
func ReadJSON(rd io.Reader) (Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return Report{}, fmt.Errorf("benchreport: decoding report: %w", err)
	}
	return r, nil
}

// BaselineNsPerOp extracts the name→ns/op map of a report, for use as a
// later run's baseline.
func (r Report) BaselineNsPerOp() map[string]float64 {
	m := make(map[string]float64, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		m[b.Name] = b.NsPerOp
	}
	return m
}

// measureWindows is how many independent timed windows each spec gets
// (the calibration window plus measureWindows-1 round-robin re-runs in
// Run); the minimum ns/op across them is reported. A single window on a
// loaded (or single-CPU) machine folds scheduler preemption into the
// number — pairs like the telemetry overhead ratios then swing far more
// than the effect being measured. The per-window minimum is the classic
// noise filter: interference only ever adds time.
const measureWindows = 3

// calibrate times one spec's first window: warm up once, then grow the
// iteration count until the measured window crosses minTime (the
// testing-package calibration strategy, reimplemented so MinTime is
// controllable). It returns the Result for that window plus its elapsed
// time; Run re-times the same iteration count more times and keeps the
// fastest window. Allocation counters come from runtime.MemStats deltas
// around the timed window.
func calibrate(s Spec, minTime time.Duration) (Result, time.Duration) {
	s.Fn(1) // warmup: faults pages, sizes lazy buffers, starts pools
	n := 1
	var ms0, ms1 runtime.MemStats
	for {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		s.Fn(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if elapsed >= minTime || n >= 1<<30 {
			res := Result{
				Name:        s.Name,
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
				BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
			}
			if s.ExamplesPerOp > 0 && elapsed > 0 {
				res.ExamplesPerSec = float64(s.ExamplesPerOp) * float64(n) / elapsed.Seconds()
			}
			return res, elapsed
		}
		// Aim 20% past the floor; bound growth like the testing package.
		next := n
		if elapsed > 0 {
			next = int(1.2 * float64(minTime) * float64(n) / float64(elapsed.Nanoseconds()))
		}
		if next <= n {
			next = n + 1
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}

package benchreport

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
)

// Tolerance is the noise policy of the regression gate. The committed
// BENCH files are min-of-three-windows numbers from shared CI VMs, so
// single-digit percent drift between runs is expected; the gate fires
// only past these bounds.
type Tolerance struct {
	// MaxThroughputDropPct fails a benchmark whose examples/sec fell by
	// more than this percentage.
	MaxThroughputDropPct float64
	// MaxSlowdownPct fails a benchmark without an examples/sec figure
	// whose ns/op grew by more than this percentage.
	MaxSlowdownPct float64
	// MinNsPerOp is the noise floor: specs faster than this in the old
	// report are reported but never gated (micro-kernels jitter).
	MinNsPerOp float64
	// MaxAllocIncrease is the absolute allocs/op slack. Independently, a
	// benchmark that was allocation-free (<0.5 allocs/op) and no longer
	// is always fails — zero-alloc budgets are exact contracts here.
	MaxAllocIncrease float64
}

// DefaultTolerance is the CI gate policy: >10% examples/sec regression
// fails (the ISSUE-mandated bound), >15% ns/op slowdown fails for
// non-throughput specs, and zero-alloc contracts are exact.
func DefaultTolerance() Tolerance {
	return Tolerance{
		MaxThroughputDropPct: 10,
		MaxSlowdownPct:       15,
		MinNsPerOp:           500,
		MaxAllocIncrease:     16,
	}
}

// DiffEntry is one benchmark's old-vs-new comparison.
type DiffEntry struct {
	Name      string
	OldNs     float64
	NewNs     float64
	NsPct     float64 // ns/op change, + is slower
	OldExSec  float64
	NewExSec  float64
	ExPct     float64 // examples/sec change, + is faster
	OldAllocs float64
	NewAllocs float64
	// Status: "ok", "improved", "REGRESSED", "info" (below the noise
	// floor), "new", "removed".
	Status string
	Reason string
}

// Diff is the comparison of two reports under a tolerance policy.
type Diff struct {
	OldStamp, NewStamp string
	Tol                Tolerance
	Entries            []DiffEntry
	Regressions        []string
}

// Regressed reports whether any gated benchmark regressed.
func (d Diff) Regressed() bool { return len(d.Regressions) > 0 }

// pct returns the percent change from old to new (0 when old is 0).
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return 100 * (new - old) / old
}

// Compare diffs two benchmark reports benchmark-by-benchmark. Specs
// present in only one report are listed (Status "new"/"removed") but
// never gated; the gate judges only the intersection.
func Compare(old, new Report, tol Tolerance) Diff {
	d := Diff{OldStamp: old.Timestamp, NewStamp: new.Timestamp, Tol: tol}
	oldBy := map[string]Result{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := map[string]bool{}
	for _, nb := range new.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			d.Entries = append(d.Entries, DiffEntry{Name: nb.Name, NewNs: nb.NsPerOp,
				NewExSec: nb.ExamplesPerSec, NewAllocs: nb.AllocsPerOp, Status: "new"})
			continue
		}
		seen[nb.Name] = true
		e := DiffEntry{
			Name: nb.Name, OldNs: ob.NsPerOp, NewNs: nb.NsPerOp,
			NsPct:    pct(ob.NsPerOp, nb.NsPerOp),
			OldExSec: ob.ExamplesPerSec, NewExSec: nb.ExamplesPerSec,
			ExPct:     pct(ob.ExamplesPerSec, nb.ExamplesPerSec),
			OldAllocs: ob.AllocsPerOp, NewAllocs: nb.AllocsPerOp,
			Status: "ok",
		}
		var reasons []string
		switch {
		case ob.ExamplesPerSec > 0 && nb.ExamplesPerSec > 0:
			if e.ExPct < -tol.MaxThroughputDropPct {
				reasons = append(reasons, fmt.Sprintf("examples/sec %.1f%% (limit -%.0f%%)", e.ExPct, tol.MaxThroughputDropPct))
			} else if e.ExPct > tol.MaxThroughputDropPct {
				e.Status = "improved"
			}
		case ob.NsPerOp < tol.MinNsPerOp:
			e.Status = "info"
		default:
			if e.NsPct > tol.MaxSlowdownPct {
				reasons = append(reasons, fmt.Sprintf("ns/op +%.1f%% (limit +%.0f%%)", e.NsPct, tol.MaxSlowdownPct))
			} else if e.NsPct < -tol.MaxSlowdownPct {
				e.Status = "improved"
			}
		}
		if ob.AllocsPerOp < 0.5 && nb.AllocsPerOp >= 0.5 {
			reasons = append(reasons, fmt.Sprintf("was allocation-free, now %.1f allocs/op", nb.AllocsPerOp))
		} else if nb.AllocsPerOp > ob.AllocsPerOp+tol.MaxAllocIncrease {
			reasons = append(reasons, fmt.Sprintf("allocs/op %.1f -> %.1f (slack %.0f)", ob.AllocsPerOp, nb.AllocsPerOp, tol.MaxAllocIncrease))
		}
		if len(reasons) > 0 {
			e.Status = "REGRESSED"
			e.Reason = strings.Join(reasons, "; ")
			d.Regressions = append(d.Regressions, e.Name+": "+e.Reason)
		}
		d.Entries = append(d.Entries, e)
	}
	for _, ob := range old.Benchmarks {
		if !seen[ob.Name] {
			d.Entries = append(d.Entries, DiffEntry{Name: ob.Name, OldNs: ob.NsPerOp,
				OldExSec: ob.ExamplesPerSec, OldAllocs: ob.AllocsPerOp, Status: "removed"})
		}
	}
	return d
}

// Render formats the diff as the gate's human-readable table.
func (d Diff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff: %s -> %s\n", d.OldStamp, d.NewStamp)
	fmt.Fprintf(&b, "tolerances: examples/sec -%.0f%%, ns/op +%.0f%% (floor %s ns), allocs +%.0f (zero-alloc exact)\n",
		d.Tol.MaxThroughputDropPct, d.Tol.MaxSlowdownPct, metrics.F(d.Tol.MinNsPerOp), d.Tol.MaxAllocIncrease)
	rows := [][]string{{"benchmark", "ns/op old", "ns/op new", "Δns %", "ex/s old", "ex/s new", "Δex %", "status"}}
	for _, e := range d.Entries {
		ex := func(v float64) string {
			if v == 0 {
				return "-"
			}
			return metrics.F(v)
		}
		rows = append(rows, []string{
			e.Name, ex(e.OldNs), ex(e.NewNs), fmt.Sprintf("%+.1f", e.NsPct),
			ex(e.OldExSec), ex(e.NewExSec), fmt.Sprintf("%+.1f", e.ExPct), e.Status,
		})
	}
	b.WriteString(metrics.Table(rows))
	if len(d.Regressions) > 0 {
		b.WriteString("\nregressions:\n")
		for _, r := range d.Regressions {
			b.WriteString("  " + r + "\n")
		}
	} else {
		b.WriteString("\nno regressions past tolerance\n")
	}
	return b.String()
}

// CompareFiles reads two BENCH_*.json files and diffs them (old, new).
func CompareFiles(oldPath, newPath string, tol Tolerance) (Diff, error) {
	read := func(p string) (Report, error) {
		f, err := os.Open(p)
		if err != nil {
			return Report{}, fmt.Errorf("benchreport: %w", err)
		}
		defer f.Close()
		return ReadJSON(f)
	}
	o, err := read(oldPath)
	if err != nil {
		return Diff{}, err
	}
	n, err := read(newPath)
	if err != nil {
		return Diff{}, err
	}
	return Compare(o, n, tol), nil
}

package benchreport

import (
	"strings"
	"testing"
	"time"
)

func TestRunProducesReportWithSpeedups(t *testing.T) {
	rep := Run(DefaultSpecs(""), Options{MinTime: 5 * time.Millisecond})
	if len(rep.Benchmarks) != len(DefaultSpecs("")) {
		t.Fatalf("measured %d benchmarks, want %d", len(rep.Benchmarks), len(DefaultSpecs("")))
	}
	byName := map[string]Result{}
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 || b.Iterations <= 0 {
			t.Errorf("%s: degenerate measurement %+v", b.Name, b)
		}
		byName[b.Name] = b
	}
	ts, ok := byName["train_step"]
	if !ok {
		t.Fatal("train_step missing from report")
	}
	if ts.ExamplesPerSec <= 0 {
		t.Errorf("train_step examples/sec = %v, want > 0", ts.ExamplesPerSec)
	}
	for _, key := range []string{"gemm_tiled_vs_naive", "dense_layer_fused_vs_unfused", "next_batch_into_vs_fresh"} {
		if rep.Speedups[key] <= 0 {
			t.Errorf("speedup %q missing or non-positive: %v", key, rep.Speedups[key])
		}
	}
}

func TestRunFilter(t *testing.T) {
	rep := Run(DefaultSpecs("gemm"), Options{MinTime: time.Millisecond})
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("filter 'gemm' measured %d benchmarks, want 2", len(rep.Benchmarks))
	}
}

func TestReportRoundTripAndBaseline(t *testing.T) {
	rep := Run(DefaultSpecs("hash"), Options{MinTime: time.Millisecond})
	rep.ApplyBaseline(map[string]float64{"embedding/hash_index": rep.Benchmarks[0].NsPerOp * 2}, "synthetic baseline")
	sp := rep.Speedups["embedding/hash_index_vs_baseline"]
	if sp < 1.9 || sp > 2.1 {
		t.Errorf("baseline speedup = %v, want ~2", sp)
	}

	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != 1 || len(got.Benchmarks) != len(rep.Benchmarks) || got.Notes != "synthetic baseline" {
		t.Errorf("round-trip mismatch: %+v", got)
	}
	name := got.Filename()
	if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") || strings.ContainsAny(name, "-:") {
		t.Errorf("Filename = %q", name)
	}
}

package autotune

import (
	"math"
	"testing"
)

func space2d() Space {
	return Space{
		{Name: "x", Lo: -5, Hi: 5},
		{Name: "lr", Lo: 1e-4, Hi: 1, Log: true},
	}
}

// bowl has its optimum at x=2, lr=0.01.
func bowl(x []float64) float64 {
	dx := x[0] - 2
	dl := math.Log10(x[1]) - math.Log10(0.01)
	return dx*dx + dl*dl
}

func TestSpaceValidate(t *testing.T) {
	if err := (Space{}).Validate(); err == nil {
		t.Error("empty space accepted")
	}
	if err := (Space{{Name: "a", Lo: 1, Hi: 1}}).Validate(); err == nil {
		t.Error("empty range accepted")
	}
	if err := (Space{{Name: "a", Lo: -1, Hi: 1, Log: true}}).Validate(); err == nil {
		t.Error("non-positive log bound accepted")
	}
	if err := space2d().Validate(); err != nil {
		t.Errorf("valid space rejected: %v", err)
	}
}

func TestRandomSearchInBounds(t *testing.T) {
	r, err := NewRandomSearch(space2d(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		x := r.Suggest()
		if x[0] < -5 || x[0] > 5 || x[1] < 1e-4 || x[1] > 1 {
			t.Fatalf("out-of-bounds suggestion %v", x)
		}
	}
}

func TestGridSearchCoversCorners(t *testing.T) {
	g, err := NewGridSearch(space2d(), 3)
	if err != nil {
		t.Fatal(err)
	}
	seenLo, seenHi := false, false
	for i := 0; i < 9; i++ {
		x := g.Suggest()
		if x[0] == -5 && math.Abs(x[1]-1e-4) < 1e-12 {
			seenLo = true
		}
		if x[0] == 5 && math.Abs(x[1]-1) < 1e-9 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("grid must include both extreme corners")
	}
	// Cycles after exhaustion.
	first := g.Suggest()
	if first[0] != -5 {
		t.Errorf("grid should cycle, got %v", first)
	}
}

func TestMinimizeWithRandom(t *testing.T) {
	r, _ := NewRandomSearch(space2d(), 2)
	x, y := Minimize(r, bowl, 300)
	if y > 1.0 {
		t.Errorf("random search best %v at %v; expected < 1.0", y, x)
	}
}

func TestBayesianBeatsRandomOnBudget(t *testing.T) {
	// With a modest budget the surrogate should find a better optimum
	// than random search (averaged over seeds to avoid flakes).
	budget := 60
	var bayesWins int
	for seed := int64(0); seed < 5; seed++ {
		b, _ := NewBayesian(space2d(), seed)
		_, by := Minimize(b, bowl, budget)
		r, _ := NewRandomSearch(space2d(), seed+100)
		_, ry := Minimize(r, bowl, budget)
		if by <= ry {
			bayesWins++
		}
	}
	if bayesWins < 3 {
		t.Errorf("Bayesian won only %d/5 seeds against random", bayesWins)
	}
}

func TestBayesianConverges(t *testing.T) {
	b, _ := NewBayesian(space2d(), 3)
	x, y := Minimize(b, bowl, 120)
	if y > 0.5 {
		t.Errorf("Bayesian best %v at %v; expected near optimum", y, x)
	}
	if math.Abs(x[0]-2) > 1.5 {
		t.Errorf("x* = %v, want near 2", x[0])
	}
}

func TestBayesianPredictFallback(t *testing.T) {
	b, _ := NewBayesian(space2d(), 4)
	b.Observe([]float64{0, 0.01}, 5)
	b.Observe([]float64{1, 0.01}, 3)
	mu, sigma := b.predict([]float64{4.9, 0.9})
	if math.IsNaN(mu) || math.IsNaN(sigma) {
		t.Error("prediction must not be NaN far from data")
	}
	if sigma <= 0 {
		t.Error("uncertainty must be positive away from observations")
	}
}

func TestObserveCopiesPoint(t *testing.T) {
	b, _ := NewBayesian(space2d(), 5)
	x := []float64{1, 0.1}
	b.Observe(x, 1)
	x[0] = 99
	if b.obs[0].X[0] == 99 {
		t.Error("Observe must copy the point")
	}
}

func TestConstructorsRejectBadSpace(t *testing.T) {
	if _, err := NewRandomSearch(Space{}, 0); err == nil {
		t.Error("random: empty space accepted")
	}
	if _, err := NewGridSearch(Space{}, 3); err == nil {
		t.Error("grid: empty space accepted")
	}
	if _, err := NewBayesian(Space{}, 0); err == nil {
		t.Error("bayes: empty space accepted")
	}
}

// Package autotune implements the hyper-parameter search strategies the
// paper's FBLearner workflow offers (§VI-C): grid, random, and Bayesian
// optimization. The Bayesian tuner uses an RBF-kernel surrogate with a
// lower-confidence-bound acquisition — enough to reproduce the paper's
// finding that automated re-tuning recovers (and slightly improves) model
// quality after porting to large-batch GPU training.
package autotune

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Param is one search dimension.
type Param struct {
	Name string
	Lo   float64
	Hi   float64
	// Log searches the dimension in log space (learning rates).
	Log bool
}

// Space is an ordered set of search dimensions.
type Space []Param

// Validate checks bounds.
func (s Space) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("autotune: empty search space")
	}
	for _, p := range s {
		if !(p.Hi > p.Lo) {
			return fmt.Errorf("autotune: param %s has empty range [%v, %v]", p.Name, p.Lo, p.Hi)
		}
		if p.Log && p.Lo <= 0 {
			return fmt.Errorf("autotune: log param %s requires positive bounds", p.Name)
		}
	}
	return nil
}

// sample draws a uniform point (in the parameterization of each axis).
func (s Space) sample(rng *xrand.RNG) []float64 {
	x := make([]float64, len(s))
	for i, p := range s {
		u := rng.Float64()
		if p.Log {
			x[i] = p.Lo * math.Exp(u*math.Log(p.Hi/p.Lo))
		} else {
			x[i] = p.Lo + u*(p.Hi-p.Lo)
		}
	}
	return x
}

// normalize maps a point into the unit cube for distance computations.
func (s Space) normalize(x []float64) []float64 {
	u := make([]float64, len(s))
	for i, p := range s {
		if p.Log {
			u[i] = math.Log(x[i]/p.Lo) / math.Log(p.Hi/p.Lo)
		} else {
			u[i] = (x[i] - p.Lo) / (p.Hi - p.Lo)
		}
	}
	return u
}

// Observation is one evaluated point.
type Observation struct {
	X []float64
	Y float64 // objective value; tuners minimize
}

// Tuner proposes points and ingests results.
type Tuner interface {
	// Suggest returns the next point to evaluate.
	Suggest() []float64
	// Observe reports the objective at x.
	Observe(x []float64, y float64)
}

// RandomSearch samples the space uniformly.
type RandomSearch struct {
	space Space
	rng   *xrand.RNG
}

// NewRandomSearch builds a random tuner.
func NewRandomSearch(space Space, seed int64) (*RandomSearch, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return &RandomSearch{space: space, rng: xrand.New(seed)}, nil
}

// Suggest implements Tuner.
func (r *RandomSearch) Suggest() []float64 { return r.space.sample(r.rng) }

// Observe implements Tuner (random search ignores feedback).
func (r *RandomSearch) Observe([]float64, float64) {}

// GridSearch enumerates a regular grid, cycling if exhausted.
type GridSearch struct {
	space  Space
	points [][]float64
	next   int
}

// NewGridSearch builds a grid with per-dimension resolution n.
func NewGridSearch(space Space, n int) (*GridSearch, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		n = 2
	}
	g := &GridSearch{space: space}
	total := 1
	for range space {
		total *= n
	}
	for i := 0; i < total; i++ {
		x := make([]float64, len(space))
		rem := i
		for d, p := range space {
			step := rem % n
			rem /= n
			frac := float64(step) / float64(n-1)
			if p.Log {
				x[d] = p.Lo * math.Exp(frac*math.Log(p.Hi/p.Lo))
			} else {
				x[d] = p.Lo + frac*(p.Hi-p.Lo)
			}
		}
		g.points = append(g.points, x)
	}
	return g, nil
}

// Suggest implements Tuner.
func (g *GridSearch) Suggest() []float64 {
	x := g.points[g.next%len(g.points)]
	g.next++
	return x
}

// Observe implements Tuner.
func (g *GridSearch) Observe([]float64, float64) {}

// Bayesian is a surrogate-based tuner: an RBF-kernel regressor over past
// observations scores random candidates by a lower confidence bound
// mu - kappa*sigma, where sigma grows with distance from observed points.
type Bayesian struct {
	space      Space
	rng        *xrand.RNG
	obs        []Observation
	Kappa      float64 // exploration weight
	Bandwidth  float64 // RBF kernel width in unit-cube distance
	Candidates int     // candidates scored per suggestion
	warmup     int
}

// NewBayesian builds a Bayesian tuner with sensible defaults.
func NewBayesian(space Space, seed int64) (*Bayesian, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	return &Bayesian{
		space:      space,
		rng:        xrand.New(seed),
		Kappa:      1.5,
		Bandwidth:  0.2,
		Candidates: 256,
		warmup:     5,
	}, nil
}

// Suggest implements Tuner: random during warmup, then LCB optimization.
func (b *Bayesian) Suggest() []float64 {
	if len(b.obs) < b.warmup {
		return b.space.sample(b.rng)
	}
	var best []float64
	bestScore := math.Inf(1)
	for c := 0; c < b.Candidates; c++ {
		x := b.space.sample(b.rng)
		mu, sigma := b.predict(x)
		score := mu - b.Kappa*sigma
		if score < bestScore {
			bestScore = score
			best = x
		}
	}
	return best
}

// predict returns the kernel-regression mean and a distance-based
// uncertainty at x.
func (b *Bayesian) predict(x []float64) (mu, sigma float64) {
	u := b.space.normalize(x)
	var wsum, ysum, dmin float64
	dmin = math.Inf(1)
	for _, o := range b.obs {
		v := b.space.normalize(o.X)
		var d2 float64
		for i := range u {
			d := u[i] - v[i]
			d2 += d * d
		}
		w := math.Exp(-d2 / (2 * b.Bandwidth * b.Bandwidth))
		wsum += w
		ysum += w * o.Y
		if d := math.Sqrt(d2); d < dmin {
			dmin = d
		}
	}
	if wsum < 1e-12 {
		// Far from everything: fall back to the observed mean with
		// high uncertainty.
		var m float64
		for _, o := range b.obs {
			m += o.Y
		}
		return m / float64(len(b.obs)), b.spread()
	}
	mu = ysum / wsum
	sigma = b.spread() * math.Min(1, dmin/b.Bandwidth)
	return mu, sigma
}

// spread estimates the objective's scale from observations.
func (b *Bayesian) spread() float64 {
	if len(b.obs) < 2 {
		return 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, o := range b.obs {
		lo = math.Min(lo, o.Y)
		hi = math.Max(hi, o.Y)
	}
	if hi <= lo {
		return 1e-6
	}
	return hi - lo
}

// Observe implements Tuner.
func (b *Bayesian) Observe(x []float64, y float64) {
	b.obs = append(b.obs, Observation{X: append([]float64(nil), x...), Y: y})
}

// Minimize runs the tuner for budget evaluations of f and returns the
// best point found.
func Minimize(t Tuner, f func([]float64) float64, budget int) (bestX []float64, bestY float64) {
	bestY = math.Inf(1)
	for i := 0; i < budget; i++ {
		x := t.Suggest()
		y := f(x)
		t.Observe(x, y)
		if y < bestY {
			bestY = y
			bestX = append([]float64(nil), x...)
		}
	}
	return bestX, bestY
}

package perfmodel

import (
	"math"
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hybrid"
)

// TestHybridMetersMatchAnalyticVolumes runs the real synchronous engine
// and crosschecks its observed collective byte meters against the
// analytic all-to-all / all-reduce volume formulas, within 2%. This ties
// the perfmodel's priced traffic to measured traffic the same way the
// memtier hit-rate estimator is tied to replayed traces.
func TestHybridMetersMatchAnalyticVolumes(t *testing.T) {
	cfg := core.Config{
		Name:          "crosscheck",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(8, 2000, 4),
		EmbeddingDim:  16,
		BottomMLP:     []int{32},
		TopMLP:        []int{32},
		Interaction:   core.Concat,
	}
	const batch, steps = 96, 4
	wires := []collective.WireFormat{collective.WireFP32, collective.WireFP16, collective.WireINT8}
	for _, wire := range wires {
		for _, ranks := range []int{2, 3, 4} {
			ht, err := hybrid.New(cfg, hybrid.Config{
				Ranks: ranks, Seed: 1, LR: 0.05,
				WireA2A: wire, WireAllReduce: wire,
			})
			if err != nil {
				t.Fatal(err)
			}
			gen := data.NewGenerator(cfg, 3, data.DefaultOptions())
			for i := 0; i < steps; i++ {
				ht.Step(gen.NextBatch(batch))
			}
			st := ht.CollectiveStats()
			ht.Close()

			bpe := wire.BytesPerElem()
			gotA2A := float64(st.AllToAll.Bytes) / steps
			wantA2A := HybridAllToAllBytesWire(cfg, batch, ranks, bpe)
			if rel := math.Abs(gotA2A-wantA2A) / wantA2A; rel > 0.02 {
				t.Errorf("wire=%v ranks=%d: all-to-all %.0f bytes/iter, analytic %.0f (off %.1f%%)",
					wire, ranks, gotA2A, wantA2A, 100*rel)
			}
			gotAR := float64(st.AllReduce.Bytes) / steps
			wantAR := HybridAllReduceBytesWire(cfg, ranks, bpe)
			if rel := math.Abs(gotAR-wantAR) / wantAR; rel > 0.02 {
				t.Errorf("wire=%v ranks=%d: all-reduce %.0f bytes/iter, analytic %.0f (off %.1f%%)",
					wire, ranks, gotAR, wantAR, 100*rel)
			}
		}
	}
}

// TestHybridVolumeFormulas pins the closed forms themselves.
func TestHybridVolumeFormulas(t *testing.T) {
	cfg := core.Config{
		Name:          "formulas",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(4, 100, 2),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
	}
	if got := HybridAllToAllBytes(cfg, 64, 1); got != 0 {
		t.Errorf("single rank should exchange nothing, got %v", got)
	}
	// 2 · 64 · 4 tables · 8 dim · 4 bytes · 3/4
	if got, want := HybridAllToAllBytes(cfg, 64, 4), 2.0*64*4*8*4*3/4; got != want {
		t.Errorf("all-to-all %v, want %v", got, want)
	}
	if got, want := HybridAllReduceBytes(cfg, 4), 6*float64(cfg.DenseParamBytes()); got != want {
		t.Errorf("all-reduce %v, want %v", got, want)
	}
	// Wire-width parameterization: fp16 halves both volumes, int8 is
	// 1.0625 bytes/element, and bpe=4 reproduces the fp32 forms.
	if got, want := HybridAllToAllBytesWire(cfg, 64, 4, 2), HybridAllToAllBytes(cfg, 64, 4)/2; got != want {
		t.Errorf("fp16 all-to-all %v, want %v", got, want)
	}
	if got, want := HybridAllReduceBytesWire(cfg, 4, 1.0625), 6*float64(cfg.DenseParamBytes())/4*1.0625; got != want {
		t.Errorf("int8 all-reduce %v, want %v", got, want)
	}
	if got, want := HybridAllToAllBytesWire(cfg, 64, 4, 4), HybridAllToAllBytes(cfg, 64, 4); got != want {
		t.Errorf("bpe=4 all-to-all %v, want %v", got, want)
	}
}

package perfmodel

import (
	"math"

	"repro/internal/core"
)

// Ingestion-bandwidth terms for the internal/ingest record format. The
// paper's reader tier (§IV-B2) decouples example decode from training;
// whether a setup is reader-bound is a pure bandwidth comparison between
// what the trainer consumes (examples/sec × bytes/example) and what the
// reader fleet delivers (readers × per-reader bandwidth). These formulas
// are the analytic side of that comparison; the pipeline's BytesRead /
// ReadMBps meters are the measured side, and the ingest_scaling
// experiment cross-checks the two.

// ingestShardHeaderBytes mirrors the shard header of the ingest format.
const ingestShardHeaderBytes = 16

// IngestRecordBytes returns the exact serialized size of one example
// carrying the given per-feature index counts: a label byte, the dense
// float32 block, and a uint16 count plus int32 ids per sparse feature.
func IngestRecordBytes(denseFeatures int, indexCounts []int) int64 {
	b := int64(1 + 4*denseFeatures)
	for _, n := range indexCounts {
		b += 2 + 4*int64(n)
	}
	return b
}

// IngestBytesPerExample returns the expected on-disk size of one example
// of cfg, using each feature's configured mean pooled length.
func IngestBytesPerExample(cfg core.Config) float64 {
	b := float64(1 + 4*cfg.DenseFeatures)
	for _, s := range cfg.Sparse {
		b += 2 + 4*s.MeanPooled
	}
	return b
}

// IngestBandwidthNeeded returns the aggregate shard-read bandwidth
// (bytes/sec) that keeps a trainer consuming examplesPerSec fed.
func IngestBandwidthNeeded(cfg core.Config, examplesPerSec float64) float64 {
	return examplesPerSec * IngestBytesPerExample(cfg)
}

// IngestExamplesPerSec returns the example rate a reader fleet sustains:
// readers × per-reader bandwidth over the expected record size. The
// trainer-side rate caps end-to-end throughput; min(this, trainer rate)
// is the pipeline's roofline.
func IngestExamplesPerSec(cfg core.Config, readers int, perReaderBW float64) float64 {
	if readers <= 0 || perReaderBW <= 0 {
		return 0
	}
	return float64(readers) * perReaderBW / IngestBytesPerExample(cfg)
}

// IngestReadersNeeded returns the smallest reader count whose aggregate
// bandwidth sustains examplesPerSec — the readers-per-trainer knob the
// ingest_scaling experiment sweeps to find the reader-bound →
// trainer-bound crossover.
func IngestReadersNeeded(cfg core.Config, examplesPerSec, perReaderBW float64) int {
	if perReaderBW <= 0 {
		return 0
	}
	return int(math.Ceil(IngestBandwidthNeeded(cfg, examplesPerSec) / perReaderBW))
}

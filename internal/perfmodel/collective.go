package perfmodel

import "repro/internal/core"

// Analytic collective volumes of the synchronous hybrid-parallel step
// (internal/hybrid). These are the same quantities the GPU estimate
// prices per iteration; exposing them lets the real engine's byte meters
// be crosschecked against the model (see collective_test.go), exactly as
// the memtier subsystem validates its analytic hit rates against
// replayed traces.

// HybridAllToAllBytes returns the total bytes the pooled-embedding
// exchange moves across rank boundaries per iteration, summed over ranks
// and both directions (forward rows + backward gradients):
//
//	2 · B · S · d · 4 · (n-1)/n
//
// Each of the S tables produces B pooled rows of d fp32 values per
// direction; with table-wise sharding a (n-1)/n share of every row
// crosses a rank boundary.
func HybridAllToAllBytes(cfg core.Config, batch, ranks int) float64 {
	return HybridAllToAllBytesWire(cfg, batch, ranks, 4)
}

// HybridAllToAllBytesWire is HybridAllToAllBytes with the wire width as
// a parameter: bytesPerElem is 4 for fp32, 2 for fp16/bf16 and 1.0625
// for int8 (collective.WireFormat.BytesPerElem). The int8 figure is
// exact when every per-destination payload is a multiple of the 64-
// element scale chunk (B·d·tables-per-rank usually is); ragged payloads
// add one 4-byte scale per destination, well inside the crosscheck
// tolerance.
func HybridAllToAllBytesWire(cfg core.Config, batch, ranks int, bytesPerElem float64) float64 {
	if ranks <= 1 {
		return 0
	}
	pooled := float64(batch) * float64(cfg.NumSparse()) * float64(cfg.EmbeddingDim) * bytesPerElem
	return 2 * pooled * float64(ranks-1) / float64(ranks)
}

// HybridAllReduceBytes returns the total bytes the ring all-reduce of
// dense (MLP) gradients moves across rank boundaries per iteration,
// summed over ranks:
//
//	2 · (n-1) · denseParamBytes
//
// (each rank sends and receives a 2·(n-1)/n share of the gradient
// vector, and n ranks participate).
func HybridAllReduceBytes(cfg core.Config, ranks int) float64 {
	return HybridAllReduceBytesWire(cfg, ranks, 4)
}

// HybridAllReduceBytesWire is HybridAllReduceBytes with the wire width
// as a parameter (see HybridAllToAllBytesWire); the dense parameter
// count is DenseParamBytes()/4.
func HybridAllReduceBytesWire(cfg core.Config, ranks int, bytesPerElem float64) float64 {
	if ranks <= 1 {
		return 0
	}
	elems := float64(cfg.DenseParamBytes()) / 4
	return 2 * float64(ranks-1) * elems * bytesPerElem
}

package perfmodel

import "repro/internal/core"

// Analytic collective volumes of the synchronous hybrid-parallel step
// (internal/hybrid). These are the same quantities the GPU estimate
// prices per iteration; exposing them lets the real engine's byte meters
// be crosschecked against the model (see collective_test.go), exactly as
// the memtier subsystem validates its analytic hit rates against
// replayed traces.

// HybridAllToAllBytes returns the total bytes the pooled-embedding
// exchange moves across rank boundaries per iteration, summed over ranks
// and both directions (forward rows + backward gradients):
//
//	2 · B · S · d · 4 · (n-1)/n
//
// Each of the S tables produces B pooled rows of d fp32 values per
// direction; with table-wise sharding a (n-1)/n share of every row
// crosses a rank boundary.
func HybridAllToAllBytes(cfg core.Config, batch, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	pooled := float64(batch) * float64(cfg.NumSparse()) * float64(cfg.EmbeddingDim) * 4
	return 2 * pooled * float64(ranks-1) / float64(ranks)
}

// HybridAllReduceBytes returns the total bytes the ring all-reduce of
// dense (MLP) gradients moves across rank boundaries per iteration,
// summed over ranks:
//
//	2 · (n-1) · denseParamBytes
//
// (each rank sends and receives a 2·(n-1)/n share of the gradient
// vector, and n ranks participate).
func HybridAllReduceBytes(cfg core.Config, ranks int) float64 {
	if ranks <= 1 {
		return 0
	}
	return 2 * float64(ranks-1) * float64(cfg.DenseParamBytes())
}

package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/placement"
)

// Scenario describes one training setup to estimate.
type Scenario struct {
	Cfg      core.Config
	Platform hw.Platform
	// Batch is the global batch per iteration on a GPU server, or the
	// per-trainer mini-batch on the CPU cluster.
	Batch int
	// Plan is the embedding placement (ignored for CPU clusters,
	// where tables always live on sparse parameter servers).
	Plan placement.Plan
	// CPU-cluster topology (production baseline, Fig 4). Ignored for
	// GPU platforms except RemotePS accounting via Plan.
	NumTrainers int
	NumSparsePS int
	NumDensePS  int
	Cal         Calibration
}

// Breakdown is the per-iteration time decomposition and the derived
// throughput/power figures.
type Breakdown struct {
	// Seconds per iteration by component.
	Compute   float64 // MLP + interaction FLOP time
	EmbLookup float64 // embedding gather/scatter memory time
	Comm      float64 // intra-node pooled-embedding exchange
	AllReduce float64 // dense-gradient synchronization
	Net       float64 // network transfers (remote PS / EASGD)
	Host      float64 // host CPU staging/copy work
	Launch    float64 // kernel-launch + fixed framework overhead
	IterTime  float64
	// Throughput is examples/second for the whole setup.
	Throughput float64
	// PowerUnits is the setup's provisioned power in CPU-server units.
	PowerUnits float64
	// Bottleneck names the largest component.
	Bottleneck string
}

// PowerEfficiency returns throughput per power unit.
func (b Breakdown) PowerEfficiency() float64 {
	if b.PowerUnits == 0 {
		return 0
	}
	return b.Throughput / b.PowerUnits
}

// Estimate computes the breakdown for a scenario.
func Estimate(s Scenario) (Breakdown, error) {
	if err := s.Cfg.Validate(); err != nil {
		return Breakdown{}, err
	}
	if s.Batch <= 0 {
		return Breakdown{}, fmt.Errorf("perfmodel: batch must be positive")
	}
	if s.Cal == (Calibration{}) {
		s.Cal = DefaultCalibration()
	}
	if s.Platform.IsGPU() {
		return estimateGPU(s)
	}
	return estimateCPUCluster(s)
}

// ---- shared building blocks ----

func gemmTime(flops, peak, eff float64) float64 {
	if peak <= 0 || eff <= 0 {
		return math.Inf(1)
	}
	return flops / (peak * eff)
}

func streamTime(bytes, bw, eff float64) float64 {
	if bw <= 0 || eff <= 0 {
		return math.Inf(1)
	}
	return bytes / (bw * eff)
}

// batchEff ramps GEMM efficiency with per-device batch size.
func batchEff(perDevBatch, half float64) float64 {
	if perDevBatch <= 0 {
		return 0
	}
	return perDevBatch / (perDevBatch + half)
}

// psServiceTime is the time one parameter-server fleet of ps nodes needs
// to serve a single trainer iteration: the DRAM random gather/scatter of
// embBytes, the RPC handling of netBytes wire traffic, and the NIC, all
// in parallel across the fleet, gated by the slowest.
func psServiceTime(embBytes, netBytes, ps float64, psNode hw.Platform, cal Calibration) float64 {
	if ps < 1 {
		ps = 1
	}
	dram := embBytes / (ps * psNode.CPU.MemBW() * cal.PSDRAMEff)
	rpc := netBytes / (ps * cal.PSHandleBWPerNode)
	nic := netBytes / (ps * psNode.NIC.BandwidthBps * cal.NetEff)
	return math.Max(dram, math.Max(rpc, nic))
}

// gpuRandEff derates GPU random-access efficiency as the per-GPU
// embedding footprint outgrows on-chip caches (§V-C: GPU throughput drops
// sharply with hash size while CPU throughput is flat).
func gpuRandEff(cal Calibration, perGPUBytes float64) float64 {
	eff := cal.GPURandEff
	if cal.CacheSlope > 0 && perGPUBytes > cal.CacheRefBytes {
		eff /= 1 + cal.CacheSlope*math.Log10(perGPUBytes/cal.CacheRefBytes)
	}
	return eff
}

// trafficPerIter aggregates the per-iteration byte quantities of a config
// at batch b.
type traffic struct {
	lookupBytes float64 // raw embedding rows touched (fwd only)
	pooledBytes float64 // pooled embedding activations
	indexBytes  float64 // lookup indices
	denseBytes  float64 // dense (MLP) parameter bytes
	denseInput  float64 // dense feature input bytes
	flops       float64 // fwd+bwd MLP+interaction FLOPs
	kernels     float64 // kernel launches per iteration
}

func computeTraffic(cfg core.Config, b int) traffic {
	B := float64(b)
	d := float64(cfg.EmbeddingDim)
	L := cfg.LookupsPerExample()
	var t traffic
	t.lookupBytes = B * L * d * 4
	t.pooledBytes = B * float64(cfg.NumSparse()) * d * 4
	t.indexBytes = B * L * 4
	t.denseBytes = float64(cfg.DenseParamBytes())
	t.denseInput = B * float64(cfg.DenseFeatures) * 4
	t.flops = 3 * B * float64(cfg.MLPFLOPsPerExample()+cfg.InteractionFLOPsPerExample())
	layers := float64(len(cfg.BottomDims()) + len(cfg.TopDims()) - 2)
	t.kernels = 4*layers + 3*float64(cfg.NumSparse()) + 20
	return t
}

// ---- GPU server estimate ----

func estimateGPU(s Scenario) (Breakdown, error) {
	cal := s.Cal
	p := s.Platform
	g := float64(p.NumGPUs)
	tr := computeTraffic(s.Cfg, s.Batch)
	var bd Breakdown

	// MLPs run data-parallel across all GPUs.
	eff := cal.GPUGemmEff * batchEff(float64(s.Batch)/g, cal.BatchEffHalf)
	bd.Compute = gemmTime(tr.flops, g*p.GPU.PeakFLOPs, eff)

	// Batches arrive from remote readers, which the fleet scales so
	// that data loading never stalls training (§IV-B2); the NIC and
	// host staging legs are prefetched off the critical path, leaving
	// only the PCIe H2D copy.
	inputBytes := tr.denseInput + tr.indexBytes
	hostStage := float64(p.CPU.Sockets) * cal.HostStageBWPerSocket
	hostRPC := float64(p.CPU.Sockets) * cal.HostCopyBWPerSocket
	bd.Host += streamTime(inputBytes, g*p.PCIe.BandwidthBps, cal.PCIeEff)

	// Dense-gradient all-reduce (ring) across the replicas.
	arBytes := 2 * tr.denseBytes * (g - 1) / g
	if p.HasNVLink() {
		bd.AllReduce = streamTime(arBytes, p.NVLink.BandwidthBps, cal.NVLinkEff) +
			2*(g-1)*p.NVLink.LatencySec
	} else {
		// Without a GPU fabric the reduction stages through host
		// memory: PCIe both ways plus host staging, with no overlap
		// between the hops (HostBounceFactor).
		pcieAgg := g * p.PCIe.BandwidthBps
		bd.AllReduce = cal.HostBounceFactor * (streamTime(2*tr.denseBytes, pcieAgg, cal.PCIeEff) +
			streamTime(2*tr.denseBytes, hostStage, 1))
	}

	// Embedding path per placement.
	embBytes := cal.EmbedFwdBwdFactor * tr.lookupBytes
	switch s.Plan.Strategy {
	case placement.GPUMemory:
		embGPUs := float64(s.Plan.EmbGPUs)
		if embGPUs < 1 {
			embGPUs = 1
		}
		eff := gpuRandEff(cal, float64(s.Plan.GPUBytes)/embGPUs)
		bd.EmbLookup = streamTime(embBytes, embGPUs*p.GPU.MemBW, eff)
		commBytes := 2 * tr.pooledBytes * (g - 1) / g
		spread := 1 + cal.AllToAllSpread*(embGPUs-1)
		if p.HasNVLink() {
			bd.Comm = streamTime(commBytes, p.NVLink.BandwidthBps*embGPUs, cal.NVLinkEff) * spread
		} else {
			// Zion prototype: pooled exchange through the host.
			pcieAgg := g * p.PCIe.BandwidthBps
			bd.Comm = cal.HostBounceFactor * (streamTime(2*2*tr.pooledBytes, pcieAgg, cal.PCIeEff) +
				streamTime(2*2*tr.pooledBytes, hostStage, 1))
		}
		if embGPUs > 1 {
			// Sharded exchange dispatches chunked gather/scatter
			// kernels per (table, shard) pair each direction.
			chunks := math.Ceil(float64(s.Batch) / 2048)
			bd.Comm += 2 * float64(s.Cfg.NumSparse()) * embGPUs * chunks * cal.KernelLaunchSec
		}

	case placement.SystemMemory:
		// Host CPUs gather/pool and apply sparse updates in DRAM.
		bd.EmbLookup = streamTime(embBytes, p.CPU.MemBW(), cal.CPURandEff)
		// Pooled activations cross PCIe down, gradients back up.
		pcieAgg := math.Min(g*p.PCIe.BandwidthBps, p.CPU.MemBW()/2)
		bd.Comm = streamTime(2*tr.pooledBytes, pcieAgg, cal.PCIeEff)
		bd.Host += streamTime(2*tr.pooledBytes, hostStage, 1)

	case placement.RemoteCPU:
		ps := float64(s.Plan.RemotePS)
		if ps < 1 {
			ps = 1
		}
		psNode := hw.DualSocketCPU()
		netBytes := tr.indexBytes + 2*tr.pooledBytes
		bd.EmbLookup = psServiceTime(embBytes, netBytes, ps, psNode, cal)
		// The prototype issues per-table request/response exchanges
		// that are only partially pipelined; §VI-B identifies this
		// lookup latency as a first-order bottleneck.
		bd.Net += streamTime(netBytes, p.NIC.BandwidthBps, cal.NetEff) +
			float64(s.Cfg.NumSparse())*cal.RemoteRTTSec +
			2*ps*p.NIC.LatencySec
		bd.Host += streamTime(netBytes, hostRPC, 1) +
			streamTime(2*tr.pooledBytes, g*p.PCIe.BandwidthBps, cal.PCIeEff)

	case placement.Tiered:
		// Per-tier composition: each tier serves its assignment's
		// lookup fraction at its own bandwidth/latency; the HBM share
		// (resident hot tables plus hot-row cache hits) behaves like
		// GPUMemory, spilled shares like SystemMemory / RemoteCPU /
		// block storage. When everything fits the top tier this prices
		// identically to GPUMemory.
		asg := s.Plan.Tiered
		if asg == nil {
			return Breakdown{}, fmt.Errorf("perfmodel: tiered plan carries no memtier assignment")
		}
		embGPUs := float64(s.Plan.EmbGPUs)
		if embGPUs < 1 {
			embGPUs = 1
		}
		hot := s.Plan.HotFraction
		var spillPooled float64 // pooled-activation share produced on the host side
		for _, tl := range asg.Tiers {
			frac := tl.LookupFraction
			if frac <= 0 {
				continue
			}
			switch tl.Tier.Kind {
			case hw.TierHBM:
				geff := gpuRandEff(cal, float64(s.Plan.GPUBytes)/embGPUs)
				bd.EmbLookup += streamTime(frac*embBytes, embGPUs*p.GPU.MemBW, geff)
			case hw.TierLocalDRAM:
				bd.EmbLookup += streamTime(frac*embBytes, p.CPU.MemBW(), cal.CPURandEff)
				spillPooled += frac
			case hw.TierRemoteDRAM:
				ps := float64(s.Plan.RemotePS)
				if ps < 1 {
					ps = 1
				}
				netBytes := frac * (tr.indexBytes + 2*tr.pooledBytes)
				bd.EmbLookup += psServiceTime(frac*embBytes, netBytes, ps, hw.DualSocketCPU(), cal)
				bd.Net += streamTime(netBytes, p.NIC.BandwidthBps, cal.NetEff) +
					float64(len(tl.Tables))*cal.RemoteRTTSec + 2*ps*p.NIC.LatencySec
				bd.Host += streamTime(netBytes, hostRPC, 1)
				spillPooled += frac
			case hw.TierNVM:
				bd.EmbLookup += streamTime(frac*embBytes, tl.Tier.BandwidthBps, cal.NVMRandEff) +
					float64(len(tl.Tables))*tl.Tier.LatencySec
				spillPooled += frac
			}
		}
		// Pooled exchange: the HBM-served share runs the sharded
		// all-to-all exactly as GPUMemory; spilled shares pool on the
		// host and cross PCIe like SystemMemory.
		spread := 1 + cal.AllToAllSpread*(embGPUs-1)
		if p.HasNVLink() {
			commHot := 2 * hot * tr.pooledBytes * (g - 1) / g
			bd.Comm = streamTime(commHot, p.NVLink.BandwidthBps*embGPUs, cal.NVLinkEff) * spread
		} else {
			pcieAgg := g * p.PCIe.BandwidthBps
			bd.Comm = cal.HostBounceFactor * (streamTime(2*2*hot*tr.pooledBytes, pcieAgg, cal.PCIeEff) +
				streamTime(2*2*hot*tr.pooledBytes, hostStage, 1))
		}
		if embGPUs > 1 {
			chunks := math.Ceil(float64(s.Batch) / 2048)
			bd.Comm += 2 * float64(s.Cfg.NumSparse()) * embGPUs * chunks * cal.KernelLaunchSec
		}
		if spillPooled > 0 {
			pcieAgg := math.Min(g*p.PCIe.BandwidthBps, p.CPU.MemBW()/2)
			bd.Comm += streamTime(2*spillPooled*tr.pooledBytes, pcieAgg, cal.PCIeEff)
			bd.Host += streamTime(2*spillPooled*tr.pooledBytes, hostStage, 1)
		}
		// Cache fills: misses on spilled tables stream their rows up
		// into the HBM hot-row cache (forward direction only).
		if asg.CacheRows > 0 {
			fill := asg.SpilledShare() * (1 - asg.CacheHitRate) * tr.lookupBytes
			bd.Host += streamTime(fill, g*p.PCIe.BandwidthBps, cal.PCIeEff)
		}

	case placement.Hybrid:
		// Weighted mix: the hot fraction behaves like GPUMemory, the
		// remainder like SystemMemory.
		hot := s.Plan.HotFraction
		embGPUs := float64(s.Plan.EmbGPUs)
		if embGPUs < 1 {
			embGPUs = 1
		}
		geff := gpuRandEff(cal, float64(s.Plan.GPUBytes)/embGPUs)
		bd.EmbLookup = streamTime(hot*embBytes, embGPUs*p.GPU.MemBW, geff) +
			streamTime((1-hot)*embBytes, p.CPU.MemBW(), cal.CPURandEff)
		commHot := 2 * hot * tr.pooledBytes * (g - 1) / g
		spread := 1 + cal.AllToAllSpread*(embGPUs-1)
		if p.HasNVLink() {
			bd.Comm = streamTime(commHot, p.NVLink.BandwidthBps*embGPUs, cal.NVLinkEff) * spread
		} else {
			pcieAgg := g * p.PCIe.BandwidthBps
			bd.Comm = streamTime(2*commHot, pcieAgg, cal.PCIeEff)
		}
		pcieAgg := math.Min(g*p.PCIe.BandwidthBps, p.CPU.MemBW()/2)
		bd.Comm += streamTime(2*(1-hot)*tr.pooledBytes, pcieAgg, cal.PCIeEff)
		bd.Host += streamTime(2*(1-hot)*tr.pooledBytes, hostStage, 1)

	default:
		return Breakdown{}, fmt.Errorf("perfmodel: unsupported placement %v", s.Plan.Strategy)
	}

	bd.Launch = cal.GPUFixedSec + tr.kernels*cal.KernelLaunchSec

	bd.IterTime = bd.Compute + bd.EmbLookup + bd.Comm + bd.AllReduce + bd.Net + bd.Host + bd.Launch
	bd.Throughput = float64(s.Batch) / bd.IterTime
	bd.PowerUnits = p.PowerUnits + float64(s.Plan.RemotePS)*hw.DualSocketCPU().PowerUnits
	bd.Bottleneck = bottleneckName(bd)
	return bd, nil
}

// ---- distributed CPU cluster estimate (production baseline, Fig 4) ----

func estimateCPUCluster(s Scenario) (Breakdown, error) {
	cal := s.Cal
	if s.NumTrainers <= 0 {
		s.NumTrainers = 1
	}
	if s.NumSparsePS <= 0 {
		s.NumSparsePS = 1
	}
	if s.NumDensePS <= 0 {
		s.NumDensePS = 1
	}
	trainer := s.Platform
	psNode := hw.DualSocketCPU()
	tr := computeTraffic(s.Cfg, s.Batch)
	var bd Breakdown

	// Per-trainer compute: Hogwild threads keep the sockets busy;
	// large batches add cache pressure.
	cachePenalty := 1 + float64(s.Batch)/cal.CacheBatch
	bd.Compute = gemmTime(tr.flops, trainer.CPU.PeakFLOPs(),
		cal.CPUGemmEff*cal.HogwildEff)*cachePenalty + cal.CPUFixedSec

	// Sparse path: indices to the sparse PS, pooled embeddings back,
	// gradients out — bounded by the trainer NIC.
	netBytes := tr.indexBytes + 2*tr.pooledBytes
	bd.Net = streamTime(netBytes, trainer.NIC.BandwidthBps, cal.NetEff) +
		2*float64(s.NumSparsePS)*trainer.NIC.LatencySec

	// Sparse PS service: every trainer iteration pushes this much
	// random-access traffic into the PS fleet; in steady state each
	// trainer's iteration absorbs numTrainers shares. A PS node is
	// limited by its DRAM random-access bandwidth, its RPC handling
	// rate, and its NIC, whichever is tightest.
	embBytes := cal.EmbedFwdBwdFactor * tr.lookupBytes
	bd.EmbLookup = float64(s.NumTrainers) *
		psServiceTime(embBytes, netBytes, float64(s.NumSparsePS), psNode, cal)

	// Dense EASGD exchange with the dense PS every EASGDPeriodIters.
	easgdBytes := 2 * tr.denseBytes / cal.EASGDPeriodIters
	bd.AllReduce = streamTime(easgdBytes, trainer.NIC.BandwidthBps, cal.NetEff)
	densePSShare := float64(s.NumTrainers) * easgdBytes /
		(float64(s.NumDensePS) * psNode.NIC.BandwidthBps * cal.NetEff)
	if densePSShare > bd.AllReduce {
		bd.AllReduce = densePSShare
	}

	// Asynchronous pipeline: the slowest stage gates steady-state
	// throughput (Hogwild threads overlap compute with communication).
	bd.IterTime = math.Max(math.Max(bd.Compute, bd.Net),
		math.Max(bd.EmbLookup, bd.AllReduce))
	bd.Throughput = float64(s.NumTrainers) * float64(s.Batch) / bd.IterTime
	bd.PowerUnits = float64(s.NumTrainers)*trainer.PowerUnits +
		float64(s.NumSparsePS+s.NumDensePS)*psNode.PowerUnits
	bd.Bottleneck = bottleneckName(bd)
	return bd, nil
}

func bottleneckName(bd Breakdown) string {
	names := []string{"compute", "embedding", "comm", "allreduce", "net", "host", "launch"}
	vals := []float64{bd.Compute, bd.EmbLookup, bd.Comm, bd.AllReduce, bd.Net, bd.Host, bd.Launch}
	best := 0
	for i, v := range vals {
		if v > vals[best] {
			best = i
		}
	}
	return names[best]
}

// BestPlacement evaluates the paper's three production placement
// strategies (GPU memory, system memory, remote CPU — §IV-B1) plus the
// tiered-memory extension for the config on the platform and returns the
// fastest feasible plan with its breakdown. Tiered is evaluated last and
// ties break toward the flat strategies, so it only wins when staging
// across the hierarchy is strictly faster (e.g. models that overflow
// HBM). Use BestPlacementAmong to restrict or extend the candidate set.
func BestPlacement(cfg core.Config, platform hw.Platform, batch int, cal Calibration) (placement.Plan, Breakdown, error) {
	return BestPlacementAmong(cfg, platform, batch, cal,
		[]placement.Strategy{placement.GPUMemory, placement.SystemMemory, placement.RemoteCPU, placement.Tiered})
}

// BestPlacementAmong is BestPlacement restricted to the given strategies.
func BestPlacementAmong(cfg core.Config, platform hw.Platform, batch int, cal Calibration, strategies []placement.Strategy) (placement.Plan, Breakdown, error) {
	var plans []placement.Plan
	for _, strat := range strategies {
		if plan, err := placement.Fit(cfg, platform, strat, 0); err == nil {
			plans = append(plans, plan)
		}
	}
	if len(plans) == 0 {
		return placement.Plan{}, Breakdown{}, fmt.Errorf(
			"perfmodel: no feasible placement for %s on %s", cfg.Name, platform.Name)
	}
	var bestPlan placement.Plan
	var bestBD Breakdown
	found := false
	for _, plan := range plans {
		bd, err := Estimate(Scenario{Cfg: cfg, Platform: platform, Batch: batch, Plan: plan, Cal: cal})
		if err != nil {
			continue
		}
		if !found || bd.Throughput > bestBD.Throughput {
			bestPlan, bestBD, found = plan, bd, true
		}
	}
	if !found {
		return placement.Plan{}, Breakdown{}, fmt.Errorf(
			"perfmodel: no placement could be estimated for %s on %s", cfg.Name, platform.Name)
	}
	return bestPlan, bestBD, nil
}

// SaturationBatch sweeps candidate batch sizes and returns the smallest
// batch whose throughput reaches the given fraction of the best observed
// throughput — the "throughput started to saturate after batch size X"
// procedure of §VI-A.
func SaturationBatch(base Scenario, candidates []int, fraction float64) (int, error) {
	if len(candidates) == 0 {
		return 0, fmt.Errorf("perfmodel: no candidate batches")
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 0.9
	}
	type point struct {
		batch int
		thpt  float64
	}
	points := make([]point, 0, len(candidates))
	best := 0.0
	for _, b := range candidates {
		s := base
		s.Batch = b
		// Re-fit the plan in case batch affects nothing; placement is
		// capacity-driven, so reuse.
		bd, err := Estimate(s)
		if err != nil {
			return 0, err
		}
		points = append(points, point{b, bd.Throughput})
		if bd.Throughput > best {
			best = bd.Throughput
		}
	}
	for _, p := range points {
		if p.thpt >= fraction*best {
			return p.batch, nil
		}
	}
	return points[len(points)-1].batch, nil
}

package perfmodel

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/memtier"
	"repro/internal/placement"
	"repro/internal/workload"
)

func memtierOptions(cacheFraction float64) memtier.AssignOptions {
	return memtier.AssignOptions{CacheFraction: cacheFraction}
}

// TestTieredDegeneratesToGPUMemoryWhenFitting pins the design invariant
// that lets BestPlacement include Tiered without disturbing the paper's
// choices: a model whose tables fit HBM prices identically under both.
func TestTieredDegeneratesToGPUMemoryWhenFitting(t *testing.T) {
	cfg := workload.DefaultTestSuite(1024, 16)
	flat := gpuThroughput(t, cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0)
	tiered := gpuThroughput(t, cfg, hw.BigBasin(), 1600, placement.Tiered, 0)
	if math.Abs(flat.IterTime-tiered.IterTime) > 1e-12*flat.IterTime {
		t.Errorf("fitting model: tiered iter %v != flat iter %v", tiered.IterTime, flat.IterTime)
	}
	if math.Abs(flat.EmbLookup-tiered.EmbLookup) > 1e-12*flat.EmbLookup {
		t.Errorf("fitting model: tiered EmbLookup %v != flat %v", tiered.EmbLookup, flat.EmbLookup)
	}
}

// TestTieredDiffersFromFlatOnOverflow is the acceptance scenario: on a
// model that overflows Big Basin's HBM, the tiered plan must price the
// embedding path differently from the feasible flat plan (RemoteCPU) and
// beat it — the caching opportunity of §III-A2 turned into throughput.
func TestTieredDiffersFromFlatOnOverflow(t *testing.T) {
	m3 := workload.M3Prod()
	flat := gpuThroughput(t, m3, hw.BigBasin(), 800, placement.RemoteCPU, 8)
	tiered := gpuThroughput(t, m3, hw.BigBasin(), 800, placement.Tiered, 0)
	if tiered.EmbLookup == flat.EmbLookup {
		t.Error("tiered and remote plans must price EmbLookup differently")
	}
	if tiered.Bottleneck == flat.Bottleneck && tiered.EmbLookup == flat.EmbLookup {
		t.Errorf("tiered breakdown indistinguishable from flat: %+v vs %+v", tiered, flat)
	}
	if tiered.Throughput <= flat.Throughput {
		t.Errorf("tiered (%v ex/s) must beat remote-PS placement (%v ex/s) for M3prod",
			tiered.Throughput, flat.Throughput)
	}
}

func TestTieredRequiresAssignment(t *testing.T) {
	cfg := workload.DefaultTestSuite(64, 4)
	plan := placement.Plan{Strategy: placement.Tiered, Platform: hw.BigBasin()}
	if _, err := Estimate(Scenario{Cfg: cfg, Platform: hw.BigBasin(), Batch: 100, Plan: plan}); err == nil {
		t.Error("tiered plan without an assignment must be rejected")
	}
}

func TestBestPlacementPicksTieredForOverflowModel(t *testing.T) {
	// M3prod on Big Basin: flat strategies leave only RemoteCPU; the
	// tiered hierarchy (HBM + host DRAM + hot-row cache) must win.
	plan, bd, err := BestPlacement(workload.M3Prod(), hw.BigBasin(), 800, DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != placement.Tiered {
		t.Errorf("best placement for M3prod on BigBasin = %v, want Tiered", plan.Strategy)
	}
	if bd.Throughput <= 0 {
		t.Error("zero throughput")
	}
}

// TestTieredCacheLiftsThroughput sweeps the hot-row cache fraction and
// checks the MTrainS-style effect: more cache -> higher hit rate ->
// higher modeled throughput, on a model that spills.
func TestTieredCacheLiftsThroughput(t *testing.T) {
	m3 := workload.M3Prod()
	var prevHit, prevThpt float64
	for i, frac := range []float64{-1, 0.05, 0.15, 0.30} {
		plan, err := placement.FitTiered(m3, hw.BigBasin(), placement.TieredOptions{
			Assign: memtierOptions(frac),
		})
		if err != nil {
			t.Fatalf("cache fraction %v: %v", frac, err)
		}
		bd, err := Estimate(Scenario{Cfg: m3, Platform: hw.BigBasin(), Batch: 800, Plan: plan})
		if err != nil {
			t.Fatal(err)
		}
		hit := plan.Tiered.CacheHitRate
		if i > 0 && hit+1e-9 < prevHit {
			t.Errorf("cache fraction %v: hit rate fell %v -> %v", frac, prevHit, hit)
		}
		if i > 0 && frac > 0 && bd.Throughput < prevThpt*0.98 {
			t.Errorf("cache fraction %v: throughput regressed %v -> %v", frac, prevThpt, bd.Throughput)
		}
		prevHit, prevThpt = hit, bd.Throughput
	}
}

package perfmodel

import "repro/internal/telemetry"

// PredictedPhases projects an analytic Breakdown onto the telemetry
// phase taxonomy, in seconds per step — the "predicted" column of
// telemetry's observed-vs-predicted attribution report.
//
// The mapping follows the model's own accounting: Compute is fwd+bwd
// MLP+interaction FLOP time at a 1:2 forward:backward ratio (the flops
// term is 3× the forward pass), EmbLookup covers the full
// lookup/scatter/optimizer traffic of the embedding tables (so it is
// compared against the observed emb_lookup + sparse_scatter time by
// callers that fold phases), Comm is the pooled-row all-to-all, and
// AllReduce the dense-gradient synchronization.
func PredictedPhases(bd Breakdown) map[telemetry.Phase]float64 {
	return map[telemetry.Phase]float64{
		telemetry.PhaseDenseFwd:  bd.Compute / 3,
		telemetry.PhaseDenseBwd:  bd.Compute * 2 / 3,
		telemetry.PhaseEmbLookup: bd.EmbLookup,
		telemetry.PhaseAllToAll:  bd.Comm,
		telemetry.PhaseAllReduce: bd.AllReduce,
	}
}

package perfmodel

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/placement"
	"repro/internal/workload"
)

func gpuThroughput(t *testing.T, cfg core.Config, p hw.Platform, batch int, strat placement.Strategy, remotePS int) Breakdown {
	t.Helper()
	plan, err := placement.Fit(cfg, p, strat, remotePS)
	if err != nil {
		t.Fatalf("placement %v on %s: %v", strat, p.Name, err)
	}
	bd, err := Estimate(Scenario{Cfg: cfg, Platform: p, Batch: batch, Plan: plan})
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	return bd
}

func cpuThroughput(t *testing.T, cfg core.Config, batch, trainers, sparsePS, densePS int) Breakdown {
	t.Helper()
	bd, err := Estimate(Scenario{Cfg: cfg, Platform: hw.DualSocketCPU(), Batch: batch,
		NumTrainers: trainers, NumSparsePS: sparsePS, NumDensePS: densePS})
	if err != nil {
		t.Fatalf("estimate cpu: %v", err)
	}
	return bd
}

func TestEstimateValidation(t *testing.T) {
	cfg := workload.DefaultTestSuite(64, 4)
	if _, err := Estimate(Scenario{Cfg: cfg, Platform: hw.BigBasin(), Batch: 0}); err == nil {
		t.Error("zero batch accepted")
	}
	bad := cfg
	bad.Sparse = nil
	if _, err := Estimate(Scenario{Cfg: bad, Platform: hw.BigBasin(), Batch: 100}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBreakdownConsistency(t *testing.T) {
	cfg := workload.DefaultTestSuite(1024, 16)
	bd := gpuThroughput(t, cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0)
	sum := bd.Compute + bd.EmbLookup + bd.Comm + bd.AllReduce + bd.Net + bd.Host + bd.Launch
	if math.Abs(sum-bd.IterTime)/bd.IterTime > 1e-9 {
		t.Errorf("components %v do not sum to IterTime %v", sum, bd.IterTime)
	}
	if math.Abs(bd.Throughput-1600/bd.IterTime) > 1e-6*bd.Throughput {
		t.Error("throughput != batch/iterTime")
	}
	if bd.PowerUnits != 7.3 {
		t.Errorf("BigBasin-only setup power = %v", bd.PowerUnits)
	}
	if bd.Bottleneck == "" {
		t.Error("bottleneck not named")
	}
}

func TestCPUClusterPowerAccounting(t *testing.T) {
	cfg := workload.DefaultTestSuite(256, 16)
	bd := cpuThroughput(t, cfg, 200, 6, 7, 1)
	if bd.PowerUnits != 14 {
		t.Errorf("6 trainers + 8 PS should be 14 power units, got %v", bd.PowerUnits)
	}
	rem := gpuThroughput(t, workload.M3Prod(), hw.BigBasin(), 800, placement.RemoteCPU, 8)
	if rem.PowerUnits != 7.3+8 {
		t.Errorf("BigBasin + 8 PS power = %v", rem.PowerUnits)
	}
}

// TestFig10Properties pins the qualitative Fig 10 findings: the GPU wins
// everywhere, and its advantage grows with dense features while power
// efficiency favors the CPU for the smallest dense models.
func TestFig10Properties(t *testing.T) {
	ratio := func(d, s int) float64 {
		cfg := workload.DefaultTestSuite(d, s)
		g := gpuThroughput(t, cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0)
		c := cpuThroughput(t, cfg, 200, 1, 1, 1)
		return g.Throughput / c.Throughput
	}
	for _, d := range workload.SweepDense {
		for _, s := range workload.SweepSparse {
			r := ratio(d, s)
			if r <= 1 {
				t.Errorf("(%d,%d): GPU must beat CPU on throughput, ratio %v", d, s, r)
			}
			if r > 8 {
				t.Errorf("(%d,%d): ratio %v far outside the paper's 1.9-5.6 band", d, s, r)
			}
		}
	}
	// Dense trend for the low-sparse columns (paper: 1.92 -> 4.5).
	if ratio(4096, 4) <= ratio(64, 4) {
		t.Error("GPU advantage must grow with dense features (sparse=4)")
	}
	if ratio(4096, 16) <= ratio(64, 16) {
		t.Error("GPU advantage must grow with dense features (sparse=16)")
	}
	// Power efficiency: CPU wins at (64,4) (paper cell 0.79 < 1),
	// GPU wins at (4096,16) (paper cell 2.24 > 1).
	div := PaperTargets.Fig10PowerDivisor
	if pe := ratio(64, 4) / div; pe >= 1.8 {
		t.Errorf("(64,4) power-efficiency ratio %v; paper has CPU competitive (0.79)", pe)
	}
	if pe := ratio(4096, 16) / div; pe <= 1 {
		t.Errorf("(4096,16) power-efficiency ratio %v; paper has GPU ahead (2.24)", pe)
	}
}

// TestTableIIIProperties pins the headline case study: M1 ports to GPU
// profitably, M2 roughly breaks even, M3 loses on throughput.
func TestTableIIIProperties(t *testing.T) {
	m1 := workload.M1Prod()
	m2 := workload.M2Prod()
	m3 := workload.M3Prod()
	s1, _ := workload.ProdSetup("M1prod")
	s2, _ := workload.ProdSetup("M2prod")
	s3, _ := workload.ProdSetup("M3prod")

	r1 := gpuThroughput(t, m1, hw.BigBasin(), s1.OptimalGPUBatch, placement.GPUMemory, 0).Throughput /
		cpuThroughput(t, m1, s1.TrainerBatch, s1.Trainers, s1.SparsePS, s1.DensePS).Throughput
	r2 := gpuThroughput(t, m2, hw.BigBasin(), s2.OptimalGPUBatch, placement.GPUMemory, 0).Throughput /
		cpuThroughput(t, m2, s2.TrainerBatch, s2.Trainers, s2.SparsePS, s2.DensePS).Throughput
	r3 := gpuThroughput(t, m3, hw.BigBasin(), s3.OptimalGPUBatch, placement.RemoteCPU, 8).Throughput /
		cpuThroughput(t, m3, s3.TrainerBatch, s3.Trainers, s3.SparsePS, s3.DensePS).Throughput

	if r1 <= 1.0 {
		t.Errorf("M1prod GPU/CPU = %v; paper reports 2.25x (must exceed 1)", r1)
	}
	if r2 < 0.5 || r2 > 1.3 {
		t.Errorf("M2prod GPU/CPU = %v; paper reports 0.85x (rough parity)", r2)
	}
	if r3 >= 1.0 {
		t.Errorf("M3prod GPU/CPU = %v; paper reports 0.67x (CPU wins)", r3)
	}
	if !(r1 > r2 && r2 > r3) {
		t.Errorf("ordering must be M1 > M2 > M3, got %v %v %v", r1, r2, r3)
	}
}

// TestFig14Orderings pins the placement preferences of Fig 14.
func TestFig14Orderings(t *testing.T) {
	m2 := workload.M2Prod()
	batch := 3200
	bbGPU := gpuThroughput(t, m2, hw.BigBasin(), batch, placement.GPUMemory, 0).Throughput
	bbSys := gpuThroughput(t, m2, hw.BigBasin(), batch, placement.SystemMemory, 0).Throughput
	bbRem := gpuThroughput(t, m2, hw.BigBasin(), batch, placement.RemoteCPU, 8).Throughput
	zGPU := gpuThroughput(t, m2, hw.Zion(), batch, placement.GPUMemory, 0).Throughput
	zSys := gpuThroughput(t, m2, hw.Zion(), batch, placement.SystemMemory, 0).Throughput
	zRem := gpuThroughput(t, m2, hw.Zion(), batch, placement.RemoteCPU, 8).Throughput

	// Big Basin: GPU memory wins decisively; system memory beats remote.
	if !(bbGPU > bbSys && bbSys > bbRem) {
		t.Errorf("BigBasin ordering GPU(%v) > Sys(%v) > Remote(%v) violated", bbGPU, bbSys, bbRem)
	}
	if bbGPU/bbSys < 1.5 {
		t.Errorf("paper: BB GPU placement ~4x over system memory; got %v", bbGPU/bbSys)
	}
	// Zion: system memory wins (no GPU fabric); GPU placement loses to it.
	if !(zSys > zGPU && zSys > zRem) {
		t.Errorf("Zion ordering Sys(%v) best violated (GPU %v, Remote %v)", zSys, zGPU, zRem)
	}
	// Zion's GPU placement must be much worse than Big Basin's.
	if zGPU >= bbGPU {
		t.Errorf("Zion GPU placement (%v) must trail Big Basin's (%v): no NVLink", zGPU, bbGPU)
	}
	// Remote is roughly platform-insensitive (slightly better on Zion).
	if zRem < bbRem {
		t.Errorf("Zion remote (%v) should be >= Big Basin remote (%v)", zRem, bbRem)
	}
}

// TestFig12Properties pins hash-size scaling: GPU throughput declines
// with hash size; CPU stays flat.
func TestFig12Properties(t *testing.T) {
	var gpuPrev, cpuFirst, cpuLast float64
	for i, h := range workload.SweepHash {
		cfg := workload.TestSuiteConfig(1024, 16, 512, 3, h)
		g := gpuThroughput(t, cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0).Throughput
		c := cpuThroughput(t, cfg, 200, 1, 1, 1).Throughput
		if i == 0 {
			cpuFirst = c
		}
		cpuLast = c
		if i > 0 && g > gpuPrev*1.02 {
			t.Errorf("hash %d: GPU throughput rose (%v -> %v); must be non-increasing", h, gpuPrev, g)
		}
		gpuPrev = g
	}
	first := gpuThroughput(t, workload.TestSuiteConfig(1024, 16, 512, 3, workload.SweepHash[0]),
		hw.BigBasin(), 1600, placement.GPUMemory, 0).Throughput
	if first/gpuPrev < 1.3 {
		t.Errorf("GPU decline across hash sweep = %v, want noticeable (>1.3x)", first/gpuPrev)
	}
	if cpuFirst/cpuLast > 1.2 || cpuLast/cpuFirst > 1.2 {
		t.Errorf("CPU must be ~flat across hash sizes: %v vs %v", cpuFirst, cpuLast)
	}
}

// TestFig11Properties pins batch scaling: GPU throughput grows strongly
// with batch; CPU changes mildly.
func TestFig11Properties(t *testing.T) {
	cfg := workload.DefaultTestSuite(1024, 16)
	g400 := gpuThroughput(t, cfg, hw.BigBasin(), 400, placement.GPUMemory, 0).Throughput
	g3200 := gpuThroughput(t, cfg, hw.BigBasin(), 3200, placement.GPUMemory, 0).Throughput
	if g3200/g400 < 1.5 {
		t.Errorf("GPU batch scaling %v too weak", g3200/g400)
	}
	// Diminishing returns: the second doubling gains less than the first.
	g800 := gpuThroughput(t, cfg, hw.BigBasin(), 800, placement.GPUMemory, 0).Throughput
	g1600 := gpuThroughput(t, cfg, hw.BigBasin(), 1600, placement.GPUMemory, 0).Throughput
	if (g1600 / g800) > (g800 / g400) {
		t.Error("GPU batch scaling should saturate, not accelerate")
	}
	c100 := cpuThroughput(t, cfg, 100, 1, 1, 1).Throughput
	c400 := cpuThroughput(t, cfg, 400, 1, 1, 1).Throughput
	if c400/c100 > 2.5 || c100/c400 > 2.0 {
		t.Errorf("CPU batch sensitivity out of range: %v vs %v", c100, c400)
	}
}

// TestFig13Properties pins MLP-dimension scaling: CPU throughput falls
// faster than GPU as MLPs grow (§V-D).
func TestFig13Properties(t *testing.T) {
	small := workload.TestSuiteConfig(1024, 64, 64, 2, workload.TestSuiteHashSize)
	big := workload.TestSuiteConfig(1024, 64, 1024, 4, workload.TestSuiteHashSize)
	gSmall := gpuThroughput(t, small, hw.BigBasin(), 1600, placement.GPUMemory, 0).Throughput
	gBig := gpuThroughput(t, big, hw.BigBasin(), 1600, placement.GPUMemory, 0).Throughput
	cSmall := cpuThroughput(t, small, 200, 1, 1, 1).Throughput
	cBig := cpuThroughput(t, big, 200, 1, 1, 1).Throughput
	cpuDrop := cSmall / cBig
	gpuDrop := gSmall / gBig
	if cpuDrop <= gpuDrop {
		t.Errorf("CPU drop (%v) must exceed GPU drop (%v) as MLPs grow", cpuDrop, gpuDrop)
	}
}

func TestBestPlacementPicksPaperChoices(t *testing.T) {
	cal := DefaultCalibration()
	// M1/M2: GPU memory on Big Basin (§VI-A).
	for _, cfg := range []core.Config{workload.M1Prod(), workload.M2Prod()} {
		plan, _, err := BestPlacement(cfg, hw.BigBasin(), 1600, cal)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if plan.Strategy != placement.GPUMemory && plan.Strategy != placement.Hybrid {
			t.Errorf("%s on BigBasin: best = %v, paper used GPUMemory", cfg.Name, plan.Strategy)
		}
	}
	// M2 on Zion: system memory (Fig 14).
	plan, _, err := BestPlacement(workload.M2Prod(), hw.Zion(), 3200, cal)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != placement.SystemMemory {
		t.Errorf("M2prod on Zion: best = %v, paper shows SystemMemory", plan.Strategy)
	}
}

func TestSaturationBatch(t *testing.T) {
	cfg := workload.DefaultTestSuite(1024, 16)
	plan, err := placement.Fit(cfg, hw.BigBasin(), placement.GPUMemory, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := Scenario{Cfg: cfg, Platform: hw.BigBasin(), Plan: plan}
	b, err := SaturationBatch(base, []int{100, 200, 400, 800, 1600, 3200, 6400, 12800}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if b < 400 || b > 12800 {
		t.Errorf("saturation batch = %d, expected within sweep", b)
	}
	if _, err := SaturationBatch(base, nil, 0.9); err == nil {
		t.Error("empty candidates must error")
	}
}

func TestGPURandEffMonotone(t *testing.T) {
	cal := DefaultCalibration()
	prev := math.Inf(1)
	for _, bytes := range []float64{1e6, 1e8, 1e9, 1e10, 1e11} {
		e := gpuRandEff(cal, bytes)
		if e > prev {
			t.Errorf("gpuRandEff must be non-increasing in footprint")
		}
		if e <= 0 || e > cal.GPURandEff {
			t.Errorf("gpuRandEff(%v) = %v out of range", bytes, e)
		}
		prev = e
	}
}

func TestZionSystemMemoryBeatsBigBasinSystemMemory(t *testing.T) {
	// §VI-B: Zion's 1 TB/s host memory makes system-memory placement
	// ~4x faster than Big Basin's.
	m2 := workload.M2Prod()
	bb := gpuThroughput(t, m2, hw.BigBasin(), 3200, placement.SystemMemory, 0)
	z := gpuThroughput(t, m2, hw.Zion(), 3200, placement.SystemMemory, 0)
	if z.Throughput/bb.Throughput < 1.5 {
		t.Errorf("Zion/BB system-memory ratio %v, want >1.5 (paper ~3.6x)",
			z.Throughput/bb.Throughput)
	}
}

package perfmodel

// PaperTargets records the quantitative anchors the paper reports, used
// both by the one-time calibration fit (cmd/calibrate) and by
// EXPERIMENTS.md's paper-vs-measured accounting. Indices follow the
// paper's figure axes.
var PaperTargets = struct {
	// Fig10Ratio[denseIdx][sparseIdx] is the GPU/CPU throughput ratio
	// for dense {64,256,1024,4096} × sparse {4,16,64,128}.
	Fig10Ratio [4][4]float64
	// Fig10PowerDivisor converts a Fig 10 throughput ratio into the
	// power-efficiency ratio: BigBasin (7.3 units) vs the 3-node CPU
	// setup (trainer + dense PS + sparse PS).
	Fig10PowerDivisor float64
	// TableIIIThroughput / TableIIIPowerEff are the M1/M2/M3 GPU-vs-
	// CPU-setup ratios of Table III.
	TableIIIThroughput [3]float64
	TableIIIPowerEff   [3]float64
	// TableIIIOptBatch is the per-GPU saturation batch of Table III.
	TableIIIOptBatch [3]int
	// Fig14BigBasin / Fig14Zion are normalized M2prod throughputs for
	// placements {GPUMemory, SystemMemory, RemoteCPU}, read from the
	// figure with Big Basin RemoteCPU ≈ 1.
	Fig14BigBasin [3]float64
	Fig14Zion     [3]float64
	// Fig12GPUDecline is the throughput ratio between hash 1e5 and
	// hash 2.56e7 on GPU for a mid-size config; CPU is ~flat.
	Fig12GPUDecline float64
	Fig12CPUDecline float64
	// Fig11GPUScaling is the throughput gain from batch 400 to 3200
	// on GPU; Fig11CPUScaling from 100 to 400 on CPU.
	Fig11GPUScaling float64
	Fig11CPUScaling float64
}{
	Fig10Ratio: [4][4]float64{
		{1.92, 2.42, 3.58, 2.53},
		{3.50, 3.42, 3.50, 3.06},
		{4.38, 5.62, 3.53, 3.03},
		{4.50, 5.45, 3.64, 4.44},
	},
	Fig10PowerDivisor:  7.3 / 3.0,
	TableIIIThroughput: [3]float64{2.25, 0.85, 0.67},
	TableIIIPowerEff:   [3]float64{4.3, 2.8, 0.43},
	TableIIIOptBatch:   [3]int{1600, 3200, 800},
	Fig14BigBasin:      [3]float64{4.7, 1.2, 1.0},
	Fig14Zion:          [3]float64{2.0, 4.3, 1.2},
	Fig12GPUDecline:    4.0,
	Fig12CPUDecline:    1.1,
	Fig11GPUScaling:    3.0,
	Fig11CPUScaling:    1.5,
}

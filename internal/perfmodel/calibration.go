// Package perfmodel estimates per-iteration training time and throughput
// for a DLRM configuration on a hardware platform with a given embedding
// placement — the quantity every throughput figure of the paper (Fig 1,
// 10, 11, 12, 13, 14 and Table III) reports.
//
// The model is a roofline-style composition of operator costs:
//
//   - MLP compute on the GEMM roofline of the executing device,
//     with a batch-dependent efficiency ramp (small per-device batches
//     underutilize wide vector units / SMs);
//   - embedding lookups and updates as random-access memory traffic on
//     the owning memory's bandwidth, derated for irregular access;
//   - pooled-embedding exchange (all-to-all) over NVLink, PCIe-via-host,
//     or the network, depending on the placement;
//   - dense-gradient all-reduce across data-parallel replicas;
//   - fixed per-iteration host overhead plus per-kernel launch costs
//     (the CUDA API overhead §V-B attributes large-batch gains to);
//   - for the distributed CPU baseline, asynchronous (Hogwild/EASGD)
//     stage pipelining: throughput is set by the slowest of the
//     per-trainer compute, network, and parameter-server service times.
//
// All achievable-fraction constants live in Calibration and are
// documented inline; hardware peaks come from the hw package.
package perfmodel

// Calibration gathers every achievable-fraction and overhead constant in
// one place so the model can be tuned centrally and ablated.
type Calibration struct {
	// GPUGemmEff is the fraction of GPU peak FLOPs large GEMMs reach.
	GPUGemmEff float64
	// CPUGemmEff is the fraction of CPU peak FLOPs MKL-class GEMMs
	// reach under a full Hogwild thread complement.
	CPUGemmEff float64
	// BatchEffHalf is the per-device batch at which GEMM efficiency
	// reaches half its asymptote (efficiency ramp b/(b+half)).
	BatchEffHalf float64
	// GPURandEff / CPURandEff derate HBM / DRAM bandwidth for random
	// embedding-row gathers and scatters.
	GPURandEff float64
	CPURandEff float64
	// NVLinkEff, PCIeEff, NetEff are protocol efficiencies on the
	// respective links.
	NVLinkEff float64
	PCIeEff   float64
	NetEff    float64
	// AllToAllSpread penalizes all-to-all exchanges as more
	// embedding-holding GPUs participate (cube-mesh relaying and
	// extra message overhead): cost multiplier 1 + spread*(g_emb-1).
	AllToAllSpread float64
	// KernelLaunchSec is the host-side cost of one kernel dispatch.
	KernelLaunchSec float64
	// GPUFixedSec is the per-iteration host overhead of a GPU
	// iteration (framework dispatch, synchronization).
	GPUFixedSec float64
	// CPUFixedSec is the per-iteration framework overhead of a CPU
	// trainer iteration.
	CPUFixedSec float64
	// HogwildEff is the scaling efficiency of intra-trainer Hogwild
	// threads.
	HogwildEff float64
	// CacheBatch is the CPU batch size at which cache pressure starts
	// to bite (compute multiplier 1 + b/CacheBatch).
	CacheBatch float64
	// HostCopyBWPerSocket is the effective bytes/s one socket
	// contributes to RPC serialization and request handling on a
	// trainer host exchanging embeddings with remote servers.
	HostCopyBWPerSocket float64
	// HostStageBWPerSocket is the effective bytes/s one socket
	// contributes to DMA staging (pinned-buffer copies between NIC,
	// DRAM, and PCIe) on a GPU host.
	HostStageBWPerSocket float64
	// EASGDPeriodIters is how many iterations pass between elastic
	// synchronizations with the dense parameter server.
	EASGDPeriodIters float64
	// EmbedFwdBwdFactor scales embedding traffic for the full
	// forward + backward + optimizer-state pass (read, scatter
	// read-modify-write, momentum/Adagrad state).
	EmbedFwdBwdFactor float64
	// CacheSlope degrades GPU random-access efficiency as the per-GPU
	// embedding footprint outgrows on-chip caches/TLB reach:
	// eff = base / (1 + slope·log10(bytes/CacheRefBytes)) for
	// footprints above CacheRefBytes. The paper observes CPU lookup
	// time is hash-size insensitive (§V-C), so no CPU equivalent.
	CacheSlope float64
	// CacheRefBytes is the footprint at which GPU lookup efficiency
	// starts degrading.
	CacheRefBytes float64
	// PSHandleBWPerNode is the effective bytes/s one parameter server
	// sustains through its RPC stack (serialization, request handling)
	// — in production this, not DRAM, is the sparse-PS bottleneck.
	PSHandleBWPerNode float64
	// RemoteRTTSec is the effective per-table round-trip latency a
	// synchronous GPU trainer pays when embeddings live on remote
	// parameter servers (§VI-B: "lookup latency ... becomes a
	// bottleneck"). Asynchronous CPU trainers hide it with Hogwild
	// threads.
	RemoteRTTSec float64
	// PSDRAMEff derates a parameter server's DRAM bandwidth for
	// serving scattered per-request embedding reads and gradient
	// scatters under locking — much lower than CPURandEff, which
	// covers bulk local gathers by the training process itself.
	PSDRAMEff float64
	// HostBounceFactor multiplies the cost of GPU-GPU exchanges that
	// must bounce through host memory when no GPU fabric exists (the
	// Zion prototype): serialization, extra copies, and no overlap.
	HostBounceFactor float64
	// NVMRandEff derates NVM/SSD bandwidth for random embedding-row
	// reads in the tiered hierarchy's block-storage tier (queue-depth
	// parallelism keeps 4K random reads at roughly half of sequential).
	NVMRandEff float64
}

// DefaultCalibration returns the constants used throughout the
// experiments. They were fixed once against the paper's headline ratios
// (Fig 10's GPU/CPU band of ~1.9-5.6x, Table III's 2.25/0.85/0.67x) and
// are not tuned per-figure.
func DefaultCalibration() Calibration {
	return Calibration{
		GPUGemmEff:           0.75,
		CPUGemmEff:           0.535,
		BatchEffHalf:         35.3,
		GPURandEff:           0.70,
		CPURandEff:           0.42,
		NVLinkEff:            0.70,
		PCIeEff:              0.75,
		NetEff:               0.70,
		AllToAllSpread:       0.51,
		KernelLaunchSec:      2e-5,
		GPUFixedSec:          2e-4,
		CPUFixedSec:          1.2e-4,
		HogwildEff:           0.90,
		CacheBatch:           3000,
		HostCopyBWPerSocket:  4.72e9,
		HostStageBWPerSocket: 7.36e9,
		EASGDPeriodIters:     43.6,
		EmbedFwdBwdFactor:    3.0,
		CacheSlope:           0.0071,
		CacheRefBytes:        64e6,
		PSHandleBWPerNode:    2.44e9,
		RemoteRTTSec:         1e-4,
		PSDRAMEff:            0.060,
		HostBounceFactor:     1.43,
		NVMRandEff:           0.55,
	}
}

package perfmodel

import (
	"testing"

	"repro/internal/core"
)

func ingestCfg() core.Config {
	return core.Config{
		Name:          "ingest-model",
		DenseFeatures: 16,
		Sparse:        core.UniformSparse(4, 1000, 5),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.Concat,
	}
}

func TestIngestRecordBytesExact(t *testing.T) {
	// label(1) + dense(16*4) + per feature uint16 + 4 bytes/index.
	got := IngestRecordBytes(16, []int{3, 0, 7, 1})
	want := int64(1 + 64 + (2 + 12) + 2 + (2 + 28) + (2 + 4))
	if got != want {
		t.Fatalf("IngestRecordBytes = %d, want %d", got, want)
	}
}

func TestIngestBytesPerExampleMatchesRecordBytes(t *testing.T) {
	cfg := ingestCfg()
	// With every feature at exactly its mean count, the expectation and
	// the exact record size must agree.
	counts := []int{5, 5, 5, 5}
	if got, want := IngestBytesPerExample(cfg), float64(IngestRecordBytes(16, counts)); got != want {
		t.Fatalf("IngestBytesPerExample = %v, exact record = %v", got, want)
	}
}

func TestIngestRoofline(t *testing.T) {
	cfg := ingestCfg()
	perEx := IngestBytesPerExample(cfg)
	if need := IngestBandwidthNeeded(cfg, 1000); need != 1000*perEx {
		t.Fatalf("bandwidth needed %v, want %v", need, 1000*perEx)
	}
	if got := IngestExamplesPerSec(cfg, 2, 10*perEx); got != 20 {
		t.Fatalf("2 readers at 10 ex/s each deliver %v ex/s, want 20", got)
	}
	if got := IngestExamplesPerSec(cfg, 0, 100); got != 0 {
		t.Fatalf("0 readers deliver %v", got)
	}
	// Readers needed: strictly enough, no more than one spare.
	for _, exs := range []float64{100, 1234, 99999} {
		n := IngestReadersNeeded(cfg, exs, 1<<20)
		if IngestExamplesPerSec(cfg, n, 1<<20) < exs {
			t.Fatalf("%d readers cannot sustain %v ex/s", n, exs)
		}
		if n > 1 && IngestExamplesPerSec(cfg, n-1, 1<<20) >= exs {
			t.Fatalf("%d readers overshoot for %v ex/s", n, exs)
		}
	}
}

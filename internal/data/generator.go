// Package data synthesizes click-through-rate training data with the
// statistical structure the paper attributes to production workloads:
// dense features, multi-hot sparse features whose per-example lengths
// follow a truncated power law (Fig 7), embedding-row popularity following
// a Zipf law (the irregular-access characterization of §III-A2), and
// labels planted by a hidden teacher model so that model quality (NE,
// accuracy) is a meaningful, improvable metric.
//
// The paper trains from Hive via decoupled reader servers (§IV-B2); the
// Reader type mirrors that arrangement with a bounded channel so trainers
// never stall on data generation in the real-training experiments.
package data

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/ingest"
	"repro/internal/tensor"
	"repro/internal/xrand"
)

// GeneratorOptions tune the synthetic distribution.
type GeneratorOptions struct {
	// TeacherScale multiplies the hidden teacher's logits; larger
	// values make labels more learnable (less label noise).
	TeacherScale float64
	// TargetCTR shifts teacher logits so the positive rate is roughly
	// this value. Production CTR-style tasks sit well below 0.5.
	TargetCTR float64
	// IndexSkew is the Zipf exponent for embedding-row popularity
	// (> 1). Higher values concentrate lookups on fewer rows.
	IndexSkew float64
	// LengthSkew is the power-law exponent of per-example multi-hot
	// lengths.
	LengthSkew float64
}

// DefaultOptions returns the options used across the experiments.
func DefaultOptions() GeneratorOptions {
	return GeneratorOptions{
		TeacherScale: 3.0,
		TargetCTR:    0.25,
		IndexSkew:    1.2,
		LengthSkew:   1.1,
	}
}

// Generator produces MiniBatches for a model config.
type Generator struct {
	cfg  core.Config
	opts GeneratorOptions
	rng  *xrand.RNG

	teacher   *core.Model
	bias      float32
	lengthGen []*xrand.BoundedZipf
	indexGen  []*rand.Zipf
}

// NewGenerator builds a deterministic generator for cfg. The teacher model
// is drawn from the same config (with small MLP stacks) using a seed
// derived from the given one, so two generators with equal seeds produce
// identical streams.
func NewGenerator(cfg core.Config, seed int64, opts GeneratorOptions) *Generator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := xrand.New(seed)
	g := &Generator{cfg: cfg, opts: opts, rng: rng}

	// The teacher shares the feature space but uses compact MLPs: its
	// job is to plant learnable structure, not to be expensive.
	tCfg := cfg
	tCfg.Name = cfg.Name + "-teacher"
	tCfg.BottomMLP = []int{16}
	tCfg.TopMLP = []int{16}
	g.teacher = core.NewModel(tCfg, rng.Split())

	for _, s := range cfg.Sparse {
		lg := xrand.NewBoundedZipf(rng.Split(), opts.LengthSkew, s.MaxPooled)
		g.lengthGen = append(g.lengthGen, lg)
		ir := xrand.New(int64(rng.Uint64()))
		g.indexGen = append(g.indexGen, ir.Zipf(opts.IndexSkew, uint64(s.HashSize-1)))
	}

	g.calibrateBias()
	return g
}

// calibrateBias estimates the logit shift needed to hit TargetCTR using a
// probe batch.
func (g *Generator) calibrateBias() {
	probe := g.rawBatch(256)
	logits := g.teacher.Forward(probe)
	// Mean teacher logit, scaled.
	var mean float64
	for _, z := range logits {
		mean += float64(z)
	}
	mean = mean * g.opts.TeacherScale / float64(len(logits))
	// logit(p) = ln(p/(1-p)); shift so scaled mean maps near target.
	target := g.opts.TargetCTR
	if target <= 0 || target >= 1 {
		target = 0.25
	}
	wantLogit := float32(math.Log(target / (1 - target)))
	g.bias = wantLogit - float32(mean)
}

// rawBatch generates features (no labels yet).
func (g *Generator) rawBatch(b int) *core.MiniBatch {
	return g.rawBatchInto(b, nil)
}

// rawBatchInto fills mb with freshly drawn features, reusing its dense
// matrix, bag index/offset slices, and label buffer when shapes allow.
// Pass nil to allocate a new batch.
func (g *Generator) rawBatchInto(b int, mb *core.MiniBatch) *core.MiniBatch {
	if mb == nil {
		mb = &core.MiniBatch{}
	}
	if mb.Dense == nil || mb.Dense.Rows != b || mb.Dense.Cols != g.cfg.DenseFeatures {
		mb.Dense = tensor.New(b, g.cfg.DenseFeatures)
	}
	for i := range mb.Dense.Data {
		mb.Dense.Data[i] = float32(g.rng.Norm())
	}
	if len(mb.Bags) != g.cfg.NumSparse() {
		mb.Bags = make([]embedding.Bag, g.cfg.NumSparse())
	}
	for f := range g.cfg.Sparse {
		hashSize := g.cfg.Sparse[f].HashSize
		meanTarget := g.cfg.Sparse[f].MeanPooled
		scale := meanTarget / g.lengthGen[f].Mean()
		bag := &mb.Bags[f]
		bag.Indices = bag.Indices[:0]
		bag.Offsets = append(bag.Offsets[:0], 0)
		for i := 0; i < b; i++ {
			// Draw a power-law length, rescaled toward the
			// configured mean, at least 1, truncated at max.
			n := int(float64(g.lengthGen[f].Sample())*scale + 0.5)
			if n < 1 {
				n = 1
			}
			if n > g.cfg.Sparse[f].MaxPooled {
				n = g.cfg.Sparse[f].MaxPooled
			}
			for k := 0; k < n; k++ {
				v := g.indexGen[f].Uint64()
				if v >= uint64(hashSize) {
					v = uint64(hashSize) - 1
				}
				bag.Indices = append(bag.Indices, int32(v))
			}
			bag.Offsets = append(bag.Offsets, int32(len(bag.Indices)))
		}
	}
	if cap(mb.Labels) < b {
		mb.Labels = make([]float32, b)
	}
	mb.Labels = mb.Labels[:b]
	clear(mb.Labels)
	// A recycled batch may carry dedup views from a previous producer
	// (e.g. an ingest pipeline); they describe the old bags, not the
	// freshly drawn ones.
	mb.DetachDedup()
	return mb
}

// NextBatch generates a labeled batch of b examples.
func (g *Generator) NextBatch(b int) *core.MiniBatch {
	return g.NextBatchInto(b, nil)
}

// NextBatchInto generates a labeled batch of b examples into mb, reusing
// its buffers (dense matrix, bag slices, labels) so a steady-state
// training loop recycles one MiniBatch instead of churning the heap. Pass
// nil to allocate fresh; the (possibly re-pointed) batch is returned.
func (g *Generator) NextBatchInto(b int, mb *core.MiniBatch) *core.MiniBatch {
	mb = g.rawBatchInto(b, mb)
	logits := g.teacher.Forward(mb)
	for i, z := range logits {
		p := tensor.Sigmoid(float32(g.opts.TeacherScale)*z + g.bias)
		if g.rng.Float32() < p {
			mb.Labels[i] = 1
		}
	}
	return mb
}

// Config returns the model config this generator serves.
func (g *Generator) Config() core.Config { return g.cfg }

// Fork returns a generator that shares this generator's hidden teacher —
// and therefore its label function — but draws features from an
// independent stream seeded by seed. Distributed trainers and held-out
// evaluation sets must Fork one base generator so they see the same
// planted task.
func (g *Generator) Fork(seed int64) *Generator {
	rng := xrand.New(seed)
	f := &Generator{
		cfg:  g.cfg,
		opts: g.opts,
		rng:  rng,
		// Weight-sharing clone: same label function, but private
		// activation buffers so forks are safe on separate goroutines.
		teacher: g.teacher.ShareWeights(),
		bias:    g.bias,
	}
	for _, s := range g.cfg.Sparse {
		f.lengthGen = append(f.lengthGen, xrand.NewBoundedZipf(rng.Split(), g.opts.LengthSkew, s.MaxPooled))
		ir := xrand.New(int64(rng.Uint64()))
		f.indexGen = append(f.indexGen, ir.Zipf(g.opts.IndexSkew, uint64(s.HashSize-1)))
	}
	return f
}

// EvalSet produces n batches for held-out evaluation.
func (g *Generator) EvalSet(batches, batchSize int) []*core.MiniBatch {
	out := make([]*core.MiniBatch, batches)
	for i := range out {
		out[i] = g.NextBatch(batchSize)
	}
	return out
}

// WriteShards materializes a synthetic dataset to dir in the ingest shard
// format: shards files of examplesPerShard examples each, plus the
// manifest. The examples are drawn from this generator's stream (the call
// advances it), so two fresh generators with equal seeds write
// bit-identical datasets — the determinism contract the ingest format
// tests pin. Batches are drawn in chunks of up to 256 examples.
func (g *Generator) WriteShards(dir string, shards, examplesPerShard int) error {
	w, err := ingest.NewShardWriter(dir, g.cfg)
	if err != nil {
		return err
	}
	var mb *core.MiniBatch
	for s := 0; s < shards; s++ {
		for left := examplesPerShard; left > 0; {
			chunk := left
			if chunk > 256 {
				chunk = 256
			}
			mb = g.NextBatchInto(chunk, mb)
			if err := w.Append(mb); err != nil {
				return err
			}
			left -= chunk
		}
		if err := w.EndShard(); err != nil {
			return err
		}
	}
	return w.Close()
}

// GeneratorSource adapts a Generator to core.BatchSource: the in-memory
// baseline feed the ingest_scaling experiment compares the on-disk
// pipeline against. Recycled batches refill in place, so steady-state
// feeding is allocation-free; the stream is infinite (NextBatch never
// returns io.EOF).
type GeneratorSource struct {
	g     *Generator
	batch int
	free  []*core.MiniBatch
}

// NewSource wraps the generator as a BatchSource producing batches of the
// given size.
func (g *Generator) NewSource(batchSize int) *GeneratorSource {
	return &GeneratorSource{g: g, batch: batchSize}
}

// NextBatch implements core.BatchSource.
func (s *GeneratorSource) NextBatch() (*core.MiniBatch, error) {
	var mb *core.MiniBatch
	if n := len(s.free); n > 0 {
		mb = s.free[n-1]
		s.free = s.free[:n-1]
	}
	return s.g.NextBatchInto(s.batch, mb), nil
}

// Recycle implements core.BatchSource.
func (s *GeneratorSource) Recycle(mb *core.MiniBatch) {
	if mb != nil {
		s.free = append(s.free, mb)
	}
}

// Reader streams batches through a bounded channel from a dedicated
// goroutine, mirroring the decoupled reader tier of the production
// pipeline. Close stops the producer.
type Reader struct {
	C    <-chan *core.MiniBatch
	stop chan struct{}
}

// NewReader starts a reader producing batches of the given size with the
// given channel depth.
func NewReader(g *Generator, batchSize, depth int) *Reader {
	ch := make(chan *core.MiniBatch, depth)
	stop := make(chan struct{})
	go func() {
		defer close(ch)
		for {
			b := g.NextBatch(batchSize)
			select {
			case ch <- b:
			case <-stop:
				return
			}
		}
	}()
	return &Reader{C: ch, stop: stop}
}

// Close terminates the producing goroutine.
func (r *Reader) Close() { close(r.stop) }

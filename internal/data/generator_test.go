package data

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/xrand"
)

func genConfig() core.Config {
	return core.Config{
		Name:          "gen-test",
		DenseFeatures: 8,
		Sparse:        core.UniformSparse(4, 200, 4),
		EmbeddingDim:  8,
		BottomMLP:     []int{16},
		TopMLP:        []int{16},
		Interaction:   core.DotProduct,
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	cfg := genConfig()
	g1 := NewGenerator(cfg, 42, DefaultOptions())
	g2 := NewGenerator(cfg, 42, DefaultOptions())
	b1 := g1.NextBatch(16)
	b2 := g2.NextBatch(16)
	for i := range b1.Labels {
		if b1.Labels[i] != b2.Labels[i] {
			t.Fatal("same seed must give identical labels")
		}
	}
	for i, v := range b1.Dense.Data {
		if v != b2.Dense.Data[i] {
			t.Fatal("same seed must give identical dense features")
		}
	}
	g3 := NewGenerator(cfg, 43, DefaultOptions())
	b3 := g3.NextBatch(16)
	diff := false
	for i := range b1.Dense.Data {
		if b1.Dense.Data[i] != b3.Dense.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestBatchesAreValid(t *testing.T) {
	cfg := genConfig()
	g := NewGenerator(cfg, 1, DefaultOptions())
	for i := 0; i < 5; i++ {
		b := g.NextBatch(32)
		if err := b.Validate(&cfg); err != nil {
			t.Fatalf("generated batch invalid: %v", err)
		}
	}
}

func TestCTRNearTarget(t *testing.T) {
	cfg := genConfig()
	opts := DefaultOptions()
	opts.TargetCTR = 0.25
	g := NewGenerator(cfg, 2, opts)
	var pos, n float64
	for i := 0; i < 30; i++ {
		b := g.NextBatch(128)
		for _, y := range b.Labels {
			n++
			if y > 0.5 {
				pos++
			}
		}
	}
	ctr := pos / n
	if ctr < 0.10 || ctr > 0.45 {
		t.Errorf("empirical CTR %v too far from target 0.25", ctr)
	}
}

func TestPooledLengthsRespectConfig(t *testing.T) {
	cfg := genConfig()
	cfg.Sparse = core.UniformSparse(2, 500, 8)
	g := NewGenerator(cfg, 3, DefaultOptions())
	maxLen := 0
	var sum, n float64
	for i := 0; i < 20; i++ {
		b := g.NextBatch(64)
		for _, bag := range b.Bags {
			for e := 0; e < bag.Batch(); e++ {
				l := int(bag.Offsets[e+1] - bag.Offsets[e])
				if l > maxLen {
					maxLen = l
				}
				if l < 1 {
					t.Fatal("empty bag generated; min length is 1")
				}
				sum += float64(l)
				n++
			}
		}
	}
	if maxLen > 32 {
		t.Errorf("lookup length %d exceeds truncation 32", maxLen)
	}
	mean := sum / n
	// The rescaled power law should land within a factor ~2 of target.
	if mean < 3 || mean > 16 {
		t.Errorf("mean pooled length %v too far from configured 8", mean)
	}
}

func TestIndexPopularityIsSkewed(t *testing.T) {
	cfg := genConfig()
	cfg.Sparse = core.UniformSparse(1, 10000, 8)
	g := NewGenerator(cfg, 4, DefaultOptions())
	counts := map[int32]int{}
	total := 0
	for i := 0; i < 50; i++ {
		b := g.NextBatch(64)
		for _, ix := range b.Bags[0].Indices {
			counts[ix]++
			total++
		}
	}
	// Zipf access: the most popular row should absorb far more than the
	// uniform share (total / 10000).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := float64(total) / 10000
	if float64(max) < 20*uniformShare {
		t.Errorf("access pattern not skewed: max %d vs uniform share %v", max, uniformShare)
	}
}

func TestLabelsAreLearnable(t *testing.T) {
	// The planted teacher must make labels predictable: training a
	// student on generated data should reduce NE below 1.
	cfg := genConfig()
	g := NewGenerator(cfg, 5, DefaultOptions())
	m := core.NewModel(cfg, xrand.New(6))
	tr := core.NewTrainer(m, core.TrainerConfig{Optimizer: core.OptAdagrad, LR: 0.05})
	for i := 0; i < 400; i++ {
		tr.Step(g.NextBatch(64))
	}
	eval := core.Evaluate(m, g.EvalSet(10, 64))
	if math.IsNaN(eval.NE) {
		t.Fatal("NE is NaN — degenerate labels")
	}
	if eval.NE >= 1.0 {
		t.Errorf("student NE %v >= 1; labels carry no learnable signal", eval.NE)
	}
}

func TestEvalSet(t *testing.T) {
	g := NewGenerator(genConfig(), 7, DefaultOptions())
	set := g.EvalSet(3, 16)
	if len(set) != 3 {
		t.Fatalf("EvalSet len = %d", len(set))
	}
	for _, b := range set {
		if b.Batch() != 16 {
			t.Errorf("eval batch size %d", b.Batch())
		}
	}
}

// TestNextBatchIntoDetachesDedup: refilling a recycled batch that carried
// dedup views (e.g. one produced by an ingest pipeline) must invalidate
// them — the views describe the old bags, and training through a stale
// unique/remap mapping would corrupt labels and gradients silently.
func TestNextBatchIntoDetachesDedup(t *testing.T) {
	cfg := genConfig()
	g := NewGenerator(cfg, 55, DefaultOptions())
	mb := g.NextBatch(16)
	mb.AttachDedup()
	if mb.DedupFor(0) == nil {
		t.Fatal("AttachDedup did not build a view")
	}
	mb = g.NextBatchInto(16, mb)
	for i := range mb.Bags {
		if mb.DedupFor(i) != nil {
			t.Fatalf("refilled batch still exposes a dedup view for bag %d", i)
		}
	}
	// Re-attaching after refill must be valid for the new bags.
	mb.AttachDedup()
	for i := range mb.Bags {
		d := mb.DedupFor(i)
		for k, ix := range mb.Bags[i].Indices {
			if d.Unique[d.Remap[k]] != ix {
				t.Fatalf("bag %d: rebuilt view inconsistent at %d", i, k)
			}
		}
	}
}

// TestWriteShardsDeterministic: two generators with equal seeds must
// materialize bit-identical datasets — every shard file and the manifest.
func TestWriteShardsDeterministic(t *testing.T) {
	cfg := genConfig()
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for i, dir := range dirs {
		g := NewGenerator(cfg, 77, DefaultOptions())
		if err := g.WriteShards(dir, 3, 40); err != nil {
			t.Fatalf("WriteShards run %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 3 shards + manifest
		t.Fatalf("dataset has %d files, want 4", len(entries))
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(dirs[0], e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], e.Name()))
		if err != nil {
			t.Fatalf("second run missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between equal-seed runs", e.Name())
		}
	}
	// A different seed must produce a different dataset.
	dir3 := t.TempDir()
	g := NewGenerator(cfg, 78, DefaultOptions())
	if err := g.WriteShards(dir3, 3, 40); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(filepath.Join(dirs[0], "shard-00000.rsd"))
	b, _ := os.ReadFile(filepath.Join(dir3, "shard-00000.rsd"))
	if bytes.Equal(a, b) {
		t.Fatal("different seeds wrote identical shards")
	}
}

func TestReaderStreams(t *testing.T) {
	g := NewGenerator(genConfig(), 8, DefaultOptions())
	r := NewReader(g, 16, 4)
	defer r.Close()
	for i := 0; i < 5; i++ {
		select {
		case b := <-r.C:
			if b.Batch() != 16 {
				t.Fatalf("reader batch size %d", b.Batch())
			}
		case <-time.After(5 * time.Second):
			t.Fatal("reader stalled")
		}
	}
}

func TestReaderCloseStops(t *testing.T) {
	g := NewGenerator(genConfig(), 9, DefaultOptions())
	r := NewReader(g, 8, 1)
	r.Close()
	// Drain whatever was buffered; the channel must eventually close.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-r.C:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("reader did not stop after Close")
		}
	}
}
